// RSS scaling: cores-vs-throughput of the specialized uknetdev kvstore as
// the queue count grows (the §4/§6 SMP claim the multi-queue uknetdev API and
// the sharded store exist for). 16 client flows flood the server; the
// device's RSS hash shards them across N queues, and the server runs one
// event loop per queue over a private store shard — no locks, no shared
// state, no foreign cache lines.
//
// Time accounting models one core per loop: each queue's pump work — the
// modeled device costs its RxBurst/TxBurst charge plus its real loop time —
// accrues to that queue's own ledger, and the run's elapsed time is the
// SLOWEST shard's ledger (loops run concurrently on real SMP; the laggard
// sets the finish line). Aggregate throughput therefore scales with queue
// count exactly as far as the flows balance and the loops stay independent,
// which is precisely what the bench is gating: ≥1.7x at 2 queues, ≥3x at 4.
// Results are also emitted as BENCH_rss_scaling.json for the CI trendline.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "apps/kvstore.h"
#include "bench/common.h"
#include "ukarch/hash.h"
#include "uksched/scheduler.h"

namespace {

using namespace uknet;

struct ScalingRow {
  std::uint16_t queues = 0;
  double kreq_s = 0.0;
  double speedup = 1.0;    // vs the 1-queue row
  double min_share = 0.0;  // lightest queue's share of requests (1.0/N ideal)
  double max_share = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t tx_allocs = 0;  // in-place replies: must stay 0 on every shard
};

// |scheduled| hosts each queue's pump loop on a uksched thread (fiber
// backend by default, real pinned std::threads under UKRAFT_THREADS=real)
// instead of calling PumpQueue inline — the same loops, rings and doorbells,
// now owned by scheduler contexts, with the identical per-shard ledger.
ScalingRow Run(std::uint16_t queues, bool scheduled, int rounds = 1200) {
  ukplat::Clock clock;
  ukplat::Wire::Config wire_cfg;
  wire_cfg.queue_depth = 100000;
  ukplat::Wire wire(&clock, wire_cfg);
  ukplat::MemRegion mem(64 << 20);
  std::uint64_t heap_gpa = mem.Carve(48 << 20, 4096);
  auto alloc = ukalloc::CreateAllocator(ukalloc::Backend::kTlsf,
                                        mem.At(heap_gpa, 48 << 20), 48 << 20);
  uknetdev::VirtioNet::Config cfg;
  cfg.backend = uknetdev::VirtioBackend::kVhostUser;  // poll mode
  cfg.queue_size = 256;
  uknetdev::VirtioNet nic(&mem, &clock, &wire, cfg);
  apps::KvServer server(&nic, &mem, alloc.get(), MakeIp(10, 0, 0, 1), 7777,
                        apps::KvMode::kUkNetdev, queues);
  ScalingRow row;
  row.queues = queues;
  if (!server.Start()) {
    return row;
  }

  // Balanced, shard-aligned load: exactly kFlows/N flows per queue (ports
  // scanned against the same flow hash the device RSS uses), each flow
  // GETting a key its own queue's shard owns — every request is parsed,
  // executed and answered inside one loop.
  constexpr int kFlows = 16;
  const int flows_per_queue = kFlows / queues;
  std::vector<std::uint16_t> shard_key(queues);
  for (std::uint16_t q = 0; q < queues; ++q) {
    std::uint16_t k = 0;
    while (apps::KvServer::ShardForKey(k, queues) != q) {
      ++k;
    }
    shard_key[q] = k;
  }
  std::vector<std::vector<std::uint8_t>> frames;
  std::vector<std::uint16_t> warm_ports(queues, 0);  // one flow per queue (SETs)
  {
    std::vector<int> picked(queues, 0);
    std::uint16_t port = 41000;
    while (frames.size() < kFlows) {
      const std::uint16_t q = static_cast<std::uint16_t>(
          ukarch::FlowHash4(MakeIp(10, 0, 0, 2), port, MakeIp(10, 0, 0, 1), 7777) %
          queues);
      if (picked[q] < flows_per_queue) {
        if (picked[q] == 0) {
          warm_ports[q] = port;
        }
        frames.push_back(bench::BuildKvGetFrame(nic.mac(), MakeIp(10, 0, 0, 2),
                                                MakeIp(10, 0, 0, 1), 7777, port,
                                                shard_key[q]));
        ++picked[q];
      }
      ++port;
    }
  }
  // Warm each shard with a SET over its own flow (in-place 'K' replies: the
  // pools stay flat from the very first frame).
  for (std::uint16_t q = 0; q < queues; ++q) {
    apps::KvRequest set{true, shard_key[q], "0123456789abcdef"};
    wire.Send(1, bench::BuildKvFrame(nic.mac(), MakeIp(10, 0, 0, 2),
                                     MakeIp(10, 0, 0, 1), 7777, warm_ports[q],
                                     apps::EncodeKvRequest(set)));
  }
  for (std::uint16_t q = 0; q < queues; ++q) {
    server.PumpQueue(q);
  }
  while (wire.Receive(1).has_value()) {
  }

  std::uint64_t tx_allocs_before = 0;
  for (std::uint16_t q = 0; q < server.queue_count(); ++q) {
    tx_allocs_before += server.tx_pool(q)->total_allocs();
  }

  // Per-shard ledgers: virtual cycles the queue's pump charged (device model)
  // plus its real loop time, normalized like every kv bench. The backend
  // demux (BackendPoll — the vhost IO thread's work in a real system, and
  // identical at every queue count) runs before the ledgered region so the
  // first loop polled does not get billed for classifying its siblings'
  // frames.
  std::vector<double> shard_ns(queues, 0.0);
  std::size_t rr = 0;
  if (!scheduled) {
    for (int i = 0; i < rounds; ++i) {
      for (int k = 0; k < 32; ++k) {
        wire.Send(1, frames[rr++ % kFlows]);
      }
      nic.BackendPoll();  // vhost-thread demux: off every loop's ledger
      for (std::uint16_t q = 0; q < server.queue_count(); ++q) {
        const std::uint64_t c0 = clock.cycles();
        bench::RealTimer timer;
        server.PumpQueue(q);
        shard_ns[q] += clock.model().CyclesToNs(clock.cycles() - c0) +
                       timer.ElapsedNs() * bench::kSimNormalization;
      }
      while (wire.Receive(1).has_value()) {
      }
    }
  } else {
    // Scheduler-hosted flavor: one pump loop per queue, each a uksched
    // thread, plus a generator thread playing the burst source. The
    // generator publishes a round (atomics: under UKRAFT_THREADS=real the
    // pump loops live on other OS threads), every queue loop pumps it
    // exactly once onto its own ledger, and the generator waits for all of
    // them before draining replies — the same round structure as the inline
    // path, so the rows compare directly.
    auto sched_owner = uksched::MakeScheduler(alloc.get(), &clock);
    auto& sched = *sched_owner;
    std::atomic<int> round{0};
    std::atomic<bool> done{false};
    std::vector<std::atomic<int>> pumped(queues);
    for (std::uint16_t q = 0; q < server.queue_count(); ++q) {
      sched.CreateThread("pump", [&, q] {
        while (!done.load(std::memory_order_acquire)) {
          if (pumped[q].load(std::memory_order_relaxed) <
              round.load(std::memory_order_acquire)) {
            const std::uint64_t c0 = clock.cycles();
            bench::RealTimer timer;
            server.PumpQueue(q);
            shard_ns[q] += clock.model().CyclesToNs(clock.cycles() - c0) +
                           timer.ElapsedNs() * bench::kSimNormalization;
            pumped[q].fetch_add(1, std::memory_order_release);
          }
          sched.Yield();
        }
      });
    }
    sched.CreateThread("generator", [&] {
      for (int i = 0; i < rounds; ++i) {
        for (int k = 0; k < 32; ++k) {
          wire.Send(1, frames[rr++ % kFlows]);
        }
        nic.BackendPoll();
        round.fetch_add(1, std::memory_order_release);
        bool all_pumped = false;
        while (!all_pumped) {
          sched.Yield();
          all_pumped = true;
          for (std::uint16_t q = 0; q < server.queue_count(); ++q) {
            if (pumped[q].load(std::memory_order_acquire) <
                round.load(std::memory_order_relaxed)) {
              all_pumped = false;
              break;
            }
          }
        }
        while (wire.Receive(1).has_value()) {
        }
      }
      done.store(true, std::memory_order_release);
    });
    sched.Run();
  }
  double slowest_ns = 0.0;
  for (std::uint16_t q = 0; q < queues; ++q) {
    slowest_ns = shard_ns[q] > slowest_ns ? shard_ns[q] : slowest_ns;
  }
  const double seconds = slowest_ns / 1e9;
  row.requests = server.requests();
  row.kreq_s = seconds > 0 ? static_cast<double>(row.requests) / seconds / 1000.0
                           : 0.0;
  row.min_share = 1.0;
  for (std::uint16_t q = 0; q < server.queue_count(); ++q) {
    double share = server.requests() > 0
                       ? static_cast<double>(server.queue_requests(q)) /
                             static_cast<double>(server.requests())
                       : 0.0;
    row.min_share = share < row.min_share ? share : row.min_share;
    row.max_share = share > row.max_share ? share : row.max_share;
    row.tx_allocs += server.tx_pool(q)->total_allocs();
  }
  row.tx_allocs -= tx_allocs_before;
  return row;
}

void WriteJson(const std::vector<ScalingRow>& rows, const char* path,
               const char* bench_name) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "fig_rss_scaling: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n", bench_name);
  std::fprintf(f, "  \"workload\": \"kvstore shard-aligned GET, 16 flows\",\n");
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ScalingRow& r = rows[i];
    std::fprintf(f,
                 "    {\"queues\": %u, \"kreq_s\": %.1f, \"speedup\": %.2f, "
                 "\"min_share\": %.3f, \"max_share\": %.3f, \"requests\": %llu, "
                 "\"tx_allocs\": %llu}%s\n",
                 static_cast<unsigned>(r.queues), r.kreq_s, r.speedup, r.min_share,
                 r.max_share, static_cast<unsigned long long>(r.requests),
                 static_cast<unsigned long long>(r.tx_allocs),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool wait_mode = false;
  bool threads_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--wait") == 0) {
      wait_mode = true;
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      threads_mode = true;
    }
  }
  if (threads_mode && std::getenv("UKRAFT_THREADS") == nullptr) {
    // --threads means the real-OS-thread flavor unless the caller pinned a
    // backend explicitly (UKRAFT_THREADS=fiber gates the fiber-scheduled
    // flavor of the same loops).
    setenv("UKRAFT_THREADS", "real", 1);
  }
  bench::PrintHeader(threads_mode
                         ? "RSS scaling: sharded uknetdev kvstore, one "
                           "scheduler-hosted loop per queue"
                         : "RSS scaling: sharded uknetdev kvstore, one loop "
                           "per queue");
  std::printf("%-8s %12s %10s %12s %12s %12s\n", "queues", "Kreq/s", "speedup",
              "min share", "max share", "tx allocs");
  std::vector<ScalingRow> rows;
  for (std::uint16_t q : {1, 2, 4}) {
    ScalingRow row = Run(q, threads_mode);
    if (!rows.empty() && rows.front().kreq_s > 0) {
      row.speedup = row.kreq_s / rows.front().kreq_s;
    }
    std::printf("%-8u %12.0f %9.2fx %11.0f%% %11.0f%% %12llu\n",
                static_cast<unsigned>(row.queues), row.kreq_s, row.speedup,
                row.min_share * 100.0, row.max_share * 100.0,
                static_cast<unsigned long long>(row.tx_allocs));
    rows.push_back(row);
  }
  WriteJson(rows,
            threads_mode ? "BENCH_rss_scaling_threads.json"
                         : "BENCH_rss_scaling.json",
            threads_mode ? "rss_scaling_threads" : "rss_scaling");
  std::printf("(elapsed = slowest shard's ledger — the one-core-per-loop model; "
              "shape criteria: speedup >= 1.7x at 2 queues and >= 3x at 4, "
              "per-queue shares near 1/N, tx allocs 0: in-place replies never "
              "churn a pool, so each loop scales to its own core)\n");
  bool ok = true;
  for (const ScalingRow& r : rows) {
    if (r.tx_allocs != 0) {
      std::printf("FAIL: %u-queue run churned a TX pool (%llu allocs)\n",
                  static_cast<unsigned>(r.queues),
                  static_cast<unsigned long long>(r.tx_allocs));
      ok = false;
    }
    const double want = r.queues == 2 ? 1.7 : r.queues == 4 ? 3.0 : 0.0;
    if (r.speedup < want) {
      std::printf("FAIL: %u-queue speedup %.2fx below the %.1fx gate\n",
                  static_cast<unsigned>(r.queues), r.speedup, want);
      ok = false;
    }
  }
  if (wait_mode) {
    // Per-queue BLOCKING loops under a bursty duty cycle: the sharded
    // interrupt story — each queue arms, sleeps and wakes independently, and
    // the idle bill stays flat as queues grow (no loop ever spins for a
    // sibling's traffic).
    std::printf("\n---- --wait: per-queue blocking pump loops ----\n");
    std::printf("%-8s %12s %12s %12s  per-queue requests\n", "queues", "Kreq/s",
                "idle polls", "wakeups");
    for (std::uint16_t q : {1, 2, 4}) {
      bench::KvWaitRow row = bench::RunKvScheduled(q, /*blocking=*/true);
      std::printf("%-8u %12.0f %12llu %12llu  ", static_cast<unsigned>(q), row.kreq_s,
                  static_cast<unsigned long long>(row.idle_pumps),
                  static_cast<unsigned long long>(row.wakeups));
      for (std::uint16_t i = 0; i < q; ++i) {
        std::printf("q%u=%llu ", static_cast<unsigned>(i),
                    static_cast<unsigned long long>(row.per_queue_requests[i]));
      }
      std::printf("\n");
    }
    std::printf("(idle polls stay ~2 per burst per active queue at every width; "
                "wakeups are per-queue and O(1) per burst)\n");
  }
  return ok ? 0 : 1;
}
