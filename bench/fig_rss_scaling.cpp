// RSS scaling: per-queue throughput of the specialized uknetdev kvstore as
// the queue count grows (the §4 claim the multi-queue uknetdev API exists
// for). 16 client flows flood the server; the device's RSS hash shards them
// across N queues, and the server runs one pump loop per queue over private
// per-queue pools — no locks, no shared state. The table reports aggregate
// throughput (this simulation runs the loops round-robin on one thread, so
// the number to watch is per-queue balance and the flat zero-alloc column:
// the properties that make the loops embarrassingly parallel on real SMP).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "apps/kvstore.h"
#include "bench/common.h"

namespace {

using namespace uknet;

struct ScalingRow {
  double kreq_s = 0.0;
  double min_share = 0.0;  // lightest queue's share of requests (of 1.0/N ideal)
  double max_share = 0.0;
  std::uint64_t tx_allocs = 0;  // in-place replies: must stay 0
};

ScalingRow Run(std::uint16_t queues, int rounds = 1200) {
  ukplat::Clock clock;
  ukplat::Wire::Config wire_cfg;
  wire_cfg.queue_depth = 100000;
  ukplat::Wire wire(&clock, wire_cfg);
  ukplat::MemRegion mem(64 << 20);
  std::uint64_t heap_gpa = mem.Carve(48 << 20, 4096);
  auto alloc = ukalloc::CreateAllocator(ukalloc::Backend::kTlsf,
                                        mem.At(heap_gpa, 48 << 20), 48 << 20);
  uknetdev::VirtioNet::Config cfg;
  cfg.backend = uknetdev::VirtioBackend::kVhostUser;  // poll mode
  cfg.queue_size = 256;
  uknetdev::VirtioNet nic(&mem, &clock, &wire, cfg);
  apps::KvServer server(&nic, &mem, alloc.get(), MakeIp(10, 0, 0, 1), 7777,
                        apps::KvMode::kUkNetdev, queues);
  ScalingRow row;
  if (!server.Start()) {
    return row;
  }
  constexpr int kFlows = 16;
  std::vector<std::vector<std::uint8_t>> frames;
  for (int f = 0; f < kFlows; ++f) {
    frames.push_back(bench::BuildKvGetFrame(
        nic.mac(), MakeIp(10, 0, 0, 2), MakeIp(10, 0, 0, 1), 7777,
        static_cast<std::uint16_t>(41000 + f * 7)));
  }
  std::uint64_t tx_allocs_before = 0;
  for (std::uint16_t q = 0; q < server.queue_count(); ++q) {
    tx_allocs_before += server.tx_pool(q)->total_allocs();
  }
  bench::RealTimer timer;
  for (int i = 0; i < rounds; ++i) {
    for (int k = 0; k < 32; ++k) {
      wire.Send(1, frames[static_cast<std::size_t>(k) % kFlows]);
    }
    for (std::uint16_t q = 0; q < server.queue_count(); ++q) {
      server.PumpQueue(q);
    }
    while (wire.Receive(1).has_value()) {
    }
  }
  clock.Charge(clock.model().NsToCycles(timer.ElapsedNs() * bench::kSimNormalization));
  double seconds = clock.nanoseconds() / 1e9;
  row.kreq_s = seconds > 0 ? static_cast<double>(server.requests()) / seconds / 1000.0
                           : 0.0;
  row.min_share = 1.0;
  for (std::uint16_t q = 0; q < server.queue_count(); ++q) {
    double share = server.requests() > 0
                       ? static_cast<double>(server.queue_requests(q)) /
                             static_cast<double>(server.requests())
                       : 0.0;
    row.min_share = share < row.min_share ? share : row.min_share;
    row.max_share = share > row.max_share ? share : row.max_share;
    row.tx_allocs += server.tx_pool(q)->total_allocs();
  }
  row.tx_allocs -= tx_allocs_before;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bool wait_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--wait") == 0) {
      wait_mode = true;
    }
  }
  bench::PrintHeader("RSS scaling: multi-queue uknetdev kvstore, 16 flows");
  std::printf("%-8s %12s %12s %12s %12s\n", "queues", "Kreq/s", "min share",
              "max share", "tx allocs");
  for (std::uint16_t q : {1, 2, 4}) {
    ScalingRow row = Run(q);
    std::printf("%-8u %12.0f %11.0f%% %11.0f%% %12llu\n", static_cast<unsigned>(q),
                row.kreq_s, row.min_share * 100.0, row.max_share * 100.0,
                static_cast<unsigned long long>(row.tx_allocs));
  }
  std::printf("(shape criteria: per-queue request shares stay near 1/N — the RSS "
              "hash balances flows — and tx allocs stay 0: in-place replies never "
              "churn a pool, so each queue's loop scales to its own core)\n");
  if (wait_mode) {
    // Per-queue BLOCKING loops under a bursty duty cycle: the sharded
    // interrupt story — each queue arms, sleeps and wakes independently, and
    // the idle bill stays flat as queues grow (no loop ever spins for a
    // sibling's traffic).
    std::printf("\n---- --wait: per-queue blocking pump loops ----\n");
    std::printf("%-8s %12s %12s %12s  per-queue requests\n", "queues", "Kreq/s",
                "idle polls", "wakeups");
    for (std::uint16_t q : {1, 2, 4}) {
      bench::KvWaitRow row = bench::RunKvScheduled(q, /*blocking=*/true);
      std::printf("%-8u %12.0f %12llu %12llu  ", static_cast<unsigned>(q), row.kreq_s,
                  static_cast<unsigned long long>(row.idle_pumps),
                  static_cast<unsigned long long>(row.wakeups));
      for (std::uint16_t i = 0; i < q; ++i) {
        std::printf("q%u=%llu ", static_cast<unsigned>(i),
                    static_cast<unsigned long long>(row.per_queue_requests[i]));
      }
      std::printf("\n");
    }
    std::printf("(idle polls stay ~2 per burst per active queue at every width; "
                "wakeups are per-queue and O(1) per burst)\n");
  }
  return 0;
}
