// Fig 22: open() cost — specialized SHFS vs going through the VFS layer,
// on Unikraft and on a Linux VM model, for existing and missing files.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "posix/shim.h"
#include "shfs/shfs.h"
#include "vfscore/vfs.h"

namespace {

constexpr int kOps = 1000;

struct Result {
  double exists_ns;
  double missing_ns;
};

Result MeasureShfs(const shfs::Shfs& volume) {
  Result r{};
  auto run = [&volume](const std::string& name) {
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kOps; ++i) {
      auto h = volume.Open(name);
      (void)h;
    }
    return std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() -
                                                    start)
               .count() /
           kOps;
  };
  r.exists_ns = run("file500");
  r.missing_ns = run("no-such-file");
  return r;
}

Result MeasureVfs(vfscore::Vfs& vfs, std::uint64_t extra_cycles_per_open) {
  ukplat::CostModel m;
  Result r{};
  auto run = [&vfs, &m, extra_cycles_per_open](const std::string& path) {
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kOps; ++i) {
      std::shared_ptr<vfscore::File> f;
      (void)vfs.Open(path, vfscore::kRead, &f);
    }
    double real = std::chrono::duration<double, std::nano>(
                      std::chrono::steady_clock::now() - start)
                      .count() /
                  kOps;
    return real + m.CyclesToNs(extra_cycles_per_open);
  };
  r.exists_ns = run("/file500");
  r.missing_ns = run("/no-such-file");
  return r;
}

}  // namespace

int main() {
  // Small root fs with 1000 files, as in the paper's setup.
  shfs::Shfs::Builder builder(2048);
  for (int i = 0; i < 1000; ++i) {
    builder.Add("file" + std::to_string(i), {std::uint8_t(i & 0xff)});
  }
  auto volume = builder.Build();

  shfs::ShfsVfsDriver driver(volume.get());
  vfscore::Vfs vfs;
  vfs.Mount("/", &driver);

  ukplat::CostModel m;
  Result shfs_direct = MeasureShfs(*volume);
  Result uk_vfs = MeasureVfs(vfs, 0);
  // Linux VM: same VFS-style walk plus the mitigated trap per open() and the
  // heavier dentry/inode path (~1400 extra cycles measured on distro kernels).
  Result linux_vfs = MeasureVfs(vfs, m.syscall_trap_mitigated + 1400);
  Result linux_nomitig = MeasureVfs(vfs, m.syscall_trap_plain + 1400);

  std::printf("==== Fig 22: open() cost, SHFS vs VFS (ns/op, TSC at 3.6GHz) ====\n");
  std::printf("%-26s %12s %12s\n", "configuration", "FILE EXISTS", "NO FILE");
  std::printf("%-26s %12.0f %12.0f\n", "unikraft SHFS (direct)", shfs_direct.exists_ns,
              shfs_direct.missing_ns);
  std::printf("%-26s %12.0f %12.0f\n", "unikraft VFS", uk_vfs.exists_ns,
              uk_vfs.missing_ns);
  std::printf("%-26s %12.0f %12.0f\n", "linux VFS (no mitig.)", linux_nomitig.exists_ns,
              linux_nomitig.missing_ns);
  std::printf("%-26s %12.0f %12.0f\n", "linux VFS", linux_vfs.exists_ns,
              linux_vfs.missing_ns);
  std::printf("\nSHFS speedup vs unikraft VFS: %.1fx (paper: 5-7x); vs linux: %.1fx\n",
              uk_vfs.exists_ns / shfs_direct.exists_ns,
              linux_vfs.exists_ns / shfs_direct.exists_ns);
  return 0;
}
