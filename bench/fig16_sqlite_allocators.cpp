// Fig 16: SQLite INSERT execution speedup relative to mimalloc, as a
// function of query count, for buddy / tinyalloc / TLSF.
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "apps/sql.h"
#include "ukalloc/registry.h"

namespace {

double RunInserts(ukalloc::Backend backend, int queries) {
  constexpr std::size_t kHeap = 192ull << 20;
  static std::unique_ptr<std::byte[]> arena(new std::byte[kHeap]);
  auto alloc = ukalloc::CreateAllocator(backend, arena.get(), kHeap);
  apps::Database db(alloc.get());
  db.Execute("CREATE TABLE tab (id INTEGER, payload TEXT)");
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < queries; ++i) {
    db.Execute("INSERT INTO tab VALUES (" + std::to_string(i) +
               ", 'unikraft-row-payload-" + std::to_string(i) + "')");
  }
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                   start)
      .count();
}

}  // namespace

int main() {
  std::printf("==== Fig 16: SQLite insert speedup vs mimalloc (%%), by query count ====\n");
  std::printf("%-9s %10s %10s %10s\n", "queries", "buddy", "tinyalloc", "tlsf");
  for (int queries : {10, 100, 1000, 10000, 60000}) {
    // Best-of-3 to de-noise.
    std::map<ukalloc::Backend, double> best;
    for (ukalloc::Backend b : {ukalloc::Backend::kMimalloc, ukalloc::Backend::kBuddy,
                               ukalloc::Backend::kTinyAlloc, ukalloc::Backend::kTlsf}) {
      best[b] = 1e18;
      for (int run = 0; run < 3; ++run) {
        best[b] = std::min(best[b], RunInserts(b, queries));
      }
    }
    auto speedup = [&](ukalloc::Backend b) {
      return 100.0 * (best[ukalloc::Backend::kMimalloc] / best[b] - 1.0);
    };
    std::printf("%-9d %9.1f%% %9.1f%% %9.1f%%\n", queries,
                speedup(ukalloc::Backend::kBuddy),
                speedup(ukalloc::Backend::kTinyAlloc),
                speedup(ukalloc::Backend::kTlsf));
  }
  std::printf("\n(shape criteria: tinyalloc ahead at low counts, falls behind at high "
              "counts; mimalloc best under heavy load)\n");
  return 0;
}
