// Fig 14: nginx boot time per allocator, with the per-stage breakdown
// (virtio, rootfs, vfscore, lwip, pthreads stages registered as inittab
// entries that do real allocation work against the chosen backend).
#include <cstdio>
#include <string>

#include "ukboot/instance.h"
#include "uknetdev/netbuf.h"
#include "ukplat/memregion.h"

namespace {

void RegisterNginxInit(ukboot::Instance& vm) {
  using ukboot::InitStage;
  vm.RegisterInit(InitStage::kBus, "virtio", [](ukboot::Instance& inst) {
    // Netbuf pools: the large contiguous boot-time allocations.
    for (int i = 0; i < 2; ++i) {
      if (inst.heap()->Memalign(64, 256 * 2048) == nullptr) {
        return ukarch::Status::kNoMem;
      }
    }
    return ukarch::Status::kOk;
  });
  vm.RegisterInit(InitStage::kRootfs, "rootfs", [](ukboot::Instance& inst) {
    // ramfs files: many page-sized chunks.
    for (int i = 0; i < 64; ++i) {
      if (inst.heap()->Malloc(4096) == nullptr) {
        return ukarch::Status::kNoMem;
      }
    }
    return ukarch::Status::kOk;
  });
  vm.RegisterInit(InitStage::kSys, "lwip", [](ukboot::Instance& inst) {
    // lwIP init: a burst of small control-block allocations + frees.
    void* blocks[128];
    for (int round = 0; round < 4; ++round) {
      for (int i = 0; i < 128; ++i) {
        blocks[i] = inst.heap()->Malloc(static_cast<std::size_t>(32 + (i % 24) * 16));
        if (blocks[i] == nullptr) {
          return ukarch::Status::kNoMem;
        }
      }
      for (int i = 0; i < 128; i += 2) {
        inst.heap()->Free(blocks[i]);
      }
    }
    return ukarch::Status::kOk;
  });
  vm.RegisterInit(InitStage::kSys, "pthreads", [](ukboot::Instance& inst) {
    if (inst.scheduler() == nullptr) {
      return ukarch::Status::kOk;
    }
    for (int i = 0; i < 4; ++i) {
      if (inst.scheduler()->CreateThread("worker", [] {}) == nullptr) {
        return ukarch::Status::kNoMem;
      }
    }
    inst.scheduler()->Run();
    return ukarch::Status::kOk;
  });
  vm.RegisterInit(InitStage::kLate, "app-config", [](ukboot::Instance& inst) {
    for (int i = 0; i < 128; ++i) {
      if (inst.heap()->Malloc(static_cast<std::size_t>(64 + i * 8)) == nullptr) {
        return ukarch::Status::kNoMem;
      }
    }
    return ukarch::Status::kOk;
  });
}

}  // namespace

int main() {
  std::printf("==== Fig 14: nginx guest boot time per allocator ====\n");
  std::printf("%-11s %11s | per-stage breakdown (us)\n", "allocator", "boot(us)");
  for (ukalloc::Backend backend : ukalloc::AllBackends()) {
    double best = 1e18;
    ukboot::BootReport best_report;
    for (int run = 0; run < 5; ++run) {
      ukboot::InstanceConfig cfg;
      cfg.memory_bytes = 64 << 20;
      cfg.allocator = backend;
      ukboot::Instance vm(cfg);
      RegisterNginxInit(vm);
      ukboot::BootReport report = vm.Boot();
      if (report.ok && report.guest_us < best) {
        best = report.guest_us;
        best_report = report;
      }
    }
    std::printf("%-11s %11.1f |", ukalloc::BackendName(backend), best);
    for (const auto& stage : best_report.stages) {
      std::printf(" %s=%.1f", stage.name.c_str(), stage.real_ns / 1000.0);
    }
    std::printf("\n");
  }
  std::printf("\n(shape criteria: bootalloc fastest, buddy slowest — paper 0.49ms vs "
              "3.07ms)\n");
  return 0;
}
