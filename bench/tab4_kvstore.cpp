// Table 4: specialized UDP key-value store — Linux baremetal/guest with
// single and batched syscalls vs Unikraft with lwIP sockets, raw uknetdev,
// and DPDK-style paths. Request frames are injected directly on the wire
// (the load generator box); replies drain from the other side.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "apps/kvstore.h"
#include "bench/common.h"
#include "uksched/scheduler.h"

namespace {

using namespace uknet;

// --eventloop: the socket-batch server rebuilt on the shared apps::EventLoop,
// run as ONE blocked thread under a bursty duty cycle: the generator floods a
// 32-request burst, then thinks; the server sleeps in EpollWait (parked in
// NetStack::PollWait) between bursts and answers each burst with one
// recvmmsg/sendmmsg pair — readiness multiplexing + batched syscalls + the
// SendIpBatch reply flood, end to end.
struct KvEventLoopRow {
  double kreq_s = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t blocked_waits = 0;  // server-side sleeps (KvServer ledger)
  std::uint64_t frame_wakeups = 0;  // stack wakeups that ended them
  std::uint64_t idle_poll_growth = 0;
};

KvEventLoopRow RunKvEventLoop(int rounds = 400, int think_turns = 32) {
  env::TestBed bed(env::Profile::UnikraftKvm());
  auto sched_owner = uksched::MakeScheduler(bed.server().alloc.get(), &bed.clock());
  auto& sched = *sched_owner;
  apps::KvServer server(&bed.api(), 7777, apps::KvMode::kSocketBatch);
  server.EnableWait(&sched);  // attaches the scheduler to the stack too
  KvEventLoopRow row;
  if (!server.Start()) {
    return row;
  }
  std::vector<std::uint8_t> frame = bench::BuildKvGetFrame(
      bed.server().nic->mac(), env::TestBed::kClientIp, env::TestBed::kServerIp, 7777);

  bool done = false;
  std::uint64_t done_cycles = 0;
  sched.CreateThread("kv-eventloop", [&] {
    while (!done) {
      // Bounded slice only so the loop observes |done|; real wakeups come
      // from burst frames. Busy turns yield (cooperative scheduling).
      server.PumpQueueWait(0, 4'000'000'000ull);
      sched.Yield();
    }
  });
  sched.CreateThread("generator", [&] {
    bench::RealTimer timer;
    for (int r = 0; r < rounds; ++r) {
      for (int k = 0; k < 32; ++k) {
        bed.wire().Send(1, frame);
      }
      bed.client().stack->Poll();
      sched.Yield();  // the burst lands: the wakeup answers it
      for (int t = 0; t < think_turns; ++t) {
        bed.clock().Charge(bench::kThinkSliceCycles);
        sched.Yield();
      }
      while (bed.wire().Receive(1).has_value()) {
      }
    }
    // Idle window: the server must be asleep, not polling.
    const std::uint64_t polls_before =
        bed.server().stack->wait_stats().poll_iterations;
    for (int i = 0; i < 100; ++i) {
      bed.clock().Charge(10'000);
      sched.Yield();
    }
    row.idle_poll_growth =
        bed.server().stack->wait_stats().poll_iterations - polls_before;
    bed.clock().Charge(bed.clock().model().NsToCycles(
        timer.ElapsedNs() * bench::kSimNormalization));
    done_cycles = bed.clock().cycles();
    done = true;
    for (int k = 0; k < 32; ++k) {
      bed.wire().Send(1, frame);  // final burst wakes the loop to observe |done|
    }
  });
  sched.Run();
  row.requests = server.requests();
  row.blocked_waits = server.wait_stats().blocked_waits;
  row.frame_wakeups = bed.server().stack->wait_stats().frame_wakeups;
  const double seconds = bed.clock().model().CyclesToNs(done_cycles) / 1e9;
  row.kreq_s =
      seconds > 0 ? static_cast<double>(row.requests) / seconds / 1000.0 : 0.0;
  return row;
}

// Socket-path variants run through a TestBed profile.
double RunSocketMode(const env::Profile& profile, apps::KvMode mode, int rounds = 800) {
  env::TestBed bed(profile);
  apps::KvServer server(&bed.api(), 7777, mode);
  if (!server.Start()) {
    return 0;
  }
  std::vector<std::uint8_t> frame = bench::BuildKvGetFrame(
      bed.server().nic->mac(), env::TestBed::kClientIp, env::TestBed::kServerIp, 7777);
  // Seed the key.
  apps::KvRequest set{true, 7, "seven"};
  auto client = bed.client().stack->UdpOpen();
  client->SendTo(env::TestBed::kServerIp, 7777, apps::EncodeKvRequest(set));
  for (int i = 0; i < 200; ++i) {
    bed.Poll();
    server.PumpOnce();
  }
  bed.clock().Reset();
  std::uint64_t before = server.requests();
  bench::RealTimer timer;
  for (int i = 0; i < rounds; ++i) {
    for (int k = 0; k < 32; ++k) {
      bed.wire().Send(1, frame);  // load generator floods from the client side
    }
    bed.Poll();
    std::size_t handled = server.PumpOnce();
    bed.ChargeHostNetPath(handled);
    // Drain replies at the generator.
    while (bed.wire().Receive(1).has_value()) {
    }
  }
  bed.clock().Charge(bed.clock().model().NsToCycles(
      timer.ElapsedNs() * bench::kSimNormalization));
  double seconds = bed.clock().nanoseconds() / 1e9;
  return static_cast<double>(server.requests() - before) / seconds / 1000.0;  // K/s
}

// Raw uknetdev / DPDK paths own the NIC directly. |queues| shards the
// datapath: requests arrive from that many client flows, and the server runs
// one pump loop per queue (round-robined here; one core each on real SMP).
double RunNetdevMode(apps::KvMode mode, std::uint64_t extra_per_burst,
                     int rounds = 1500, std::uint16_t queues = 1) {
  ukplat::Clock clock;
  ukplat::Wire::Config wire_cfg;
  wire_cfg.queue_depth = 100000;
  ukplat::Wire wire(&clock, wire_cfg);
  ukplat::MemRegion mem(64 << 20);
  std::uint64_t heap_gpa = mem.Carve(48 << 20, 4096);
  auto alloc = ukalloc::CreateAllocator(ukalloc::Backend::kTlsf,
                                        mem.At(heap_gpa, 48 << 20), 48 << 20);
  uknetdev::VirtioNet::Config cfg;
  cfg.backend = uknetdev::VirtioBackend::kVhostUser;  // poll mode (§6.4)
  cfg.queue_size = 256;
  uknetdev::VirtioNet nic(&mem, &clock, &wire, cfg);
  apps::KvServer server(&nic, &mem, alloc.get(), MakeIp(10, 0, 0, 1), 7777, mode,
                        queues);
  if (!server.Start()) {
    return 0;
  }
  // One flow per source port. Stride-7 ports: the Toeplitz hash is linear in
  // the port bits, so consecutive ports can collapse onto a queue subset —
  // the stride exercises enough bit positions to cover all queues evenly.
  constexpr int kFlows = 8;
  std::vector<std::vector<std::uint8_t>> frames;
  for (int f = 0; f < kFlows; ++f) {
    frames.push_back(bench::BuildKvGetFrame(nic.mac(), MakeIp(10, 0, 0, 2),
                                            MakeIp(10, 0, 0, 1), 7777,
                                            static_cast<std::uint16_t>(40000 + f * 7)));
  }
  bench::RealTimer timer;
  std::uint64_t before = server.requests();
  for (int i = 0; i < rounds; ++i) {
    for (int k = 0; k < 32; ++k) {
      wire.Send(1, frames[static_cast<std::size_t>(k) % kFlows]);
    }
    for (std::uint16_t q = 0; q < server.queue_count(); ++q) {
      server.PumpQueue(q);  // the per-queue event-loop body
    }
    clock.Charge(extra_per_burst);
    while (wire.Receive(1).has_value()) {
    }
  }
  clock.Charge(
      clock.model().NsToCycles(timer.ElapsedNs() * bench::kSimNormalization));
  double seconds = clock.nanoseconds() / 1e9;
  return static_cast<double>(server.requests() - before) / seconds / 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t queues = 1;
  bool wait_mode = false;
  bool eventloop_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--queues") == 0 && i + 1 < argc) {
      int n = std::atoi(argv[i + 1]);
      // Clamp to what the virtio device offers (4 queue pairs), so the row
      // label always matches the datapath that actually ran.
      queues = static_cast<std::uint16_t>(n < 1 ? 1 : (n > 4 ? 4 : n));
    } else if (std::strcmp(argv[i], "--wait") == 0) {
      wait_mode = true;
    } else if (std::strcmp(argv[i], "--eventloop") == 0) {
      eventloop_mode = true;
    }
  }
  if (eventloop_mode) {
    std::printf("==== Table 4 (--eventloop): socket-batch server on the epoll "
                "event loop ====\n");
    KvEventLoopRow row = RunKvEventLoop();
    std::printf("%-12s %12s %12s %12s %12s\n", "Kreq/s", "requests", "sleeps",
                "frame wakes", "idle spins");
    std::printf("%-12.0f %12llu %12llu %12llu %12llu\n", row.kreq_s,
                static_cast<unsigned long long>(row.requests),
                static_cast<unsigned long long>(row.blocked_waits),
                static_cast<unsigned long long>(row.frame_wakeups),
                static_cast<unsigned long long>(row.idle_poll_growth));
    std::printf("(shape criteria: one blocked thread, ~one sleep+wake per "
                "burst, idle spins == 0; each burst costs one epoll_wait + "
                "one recvmmsg + one sendmmsg — replies leave in a single "
                "SendIpBatch TxBurst)\n\n");
    if (row.idle_poll_growth != 0 || row.requests == 0) {
      std::printf("EVENTLOOP LEG FAILED\n");
      return 1;
    }
    return 0;  // standalone leg (CI runs it under sanitizers)
  }
  std::printf("==== Table 4: UDP key-value store throughput (K req/s) ====\n");
  std::printf("%-18s %-14s %12s\n", "setup", "mode", "Kreq/s");
  std::printf("%-18s %-14s %12.0f\n", "linux-baremetal", "single",
              RunSocketMode(env::Profile::LinuxNative(), apps::KvMode::kSocketSingle));
  std::printf("%-18s %-14s %12.0f\n", "linux-baremetal", "batch",
              RunSocketMode(env::Profile::LinuxNative(), apps::KvMode::kSocketBatch));
  std::printf("%-18s %-14s %12.0f\n", "linux-guest", "single",
              RunSocketMode(env::Profile::LinuxKvm(), apps::KvMode::kSocketSingle));
  std::printf("%-18s %-14s %12.0f\n", "linux-guest", "batch",
              RunSocketMode(env::Profile::LinuxKvm(), apps::KvMode::kSocketBatch));
  std::printf("%-18s %-14s %12.0f\n", "linux-guest", "dpdk",
              RunNetdevMode(apps::KvMode::kDpdkStyle, 500));
  std::printf("%-18s %-14s %12.0f\n", "unikraft-guest", "lwip",
              RunSocketMode(env::Profile::UnikraftKvm(), apps::KvMode::kSocketSingle));
  std::printf("%-18s %-14s %12.0f\n", "unikraft-guest", "uknetdev",
              RunNetdevMode(apps::KvMode::kUkNetdev, 0));
  std::printf("%-18s %-14s %12.0f\n", "unikraft-guest", "dpdk",
              RunNetdevMode(apps::KvMode::kDpdkStyle, 500));
  if (queues > 1) {
    std::printf("\n---- --queues %u: RSS-sharded uknetdev datapath ----\n", queues);
    std::printf("%-18s %-14s %12s\n", "setup", "mode", "Kreq/s");
    std::printf("%-18s queues=%-7u %12.0f\n", "unikraft-guest", 1u,
                RunNetdevMode(apps::KvMode::kUkNetdev, 0, 1500, 1));
    std::printf("%-18s queues=%-7u %12.0f\n", "unikraft-guest",
                static_cast<unsigned>(queues),
                RunNetdevMode(apps::KvMode::kUkNetdev, 0, 1500, queues));
    std::printf("(one pump loop per queue; per-queue pools, no cross-queue state "
                "— one core per loop on real SMP)\n");
  }
  if (wait_mode) {
    // The same specialized server under a bursty duty cycle, spin vs blocked
    // on the RX interrupt (see bench_fig_idle_wakeup for the dedicated study).
    std::printf("\n---- --wait: interrupt-driven idle, uknetdev mode, %u queue%s ----\n",
                static_cast<unsigned>(queues), queues == 1 ? "" : "s");
    std::printf("%-10s %12s %12s %12s %10s\n", "mode", "Kreq/s", "idle polls",
                "idle cycles", "wakeups");
    bench::KvWaitRow spin = bench::RunKvScheduled(queues, /*blocking=*/false);
    bench::KvWaitRow wait = bench::RunKvScheduled(queues, /*blocking=*/true);
    std::printf("%-10s %12.0f %12llu %12llu %10llu\n", "spin", spin.kreq_s,
                static_cast<unsigned long long>(spin.idle_pumps),
                static_cast<unsigned long long>(spin.idle_cycles),
                static_cast<unsigned long long>(spin.wakeups));
    std::printf("%-10s %12.0f %12llu %12llu %10llu\n", "wait", wait.kreq_s,
                static_cast<unsigned long long>(wait.idle_pumps),
                static_cast<unsigned long long>(wait.idle_cycles),
                static_cast<unsigned long long>(wait.wakeups));
    std::printf("(blocking pumps idle >=10x cheaper at matching throughput; one "
                "wakeup per burst per active queue)\n");
  }
  std::printf("\n(shape criteria: batch > single; uknetdev/dpdk ~10x the socket paths; "
              "unikraft uknetdev matches guest DPDK with one core)\n");
  return 0;
}
