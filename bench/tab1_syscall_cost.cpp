// Table 1: cost of binary compatibility — no-op call through every dispatch
// path. Reports both the modeled cycles (paper's numbers by construction)
// and the real ns of our dispatch code (google-benchmark), showing the same
// ladder: function call << binary-compat << trap.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "posix/shim.h"

namespace {

using posix::DispatchMode;
using posix::SyscallArgs;
using posix::SyscallShim;

void BenchDispatch(benchmark::State& state, DispatchMode mode) {
  ukplat::Clock clock;
  SyscallShim shim(&clock, mode);
  int nr = posix::SyscallNumber("getpid");
  shim.Register(nr, [](const SyscallArgs&) -> std::int64_t { return 1; });
  for (auto _ : state) {
    benchmark::DoNotOptimize(shim.Call(nr));
  }
  state.counters["model_cycles"] = static_cast<double>(
      SyscallShim::EntryCost(mode, clock.model()));
  state.counters["model_ns"] =
      clock.model().CyclesToNs(SyscallShim::EntryCost(mode, clock.model()));
}

void PrintTable1() {
  ukplat::CostModel m;
  std::printf("==== Table 1: cost of binary compatibility / syscalls ====\n");
  std::printf("%-34s %10s %10s\n", "Routine", "#Cycles", "nsecs");
  struct Row {
    const char* name;
    DispatchMode mode;
  } rows[] = {
      {"Linux/KVM syscall (mitigations)", DispatchMode::kLinuxTrap},
      {"Linux/KVM syscall (no mitig.)", DispatchMode::kLinuxTrapFast},
      {"Unikraft/KVM syscall (bin compat)", DispatchMode::kBinaryCompat},
      {"Shim-table call", DispatchMode::kShimTable},
      {"Function call", DispatchMode::kDirectCall},
  };
  for (const Row& row : rows) {
    std::uint64_t cycles = SyscallShim::EntryCost(row.mode, m);
    std::printf("%-34s %10llu %10.2f\n", row.name,
                static_cast<unsigned long long>(cycles), m.CyclesToNs(cycles));
  }
  std::printf("\n(real dispatch-code timings follow from google-benchmark)\n");
}

}  // namespace

BENCHMARK_CAPTURE(BenchDispatch, direct_call, DispatchMode::kDirectCall);
BENCHMARK_CAPTURE(BenchDispatch, shim_table, DispatchMode::kShimTable);
BENCHMARK_CAPTURE(BenchDispatch, binary_compat, DispatchMode::kBinaryCompat);
BENCHMARK_CAPTURE(BenchDispatch, linux_trap_fast, DispatchMode::kLinuxTrapFast);
BENCHMARK_CAPTURE(BenchDispatch, linux_trap, DispatchMode::kLinuxTrap);

int main(int argc, char** argv) {
  PrintTable1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
