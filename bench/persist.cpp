// Persistence tier bench: what durability costs on the hot path, and what
// replay-on-boot costs at recovery time.
//
// Leg 1 — AOF throughput tax: the redis-benchmark SET workload (the worst
// case for the log: every command appends) over the real stack, with the
// persistence tier detached vs attached at fsync=everyturn. The per-turn
// batching design means the tax is one buffered memcpy per command plus one
// file write + flush barrier per event-loop turn, so the gate demands
// AOF-on >= 70% of AOF-off throughput.
//
// Leg 2 — recovery time vs dataset size: build a snapshot + AOF tail on a
// blockfs-backed ramdisk at 1k/5k/20k keys, then "reboot" (fresh filesystem
// object, fresh Persist) and time Recover(). The gate is deliberately
// generous — recovery must restore every key and sustain >= 10k keys/s of
// real time — because the point of the row is the trendline (linear in
// dataset bytes), not the absolute number.
//
// Results land in BENCH_persist.json.
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/persist.h"
#include "bench/common.h"
#include "ukblockdev/ramdisk.h"
#include "vfscore/blockfs.h"

namespace {

struct AofRow {
  const char* mode = "";
  std::uint64_t requests = 0;
  double virtual_ms = 0.0;
  double kreq_per_s = 0.0;
  std::uint64_t aof_writes = 0;  // dirty-turn file writes (0 when detached)
  std::uint64_t fsyncs = 0;
  std::uint64_t io_errors = 0;
};

// SET workload to a fixed reply target so both modes do identical work; the
// charging mirrors bench::RunRedisBench (profile residuals, syscall shares,
// host net path, normalized real loop time).
AofRow RunSetLeg(bool aof_on, std::uint64_t target_replies) {
  const env::Profile profile = env::Profile::UnikraftKvm();
  env::TestBed bed(profile);
  ukblockdev::RamDisk disk(&bed.server().mem, /*sectors=*/16384);
  vfscore::BlockFs fs(&disk, &bed.server().mem);
  fs.EnsureFormatted();
  bed.vfs().Mount("/persist", &fs);

  apps::RedisServer server(&bed.api(), bed.server().alloc.get(), 6379);
  if (!server.Start()) {
    return {};
  }
  std::unique_ptr<apps::Persist> persist;
  if (aof_on) {
    apps::Persist::Config pcfg;
    pcfg.dir = "/persist";
    pcfg.fsync = apps::Persist::FsyncPolicy::kEveryTurn;
    persist = std::make_unique<apps::Persist>(&bed.vfs(), pcfg);
    server.AttachPersist(persist.get());
    server.RecoverFromPersist();
  }

  apps::RedisBenchClient::Config cfg;
  cfg.connections = 16;
  cfg.pipeline = 8;
  cfg.use_set = true;
  apps::RedisBenchClient bench(bed.client().stack.get(), env::TestBed::kServerIp,
                               6379, cfg);
  auto pump = [&] {
    bed.Poll();
    server.PumpOnce();
  };
  if (!bench.ConnectAll(pump)) {
    return {};
  }
  bed.clock().Reset();
  const std::uint64_t before = bench.replies();
  const std::uint64_t syscall_cost =
      posix::SyscallShim::EntryCost(profile.dispatch, bed.clock().model());
  bench::RealTimer timer;
  for (int i = 0; i < 50'000 && bench.replies() - before < target_replies; ++i) {
    bench.PumpOnce();
    bed.Poll();
    std::size_t handled = server.PumpOnce();
    bed.clock().Charge(profile.per_request_overhead * handled);
    bed.clock().Charge(static_cast<std::uint64_t>(
        bench::kRedisSyscallsPerRequest *
        static_cast<double>(syscall_cost * handled)));
    bed.ChargeHostNetPath(handled / 2 + 1);
  }
  bed.clock().Charge(bed.clock().model().NsToCycles(timer.ElapsedNs() *
                                                    bench::kSimNormalization));
  AofRow row;
  row.mode = aof_on ? "aof-everyturn" : "aof-off";
  row.requests = bench.replies() - before;
  row.virtual_ms = bed.clock().milliseconds();
  row.kreq_per_s =
      static_cast<double>(row.requests) / (row.virtual_ms / 1e3) / 1e3;
  if (persist != nullptr) {
    row.aof_writes = persist->stats().aof_writes;
    row.fsyncs = persist->stats().fsyncs;
    row.io_errors = persist->stats().io_errors;
  }
  return row;
}

struct RecoveryRow {
  int keys = 0;
  double recover_ms = 0.0;   // real time of the Recover() call
  double keys_per_s = 0.0;
  std::uint64_t snapshot_keys = 0;
  std::uint64_t aof_commands = 0;
  bool ok = false;
};

// Builds dataset -> snapshot -> AOF tail on one disk, then reboots the
// filesystem stack and times the replay.
RecoveryRow RunRecoveryLeg(int nkeys) {
  ukplat::MemRegion mem(24 << 20);
  ukblockdev::RamDisk disk(&mem, /*sectors=*/32768);  // 16 MiB
  const std::string value(64, 'v');

  using Store = std::map<std::string, std::string, std::less<>>;
  Store store;
  auto source = [&store] {
    apps::Persist::Source s;
    s.capture = [&store](std::uint16_t, std::vector<std::string>* keys) {
      for (const auto& [k, v] : store) {
        keys->push_back(k);
      }
    };
    s.lookup = [&store](std::uint16_t, std::string_view key)
        -> std::optional<std::string_view> {
      auto it = store.find(key);
      if (it == store.end()) {
        return std::nullopt;
      }
      return std::string_view(it->second);
    };
    return s;
  }();

  apps::Persist::Config pcfg;
  pcfg.dir = "/persist";
  {
    vfscore::Vfs vfs;
    vfscore::BlockFs fs(&disk, &mem);
    fs.EnsureFormatted();
    vfs.Mount("/persist", &fs);
    apps::Persist persist(&vfs, pcfg);
    persist.SetSource(source);
    char key[16];
    for (int i = 0; i < nkeys; ++i) {
      std::snprintf(key, sizeof key, "key%06d", i);
      store[key] = value;
    }
    if (!persist.SaveNow()) {
      return {};
    }
    // Tail: 10% of the keys mutated after the snapshot.
    for (int i = 0; i < nkeys / 10; ++i) {
      std::snprintf(key, sizeof key, "key%06d", i);
      persist.AppendSet(0, key, "tail");
    }
    persist.OnTurnEnd();
  }

  // Reboot: only |disk| survives; filesystem object and Persist are rebuilt.
  vfscore::Vfs vfs;
  vfscore::BlockFs fs(&disk, &mem);
  fs.EnsureFormatted();
  vfs.Mount("/persist", &fs);
  apps::Persist persist(&vfs, pcfg);
  std::size_t restored = 0;
  apps::Persist::Applier apply;
  apply.set = [&restored](std::uint16_t, std::string_view, std::string_view) {
    ++restored;  // counting applier: replay cost without store-insert cost
  };
  apply.del = [](std::uint16_t, std::string_view) {};
  apply.clear = [&restored](std::uint16_t) { restored = 0; };

  bench::RealTimer timer;
  apps::Persist::RecoverStats rs = persist.Recover(apply);
  RecoveryRow row;
  row.keys = nkeys;
  row.recover_ms = timer.ElapsedNs() / 1e6;
  row.keys_per_s = row.recover_ms > 0.0
                       ? static_cast<double>(nkeys) / (row.recover_ms / 1e3)
                       : 1e9;
  row.snapshot_keys = rs.snapshot_keys;
  row.aof_commands = rs.aof_commands;
  row.ok = rs.snapshot_loaded &&
           rs.snapshot_keys == static_cast<std::uint64_t>(nkeys) &&
           rs.aof_commands == static_cast<std::uint64_t>(nkeys / 10) &&
           !rs.aof_tail_truncated;
  return row;
}

void WriteJson(const std::vector<AofRow>& aof, double ratio,
               const std::vector<RecoveryRow>& rec) {
  std::FILE* f = std::fopen("BENCH_persist.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "persist: cannot write json\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"persist\",\n");
  std::fprintf(f, "  \"workload\": \"redis-benchmark SET, 16 conns pipeline 8, "
                  "64B values; recovery = snapshot + 10%% AOF tail replay\",\n");
  std::fprintf(f, "  \"aof\": [\n");
  for (std::size_t i = 0; i < aof.size(); ++i) {
    const AofRow& r = aof[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"requests\": %llu, \"virtual_ms\": "
                 "%.2f, \"kreq_s\": %.1f, \"aof_writes\": %llu, \"fsyncs\": "
                 "%llu}%s\n",
                 r.mode, static_cast<unsigned long long>(r.requests),
                 r.virtual_ms, r.kreq_per_s,
                 static_cast<unsigned long long>(r.aof_writes),
                 static_cast<unsigned long long>(r.fsyncs),
                 i + 1 < aof.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"aof_on_ratio\": %.3f,\n", ratio);
  std::fprintf(f, "  \"recovery\": [\n");
  for (std::size_t i = 0; i < rec.size(); ++i) {
    const RecoveryRow& r = rec[i];
    std::fprintf(f,
                 "    {\"keys\": %d, \"recover_ms\": %.3f, \"keys_per_s\": "
                 "%.0f, \"snapshot_keys\": %llu, \"aof_commands\": %llu, "
                 "\"ok\": %s}%s\n",
                 r.keys, r.recover_ms, r.keys_per_s,
                 static_cast<unsigned long long>(r.snapshot_keys),
                 static_cast<unsigned long long>(r.aof_commands),
                 r.ok ? "true" : "false", i + 1 < rec.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Persistence tier: AOF throughput tax and replay-on-boot recovery");

  std::printf("%-16s %12s %12s %12s %10s %10s\n", "mode", "requests",
              "virtual ms", "kreq/s", "aof writes", "fsyncs");
  std::vector<AofRow> aof;
  for (bool on : {false, true}) {
    AofRow row = RunSetLeg(on, /*target_replies=*/20'000);
    std::printf("%-16s %12llu %12.2f %12.1f %10llu %10llu\n", row.mode,
                static_cast<unsigned long long>(row.requests), row.virtual_ms,
                row.kreq_per_s, static_cast<unsigned long long>(row.aof_writes),
                static_cast<unsigned long long>(row.fsyncs));
    aof.push_back(row);
  }
  const double ratio =
      aof[0].kreq_per_s > 0.0 ? aof[1].kreq_per_s / aof[0].kreq_per_s : 0.0;
  std::printf("AOF-on/AOF-off SET throughput: %.1f%%\n", ratio * 100.0);

  std::printf("\n%-10s %14s %14s %16s %14s\n", "keys", "recover ms",
              "keys/s", "snapshot keys", "aof commands");
  std::vector<RecoveryRow> rec;
  for (int n : {1'000, 5'000, 20'000}) {
    RecoveryRow row = RunRecoveryLeg(n);
    std::printf("%-10d %14.3f %14.0f %16llu %14llu\n", row.keys,
                row.recover_ms, row.keys_per_s,
                static_cast<unsigned long long>(row.snapshot_keys),
                static_cast<unsigned long long>(row.aof_commands));
    rec.push_back(row);
  }
  WriteJson(aof, ratio, rec);
  std::printf(
      "(criteria: AOF everyturn >= 70%% of AOF-off SET throughput with zero "
      "I/O errors; every recovery restores snapshot + tail exactly at >= 10k "
      "keys/s)\n");

  bool ok = true;
  if (aof[0].requests == 0 || aof[1].requests == 0) {
    std::printf("FAIL: a SET leg served no requests\n");
    ok = false;
  }
  if (ratio < 0.70) {
    std::printf("FAIL: AOF-on throughput is %.1f%% of AOF-off (need 70%%)\n",
                ratio * 100.0);
    ok = false;
  }
  if (aof[1].io_errors != 0) {
    std::printf("FAIL: AOF leg hit %llu I/O errors\n",
                static_cast<unsigned long long>(aof[1].io_errors));
    ok = false;
  }
  for (const RecoveryRow& r : rec) {
    if (!r.ok) {
      std::printf("FAIL: %d-key recovery did not restore the dataset\n",
                  r.keys);
      ok = false;
    }
    if (r.keys_per_s < 10'000.0) {
      std::printf("FAIL: %d-key recovery sustained only %.0f keys/s\n", r.keys,
                  r.keys_per_s);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
