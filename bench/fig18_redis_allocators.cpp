// Fig 18: Redis GET/SET throughput per allocator (30 conns, pipeline 16).
#include "bench/common.h"

int main() {
  bench::PrintHeader("Fig 18: Redis throughput per allocator");
  std::printf("%-11s %14s %14s\n", "allocator", "GET (kreq/s)", "SET (kreq/s)");
  for (ukalloc::Backend backend :
       {ukalloc::Backend::kMimalloc, ukalloc::Backend::kTlsf, ukalloc::Backend::kBuddy,
        ukalloc::Backend::kTinyAlloc}) {
    env::Profile profile = env::Profile::UnikraftKvm();
    profile.allocator = backend;
    bench::NetBenchResult get = bench::RunRedisBench(profile, false, 800);
    bench::NetBenchResult set = bench::RunRedisBench(profile, true, 800);
    std::printf("%-11s %14.1f %14.1f\n", ukalloc::BackendName(backend), get.kreq_per_s,
                set.kreq_per_s);
  }
  std::printf("\n(shape criteria: mimalloc best, tinyalloc far behind — paper 2.7x "
              "spread)\n");
  return 0;
}
