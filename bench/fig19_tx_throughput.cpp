// Fig 19: TX throughput vs packet size — uknetdev vs DPDK-in-a-Linux-guest,
// each over vhost-user and vhost-net. Frames really traverse the virtqueue
// and the wire; throughput comes from the virtual clock.
#include <cstdio>
#include <memory>

#include "ukalloc/registry.h"
#include "uknetdev/virtio_net.h"

namespace {

double RunTx(uknetdev::VirtioBackend backend, std::size_t pkt_bytes,
             std::uint64_t extra_per_burst, int bursts = 400, int burst_size = 32) {
  ukplat::Clock clock;
  ukplat::Wire::Config wire_cfg;
  wire_cfg.queue_depth = 100000;
  ukplat::Wire wire(&clock, wire_cfg);
  ukplat::MemRegion mem(64 << 20);
  std::uint64_t heap_gpa = mem.Carve(48 << 20, 4096);
  auto alloc = ukalloc::CreateAllocator(ukalloc::Backend::kTlsf,
                                        mem.At(heap_gpa, 48 << 20), 48 << 20);
  uknetdev::VirtioNet::Config cfg;
  cfg.backend = backend;
  cfg.queue_size = 256;
  uknetdev::VirtioNet nic(&mem, &clock, &wire, cfg);
  nic.Configure(uknetdev::DevConf{});
  nic.TxQueueSetup(0, uknetdev::TxQueueConf{});
  auto rx_pool = uknetdev::NetBufPool::Create(alloc.get(), &mem, 64, 2048);
  uknetdev::RxQueueConf rxc;
  rxc.buffer_pool = rx_pool.get();
  nic.RxQueueSetup(0, rxc);
  nic.Start();
  auto tx_pool = uknetdev::NetBufPool::Create(alloc.get(), &mem, 128, 2048);

  constexpr int kMaxBurst = 32;
  const int kBurst = burst_size < kMaxBurst ? burst_size : kMaxBurst;
  std::uint64_t sent = 0;
  for (int b = 0; b < bursts; ++b) {
    uknetdev::NetBuf* pkts[kMaxBurst];
    int n = 0;
    for (; n < kBurst; ++n) {
      pkts[n] = tx_pool->Alloc();
      if (pkts[n] == nullptr) {
        break;
      }
      pkts[n]->len = static_cast<std::uint32_t>(pkt_bytes);
    }
    std::uint16_t cnt = static_cast<std::uint16_t>(n);
    nic.TxBurst(0, pkts, &cnt);
    sent += cnt;
    for (int i = cnt; i < n; ++i) {
      tx_pool->Free(pkts[i]);
    }
    clock.Charge(extra_per_burst);
    // Drain the wire so it never backpressures.
    while (wire.Receive(1).has_value()) {
    }
  }
  double seconds = clock.nanoseconds() / 1e9;
  return static_cast<double>(sent) / seconds / 1e6;  // Mpps
}

}  // namespace

int main() {
  std::printf("==== Fig 19: TX throughput (Mpps) vs packet size ====\n");
  std::printf("%-6s %18s %18s %18s %18s\n", "bytes", "ukraft/vhost-user",
              "ukraft/vhost-net", "dpdk-vm/vhost-user", "dpdk-vm/vhost-net");
  // DPDK in a Linux VM pays the framework's per-burst bookkeeping on top of
  // the same virtio rings (~500 cycles/burst of mbuf + PMD accounting).
  constexpr std::uint64_t kDpdkPerBurst = 500;
  for (std::size_t bytes : {64u, 128u, 256u, 512u, 1024u, 1500u}) {
    double uk_user = RunTx(uknetdev::VirtioBackend::kVhostUser, bytes, 0);
    double uk_net = RunTx(uknetdev::VirtioBackend::kVhostNet, bytes, 0);
    double dpdk_user = RunTx(uknetdev::VirtioBackend::kVhostUser, bytes, kDpdkPerBurst);
    double dpdk_net = RunTx(uknetdev::VirtioBackend::kVhostNet, bytes, kDpdkPerBurst);
    std::printf("%-6zu %18.2f %18.2f %18.2f %18.2f\n", bytes, uk_user, uk_net,
                dpdk_user, dpdk_net);
  }
  // Old-equivalent vs new data path: one packet per TxBurst call (the shape
  // of a per-packet syscall/write path) against full 32-packet bursts over
  // the same rings. The burst path amortizes kicks and per-call overhead and
  // must come out at least as fast.
  std::printf("\n==== burst amortization: single-packet vs 32-burst TX (Mpps) ====\n");
  std::printf("%-6s %18s %18s %10s\n", "bytes", "single(socket-eq)", "burst-32",
              "speedup");
  for (std::size_t bytes : {64u, 256u, 1500u}) {
    double single = RunTx(uknetdev::VirtioBackend::kVhostNet, bytes, 0, 400 * 32, 1);
    double burst = RunTx(uknetdev::VirtioBackend::kVhostNet, bytes, 0, 400, 32);
    std::printf("%-6zu %18.2f %18.2f %9.2fx\n", bytes, single, burst,
                single > 0 ? burst / single : 0.0);
  }
  std::printf("\n(shape criteria: vhost-user >> vhost-net at small packets; uknetdev "
              "matches DPDK-in-guest; rates fall with packet size once byte costs "
              "dominate; burst-32 >= single-packet TX)\n");
  return 0;
}
