// Ablations for design choices DESIGN.md calls out:
//   1. interrupt-mode vs poll-mode uknetdev RX under rising load;
//   2. virtqueue/TX batch-size sweep (where batching pays);
//   3. syscall-shim indirection: direct vs table dispatch (real ns);
//   4. DCE granularity: per-object vs per-library elimination.
#include <chrono>
#include <cstdio>
#include <memory>

#include "ukalloc/registry.h"
#include "ukbuild/linker.h"
#include "uknetdev/virtio_net.h"
#include "posix/shim.h"

namespace {

// ---- 1: interrupt vs polling -----------------------------------------------

void NetdevModes() {
  std::printf("---- ablation 1: RX interrupt vs poll mode ----\n");
  std::printf("%-12s %14s %14s\n", "load(pkts)", "intr cycles/pkt", "poll cycles/pkt");
  for (int burst : {1, 4, 16, 64}) {
    double per_mode[2];
    for (int use_intr = 0; use_intr < 2; ++use_intr) {
      ukplat::Clock clock;
      ukplat::Wire::Config wcfg;
      wcfg.queue_depth = 10000;
      ukplat::Wire wire(&clock, wcfg);
      ukplat::MemRegion mem(32 << 20);
      std::uint64_t heap_gpa = mem.Carve(24 << 20, 4096);
      auto alloc = ukalloc::CreateAllocator(ukalloc::Backend::kTlsf,
                                            mem.At(heap_gpa, 24 << 20), 24 << 20);
      uknetdev::VirtioNet::Config cfg;
      cfg.backend = uknetdev::VirtioBackend::kVhostUser;
      cfg.wire_side = 1;
      uknetdev::VirtioNet nic(&mem, &clock, &wire, cfg);
      nic.Configure(uknetdev::DevConf{});
      nic.TxQueueSetup(0, uknetdev::TxQueueConf{});
      auto pool = uknetdev::NetBufPool::Create(alloc.get(), &mem, 256, 2048);
      uknetdev::RxQueueConf rxc;
      rxc.buffer_pool = pool.get();
      int wakeups = 0;
      rxc.intr_handler = [&wakeups](std::uint16_t) { ++wakeups; };
      nic.RxQueueSetup(0, rxc);
      nic.Start();
      if (use_intr) {
        nic.RxIntrEnable(0);
      }
      std::uint64_t before = clock.cycles();
      std::uint64_t total = 0;
      for (int round = 0; round < 200; ++round) {
        for (int k = 0; k < burst; ++k) {
          wire.Send(0, std::vector<std::uint8_t>(64, 1));
        }
        nic.BackendPoll();
        uknetdev::NetBuf* pkts[64];
        std::uint16_t cnt = 64;
        nic.RxBurst(0, pkts, &cnt);
        for (int i = 0; i < cnt; ++i) {
          pkts[i]->pool->Free(pkts[i]);
        }
        total += cnt;
      }
      per_mode[use_intr] =
          static_cast<double>(clock.cycles() - before) / static_cast<double>(total);
    }
    std::printf("%-12d %14.0f %14.0f\n", burst, per_mode[1], per_mode[0]);
  }
  std::printf("(interrupt overhead amortizes away as bursts grow — §3.1's automatic "
              "transition to polling under load)\n\n");
}

// ---- 2: batch size sweep ------------------------------------------------------

void BatchSweep() {
  std::printf("---- ablation 2: TX batch size sweep (vhost-net) ----\n");
  std::printf("%-8s %16s\n", "batch", "cycles/pkt");
  for (int batch : {1, 2, 4, 8, 16, 32, 64}) {
    ukplat::Clock clock;
    ukplat::Wire::Config wcfg;
    wcfg.queue_depth = 100000;
    ukplat::Wire wire(&clock, wcfg);
    ukplat::MemRegion mem(32 << 20);
    std::uint64_t heap_gpa = mem.Carve(24 << 20, 4096);
    auto alloc = ukalloc::CreateAllocator(ukalloc::Backend::kTlsf,
                                          mem.At(heap_gpa, 24 << 20), 24 << 20);
    uknetdev::VirtioNet::Config cfg;
    cfg.backend = uknetdev::VirtioBackend::kVhostNet;
    uknetdev::VirtioNet nic(&mem, &clock, &wire, cfg);
    nic.Configure(uknetdev::DevConf{});
    nic.TxQueueSetup(0, uknetdev::TxQueueConf{});
    auto rx_pool = uknetdev::NetBufPool::Create(alloc.get(), &mem, 32, 2048);
    uknetdev::RxQueueConf rxc;
    rxc.buffer_pool = rx_pool.get();
    nic.RxQueueSetup(0, rxc);
    nic.Start();
    auto tx_pool = uknetdev::NetBufPool::Create(alloc.get(), &mem, 128, 2048);
    std::uint64_t sent = 0;
    for (int round = 0; round < 400; ++round) {
      uknetdev::NetBuf* pkts[64];
      for (int i = 0; i < batch; ++i) {
        pkts[i] = tx_pool->Alloc();
        pkts[i]->len = 64;
      }
      std::uint16_t cnt = static_cast<std::uint16_t>(batch);
      nic.TxBurst(0, pkts, &cnt);
      sent += cnt;
      while (wire.Receive(1).has_value()) {
      }
    }
    std::printf("%-8d %16.0f\n", batch,
                static_cast<double>(clock.cycles()) / static_cast<double>(sent));
  }
  std::printf("(the kick cost amortizes across the batch: why uknetdev is burst-based)\n\n");
}

// ---- 3: shim indirection -------------------------------------------------------

void ShimIndirection() {
  std::printf("---- ablation 3: direct vs shim-table dispatch (real ns/call) ----\n");
  ukplat::Clock clock;
  int nr = posix::SyscallNumber("getpid");
  volatile std::int64_t sink = 0;
  // Direct: a plain function call.
  auto direct_fn = +[]() -> std::int64_t { return 1; };
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 2'000'000; ++i) {
    sink += direct_fn();
  }
  double direct_ns = std::chrono::duration<double, std::nano>(
                         std::chrono::steady_clock::now() - t0)
                         .count() /
                     2e6;
  // Through the handler table.
  posix::SyscallShim shim(&clock, posix::DispatchMode::kDirectCall);
  shim.Register(nr, [](const posix::SyscallArgs&) -> std::int64_t { return 1; });
  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 2'000'000; ++i) {
    sink += shim.Call(nr);
  }
  double table_ns = std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - t0)
                        .count() /
                    2e6;
  std::printf("direct=%.2fns  shim-table=%.2fns  overhead=%.2fns (vs 60ns+ for a "
              "trap)\n\n",
              direct_ns, table_ns, table_ns - direct_ns);
  (void)sink;
}

// ---- 4: DCE granularity ----------------------------------------------------------

void DceGranularity() {
  std::printf("---- ablation 4: DCE granularity ----\n");
  ukbuild::Registry registry = ukbuild::Registry::Default();
  ukbuild::Linker linker(&registry);
  ukbuild::Config cfg;
  cfg.app = "redis";
  ukbuild::Image none = linker.Link(cfg);
  cfg.dce = true;
  ukbuild::Image object_level = linker.Link(cfg);
  // Library-level DCE can only drop whole libraries, which the dependency
  // closure already did — so it equals the no-DCE image.
  std::printf("no DCE: %.1f KB; per-object DCE: %.1f KB (saves %.1f%%); per-library "
              "DCE: %.1f KB (saves 0%%)\n",
              none.total_bytes / 1024.0, object_level.total_bytes / 1024.0,
              100.0 * (1.0 - static_cast<double>(object_level.total_bytes) /
                                 static_cast<double>(none.total_bytes)),
              none.total_bytes / 1024.0);
  std::printf("(object granularity is what makes --gc-sections worth it)\n");
}

}  // namespace

int main() {
  std::printf("==== Ablations ====\n");
  NetdevModes();
  BatchSweep();
  ShimIndirection();
  DceGranularity();
  return 0;
}
