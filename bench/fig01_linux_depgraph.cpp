// Fig 1: Linux kernel inter-component dependency graph — edge weights,
// density, per-component coupling (the numbers behind "removing or replacing
// any single component ... is a daunting task").
#include <cstdio>

#include "analysis/linux_depgraph.h"

int main() {
  const analysis::ComponentGraph& g = analysis::LinuxKernelGraph();
  std::printf("==== Fig 1: Linux kernel component dependencies (cscope) ====\n");
  std::printf("components=%zu  edge-pairs=%zu  total-cross-calls=%llu  density=%.2f\n",
              g.components.size(), g.EdgePairs(),
              static_cast<unsigned long long>(g.TotalCalls()), g.Density());
  std::printf("%-10s %12s\n", "component", "coupling");
  for (const std::string& c : g.components) {
    std::printf("%-10s %12llu\n", c.c_str(),
                static_cast<unsigned long long>(g.Coupling(c)));
  }
  std::printf("\nheaviest edges:\n");
  for (const auto& e : g.edges) {
    if (e.calls >= 200) {
      std::printf("  %-8s -> %-8s %5u calls\n", e.from.c_str(), e.to.c_str(), e.calls);
    }
  }
  return 0;
}
