// Table 4 companion: TCP echo throughput, deque-copy send path vs the
// retained-netbuf retransmission queue. The stream really traverses both
// stacks, the virtqueues and the wire; throughput comes from the virtual
// clock. The "deque-copy" row models the pre-refactor TX path by charging
// the one extra per-byte copy it performed (send deque -> TX netbuf) on top
// of the identical run; the retained path writes app bytes straight into the
// wire buffer, so its row is the measurement with no extra charge. A lossy
// section shows the other half of the win: retransmissions re-burst retained
// buffers, so TX pool churn per delivered MB stays flat.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/event_loop.h"
#include "apps/stream_server.h"
#include "bench/common.h"
#include "uknet/stack.h"
#include "uknetdev/virtio_net.h"

namespace {

using namespace uknet;

struct EchoHost {
  // |pool_bufs| is the TOTAL netbuf budget (0 = the single-connection
  // default); sized by workload (connections in flight), not by queue count,
  // so single- and multi-queue rows face the same buffer pressure.
  EchoHost(ukplat::Clock* clock, ukplat::Wire* wire, int side, Ip4Addr ip,
           std::uint16_t queues = 1, std::uint32_t pool_bufs = 0)
      : mem(48 << 20) {
    std::uint64_t heap_gpa = mem.Carve(32 << 20, 4096);
    alloc = ukalloc::CreateAllocator(ukalloc::Backend::kTlsf, mem.At(heap_gpa, 32 << 20),
                                     32 << 20);
    uknetdev::VirtioNet::Config cfg;
    cfg.backend = uknetdev::VirtioBackend::kVhostUser;
    cfg.wire_side = side;
    cfg.mac = uknetdev::MacAddr{{2, 0, 0, 0, 0, static_cast<std::uint8_t>(side + 1)}};
    cfg.queue_size = 256;
    nic = std::make_unique<uknetdev::VirtioNet>(&mem, clock, wire, cfg);
    stack = std::make_unique<NetStack>(&mem, clock, alloc.get());
    NetIf::Config ifcfg;
    ifcfg.ip = ip;
    ifcfg.queues = queues;
    ifcfg.tx_pool_bufs = pool_bufs != 0 ? pool_bufs : 256;
    ifcfg.rx_pool_bufs = pool_bufs != 0 ? pool_bufs : 512;
    netif = stack->AddInterface(nic.get(), ifcfg);
  }

  ukplat::MemRegion mem;
  std::unique_ptr<ukalloc::Allocator> alloc;
  std::unique_ptr<uknetdev::VirtioNet> nic;
  std::unique_ptr<NetStack> stack;
  NetIf* netif = nullptr;
};

struct EchoResult {
  double mbit_per_s = 0.0;
  std::uint64_t retransmissions = 0;
  std::uint64_t tx_allocs = 0;
  std::uint64_t bytes = 0;
  // Frame accounting, split by direction and by kind: the delayed-ACK win
  // shows up as |rev_pure_acks| falling well below |fwd_data_frames| (the
  // reverse path used to carry one ACK per data segment).
  std::uint64_t fwd_data_frames = 0;  // client data segments (incl. rexmits)
  std::uint64_t fwd_pure_acks = 0;    // client ACK-only frames
  std::uint64_t rev_data_frames = 0;  // server echo data segments
  std::uint64_t rev_pure_acks = 0;    // server ACK-only frames
  std::uint64_t fwd_frames = 0;       // every frame the client socket sent
  std::uint64_t fwd_rexmit_events = 0;  // client-side recovery events
  std::uint64_t fast_retransmits = 0;
  std::uint64_t rto_retransmits = 0;
  std::uint64_t sack_spared_segments = 0;  // rexmits skipped as SACKed
  std::uint64_t tlp_probes = 0;            // tail-loss probes, both ends
  std::uint64_t rexmit_copy_allocs = 0;    // rexmits that left retained bufs
};

// Streams |total_bytes| client->server, echoing everything back. When
// |model_deque_copy| is set, every payload byte the client's TCP layer hands
// to the device is charged one extra copy — the deque->netbuf copy of the
// old send path (retransmitted bytes pay it again, as they did then).
// |modern| toggles NetStack::tcp_modern on both ends: the NewReno + SACK +
// delayed-ACK fast path vs the legacy stop-and-go baseline. |app_window|
// caps the application-level bytes outstanding (sent but not yet echoed
// back) — request/response pacing. A capped flow is where stop-and-go
// hurts: with no fresh data to trigger dup ACKs, a legacy sender sits out
// a full RTO for every segment its peer discarded as out-of-order.
EchoResult RunEcho(std::size_t total_bytes, double drop_rate, bool model_deque_copy,
                   bool modern = true,
                   std::size_t app_window = static_cast<std::size_t>(-1)) {
  ukplat::Clock clock;
  ukplat::Wire::Config wire_cfg;
  wire_cfg.queue_depth = 4096;
  wire_cfg.drop_rate = drop_rate;
  ukplat::Wire wire(&clock, wire_cfg);
  EchoHost a(&clock, &wire, 0, MakeIp(10, 0, 0, 1));
  EchoHost b(&clock, &wire, 1, MakeIp(10, 0, 0, 2));
  // Loss-free wire: the RTO only guards genuine stalls. Keep it well above
  // the worst-case queueing delay of 16 windows behind one queue, or the
  // single-queue row collapses into spurious go-back-N storms.
  a.stack->rto_cycles = 20'000'000;
  b.stack->rto_cycles = 20'000'000;
  a.stack->tcp_modern = modern;
  b.stack->tcp_modern = modern;
  a.netif->AddArpEntry(MakeIp(10, 0, 0, 2), b.nic->mac());
  b.netif->AddArpEntry(MakeIp(10, 0, 0, 1), a.nic->mac());

  auto listener = b.stack->TcpListen(7);
  auto client = a.stack->TcpConnect(MakeIp(10, 0, 0, 2), 7);
  std::shared_ptr<TcpSocket> server;

  std::vector<std::uint8_t> chunk(8192);
  for (std::size_t i = 0; i < chunk.size(); ++i) {
    chunk[i] = static_cast<std::uint8_t>(i * 31);
  }
  std::uint8_t buf[8192];
  std::size_t sent = 0;
  std::size_t echoed_back = 0;
  // Echo bytes the server's send buffer couldn't take yet. Under loss the
  // reverse path can spend a while in recovery with its send buffer full;
  // dropping the overflow would cap |echoed_back| short of the stream.
  std::vector<std::uint8_t> backlog;
  std::size_t backlog_off = 0;
  std::uint64_t tx_allocs_before = a.netif->tx_pool()->total_allocs();
  std::uint64_t last_client_segments = 0;
  std::uint64_t last_server_segments = 0;
  bench::RealTimer timer;
  for (int rounds = 0; rounds < 4'000'000 && echoed_back < total_bytes; ++rounds) {
    clock.Charge(5'000);  // advance virtual time so RTOs can fire under loss
    const std::size_t outstanding = sent - echoed_back;
    if (client->connected() && sent < total_bytes && outstanding < app_window) {
      std::size_t want = total_bytes - sent;
      std::size_t window_left = app_window - outstanding;
      want = want < window_left ? want : window_left;
      std::int64_t n = client->Send(
          std::span(chunk.data(), want < chunk.size() ? want : chunk.size()));
      if (n > 0) {
        sent += static_cast<std::size_t>(n);
      }
    }
    a.stack->Poll();
    b.stack->Poll();
    if (server == nullptr) {
      server = listener->Accept();
    } else {
      // Echo server: drain and send right back, parking what doesn't fit.
      if (backlog_off < backlog.size()) {
        std::int64_t n = server->Send(
            std::span(backlog.data() + backlog_off, backlog.size() - backlog_off));
        if (n > 0) {
          backlog_off += static_cast<std::size_t>(n);
        }
      }
      if (backlog_off >= backlog.size()) {
        backlog.clear();
        backlog_off = 0;
        std::int64_t r = server->Recv(buf);
        if (r > 0) {
          std::int64_t n = server->Send(std::span(buf, static_cast<std::size_t>(r)));
          std::size_t took = n > 0 ? static_cast<std::size_t>(n) : 0;
          if (took < static_cast<std::size_t>(r)) {
            backlog.assign(buf + took, buf + r);
          }
        }
      }
      std::int64_t e = client->Recv(buf);
      if (e > 0) {
        echoed_back += static_cast<std::size_t>(e);
      }
    }
    if (model_deque_copy) {
      // The old path copied each transmitted segment's payload out of the
      // byte deque; charge that copy for the new segments both ends sent.
      std::uint64_t cs = client->tcp_stats().segments_sent;
      std::uint64_t ss = server != nullptr ? server->tcp_stats().segments_sent : 0;
      std::uint64_t fresh = (cs - last_client_segments) + (ss - last_server_segments);
      last_client_segments = cs;
      last_server_segments = ss;
      clock.ChargeCopy(fresh * TcpSocket::kMss);
    }
  }
  clock.Charge(clock.model().NsToCycles(timer.ElapsedNs() * bench::kSimNormalization));

  EchoResult res;
  res.bytes = echoed_back;
  double seconds = clock.nanoseconds() / 1e9;
  // Echo moves every byte twice (there and back).
  res.mbit_per_s = seconds > 0 ? 2.0 * static_cast<double>(echoed_back) * 8.0 /
                                     seconds / 1e6
                               : 0.0;
  res.retransmissions = client->tcp_stats().retransmissions +
                        (server != nullptr ? server->tcp_stats().retransmissions : 0);
  res.tx_allocs = a.netif->tx_pool()->total_allocs() - tx_allocs_before;
  const auto& cs = client->tcp_stats();
  res.fwd_data_frames = cs.data_segments_sent;
  res.fwd_pure_acks = cs.pure_acks_sent;
  res.fwd_frames = cs.segments_sent;
  res.fwd_rexmit_events = cs.retransmissions;
  res.fast_retransmits = cs.fast_retransmits;
  res.rto_retransmits = cs.rto_retransmits;
  res.sack_spared_segments = cs.sack_rexmit_segments;
  res.tlp_probes = cs.tlp_probes;
  res.rexmit_copy_allocs = cs.rexmit_copy_allocs;
  if (server != nullptr) {
    res.rev_data_frames = server->tcp_stats().data_segments_sent;
    res.rev_pure_acks = server->tcp_stats().pure_acks_sent;
    res.fast_retransmits += server->tcp_stats().fast_retransmits;
    res.rto_retransmits += server->tcp_stats().rto_retransmits;
    res.sack_spared_segments += server->tcp_stats().sack_rexmit_segments;
    res.tlp_probes += server->tcp_stats().tlp_probes;
    res.rexmit_copy_allocs += server->tcp_stats().rexmit_copy_allocs;
  }
  return res;
}

// --wait: the same single-connection echo stream, but the server side runs as
// a blocked uksched thread: NetStack::PollWait arms the RX interrupt and
// halts between bursts, with its own RTO deadlines folded into the wake
// timeout. The client half keeps the spin loop (it always has work), so the
// comparison isolates what blocking does to a busy TCP peer: throughput holds
// while the server burns poll passes only when woken.
struct WaitEchoResult {
  EchoResult echo;
  uknet::NetStack::WaitStats waits;
  std::uint64_t idle_halts = 0;
};

WaitEchoResult RunEchoWait(std::size_t total_bytes) {
  ukplat::Clock clock;
  ukplat::Wire::Config wire_cfg;
  wire_cfg.queue_depth = 4096;
  ukplat::Wire wire(&clock, wire_cfg);
  EchoHost a(&clock, &wire, 0, MakeIp(10, 0, 0, 1));
  EchoHost b(&clock, &wire, 1, MakeIp(10, 0, 0, 2));
  a.stack->rto_cycles = 20'000'000;
  b.stack->rto_cycles = 20'000'000;
  a.netif->AddArpEntry(MakeIp(10, 0, 0, 2), b.nic->mac());
  b.netif->AddArpEntry(MakeIp(10, 0, 0, 1), a.nic->mac());
  auto sched_owner = uksched::MakeScheduler(b.alloc.get(), &clock);
  auto& sched = *sched_owner;
  b.stack->SetScheduler(&sched);

  auto listener = b.stack->TcpListen(7);
  auto client = a.stack->TcpConnect(MakeIp(10, 0, 0, 2), 7);
  std::shared_ptr<TcpSocket> server;

  std::vector<std::uint8_t> chunk(8192);
  for (std::size_t i = 0; i < chunk.size(); ++i) {
    chunk[i] = static_cast<std::uint8_t>(i * 31);
  }
  std::size_t sent = 0;
  std::size_t echoed_back = 0;
  bool done = false;
  std::uint64_t done_cycles = 0;
  std::uint64_t tx_allocs_before = a.netif->tx_pool()->total_allocs();

  sched.CreateThread("echo-server", [&] {
    std::uint8_t buf[8192];
    while (!done) {
      // Bounded slice only so the loop observes |done|; real wakeups come
      // from frames (and the connection's RTO when data is in flight).
      b.stack->PollWait(NetStack::kAllQueues, 50'000'000);
      if (server == nullptr) {
        server = listener->Accept();
      }
      if (server != nullptr) {
        std::int64_t r;
        while ((r = server->Recv(buf)) > 0) {
          server->Send(std::span(buf, static_cast<std::size_t>(r)));
        }
      }
    }
  });
  sched.CreateThread("client", [&] {
    std::uint8_t buf[8192];
    bench::RealTimer timer;
    for (int rounds = 0; rounds < 4'000'000 && echoed_back < total_bytes; ++rounds) {
      clock.Charge(5'000);
      if (client->connected() && sent < total_bytes) {
        std::size_t want = total_bytes - sent;
        std::int64_t n = client->Send(
            std::span(chunk.data(), want < chunk.size() ? want : chunk.size()));
        if (n > 0) {
          sent += static_cast<std::size_t>(n);
        }
      }
      a.stack->Poll();
      std::int64_t e = client->Recv(buf);
      if (e > 0) {
        echoed_back += static_cast<std::size_t>(e);
      }
      sched.Yield();  // hand the CPU to the (probably woken) server thread
    }
    clock.Charge(
        clock.model().NsToCycles(timer.ElapsedNs() * bench::kSimNormalization));
    // Snapshot the ledger BEFORE releasing the server: its final slice
    // timeout (the clock jump that lets it observe |done|) is shutdown
    // bookkeeping, not part of the measured stream.
    done_cycles = clock.cycles();
    done = true;
  });
  sched.Run();

  WaitEchoResult res;
  res.echo.bytes = echoed_back;
  double seconds = clock.model().CyclesToNs(done_cycles) / 1e9;
  res.echo.mbit_per_s =
      seconds > 0 ? 2.0 * static_cast<double>(echoed_back) * 8.0 / seconds / 1e6 : 0.0;
  res.echo.retransmissions =
      client->tcp_stats().retransmissions +
      (server != nullptr ? server->tcp_stats().retransmissions : 0);
  res.echo.tx_allocs = a.netif->tx_pool()->total_allocs() - tx_allocs_before;
  res.waits = b.stack->wait_stats();
  res.idle_halts = sched.stats().idle_advances;
  return res;
}

// --queues N: |conns| concurrent echo connections over an N-queue datapath.
// Each connection pins to its RSS queue; the server drives one NetIf::Poll(q)
// loop per queue (round-robined by this single thread — one core per loop on
// real SMP). Reports aggregate throughput and how the flows spread.
struct ShardedResult {
  double mbit_per_s = 0.0;
  std::uint64_t per_queue_segments[8] = {0};
};

ShardedResult RunEchoSharded(std::size_t total_bytes_per_conn, std::uint16_t queues,
                             std::size_t conns) {
  ukplat::Clock clock;
  ukplat::Wire::Config wire_cfg;
  wire_cfg.queue_depth = 100000;  // 16 windows in flight outgrow the default
  ukplat::Wire wire(&clock, wire_cfg);
  // Budget ~128 netbufs per connection (a 64KB send buffer retains ~47 MSS
  // segments) so pool pressure is identical across queue counts.
  const std::uint32_t pool_bufs = static_cast<std::uint32_t>(conns) * 128;
  EchoHost a(&clock, &wire, 0, MakeIp(10, 0, 0, 1), queues, pool_bufs);
  EchoHost b(&clock, &wire, 1, MakeIp(10, 0, 0, 2), queues, pool_bufs);
  // Loss-free wire: the RTO only guards genuine stalls. Keep it well above
  // the worst-case queueing delay of 16 windows behind one queue, or the
  // single-queue row collapses into spurious go-back-N storms.
  a.stack->rto_cycles = 20'000'000;
  b.stack->rto_cycles = 20'000'000;
  a.netif->AddArpEntry(MakeIp(10, 0, 0, 2), b.nic->mac());
  b.netif->AddArpEntry(MakeIp(10, 0, 0, 1), a.nic->mac());

  auto listener = b.stack->TcpListen(7);
  std::vector<std::shared_ptr<TcpSocket>> clients;
  std::vector<std::shared_ptr<TcpSocket>> servers;
  for (std::size_t i = 0; i < conns; ++i) {
    clients.push_back(a.stack->TcpConnect(MakeIp(10, 0, 0, 2), 7));
  }
  std::vector<std::uint8_t> chunk(4096);
  for (std::size_t i = 0; i < chunk.size(); ++i) {
    chunk[i] = static_cast<std::uint8_t>(i * 31);
  }
  std::uint8_t buf[8192];
  std::vector<std::size_t> sent(conns, 0), echoed(conns, 0);
  std::size_t done = 0;
  bench::RealTimer timer;
  for (int rounds = 0; rounds < 4'000'000 && done < conns; ++rounds) {
    clock.Charge(5'000);
    for (std::size_t i = 0; i < conns; ++i) {
      if (clients[i]->connected() && sent[i] < total_bytes_per_conn) {
        std::size_t want = total_bytes_per_conn - sent[i];
        std::int64_t n = clients[i]->Send(
            std::span(chunk.data(), want < chunk.size() ? want : chunk.size()));
        if (n > 0) {
          sent[i] += static_cast<std::size_t>(n);
        }
      }
    }
    // Equal poll budget per round (>= 4 RX bursts per host) regardless of
    // queue count, so the rows compare at the same total CPU: NetStack::Poll
    // pumps each queue once; lower queue counts get extra per-queue passes —
    // the sharded event-loop body NetIf::Poll(q) — to even the budget out
    // (rounded up, so no row is ever under-budgeted vs the baseline).
    a.stack->Poll();
    b.stack->Poll();
    const int extra_passes = (4 + queues - 1) / queues - 1;
    for (int pass = 0; pass < extra_passes; ++pass) {
      for (std::uint16_t q = 0; q < queues; ++q) {
        a.netif->Poll(q);
        b.netif->Poll(q);
      }
    }
    while (auto srv = listener->Accept()) {
      servers.push_back(srv);
    }
    for (auto& srv : servers) {
      std::int64_t r = srv->Recv(buf);
      if (r > 0) {
        srv->Send(std::span(buf, static_cast<std::size_t>(r)));
      }
    }
    done = 0;
    for (std::size_t i = 0; i < conns; ++i) {
      std::int64_t e = clients[i]->Recv(buf);
      if (e > 0) {
        echoed[i] += static_cast<std::size_t>(e);
      }
      if (echoed[i] >= total_bytes_per_conn) {
        ++done;
      }
    }
  }
  clock.Charge(clock.model().NsToCycles(timer.ElapsedNs() * bench::kSimNormalization));

  ShardedResult res;
  std::size_t total = 0;
  for (std::size_t i = 0; i < conns; ++i) {
    total += echoed[i];
    if (clients[i]->tx_queue() < 8) {
      res.per_queue_segments[clients[i]->tx_queue()] +=
          clients[i]->tcp_stats().segments_sent;
    }
  }
  double seconds = clock.nanoseconds() / 1e9;
  res.mbit_per_s = seconds > 0
                       ? 2.0 * static_cast<double>(total) * 8.0 / seconds / 1e6
                       : 0.0;
  return res;
}

// --eventloop: N concurrent echo connections served by ONE thread running the
// posix epoll machinery through apps::EventLoop — the §3/§4 readiness story:
// the listener and every connection sit behind a single EpollWait, which
// parks in NetStack::PollWait whenever nothing is ready. The client half
// keeps all N pipelines full from a second (spinning) thread. Reported: the
// aggregate throughput, the server's wait ledger, an idle-window spin check
// (must be 0), and the unikernel-heap delta across the steady state (must be
// 0: views, in-place encoders, reused event arrays).
struct EventLoopEchoResult {
  double mbit_per_s = 0.0;
  std::size_t conns = 0;
  uknet::NetStack::WaitStats waits;
  std::uint64_t idle_poll_growth = 0;
  std::int64_t heap_delta_bytes = 0;
};

EventLoopEchoResult RunEchoEventLoop(std::size_t conns, std::size_t bytes_per_conn,
                                     std::uint16_t queues) {
  ukplat::Clock clock;
  ukplat::Wire::Config wire_cfg;
  wire_cfg.queue_depth = 100000;
  ukplat::Wire wire(&clock, wire_cfg);
  // ~32 netbufs per connection: echo replies turn around immediately, so the
  // retained-segment population stays small — and two pools per host must
  // still fit the 48 MB guest RAM region alongside the heap and the rings.
  const std::uint32_t pool_bufs = static_cast<std::uint32_t>(conns) * 32;
  EchoHost a(&clock, &wire, 0, MakeIp(10, 0, 0, 1), queues, pool_bufs);
  EchoHost b(&clock, &wire, 1, MakeIp(10, 0, 0, 2), queues, pool_bufs);
  a.stack->rto_cycles = 20'000'000;
  b.stack->rto_cycles = 20'000'000;
  a.netif->AddArpEntry(MakeIp(10, 0, 0, 2), b.nic->mac());
  b.netif->AddArpEntry(MakeIp(10, 0, 0, 1), a.nic->mac());
  auto sched_owner = uksched::MakeScheduler(b.alloc.get(), &clock);
  auto& sched = *sched_owner;
  b.stack->SetScheduler(&sched);
  vfscore::Vfs vfs;
  posix::PosixApi api(&clock, &vfs, b.stack.get(), posix::DispatchMode::kDirectCall,
                      &sched);

  // The echo server is the StreamServer scaffold with the identity protocol:
  // accept drain, recv loop, interest-tracked flush and close-after-drain all
  // come from the shared machinery; echo is one on_data callback.
  apps::EventLoop loop(&api);
  apps::StreamServer::Handler echo;
  echo.on_data = [](apps::StreamServer::Conn& c, std::string_view data) {
    c.out.append(data);
  };
  apps::StreamServer server(&api, &loop, echo);
  server.Listen(7);

  bool done = false;
  std::uint64_t done_cycles = 0;
  EventLoopEchoResult res;
  res.conns = conns;

  sched.CreateThread("echo-eventloop", [&] {
    while (!done) {
      loop.PumpOnce(500'000'000);  // bounded slice only to observe |done|
      // Run-to-block + yield: a busy turn returns immediately with events,
      // and under cooperative scheduling the loop must hand the CPU back so
      // the peers can ACK (their ACKs are what refill the TX pool). An idle
      // turn blocks in EpollWait, so this never becomes a spin.
      sched.Yield();
    }
  });
  sched.CreateThread("clients", [&] {
    std::vector<std::shared_ptr<TcpSocket>> socks;
    for (std::size_t i = 0; i < conns; ++i) {
      socks.push_back(a.stack->TcpConnect(MakeIp(10, 0, 0, 2), 7));
    }
    auto pump = [&] {
      clock.Charge(5'000);
      a.stack->Poll();
      sched.Yield();
    };
    for (int i = 0; i < 100000; ++i) {
      bool all = true;
      for (auto& s : socks) {
        all = all && s->connected();
      }
      if (all) {
        break;
      }
      pump();
    }
    std::vector<std::uint8_t> chunk(2048);
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      chunk[i] = static_cast<std::uint8_t>(i * 31);
    }
    std::uint8_t buf[8192];
    std::vector<std::size_t> sent(conns, 0), echoed(conns, 0);
    const std::uint64_t heap_before = b.alloc->stats().bytes_in_use;
    bench::RealTimer timer;
    std::size_t done_conns = 0;
    for (int rounds = 0; rounds < 4'000'000 && done_conns < conns; ++rounds) {
      done_conns = 0;
      for (std::size_t i = 0; i < conns; ++i) {
        if (socks[i]->connected() && sent[i] < bytes_per_conn) {
          std::size_t want = bytes_per_conn - sent[i];
          std::int64_t n = socks[i]->Send(
              std::span(chunk.data(), want < chunk.size() ? want : chunk.size()));
          if (n > 0) {
            sent[i] += static_cast<std::size_t>(n);
          }
        }
        std::int64_t e = socks[i]->Recv(buf);
        if (e > 0) {
          echoed[i] += static_cast<std::size_t>(e);
        }
        if (echoed[i] >= bytes_per_conn) {
          ++done_conns;
        }
      }
      pump();
    }
    clock.Charge(
        clock.model().NsToCycles(timer.ElapsedNs() * bench::kSimNormalization));
    done_cycles = clock.cycles();
    res.heap_delta_bytes =
        static_cast<std::int64_t>(b.alloc->stats().bytes_in_use) -
        static_cast<std::int64_t>(heap_before);
    std::size_t total = 0;
    for (std::size_t e : echoed) {
      total += e;
    }
    double seconds = clock.model().CyclesToNs(done_cycles) / 1e9;
    res.mbit_per_s =
        seconds > 0 ? 2.0 * static_cast<double>(total) * 8.0 / seconds / 1e6 : 0.0;
    // Idle window: the server must be parked in EpollWait, not spinning.
    // Settle first — the last busy turn pays the arm-then-check drains on
    // its way INTO the sleep (entry cost, not idle spinning).
    for (int i = 0; i < 4; ++i) {
      sched.Yield();
    }
    const std::uint64_t polls_before = b.stack->wait_stats().poll_iterations;
    for (int i = 0; i < 200; ++i) {
      clock.Charge(10'000);
      sched.Yield();
    }
    res.idle_poll_growth = b.stack->wait_stats().poll_iterations - polls_before;
    done = true;
    // Final pumps keep ACKing the last replies so the server retires with no
    // data in flight (a dead peer would otherwise wake its RTO forever).
    for (int i = 0; i < 50; ++i) {
      pump();
    }
  });
  sched.Run();
  res.waits = b.stack->wait_stats();
  return res;
}

// The --loss rows, emitted as BENCH_tab5_tcp_loss.json for the CI trendline.
void WriteLossJson(const EchoResult& modern, const EchoResult& legacy,
                   double drop_rate, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "tab5_tcp_echo: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"tab5_tcp_loss\",\n");
  std::fprintf(f, "  \"workload\": \"1 MB TCP echo at %.0f%% frame loss\",\n",
               drop_rate * 100.0);
  std::fprintf(f, "  \"rows\": [\n");
  const EchoResult* rows[] = {&modern, &legacy};
  const char* names[] = {"modern", "legacy"};
  for (int i = 0; i < 2; ++i) {
    const EchoResult& r = *rows[i];
    std::fprintf(
        f,
        "    {\"stack\": \"%s\", \"mbit_s\": %.1f, \"retransmit_events\": %llu, "
        "\"fast_retransmits\": %llu, \"rto_retransmits\": %llu, "
        "\"sack_spared_segments\": %llu, \"fwd_data_frames\": %llu, "
        "\"fwd_pure_acks\": %llu, \"rev_data_frames\": %llu, "
        "\"rev_pure_acks\": %llu, \"tx_allocs\": %llu, \"tlp_probes\": %llu, "
        "\"rexmit_copy_allocs\": %llu}%s\n",
        names[i], r.mbit_per_s, static_cast<unsigned long long>(r.retransmissions),
        static_cast<unsigned long long>(r.fast_retransmits),
        static_cast<unsigned long long>(r.rto_retransmits),
        static_cast<unsigned long long>(r.sack_spared_segments),
        static_cast<unsigned long long>(r.fwd_data_frames),
        static_cast<unsigned long long>(r.fwd_pure_acks),
        static_cast<unsigned long long>(r.rev_data_frames),
        static_cast<unsigned long long>(r.rev_pure_acks),
        static_cast<unsigned long long>(r.tx_allocs),
        static_cast<unsigned long long>(r.tlp_probes),
        static_cast<unsigned long long>(r.rexmit_copy_allocs), i == 0 ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

void PrintLossRow(const char* name, const EchoResult& r) {
  std::printf("%-10s %10.1f %10llu %10llu %10llu %10llu %10llu %10llu\n", name,
              r.mbit_per_s, static_cast<unsigned long long>(r.retransmissions),
              static_cast<unsigned long long>(r.fwd_data_frames),
              static_cast<unsigned long long>(r.fwd_pure_acks),
              static_cast<unsigned long long>(r.rev_data_frames),
              static_cast<unsigned long long>(r.rev_pure_acks),
              static_cast<unsigned long long>(r.tx_allocs));
}

// --loss: the loss-recovery payoff. A 1 MB echo stream at 1% frame loss,
// paced by a 32 KiB application window (request/response style — the client
// keeps at most 32 KiB outstanding before it sees the echo). Modern
// (NewReno + SACK + delayed ACKs) vs legacy stop-and-go: the legacy
// receiver discards every out-of-order segment, and with the app window
// capped there is no fresh data to feed dup ACKs, so each loss stalls the
// stream until the RTO fires; SACK recovery repairs the hole in one round
// trip instead. Gated: modern must beat legacy by >= 5x on the virtual
// clock, and the modern recovery paths must stay on retained buffers —
// rexmit_copy_allocs counts every retransmission that had to fall back to
// a fresh-buffer copy, and it must be zero.
int RunLossLeg() {
  bench::PrintHeader(
      "Tab 5 (--loss): TCP echo at 1% loss, 32K app window, modern vs legacy");
  constexpr std::size_t kLossStream = 1 << 20;
  constexpr std::size_t kAppWindow = 32 << 10;
  constexpr double kDrop = 0.01;
  EchoResult modern = RunEcho(kLossStream, kDrop, /*model_deque_copy=*/false,
                              /*modern=*/true, kAppWindow);
  EchoResult legacy = RunEcho(kLossStream, kDrop, /*model_deque_copy=*/false,
                              /*modern=*/false, kAppWindow);
  std::printf("%-10s %10s %10s %10s %10s %10s %10s %10s\n", "stack", "Mbit/s",
              "rexmits", "fwd data", "fwd acks", "rev data", "rev acks",
              "tx allocs");
  PrintLossRow("modern", modern);
  PrintLossRow("legacy", legacy);
  std::printf("modern recovery: %llu fast + %llu rto, %llu tlp probes, "
              "%llu sacked segments spared on re-burst\n",
              static_cast<unsigned long long>(modern.fast_retransmits),
              static_cast<unsigned long long>(modern.rto_retransmits),
              static_cast<unsigned long long>(modern.tlp_probes),
              static_cast<unsigned long long>(modern.sack_spared_segments));
  double speedup = legacy.mbit_per_s > 0 ? modern.mbit_per_s / legacy.mbit_per_s : 0.0;
  std::printf("speedup: %.2fx (SACK re-bursts only the holes and cwnd keeps the "
              "wire full between them; legacy stalls an RTO per lost window. "
              "The reverse path shows the delayed-ACK win: rev acks ~halve "
              "against fwd data frames)\n\n",
              speedup);
  WriteLossJson(modern, legacy, kDrop, "BENCH_tab5_tcp_loss.json");

  bool ok = true;
  if (modern.bytes < kLossStream || legacy.bytes < kLossStream) {
    std::printf("LOSS LEG FAILED: stream incomplete (modern %llu, legacy %llu "
                "of %zu bytes)\n",
                static_cast<unsigned long long>(modern.bytes),
                static_cast<unsigned long long>(legacy.bytes), kLossStream);
    ok = false;
  }
  if (speedup < 5.0) {
    std::printf("LOSS LEG FAILED: modern/legacy speedup %.2fx < 5x\n", speedup);
    ok = false;
  }
  if (modern.retransmissions == 0) {
    std::printf("LOSS LEG FAILED: no loss recovery exercised at %.0f%% drops\n",
                kDrop * 100.0);
    ok = false;
  }
  if (modern.rexmit_copy_allocs != 0) {
    std::printf("LOSS LEG FAILED: %llu retransmissions fell off the retained "
                "buffers (copy-fallback allocations; recovery must be "
                "zero-alloc)\n",
                static_cast<unsigned long long>(modern.rexmit_copy_allocs));
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t queues = 0;
  bool wait_mode = false;
  bool eventloop_mode = false;
  bool loss_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--queues") == 0 && i + 1 < argc) {
      int n = std::atoi(argv[i + 1]);
      // Clamp to the device's 4 queue pairs so the row label matches the
      // datapath that ran (and the per-queue share array stays in bounds).
      queues = static_cast<std::uint16_t>(n < 0 ? 0 : (n > 4 ? 4 : n));
    } else if (std::strcmp(argv[i], "--wait") == 0) {
      wait_mode = true;
    } else if (std::strcmp(argv[i], "--eventloop") == 0) {
      eventloop_mode = true;
    } else if (std::strcmp(argv[i], "--loss") == 0) {
      loss_mode = true;
    }
  }
  if (loss_mode) {
    return RunLossLeg();  // standalone gated leg (CI runs it under sanitizers)
  }
  if (eventloop_mode) {
    bench::PrintHeader(
        "Tab 5 (--eventloop): 64 concurrent echo connections, one epoll thread");
    EventLoopEchoResult r =
        RunEchoEventLoop(/*conns=*/64, /*bytes_per_conn=*/64 << 10,
                         queues == 0 ? 1 : queues);
    std::printf("%-12s %12s %12s %12s %12s %12s %12s\n", "conns", "Mbit/s",
                "blocked", "frame wakes", "poll iters", "idle spins", "heap delta");
    std::printf("%-12zu %12.1f %12llu %12llu %12llu %12llu %12lld\n", r.conns,
                r.mbit_per_s, static_cast<unsigned long long>(r.waits.blocked_waits),
                static_cast<unsigned long long>(r.waits.frame_wakeups),
                static_cast<unsigned long long>(r.waits.poll_iterations),
                static_cast<unsigned long long>(r.idle_poll_growth),
                static_cast<long long>(r.heap_delta_bytes));
    std::printf("(shape criteria: all 64 connections served by ONE thread that "
                "blocks in EpollWait; idle spins == 0 — the loop sleeps, not "
                "polls, when the wire is quiet; heap delta == 0 — the readiness "
                "path allocates nothing in steady state)\n\n");
    if (r.idle_poll_growth != 0 || r.heap_delta_bytes != 0) {
      std::printf("EVENTLOOP LEG FAILED: idle spins=%llu heap delta=%lld\n",
                  static_cast<unsigned long long>(r.idle_poll_growth),
                  static_cast<long long>(r.heap_delta_bytes));
      return 1;
    }
    return 0;  // standalone leg (CI runs it under sanitizers)
  }
  if (wait_mode) {
    bench::PrintHeader("Tab 5 (--wait): TCP echo, spin server vs blocking PollWait");
    constexpr std::size_t kWaitStream = 2 << 20;  // 2 MB each way
    EchoResult spin = RunEcho(kWaitStream, 0.0, /*model_deque_copy=*/false);
    WaitEchoResult wait = RunEchoWait(kWaitStream);
    std::printf("%-14s %14s %14s %12s %12s %12s\n", "server loop", "Mbit/s",
                "retransmits", "idle polls", "frame wakes", "timer wakes");
    std::printf("%-14s %14.1f %14llu %12s %12s %12s\n", "spin", spin.mbit_per_s,
                static_cast<unsigned long long>(spin.retransmissions), "-", "-", "-");
    std::printf("%-14s %14.1f %14llu %12llu %12llu %12llu\n", "blocking",
                wait.echo.mbit_per_s,
                static_cast<unsigned long long>(wait.echo.retransmissions),
                static_cast<unsigned long long>(wait.waits.poll_iterations),
                static_cast<unsigned long long>(wait.waits.frame_wakeups),
                static_cast<unsigned long long>(wait.waits.timer_wakeups));
    std::printf("(shape criteria: blocking within a few %% of spin — one frame "
                "wake per client round (storm avoidance) amortizes the context "
                "switch across a whole window of segments, and RTO deadlines "
                "ride the wake timeout instead of a polled timer check. Spin "
                "keeps a small edge under saturation, which is why polling "
                "stays the §3.1 default; bench_fig_idle_wakeup shows the bursty "
                "duty cycle where blocking also wins >=10x on idle cycles)\n\n");
  }
  if (queues > 1) {
    bench::PrintHeader("Tab 5 (--queues): TCP echo, RSS-sharded connections");
    // 16 connections: the clients draw sequential ephemeral ports, and the
    // Toeplitz hash maps blocks of them onto queue subsets — 16 is enough to
    // cover (and balance) up to 4 queues; the per-queue share column proves it.
    constexpr std::size_t kConns = 16;
    constexpr std::size_t kPerConn = 256 << 10;
    std::printf("%-10s %14s  per-queue segment share\n", "queues", "Mbit/s");
    for (std::uint16_t q : {static_cast<std::uint16_t>(1), queues}) {
      ShardedResult r = RunEchoSharded(kPerConn, q, kConns);
      std::uint64_t total_segs = 0;
      for (std::uint64_t s : r.per_queue_segments) {
        total_segs += s;
      }
      std::printf("%-10u %14.1f  ", static_cast<unsigned>(q), r.mbit_per_s);
      for (std::uint16_t i = 0; i < q; ++i) {
        std::printf("q%u=%2.0f%% ", static_cast<unsigned>(i),
                    total_segs > 0 ? 100.0 * static_cast<double>(r.per_queue_segments[i]) /
                                         static_cast<double>(total_segs)
                                   : 0.0);
      }
      std::printf("\n");
    }
    std::printf("(flows pin to their RSS queue; per-queue loops touch disjoint "
                "rings and pools)\n\n");
  }
  bench::PrintHeader("Tab 5: TCP echo throughput — deque-copy vs retained netbufs");
  constexpr std::size_t kStream = 4 << 20;  // 4 MB each way
  std::printf("%-24s %14s %14s %14s\n", "tx path", "Mbit/s", "retransmits",
              "tx allocs");
  EchoResult copy_path = RunEcho(kStream, 0.0, /*model_deque_copy=*/true);
  EchoResult retained = RunEcho(kStream, 0.0, /*model_deque_copy=*/false);
  std::printf("%-24s %14.1f %14llu %14llu\n", "deque-copy (modeled)",
              copy_path.mbit_per_s,
              static_cast<unsigned long long>(copy_path.retransmissions),
              static_cast<unsigned long long>(copy_path.tx_allocs));
  std::printf("%-24s %14.1f %14llu %14llu\n", "retained netbufs",
              retained.mbit_per_s,
              static_cast<unsigned long long>(retained.retransmissions),
              static_cast<unsigned long long>(retained.tx_allocs));
  double speedup = copy_path.mbit_per_s > 0
                       ? retained.mbit_per_s / copy_path.mbit_per_s
                       : 0.0;
  std::printf("speedup: %.2fx (app bytes are written once, into the buffer "
              "that reaches the device)\n\n", speedup);

  std::printf("---- lossy wire (2%% drops): retransmission cost ----\n");
  std::printf("%-10s %10s %10s %10s %10s %10s %10s %10s\n", "tx path", "Mbit/s",
              "rexmits", "fwd data", "fwd acks", "rev data", "rev acks",
              "tx allocs");
  EchoResult lossy = RunEcho(1 << 20, 0.02, /*model_deque_copy=*/false);
  PrintLossRow("retained", lossy);
  std::printf("(shape criteria: retained >= deque-copy; RTO/fast-retransmit "
              "re-burst the same buffers, so tx allocs track fresh segments, "
              "not retransmissions; pure ACKs are reported apart from data "
              "frames so the delayed-ACK coalescing stays visible)\n");
  return 0;
}
