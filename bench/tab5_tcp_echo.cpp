// Table 4 companion: TCP echo throughput, deque-copy send path vs the
// retained-netbuf retransmission queue. The stream really traverses both
// stacks, the virtqueues and the wire; throughput comes from the virtual
// clock. The "deque-copy" row models the pre-refactor TX path by charging
// the one extra per-byte copy it performed (send deque -> TX netbuf) on top
// of the identical run; the retained path writes app bytes straight into the
// wire buffer, so its row is the measurement with no extra charge. A lossy
// section shows the other half of the win: retransmissions re-burst retained
// buffers, so TX pool churn per delivered MB stays flat.
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "bench/common.h"
#include "uknet/stack.h"
#include "uknetdev/virtio_net.h"

namespace {

using namespace uknet;

struct EchoHost {
  EchoHost(ukplat::Clock* clock, ukplat::Wire* wire, int side, Ip4Addr ip)
      : mem(32 << 20) {
    std::uint64_t heap_gpa = mem.Carve(24 << 20, 4096);
    alloc = ukalloc::CreateAllocator(ukalloc::Backend::kTlsf, mem.At(heap_gpa, 24 << 20),
                                     24 << 20);
    uknetdev::VirtioNet::Config cfg;
    cfg.backend = uknetdev::VirtioBackend::kVhostUser;
    cfg.wire_side = side;
    cfg.mac = uknetdev::MacAddr{{2, 0, 0, 0, 0, static_cast<std::uint8_t>(side + 1)}};
    cfg.queue_size = 256;
    nic = std::make_unique<uknetdev::VirtioNet>(&mem, clock, wire, cfg);
    stack = std::make_unique<NetStack>(&mem, clock, alloc.get());
    NetIf::Config ifcfg;
    ifcfg.ip = ip;
    netif = stack->AddInterface(nic.get(), ifcfg);
  }

  ukplat::MemRegion mem;
  std::unique_ptr<ukalloc::Allocator> alloc;
  std::unique_ptr<uknetdev::VirtioNet> nic;
  std::unique_ptr<NetStack> stack;
  NetIf* netif = nullptr;
};

struct EchoResult {
  double mbit_per_s = 0.0;
  std::uint64_t retransmissions = 0;
  std::uint64_t tx_allocs = 0;
  std::uint64_t bytes = 0;
};

// Streams |total_bytes| client->server, echoing everything back. When
// |model_deque_copy| is set, every payload byte the client's TCP layer hands
// to the device is charged one extra copy — the deque->netbuf copy of the
// old send path (retransmitted bytes pay it again, as they did then).
EchoResult RunEcho(std::size_t total_bytes, double drop_rate, bool model_deque_copy) {
  ukplat::Clock clock;
  ukplat::Wire::Config wire_cfg;
  wire_cfg.queue_depth = 4096;
  wire_cfg.drop_rate = drop_rate;
  ukplat::Wire wire(&clock, wire_cfg);
  EchoHost a(&clock, &wire, 0, MakeIp(10, 0, 0, 1));
  EchoHost b(&clock, &wire, 1, MakeIp(10, 0, 0, 2));
  a.stack->rto_cycles = 200'000;
  b.stack->rto_cycles = 200'000;
  a.netif->AddArpEntry(MakeIp(10, 0, 0, 2), b.nic->mac());
  b.netif->AddArpEntry(MakeIp(10, 0, 0, 1), a.nic->mac());

  auto listener = b.stack->TcpListen(7);
  auto client = a.stack->TcpConnect(MakeIp(10, 0, 0, 2), 7);
  std::shared_ptr<TcpSocket> server;

  std::vector<std::uint8_t> chunk(8192);
  for (std::size_t i = 0; i < chunk.size(); ++i) {
    chunk[i] = static_cast<std::uint8_t>(i * 31);
  }
  std::uint8_t buf[8192];
  std::size_t sent = 0;
  std::size_t echoed_back = 0;
  std::uint64_t tx_allocs_before = a.netif->tx_pool()->total_allocs();
  std::uint64_t last_client_segments = 0;
  std::uint64_t last_server_segments = 0;
  bench::RealTimer timer;
  for (int rounds = 0; rounds < 4'000'000 && echoed_back < total_bytes; ++rounds) {
    clock.Charge(5'000);  // advance virtual time so RTOs can fire under loss
    if (client->connected() && sent < total_bytes) {
      std::size_t want = total_bytes - sent;
      std::int64_t n = client->Send(
          std::span(chunk.data(), want < chunk.size() ? want : chunk.size()));
      if (n > 0) {
        sent += static_cast<std::size_t>(n);
      }
    }
    a.stack->Poll();
    b.stack->Poll();
    if (server == nullptr) {
      server = listener->Accept();
    } else {
      // Echo server: drain and send right back.
      std::int64_t r = server->Recv(buf);
      if (r > 0) {
        server->Send(std::span(buf, static_cast<std::size_t>(r)));
      }
      std::int64_t e = client->Recv(buf);
      if (e > 0) {
        echoed_back += static_cast<std::size_t>(e);
      }
    }
    if (model_deque_copy) {
      // The old path copied each transmitted segment's payload out of the
      // byte deque; charge that copy for the new segments both ends sent.
      std::uint64_t cs = client->tcp_stats().segments_sent;
      std::uint64_t ss = server != nullptr ? server->tcp_stats().segments_sent : 0;
      std::uint64_t fresh = (cs - last_client_segments) + (ss - last_server_segments);
      last_client_segments = cs;
      last_server_segments = ss;
      clock.ChargeCopy(fresh * TcpSocket::kMss);
    }
  }
  clock.Charge(clock.model().NsToCycles(timer.ElapsedNs() * bench::kSimNormalization));

  EchoResult res;
  res.bytes = echoed_back;
  double seconds = clock.nanoseconds() / 1e9;
  // Echo moves every byte twice (there and back).
  res.mbit_per_s = seconds > 0 ? 2.0 * static_cast<double>(echoed_back) * 8.0 /
                                     seconds / 1e6
                               : 0.0;
  res.retransmissions = client->tcp_stats().retransmissions +
                        (server != nullptr ? server->tcp_stats().retransmissions : 0);
  res.tx_allocs = a.netif->tx_pool()->total_allocs() - tx_allocs_before;
  return res;
}

}  // namespace

int main() {
  bench::PrintHeader("Tab 5: TCP echo throughput — deque-copy vs retained netbufs");
  constexpr std::size_t kStream = 4 << 20;  // 4 MB each way
  std::printf("%-24s %14s %14s %14s\n", "tx path", "Mbit/s", "retransmits",
              "tx allocs");
  EchoResult copy_path = RunEcho(kStream, 0.0, /*model_deque_copy=*/true);
  EchoResult retained = RunEcho(kStream, 0.0, /*model_deque_copy=*/false);
  std::printf("%-24s %14.1f %14llu %14llu\n", "deque-copy (modeled)",
              copy_path.mbit_per_s,
              static_cast<unsigned long long>(copy_path.retransmissions),
              static_cast<unsigned long long>(copy_path.tx_allocs));
  std::printf("%-24s %14.1f %14llu %14llu\n", "retained netbufs",
              retained.mbit_per_s,
              static_cast<unsigned long long>(retained.retransmissions),
              static_cast<unsigned long long>(retained.tx_allocs));
  double speedup = copy_path.mbit_per_s > 0
                       ? retained.mbit_per_s / copy_path.mbit_per_s
                       : 0.0;
  std::printf("speedup: %.2fx (app bytes are written once, into the buffer "
              "that reaches the device)\n\n", speedup);

  std::printf("---- lossy wire (2%% drops): retransmission cost ----\n");
  std::printf("%-24s %14s %14s %14s\n", "tx path", "Mbit/s", "retransmits",
              "tx allocs");
  EchoResult lossy = RunEcho(1 << 20, 0.02, /*model_deque_copy=*/false);
  std::printf("%-24s %14.1f %14llu %14llu\n", "retained netbufs",
              lossy.mbit_per_s,
              static_cast<unsigned long long>(lossy.retransmissions),
              static_cast<unsigned long long>(lossy.tx_allocs));
  std::printf("(shape criteria: retained >= deque-copy; RTO/fast-retransmit "
              "re-burst the same buffers, so tx allocs track fresh segments, "
              "not retransmissions)\n");
  return 0;
}
