// Fig 11: minimum memory needed to boot + run each application, found by
// binary search over guest RAM with real boot + app-init allocation.
#include <cstdio>
#include <functional>
#include <string>

#include "ukboot/instance.h"
#include "ukbuild/linker.h"
#include "uknetdev/netbuf.h"
#include "ukplat/memregion.h"

namespace {

// App init models: the allocations each app must satisfy to come up.
bool AppInit(const std::string& app, ukboot::Instance& vm) {
  ukalloc::Allocator* heap = vm.heap();
  auto alloc_all = [heap](std::initializer_list<std::size_t> blocks) {
    for (std::size_t b : blocks) {
      if (heap->Malloc(b) == nullptr) {
        return false;
      }
    }
    return true;
  };
  if (app == "hello") {
    return true;
  }
  if (app == "nginx") {
    // netbuf pools + connection buffers + config tree.
    return alloc_all({512 * 2048, 256 * 2048, 128 * 1024, 64 * 1024, 32 * 1024});
  }
  if (app == "redis") {
    return alloc_all({512 * 2048, 256 * 2048, 1 << 20, 256 * 1024, 128 * 1024});
  }
  if (app == "sqlite") {
    return alloc_all({(1 << 20) + (1 << 19), 256 * 1024, 64 * 1024});
  }
  return false;
}

int MinMemoryMb(const std::string& app) {
  auto boots = [&app](std::size_t mb) {
    ukboot::InstanceConfig cfg;
    cfg.memory_bytes = mb << 20;
    cfg.allocator = ukalloc::Backend::kTlsf;
    cfg.enable_scheduler = app != "hello";
    ukboot::Instance vm(cfg);
    if (!vm.Boot().ok) {
      return false;
    }
    return AppInit(app, vm);
  };
  int lo = 1, hi = 64;
  while (!boots(static_cast<std::size_t>(hi)) && hi < 1024) {
    hi *= 2;
  }
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (boots(static_cast<std::size_t>(mid))) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace

int main() {
  std::printf("==== Fig 11: minimum memory to run (MB) ====\n");
  std::printf("%-14s %6s %6s %6s %6s\n", "os", "hello", "nginx", "redis", "sqlite");
  std::printf("%-14s %6d %6d %6d %6d   <- measured (boot+init binary search)\n",
              "unikraft", MinMemoryMb("hello"), MinMemoryMb("nginx"),
              MinMemoryMb("redis"), MinMemoryMb("sqlite"));
  for (const auto& m : ukbuild::OtherOsModels()) {
    if (m.hello_min_mb == 0) {
      continue;
    }
    std::printf("%-14s %6d %6d %6d %6d\n", m.os.c_str(), m.hello_min_mb,
                m.nginx_min_mb, m.redis_min_mb, m.sqlite_min_mb);
  }
  std::printf("\n(shape criterion: unikraft needs the least memory; 2-8MB suffices)\n");
  return 0;
}
