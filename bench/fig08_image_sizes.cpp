// Fig 8: Unikraft image sizes with and without LTO and DCE.
#include <cstdio>

#include "ukbuild/linker.h"

int main() {
  ukbuild::Registry registry = ukbuild::Registry::Default();
  ukbuild::Linker linker(&registry);
  std::printf("==== Fig 8: image sizes +/- LTO +/- DCE (KVM) ====\n");
  std::printf("%-12s %10s %10s %10s %10s\n", "app", "default", "+LTO", "+DCE",
              "+DCE+LTO");
  for (const char* app : {"helloworld", "nginx", "redis", "sqlite"}) {
    double sizes[4];
    int i = 0;
    for (auto [dce, lto] : {std::pair{false, false}, {false, true}, {true, false},
                            {true, true}}) {
      ukbuild::Config cfg;
      cfg.app = app;
      cfg.dce = dce;
      cfg.lto = lto;
      sizes[i++] = static_cast<double>(linker.Link(cfg).total_bytes) / 1024.0;
    }
    std::printf("%-12s %8.1fKB %8.1fKB %8.1fKB %8.1fKB\n", app, sizes[0], sizes[1],
                sizes[2], sizes[3]);
  }
  std::printf("\n(shape criteria: all images < 2MB; DCE > LTO savings; hello ~hundreds "
              "of KB)\n");
  return 0;
}
