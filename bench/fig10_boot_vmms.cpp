// Fig 10: boot time for a helloworld unikernel across VMMs — modeled monitor
// share plus the real measured guest boot (paging + allocator + inittab).
#include <cstdio>

#include "ukboot/instance.h"

int main() {
  std::printf("==== Fig 10: boot time across VMMs (helloworld) ====\n");
  std::printf("%-16s %12s %12s %12s\n", "vmm", "vmm(ms)", "guest(us)", "total(ms)");
  struct Case {
    const char* label;
    ukplat::VmmModel vmm;
    int nics;
  } cases[] = {
      {"qemu", ukplat::VmmModel::Qemu(), 0},
      {"qemu-1nic", ukplat::VmmModel::Qemu(), 1},
      {"qemu-microvm", ukplat::VmmModel::QemuMicroVm(), 0},
      {"solo5", ukplat::VmmModel::Solo5(), 0},
      {"firecracker", ukplat::VmmModel::Firecracker(), 0},
  };
  for (const Case& c : cases) {
    // Median of several boots to de-noise the real measurement.
    double best_guest = 1e18;
    ukboot::BootReport report;
    for (int i = 0; i < 5; ++i) {
      ukboot::InstanceConfig cfg;
      cfg.memory_bytes = 8 << 20;
      cfg.allocator = ukalloc::Backend::kBootAlloc;  // helloworld minimal config
      cfg.enable_scheduler = false;
      cfg.vmm = c.vmm;
      cfg.nics = c.nics;
      ukboot::Instance vm(cfg);
      report = vm.Boot();
      if (report.ok && report.guest_us < best_guest) {
        best_guest = report.guest_us;
      }
    }
    std::printf("%-16s %12.1f %12.1f %12.2f\n", c.label, report.vmm_us / 1000.0,
                best_guest, report.vmm_us / 1000.0 + best_guest / 1000.0);
  }
  std::printf("\n(shape criteria: guest boot <1ms everywhere; totals dominated by the "
              "VMM; qemu ~40ms > microvm ~9ms > solo5/fc ~3ms)\n");
  return 0;
}
