// Fig 20: 9pfs read/write latency vs block size, against a Linux-guest
#include <chrono>
// baseline. Unikraft rows run the real 9P stack (codec + virtqueue + server);
// Linux rows model the guest VFS + trap + virtio-blk page-cache path.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "uk9p/ninepfs.h"
#include "ukarch/random.h"
#include "vfscore/vfs.h"

namespace {

struct World {
  World() : mem(64 << 20) {
    // Host share: an 8 MB random file (stands in for the paper's 1 GB share;
    // latency depends on chunk size, not file size).
    std::vector<std::uint8_t> content(8 << 20);
    ukarch::Xorshift rng(5);
    for (auto& b : content) {
      b = static_cast<std::uint8_t>(rng.Next());
    }
    server.root().AddFile("data.bin", std::move(content));
    transport = std::make_unique<uk9p::Virtio9pTransport>(&mem, &clock, &server);
    client = std::make_unique<uk9p::Client>(transport.get());
    fs = std::make_unique<uk9p::NinePFs>(client.get());
    vfs.Mount("/", fs.get());
  }
  ukplat::MemRegion mem;
  ukplat::Clock clock;
  uk9p::Server server;
  std::unique_ptr<uk9p::Virtio9pTransport> transport;
  std::unique_ptr<uk9p::Client> client;
  std::unique_ptr<uk9p::NinePFs> fs;
  vfscore::Vfs vfs;
};

// Unikraft-side latency: virtual cycles + measured real work per op.
double MeasureUs(World& world, bool write, std::size_t chunk) {
  std::shared_ptr<vfscore::File> f;
  world.vfs.Open("/data.bin", vfscore::kRead | vfscore::kWrite, &f);
  std::vector<std::byte> buf(chunk, std::byte{7});
  constexpr int kOps = 200;
  std::uint64_t cycles_before = world.clock.cycles();
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kOps; ++i) {
    std::uint64_t off = static_cast<std::uint64_t>(i % 64) * chunk;
    if (write) {
      f->WriteAt(off, buf);
    } else {
      f->ReadAt(off, buf);
    }
  }
  double real_us = std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  double virt_us =
      world.clock.model().CyclesToNs(world.clock.cycles() - cycles_before) / 1e3;
  return (virt_us + real_us) / kOps;
}

// Linux guest model: dd-style read through guest VFS + virtio-blk:
// trap + page-cache miss + virtio round trip + copy, per chunk.
double LinuxGuestUs(bool write, std::size_t chunk) {
  ukplat::CostModel m;
  double cycles = 0;
  cycles += m.syscall_trap_mitigated;                  // read()/write() trap
  cycles += 2200;                                      // guest VFS + page cache
  double blocks = static_cast<double>(chunk) / 4096.0; // 4K-granular block IO
  if (blocks < 1) {
    blocks = 1;
  }
  cycles += (m.vm_exit + m.irq_inject + 900) * blocks; // virtio-blk per block
  cycles += m.CopyCost(chunk) * 2;                     // host + guest copies
  if (write) {
    cycles += 1500 * blocks;                           // journaling overhead
  }
  return m.CyclesToNs(static_cast<std::uint64_t>(cycles)) / 1e3;
}

}  // namespace

int main() {
  World world;
  std::printf("==== Fig 20: 9pfs latency (us/op) vs block size ====\n");
  std::printf("%-8s %14s %14s %14s %14s\n", "KB", "ukraft-read", "ukraft-write",
              "linux-read", "linux-write");
  for (std::size_t kb : {4u, 8u, 16u, 32u, 64u}) {
    double ur = MeasureUs(world, false, kb * 1024);
    double uw = MeasureUs(world, true, kb * 1024);
    std::printf("%-8zu %14.2f %14.2f %14.2f %14.2f\n", kb, ur, uw,
                LinuxGuestUs(false, kb * 1024), LinuxGuestUs(true, kb * 1024));
  }
  std::printf("\n(shape criteria: unikraft below linux for both ops at every size; "
              "latency grows with block size)\n");
  return 0;
}
