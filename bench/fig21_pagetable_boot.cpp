// Fig 21: boot time with static vs dynamically initialized page tables,
// as a function of guest memory size — real 4-level page-table construction.
#include <chrono>
#include <cstdio>

#include "ukboot/instance.h"

namespace {

double BootUs(ukboot::PagingMode mode, std::size_t mem_mb) {
  double best = 1e18;
  for (int run = 0; run < 5; ++run) {
    ukboot::InstanceConfig cfg;
    cfg.memory_bytes = mem_mb << 20;
    cfg.paging = mode;
    cfg.allocator = ukalloc::Backend::kBootAlloc;
    cfg.enable_scheduler = false;
    ukboot::Instance vm(cfg);
    ukboot::BootReport report = vm.Boot();
    if (report.ok) {
      best = std::min(best, report.guest_us);
    }
  }
  return best;
}

}  // namespace

int main() {
  std::printf("==== Fig 21: boot time, static vs dynamic page tables ====\n");
  std::printf("%-16s %12s %16s\n", "memory", "boot (us)", "pt entries written");
  std::printf("%-16s %12.1f %16s\n", "static 1GB", BootUs(ukboot::PagingMode::kStatic, 1024),
              "(constant)");
  for (std::size_t mb : {32u, 64u, 128u, 256u, 512u, 1024u, 2048u, 3072u}) {
    ukboot::InstanceConfig cfg;
    cfg.memory_bytes = mb << 20;
    cfg.paging = ukboot::PagingMode::kDynamic;
    cfg.allocator = ukalloc::Backend::kBootAlloc;
    cfg.enable_scheduler = false;
    ukboot::Instance probe(cfg);
    probe.Boot();
    std::uint64_t entries = probe.pagetable() ? probe.pagetable()->entries_written() : 0;
    std::printf("dynamic %4zuMB   %12.1f %16llu\n", mb,
                BootUs(ukboot::PagingMode::kDynamic, mb),
                static_cast<unsigned long long>(entries));
  }
  std::printf("\n(shape criteria: static is constant and cheapest; dynamic grows with "
              "memory — paper 46us@32MB to 114us@3GB)\n");
  return 0;
}
