// bench/common.h - shared harness pieces for the per-figure benchmarks.
//
// Metric convention (documented in EXPERIMENTS.md): server-side benchmarks
// run real code over the simulated fabric; all real CPU time of the loop is
// charged into the world's virtual clock at the simulated CPU speed, on top
// of the modeled privilege/device costs the environment profile adds. The
// reported throughput is requests / virtual-seconds, which makes runs
// deterministic in *shape* while still letting real implementation costs
// (allocators, parsers, ring operations) show through.
#ifndef BENCH_COMMON_H_
#define BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "apps/http.h"
#include "apps/kvstore.h"
#include "apps/redis.h"
#include "env/testbed.h"
#include "ukalloc/registry.h"
#include "uknetdev/virtio_net.h"
#include "uksched/scheduler.h"

namespace bench {

// Our C++ interpretation of the data path (simulated rings, bounds-checked
// guest memory, std containers) costs roughly 10x the cycles the equivalent
// production C code spends on the paper's i7-9700K. Real loop time is charged
// into the virtual clock scaled by this factor so that the *modeled*
// privilege/device costs sit in a realistic proportion to per-request CPU
// work. Calibrated against Fig 12's absolute rates; see EXPERIMENTS.md.
inline constexpr double kSimNormalization = 0.10;

// Syscall-equivalents the real applications issue per request under
// pipelining (read+write+epoll shares): calibration constants for the
// environment comparisons.
inline constexpr double kRedisSyscallsPerRequest = 0.6;
inline constexpr double kNginxSyscallsPerRequest = 5.0;

// One valid Ethernet+IPv4+UDP frame carrying |payload| to the kv server, as
// injected by the load-generator side of the kvstore benches. |src_port|
// selects the flow (and with it, the RSS queue the request lands on).
inline std::vector<std::uint8_t> BuildKvFrame(uknetdev::MacAddr dst_mac,
                                              uknet::Ip4Addr src_ip,
                                              uknet::Ip4Addr dst_ip,
                                              std::uint16_t dst_port,
                                              std::uint16_t src_port,
                                              std::span<const std::uint8_t> payload) {
  using namespace uknet;
  std::vector<std::uint8_t> frame(kEthHdrBytes + kIp4HdrBytes + kUdpHdrBytes +
                                  payload.size());
  EthHeader eth{dst_mac, uknetdev::MacAddr{{2, 0, 0, 0, 0, 9}}, kEthTypeIp4};
  eth.Serialize(frame.data());
  Ip4Header ip;
  ip.total_len = static_cast<std::uint16_t>(frame.size() - kEthHdrBytes);
  ip.proto = kIpProtoUdp;
  ip.src = src_ip;
  ip.dst = dst_ip;
  ip.Serialize(frame.data() + kEthHdrBytes);
  UdpHeader udp;
  udp.src_port = src_port;
  udp.dst_port = dst_port;
  std::memcpy(frame.data() + kEthHdrBytes + kIp4HdrBytes + kUdpHdrBytes,
              payload.data(), payload.size());
  udp.Serialize(frame.data() + kEthHdrBytes + kIp4HdrBytes, src_ip, dst_ip, payload);
  return frame;
}

// The classic single-key GET frame (|key| must align with the flow's shard
// for the request to stay loop-local on a sharded server).
inline std::vector<std::uint8_t> BuildKvGetFrame(uknetdev::MacAddr dst_mac,
                                                 uknet::Ip4Addr src_ip,
                                                 uknet::Ip4Addr dst_ip,
                                                 std::uint16_t dst_port,
                                                 std::uint16_t src_port = 40000,
                                                 std::uint16_t key = 7) {
  apps::KvRequest req;
  req.is_set = false;
  req.key = key;
  std::vector<std::uint8_t> payload = apps::EncodeKvRequest(req);
  return BuildKvFrame(dst_mac, src_ip, dst_ip, dst_port, src_port, payload);
}

// ---- interrupt-driven idle harness (fig_idle_wakeup, tab4/fig_rss --wait) --------
//
// Runs the specialized uknetdev kvstore under a cooperative scheduler with a
// bursty duty cycle: the generator sends a 32-request burst, then sits idle
// for |think_turns| scheduler turns before the next one. A spin server pays a
// ring-check (kEmptyPumpCycles) for every idle pass through its loop; a
// blocking server arms the RX interrupt and halts, so its only idle passes
// are the arm-then-check verifications — the §3.1/§3.3 story in one number.

struct KvWaitRow {
  double kreq_s = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t idle_pumps = 0;   // pump passes that found no request
  std::uint64_t idle_cycles = 0;  // virtual cycles burned on those passes
  std::uint64_t wakeups = 0;      // RX interrupt fires (blocking mode)
  std::uint64_t idle_halts = 0;   // scheduler HLT-and-jump events (blocking)
  std::uint64_t per_queue_requests[8] = {0};
};

inline constexpr std::uint64_t kEmptyPumpCycles = 150;     // one idle ring check
inline constexpr std::uint64_t kKvRequestCycles = 1'000;   // modeled app work
inline constexpr std::uint64_t kThinkSliceCycles = 10'000; // generator think time

inline KvWaitRow RunKvScheduled(std::uint16_t queues, bool blocking,
                                int rounds = 400, int think_turns = 32) {
  ukplat::Clock clock;
  ukplat::Wire::Config wire_cfg;
  wire_cfg.queue_depth = 100000;
  ukplat::Wire wire(&clock, wire_cfg);
  ukplat::MemRegion mem(64 << 20);
  std::uint64_t heap_gpa = mem.Carve(48 << 20, 4096);
  auto alloc = ukalloc::CreateAllocator(ukalloc::Backend::kTlsf,
                                        mem.At(heap_gpa, 48 << 20), 48 << 20);
  uknetdev::VirtioNet::Config cfg;
  cfg.backend = uknetdev::VirtioBackend::kVhostUser;
  cfg.queue_size = 256;
  uknetdev::VirtioNet nic(&mem, &clock, &wire, cfg);
  apps::KvServer server(&nic, &mem, alloc.get(), uknet::MakeIp(10, 0, 0, 1), 7777,
                        apps::KvMode::kUkNetdev, queues);
  auto sched_owner = uksched::MakeScheduler(alloc.get(), &clock);
  auto& sched = *sched_owner;
  if (blocking) {
    server.EnableWait(&sched);  // before Start(): queue setup hooks the intrs
  }
  KvWaitRow row;
  if (!server.Start()) {
    return row;
  }
  constexpr int kFlows = 16;
  std::vector<std::vector<std::uint8_t>> frames;
  for (int f = 0; f < kFlows; ++f) {
    frames.push_back(BuildKvGetFrame(nic.mac(), uknet::MakeIp(10, 0, 0, 2),
                                     uknet::MakeIp(10, 0, 0, 1), 7777,
                                     static_cast<std::uint16_t>(41000 + f * 7)));
  }
  bool done = false;
  std::uint64_t done_cycles = 0;
  // Blocking pumps sleep with a bounded deadline only so they notice |done|
  // after the generator finishes. It must be MUCH longer than one duty cycle
  // — a slice comparable to the think gap expires mid-gap and manufactures
  // timeout wakeups the workload doesn't have; the final wake is a free
  // virtual-clock jump, so generosity costs nothing.
  const std::uint64_t wait_slice =
      64 * static_cast<std::uint64_t>(think_turns) * kThinkSliceCycles;
  for (std::uint16_t q = 0; q < server.queue_count(); ++q) {
    sched.CreateThread("pump", [&, q] {
      while (!done) {
        std::size_t n;
        if (blocking) {
          // Idle accounting comes from the server's own counters, read once
          // after the run (a per-call delta here would double-count across
          // queue threads: the shared counter moves while this one sleeps).
          n = server.PumpQueueWait(q, wait_slice);
        } else {
          n = server.PumpQueue(q);
          if (n == 0) {
            clock.Charge(kEmptyPumpCycles);
            ++row.idle_pumps;
            row.idle_cycles += kEmptyPumpCycles;
          }
          sched.Yield();
        }
        clock.Charge(n * kKvRequestCycles);
      }
    });
  }
  sched.CreateThread("generator", [&] {
    for (int r = 0; r < rounds; ++r) {
      for (int k = 0; k < 32; ++k) {
        wire.Send(1, frames[static_cast<std::size_t>(k) % kFlows]);
      }
      sched.Yield();  // the burst lands: wakeups (or the next spin pass) answer
      for (int t = 0; t < think_turns; ++t) {
        clock.Charge(kThinkSliceCycles);
        sched.Yield();
      }
      while (wire.Receive(1).has_value()) {
      }
    }
    done_cycles = clock.cycles();
    done = true;
  });
  sched.Run();
  row.requests = server.requests();
  row.wakeups = server.wait_stats().intr_fires;
  row.idle_halts = sched.stats().idle_advances;
  if (blocking) {
    // Every idle pass of a blocking pump is an arm-then-check verification;
    // price them like the spin loop's checks so the rows compare directly.
    // (A few hundred cycles per burst: charging them mid-run would not move
    // the virtual clock measurably, so the ledger reads them at the end.)
    row.idle_pumps = server.wait_stats().empty_pumps;
    row.idle_cycles = row.idle_pumps * kEmptyPumpCycles;
  }
  for (std::uint16_t q = 0; q < server.queue_count() && q < 8; ++q) {
    row.per_queue_requests[q] = server.queue_requests(q);
  }
  const double seconds = clock.model().CyclesToNs(done_cycles) / 1e9;
  row.kreq_s =
      seconds > 0 ? static_cast<double>(row.requests) / seconds / 1000.0 : 0.0;
  return row;
}

class RealTimer {
 public:
  RealTimer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedNs() const {
    return std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() -
                                                    start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void PrintHeader(const char* title) {
  std::printf("==== %s ====\n", title);
}

struct NetBenchResult {
  double kreq_per_s = 0.0;
  std::uint64_t requests = 0;
  double virtual_ms = 0.0;
};

// Runs the redis-benchmark workload (30 conns, pipeline 16) under |profile|.
inline NetBenchResult RunRedisBench(const env::Profile& profile, bool use_set,
                                    int rounds = 1500) {
  env::TestBed bed(profile);
  apps::RedisServer server(&bed.api(), bed.server().alloc.get(), 6379);
  if (!server.Start()) {
    return {};
  }
  apps::RedisBenchClient::Config cfg;
  cfg.connections = 30;
  cfg.pipeline = 16;
  cfg.use_set = use_set;
  apps::RedisBenchClient bench(bed.client().stack.get(), env::TestBed::kServerIp, 6379,
                               cfg);
  auto pump = [&] {
    bed.Poll();
    server.PumpOnce();
  };
  if (!bench.ConnectAll(pump)) {
    return {};
  }
  bed.clock().Reset();
  std::uint64_t before = bench.replies();
  std::uint64_t syscall_cost = posix::SyscallShim::EntryCost(
      profile.dispatch, bed.clock().model());
  RealTimer timer;
  for (int i = 0; i < rounds; ++i) {
    bench.PumpOnce();
    bed.Poll();
    std::size_t handled = server.PumpOnce();
    // Per-request residuals: profile bloat, per-request syscall shares, and
    // the host/VMM net path per packet (~1 packet per 4 pipelined requests).
    bed.clock().Charge(profile.per_request_overhead * handled);
    bed.clock().Charge(static_cast<std::uint64_t>(
        kRedisSyscallsPerRequest * static_cast<double>(syscall_cost * handled)));
    bed.ChargeHostNetPath(handled / 2 + 1);
  }
  double real_ns = timer.ElapsedNs();
  bed.clock().Charge(bed.clock().model().NsToCycles(real_ns * kSimNormalization));
  NetBenchResult result;
  result.requests = bench.replies() - before;
  result.virtual_ms = bed.clock().milliseconds();
  result.kreq_per_s =
      static_cast<double>(result.requests) / (result.virtual_ms / 1e3) / 1e3;
  return result;
}

// Runs the wrk workload (30 conns, 612-byte page) under |profile| with a
// selectable allocator override.
inline NetBenchResult RunNginxBench(env::Profile profile, int rounds = 1200) {
  env::TestBed bed(profile);
  std::shared_ptr<vfscore::File> f;
  bed.vfs().Open("/index.html", vfscore::kWrite | vfscore::kCreate, &f);
  std::string body(612, 'u');
  f->Write(std::as_bytes(std::span(body.data(), body.size())));

  apps::HttpServer server(&bed.api(), 80, &bed.vfs());
  if (!server.Start()) {
    return {};
  }
  apps::WrkClient::Config cfg;
  cfg.connections = 30;
  cfg.pipeline = 8;
  apps::WrkClient wrk(bed.client().stack.get(), env::TestBed::kServerIp, 80, cfg);
  auto pump = [&] {
    bed.Poll();
    server.PumpOnce();
  };
  if (!wrk.ConnectAll(pump)) {
    return {};
  }
  bed.clock().Reset();
  std::uint64_t before = wrk.responses();
  std::uint64_t syscall_cost = posix::SyscallShim::EntryCost(
      profile.dispatch, bed.clock().model());
  RealTimer timer;
  for (int i = 0; i < rounds; ++i) {
    wrk.PumpOnce();
    bed.Poll();
    std::size_t handled = server.PumpOnce();
    bed.clock().Charge(profile.per_request_overhead * handled);
    bed.clock().Charge(static_cast<std::uint64_t>(
        kNginxSyscallsPerRequest * static_cast<double>(syscall_cost * handled)));
    bed.ChargeHostNetPath(handled + 1);  // 612B responses: ~1 packet per request
  }
  double real_ns = timer.ElapsedNs();
  bed.clock().Charge(bed.clock().model().NsToCycles(real_ns * kSimNormalization));
  NetBenchResult result;
  result.requests = wrk.responses() - before;
  result.virtual_ms = bed.clock().milliseconds();
  result.kreq_per_s =
      static_cast<double>(result.requests) / (result.virtual_ms / 1e3) / 1e3;
  return result;
}

}  // namespace bench

#endif  // BENCH_COMMON_H_
