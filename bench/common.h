// bench/common.h - shared harness pieces for the per-figure benchmarks.
//
// Metric convention (documented in EXPERIMENTS.md): server-side benchmarks
// run real code over the simulated fabric; all real CPU time of the loop is
// charged into the world's virtual clock at the simulated CPU speed, on top
// of the modeled privilege/device costs the environment profile adds. The
// reported throughput is requests / virtual-seconds, which makes runs
// deterministic in *shape* while still letting real implementation costs
// (allocators, parsers, ring operations) show through.
#ifndef BENCH_COMMON_H_
#define BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/http.h"
#include "apps/kvstore.h"
#include "apps/redis.h"
#include "env/testbed.h"

namespace bench {

// Our C++ interpretation of the data path (simulated rings, bounds-checked
// guest memory, std containers) costs roughly 10x the cycles the equivalent
// production C code spends on the paper's i7-9700K. Real loop time is charged
// into the virtual clock scaled by this factor so that the *modeled*
// privilege/device costs sit in a realistic proportion to per-request CPU
// work. Calibrated against Fig 12's absolute rates; see EXPERIMENTS.md.
inline constexpr double kSimNormalization = 0.10;

// Syscall-equivalents the real applications issue per request under
// pipelining (read+write+epoll shares): calibration constants for the
// environment comparisons.
inline constexpr double kRedisSyscallsPerRequest = 0.6;
inline constexpr double kNginxSyscallsPerRequest = 5.0;

// One valid Ethernet+IPv4+UDP GET frame for the kv server, as injected by
// the load-generator side of the kvstore benches. |src_port| selects the
// flow (and with it, the RSS queue the request lands on).
inline std::vector<std::uint8_t> BuildKvGetFrame(uknetdev::MacAddr dst_mac,
                                                 uknet::Ip4Addr src_ip,
                                                 uknet::Ip4Addr dst_ip,
                                                 std::uint16_t dst_port,
                                                 std::uint16_t src_port = 40000) {
  using namespace uknet;
  apps::KvRequest req;
  req.is_set = false;
  req.key = 7;
  std::vector<std::uint8_t> payload = apps::EncodeKvRequest(req);
  std::vector<std::uint8_t> frame(kEthHdrBytes + kIp4HdrBytes + kUdpHdrBytes +
                                  payload.size());
  EthHeader eth{dst_mac, uknetdev::MacAddr{{2, 0, 0, 0, 0, 9}}, kEthTypeIp4};
  eth.Serialize(frame.data());
  Ip4Header ip;
  ip.total_len = static_cast<std::uint16_t>(frame.size() - kEthHdrBytes);
  ip.proto = kIpProtoUdp;
  ip.src = src_ip;
  ip.dst = dst_ip;
  ip.Serialize(frame.data() + kEthHdrBytes);
  UdpHeader udp;
  udp.src_port = src_port;
  udp.dst_port = dst_port;
  std::memcpy(frame.data() + kEthHdrBytes + kIp4HdrBytes + kUdpHdrBytes,
              payload.data(), payload.size());
  udp.Serialize(frame.data() + kEthHdrBytes + kIp4HdrBytes, src_ip, dst_ip, payload);
  return frame;
}

class RealTimer {
 public:
  RealTimer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedNs() const {
    return std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() -
                                                    start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void PrintHeader(const char* title) {
  std::printf("==== %s ====\n", title);
}

struct NetBenchResult {
  double kreq_per_s = 0.0;
  std::uint64_t requests = 0;
  double virtual_ms = 0.0;
};

// Runs the redis-benchmark workload (30 conns, pipeline 16) under |profile|.
inline NetBenchResult RunRedisBench(const env::Profile& profile, bool use_set,
                                    int rounds = 1500) {
  env::TestBed bed(profile);
  apps::RedisServer server(&bed.api(), bed.server().alloc.get(), 6379);
  if (!server.Start()) {
    return {};
  }
  apps::RedisBenchClient::Config cfg;
  cfg.connections = 30;
  cfg.pipeline = 16;
  cfg.use_set = use_set;
  apps::RedisBenchClient bench(bed.client().stack.get(), env::TestBed::kServerIp, 6379,
                               cfg);
  auto pump = [&] {
    bed.Poll();
    server.PumpOnce();
  };
  if (!bench.ConnectAll(pump)) {
    return {};
  }
  bed.clock().Reset();
  std::uint64_t before = bench.replies();
  std::uint64_t syscall_cost = posix::SyscallShim::EntryCost(
      profile.dispatch, bed.clock().model());
  RealTimer timer;
  for (int i = 0; i < rounds; ++i) {
    bench.PumpOnce();
    bed.Poll();
    std::size_t handled = server.PumpOnce();
    // Per-request residuals: profile bloat, per-request syscall shares, and
    // the host/VMM net path per packet (~1 packet per 4 pipelined requests).
    bed.clock().Charge(profile.per_request_overhead * handled);
    bed.clock().Charge(static_cast<std::uint64_t>(
        kRedisSyscallsPerRequest * static_cast<double>(syscall_cost * handled)));
    bed.ChargeHostNetPath(handled / 2 + 1);
  }
  double real_ns = timer.ElapsedNs();
  bed.clock().Charge(bed.clock().model().NsToCycles(real_ns * kSimNormalization));
  NetBenchResult result;
  result.requests = bench.replies() - before;
  result.virtual_ms = bed.clock().milliseconds();
  result.kreq_per_s =
      static_cast<double>(result.requests) / (result.virtual_ms / 1e3) / 1e3;
  return result;
}

// Runs the wrk workload (30 conns, 612-byte page) under |profile| with a
// selectable allocator override.
inline NetBenchResult RunNginxBench(env::Profile profile, int rounds = 1200) {
  env::TestBed bed(profile);
  std::shared_ptr<vfscore::File> f;
  bed.vfs().Open("/index.html", vfscore::kWrite | vfscore::kCreate, &f);
  std::string body(612, 'u');
  f->Write(std::as_bytes(std::span(body.data(), body.size())));

  apps::HttpServer server(&bed.api(), 80, &bed.vfs());
  if (!server.Start()) {
    return {};
  }
  apps::WrkClient::Config cfg;
  cfg.connections = 30;
  cfg.pipeline = 8;
  apps::WrkClient wrk(bed.client().stack.get(), env::TestBed::kServerIp, 80, cfg);
  auto pump = [&] {
    bed.Poll();
    server.PumpOnce();
  };
  if (!wrk.ConnectAll(pump)) {
    return {};
  }
  bed.clock().Reset();
  std::uint64_t before = wrk.responses();
  std::uint64_t syscall_cost = posix::SyscallShim::EntryCost(
      profile.dispatch, bed.clock().model());
  RealTimer timer;
  for (int i = 0; i < rounds; ++i) {
    wrk.PumpOnce();
    bed.Poll();
    std::size_t handled = server.PumpOnce();
    bed.clock().Charge(profile.per_request_overhead * handled);
    bed.clock().Charge(static_cast<std::uint64_t>(
        kNginxSyscallsPerRequest * static_cast<double>(syscall_cost * handled)));
    bed.ChargeHostNetPath(handled + 1);  // 612B responses: ~1 packet per request
  }
  double real_ns = timer.ElapsedNs();
  bed.clock().Charge(bed.clock().model().NsToCycles(real_ns * kSimNormalization));
  NetBenchResult result;
  result.requests = wrk.responses() - before;
  result.virtual_ms = bed.clock().milliseconds();
  result.kreq_per_s =
      static_cast<double>(result.requests) / (result.virtual_ms / 1e3) / 1e3;
  return result;
}

}  // namespace bench

#endif  // BENCH_COMMON_H_
