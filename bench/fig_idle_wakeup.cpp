// Interrupt-driven idle vs spin-polling (the §3.1/§3.3 wakeup path): the
// specialized uknetdev kvstore serving a bursty duty cycle — a 32-request
// burst, then client think time — once with a classic poll-mode spin loop
// and once blocking in PumpQueueWait on a uksched wait queue behind the
// driver's RX interrupt.
//
// Both rows pay the identical per-check ring cost; they differ only in how
// often they check. The spin loop checks every scheduler turn through the
// idle gap; the blocking loop checks twice per burst (the arm-then-check
// verification) and halts, so its idle cycles collapse by the duty-cycle
// ratio while throughput stays put: wakeups are O(1) per burst (storm
// avoidance), not per packet.
//
// Flags: --queues N (default 1), --rounds N (default 400), --wait / --spin
// to run a single leg (CI runs the --wait leg under ASan+UBSan).
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench/common.h"

namespace {

void PrintRow(const char* mode, const bench::KvWaitRow& row) {
  std::printf("%-10s %10.0f %12llu %12llu %12llu %10llu %10llu\n", mode, row.kreq_s,
              static_cast<unsigned long long>(row.requests),
              static_cast<unsigned long long>(row.idle_pumps),
              static_cast<unsigned long long>(row.idle_cycles),
              static_cast<unsigned long long>(row.wakeups),
              static_cast<unsigned long long>(row.idle_halts));
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t queues = 1;
  int rounds = 400;
  bool only_wait = false;
  bool only_spin = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--queues") == 0 && i + 1 < argc) {
      int n = std::atoi(argv[++i]);
      queues = static_cast<std::uint16_t>(n < 1 ? 1 : (n > 4 ? 4 : n));
    } else if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      int n = std::atoi(argv[++i]);
      rounds = n < 1 ? 1 : n;
    } else if (std::strcmp(argv[i], "--wait") == 0) {
      only_wait = true;
    } else if (std::strcmp(argv[i], "--spin") == 0) {
      only_spin = true;
    }
  }
  // Each flag selects its single leg; both together (or neither) run the
  // full comparison — the flags must never cancel down to an empty run.
  const bool run_spin = !only_wait || only_spin;
  const bool run_wait = !only_spin || only_wait;

  bench::PrintHeader("Idle wakeup: spin-poll loop vs blocking PumpQueueWait");
  std::printf("(uknetdev kvstore, %u queue%s, %d bursts of 32 requests, think gap "
              "between bursts)\n",
              static_cast<unsigned>(queues), queues == 1 ? "" : "s", rounds);
  std::printf("%-10s %10s %12s %12s %12s %10s %10s\n", "mode", "Kreq/s", "requests",
              "idle polls", "idle cycles", "wakeups", "halts");
  bench::KvWaitRow spin;
  bench::KvWaitRow wait;
  if (run_spin) {
    spin = bench::RunKvScheduled(queues, /*blocking=*/false, rounds);
    PrintRow("spin", spin);
  }
  if (run_wait) {
    wait = bench::RunKvScheduled(queues, /*blocking=*/true, rounds);
    PrintRow("wait", wait);
  }
  if (run_spin && run_wait) {
    const double idle_ratio =
        wait.idle_cycles > 0
            ? static_cast<double>(spin.idle_cycles) / static_cast<double>(wait.idle_cycles)
            : 0.0;
    const double tput_ratio = spin.kreq_s > 0 ? wait.kreq_s / spin.kreq_s : 0.0;
    std::printf("\nblocking idle cycles: %.1fx lower than spin; throughput: %.1f%% "
                "of the spin loop\n",
                idle_ratio, 100.0 * tput_ratio);
    std::printf("(shape criteria: blocking idle cycles >= 10x lower; throughput "
                "within 5%%; wakeups ~1 per burst per active queue — the "
                "storm-avoidance re-arm, not one per packet)\n");
  }
  return 0;
}
