// Fig 9: image sizes across OSes (ours computed, others from published data).
#include <cstdio>

#include "ukbuild/linker.h"

int main() {
  ukbuild::Registry registry = ukbuild::Registry::Default();
  ukbuild::Linker linker(&registry);
  std::printf("==== Fig 9: image sizes across OSes (MB, stripped, no LTO/DCE) ====\n");
  std::printf("%-14s %8s %8s %8s %8s\n", "os", "hello", "nginx", "redis", "sqlite");
  double ours[4];
  int i = 0;
  for (const char* app : {"helloworld", "nginx", "redis", "sqlite"}) {
    ukbuild::Config cfg;
    cfg.app = app;
    ours[i++] = static_cast<double>(linker.Link(cfg).total_bytes) / (1024.0 * 1024.0);
  }
  std::printf("%-14s %8.2f %8.2f %8.2f %8.2f   <- computed by our linker\n",
              "unikraft", ours[0], ours[1], ours[2], ours[3]);
  for (const auto& m : ukbuild::OtherOsModels()) {
    std::printf("%-14s %8.2f %8.2f %8.2f %8.2f\n", m.os.c_str(), m.hello_mb,
                m.nginx_mb, m.redis_mb, m.sqlite_mb);
  }
  std::printf("\n(shape criterion: unikraft rows smallest for every app)\n");
  return 0;
}
