// Fig 5: syscalls required by 30 server apps vs syscalls Unikraft supports.
// Prints the heatmap as rows of (nr, name, #apps needing it, supported?).
#include <cstdio>

#include "analysis/syscall_study.h"
#include "posix/syscalls.h"

int main() {
  auto demand = analysis::DemandCounts();
  const auto& supported = posix::SupportedSyscalls();
  int needed = 0;
  int needed_and_supported = 0;
  std::printf("==== Fig 5: syscall heatmap (needed by >=1 app) ====\n");
  std::printf("%4s %-22s %6s %10s\n", "nr", "name", "#apps", "supported");
  for (int nr = 0; nr <= posix::kMaxSyscallNr; ++nr) {
    auto it = demand.find(nr);
    if (it == demand.end()) {
      continue;
    }
    ++needed;
    bool sup = supported.contains(nr);
    needed_and_supported += sup ? 1 : 0;
    std::printf("%4d %-22s %6d %10s\n", nr,
                std::string(posix::SyscallName(nr)).c_str(), it->second,
                sup ? "yes" : "NO");
  }
  std::printf("\nsyscall space: %d; needed by any app: %d (%.0f%% unused)\n",
              posix::kMaxSyscallNr + 1, needed,
              100.0 * (posix::kMaxSyscallNr + 1 - needed) /
                  (posix::kMaxSyscallNr + 1));
  std::printf("needed & supported: %d/%d; Unikraft implements %zu syscalls total\n",
              needed_and_supported, needed, supported.size());
  return 0;
}
