// Fig 15: nginx sustained throughput with different allocators.
#include "bench/common.h"

int main() {
  bench::PrintHeader("Fig 15: nginx throughput per allocator");
  std::printf("%-11s %14s\n", "allocator", "kreq/s");
  for (ukalloc::Backend backend :
       {ukalloc::Backend::kMimalloc, ukalloc::Backend::kTlsf, ukalloc::Backend::kBuddy,
        ukalloc::Backend::kTinyAlloc}) {
    env::Profile profile = env::Profile::UnikraftKvm();
    profile.allocator = backend;
    bench::NetBenchResult r = bench::RunNginxBench(profile);
    std::printf("%-11s %14.1f\n", ukalloc::BackendName(backend), r.kreq_per_s);
  }
  std::printf("\n(shape criteria: mimalloc/tlsf/buddy close; tinyalloc ~30%% behind)\n");
  return 0;
}
