// Table 2: automated porting — symbol resolution of 24 externally built
// libraries against musl/newlib with and without the glibc compat layer.
#include <cstdio>

#include "uklibc/porting.h"

int main() {
  using uklibc::Libc;
  using uklibc::LibcProfile;
  std::printf("==== Table 2: automated porting matrix ====\n");
  std::printf("%-18s %9s | %4s %7s | %4s %7s | %5s\n", "library", "musl(MB)", "std",
              "compat", "std", "compat", "glue");
  std::printf("%-18s %9s | %12s | %12s | %5s\n", "", "", "---musl----", "--newlib---",
              "LoC");
  LibcProfile musl_std{Libc::kMusl, false};
  LibcProfile musl_compat{Libc::kMusl, true};
  LibcProfile newlib_std{Libc::kNewlib, false};
  LibcProfile newlib_compat{Libc::kNewlib, true};
  int musl_std_ok = 0;
  for (const auto& lib : uklibc::Table2Libraries()) {
    bool ms = uklibc::Resolve(lib, musl_std).success;
    bool mc = uklibc::Resolve(lib, musl_compat).success;
    bool ns = uklibc::Resolve(lib, newlib_std).success;
    bool nc = uklibc::Resolve(lib, newlib_compat).success;
    musl_std_ok += ms ? 1 : 0;
    std::printf("%-18s %9.3f | %4s %7s | %4s %7s | %5d\n", lib.name.c_str(),
                lib.musl_image_mb, ms ? "yes" : "no", mc ? "yes" : "no",
                ns ? "yes" : "no", nc ? "yes" : "no", lib.glue_loc);
  }
  std::printf("\nplain-musl successes: %d/24 (paper: 11); compat layer: 24/24\n",
              musl_std_ok);
  return 0;
}
