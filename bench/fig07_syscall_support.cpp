// Fig 7: per-application syscall support percentage, plus the marginal gain
// from implementing the top-5 / top-10 most-demanded missing syscalls.
#include <cstdio>

#include "analysis/syscall_study.h"
#include "posix/syscalls.h"

int main() {
  std::printf("==== Fig 7: syscall support for top-30 server apps ====\n");
  std::printf("%-14s %10s %8s %8s\n", "app", "supported", "+top5", "+top10");
  auto rows = analysis::ComputeSupport(posix::SupportedSyscalls());
  double min_pct = 100, avg = 0;
  for (const auto& row : rows) {
    std::printf("%-14s %9.1f%% %7.1f%% %7.1f%%\n", row.app.c_str(), row.supported_pct,
                row.with_top5_pct, row.with_top10_pct);
    min_pct = std::min(min_pct, row.supported_pct);
    avg += row.supported_pct;
  }
  std::printf("\nmin=%.1f%% avg=%.1f%% (paper: 'all apps are close to being supported')\n",
              min_pct, avg / static_cast<double>(rows.size()));
  auto top = analysis::TopMissing(posix::SupportedSyscalls(), 10);
  std::printf("next syscalls to implement:");
  for (int nr : top) {
    std::printf(" %s", std::string(posix::SyscallName(nr)).c_str());
  }
  std::printf("\n");
  return 0;
}
