// Fig 3: helloworld dependency graph — the minimal Unikraft image.
#include <cstdio>

#include "ukbuild/linker.h"

int main() {
  ukbuild::Registry registry = ukbuild::Registry::Default();
  ukbuild::Linker linker(&registry);
  ukbuild::Config cfg;
  cfg.app = "helloworld";
  ukbuild::DepGraph graph = linker.Graph(cfg);
  std::printf("==== Fig 3: helloworld Unikraft dependency graph ====\n");
  std::printf("micro-libraries=%zu  edges=%zu\n", graph.nodes.size(), graph.EdgeCount());
  for (const std::string& n : graph.nodes) {
    std::printf("  %-16s (out-degree %zu)\n", n.c_str(), graph.OutDegree(n));
  }
  std::printf("\nDOT output:\n%s", graph.ToDot().c_str());
  return 0;
}
