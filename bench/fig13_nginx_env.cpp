// Fig 13: nginx throughput across environments (wrk: 30 conns, 612B page).
#include "bench/common.h"

int main() {
  bench::PrintHeader("Fig 13: nginx throughput across environments");
  std::printf("%-18s %16s\n", "platform", "kreq/s");
  double unikraft = 0, linux_kvm = 0, native = 0;
  for (const env::Profile& profile : env::Profile::Fig12Set()) {
    bench::NetBenchResult r = bench::RunNginxBench(profile);
    std::printf("%-18s %16.1f\n", profile.name.c_str(), r.kreq_per_s);
    if (profile.name == "unikraft-kvm") unikraft = r.kreq_per_s;
    if (profile.name == "linux-kvm") linux_kvm = r.kreq_per_s;
    if (profile.name == "linux-native") native = r.kreq_per_s;
  }
  std::printf("\nratios: unikraft/linux-kvm=%.2fx (paper ~1.9x)  unikraft/native=%.2fx "
              "(paper ~1.54x)\n",
              unikraft / linux_kvm, unikraft / native);
  return 0;
}
