// Fig 2: nginx-on-Unikraft dependency graph, computed live from the build
// system. Compare the edge count with Fig 1's Linux graph.
#include <cstdio>

#include "analysis/linux_depgraph.h"
#include "ukbuild/linker.h"

int main() {
  ukbuild::Registry registry = ukbuild::Registry::Default();
  ukbuild::Linker linker(&registry);
  ukbuild::Config cfg;
  cfg.app = "nginx";
  ukbuild::DepGraph graph = linker.Graph(cfg);
  std::printf("==== Fig 2: nginx Unikraft dependency graph ====\n");
  std::printf("micro-libraries=%zu  edges=%zu (Linux kernel: %zu edge pairs, %llu calls)\n",
              graph.nodes.size(), graph.EdgeCount(),
              analysis::LinuxKernelGraph().EdgePairs(),
              static_cast<unsigned long long>(analysis::LinuxKernelGraph().TotalCalls()));
  for (const auto& e : graph.edges) {
    std::printf("  %-18s -> %s\n", e.from.c_str(), e.to.c_str());
  }
  std::printf("\nDOT output:\n%s", graph.ToDot().c_str());
  return 0;
}
