// Fleet scaling: sustained connection churn through the L4 balancer as the
// backend count grows, plus the cold-start-under-load leg — kill one backend
// mid-traffic, reboot it through its full inittab, and measure
// kill-to-first-served-reply while the rest of the fleet keeps serving.
//
// This is the paper's deployment claim quantified: capacity comes from many
// small instances, and an instance is cheap enough to boot that respawning
// one *under load* is a serving event, not an outage.
//
// Time accounting models one core per component. Each backend's ledger gets
// its own pump work — virtual cycles charged during its turn (device model,
// wire serialization) plus its real loop time normalized like every bench —
// and, dominating it, a modeled per-command application cost (a realistic
// redis command budget; the simulated RESP path executes in nanoseconds, so
// without this the wire model rather than the application tier would set
// capacity, which is not the deployment the fleet exists for). The balancer
// is a component like any other: its ledger is measured the same way and the
// run's elapsed time is the SLOWEST ledger of all components, so if splicing
// ever became the bottleneck the rows would flatten and the gate would
// catch it. The churn generator (client stack) is the load source, off
// ledger, as in every other bench.
//
// Self-gates: 4 backends must sustain >= 3x the 1-backend churn rate with
// zero aborted connections in steady state, and the cold-start leg must see
// the replacement serve its first reply (new incarnation id) while the
// survivors complete connections throughout the outage. Results land in
// BENCH_fleet_scaling.json.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.h"
#include "env/fleet.h"

namespace {

// Modeled application work per served command: ~20us on the paper's 3.6 GHz
// machine — the budget of a small real redis GET (parse, hash, copy, reply)
// rather than our simulated one.
constexpr std::uint64_t kAppCyclesPerCommand = 72'000;

struct FleetRow {
  int backends = 0;
  double conns_s = 0.0;
  double speedup = 1.0;     // vs the 1-backend row
  double min_share = 0.0;   // lightest backend's share of replies (1/N ideal)
  double max_share = 0.0;
  double balancer_ms = 0.0;  // the balancer core's ledger over the run
  double slowest_ms = 0.0;   // the ledger that set the finish line
  std::uint64_t completed = 0;
  std::uint64_t aborted = 0;
};

struct ColdStart {
  bool ok = false;
  double detect_us = 0.0;   // kill -> probe timeout marks the slot down
  double boot_us = 0.0;     // full inittab replay (vmm + guest stages)
  double readmit_us = 0.0;  // boot done -> first reply served by the reborn id
  double total_us = 0.0;
  std::uint64_t survivor_completions = 0;  // replies completed during outage
  std::string reborn_id;
};

// One measured turn of a component: pump it, bill its virtual-cycle delta
// plus normalized real time to |ledger_ns|.
template <typename Fn>
void LedgeredTurn(ukplat::Clock& clock, double* ledger_ns, Fn&& pump) {
  const std::uint64_t c0 = clock.cycles();
  bench::RealTimer timer;
  pump();
  *ledger_ns += clock.model().CyclesToNs(clock.cycles() - c0) +
                timer.ElapsedNs() * bench::kSimNormalization;
}

FleetRow Run(int backends, std::uint64_t target_conns) {
  env::FleetTestBed::Config cfg;
  cfg.backends = backends;
  env::FleetTestBed fleet(cfg);
  env::FleetChurnClient churn(fleet.client_stack(),
                              env::FleetTestBed::kBalancerIp,
                              fleet.config().vip_port, 4 * backends);

  std::vector<double> backend_ns(static_cast<std::size_t>(backends), 0.0);
  std::vector<std::uint64_t> cmds_before(static_cast<std::size_t>(backends), 0);
  double balancer_ns = 0.0;

  auto turn = [&] {
    churn.Pump();
    fleet.client_stack()->Poll();  // the generator's own core, off ledger
    LedgeredTurn(fleet.clock(), &balancer_ns, [&] {
      fleet.balancer_sim().stack->Poll();
      fleet.balancer().PumpOnce();
    });
    for (int i = 0; i < backends; ++i) {
      auto& b = fleet.backend(i);
      LedgeredTurn(fleet.clock(), &backend_ns[static_cast<std::size_t>(i)],
                   [&] {
                     b.stack->Poll();
                     b.server->PumpOnce();
                     // The modeled application tier: bill each command served
                     // this turn at a real redis budget (also advances the
                     // world clock, so probe cadence stays realistic).
                     const std::uint64_t cmds = b.server->commands_processed();
                     const auto i_ = static_cast<std::size_t>(i);
                     if (cmds > cmds_before[i_]) {
                       fleet.clock().Charge((cmds - cmds_before[i_]) *
                                            kAppCyclesPerCommand);
                       cmds_before[i_] = cmds;
                     }
                   });
    }
  };

  // Warm-up: pools sized, ARP settled, first probe round done. Runs the same
  // turn, then the ledgers reset so only steady state is measured.
  while (churn.completed() < 200) {
    turn();
  }
  balancer_ns = 0.0;
  std::fill(backend_ns.begin(), backend_ns.end(), 0.0);

  const std::uint64_t warm = churn.completed();
  while (churn.completed() - warm < target_conns) {
    turn();
  }
  const std::uint64_t measured = churn.completed() - warm;

  FleetRow row;
  row.backends = backends;
  row.completed = measured;
  row.aborted = churn.aborted();
  row.slowest_ms = balancer_ns;
  for (double ns : backend_ns) {
    row.slowest_ms = std::max(row.slowest_ms, ns);
  }
  row.balancer_ms = balancer_ns / 1e6;
  row.slowest_ms /= 1e6;
  row.conns_s = row.slowest_ms > 0
                    ? static_cast<double>(measured) / (row.slowest_ms / 1e3)
                    : 0.0;
  row.min_share = 1.0;
  for (const auto& [id, n] : churn.by_backend()) {
    const double share = static_cast<double>(n) /
                         static_cast<double>(churn.completed());
    row.min_share = std::min(row.min_share, share);
    row.max_share = std::max(row.max_share, share);
  }
  return row;
}

ColdStart RunColdStart() {
  env::FleetTestBed::Config cfg;
  cfg.backends = 4;
  env::FleetTestBed fleet(cfg);
  env::FleetChurnClient churn(fleet.client_stack(),
                              env::FleetTestBed::kBalancerIp,
                              fleet.config().vip_port, 16);
  ColdStart cs;

  auto pump = [&] {
    churn.Pump();
    fleet.PumpAll();
  };
  while (churn.completed() < 500) {
    pump();
  }

  const int victim = 0;
  const std::uint64_t at_kill_conns = churn.completed();
  const double t_kill = fleet.clock().microseconds();
  fleet.KillBackend(victim);

  int guard = 0;
  while (fleet.balancer().state(victim) !=
             apps::L4Balancer::BackendState::kDown &&
         ++guard < 2'000'000) {
    pump();
  }
  cs.detect_us = fleet.clock().microseconds() - t_kill;

  const ukboot::BootReport report = fleet.BootBackend(victim);
  if (!report.ok) {
    return cs;
  }
  cs.boot_us = report.vmm_us + report.guest_us;
  cs.reborn_id = fleet.backend(victim).id();

  const double t_boot_done = fleet.clock().microseconds();
  guard = 0;
  while (churn.by_backend().count(cs.reborn_id) == 0 && ++guard < 2'000'000) {
    pump();
  }
  cs.readmit_us = fleet.clock().microseconds() - t_boot_done;
  cs.total_us = cs.detect_us + cs.boot_us + cs.readmit_us;

  const std::uint64_t reborn =
      churn.by_backend().count(cs.reborn_id) != 0
          ? churn.by_backend().at(cs.reborn_id)
          : 0;
  // Everything completed since the kill minus the reborn instance's replies
  // came from survivors: the fleet served straight through the outage.
  cs.survivor_completions = churn.completed() - at_kill_conns - reborn;
  cs.ok = reborn > 0 && cs.survivor_completions > 0;
  return cs;
}

void WriteJson(const std::vector<FleetRow>& rows, const ColdStart& cs) {
  std::FILE* f = std::fopen("BENCH_fleet_scaling.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "fleet_scaling: cannot write json\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"fleet_scaling\",\n");
  std::fprintf(f, "  \"workload\": \"connect -> GET id -> close churn via "
                  "L4 balancer, %lluus modeled command cost\",\n",
               static_cast<unsigned long long>(kAppCyclesPerCommand / 3600));
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const FleetRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"backends\": %d, \"conns_s\": %.0f, \"speedup\": %.2f, "
        "\"min_share\": %.3f, \"max_share\": %.3f, \"completed\": %llu, "
        "\"aborted\": %llu, \"balancer_ms\": %.2f, \"slowest_ms\": %.2f}%s\n",
        r.backends, r.conns_s, r.speedup, r.min_share, r.max_share,
        static_cast<unsigned long long>(r.completed),
        static_cast<unsigned long long>(r.aborted), r.balancer_ms,
        r.slowest_ms, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"cold_start\": {\"ok\": %s, \"detect_us\": %.0f, "
               "\"boot_us\": %.0f, \"readmit_us\": %.0f, \"total_us\": %.0f, "
               "\"survivor_completions\": %llu, \"reborn_id\": \"%s\"}\n",
               cs.ok ? "true" : "false", cs.detect_us, cs.boot_us,
               cs.readmit_us, cs.total_us,
               static_cast<unsigned long long>(cs.survivor_completions),
               cs.reborn_id.c_str());
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fleet scaling: connection churn through the L4 balancer, one core per "
      "component, modeled application tier");
  std::printf("%-10s %12s %10s %12s %12s %10s %12s\n", "backends", "conns/s",
              "speedup", "min share", "max share", "aborted", "balancer ms");
  std::vector<FleetRow> rows;
  for (int n : {1, 2, 4}) {
    FleetRow row = Run(n, 2000);
    if (!rows.empty() && rows.front().conns_s > 0) {
      row.speedup = row.conns_s / rows.front().conns_s;
    }
    std::printf("%-10d %12.0f %9.2fx %11.0f%% %11.0f%% %10llu %12.2f\n",
                row.backends, row.conns_s, row.speedup, row.min_share * 100.0,
                row.max_share * 100.0,
                static_cast<unsigned long long>(row.aborted), row.balancer_ms);
    rows.push_back(row);
  }

  const ColdStart cs = RunColdStart();
  std::printf(
      "cold start under load: detect %.0fus + boot %.0fus + readmit %.0fus "
      "= %.0fus to first served reply (%s); survivors completed %llu conns "
      "during the outage\n",
      cs.detect_us, cs.boot_us, cs.readmit_us, cs.total_us,
      cs.reborn_id.c_str(),
      static_cast<unsigned long long>(cs.survivor_completions));
  WriteJson(rows, cs);
  std::printf(
      "(elapsed = slowest component ledger — one core per backend plus one "
      "for the balancer; criteria: >= 3x churn rate at 4 backends, zero "
      "aborted conns in steady state, and the cold-started replacement "
      "serves while survivors never stop)\n");

  bool ok = true;
  for (const FleetRow& r : rows) {
    if (r.aborted != 0) {
      std::printf("FAIL: %d-backend run aborted %llu connections\n",
                  r.backends, static_cast<unsigned long long>(r.aborted));
      ok = false;
    }
    if (r.backends == 4 && r.speedup < 3.0) {
      std::printf("FAIL: 4 backends sustained only %.2fx of one backend\n",
                  r.speedup);
      ok = false;
    }
  }
  if (!cs.ok) {
    std::printf("FAIL: cold-start leg — replacement never served or the "
                "fleet stalled during the outage\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
