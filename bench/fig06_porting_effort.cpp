// Fig 6: total porting effort per quarter, split into library / dependency /
// OS-primitive / build-primitive work (generative survey model).
#include <cstdio>

#include "analysis/porting_survey.h"

int main() {
  std::printf("==== Fig 6: porting effort per quarter (working days) ====\n");
  std::printf("%-9s %9s %9s %9s %9s %9s\n", "quarter", "library", "deps", "os-prim",
              "build", "TOTAL");
  for (const auto& q : analysis::SimulatePortingTimeline()) {
    std::printf("%-9s %9.1f %9.1f %9.1f %9.1f %9.1f\n", q.quarter.c_str(),
                q.library_days, q.dependency_days, q.os_primitive_days,
                q.build_primitive_days, q.Total());
  }
  std::printf("\n(paper totals: 132 -> 88 -> 43 -> 24; shape criterion: strictly "
              "declining with vanishing os/build share)\n");
  return 0;
}
