// Fig 12: Redis GET/SET throughput across ten execution environments
// (redis-benchmark: 30 connections, pipeline 16).
#include "bench/common.h"

int main() {
  bench::PrintHeader("Fig 12: Redis throughput across environments");
  std::printf("%-18s %14s %14s\n", "platform", "GET (kreq/s)", "SET (kreq/s)");
  double unikraft_get = 0, linux_kvm_get = 0, native_get = 0, docker_get = 0;
  for (const env::Profile& profile : env::Profile::Fig12Set()) {
    bench::NetBenchResult get = bench::RunRedisBench(profile, false);
    bench::NetBenchResult set = bench::RunRedisBench(profile, true);
    std::printf("%-18s %14.1f %14.1f\n", profile.name.c_str(), get.kreq_per_s,
                set.kreq_per_s);
    if (profile.name == "unikraft-kvm") unikraft_get = get.kreq_per_s;
    if (profile.name == "linux-kvm") linux_kvm_get = get.kreq_per_s;
    if (profile.name == "linux-native") native_get = get.kreq_per_s;
    if (profile.name == "docker-native") docker_get = get.kreq_per_s;
  }
  std::printf("\nratios: unikraft/linux-kvm=%.2fx (paper ~1.8x)  unikraft/native=%.2fx "
              "(paper ~1.35x)  unikraft/docker=%.2fx (paper ~1.47x)\n",
              unikraft_get / linux_kvm_get, unikraft_get / native_get,
              unikraft_get / docker_get);
  return 0;
}
