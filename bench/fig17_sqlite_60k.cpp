// Fig 17: 60k SQLite insertions — native Linux vs newlib/musl on Unikraft
// vs automatically ported (externally linked) musl build.
//
// The mechanical differences: per-statement kernel crossings (journal/write
// syscalls on Linux, plain function calls on Unikraft) and the dispatch
// indirection of the external link. ~4 file-backed syscalls per insert is
// SQLite's journaled-write pattern.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "apps/sql.h"
#include "posix/shim.h"
#include "ukalloc/registry.h"

namespace {

constexpr int kInserts = 60000;
constexpr int kSyscallsPerInsert = 4;

double RunCase(posix::DispatchMode mode) {
  constexpr std::size_t kHeap = 192ull << 20;
  static std::unique_ptr<std::byte[]> arena(new std::byte[kHeap]);
  auto alloc = ukalloc::CreateAllocator(ukalloc::Backend::kTlsf, arena.get(), kHeap);
  apps::Database db(alloc.get());
  db.Execute("CREATE TABLE kv (id INTEGER, val TEXT)");
  ukplat::Clock clock;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kInserts; ++i) {
    db.Execute("INSERT INTO kv VALUES (" + std::to_string(i) + ", 'value-" +
               std::to_string(i) + "')");
    clock.Charge(posix::SyscallShim::EntryCost(mode, clock.model()) *
                 kSyscallsPerInsert);
  }
  double real_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                start)
                      .count();
  return real_s + clock.nanoseconds() / 1e9;
}

}  // namespace

int main() {
  std::printf("==== Fig 17: time for 60k SQLite insertions (seconds) ====\n");
  struct Case {
    const char* label;
    posix::DispatchMode mode;
  } cases[] = {
      {"linux-native", posix::DispatchMode::kLinuxTrap},
      {"newlib-native", posix::DispatchMode::kDirectCall},
      {"musl-native", posix::DispatchMode::kDirectCall},
      {"musl-external", posix::DispatchMode::kShimTable},
  };
  double musl_native = 0, musl_external = 0;
  for (const Case& c : cases) {
    double best = 1e18;
    for (int run = 0; run < 3; ++run) {
      best = std::min(best, RunCase(c.mode));
    }
    std::printf("%-15s %8.3f s\n", c.label, best);
    if (std::string(c.label) == "musl-native") musl_native = best;
    if (std::string(c.label) == "musl-external") musl_external = best;
  }
  std::printf("\nexternal-vs-native slowdown: %.1f%% (paper: 1.5%%); linux-native is "
              "slowest (syscall overhead)\n",
              100.0 * (musl_external / musl_native - 1.0));
  return 0;
}
