// quickstart: configure a unikernel, link its image, boot it, run main().
//
// This is the whole ukraft lifecycle in one page: pick micro-libraries via
// the build Config, inspect the resulting image, then bring up a live
// Instance (guest RAM, paging, allocator, scheduler, inittab) and run code
// inside it.
#include <cstdio>

#include "ukboot/instance.h"
#include "ukbuild/linker.h"

int main() {
  // --- build-time: compose the image ------------------------------------
  ukbuild::Registry registry = ukbuild::Registry::Default();
  ukbuild::Linker linker(&registry);
  ukbuild::Config build_cfg;
  build_cfg.app = "helloworld";
  build_cfg.platform = ukbuild::Platform::kKvm;
  build_cfg.dce = true;
  ukbuild::Image image = linker.Link(build_cfg);
  std::printf("linked %s for %s: %llu KB from %zu micro-libraries\n",
              image.app.c_str(), ukbuild::PlatformName(image.platform),
              static_cast<unsigned long long>(image.total_bytes / 1024),
              image.libs.size());
  for (const auto& lib : image.libs) {
    std::printf("  %-16s %6u bytes\n", lib.name.c_str(), lib.bytes_after);
  }

  // --- run-time: boot an instance ----------------------------------------
  ukboot::InstanceConfig cfg;
  cfg.name = "hello";
  cfg.memory_bytes = 16 << 20;
  cfg.allocator = ukalloc::Backend::kTlsf;
  cfg.vmm = ukplat::VmmModel::Firecracker();
  ukboot::Instance vm(cfg);
  vm.RegisterInit(ukboot::InitStage::kLate, "main", [](ukboot::Instance& inst) {
    std::printf("Hello from a simulated unikernel! heap=%s, %zu KB free-ish\n",
                inst.heap()->name(), inst.heap()->heap_len() / 1024);
    return ukarch::Status::kOk;
  });
  ukboot::BootReport report = vm.Boot();
  std::printf("boot %s: VMM %.1f ms + guest %.1f us\n", report.ok ? "ok" : "FAILED",
              report.vmm_us / 1000.0, report.guest_us);
  for (const auto& stage : report.stages) {
    std::printf("  stage %-18s %8.1f us\n", stage.name.c_str(),
                stage.real_ns / 1000.0);
  }
  return report.ok ? 0 : 1;
}
