// sql_shell: ukdb (the SQLite stand-in) running inside an allocator arena —
// a tiny non-interactive SQL session with results printed.
#include <cstdio>
#include <memory>

#include "apps/sql.h"
#include "ukalloc/registry.h"

int main() {
  constexpr std::size_t kHeap = 64 << 20;
  auto arena = std::make_unique<std::byte[]>(kHeap);
  auto alloc = ukalloc::CreateAllocator(ukalloc::Backend::kMimalloc, arena.get(), kHeap);
  apps::Database db(alloc.get());

  const char* statements[] = {
      "CREATE TABLE unikernels (id INTEGER, name TEXT, year INTEGER)",
      "INSERT INTO unikernels VALUES (1, 'MirageOS', 2013)",
      "INSERT INTO unikernels VALUES (2, 'OSv', 2014)",
      "INSERT INTO unikernels VALUES (3, 'Rump', 2012)",
      "INSERT INTO unikernels VALUES (4, 'HermiTux', 2019)",
      "INSERT INTO unikernels VALUES (5, 'Lupine', 2020)",
      "INSERT INTO unikernels VALUES (6, 'Unikraft', 2021)",
      "SELECT name, year FROM unikernels WHERE id >= 4",
      "DELETE FROM unikernels WHERE id < 3",
      "SELECT * FROM unikernels",
  };
  for (const char* sql : statements) {
    std::printf("ukdb> %s\n", sql);
    apps::SqlResult r = db.Execute(sql);
    if (!r.ok) {
      std::printf("  error: %s\n", r.error.c_str());
      continue;
    }
    for (const apps::SqlRow& row : r.rows) {
      std::printf("  |");
      for (const apps::SqlValue& v : row.values) {
        if (std::holds_alternative<std::int64_t>(v)) {
          std::printf(" %lld |", static_cast<long long>(std::get<std::int64_t>(v)));
        } else {
          std::printf(" %s |", std::get<std::string>(v).c_str());
        }
      }
      std::printf("\n");
    }
    if (r.rows_affected > 0) {
      std::printf("  (%zu rows affected)\n", r.rows_affected);
    }
  }
  std::printf("allocator: %s, peak %llu KB\n", alloc->name(),
              static_cast<unsigned long long>(alloc->stats().peak_bytes / 1024));
  return 0;
}
