// kvstore_specialized: the §6.4 specialization story in one program — the
// same UDP key-value service first through the sockets path, then rebuilt
// against raw uknetdev (no stack, no scheduler), showing the rate jump.
#include <cstdio>

#include "apps/kvstore.h"
#include "env/testbed.h"

namespace {

double RunSockets() {
  env::TestBed bed(env::Profile::UnikraftKvm());
  apps::KvServer server(&bed.api(), 7777, apps::KvMode::kSocketSingle);
  server.Start();
  auto client = bed.client().stack->UdpOpen();
  for (int i = 0; i < 2000; ++i) {
    client->SendTo(env::TestBed::kServerIp, 7777,
                   apps::EncodeKvRequest({true, static_cast<std::uint16_t>(i % 100),
                                          "v"}));
    bed.Poll();
    server.PumpOnce();
    client->RecvFrom();
  }
  double us = bed.clock().microseconds();
  return static_cast<double>(server.requests()) / (us / 1e6) / 1000.0;
}

double RunNetdev() {
  ukplat::Clock clock;
  ukplat::Wire::Config wcfg;
  wcfg.queue_depth = 65536;
  ukplat::Wire wire(&clock, wcfg);
  ukplat::MemRegion mem(32 << 20);
  std::uint64_t heap_gpa = mem.Carve(24 << 20, 4096);
  auto alloc = ukalloc::CreateAllocator(ukalloc::Backend::kTlsf,
                                        mem.At(heap_gpa, 24 << 20), 24 << 20);
  uknetdev::VirtioNet::Config cfg;
  cfg.backend = uknetdev::VirtioBackend::kVhostUser;
  uknetdev::VirtioNet nic(&mem, &clock, &wire, cfg);
  apps::KvServer server(&nic, &mem, alloc.get(), uknet::MakeIp(10, 0, 0, 1), 7777,
                        apps::KvMode::kUkNetdev);
  server.Start();

  // Client side: a stack-owning host generating requests.
  env::SimHost client_host(&clock, &wire, 1, uknet::MakeIp(10, 0, 0, 2),
                           ukalloc::Backend::kTlsf,
                           uknetdev::VirtioBackend::kVhostUser);
  client_host.netif->AddArpEntry(uknet::MakeIp(10, 0, 0, 1), nic.mac());
  auto client = client_host.stack->UdpOpen();
  for (int i = 0; i < 2000; ++i) {
    client->SendTo(uknet::MakeIp(10, 0, 0, 1), 7777,
                   apps::EncodeKvRequest({true, static_cast<std::uint16_t>(i % 100),
                                          "v"}));
    client_host.stack->Poll();
    server.PumpOnce();
    client_host.stack->Poll();
    client->RecvFrom();
  }
  double us = clock.microseconds();
  return static_cast<double>(server.requests()) / (us / 1e6) / 1000.0;
}

}  // namespace

int main() {
  std::printf("UDP key-value store, two builds of the same app:\n");
  double sockets = RunSockets();
  std::printf("  sockets + lwip-style stack : %8.0f K req/s\n", sockets);
  double netdev = RunNetdev();
  std::printf("  raw uknetdev (specialized) : %8.0f K req/s  (%.1fx)\n", netdev,
              netdev / sockets);
  std::printf("same service, same wire — only the API level changed (Fig 4, (7)).\n");
  return 0;
}
