// webserver: ukhttp serving static pages over the full simulated stack —
// virtio-net rings, TCP, the POSIX layer — with a wrk-style client hammering
// it from the other end of the wire.
#include <cstdio>

#include "apps/http.h"

#include "env/testbed.h"

int main() {
  env::TestBed bed(env::Profile::UnikraftKvm());

  // Populate the root filesystem.
  std::shared_ptr<vfscore::File> f;
  bed.vfs().Open("/index.html", vfscore::kWrite | vfscore::kCreate, &f);
  std::string body = "<html><body><h1>ukraft</h1>unikernels, simulated.</body></html>";
  f->Write(std::as_bytes(std::span(body.data(), body.size())));

  apps::HttpServer server(&bed.api(), 80, &bed.vfs());
  if (!server.Start()) {
    std::printf("server failed to start\n");
    return 1;
  }
  std::printf("ukhttp listening on 10.0.0.1:80 (ramfs root, keep-alive)\n");

  apps::WrkClient::Config cfg;
  cfg.connections = 8;
  cfg.pipeline = 4;
  cfg.path = "/index.html";
  apps::WrkClient wrk(bed.client().stack.get(), env::TestBed::kServerIp, 80, cfg);
  if (!wrk.ConnectAll([&] {
        bed.Poll();
        server.PumpOnce();
      })) {
    std::printf("client failed to connect\n");
    return 1;
  }
  for (int i = 0; i < 500; ++i) {
    wrk.PumpOnce();
    bed.Poll();
    server.PumpOnce();
  }
  std::printf("served %llu requests over %zu connections; ",
              static_cast<unsigned long long>(server.requests_served()),
              static_cast<std::size_t>(cfg.connections));
  std::printf("virtual time %.2f ms\n", bed.clock().milliseconds());
  return 0;
}
