// webserver: ukhttp over the full simulated stack — virtio-net rings, TCP,
// the POSIX layer — rebuilt as the unified-readiness demonstrator: ONE server
// thread multiplexes 64 concurrent keep-alive connections through a single
// blocking EpollWait (which parks in NetStack::PollWait when idle), while a
// wrk-style client hammers it from the other end of the wire.
#include <cstdio>

#include "apps/http.h"

#include "env/testbed.h"
#include "uksched/scheduler.h"

int main() {
  env::TestBed bed(env::Profile::UnikraftKvm());

  // Populate the root filesystem.
  std::shared_ptr<vfscore::File> f;
  bed.vfs().Open("/index.html", vfscore::kWrite | vfscore::kCreate, &f);
  std::string body = "<html><body><h1>ukraft</h1>unikernels, simulated.</body></html>";
  f->Write(std::as_bytes(std::span(body.data(), body.size())));

  // The scheduler the event-loop thread blocks under.
  auto sched_owner = uksched::MakeScheduler(bed.server().alloc.get(), &bed.clock());
  auto& sched = *sched_owner;
  bed.server().stack->SetScheduler(&sched);

  apps::HttpServer server(&bed.api(), 80, &bed.vfs());
  if (!server.Start()) {
    std::printf("server failed to start\n");
    return 1;
  }
  std::printf("ukhttp listening on 10.0.0.1:80 (ramfs root, keep-alive, epoll)\n");

  constexpr int kConns = 64;
  apps::WrkClient::Config cfg;
  cfg.connections = kConns;
  cfg.pipeline = 4;
  cfg.path = "/index.html";
  apps::WrkClient wrk(bed.client().stack.get(), env::TestBed::kServerIp, 80, cfg);

  bool done = false;
  bool client_ok = true;
  std::uint64_t idle_poll_growth = 0;
  sched.CreateThread("http-server", [&] {
    // The whole server is this loop: listener + 64 connections behind one
    // EpollWait, asleep in PollWait whenever nothing is ready. Busy turns
    // yield so the client thread can ACK (cooperative scheduling); idle
    // turns block, so the yield never turns into a spin.
    while (!done) {
      server.PumpWait();
      sched.Yield();
    }
  });
  sched.CreateThread("wrk", [&] {
    auto pump = [&] {
      bed.Poll();
      sched.Yield();  // hand the CPU to the (probably woken) server thread
    };
    if (!wrk.ConnectAll(pump)) {
      std::printf("client failed to connect\n");
      client_ok = false;
      done = true;
      return;
    }
    for (int i = 0; i < 400; ++i) {
      wrk.PumpOnce();
      pump();
    }
    // Idle window: with the client silent, the server must be parked in
    // EpollWait — zero poll iterations, not a spin loop. Settle first: the
    // server's last busy turn pays the arm-then-check drains on its way
    // INTO the sleep (entry cost, not idle spinning).
    for (int i = 0; i < 4; ++i) {
      sched.Yield();
    }
    const auto& waits = bed.server().stack->wait_stats();
    const std::uint64_t polls_before = waits.poll_iterations;
    for (int i = 0; i < 200; ++i) {
      bed.clock().Charge(10'000);
      sched.Yield();
    }
    idle_poll_growth = waits.poll_iterations - polls_before;
    done = true;
    // One more burst wakes the server so its loop observes |done|; the extra
    // pump rounds let this stack ACK the final replies — a server retiring
    // with data in flight would keep waking on its own RTO forever.
    for (int i = 0; i < 20; ++i) {
      wrk.PumpOnce();
      pump();
    }
  });
  sched.Run();

  const auto& waits = bed.server().stack->wait_stats();
  std::printf("served %llu requests over %d connections, 1 server thread; ",
              static_cast<unsigned long long>(server.requests_served()), kConns);
  std::printf("virtual time %.2f ms\n", bed.clock().milliseconds());
  std::printf("wait stats: %llu blocked waits, %llu frame wakeups, "
              "%llu poll iterations; idle window grew them by %llu (0 == slept)\n",
              static_cast<unsigned long long>(waits.blocked_waits),
              static_cast<unsigned long long>(waits.frame_wakeups),
              static_cast<unsigned long long>(waits.poll_iterations),
              static_cast<unsigned long long>(idle_poll_growth));
  return client_ok && idle_poll_growth == 0 ? 0 : 1;
}
