#include "ukplat/virtqueue.h"

#include "ukarch/align.h"

namespace ukplat {

namespace {
// Offsets within the avail/used structures.
constexpr std::uint64_t kRingHdrBytes = 4;  // u16 flags + u16 idx
}  // namespace

std::size_t Virtqueue::FootprintBytes(std::uint16_t qsize) {
  std::size_t desc = sizeof(VringDesc) * qsize;
  std::size_t avail = kRingHdrBytes + 2ull * qsize + 2;   // + u16 used_event
  std::size_t used = kRingHdrBytes + sizeof(VringUsedElem) * qsize + 2;
  // The used ring starts on the next 4-byte boundary (spec requires 4-aligned).
  return ukarch::AlignUp(desc + avail, 4) + used;
}

Virtqueue::Virtqueue(MemRegion* mem, std::uint64_t base_gpa, std::uint16_t qsize)
    : mem_(mem), qsize_(qsize), cookies_(qsize, nullptr) {
  desc_gpa_ = base_gpa;
  avail_gpa_ = desc_gpa_ + sizeof(VringDesc) * qsize_;
  used_gpa_ = ukarch::AlignUp(avail_gpa_ + kRingHdrBytes + 2ull * qsize_ + 2, 4);

  // Thread all descriptors onto the free list via their |next| fields.
  for (std::uint16_t i = 0; i < qsize_; ++i) {
    VringDesc d{};
    d.next = static_cast<std::uint16_t>(i + 1);
    mem_->Write(DescGpa(i), d);
  }
  free_head_ = 0;
  num_free_ = qsize_;
  mem_->Write<std::uint16_t>(avail_gpa_ + 2, 0);  // avail->idx
  mem_->Write<std::uint16_t>(used_gpa_ + 2, 0);   // used->idx
}

bool Virtqueue::Enqueue(std::span<const Segment> segments, void* cookie) {
  if (segments.empty() || segments.size() > num_free_) {
    return false;
  }
  // Claim descriptors off the free list, chaining them in order.
  std::uint16_t head = free_head_;
  std::uint16_t cur = head;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    VringDesc d = mem_->Read<VringDesc>(DescGpa(cur));
    std::uint16_t next_free = d.next;
    d.addr = segments[i].gpa;
    d.len = segments[i].len;
    d.flags = segments[i].device_writable ? kVringDescFWrite : 0;
    if (i + 1 < segments.size()) {
      d.flags |= kVringDescFNext;
      d.next = next_free;
    } else {
      d.next = 0;
      free_head_ = next_free;
    }
    mem_->Write(DescGpa(cur), d);
    cur = next_free;
  }
  num_free_ = static_cast<std::uint16_t>(num_free_ - segments.size());
  cookies_[head] = cookie;

  // Publish the head in the avail ring, then bump avail->idx (release order on
  // real hardware; the simulation is single-threaded per world).
  std::uint16_t slot = static_cast<std::uint16_t>(avail_idx_shadow_ % qsize_);
  mem_->Write<std::uint16_t>(avail_gpa_ + kRingHdrBytes + 2ull * slot, head);
  ++avail_idx_shadow_;
  mem_->Write<std::uint16_t>(avail_gpa_ + 2, avail_idx_shadow_);
  return true;
}

std::optional<Virtqueue::Completion> Virtqueue::DequeueCompletion() {
  std::uint16_t used_idx = mem_->Read<std::uint16_t>(used_gpa_ + 2);
  if (used_last_seen_ == used_idx) {
    return std::nullopt;
  }
  std::uint16_t slot = static_cast<std::uint16_t>(used_last_seen_ % qsize_);
  auto elem = mem_->Read<VringUsedElem>(used_gpa_ + kRingHdrBytes + sizeof(VringUsedElem) * slot);
  ++used_last_seen_;
  if (elem.id >= qsize_) {
    ++bad_chains_;
    return std::nullopt;
  }
  Completion c{cookies_[elem.id], elem.len};
  cookies_[elem.id] = nullptr;
  FreeChain(static_cast<std::uint16_t>(elem.id));
  return c;
}

void Virtqueue::FreeChain(std::uint16_t head) {
  // Walk the chain to its tail, then splice it back onto the free list.
  std::uint16_t cur = head;
  std::uint16_t count = 1;
  for (;;) {
    VringDesc d = mem_->Read<VringDesc>(DescGpa(cur));
    if ((d.flags & kVringDescFNext) == 0) {
      d.next = free_head_;
      mem_->Write(DescGpa(cur), d);
      break;
    }
    cur = d.next;
    if (++count > qsize_) {
      ++bad_chains_;
      return;  // corrupted chain; leak rather than loop forever
    }
  }
  free_head_ = head;
  num_free_ = static_cast<std::uint16_t>(num_free_ + count);
}

bool Virtqueue::DeviceHasWork() const {
  return device_last_avail_ != mem_->Read<std::uint16_t>(avail_gpa_ + 2);
}

std::optional<Virtqueue::DeviceChain> Virtqueue::DevicePop() {
  std::uint16_t avail_idx = mem_->Read<std::uint16_t>(avail_gpa_ + 2);
  if (device_last_avail_ == avail_idx) {
    return std::nullopt;
  }
  std::uint16_t slot = static_cast<std::uint16_t>(device_last_avail_ % qsize_);
  std::uint16_t head = mem_->Read<std::uint16_t>(avail_gpa_ + kRingHdrBytes + 2ull * slot);
  ++device_last_avail_;
  if (head >= qsize_) {
    ++bad_chains_;
    return std::nullopt;
  }

  DeviceChain chain;
  chain.head = head;
  std::uint16_t cur = head;
  std::uint16_t hops = 0;
  for (;;) {
    VringDesc d = mem_->Read<VringDesc>(DescGpa(cur));
    chain.segments.push_back(Segment{d.addr, d.len, (d.flags & kVringDescFWrite) != 0});
    if ((d.flags & kVringDescFNext) == 0) {
      break;
    }
    cur = d.next;
    if (cur >= qsize_ || ++hops > qsize_) {
      ++bad_chains_;
      return std::nullopt;
    }
  }
  return chain;
}

void Virtqueue::DevicePush(std::uint16_t head, std::uint32_t written) {
  std::uint16_t used_idx = mem_->Read<std::uint16_t>(used_gpa_ + 2);
  std::uint16_t slot = static_cast<std::uint16_t>(used_idx % qsize_);
  VringUsedElem elem{head, written};
  mem_->Write(used_gpa_ + kRingHdrBytes + sizeof(VringUsedElem) * slot, elem);
  mem_->Write<std::uint16_t>(used_gpa_ + 2, static_cast<std::uint16_t>(used_idx + 1));
}

}  // namespace ukplat
