// ukplat/wire.h - Ethernet fabric between N simulated NICs.
//
// Historically a point-to-point 10G cable between two Shuttle boxes (the
// paper's network experiments); the fleet testbed generalized it into a small
// learning switch so one wire can host an L4 balancer plus N backend
// instances. Frames are real byte vectors; the wire charges serialization
// delay from the cost model's link rate and enforces an MTU and an optional
// per-port queue depth (frames beyond it are dropped and counted, which the
// TCP tests use to exercise retransmission).
//
// Switching model: each port has its own RX queue. Send(port, frame) learns
// src-MAC -> port, then delivers to the learned port for a known unicast dst
// and floods every other port otherwise (broadcast/unknown unicast, which is
// how ARP finds a backend the switch has never heard from). With exactly two
// ports this degenerates to the old point-to-point behavior: everything sent
// from port 0 arrives at port 1 and vice versa.
#ifndef UKPLAT_WIRE_H_
#define UKPLAT_WIRE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ukplat/clock.h"

namespace ukplat {

class Wire {
 public:
  struct Config {
    std::size_t mtu = 1500;          // payload bytes per frame (excl. 14B header)
    std::size_t queue_depth = 1024;  // frames buffered per port
    double drop_rate = 0.0;          // deterministic 1-in-N drop if > 0 (N=1/rate)
  };

  explicit Wire(Clock* clock) : Wire(clock, Config{}) {}
  Wire(Clock* clock, Config config) : clock_(clock), config_(config) {
    ports_.resize(2);
  }

  // Sends a frame out of |port| into the switch. Returns false if the frame
  // was delivered to no port (oversize, deterministic drop, or every
  // destination queue full).
  bool Send(int port, std::vector<std::uint8_t> frame);

  // Receives the next frame queued for |port|.
  std::optional<std::vector<std::uint8_t>> Receive(int port);

  std::size_t Pending(int port) const {
    const auto idx = static_cast<std::size_t>(port);
    return idx < ports_.size() ? ports_[idx].rx.size() : 0;
  }

  // Wire-activity signal: |fn| is invoked (synchronously) after a frame is
  // queued toward |port|. This is the stand-in for the vhost/device thread
  // noticing traffic for a NIC whose guest is halted: the virtio driver
  // registers a callback that pumps its device side so an armed RX interrupt
  // can fire even while the guest never polls. The callback may call Send()
  // itself (replies); the wire keeps no state across the invocation. Pass
  // nullptr to unregister (a NIC being destroyed must do so).
  void SetSignalFn(int port, std::function<void()> fn) {
    EnsurePort(port);
    ports_[static_cast<std::size_t>(port)].signal = std::move(fn);
  }

  // Makes |port| exist (with an empty RX queue) so flooded frames reach it.
  // A NIC must attach its port when it is created: a station that has never
  // transmitted is otherwise invisible to broadcast/unknown-unicast delivery.
  void AttachPort(int port) { EnsurePort(port); }

  // Forgets everything learned about |port|: its RX queue, signal callback
  // and any MAC addresses the switch associated with it. Used when the NIC on
  // that port is torn down (instance kill) so a respawned instance reusing
  // the port starts from a clean slate.
  void ResetPort(int port);

  std::size_t port_count() const { return ports_.size(); }

  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t frames_dropped() const { return frames_dropped_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

  const Config& config() const { return config_; }

 private:
  struct Port {
    std::deque<std::vector<std::uint8_t>> rx;
    std::function<void()> signal;
  };

  void EnsurePort(int port) {
    const auto need = static_cast<std::size_t>(port) + 1;
    if (ports_.size() < need) ports_.resize(need);
  }
  bool DeliverTo(std::size_t port, const std::vector<std::uint8_t>& frame);

  Clock* clock_;
  Config config_;
  std::vector<Port> ports_;
  std::unordered_map<std::uint64_t, std::size_t> mac_table_;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t send_seq_ = 0;
};

}  // namespace ukplat

#endif  // UKPLAT_WIRE_H_
