// ukplat/wire.h - point-to-point Ethernet fabric between two simulated NICs.
//
// Plays the role of the direct 10G cable between the two Shuttle boxes in the
// paper's network experiments. Frames are real byte vectors; the wire charges
// serialization delay from the cost model's link rate and enforces an MTU and
// an optional queue depth (frames beyond it are dropped and counted, which the
// TCP tests use to exercise retransmission).
#ifndef UKPLAT_WIRE_H_
#define UKPLAT_WIRE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "ukplat/clock.h"

namespace ukplat {

class Wire {
 public:
  struct Config {
    std::size_t mtu = 1500;          // payload bytes per frame (excl. 14B header)
    std::size_t queue_depth = 1024;  // frames buffered per direction
    double drop_rate = 0.0;          // deterministic 1-in-N drop if > 0 (N=1/rate)
  };

  explicit Wire(Clock* clock) : Wire(clock, Config{}) {}
  Wire(Clock* clock, Config config) : clock_(clock), config_(config) {}

  // Sends a frame in direction |dir| (0: A->B, 1: B->A). Returns false on drop
  // (oversize or full queue).
  bool Send(int dir, std::vector<std::uint8_t> frame);

  // Receives the next frame arriving at side |side| (0 receives A->B traffic
  // sent towards B... i.e. side is the *receiver*: side 1 reads dir-0 queue).
  std::optional<std::vector<std::uint8_t>> Receive(int side);

  std::size_t Pending(int side) const { return q_[side == 1 ? 0 : 1].size(); }

  // Wire-activity signal: |fn| is invoked (synchronously) after a frame is
  // queued toward |side|. This is the stand-in for the vhost/device thread
  // noticing traffic for a NIC whose guest is halted: the virtio driver
  // registers a callback that pumps its device side so an armed RX interrupt
  // can fire even while the guest never polls. The callback may call Send()
  // itself (replies); the wire keeps no state across the invocation. Pass
  // nullptr to unregister (a NIC being destroyed must do so).
  void SetSignalFn(int side, std::function<void()> fn) {
    signal_fn_[side == 1 ? 1 : 0] = std::move(fn);
  }

  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t frames_dropped() const { return frames_dropped_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

  const Config& config() const { return config_; }

 private:
  Clock* clock_;
  Config config_;
  std::deque<std::vector<std::uint8_t>> q_[2];
  std::function<void()> signal_fn_[2];
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t send_seq_ = 0;
};

}  // namespace ukplat

#endif  // UKPLAT_WIRE_H_
