#include "ukplat/vmm.h"

namespace ukplat {

// Constants reproduce the VMM share of Fig 10 (total minus guest): QEMU ~38ms,
// QEMU+1NIC ~42.7ms, QEMU microVM ~9ms, Solo5 and Firecracker ~3ms. uHyve is
// modeled slightly above Firecracker per the HermiTux discussion in §5.3.
VmmModel VmmModel::Qemu() {
  return VmmModel{.name = "qemu", .startup_us = 38300.0, .per_nic_us = 4300.0,
                  .pci_transport = true, .io_efficiency = 1.0};
}

VmmModel VmmModel::QemuMicroVm() {
  return VmmModel{.name = "qemu-microvm", .startup_us = 9000.0, .per_nic_us = 1200.0,
                  .pci_transport = false, .io_efficiency = 1.0};
}

VmmModel VmmModel::Firecracker() {
  return VmmModel{.name = "firecracker", .startup_us = 2600.0, .per_nic_us = 350.0,
                  .pci_transport = false, .io_efficiency = 0.55};
}

VmmModel VmmModel::Solo5() {
  return VmmModel{.name = "solo5", .startup_us = 2900.0, .per_nic_us = 200.0,
                  .pci_transport = false, .io_efficiency = 0.85};
}

VmmModel VmmModel::Xen() {
  return VmmModel{.name = "xen", .startup_us = 12000.0, .per_nic_us = 2700.0,
                  .pci_transport = false, .io_efficiency = 0.9};
}

VmmModel VmmModel::UHyve() {
  return VmmModel{.name = "uhyve", .startup_us = 4200.0, .per_nic_us = 500.0,
                  .pci_transport = false, .io_efficiency = 0.45};
}

const std::vector<VmmModel>& VmmModel::All() {
  static const std::vector<VmmModel> kAll = {Qemu(), QemuMicroVm(), Firecracker(), Solo5(),
                                             Xen(), UHyve()};
  return kAll;
}

}  // namespace ukplat
