#include "ukplat/memregion.h"

#include "ukarch/align.h"

namespace ukplat {

MemRegion::MemRegion(std::size_t bytes)
    : mem_(new std::byte[bytes]()), size_(bytes) {}

std::byte* MemRegion::At(std::uint64_t gpa, std::size_t len) {
  if (gpa > size_ || len > size_ - gpa) {
    return nullptr;
  }
  return mem_.get() + gpa;
}

const std::byte* MemRegion::At(std::uint64_t gpa, std::size_t len) const {
  if (gpa > size_ || len > size_ - gpa) {
    return nullptr;
  }
  return mem_.get() + gpa;
}

bool MemRegion::CopyIn(std::uint64_t gpa, std::span<const std::byte> src) {
  std::byte* p = At(gpa, src.size());
  if (p == nullptr) {
    ++fault_count_;
    return false;
  }
  std::memcpy(p, src.data(), src.size());
  return true;
}

bool MemRegion::CopyOut(std::uint64_t gpa, std::span<std::byte> dst) const {
  const std::byte* p = At(gpa, dst.size());
  if (p == nullptr) {
    ++fault_count_;
    return false;
  }
  std::memcpy(dst.data(), p, dst.size());
  return true;
}

std::uint64_t MemRegion::Carve(std::size_t bytes, std::size_t align) {
  std::uint64_t base = ukarch::AlignUp(carve_brk_, align == 0 ? 1 : align);
  if (base > size_ || bytes > size_ - base) {
    return kBadGpa;
  }
  carve_brk_ = base + bytes;
  return base;
}

}  // namespace ukplat
