#include "ukplat/wire.h"

namespace ukplat {

bool Wire::Send(int dir, std::vector<std::uint8_t> frame) {
  ++send_seq_;
  if (frame.size() > config_.mtu + 14 || q_[dir].size() >= config_.queue_depth) {
    ++frames_dropped_;
    return false;
  }
  if (config_.drop_rate > 0.0) {
    auto period = static_cast<std::uint64_t>(1.0 / config_.drop_rate);
    if (period != 0 && send_seq_ % period == 0) {
      ++frames_dropped_;
      return false;
    }
  }
  // Serialization delay: bits / link rate, expressed in CPU cycles so that the
  // virtual clock stays a single ledger. 10G, 3.6GHz -> ~2.9 cycles/byte.
  const CostModel& m = clock_->model();
  double ns = static_cast<double>(frame.size()) * 8.0 / m.link_gbps;
  clock_->Charge(m.NsToCycles(ns));
  bytes_sent_ += frame.size();
  ++frames_sent_;
  q_[dir].push_back(std::move(frame));
  // dir-0 frames arrive at side 1 and vice versa (see Pending()).
  const int rx_side = dir == 0 ? 1 : 0;
  if (signal_fn_[rx_side]) {
    signal_fn_[rx_side]();
  }
  return true;
}

std::optional<std::vector<std::uint8_t>> Wire::Receive(int side) {
  auto& q = q_[side == 1 ? 0 : 1];
  if (q.empty()) {
    return std::nullopt;
  }
  std::vector<std::uint8_t> f = std::move(q.front());
  q.pop_front();
  return f;
}

}  // namespace ukplat
