#include "ukplat/wire.h"

namespace ukplat {

namespace {

// Packs a 6-byte MAC starting at |p| into a table key. Returns 0 for the
// all-zero MAC, which is never a valid station address, so 0 doubles as
// "no key".
std::uint64_t MacKey(const std::uint8_t* p) {
  std::uint64_t k = 0;
  for (int i = 0; i < 6; ++i) k = (k << 8) | p[i];
  return k;
}

bool IsBroadcast(const std::uint8_t* p) {
  for (int i = 0; i < 6; ++i) {
    if (p[i] != 0xff) return false;
  }
  return true;
}

}  // namespace

bool Wire::DeliverTo(std::size_t port, const std::vector<std::uint8_t>& frame) {
  Port& dst = ports_[port];
  if (dst.rx.size() >= config_.queue_depth) {
    return false;
  }
  dst.rx.push_back(frame);
  if (dst.signal) {
    dst.signal();
  }
  return true;
}

bool Wire::Send(int port, std::vector<std::uint8_t> frame) {
  ++send_seq_;
  EnsurePort(port);
  const auto src_port = static_cast<std::size_t>(port);
  if (frame.size() > config_.mtu + 14) {
    ++frames_dropped_;
    return false;
  }
  if (config_.drop_rate > 0.0) {
    auto period = static_cast<std::uint64_t>(1.0 / config_.drop_rate);
    if (period != 0 && send_seq_ % period == 0) {
      ++frames_dropped_;
      return false;
    }
  }
  // Serialization delay: bits / link rate, expressed in CPU cycles so that the
  // virtual clock stays a single ledger. 10G, 3.6GHz -> ~2.9 cycles/byte.
  const CostModel& m = clock_->model();
  double ns = static_cast<double>(frame.size()) * 8.0 / m.link_gbps;
  clock_->Charge(m.NsToCycles(ns));

  // Learn the sender's station address and resolve the destination port.
  std::size_t unicast_dst = ports_.size();  // sentinel: flood
  if (frame.size() >= 14) {
    const std::uint64_t src_key = MacKey(frame.data() + 6);
    if (src_key != 0) mac_table_[src_key] = src_port;
    if (!IsBroadcast(frame.data())) {
      auto it = mac_table_.find(MacKey(frame.data()));
      if (it != mac_table_.end() && it->second != src_port &&
          it->second < ports_.size()) {
        unicast_dst = it->second;
      }
    }
  }

  bool delivered = false;
  if (unicast_dst < ports_.size()) {
    delivered = DeliverTo(unicast_dst, frame);
  } else {
    // Broadcast / unknown unicast: flood every port except the sender.
    for (std::size_t p = 0; p < ports_.size(); ++p) {
      if (p == src_port) continue;
      delivered |= DeliverTo(p, frame);
    }
  }
  if (!delivered) {
    ++frames_dropped_;
    return false;
  }
  bytes_sent_ += frame.size();
  ++frames_sent_;
  return true;
}

std::optional<std::vector<std::uint8_t>> Wire::Receive(int port) {
  const auto idx = static_cast<std::size_t>(port);
  if (idx >= ports_.size() || ports_[idx].rx.empty()) {
    return std::nullopt;
  }
  std::vector<std::uint8_t> f = std::move(ports_[idx].rx.front());
  ports_[idx].rx.pop_front();
  return f;
}

void Wire::ResetPort(int port) {
  const auto idx = static_cast<std::size_t>(port);
  if (idx >= ports_.size()) return;
  ports_[idx].rx.clear();
  ports_[idx].signal = nullptr;
  for (auto it = mac_table_.begin(); it != mac_table_.end();) {
    it = it->second == idx ? mac_table_.erase(it) : std::next(it);
  }
}

}  // namespace ukplat
