// ukplat/virtqueue.h - VirtIO 1.0 split virtqueue, laid out in guest memory.
//
// This is the transport under virtio-net, virtio-blk and virtio-9p in the
// simulation, implemented faithfully: a descriptor table, an available ring
// and a used ring all live in the instance's MemRegion at their guest-physical
// addresses, exactly as a real VMM would see them. The driver side (guest)
// enqueues descriptor chains and kicks; the device side (backend) pops chains,
// reads/writes guest memory through MemRegion, and pushes used entries.
//
// Keeping the rings in guest memory (instead of host-side std::deques) is what
// lets the vhost-net vs vhost-user comparison in Fig 19 be about *costs* and
// not about different code paths: both backends run this same ring code and
// differ only in notification and copy accounting.
#ifndef UKPLAT_VIRTQUEUE_H_
#define UKPLAT_VIRTQUEUE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "ukplat/memregion.h"

namespace ukplat {

inline constexpr std::uint16_t kVringDescFNext = 1;
inline constexpr std::uint16_t kVringDescFWrite = 2;

// In-memory descriptor layout (virtio spec 2.6.5).
struct VringDesc {
  std::uint64_t addr;
  std::uint32_t len;
  std::uint16_t flags;
  std::uint16_t next;
};
static_assert(sizeof(VringDesc) == 16);

struct VringUsedElem {
  std::uint32_t id;
  std::uint32_t len;
};
static_assert(sizeof(VringUsedElem) == 8);

class Virtqueue {
 public:
  // One scatter-gather element of a chain. |device_writable| marks buffers the
  // device fills (RX buffers, read responses).
  struct Segment {
    std::uint64_t gpa = 0;
    std::uint32_t len = 0;
    bool device_writable = false;
  };

  struct Completion {
    void* cookie = nullptr;
    std::uint32_t written = 0;  // bytes the device wrote into writable segments
  };

  struct DeviceChain {
    std::uint16_t head = 0;
    std::vector<Segment> segments;
  };

  // Computes the bytes of guest memory a queue of |qsize| entries needs
  // (descriptor table + avail ring + used ring, with spec alignments).
  static std::size_t FootprintBytes(std::uint16_t qsize);

  // Places the rings at |base_gpa| inside |mem|. |qsize| must be a power of
  // two per the virtio spec. The area must have been carved by the caller.
  Virtqueue(MemRegion* mem, std::uint64_t base_gpa, std::uint16_t qsize);

  // ---- Driver (guest) side -------------------------------------------------

  // Enqueues a descriptor chain. Returns false when not enough free
  // descriptors remain. |cookie| is handed back on completion.
  bool Enqueue(std::span<const Segment> segments, void* cookie);

  // True if the device should be notified (we model VIRTIO_F_EVENT_IDX-less
  // behaviour: notify whenever new buffers were published since last kick).
  bool NeedsKick() const { return avail_idx_shadow_ != kicked_idx_; }
  void MarkKicked() { kicked_idx_ = avail_idx_shadow_; }

  // Reaps one completion from the used ring, if any.
  std::optional<Completion> DequeueCompletion();

  // True if the device published completions the driver has not reaped yet.
  bool HasCompletions() const {
    return used_last_seen_ != mem_->Read<std::uint16_t>(used_gpa_ + 2);
  }

  std::uint16_t NumFree() const { return num_free_; }
  std::uint16_t QueueSize() const { return qsize_; }

  // ---- Device (backend) side ------------------------------------------------

  // Pops the next available chain, walking the descriptor table in guest
  // memory. Returns nullopt when the avail ring is empty. Malformed chains
  // (bad index, loop longer than the queue) abort the walk and count as a
  // bad_chain; tests assert this stays zero in healthy runs.
  std::optional<DeviceChain> DevicePop();

  // Publishes a used entry for |head| with |written| bytes filled in.
  void DevicePush(std::uint16_t head, std::uint32_t written);

  // True if the driver has buffers the device has not consumed yet.
  bool DeviceHasWork() const;

  std::uint64_t bad_chains() const { return bad_chains_; }

 private:
  std::uint64_t DescGpa(std::uint16_t i) const { return desc_gpa_ + i * sizeof(VringDesc); }
  void FreeChain(std::uint16_t head);

  MemRegion* mem_;
  std::uint16_t qsize_ = 0;
  std::uint64_t desc_gpa_ = 0;
  std::uint64_t avail_gpa_ = 0;   // {u16 flags; u16 idx; u16 ring[qsize]}
  std::uint64_t used_gpa_ = 0;    // {u16 flags; u16 idx; VringUsedElem ring[qsize]}

  // Driver-private state (mirrors what a real driver keeps outside the rings).
  std::uint16_t free_head_ = 0;
  std::uint16_t num_free_ = 0;
  std::uint16_t avail_idx_shadow_ = 0;   // next avail->idx value to publish
  std::uint16_t kicked_idx_ = 0;
  std::uint16_t used_last_seen_ = 0;
  std::vector<void*> cookies_;

  // Device-private state.
  std::uint16_t device_last_avail_ = 0;

  std::uint64_t bad_chains_ = 0;
};

}  // namespace ukplat

#endif  // UKPLAT_VIRTQUEUE_H_
