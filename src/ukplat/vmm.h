// ukplat/vmm.h - VMM launch-cost profiles for the boot-time experiments.
//
// Fig 10 of the paper splits total boot time into "VMM" and "Unikraft guest".
// The guest part is our real boot code (ukboot); the VMM part is a per-monitor
// constant that we encode here, taken from the paper's measurements on the
// i7-9700K testbed. The per-NIC surcharge models QEMU's PCI enumeration of an
// extra virtio device (Fig 10's "QEMU (1 NIC)" bar).
#ifndef UKPLAT_VMM_H_
#define UKPLAT_VMM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ukplat {

struct VmmModel {
  std::string name;
  double startup_us = 0.0;       // process spawn + device model setup
  double per_nic_us = 0.0;       // PCI/MMIO enumeration per attached NIC
  bool pci_transport = true;     // false for Solo5/Firecracker-style MMIO
  // Relative VMM I/O efficiency (Firecracker's slower virtio handling shows up
  // in the paper's Redis results); 1.0 means QEMU/KVM-grade.
  double io_efficiency = 1.0;

  double LaunchUs(int nics) const { return startup_us + per_nic_us * nics; }

  static VmmModel Qemu();
  static VmmModel QemuMicroVm();
  static VmmModel Firecracker();
  static VmmModel Solo5();
  static VmmModel Xen();
  static VmmModel UHyve();

  static const std::vector<VmmModel>& All();
};

}  // namespace ukplat

#endif  // UKPLAT_VMM_H_
