// ukplat/clock.h - virtual cycle ledger and hardware cost model.
//
// The paper's measurements were taken on an Intel i7-9700K @ 3.6 GHz behind
// KVM/Xen. We cannot take VM exits in this environment, so every modeled
// hardware/hypervisor event (trap, KPTI flush, VM exit, vhost kick, interrupt
// injection, wire transfer) charges cycles to a Clock owned by the simulated
// world. Real data-structure work (ring updates, copies, parsing) still
// executes for real; only privilege/device-crossing costs are charged.
//
// The constants come from the paper's own Table 1 (syscall costs) plus widely
// published KVM exit/vhost numbers; DESIGN.md documents the calibration.
#ifndef UKPLAT_CLOCK_H_
#define UKPLAT_CLOCK_H_

#include <cstddef>
#include <cstdint>

namespace ukplat {

// Cycle costs of modeled events. All values are cycles on the paper's 3.6 GHz
// machine unless stated otherwise.
struct CostModel {
  double cpu_ghz = 3.6;

  // Table 1 of the paper.
  std::uint64_t function_call = 4;          // plain call/ret
  std::uint64_t syscall_trap_mitigated = 222;   // Linux syscall with KPTI etc.
  std::uint64_t syscall_trap_plain = 154;   // Linux syscall, mitigations off
  std::uint64_t binary_compat_dispatch = 84;    // Unikraft run-time syscall translation

  // Hypervisor events (public KVM numbers, order-of-magnitude).
  std::uint64_t vm_exit = 1800;             // lightweight VM exit + entry
  std::uint64_t vhost_kick = 1100;          // eventfd signal to vhost thread
  std::uint64_t irq_inject = 700;           // posted interrupt into the guest
  std::uint64_t pio_exit = 2400;            // port-IO exit (QEMU device emu)

  // Per-packet backend processing (Fig 19's vhost-net vs vhost-user gap):
  // vhost-net traverses the host kernel tap path per packet; vhost-user is a
  // DPDK-style userspace poller touching only the rings.
  std::uint64_t vhost_net_per_packet = 950;
  std::uint64_t vhost_user_per_packet = 160;

  // Data movement: ~16 bytes/cycle sustained copy bandwidth.
  double copy_cycles_per_byte = 0.0625;

  // Per-hop wire cost: serialization handled by Wire using link_gbps.
  double link_gbps = 10.0;

  std::uint64_t CopyCost(std::size_t bytes) const {
    return static_cast<std::uint64_t>(static_cast<double>(bytes) * copy_cycles_per_byte);
  }

  double CyclesToNs(std::uint64_t cycles) const {
    return static_cast<double>(cycles) / cpu_ghz;
  }

  std::uint64_t NsToCycles(double ns) const {
    return static_cast<std::uint64_t>(ns * cpu_ghz);
  }
};

// Monotonic virtual clock. One per simulated world; components hold a pointer
// and charge the events they model. Never wraps in practice (2^64 cycles).
class Clock {
 public:
  explicit Clock(CostModel model = CostModel{}) : model_(model) {}

  void Charge(std::uint64_t cycles) { cycles_ += cycles; }
  void ChargeCopy(std::size_t bytes) { cycles_ += model_.CopyCost(bytes); }

  std::uint64_t cycles() const { return cycles_; }
  double nanoseconds() const { return model_.CyclesToNs(cycles_); }
  double microseconds() const { return nanoseconds() / 1e3; }
  double milliseconds() const { return nanoseconds() / 1e6; }

  const CostModel& model() const { return model_; }

  void Reset() { cycles_ = 0; }

 private:
  CostModel model_;
  std::uint64_t cycles_ = 0;
};

// Scoped delta measurement against a Clock, for per-phase boot accounting.
class ClockSpan {
 public:
  explicit ClockSpan(const Clock& clock) : clock_(clock), start_(clock.cycles()) {}
  std::uint64_t ElapsedCycles() const { return clock_.cycles() - start_; }
  double ElapsedNs() const { return clock_.model().CyclesToNs(ElapsedCycles()); }

 private:
  const Clock& clock_;
  std::uint64_t start_;
};

}  // namespace ukplat

#endif  // UKPLAT_CLOCK_H_
