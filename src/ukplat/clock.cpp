#include "ukplat/clock.h"

// Clock is fully inline; this TU anchors the library and keeps a home for
// future out-of-line additions (e.g. tracing hooks).
