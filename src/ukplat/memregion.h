// ukplat/memregion.h - guest-physical memory for a simulated unikernel.
//
// Each ukboot::Instance owns one contiguous MemRegion that plays the role of
// guest RAM: allocators carve their heaps out of it, virtqueues place their
// rings in it, and devices address buffers by guest-physical address (gpa =
// offset into the region). Bounds are checked on every translation so driver
// bugs surface as errors instead of host memory corruption.
#ifndef UKPLAT_MEMREGION_H_
#define UKPLAT_MEMREGION_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>

namespace ukplat {

class MemRegion {
 public:
  // Creates a zero-initialized region of |bytes| guest RAM.
  explicit MemRegion(std::size_t bytes);

  MemRegion(const MemRegion&) = delete;
  MemRegion& operator=(const MemRegion&) = delete;

  std::size_t size() const { return size_; }

  // Translates |gpa| into a host pointer valid for |len| bytes, or nullptr if
  // the access would escape the region.
  std::byte* At(std::uint64_t gpa, std::size_t len);
  const std::byte* At(std::uint64_t gpa, std::size_t len) const;

  // Typed little-endian accessors used by the virtqueue code. Out-of-bounds
  // reads return T{}; out-of-bounds writes are dropped. Both are recorded in
  // fault_count() so tests can assert no stray accesses happened.
  template <typename T>
  T Read(std::uint64_t gpa) const {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::byte* p = At(gpa, sizeof(T));
    if (p == nullptr) {
      ++fault_count_;
      return T{};
    }
    T v;
    std::memcpy(&v, p, sizeof(T));
    return v;
  }

  template <typename T>
  void Write(std::uint64_t gpa, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::byte* p = At(gpa, sizeof(T));
    if (p == nullptr) {
      ++fault_count_;
      return;
    }
    std::memcpy(p, &v, sizeof(T));
  }

  // Bulk copies with bounds checking; return false (and count a fault) on OOB.
  bool CopyIn(std::uint64_t gpa, std::span<const std::byte> src);
  bool CopyOut(std::uint64_t gpa, std::span<std::byte> dst) const;

  std::uint64_t fault_count() const { return fault_count_; }

  // Reverse translation: gpa of a host pointer into this region, or kBadGpa
  // when the pointer does not belong to the region. Lets allocations made
  // from a heap that lives in guest RAM be handed to devices by address.
  std::uint64_t GpaOf(const void* p) const {
    auto* b = static_cast<const std::byte*>(p);
    if (b < mem_.get() || b >= mem_.get() + size_) {
      return kBadGpa;
    }
    return static_cast<std::uint64_t>(b - mem_.get());
  }

  // Simple bump carve-out used during early boot to place rings and heaps.
  // Returns the gpa of an |align|-aligned block of |bytes|, or UINT64_MAX if
  // the region is exhausted.
  std::uint64_t Carve(std::size_t bytes, std::size_t align);
  std::uint64_t carve_brk() const { return carve_brk_; }

  // Returns the region to its power-on state: every byte zeroed and the boot
  // carve pointer rewound. Instance reboot uses this so the same guest RAM
  // can host a fresh boot sequence; callers must have dropped every pointer
  // into the region first (heaps, rings, page tables).
  void Reset() {
    std::memset(mem_.get(), 0, size_);
    carve_brk_ = 0;
  }

  static constexpr std::uint64_t kBadGpa = UINT64_MAX;

 private:
  std::unique_ptr<std::byte[]> mem_;
  std::size_t size_;
  std::uint64_t carve_brk_ = 0;
  mutable std::uint64_t fault_count_ = 0;
};

}  // namespace ukplat

#endif  // UKPLAT_MEMREGION_H_
