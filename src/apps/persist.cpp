#include "apps/persist.h"

#include <algorithm>
#include <cstring>

#include "apps/resp.h"

namespace apps {
namespace {

constexpr char kSnapMagic[8] = {'U', 'K', 'R', 'D', 'B', '0', '1', '\0'};
// magic + gen + first_aof_seg + shards + pad + key_count
constexpr std::size_t kSnapHeaderBytes = 8 + 4 + 4 + 2 + 2 + 8;
constexpr std::size_t kSnapFooterBytes = 4;  // CRC-32C over everything before it
// u16 shard + u32 klen + u32 vlen
constexpr std::size_t kSnapRecordHeader = 2 + 4 + 4;

void PutU16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void PutU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

std::uint16_t GetU16(const char* p) {
  return static_cast<std::uint16_t>(static_cast<std::uint8_t>(p[0]) |
                                    (static_cast<std::uint8_t>(p[1]) << 8));
}

std::uint32_t GetU32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  }
  return v;
}

std::uint64_t GetU64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  }
  return v;
}

bool WriteAll(vfscore::File* file, std::string_view bytes) {
  const std::byte* p = reinterpret_cast<const std::byte*>(bytes.data());
  std::size_t left = bytes.size();
  while (left > 0) {
    std::int64_t n = file->Write(std::span<const std::byte>(p, left));
    if (n <= 0) {
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

// Parses the decimal |text| as a non-negative integer; false on any non-digit.
bool ParseNumber(std::string_view text, std::uint64_t* out) {
  if (text.empty()) {
    return false;
  }
  std::uint64_t v = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return false;
    }
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

// File-name codecs for the flat persistence directory.
// Snapshot: dump-<gen>.rdb   AOF: aof-<seg>-s<shard>
bool ParseSnapshotName(std::string_view name, std::uint32_t* gen) {
  if (!name.starts_with("dump-") || !name.ends_with(".rdb")) {
    return false;
  }
  std::uint64_t v = 0;
  if (!ParseNumber(name.substr(5, name.size() - 9), &v)) {
    return false;
  }
  *gen = static_cast<std::uint32_t>(v);
  return true;
}

bool ParseAofName(std::string_view name, std::uint32_t* seg, std::uint16_t* shard) {
  if (!name.starts_with("aof-")) {
    return false;
  }
  std::size_t s = name.rfind("-s");
  if (s == std::string_view::npos || s < 4) {
    return false;
  }
  std::uint64_t seg_v = 0;
  std::uint64_t shard_v = 0;
  if (!ParseNumber(name.substr(4, s - 4), &seg_v) ||
      !ParseNumber(name.substr(s + 2), &shard_v)) {
    return false;
  }
  *seg = static_cast<std::uint32_t>(seg_v);
  *shard = static_cast<std::uint16_t>(shard_v);
  return true;
}

}  // namespace

Persist::Persist(vfscore::Vfs* vfs, Config config)
    : vfs_(vfs), config_(std::move(config)) {
  if (config_.shards == 0) {
    config_.shards = 1;
  }
  shards_.resize(config_.shards);
  for (ShardState& s : shards_) {
    s.turn_buf.reserve(1024);  // warm start; grows to its high-water mark
  }
}

std::string Persist::AofPath(std::uint32_t seg, std::uint16_t shard) const {
  return config_.dir + "/aof-" + std::to_string(seg) + "-s" + std::to_string(shard);
}

std::string Persist::SnapshotPath(std::uint32_t gen) const {
  return config_.dir + "/dump-" + std::to_string(gen) + ".rdb";
}

// ---- AOF ---------------------------------------------------------------------

void Persist::AppendSet(std::uint16_t shard, std::string_view key,
                        std::string_view value) {
  if (shard >= shards_.size()) {
    return;
  }
  RespCommandInto(shards_[shard].turn_buf, {"SET", key, value});
  ++stats_.aof_appends;
  if (config_.fsync == FsyncPolicy::kAlways) {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t bytes = 0;
    FlushShardLocked(shard, &bytes);
    FsyncShardLocked(shard);
    stats_.max_turn_aof_bytes = std::max(stats_.max_turn_aof_bytes, bytes);
  }
}

void Persist::AppendDel(std::uint16_t shard, std::string_view key) {
  if (shard >= shards_.size()) {
    return;
  }
  RespCommandInto(shards_[shard].turn_buf, {"DEL", key});
  ++stats_.aof_appends;
  if (config_.fsync == FsyncPolicy::kAlways) {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t bytes = 0;
    FlushShardLocked(shard, &bytes);
    FsyncShardLocked(shard);
    stats_.max_turn_aof_bytes = std::max(stats_.max_turn_aof_bytes, bytes);
  }
}

void Persist::AppendClear(std::uint16_t shard) {
  if (shard >= shards_.size()) {
    return;
  }
  RespCommandInto(shards_[shard].turn_buf, {"FLUSHALL"});
  ++stats_.aof_appends;
  if (config_.fsync == FsyncPolicy::kAlways) {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t bytes = 0;
    FlushShardLocked(shard, &bytes);
    FsyncShardLocked(shard);
    stats_.max_turn_aof_bytes = std::max(stats_.max_turn_aof_bytes, bytes);
  }
}

void Persist::FlushShardLocked(std::uint16_t shard, std::size_t* turn_bytes) {
  ShardState& s = shards_[shard];
  if (s.turn_buf.empty()) {
    return;
  }
  if (s.seg_file == nullptr) {
    auto st = vfs_->Open(AofPath(cur_seg_, shard),
                         vfscore::kWrite | vfscore::kCreate | vfscore::kAppend,
                         &s.seg_file);
    if (!ukarch::Ok(st)) {
      ++stats_.io_errors;
      s.turn_buf.clear();
      return;
    }
  }
  if (!WriteAll(s.seg_file.get(), s.turn_buf)) {
    ++stats_.io_errors;
  } else {
    ++stats_.aof_writes;
    if (turn_bytes != nullptr) {
      *turn_bytes += s.turn_buf.size();
    }
  }
  s.turn_buf.clear();  // capacity retained: steady state reuses the buffer
}

bool Persist::FsyncShardLocked(std::uint16_t shard) {
  ShardState& s = shards_[shard];
  if (s.seg_file == nullptr) {
    return true;
  }
  ++stats_.fsyncs;
  if (!ukarch::Ok(s.seg_file->Fsync())) {
    ++stats_.io_errors;
    return false;
  }
  return true;
}

void Persist::OnTurnEnd() {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t aof_bytes = 0;
  for (std::uint16_t s = 0; s < shards_.size(); ++s) {
    const bool dirty = !shards_[s].turn_buf.empty();
    FlushShardLocked(s, &aof_bytes);
    if (dirty && config_.fsync == FsyncPolicy::kEveryTurn) {
      FsyncShardLocked(s);
    }
  }
  stats_.max_turn_aof_bytes = std::max(stats_.max_turn_aof_bytes, aof_bytes);
  if (save_.active) {
    std::size_t snap_bytes = AdvanceSaveLocked(config_.snapshot_chunk_bytes);
    if (snap_bytes > 0) {
      ++stats_.snapshot_turns;
      stats_.max_turn_snapshot_bytes =
          std::max(stats_.max_turn_snapshot_bytes, snap_bytes);
    }
  }
}

void Persist::FlushShard(std::uint16_t shard) {
  if (shard >= shards_.size()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  const bool dirty = !shards_[shard].turn_buf.empty();
  std::size_t bytes = 0;
  FlushShardLocked(shard, &bytes);
  if (dirty && config_.fsync == FsyncPolicy::kEveryTurn) {
    FsyncShardLocked(shard);
  }
  stats_.max_turn_aof_bytes = std::max(stats_.max_turn_aof_bytes, bytes);
}

bool Persist::FsyncNow() {
  std::lock_guard<std::mutex> lock(mu_);
  bool ok = true;
  for (std::uint16_t s = 0; s < shards_.size(); ++s) {
    FlushShardLocked(s, nullptr);
    if (!FsyncShardLocked(s)) {
      ok = false;
    }
  }
  return ok;
}

// ---- snapshots ---------------------------------------------------------------

bool Persist::BeginSaveLocked() {
  if (save_.active || !source_.capture || !source_.lookup) {
    return false;
  }
  // Seal the AOF: everything appended so far describes pre-snapshot state and
  // belongs to the old segments; the snapshot then covers those segments and
  // replay only needs seg >= first_aof_seg.
  for (std::uint16_t s = 0; s < shards_.size(); ++s) {
    FlushShardLocked(s, nullptr);
    shards_[s].seg_file.reset();
  }
  ++cur_seg_;

  save_.gen = next_gen_++;
  save_.first_aof_seg = cur_seg_;
  save_.path = SnapshotPath(save_.gen);
  auto st = vfs_->Open(save_.path,
                       vfscore::kWrite | vfscore::kCreate | vfscore::kTrunc,
                       &save_.file);
  if (!ukarch::Ok(st)) {
    ++stats_.io_errors;
    return false;
  }

  // Point-in-time capture: the key lists are copied now; values stream later,
  // protected by the PreMutate pre-image side log.
  const std::uint16_t n = static_cast<std::uint16_t>(shards_.size());
  save_.keys.assign(n, {});
  save_.pending.assign(n, {});
  save_.dirty.assign(n, {});
  std::uint64_t key_count = 0;
  for (std::uint16_t s = 0; s < n; ++s) {
    source_.capture(s, &save_.keys[s]);
    for (const std::string& k : save_.keys[s]) {
      save_.pending[s].insert(k);
    }
    key_count += save_.keys[s].size();
  }

  save_.crc.Reset();
  save_.record.clear();
  save_.record.append(kSnapMagic, sizeof(kSnapMagic));
  PutU32(save_.record, save_.gen);
  PutU32(save_.record, save_.first_aof_seg);
  PutU16(save_.record, n);
  PutU16(save_.record, 0);
  PutU64(save_.record, key_count);
  save_.crc.Update(save_.record.data(), save_.record.size());
  if (!WriteAll(save_.file.get(), save_.record)) {
    ++stats_.io_errors;
    save_.file.reset();
    vfs_->Unlink(save_.path);
    return false;
  }

  save_.keys_written = 0;
  save_.cur_shard = 0;
  save_.cursor = 0;
  save_.active = true;
  save_active_.store(true, std::memory_order_release);
  ++stats_.snapshots_started;
  return true;
}

std::size_t Persist::AdvanceSaveLocked(std::size_t budget) {
  std::size_t written = 0;
  while (save_.active) {
    if (save_.cur_shard >= save_.keys.size()) {
      FinishSaveLocked();
      break;
    }
    std::vector<std::string>& keys = save_.keys[save_.cur_shard];
    if (save_.cursor >= keys.size()) {
      ++save_.cur_shard;
      save_.cursor = 0;
      continue;
    }
    // One record per iteration; stop once the budget is consumed but always
    // make progress (a record larger than the whole budget still goes out —
    // the only way a turn can exceed snapshot_chunk_bytes).
    if (written >= budget) {
      break;
    }
    const std::uint16_t shard = save_.cur_shard;
    const std::string& key = keys[save_.cursor++];
    std::string_view value;
    bool have = false;
    auto dirty_it = save_.dirty[shard].find(key);
    if (dirty_it != save_.dirty[shard].end()) {
      value = dirty_it->second;  // pre-image preserved by PreMutate
      have = true;
    } else {
      auto pend_it = save_.pending[shard].find(key);
      if (pend_it != save_.pending[shard].end()) {
        save_.pending[shard].erase(pend_it);
        auto live = source_.lookup(shard, key);
        if (live.has_value()) {
          value = *live;
          have = true;
        }
      }
    }
    if (!have) {
      continue;
    }
    save_.record.clear();
    PutU16(save_.record, shard);
    PutU32(save_.record, static_cast<std::uint32_t>(key.size()));
    PutU32(save_.record, static_cast<std::uint32_t>(value.size()));
    save_.record.append(key);
    save_.record.append(value);
    save_.crc.Update(save_.record.data(), save_.record.size());
    if (!WriteAll(save_.file.get(), save_.record)) {
      ++stats_.io_errors;
      AbortSaveLocked();
      break;
    }
    if (dirty_it != save_.dirty[shard].end()) {
      save_.dirty[shard].erase(dirty_it);
    }
    written += save_.record.size();
    ++save_.keys_written;
  }
  return written;
}

void Persist::FinishSaveLocked() {
  // Commit: the CRC trailer is what makes the file valid — a crash any time
  // before this write leaves a rejectable file and recovery falls back.
  save_.record.clear();
  PutU32(save_.record, save_.crc.value());
  bool ok = WriteAll(save_.file.get(), save_.record);
  if (ok) {
    ++stats_.fsyncs;
    ok = ukarch::Ok(save_.file->Fsync());  // snapshots are always barriered
  }
  save_.file.reset();
  if (!ok) {
    ++stats_.io_errors;
    vfs_->Unlink(save_.path);
    ++stats_.snapshots_aborted;
  } else {
    snapshot_first_seg_[save_.gen] = save_.first_aof_seg;
    ++stats_.snapshots_completed;
    RetireOldLocked();
  }
  save_.keys.clear();
  save_.pending.clear();
  save_.dirty.clear();
  save_.active = false;
  save_active_.store(false, std::memory_order_release);
}

void Persist::AbortSaveLocked() {
  if (!save_.active) {
    return;
  }
  save_.file.reset();
  vfs_->Unlink(save_.path);
  save_.keys.clear();
  save_.pending.clear();
  save_.dirty.clear();
  save_.active = false;
  save_active_.store(false, std::memory_order_release);
  ++stats_.snapshots_aborted;
}

void Persist::AbortSave() {
  std::lock_guard<std::mutex> lock(mu_);
  AbortSaveLocked();
}

bool Persist::StartBackgroundSave() {
  std::lock_guard<std::mutex> lock(mu_);
  return BeginSaveLocked();
}

bool Persist::SaveNow() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!BeginSaveLocked()) {
    return false;
  }
  const std::uint32_t gen = save_.gen;
  while (save_.active) {
    AdvanceSaveLocked(static_cast<std::size_t>(-1));
  }
  return snapshot_first_seg_.contains(gen);
}

void Persist::PreMutateSlow(std::uint16_t shard, std::string_view key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!save_.active || shard >= save_.pending.size()) {
    return;
  }
  auto it = save_.pending[shard].find(key);
  if (it == save_.pending[shard].end()) {
    return;  // cursor already passed it, or created after capture
  }
  auto value = source_.lookup(shard, key);
  if (value.has_value()) {
    save_.dirty[shard].emplace(*it, std::string(*value));
    ++stats_.cow_preimages;
  }
  save_.pending[shard].erase(it);
}

void Persist::RetireOldLocked() {
  std::vector<vfscore::DirEntry> entries;
  if (!ukarch::Ok(vfs_->ReadDir(config_.dir, &entries))) {
    return;
  }
  std::vector<std::uint32_t> gens;
  for (const vfscore::DirEntry& e : entries) {
    std::uint32_t gen = 0;
    if (ParseSnapshotName(e.name, &gen)) {
      gens.push_back(gen);
    }
  }
  std::sort(gens.begin(), gens.end(), std::greater<>());
  // Keep the two newest generations (belt and braces: the newest plus one
  // fallback); unlink the rest and forget their AOF coverage entries.
  constexpr std::size_t kKeepGens = 2;
  for (std::size_t i = kKeepGens; i < gens.size(); ++i) {
    vfs_->Unlink(SnapshotPath(gens[i]));
    snapshot_first_seg_.erase(gens[i]);
  }
  // AOF GC: a segment is dead once every retained snapshot covers it. If any
  // retained generation's coverage is unknown, skip the GC entirely.
  std::uint32_t min_first_seg = cur_seg_;
  for (std::size_t i = 0; i < std::min(kKeepGens, gens.size()); ++i) {
    auto it = snapshot_first_seg_.find(gens[i]);
    if (it == snapshot_first_seg_.end()) {
      return;
    }
    min_first_seg = std::min(min_first_seg, it->second);
  }
  if (gens.empty()) {
    return;
  }
  for (const vfscore::DirEntry& e : entries) {
    std::uint32_t seg = 0;
    std::uint16_t shard = 0;
    if (ParseAofName(e.name, &seg, &shard) && seg < min_first_seg) {
      vfs_->Unlink(config_.dir + "/" + std::string(e.name));
    }
  }
}

// ---- recovery ----------------------------------------------------------------

bool Persist::ReadWholeFile(const std::string& path, std::string* out) {
  vfscore::NodeStat st;
  if (!ukarch::Ok(vfs_->Stat(path, &st))) {
    return false;
  }
  std::shared_ptr<vfscore::File> file;
  if (!ukarch::Ok(vfs_->Open(path, vfscore::kRead, &file))) {
    return false;
  }
  out->resize(st.size);
  std::size_t got = 0;
  while (got < out->size()) {
    std::int64_t n = file->Read(std::span<std::byte>(
        reinterpret_cast<std::byte*>(out->data()) + got, out->size() - got));
    if (n <= 0) {
      return false;
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

bool Persist::LoadSnapshot(std::uint32_t gen, const Applier& apply,
                           RecoverStats* st) {
  std::string body;
  if (!ReadWholeFile(SnapshotPath(gen), &body)) {
    return false;
  }
  if (body.size() < kSnapHeaderBytes + kSnapFooterBytes) {
    return false;
  }
  const std::size_t crc_pos = body.size() - kSnapFooterBytes;
  const std::uint32_t stored_crc = GetU32(body.data() + crc_pos);
  if (ukarch::Crc32Of(std::span<const std::byte>(
          reinterpret_cast<const std::byte*>(body.data()), crc_pos)) !=
      stored_crc) {
    return false;
  }
  if (std::memcmp(body.data(), kSnapMagic, sizeof(kSnapMagic)) != 0) {
    return false;
  }
  const std::uint32_t file_gen = GetU32(body.data() + 8);
  const std::uint32_t first_seg = GetU32(body.data() + 12);
  const std::uint64_t key_count = GetU64(body.data() + 20);
  if (file_gen != gen) {
    return false;
  }
  // Parse + apply. The CRC already vouched for every byte, so applying while
  // parsing cannot half-apply a corrupt file.
  std::size_t pos = kSnapHeaderBytes;
  std::uint64_t applied = 0;
  while (pos < crc_pos) {
    if (crc_pos - pos < kSnapRecordHeader) {
      return false;
    }
    const std::uint16_t shard = GetU16(body.data() + pos);
    const std::uint32_t klen = GetU32(body.data() + pos + 2);
    const std::uint32_t vlen = GetU32(body.data() + pos + 6);
    pos += kSnapRecordHeader;
    if (crc_pos - pos < static_cast<std::size_t>(klen) + vlen) {
      return false;
    }
    std::string_view key(body.data() + pos, klen);
    std::string_view value(body.data() + pos + klen, vlen);
    pos += klen + static_cast<std::size_t>(vlen);
    if (apply.set) {
      apply.set(shard, key, value);
    }
    ++applied;
  }
  if (applied != key_count) {
    return false;
  }
  st->snapshot_loaded = true;
  st->snapshot_gen = gen;
  st->snapshot_keys = applied;
  snapshot_first_seg_[gen] = first_seg;
  return true;
}

void Persist::ReplaySegment(std::uint32_t seg, std::uint16_t shard,
                            const Applier& apply, RecoverStats* st) {
  std::string body;
  if (!ReadWholeFile(AofPath(seg, shard), &body)) {
    return;
  }
  RespCommandParser parser;
  parser.Feed(body);
  while (const auto* argv = parser.NextView()) {
    const auto& a = *argv;
    if (a.empty()) {
      continue;
    }
    if (a[0] == "SET" && a.size() == 3) {
      if (apply.set) {
        apply.set(shard, a[1], a[2]);
      }
    } else if (a[0] == "DEL" && a.size() == 2) {
      if (apply.del) {
        apply.del(shard, a[1]);
      }
    } else if (a[0] == "FLUSHALL" && a.size() == 1) {
      if (apply.clear) {
        apply.clear(shard);
      }
    } else {
      continue;  // unknown canonical command: skip, count nothing
    }
    ++st->aof_commands;
  }
  // The torn write of a crash: an incomplete (or garbled) final record stays
  // buffered or trips the parser — both are the tolerated truncated tail.
  if (parser.error() || parser.pending() > 0) {
    st->aof_tail_truncated = true;
  }
  ++st->aof_segments;
}

Persist::RecoverStats Persist::Recover(const Applier& apply) {
  std::lock_guard<std::mutex> lock(mu_);
  RecoverStats st;
  std::vector<vfscore::DirEntry> entries;
  vfs_->ReadDir(config_.dir, &entries);

  std::vector<std::uint32_t> gens;
  std::uint32_t max_seg = 0;
  bool any_seg = false;
  std::vector<std::pair<std::uint32_t, std::uint16_t>> segs;
  for (const vfscore::DirEntry& e : entries) {
    std::uint32_t gen = 0;
    std::uint32_t seg = 0;
    std::uint16_t shard = 0;
    if (ParseSnapshotName(e.name, &gen)) {
      gens.push_back(gen);
    } else if (ParseAofName(e.name, &seg, &shard)) {
      segs.emplace_back(seg, shard);
      max_seg = std::max(max_seg, seg);
      any_seg = true;
    }
  }

  // Newest CRC-valid snapshot wins; rejected files are unlinked so they can
  // never shadow a good generation again.
  std::sort(gens.begin(), gens.end(), std::greater<>());
  for (std::uint32_t gen : gens) {
    if (LoadSnapshot(gen, apply, &st)) {
      break;
    }
    ++st.snapshots_rejected;
    vfs_->Unlink(SnapshotPath(gen));
  }

  // Replay the AOF tail: every segment the loaded snapshot does not cover,
  // in segment order (shard interleave within a segment is free — the key
  // space is shard-partitioned).
  const std::uint32_t first_seg =
      st.snapshot_loaded ? snapshot_first_seg_[st.snapshot_gen] : 0;
  std::sort(segs.begin(), segs.end());
  for (const auto& [seg, shard] : segs) {
    if (seg >= first_seg) {
      ReplaySegment(seg, shard, apply, &st);
    }
  }

  // Prime the writer: appends always open a FRESH segment (never append after
  // a possibly-torn tail), and the next snapshot generation is newest + 1.
  cur_seg_ = any_seg ? max_seg + 1 : first_seg;
  next_gen_ = gens.empty() ? 1 : gens.front() + 1;
  RetireOldLocked();
  return st;
}

}  // namespace apps
