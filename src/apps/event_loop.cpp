#include "apps/event_loop.h"

namespace apps {

EventLoop::EventLoop(posix::PosixApi* api) : api_(api) {
  epfd_ = api_->EpollCreate();
}

EventLoop::~EventLoop() {
  if (epfd_ >= 0) {
    api_->Close(epfd_);
  }
}

bool EventLoop::Add(int fd, uknet::EventMask interest, Handler handler) {
  if (epfd_ < 0 || api_->EpollCtl(epfd_, posix::EpollOp::kAdd, fd, interest) != 0) {
    return false;
  }
  handlers_[fd] = Registration{std::move(handler), turns_};
  if (ready_.size() < handlers_.size()) {
    ready_.resize(handlers_.size());  // grows with the connection count only
  }
  return true;
}

bool EventLoop::Mod(int fd, uknet::EventMask interest) {
  return epfd_ >= 0 &&
         api_->EpollCtl(epfd_, posix::EpollOp::kMod, fd, interest) == 0;
}

void EventLoop::Del(int fd) {
  if (epfd_ >= 0) {
    api_->EpollCtl(epfd_, posix::EpollOp::kDel, fd, 0);
  }
  handlers_.erase(fd);
}

std::size_t EventLoop::PumpOnce(std::uint64_t timeout_cycles) {
  if (epfd_ < 0 || handlers_.empty()) {
    // Even an idle loop finishes its turn: batched persistence work (AOF
    // buffers, snapshot chunks) must drain whether or not a socket was ready.
    for (const auto& hook : turn_hooks_) {
      hook();
    }
    return 0;
  }
  ++turns_;
  int n = api_->EpollWait(epfd_, std::span(ready_.data(), ready_.size()),
                          timeout_cycles);
  std::size_t dispatched = 0;
  for (int i = 0; i < n; ++i) {
    const posix::EpollEvent& ev = ready_[static_cast<std::size_t>(i)];
    // Look the handler up per event: an earlier dispatch this turn may have
    // removed (or replaced) it. A registration added DURING this turn (fd
    // closed and its number reused by an accept) never receives the entry
    // that was scanned for the old socket — it waits for the next scan.
    auto it = handlers_.find(ev.fd);
    if (it == handlers_.end() || it->second.added_turn == turns_) {
      continue;
    }
    // Invoke a copy: the handler may Del its own fd, and erasing the map
    // node mid-call would destroy the std::function while it executes.
    Handler handler = it->second.handler;
    handler(ev.fd, ev.events);
    ++dispatched;
    ++dispatches_;
  }
  for (const auto& hook : turn_hooks_) {
    hook();
  }
  return dispatched;
}

}  // namespace apps
