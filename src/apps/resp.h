// apps/resp.h - REdis Serialization Protocol (RESP2) codec, shared by the
// ukredis server and the redis-benchmark-style client.
//
// Hot-path design (after the Socketley idiom): CRLF scanning is memchr-based
// (SIMD under the hood), constant replies are precomputed byte strings, and
// every encoder has an *Into variant that appends straight into the caller's
// output buffer so the reply path performs zero intermediate allocations.
#ifndef APPS_RESP_H_
#define APPS_RESP_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace apps {

// Safety caps against resource exhaustion from malformed or hostile input.
inline constexpr long kRespMaxArraySize = 1024;
inline constexpr long kRespMaxBulkLen = 512 * 1024;  // 512 KB

// Precomputed constant replies (SSO-friendly; appended without formatting).
inline constexpr std::string_view kRespOk = "+OK\r\n";
inline constexpr std::string_view kRespPong = "+PONG\r\n";
inline constexpr std::string_view kRespNil = "$-1\r\n";
inline constexpr std::string_view kRespZero = ":0\r\n";
inline constexpr std::string_view kRespOne = ":1\r\n";

// Fast "\r\n" scanner: memchr for '\r', then check the next byte. Returns a
// pointer to the '\r' or nullptr. Faster than a two-byte search on the short
// lines RESP is made of.
inline const char* FindCrlf(const char* data, std::size_t len) noexcept {
  const char* end = data + len;
  while (data < end) {
    const char* p = static_cast<const char*>(
        std::memchr(data, '\r', static_cast<std::size_t>(end - data)));
    if (p == nullptr || p + 1 >= end) {
      return nullptr;
    }
    if (p[1] == '\n') {
      return p;
    }
    data = p + 1;
  }
  return nullptr;
}

// Incremental parser for client->server commands (arrays of bulk strings).
// Feed bytes; NextView() yields complete commands as string_view argv over
// the connection buffer — the zero-allocation request path.
class RespCommandParser {
 public:
  void Feed(std::string_view bytes) { buf_.append(bytes); }

  // Returns the next complete command as a view-argv, or nullptr if more
  // bytes are needed. The returned vector (reused across calls — its
  // capacity persists, so the steady state performs zero allocations) holds
  // string_views into the parser's buffer: they stay valid until the next
  // NextView()/Next()/Feed() call, which may compact or grow the buffer.
  // Malformed input sets error() and drains the buffer.
  const std::vector<std::string_view>* NextView();

  // Copying convenience wrapper (tests, cold paths): materializes the argv.
  std::optional<std::vector<std::string>> Next();

  bool error() const { return error_; }
  std::size_t buffered() const { return buf_.size(); }
  // Bytes fed but not yet consumed by a complete command — nonzero after the
  // stream ends means a torn final record (the AOF replay truncation check).
  std::size_t pending() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  std::size_t pos_ = 0;
  bool error_ = false;
  std::vector<std::string_view> argv_views_;  // reused command view storage

  void Compact();
  std::optional<std::string_view> ReadLine();
};

// ---- zero-allocation encoders: append into the caller-owned buffer -------------
void RespSimpleStringInto(std::string& out, std::string_view s);
void RespErrorInto(std::string& out, std::string_view msg);
void RespIntegerInto(std::string& out, std::int64_t v);
void RespBulkInto(std::string& out, std::string_view data);
inline void RespOkInto(std::string& out) { out.append(kRespOk); }
inline void RespPongInto(std::string& out) { out.append(kRespPong); }
inline void RespNilInto(std::string& out) { out.append(kRespNil); }
void RespCommandInto(std::string& out, std::initializer_list<std::string_view> argv);

// Allocating convenience wrappers (tests, cold paths).
std::string RespSimpleString(std::string_view s);
std::string RespError(std::string_view msg);
std::string RespInteger(std::int64_t v);
std::string RespBulk(std::string_view data);
std::string RespNil();
std::string RespCommand(const std::vector<std::string>& argv);

// Counts complete top-level replies in a server->client byte stream
// (what redis-benchmark needs to measure throughput under pipelining).
// Consumes fully parsed replies from |buf| in place; returns how many.
std::size_t ConsumeReplies(std::string* buf);

}  // namespace apps

#endif  // APPS_RESP_H_
