// apps/resp.h - REdis Serialization Protocol (RESP2) codec, shared by the
// ukredis server and the redis-benchmark-style client.
#ifndef APPS_RESP_H_
#define APPS_RESP_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace apps {

// Incremental parser for client->server commands (arrays of bulk strings).
// Feed bytes; Next() yields complete commands.
class RespCommandParser {
 public:
  void Feed(std::string_view bytes) { buf_.append(bytes); }

  // Returns the next complete command (argv), or nullopt if more bytes are
  // needed. Malformed input sets error() and drains the buffer.
  std::optional<std::vector<std::string>> Next();

  bool error() const { return error_; }
  std::size_t buffered() const { return buf_.size(); }

 private:
  std::string buf_;
  std::size_t pos_ = 0;
  bool error_ = false;

  void Compact();
  std::optional<std::string> ReadLine();
};

// Serializers for server replies and client commands.
std::string RespSimpleString(std::string_view s);
std::string RespError(std::string_view msg);
std::string RespInteger(std::int64_t v);
std::string RespBulk(std::string_view data);
std::string RespNil();
std::string RespCommand(const std::vector<std::string>& argv);

// Counts complete top-level replies in a server->client byte stream
// (what redis-benchmark needs to measure throughput under pipelining).
// Consumes fully parsed replies from |buf| in place; returns how many.
std::size_t ConsumeReplies(std::string* buf);

}  // namespace apps

#endif  // APPS_RESP_H_
