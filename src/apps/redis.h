// apps/redis.h - ukredis: the in-memory key-value server of Figs 12 and 18,
// plus a redis-benchmark work-alike client.
//
// The server is single-threaded and run-to-completion (the configuration the
// paper selects: cooperative scheduling "fits well with Redis's single
// threaded approach"). Value storage draws from the unikernel's own allocator
// so the allocator comparison in Fig 18 measures real allocator work.
#ifndef APPS_REDIS_H_
#define APPS_REDIS_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "apps/event_loop.h"
#include "apps/persist.h"
#include "apps/resp.h"
#include "apps/stream_server.h"
#include "posix/api.h"
#include "uknet/stack.h"

namespace apps {

// String values held in allocator-backed buffers. Keys are looked up
// transparently (heterogeneous hash/equality), so GET/EXISTS/DEL on the
// parser's string_view argv never materialize a std::string.
class ValueStore {
 public:
  explicit ValueStore(ukalloc::Allocator* alloc) : alloc_(alloc) {}
  ~ValueStore() { Clear(); }

  bool Set(std::string_view key, std::string_view value);
  std::optional<std::string_view> Get(std::string_view key) const;
  bool Del(std::string_view key);
  std::int64_t Incr(std::string_view key, bool* ok);
  std::size_t size() const { return map_.size(); }
  void Clear();
  // Copies every key (snapshot capture — the point-in-time key list a
  // background save walks).
  void CaptureKeys(std::vector<std::string>* keys) const;

 private:
  struct Slot {
    char* data = nullptr;
    std::size_t len = 0;
  };
  struct SvHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  ukalloc::Allocator* alloc_;
  std::unordered_map<std::string, Slot, SvHash, std::equal_to<>> map_;
};

// Single-threaded server multiplexing every connection through the shared
// apps::EventLoop: the listener's kEvtAcceptable and each connection's
// kEvtReadable/kEvtWritable drive one dispatch loop — under a scheduler the
// whole server sleeps in one EpollWait between bursts.
//
// The connection machinery (accept drain, recv loop, interest-tracked flush,
// close-after-drain) lives in the shared apps::StreamServer scaffold; this
// class is only the RESP protocol: a per-connection parser plus ExecuteInto
// over its ValueStore. In sharded deployments N instances ride N per-queue
// loops; instance 0 listens and steers each accepted fd to the instance
// owning the connection's RSS queue, so every loop runs one code path.
class RedisServer {
 public:
  RedisServer(posix::PosixApi* api, ukalloc::Allocator* alloc, std::uint16_t port);
  // Sharded instance riding an external per-queue loop. Only the instance
  // that calls Start() listens; siblings receive fds through the steering
  // hook (SetSteer on the listener, targets returned by stream()).
  RedisServer(posix::PosixApi* api, ukalloc::Allocator* alloc, std::uint16_t port,
              EventLoop* loop);

  // Starts listening and registers with the event loop. False on failure.
  bool Start();
  // One non-blocking event-loop turn. Returns commands run.
  std::size_t PumpOnce();
  // One blocking turn: sleeps in EpollWait up to |timeout_cycles| (see
  // EventLoop::kNoTimeout) until a connection, data, or teardown event.
  std::size_t PumpWait(std::uint64_t timeout_cycles = EventLoop::kNoTimeout);

  std::uint64_t commands_processed() const { return commands_; }
  // Commands arriving on probe-marked connections (balancer health checks):
  // kept out of commands_processed() so load assertions can exclude them.
  std::uint64_t probe_commands() const { return probe_commands_; }
  std::size_t connections() const { return server_.connections(); }
  ValueStore& store() { return store_; }
  EventLoop& loop() { return *active_loop_; }
  StreamServer& stream() { return server_; }

  // Wires the durability tier in: the store becomes the persist Source, every
  // mutation is AOF-logged (and COW-guarded during background saves), and the
  // active loop gets a turn-end hook that batches the file I/O. Enables the
  // SAVE / BGSAVE / WAITAOF commands. Call before traffic.
  void AttachPersist(Persist* persist);
  // Replays snapshot + AOF into the (empty) store — the kLate boot step.
  Persist::RecoverStats RecoverFromPersist();
  Persist* persist() { return persist_; }
  // Steering hook for sharded accept-steer-dispatch (listener instance only).
  void SetSteer(StreamServer::Steer steer) { server_.SetSteer(std::move(steer)); }

 private:
  // Appends the reply straight into |out| (the connection's pending buffer):
  // constant replies are precomputed byte strings, values are encoded in
  // place — no per-command reply allocation.
  void ExecuteInto(std::span<const std::string_view> argv, std::string& out);
  StreamServer::Handler MakeHandler();

  posix::PosixApi* api_;
  std::uint16_t port_;
  EventLoop loop_;            // owned loop (single-loop deployments)
  EventLoop* active_loop_;    // the loop this instance actually rides
  StreamServer server_;
  ValueStore store_;
  Persist* persist_ = nullptr;  // optional durability tier (unowned)
  std::uint64_t commands_ = 0;
  std::uint64_t probe_commands_ = 0;
};

// redis-benchmark work-alike: N connections, pipelined GET/SET mix.
class RedisBenchClient {
 public:
  struct Config {
    int connections = 30;
    int pipeline = 16;
    bool use_set = false;       // false: GET workload, true: SET workload
    int keyspace = 1000;
    int value_bytes = 64;
  };

  RedisBenchClient(uknet::NetStack* stack, uknet::Ip4Addr server, std::uint16_t port,
                   Config config);

  bool ConnectAll(const std::function<void()>& pump);
  // Issues pipelined requests and reaps replies; returns replies completed.
  std::size_t PumpOnce();

  std::uint64_t replies() const { return replies_; }

 private:
  struct ClientConn {
    std::shared_ptr<uknet::TcpSocket> sock;
    std::string rx;
    int in_flight = 0;
  };

  uknet::NetStack* stack_;
  uknet::Ip4Addr server_;
  std::uint16_t port_;
  Config config_;
  std::vector<ClientConn> conns_;
  std::uint64_t replies_ = 0;
  std::uint64_t seq_ = 0;
  // Reused across pumps so the request path allocates nothing per batch.
  std::string batch_;
  std::string key_;
  std::string value_;
};

}  // namespace apps

#endif  // APPS_REDIS_H_
