#include "apps/http.h"

#include <cstring>

namespace apps {

std::optional<HttpRequest> ParseHttpRequest(std::string* buf) {
  std::size_t head_end = buf->find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return std::nullopt;
  }
  HttpRequest req;
  std::size_t line_end = buf->find("\r\n");
  std::string line = buf->substr(0, line_end);
  std::size_t sp1 = line.find(' ');
  std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    buf->erase(0, head_end + 4);
    return std::nullopt;
  }
  req.method = line.substr(0, sp1);
  req.path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  // Headers: we only care about Connection.
  std::string headers = buf->substr(line_end + 2, head_end - line_end - 2);
  req.keep_alive = headers.find("Connection: close") == std::string::npos;
  req.complete = true;
  buf->erase(0, head_end + 4);
  return req;
}

HttpServer::HttpServer(posix::PosixApi* api, std::uint16_t port, vfscore::Vfs* vfs)
    : api_(api), port_(port), mode_(ContentMode::kVfs), vfs_(vfs), loop_(api),
      server_(api, &loop_, MakeHandler()) {}

HttpServer::HttpServer(posix::PosixApi* api, std::uint16_t port,
                       const shfs::Shfs* volume)
    : api_(api), port_(port), mode_(ContentMode::kShfs), volume_(volume), loop_(api),
      server_(api, &loop_, MakeHandler()) {}

StreamServer::Handler HttpServer::MakeHandler() {
  StreamServer::Handler h;
  h.on_data = [this](StreamServer::Conn& c, std::string_view data) {
    c.in.append(data);
    while (auto req = ParseHttpRequest(&c.in)) {
      c.out += BuildResponse(*req);
      ++requests_;
      c.want_close = c.want_close || !req->keep_alive;
    }
  };
  return h;
}

bool HttpServer::Start() { return server_.Listen(port_); }

namespace {

std::string StatusLine(int code) {
  switch (code) {
    case 200: return "HTTP/1.1 200 OK\r\n";
    case 404: return "HTTP/1.1 404 Not Found\r\n";
    default: return "HTTP/1.1 500 Internal Server Error\r\n";
  }
}

std::string WithHeaders(int code, std::string_view body, bool keep_alive) {
  std::string resp = StatusLine(code);
  resp += "Server: ukhttp/0.1\r\n";
  resp += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  resp += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  resp += "\r\n";
  resp.append(body);
  return resp;
}

}  // namespace

std::string HttpServer::BuildResponse(const HttpRequest& req) {
  if (mode_ == ContentMode::kShfs) {
    // Specialized path: hash lookup straight into the volume, zero-copy view.
    std::string_view name = req.path;
    if (!name.empty() && name[0] == '/') {
      name.remove_prefix(1);
    }
    auto handle = volume_->Open(name);
    if (!handle.has_value()) {
      return WithHeaders(404, "not found", req.keep_alive);
    }
    return WithHeaders(200,
                       std::string_view(reinterpret_cast<const char*>(handle->data.data()),
                                        handle->data.size()),
                       req.keep_alive);
  }
  // Standard path: VFS open + read via the POSIX layer (syscalls charged).
  int fd = api_->Open(req.path, vfscore::kRead);
  if (fd < 0) {
    return WithHeaders(404, "not found", req.keep_alive);
  }
  std::string body;
  std::byte chunk[4096];
  for (;;) {
    std::int64_t n = api_->Read(fd, chunk);
    if (n <= 0) {
      break;
    }
    body.append(reinterpret_cast<char*>(chunk), static_cast<std::size_t>(n));
  }
  api_->Close(fd);
  return WithHeaders(200, body, req.keep_alive);
}

std::size_t HttpServer::PumpOnce() { return PumpWait(0); }

std::size_t HttpServer::PumpWait(std::uint64_t timeout_cycles) {
  const std::uint64_t before = requests_;
  loop_.PumpOnce(timeout_cycles);
  return static_cast<std::size_t>(requests_ - before);
}

// ---- WrkClient --------------------------------------------------------------------

WrkClient::WrkClient(uknet::NetStack* stack, uknet::Ip4Addr server, std::uint16_t port,
                     Config config)
    : stack_(stack), server_(server), port_(port), config_(config) {}

bool WrkClient::ConnectAll(const std::function<void()>& pump) {
  for (int i = 0; i < config_.connections; ++i) {
    auto sock = stack_->TcpConnect(server_, port_);
    if (sock == nullptr) {
      return false;
    }
    conns_.push_back(ClientConn{std::move(sock), {}, 0});
  }
  for (int rounds = 0; rounds < 50000; ++rounds) {
    bool all = true;
    for (ClientConn& c : conns_) {
      all = all && c.sock->connected();
    }
    if (all) {
      return true;
    }
    pump();
  }
  return false;
}

namespace {

// Counts complete HTTP responses in |buf| using Content-Length framing.
std::size_t ConsumeHttpResponses(std::string* buf) {
  std::size_t count = 0;
  for (;;) {
    std::size_t head_end = buf->find("\r\n\r\n");
    if (head_end == std::string::npos) {
      break;
    }
    std::size_t cl = buf->find("Content-Length: ");
    if (cl == std::string::npos || cl > head_end) {
      break;
    }
    long len = std::strtol(buf->c_str() + cl + 16, nullptr, 10);
    std::size_t total = head_end + 4 + static_cast<std::size_t>(len);
    if (buf->size() < total) {
      break;
    }
    buf->erase(0, total);
    ++count;
  }
  return count;
}

}  // namespace

std::size_t WrkClient::PumpOnce() {
  std::string request = "GET " + config_.path +
                        " HTTP/1.1\r\nHost: 10.0.0.1\r\nConnection: keep-alive\r\n\r\n";
  std::size_t done = 0;
  std::uint8_t buf[8192];
  for (ClientConn& c : conns_) {
    if (c.sock->failed()) {
      continue;
    }
    if (c.in_flight < config_.pipeline) {
      // Coalesced pipeline write, like wrk's batched request buffers.
      std::string batch;
      int batched = 0;
      while (c.in_flight + batched < config_.pipeline) {
        batch += request;
        ++batched;
      }
      std::int64_t n = c.sock->Send(std::span(
          reinterpret_cast<const std::uint8_t*>(batch.data()), batch.size()));
      if (n == static_cast<std::int64_t>(batch.size())) {
        c.in_flight += batched;
      }
    }
    for (;;) {
      std::int64_t n = c.sock->Recv(buf);
      if (n <= 0) {
        break;
      }
      c.rx.append(reinterpret_cast<char*>(buf), static_cast<std::size_t>(n));
    }
    std::size_t got = ConsumeHttpResponses(&c.rx);
    c.in_flight -= static_cast<int>(got);
    responses_ += got;
    done += got;
  }
  return done;
}

}  // namespace apps
