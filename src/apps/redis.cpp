#include "apps/redis.h"

#include <charconv>
#include <cstring>

namespace apps {

// ---- ValueStore -------------------------------------------------------------------

bool ValueStore::Set(std::string_view key, std::string_view value) {
  char* data = static_cast<char*>(alloc_->Malloc(value.size() == 0 ? 1 : value.size()));
  if (data == nullptr) {
    return false;
  }
  std::memcpy(data, value.data(), value.size());
  auto it = map_.find(key);
  if (it != map_.end()) {
    alloc_->Free(it->second.data);
    it->second = Slot{data, value.size()};
  } else {
    // The only key materialization: first insert of a new key.
    map_.emplace(std::string(key), Slot{data, value.size()});
  }
  return true;
}

std::optional<std::string_view> ValueStore::Get(std::string_view key) const {
  auto it = map_.find(key);
  if (it == map_.end()) {
    return std::nullopt;
  }
  return std::string_view(it->second.data, it->second.len);
}

bool ValueStore::Del(std::string_view key) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    return false;
  }
  alloc_->Free(it->second.data);
  map_.erase(it);
  return true;
}

std::int64_t ValueStore::Incr(std::string_view key, bool* ok) {
  *ok = true;
  std::int64_t v = 0;
  auto cur = Get(key);
  if (cur.has_value()) {
    std::from_chars(cur->data(), cur->data() + cur->size(), v);
  }
  ++v;
  char digits[24];
  auto [ptr, ec] = std::to_chars(digits, digits + sizeof(digits), v);
  (void)ec;
  if (!Set(key, std::string_view(digits, static_cast<std::size_t>(ptr - digits)))) {
    *ok = false;
  }
  return v;
}

void ValueStore::Clear() {
  for (auto& [key, slot] : map_) {
    alloc_->Free(slot.data);
  }
  map_.clear();
}

void ValueStore::CaptureKeys(std::vector<std::string>* keys) const {
  keys->reserve(keys->size() + map_.size());
  for (const auto& [key, slot] : map_) {
    keys->push_back(key);
  }
}

// ---- RedisServer ------------------------------------------------------------------

RedisServer::RedisServer(posix::PosixApi* api, ukalloc::Allocator* alloc,
                         std::uint16_t port)
    : api_(api), port_(port), loop_(api), active_loop_(&loop_),
      server_(api, &loop_, MakeHandler()), store_(alloc) {}

RedisServer::RedisServer(posix::PosixApi* api, ukalloc::Allocator* alloc,
                         std::uint16_t port, EventLoop* loop)
    : api_(api), port_(port), loop_(api), active_loop_(loop),
      server_(api, loop, MakeHandler()), store_(alloc) {}

StreamServer::Handler RedisServer::MakeHandler() {
  StreamServer::Handler h;
  h.on_open = [](StreamServer::Conn& c) {
    c.user = std::make_shared<RespCommandParser>();
  };
  // Zero-allocation request path: the parser yields string_view argv over
  // its buffer, replies are encoded straight into the out string.
  h.on_data = [this](StreamServer::Conn& c, std::string_view data) {
    auto* parser = static_cast<RespCommandParser*>(c.user.get());
    parser->Feed(data);
    while (const auto* argv = parser->NextView()) {
      ExecuteInto(*argv, c.out);
      // Balancer health probes (StreamServer::kProbePreamble connections)
      // answer like any client but are tallied separately so scenario
      // assertions on commands_processed() see only real traffic.
      ++(c.probe ? probe_commands_ : commands_);
    }
  };
  return h;
}

bool RedisServer::Start() { return server_.Listen(port_); }

void RedisServer::AttachPersist(Persist* persist) {
  persist_ = persist;
  // ukredis is single-sharded: the whole store is persist shard 0.
  persist_->SetSource(Persist::Source{
      .capture = [this](std::uint16_t, std::vector<std::string>* keys) {
        store_.CaptureKeys(keys);
      },
      .lookup = [this](std::uint16_t, std::string_view key) {
        return store_.Get(key);
      },
  });
  // The batching point: per-command appends stay in memory, the turn hook
  // does the one segment write (+ fsync per policy) and advances any
  // background save by its per-turn chunk budget.
  active_loop_->AddTurnEndHook([persist] { persist->OnTurnEnd(); });
}

Persist::RecoverStats RedisServer::RecoverFromPersist() {
  if (persist_ == nullptr) {
    return {};
  }
  return persist_->Recover(Persist::Applier{
      .set = [this](std::uint16_t, std::string_view key, std::string_view value) {
        store_.Set(key, value);
      },
      .del = [this](std::uint16_t, std::string_view key) { store_.Del(key); },
      .clear = [this](std::uint16_t) { store_.Clear(); },
  });
}

void RedisServer::ExecuteInto(std::span<const std::string_view> argv,
                              std::string& out) {
  const std::string_view cmd = argv[0];
  auto eq = [](std::string_view a, const char* b) {
    if (a.size() != std::strlen(b)) {
      return false;
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
      if ((a[i] | 0x20) != (b[i] | 0x20)) {
        return false;
      }
    }
    return true;
  };
  if (eq(cmd, "ping")) {
    RespPongInto(out);
    return;
  }
  if (eq(cmd, "set") && argv.size() >= 3) {
    if (persist_ != nullptr) {
      persist_->PreMutate(0, argv[1]);
    }
    if (store_.Set(argv[1], argv[2])) {
      if (persist_ != nullptr) {
        persist_->AppendSet(0, argv[1], argv[2]);
      }
      RespOkInto(out);
    } else {
      RespErrorInto(out, "out of memory");
    }
    return;
  }
  if (eq(cmd, "get") && argv.size() >= 2) {
    auto v = store_.Get(argv[1]);
    if (v.has_value()) {
      RespBulkInto(out, *v);
    } else {
      RespNilInto(out);
    }
    return;
  }
  if (eq(cmd, "del") && argv.size() >= 2) {
    std::int64_t n = 0;
    for (std::size_t i = 1; i < argv.size(); ++i) {
      if (persist_ != nullptr) {
        persist_->PreMutate(0, argv[i]);
      }
      if (store_.Del(argv[i])) {
        ++n;
        if (persist_ != nullptr) {
          persist_->AppendDel(0, argv[i]);
        }
      }
    }
    RespIntegerInto(out, n);
    return;
  }
  if (eq(cmd, "exists") && argv.size() >= 2) {
    RespIntegerInto(out, store_.Get(argv[1]).has_value() ? 1 : 0);
    return;
  }
  if (eq(cmd, "incr") && argv.size() >= 2) {
    if (persist_ != nullptr) {
      persist_->PreMutate(0, argv[1]);
    }
    bool ok = true;
    std::int64_t v = store_.Incr(argv[1], &ok);
    if (ok) {
      if (persist_ != nullptr) {
        // Canonicalized AOF: INCR is logged as its post-image SET, so replay
        // needs no command semantics beyond SET/DEL/FLUSHALL.
        char digits[24];
        auto [ptr, ec] = std::to_chars(digits, digits + sizeof(digits), v);
        (void)ec;
        persist_->AppendSet(
            0, argv[1], std::string_view(digits, static_cast<std::size_t>(ptr - digits)));
      }
      RespIntegerInto(out, v);
    } else {
      RespErrorInto(out, "out of memory");
    }
    return;
  }
  if (eq(cmd, "append") && argv.size() >= 3) {
    if (persist_ != nullptr) {
      persist_->PreMutate(0, argv[1]);
    }
    std::string merged;
    auto cur = store_.Get(argv[1]);
    if (cur.has_value()) {
      merged = std::string(*cur);
    }
    merged += argv[2];
    store_.Set(argv[1], merged);
    if (persist_ != nullptr) {
      persist_->AppendSet(0, argv[1], merged);  // post-image, like INCR
    }
    RespIntegerInto(out, static_cast<std::int64_t>(merged.size()));
    return;
  }
  if (eq(cmd, "strlen") && argv.size() >= 2) {
    auto v = store_.Get(argv[1]);
    RespIntegerInto(out, v.has_value() ? static_cast<std::int64_t>(v->size()) : 0);
    return;
  }
  if (eq(cmd, "flushall")) {
    if (persist_ != nullptr) {
      // A store-wide clear invalidates a background save's captured key list
      // wholesale; aborting is cheaper (and simpler) than pre-imaging every
      // key. The clear itself is AOF-logged so replay reproduces it.
      persist_->AbortSave();
      persist_->AppendClear(0);
    }
    store_.Clear();
    RespOkInto(out);
    return;
  }
  if (eq(cmd, "dbsize")) {
    RespIntegerInto(out, static_cast<std::int64_t>(store_.size()));
    return;
  }
  if (eq(cmd, "save")) {
    if (persist_ != nullptr && persist_->SaveNow()) {
      RespOkInto(out);
    } else {
      RespErrorInto(out, persist_ == nullptr ? "persistence not configured"
                                             : "save failed");
    }
    return;
  }
  if (eq(cmd, "bgsave")) {
    if (persist_ == nullptr) {
      RespErrorInto(out, "persistence not configured");
    } else if (persist_->save_active()) {
      RespErrorInto(out, "background save already in progress");
    } else if (persist_->StartBackgroundSave()) {
      RespSimpleStringInto(out, "Background saving started");
    } else {
      RespErrorInto(out, "bgsave failed");
    }
    return;
  }
  if (eq(cmd, "waitaof")) {
    // WAIT-style fsync barrier: everything appended so far is written through
    // and flushed to the device before the reply, regardless of policy.
    if (persist_ != nullptr && persist_->FsyncNow()) {
      RespIntegerInto(out, 1);
    } else {
      RespIntegerInto(out, 0);
    }
    return;
  }
  RespErrorInto(out, "unknown command");
}

std::size_t RedisServer::PumpOnce() { return PumpWait(0); }

std::size_t RedisServer::PumpWait(std::uint64_t timeout_cycles) {
  const std::uint64_t before = commands_;
  active_loop_->PumpOnce(timeout_cycles);
  return static_cast<std::size_t>(commands_ - before);
}

// ---- RedisBenchClient -------------------------------------------------------------

RedisBenchClient::RedisBenchClient(uknet::NetStack* stack, uknet::Ip4Addr server,
                                   std::uint16_t port, Config config)
    : stack_(stack), server_(server), port_(port), config_(config) {
  value_.assign(static_cast<std::size_t>(config_.value_bytes), 'x');
}

bool RedisBenchClient::ConnectAll(const std::function<void()>& pump) {
  for (int i = 0; i < config_.connections; ++i) {
    auto sock = stack_->TcpConnect(server_, port_);
    if (sock == nullptr) {
      return false;
    }
    conns_.push_back(ClientConn{std::move(sock), {}, 0});
  }
  for (int rounds = 0; rounds < 50000; ++rounds) {
    bool all = true;
    for (ClientConn& c : conns_) {
      all = all && c.sock->connected();
    }
    if (all) {
      return true;
    }
    pump();
  }
  return false;
}

std::size_t RedisBenchClient::PumpOnce() {
  std::size_t done = 0;
  for (ClientConn& c : conns_) {
    if (c.sock->failed()) {
      continue;
    }
    // Keep the pipeline full: coalesce the whole batch into one send, the
    // way redis-benchmark writes its pipeline in a single write(). The batch
    // and key buffers are reused across pumps; commands are encoded straight
    // into the batch buffer.
    if (c.in_flight < config_.pipeline) {
      batch_.clear();
      int batched = 0;
      while (c.in_flight + batched < config_.pipeline) {
        key_.assign("key:");
        char digits[24];
        auto [ptr, ec] = std::to_chars(
            digits, digits + sizeof(digits),
            seq_++ % static_cast<std::uint64_t>(config_.keyspace));
        (void)ec;
        key_.append(digits, static_cast<std::size_t>(ptr - digits));
        if (config_.use_set) {
          RespCommandInto(batch_, {"SET", key_, value_});
        } else {
          RespCommandInto(batch_, {"GET", key_});
        }
        ++batched;
      }
      std::int64_t n = c.sock->Send(std::span(
          reinterpret_cast<const std::uint8_t*>(batch_.data()), batch_.size()));
      if (n == static_cast<std::int64_t>(batch_.size())) {
        c.in_flight += batched;
      }
    }
    // Reap replies.
    std::uint8_t buf[8192];
    for (;;) {
      std::int64_t n = c.sock->Recv(buf);
      if (n <= 0) {
        break;
      }
      c.rx.append(reinterpret_cast<char*>(buf), static_cast<std::size_t>(n));
    }
    std::size_t got = ConsumeReplies(&c.rx);
    c.in_flight -= static_cast<int>(got);
    replies_ += got;
    done += got;
  }
  return done;
}

}  // namespace apps
