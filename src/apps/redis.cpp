#include "apps/redis.h"

#include <charconv>
#include <cstring>

namespace apps {

// ---- ValueStore -------------------------------------------------------------------

bool ValueStore::Set(const std::string& key, std::string_view value) {
  char* data = static_cast<char*>(alloc_->Malloc(value.size() == 0 ? 1 : value.size()));
  if (data == nullptr) {
    return false;
  }
  std::memcpy(data, value.data(), value.size());
  auto it = map_.find(key);
  if (it != map_.end()) {
    alloc_->Free(it->second.data);
    it->second = Slot{data, value.size()};
  } else {
    map_.emplace(key, Slot{data, value.size()});
  }
  return true;
}

std::optional<std::string_view> ValueStore::Get(const std::string& key) const {
  auto it = map_.find(key);
  if (it == map_.end()) {
    return std::nullopt;
  }
  return std::string_view(it->second.data, it->second.len);
}

bool ValueStore::Del(const std::string& key) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    return false;
  }
  alloc_->Free(it->second.data);
  map_.erase(it);
  return true;
}

std::int64_t ValueStore::Incr(const std::string& key, bool* ok) {
  *ok = true;
  std::int64_t v = 0;
  auto cur = Get(key);
  if (cur.has_value()) {
    v = std::strtoll(std::string(*cur).c_str(), nullptr, 10);
  }
  ++v;
  std::string s = std::to_string(v);
  if (!Set(key, s)) {
    *ok = false;
  }
  return v;
}

void ValueStore::Clear() {
  for (auto& [key, slot] : map_) {
    alloc_->Free(slot.data);
  }
  map_.clear();
}

// ---- RedisServer ------------------------------------------------------------------

RedisServer::RedisServer(posix::PosixApi* api, ukalloc::Allocator* alloc,
                         std::uint16_t port)
    : api_(api), port_(port), store_(alloc) {}

bool RedisServer::Start() {
  listen_fd_ = api_->Socket(posix::SockType::kStream);
  if (listen_fd_ < 0) {
    return false;
  }
  if (api_->Bind(listen_fd_, port_) != 0) {
    return false;
  }
  return api_->Listen(listen_fd_) == 0;
}

void RedisServer::ExecuteInto(const std::vector<std::string>& argv, std::string& out) {
  const std::string& cmd = argv[0];
  auto eq = [](const std::string& a, const char* b) {
    if (a.size() != std::strlen(b)) {
      return false;
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
      if ((a[i] | 0x20) != (b[i] | 0x20)) {
        return false;
      }
    }
    return true;
  };
  if (eq(cmd, "ping")) {
    RespPongInto(out);
    return;
  }
  if (eq(cmd, "set") && argv.size() >= 3) {
    if (store_.Set(argv[1], argv[2])) {
      RespOkInto(out);
    } else {
      RespErrorInto(out, "out of memory");
    }
    return;
  }
  if (eq(cmd, "get") && argv.size() >= 2) {
    auto v = store_.Get(argv[1]);
    if (v.has_value()) {
      RespBulkInto(out, *v);
    } else {
      RespNilInto(out);
    }
    return;
  }
  if (eq(cmd, "del") && argv.size() >= 2) {
    std::int64_t n = 0;
    for (std::size_t i = 1; i < argv.size(); ++i) {
      n += store_.Del(argv[i]) ? 1 : 0;
    }
    RespIntegerInto(out, n);
    return;
  }
  if (eq(cmd, "exists") && argv.size() >= 2) {
    RespIntegerInto(out, store_.Get(argv[1]).has_value() ? 1 : 0);
    return;
  }
  if (eq(cmd, "incr") && argv.size() >= 2) {
    bool ok = true;
    std::int64_t v = store_.Incr(argv[1], &ok);
    if (ok) {
      RespIntegerInto(out, v);
    } else {
      RespErrorInto(out, "out of memory");
    }
    return;
  }
  if (eq(cmd, "append") && argv.size() >= 3) {
    std::string merged;
    auto cur = store_.Get(argv[1]);
    if (cur.has_value()) {
      merged = std::string(*cur);
    }
    merged += argv[2];
    store_.Set(argv[1], merged);
    RespIntegerInto(out, static_cast<std::int64_t>(merged.size()));
    return;
  }
  if (eq(cmd, "strlen") && argv.size() >= 2) {
    auto v = store_.Get(argv[1]);
    RespIntegerInto(out, v.has_value() ? static_cast<std::int64_t>(v->size()) : 0);
    return;
  }
  if (eq(cmd, "flushall")) {
    store_.Clear();
    RespOkInto(out);
    return;
  }
  if (eq(cmd, "dbsize")) {
    RespIntegerInto(out, static_cast<std::int64_t>(store_.size()));
    return;
  }
  RespErrorInto(out, "unknown command");
}

void RedisServer::FlushOut(Conn& conn) {
  while (!conn.out.empty()) {
    std::int64_t n = api_->Send(
        conn.fd, std::span(reinterpret_cast<const std::uint8_t*>(conn.out.data()),
                           conn.out.size()));
    if (n <= 0) {
      break;  // send buffer full; retry next pump
    }
    conn.out.erase(0, static_cast<std::size_t>(n));
  }
}

std::size_t RedisServer::PumpOnce() {
  // Accept new connections.
  for (;;) {
    int fd = api_->Accept(listen_fd_);
    if (fd < 0) {
      break;
    }
    conns_.push_back(Conn{fd, {}, {}});
  }
  std::size_t executed = 0;
  std::uint8_t buf[8192];
  for (auto it = conns_.begin(); it != conns_.end();) {
    Conn& conn = *it;
    bool closed = false;
    for (;;) {
      std::int64_t n = api_->Recv(conn.fd, buf);
      if (n > 0) {
        conn.parser.Feed(std::string_view(reinterpret_cast<char*>(buf),
                                          static_cast<std::size_t>(n)));
        continue;
      }
      if (n == 0) {
        closed = true;  // peer finished
      }
      break;
    }
    while (auto argv = conn.parser.Next()) {
      ExecuteInto(*argv, conn.out);
      ++commands_;
      ++executed;
    }
    FlushOut(conn);
    if (closed && conn.out.empty()) {
      api_->Close(conn.fd);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
  return executed;
}

// ---- RedisBenchClient -------------------------------------------------------------

RedisBenchClient::RedisBenchClient(uknet::NetStack* stack, uknet::Ip4Addr server,
                                   std::uint16_t port, Config config)
    : stack_(stack), server_(server), port_(port), config_(config) {
  value_.assign(static_cast<std::size_t>(config_.value_bytes), 'x');
}

bool RedisBenchClient::ConnectAll(const std::function<void()>& pump) {
  for (int i = 0; i < config_.connections; ++i) {
    auto sock = stack_->TcpConnect(server_, port_);
    if (sock == nullptr) {
      return false;
    }
    conns_.push_back(ClientConn{std::move(sock), {}, 0});
  }
  for (int rounds = 0; rounds < 50000; ++rounds) {
    bool all = true;
    for (ClientConn& c : conns_) {
      all = all && c.sock->connected();
    }
    if (all) {
      return true;
    }
    pump();
  }
  return false;
}

std::size_t RedisBenchClient::PumpOnce() {
  std::size_t done = 0;
  for (ClientConn& c : conns_) {
    if (c.sock->failed()) {
      continue;
    }
    // Keep the pipeline full: coalesce the whole batch into one send, the
    // way redis-benchmark writes its pipeline in a single write(). The batch
    // and key buffers are reused across pumps; commands are encoded straight
    // into the batch buffer.
    if (c.in_flight < config_.pipeline) {
      batch_.clear();
      int batched = 0;
      while (c.in_flight + batched < config_.pipeline) {
        key_.assign("key:");
        char digits[24];
        auto [ptr, ec] = std::to_chars(
            digits, digits + sizeof(digits),
            seq_++ % static_cast<std::uint64_t>(config_.keyspace));
        (void)ec;
        key_.append(digits, static_cast<std::size_t>(ptr - digits));
        if (config_.use_set) {
          RespCommandInto(batch_, {"SET", key_, value_});
        } else {
          RespCommandInto(batch_, {"GET", key_});
        }
        ++batched;
      }
      std::int64_t n = c.sock->Send(std::span(
          reinterpret_cast<const std::uint8_t*>(batch_.data()), batch_.size()));
      if (n == static_cast<std::int64_t>(batch_.size())) {
        c.in_flight += batched;
      }
    }
    // Reap replies.
    std::uint8_t buf[8192];
    for (;;) {
      std::int64_t n = c.sock->Recv(buf);
      if (n <= 0) {
        break;
      }
      c.rx.append(reinterpret_cast<char*>(buf), static_cast<std::size_t>(n));
    }
    std::size_t got = ConsumeReplies(&c.rx);
    c.in_flight -= static_cast<int>(got);
    replies_ += got;
    done += got;
  }
  return done;
}

}  // namespace apps
