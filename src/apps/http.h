// apps/http.h - ukhttp: nginx-stand-in static HTTP/1.1 server (Figs 13-15,
// 22) and a wrk work-alike client.
//
// Two content backends, matching the paper's specialization ladder:
//  * VFS mode (scenario 3): open()+read() through vfscore per request;
//  * SHFS mode (§6.3): direct hash lookup, no VFS, no per-request allocation.
#ifndef APPS_HTTP_H_
#define APPS_HTTP_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/event_loop.h"
#include "apps/stream_server.h"
#include "posix/api.h"
#include "shfs/shfs.h"
#include "uknet/stack.h"
#include "vfscore/vfs.h"

namespace apps {

struct HttpRequest {
  std::string method;
  std::string path;
  bool keep_alive = true;
  bool complete = false;
};

// Parses one request head out of |buf| (consumes it); nullopt if incomplete.
std::optional<HttpRequest> ParseHttpRequest(std::string* buf);

class HttpServer {
 public:
  enum class ContentMode { kVfs, kShfs };

  HttpServer(posix::PosixApi* api, std::uint16_t port, vfscore::Vfs* vfs);
  // SHFS-specialized variant (no VFS in the path).
  HttpServer(posix::PosixApi* api, std::uint16_t port, const shfs::Shfs* volume);

  bool Start();
  // One non-blocking event-loop turn. Returns responses sent.
  std::size_t PumpOnce();
  // One blocking turn: the whole server (listener + every connection) sleeps
  // in a single EpollWait until something is ready.
  std::size_t PumpWait(std::uint64_t timeout_cycles = EventLoop::kNoTimeout);

  std::uint64_t requests_served() const { return requests_; }
  std::size_t connections() const { return server_.connections(); }
  EventLoop& loop() { return loop_; }

 private:
  // The connection machinery is the shared StreamServer scaffold; this class
  // is only the HTTP protocol (request framing in Conn::in, BuildResponse).
  std::string BuildResponse(const HttpRequest& req);
  StreamServer::Handler MakeHandler();

  posix::PosixApi* api_;
  std::uint16_t port_;
  ContentMode mode_;
  vfscore::Vfs* vfs_ = nullptr;
  const shfs::Shfs* volume_ = nullptr;
  EventLoop loop_;
  StreamServer server_;
  std::uint64_t requests_ = 0;
};

// wrk work-alike: persistent connections hammering one static path.
class WrkClient {
 public:
  struct Config {
    int connections = 30;
    std::string path = "/index.html";
    int pipeline = 8;
  };

  WrkClient(uknet::NetStack* stack, uknet::Ip4Addr server, std::uint16_t port,
            Config config);

  bool ConnectAll(const std::function<void()>& pump);
  std::size_t PumpOnce();
  std::uint64_t responses() const { return responses_; }

 private:
  struct ClientConn {
    std::shared_ptr<uknet::TcpSocket> sock;
    std::string rx;
    int in_flight = 0;
  };

  uknet::NetStack* stack_;
  uknet::Ip4Addr server_;
  std::uint16_t port_;
  Config config_;
  std::vector<ClientConn> conns_;
  std::uint64_t responses_ = 0;
};

}  // namespace apps

#endif  // APPS_HTTP_H_
