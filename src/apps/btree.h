// apps/btree.h - B+tree keyed by int64, the storage engine under ukdb.
//
// Nodes and row payloads come from the unikernel's allocator, so the SQLite
// experiments (Figs 16, 17) exercise real allocator behaviour: inserts split
// nodes (allocations), deletes free payloads, and the allocator's speed and
// locality show up directly in query timings, as in the paper.
#ifndef APPS_BTREE_H_
#define APPS_BTREE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <span>

#include "ukalloc/allocator.h"

namespace apps {

class BTree {
 public:
  static constexpr int kOrder = 32;  // max keys per node

  struct Payload {
    const std::byte* data = nullptr;
    std::size_t len = 0;
  };

  explicit BTree(ukalloc::Allocator* alloc);
  ~BTree();

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  // Inserts (copies |value| into allocator memory). Overwrites existing keys.
  // False on allocator exhaustion.
  bool Insert(std::int64_t key, std::span<const std::byte> value);
  std::optional<Payload> Find(std::int64_t key) const;
  bool Erase(std::int64_t key);

  // In-order scan over [lo, hi]; callback returns false to stop early.
  void Scan(std::int64_t lo, std::int64_t hi,
            const std::function<bool(std::int64_t, Payload)>& fn) const;

  std::size_t size() const { return size_; }
  std::size_t node_count() const { return nodes_; }
  int height() const { return height_; }

  // Test hook: checks ordering + occupancy invariants on every node.
  bool CheckInvariants() const;

 private:
  struct Node;
  struct Leaf;
  struct Inner;

  Node* NewLeaf();
  Node* NewInner();
  void FreeNode(Node* n);
  void FreeValue(std::byte* v);
  void DestroySubtree(Node* n);

  // Insert into subtree; returns a (separator, new right sibling) when the
  // child split, to be installed in the parent.
  struct SplitResult {
    bool split = false;
    bool ok = true;
    std::int64_t sep = 0;
    Node* right = nullptr;
  };
  SplitResult InsertRec(Node* n, std::int64_t key, std::span<const std::byte> value);

  ukalloc::Allocator* alloc_;
  Node* root_ = nullptr;
  std::size_t size_ = 0;
  std::size_t nodes_ = 0;
  int height_ = 1;
};

}  // namespace apps

#endif  // APPS_BTREE_H_
