#include "apps/sql.h"

#include <cctype>
#include <cstring>

namespace apps {

// ---- tokenizer --------------------------------------------------------------------

class Tokenizer {
 public:
  explicit Tokenizer(std::string_view sql) : sql_(sql) {}

  // Next token: identifier/keyword (uppercased), number, quoted string, or a
  // single punctuation char. Empty string at end.
  std::string Next();
  std::string Peek();
  bool Expect(std::string_view token);  // consumes iff it matches (ci)
  bool AtEnd();

  // Last token's kind.
  bool last_was_string() const { return last_was_string_; }

 private:
  void SkipSpace();
  std::string_view sql_;
  std::size_t pos_ = 0;
  bool last_was_string_ = false;
};

void Tokenizer::SkipSpace() {
  while (pos_ < sql_.size() && std::isspace(static_cast<unsigned char>(sql_[pos_]))) {
    ++pos_;
  }
}

bool Tokenizer::AtEnd() {
  SkipSpace();
  return pos_ >= sql_.size() || sql_[pos_] == ';';
}

std::string Tokenizer::Peek() {
  std::size_t saved = pos_;
  bool saved_str = last_was_string_;
  std::string tok = Next();
  pos_ = saved;
  last_was_string_ = saved_str;
  return tok;
}

std::string Tokenizer::Next() {
  SkipSpace();
  last_was_string_ = false;
  if (pos_ >= sql_.size()) {
    return "";
  }
  char c = sql_[pos_];
  if (c == '\'') {
    // Quoted string with '' escaping.
    ++pos_;
    std::string out;
    while (pos_ < sql_.size()) {
      if (sql_[pos_] == '\'') {
        if (pos_ + 1 < sql_.size() && sql_[pos_ + 1] == '\'') {
          out += '\'';
          pos_ += 2;
          continue;
        }
        ++pos_;
        break;
      }
      out += sql_[pos_++];
    }
    last_was_string_ = true;
    return out;
  }
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    std::string out;
    while (pos_ < sql_.size() &&
           (std::isalnum(static_cast<unsigned char>(sql_[pos_])) || sql_[pos_] == '_')) {
      out += static_cast<char>(std::toupper(static_cast<unsigned char>(sql_[pos_])));
      ++pos_;
    }
    return out;
  }
  if (std::isdigit(static_cast<unsigned char>(c)) ||
      (c == '-' && pos_ + 1 < sql_.size() &&
       std::isdigit(static_cast<unsigned char>(sql_[pos_ + 1])))) {
    std::string out;
    out += sql_[pos_++];
    while (pos_ < sql_.size() && std::isdigit(static_cast<unsigned char>(sql_[pos_]))) {
      out += sql_[pos_++];
    }
    return out;
  }
  // Two-char operators.
  if ((c == '<' || c == '>' || c == '!') && pos_ + 1 < sql_.size() &&
      sql_[pos_ + 1] == '=') {
    pos_ += 2;
    return std::string{c, '='};
  }
  ++pos_;
  return std::string(1, c);
}

bool Tokenizer::Expect(std::string_view token) {
  std::size_t saved = pos_;
  std::string got = Next();
  if (got == token) {
    return true;
  }
  pos_ = saved;
  return false;
}

// ---- row serialization --------------------------------------------------------------

std::vector<std::byte> Database::SerializeRow(const SqlRow& row) const {
  std::vector<std::byte> out;
  auto put_u32 = [&out](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<std::byte>(v >> (8 * i)));
    }
  };
  put_u32(static_cast<std::uint32_t>(row.values.size()));
  for (const SqlValue& v : row.values) {
    if (std::holds_alternative<std::int64_t>(v)) {
      out.push_back(std::byte{0});
      std::int64_t n = std::get<std::int64_t>(v);
      for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<std::byte>(static_cast<std::uint64_t>(n) >> (8 * i)));
      }
    } else {
      out.push_back(std::byte{1});
      const std::string& s = std::get<std::string>(v);
      put_u32(static_cast<std::uint32_t>(s.size()));
      for (char c : s) {
        out.push_back(static_cast<std::byte>(c));
      }
    }
  }
  return out;
}

SqlRow Database::DeserializeRow(std::span<const std::byte> data) const {
  SqlRow row;
  std::size_t pos = 0;
  auto get_u32 = [&data, &pos]() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data[pos++]) << (8 * i);
    }
    return v;
  };
  std::uint32_t n = get_u32();
  for (std::uint32_t i = 0; i < n && pos < data.size(); ++i) {
    std::byte tag = data[pos++];
    if (tag == std::byte{0}) {
      std::uint64_t v = 0;
      for (int b = 0; b < 8; ++b) {
        v |= static_cast<std::uint64_t>(data[pos++]) << (8 * b);
      }
      row.values.emplace_back(static_cast<std::int64_t>(v));
    } else {
      std::uint32_t len = get_u32();
      std::string s;
      s.reserve(len);
      for (std::uint32_t b = 0; b < len; ++b) {
        s += static_cast<char>(data[pos++]);
      }
      row.values.emplace_back(std::move(s));
    }
  }
  return row;
}

// ---- statements -----------------------------------------------------------------------

Database::~Database() {
  for (void* p : scratch_) {
    alloc_->Free(p);
  }
}

void Database::StatementScratch() {
  // Rotate a ring of size-varied short-lived buffers (statement compilation,
  // cursor state, sort scratch). Frees land out of allocation order, which
  // fragments naive free lists as the run gets longer.
  std::size_t slot = stmt_counter_ % kScratchRing;
  if (scratch_[slot] != nullptr) {
    alloc_->Free(scratch_[slot]);
  }
  std::size_t size = 64 + (stmt_counter_ * 37) % 1024;
  scratch_[slot] = alloc_->Malloc(size);
  ++stmt_counter_;
}

SqlResult Database::Execute(std::string_view sql) {
  StatementScratch();
  Tokenizer tok(sql);
  std::string verb = tok.Next();
  if (verb == "CREATE") {
    return Create(tok);
  }
  if (verb == "INSERT") {
    return Insert(tok);
  }
  if (verb == "SELECT") {
    return Select(tok);
  }
  if (verb == "DELETE") {
    return Delete(tok);
  }
  if (verb == "BEGIN" || verb == "COMMIT" || verb == "END") {
    return SqlResult{.ok = true};  // autocommit engine: transactions are no-ops
  }
  return SqlResult{.ok = false, .error = "unsupported statement: " + verb};
}

SqlResult Database::Create(Tokenizer& tok) {
  if (!tok.Expect("TABLE")) {
    return {.ok = false, .error = "expected TABLE"};
  }
  std::string name = tok.Next();
  if (name.empty() || tables_.contains(name)) {
    return {.ok = false, .error = "bad or duplicate table name"};
  }
  if (!tok.Expect("(")) {
    return {.ok = false, .error = "expected ("};
  }
  Table table;
  for (;;) {
    std::string col = tok.Next();
    if (col.empty()) {
      return {.ok = false, .error = "unterminated column list"};
    }
    std::string type = tok.Next();
    Column column;
    column.name = col;
    column.is_text = type == "TEXT" || type == "VARCHAR" || type == "CHAR";
    // Swallow type decorations like (255) and PRIMARY KEY.
    while (true) {
      std::string p = tok.Peek();
      if (p == "," || p == ")" || p.empty()) {
        break;
      }
      tok.Next();
    }
    table.columns.push_back(std::move(column));
    if (tok.Expect(")")) {
      break;
    }
    if (!tok.Expect(",")) {
      return {.ok = false, .error = "expected , or )"};
    }
  }
  table.index = std::make_unique<BTree>(alloc_);
  tables_.emplace(name, std::move(table));
  return {.ok = true};
}

SqlResult Database::Insert(Tokenizer& tok) {
  if (!tok.Expect("INTO")) {
    return {.ok = false, .error = "expected INTO"};
  }
  std::string name = tok.Next();
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return {.ok = false, .error = "no such table: " + name};
  }
  Table& table = it->second;
  if (!tok.Expect("VALUES") || !tok.Expect("(")) {
    return {.ok = false, .error = "expected VALUES ("};
  }
  SqlRow row;
  for (;;) {
    std::string v = tok.Next();
    if (tok.last_was_string()) {
      row.values.emplace_back(v);
    } else if (!v.empty() && (std::isdigit(static_cast<unsigned char>(v[0])) ||
                              v[0] == '-')) {
      row.values.emplace_back(static_cast<std::int64_t>(std::strtoll(v.c_str(),
                                                                     nullptr, 10)));
    } else if (v == "NULL") {
      row.values.emplace_back(std::int64_t{0});
    } else {
      return {.ok = false, .error = "bad literal: " + v};
    }
    if (tok.Expect(")")) {
      break;
    }
    if (!tok.Expect(",")) {
      return {.ok = false, .error = "expected , or )"};
    }
  }
  if (row.values.size() != table.columns.size()) {
    return {.ok = false, .error = "column count mismatch"};
  }
  // Key = first integer column value, or an auto key.
  std::int64_t key;
  if (!table.columns.empty() && !table.columns[0].is_text &&
      std::holds_alternative<std::int64_t>(row.values[0])) {
    key = std::get<std::int64_t>(row.values[0]);
  } else {
    key = table.auto_key++;
  }
  std::vector<std::byte> payload = SerializeRow(row);
  if (!table.index->Insert(key, payload)) {
    return {.ok = false, .error = "database full"};
  }
  return {.ok = true, .rows_affected = 1};
}

namespace {

struct Where {
  bool present = false;
  std::string op;  // "=", "<", ">", "<=", ">="
  std::int64_t value = 0;
};

bool ParseWhere(Tokenizer& tok, Where* where, std::string* error) {
  if (!tok.Expect("WHERE")) {
    return true;  // no WHERE clause
  }
  where->present = true;
  tok.Next();  // column name (always the pk in this subset)
  where->op = tok.Next();
  std::string v = tok.Next();
  if (where->op.empty() || v.empty()) {
    *error = "malformed WHERE";
    return false;
  }
  where->value = std::strtoll(v.c_str(), nullptr, 10);
  return true;
}

}  // namespace

SqlResult Database::Select(Tokenizer& tok) {
  // Column list: '*' or names (projection applied by index lookup).
  std::vector<std::string> cols;
  for (;;) {
    std::string c = tok.Next();
    if (c == "*") {
      // all columns
    } else {
      cols.push_back(c);
    }
    if (!tok.Expect(",")) {
      break;
    }
  }
  if (!tok.Expect("FROM")) {
    return {.ok = false, .error = "expected FROM"};
  }
  std::string name = tok.Next();
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return {.ok = false, .error = "no such table: " + name};
  }
  Table& table = it->second;
  Where where;
  std::string error;
  if (!ParseWhere(tok, &where, &error)) {
    return {.ok = false, .error = error};
  }

  SqlResult result;
  result.ok = true;
  auto emit = [&](std::int64_t, BTree::Payload payload) {
    SqlRow row = DeserializeRow(std::span(payload.data, payload.len));
    if (!cols.empty()) {
      SqlRow projected;
      for (const std::string& want : cols) {
        for (std::size_t ci = 0; ci < table.columns.size(); ++ci) {
          if (table.columns[ci].name == want && ci < row.values.size()) {
            projected.values.push_back(row.values[ci]);
          }
        }
      }
      result.rows.push_back(std::move(projected));
    } else {
      result.rows.push_back(std::move(row));
    }
    return true;
  };

  if (where.present && where.op == "=") {
    auto payload = table.index->Find(where.value);
    if (payload.has_value()) {
      emit(where.value, *payload);
    }
    return result;
  }
  std::int64_t lo = INT64_MIN;
  std::int64_t hi = INT64_MAX;
  if (where.present) {
    if (where.op == "<") {
      hi = where.value - 1;
    } else if (where.op == "<=") {
      hi = where.value;
    } else if (where.op == ">") {
      lo = where.value + 1;
    } else if (where.op == ">=") {
      lo = where.value;
    }
  }
  table.index->Scan(lo, hi, emit);
  return result;
}

SqlResult Database::Delete(Tokenizer& tok) {
  if (!tok.Expect("FROM")) {
    return {.ok = false, .error = "expected FROM"};
  }
  std::string name = tok.Next();
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return {.ok = false, .error = "no such table: " + name};
  }
  Where where;
  std::string error;
  if (!ParseWhere(tok, &where, &error)) {
    return {.ok = false, .error = error};
  }
  SqlResult result;
  result.ok = true;
  if (where.present && where.op == "=") {
    result.rows_affected = it->second.index->Erase(where.value) ? 1 : 0;
    return result;
  }
  // Range delete: collect keys then erase.
  std::vector<std::int64_t> keys;
  std::int64_t lo = INT64_MIN;
  std::int64_t hi = INT64_MAX;
  if (where.present) {
    if (where.op == "<") {
      hi = where.value - 1;
    } else if (where.op == "<=") {
      hi = where.value;
    } else if (where.op == ">") {
      lo = where.value + 1;
    } else if (where.op == ">=") {
      lo = where.value;
    }
  }
  it->second.index->Scan(lo, hi, [&keys](std::int64_t k, BTree::Payload) {
    keys.push_back(k);
    return true;
  });
  for (std::int64_t k : keys) {
    if (it->second.index->Erase(k)) {
      ++result.rows_affected;
    }
  }
  return result;
}

}  // namespace apps
