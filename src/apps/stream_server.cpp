#include "apps/stream_server.h"

namespace apps {

StreamServer::~StreamServer() {
  // Connections registered with a still-live loop are detached so a handler
  // dispatch can never reach into a destroyed server. fds stay with the
  // PosixApi owner (tests tear the whole world down together).
  for (auto& [fd, conn] : conns_) {
    loop_->Del(fd);
  }
  if (listen_fd_ >= 0) {
    loop_->Del(listen_fd_);
  }
}

bool StreamServer::Listen(std::uint16_t port) {
  listen_fd_ = api_->Socket(posix::SockType::kStream);
  if (listen_fd_ < 0 || api_->Bind(listen_fd_, port) != 0) {
    return false;
  }
  if (api_->Listen(listen_fd_) != 0) {
    return false;
  }
  return loop_->Add(listen_fd_, uknet::kEvtAcceptable,
                    [this](int, uknet::EventMask) { OnAcceptable(); });
}

void StreamServer::OnAcceptable() {
  // Drain the whole accept queue: one readiness event may cover several
  // completed handshakes (level-triggered, but why take extra turns).
  for (;;) {
    int fd = api_->Accept(listen_fd_);
    if (fd < 0) {
      break;
    }
    StreamServer* owner = this;
    if (steer_) {
      StreamServer* steered = steer_(fd);
      if (steered != nullptr) {
        owner = steered;
      }
    }
    if (!owner->Adopt(fd)) {
      continue;  // Adopt closed the fd
    }
  }
}

bool StreamServer::Adopt(int fd) {
  if (!loop_->Add(fd, uknet::kEvtReadable,
                  [this](int cfd, uknet::EventMask ev) { OnConnEvent(cfd, ev); })) {
    api_->Close(fd);  // cannot watch it: an unregistered conn would leak
    return false;
  }
  auto [it, inserted] = conns_.emplace(fd, Conn{});
  it->second.fd = fd;
  ++accepted_;
  if (handler_.on_open) {
    handler_.on_open(it->second);
  }
  return true;
}

void StreamServer::CloseConn(int fd) {
  auto it = conns_.find(fd);
  if (it != conns_.end() && handler_.on_close) {
    handler_.on_close(it->second);
  }
  loop_->Del(fd);
  api_->Close(fd);
  conns_.erase(fd);
}

void StreamServer::FlushOut(int fd, Conn& conn) {
  while (!conn.out.empty()) {
    std::int64_t n = api_->Send(
        fd, std::span(reinterpret_cast<const std::uint8_t*>(conn.out.data()),
                      conn.out.size()));
    if (n <= 0) {
      break;  // send buffer full; the kEvtWritable edge resumes the flush
    }
    conn.out.erase(0, static_cast<std::size_t>(n));
  }
  // Interest tracks the backlog: watch for writable only while bytes are
  // pending, so an idle connection reports nothing and the loop can sleep.
  const uknet::EventMask want =
      conn.out.empty() ? uknet::kEvtReadable
                       : (uknet::kEvtReadable | uknet::kEvtWritable);
  if (want != conn.interest && loop_->Mod(fd, want)) {
    conn.interest = want;
  }
}

bool StreamServer::Submit(int fd, std::string_view data) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) {
    return false;
  }
  Conn& conn = it->second;
  conn.out.append(data);
  FlushOut(fd, conn);
  if ((conn.peer_eof || conn.want_close) && conn.out.empty()) {
    CloseConn(fd);
  }
  return true;
}

void StreamServer::CloseAfterFlush(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) {
    return;
  }
  it->second.want_close = true;
  FlushOut(fd, it->second);
  if (it->second.out.empty()) {
    CloseConn(fd);
  }
}

void StreamServer::Close(int fd) {
  if (conns_.count(fd) != 0) {
    CloseConn(fd);
  }
}

void StreamServer::OnConnEvent(int fd, uknet::EventMask events) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) {
    return;
  }
  Conn& conn = it->second;
  if ((events & uknet::kEvtErr) != 0) {
    CloseConn(fd);  // reset: nothing left to flush
    return;
  }
  std::uint8_t buf[8192];
  for (;;) {
    std::int64_t n = api_->Recv(fd, buf);
    if (n > 0) {
      std::string_view data(reinterpret_cast<char*>(buf),
                            static_cast<std::size_t>(n));
      if (!conn.preamble_checked) {
        conn.preamble_checked = true;
        if (data.substr(0, kProbePreamble.size()) == kProbePreamble) {
          conn.probe = true;
          ++probe_conns_;
          data.remove_prefix(kProbePreamble.size());
        }
      }
      if (!data.empty() && handler_.on_data) {
        handler_.on_data(conn, data);
      }
      continue;
    }
    if (n == 0) {
      conn.peer_eof = true;  // orderly FIN: answer what was pipelined, then close
    }
    break;
  }
  FlushOut(fd, conn);
  if ((conn.peer_eof || conn.want_close) && conn.out.empty()) {
    CloseConn(fd);
  }
}

}  // namespace apps
