// apps/l4_balancer.h - flow-hash L4 load balancer for the fleet testbed.
//
// The paper's deployment story is many tiny specialized VMs behind a
// balancer, not one big VM. This is that front door: a TCP proxy that
// steers each client flow to one of N backend instances by the same
// symmetric Toeplitz flow hash (`ukarch::FlowHash4`) that RSS uses to pick
// queues — consistent, direction-independent, and stable across the life of
// the flow. Steering is slot-indexed (hash % N with a deterministic walk to
// the next healthy slot), so when one backend dies only the flows that
// hashed onto the dead slot move; every other backend keeps its established
// connections untouched. That invariant is what the fleet scenario tests
// assert ("zero resets on survivors") and what makes kill/respawn safe
// under load.
//
// The client side rides the shared apps::StreamServer scaffold (accept
// drain, interest-tracked flush, close-after-drain); the backend side is
// balancer-owned connect sockets on the same EventLoop, spliced to their
// client fd in both directions with backlog-tracked interest. Health is
// active: each slot is probed on a virtual-clock interval over a real TCP
// connection that announces itself with StreamServer::kProbePreamble (so
// backends keep probes out of their request stats) and must answer within a
// timeout or the slot goes down — taking its proxied flows with it, since a
// dead backend will never answer them anyway. Draining slots finish their
// flows but receive no new ones.
#ifndef APPS_L4_BALANCER_H_
#define APPS_L4_BALANCER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "apps/event_loop.h"
#include "apps/stream_server.h"
#include "posix/api.h"
#include "ukplat/clock.h"

namespace apps {

class L4Balancer {
 public:
  enum class BackendState { kUp, kDown, kDraining };

  struct BackendConfig {
    uknet::Ip4Addr ip = 0;
    std::uint16_t port = 0;
  };

  struct Config {
    std::uint16_t vip_port = 7000;  // the one port clients see
    // Probe payload sent after kProbePreamble; must elicit at least one
    // reply byte from the backend protocol (RESP PING for redis backends).
    std::string probe_request = "*1\r\n$4\r\nPING\r\n";
    std::uint64_t probe_interval_cycles = 2'000'000;
    std::uint64_t probe_timeout_cycles = 8'000'000;
  };

  struct Stats {
    std::uint64_t flows_opened = 0;
    std::uint64_t flows_failed = 0;     // no healthy backend at open
    std::uint64_t fallback_steers = 0;  // hash slot unhealthy, walked on
    std::uint64_t probes_sent = 0;
    std::uint64_t probes_ok = 0;
    std::uint64_t probes_failed = 0;
    std::uint64_t backend_down_events = 0;
    std::uint64_t bytes_in = 0;   // client -> backend
    std::uint64_t bytes_out = 0;  // backend -> client
  };

  L4Balancer(posix::PosixApi* api, ukplat::Clock* clock, Config config);
  ~L4Balancer() = default;

  L4Balancer(const L4Balancer&) = delete;
  L4Balancer& operator=(const L4Balancer&) = delete;

  // Adds a steering slot; returns its index. Call before Start().
  int AddBackend(BackendConfig backend);

  // Replaces a slot's address (respawned instance) and marks it up again.
  // Existing flows to the old address were already torn down by MarkDown.
  void SetBackend(int slot, BackendConfig backend);

  // Administrative state flips. MarkDown closes every proxied flow on the
  // slot (a dead backend never answers them); drain just stops new flows.
  void MarkDown(int slot);
  void MarkUp(int slot);
  void SetDrain(int slot, bool drain);

  BackendState state(int slot) const { return backends_[slot].state; }
  std::size_t backend_count() const { return backends_.size(); }
  // Flows currently proxied through |slot|.
  std::size_t slot_flows(int slot) const;

  // Listens on vip_port and registers with the loop. False on failure.
  bool Start();

  // One event-loop turn (0 = non-blocking) plus timer work: probe
  // scheduling and probe-timeout reaping run off the virtual clock.
  std::size_t PumpOnce(std::uint64_t timeout_cycles = 0);

  // The slot a flow from |ip|:|port| steers to with current health, or -1.
  // Exposed so tests can predict and assert placement.
  int SteerSlot(uknet::Ip4Addr ip, std::uint16_t port) const;

  std::size_t active_flows() const { return upstreams_.size(); }
  const Stats& stats() const { return stats_; }
  EventLoop& loop() { return loop_; }
  StreamServer& stream() { return server_; }

 private:
  struct Backend {
    BackendConfig config;
    BackendState state = BackendState::kUp;
    // In-flight probe connection (-1 when none) and its deadline.
    int probe_fd = -1;
    std::uint64_t probe_deadline = 0;
    std::uint64_t next_probe_at = 0;
    bool probe_sent = false;
  };

  // One proxied backend connection, keyed by its fd in upstreams_.
  struct Upstream {
    int client_fd = -1;
    int slot = -1;
    bool established = false;
    std::string pending;  // client bytes queued until connect/backlog drains
    uknet::EventMask interest = 0;
  };

  StreamServer::Handler MakeHandler();
  void OnClientOpen(StreamServer::Conn& conn);
  void OnClientData(StreamServer::Conn& conn, std::string_view data);
  void OnClientClose(StreamServer::Conn& conn);
  void OnUpstreamEvent(int ufd, uknet::EventMask events);
  void FlushUpstream(int ufd, Upstream& up);
  void CloseUpstream(int ufd, bool close_client);
  void RunTimers();
  void StartProbe(int slot);
  void FinishProbe(int slot, bool ok);
  void OnProbeEvent(int slot, uknet::EventMask events);
  int PickSlot(std::uint32_t hash, bool* fell_back) const;

  posix::PosixApi* api_;
  ukplat::Clock* clock_;
  Config config_;
  EventLoop loop_;
  StreamServer server_;
  std::vector<Backend> backends_;
  std::map<int, Upstream> upstreams_;      // backend fd -> splice state
  std::map<int, int> client_to_upstream_;  // client fd -> backend fd
  Stats stats_;
};

}  // namespace apps

#endif  // APPS_L4_BALANCER_H_
