// apps/sql.h - ukdb: the SQLite stand-in (Figs 16, 17).
//
// SQL subset: CREATE TABLE t (col [INTEGER|TEXT], ...), INSERT INTO t
// VALUES (...), SELECT */cols FROM t [WHERE pk <op> n], DELETE FROM t WHERE
// pk = n, BEGIN/COMMIT (accepted no-ops, like the paper's autocommit insert
// loop). The first INTEGER column is the primary key backing a BTree; row
// payloads are serialized into allocator memory, so the allocator sweep of
// Fig 16 measures real work.
#ifndef APPS_SQL_H_
#define APPS_SQL_H_

#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "apps/btree.h"

namespace apps {

using SqlValue = std::variant<std::int64_t, std::string>;

struct SqlRow {
  std::vector<SqlValue> values;
};

struct SqlResult {
  bool ok = false;
  std::string error;
  std::vector<SqlRow> rows;        // SELECT output
  std::size_t rows_affected = 0;   // INSERT/DELETE
};

class Database {
 public:
  explicit Database(ukalloc::Allocator* alloc) : alloc_(alloc) {}
  ~Database();

  SqlResult Execute(std::string_view sql);

  std::size_t table_count() const { return tables_.size(); }

 private:
  struct Column {
    std::string name;
    bool is_text = false;
  };
  struct Table {
    std::vector<Column> columns;
    std::unique_ptr<BTree> index;  // on the first INTEGER column
    std::int64_t auto_key = 1;     // when no integer pk is supplied
  };

  SqlResult Create(class Tokenizer& tok);
  SqlResult Insert(class Tokenizer& tok);
  SqlResult Select(class Tokenizer& tok);
  SqlResult Delete(class Tokenizer& tok);

  // Row (de)serialization into allocator-backed payloads.
  std::vector<std::byte> SerializeRow(const SqlRow& row) const;
  SqlRow DeserializeRow(std::span<const std::byte> data) const;

  // Per-statement compile/execute scratch, like SQLite's VDBE and pager
  // buffers: short-lived, size-varied allocations freed a few statements
  // later. This churn is what exposes allocator behaviour in Fig 16.
  void StatementScratch();

  ukalloc::Allocator* alloc_;
  std::map<std::string, Table> tables_;
  static constexpr std::size_t kScratchRing = 64;
  void* scratch_[kScratchRing] = {};
  std::uint64_t stmt_counter_ = 0;
};

}  // namespace apps

#endif  // APPS_SQL_H_
