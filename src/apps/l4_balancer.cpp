#include "apps/l4_balancer.h"

#include "ukarch/hash.h"
#include "ukarch/status.h"

namespace apps {

namespace {

constexpr int kConnectInProgress =
    static_cast<int>(ukarch::Status::kInProgress);

std::string_view AsView(const std::uint8_t* p, std::int64_t n) {
  return std::string_view(reinterpret_cast<const char*>(p),
                          static_cast<std::size_t>(n));
}

}  // namespace

L4Balancer::L4Balancer(posix::PosixApi* api, ukplat::Clock* clock,
                       Config config)
    : api_(api),
      clock_(clock),
      config_(std::move(config)),
      loop_(api),
      server_(api, &loop_, MakeHandler()) {}

StreamServer::Handler L4Balancer::MakeHandler() {
  StreamServer::Handler h;
  h.on_open = [this](StreamServer::Conn& c) { OnClientOpen(c); };
  h.on_data = [this](StreamServer::Conn& c, std::string_view data) {
    OnClientData(c, data);
  };
  h.on_close = [this](StreamServer::Conn& c) { OnClientClose(c); };
  return h;
}

int L4Balancer::AddBackend(BackendConfig backend) {
  Backend b;
  b.config = backend;
  backends_.push_back(b);
  return static_cast<int>(backends_.size()) - 1;
}

void L4Balancer::SetBackend(int slot, BackendConfig backend) {
  Backend& b = backends_[static_cast<std::size_t>(slot)];
  if (b.probe_fd >= 0) {
    // A probe to the old address can only produce a stale verdict.
    loop_.Del(b.probe_fd);
    api_->Close(b.probe_fd);
    b.probe_fd = -1;
  }
  b.config = backend;
  b.state = BackendState::kUp;
  b.next_probe_at = clock_->cycles();  // verify the newcomer promptly
}

void L4Balancer::MarkDown(int slot) {
  Backend& b = backends_[static_cast<std::size_t>(slot)];
  if (b.state == BackendState::kDown) {
    return;
  }
  b.state = BackendState::kDown;
  ++stats_.backend_down_events;
  // A dead backend will never answer its in-flight requests: tear those
  // flows down now so their clients can reconnect and re-steer. Every other
  // slot's flows are untouched — that is the consistent-steering contract.
  std::vector<int> victims;
  for (const auto& [ufd, up] : upstreams_) {
    if (up.slot == slot) {
      victims.push_back(ufd);
    }
  }
  for (int ufd : victims) {
    CloseUpstream(ufd, /*close_client=*/true);
  }
}

void L4Balancer::MarkUp(int slot) {
  backends_[static_cast<std::size_t>(slot)].state = BackendState::kUp;
}

void L4Balancer::SetDrain(int slot, bool drain) {
  Backend& b = backends_[static_cast<std::size_t>(slot)];
  if (drain && b.state == BackendState::kUp) {
    b.state = BackendState::kDraining;
  } else if (!drain && b.state == BackendState::kDraining) {
    b.state = BackendState::kUp;
  }
}

std::size_t L4Balancer::slot_flows(int slot) const {
  std::size_t n = 0;
  for (const auto& [ufd, up] : upstreams_) {
    n += up.slot == slot ? 1 : 0;
  }
  return n;
}

bool L4Balancer::Start() { return server_.Listen(config_.vip_port); }

int L4Balancer::PickSlot(std::uint32_t hash, bool* fell_back) const {
  const std::size_t n = backends_.size();
  *fell_back = false;
  if (n == 0) {
    return -1;
  }
  const std::size_t start = hash % n;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t s = (start + i) % n;
    if (backends_[s].state == BackendState::kUp) {
      *fell_back = i != 0;
      return static_cast<int>(s);
    }
  }
  return -1;
}

int L4Balancer::SteerSlot(uknet::Ip4Addr ip, std::uint16_t port) const {
  bool fell_back = false;
  return PickSlot(ukarch::FlowHash4(ip, port, 0, config_.vip_port),
                  &fell_back);
}

void L4Balancer::OnClientOpen(StreamServer::Conn& conn) {
  auto sock = api_->fdtab().Get<uknet::TcpSocket>(conn.fd);
  if (sock == nullptr) {
    server_.CloseAfterFlush(conn.fd);
    return;
  }
  // The steering key is the client's flow tuple against the VIP — the same
  // symmetric Toeplitz hash RSS uses, so placement is deterministic and a
  // reconnecting client lands back on its slot (unless that slot died).
  const std::uint32_t hash = ukarch::FlowHash4(
      sock->remote_ip(), sock->remote_port(), 0, config_.vip_port);
  bool fell_back = false;
  const int slot = PickSlot(hash, &fell_back);
  if (slot < 0) {
    ++stats_.flows_failed;
    server_.CloseAfterFlush(conn.fd);
    return;
  }
  const BackendConfig& be = backends_[static_cast<std::size_t>(slot)].config;
  int ufd = api_->Socket(posix::SockType::kStream);
  if (ufd < 0) {
    ++stats_.flows_failed;
    server_.CloseAfterFlush(conn.fd);
    return;
  }
  const int rc = api_->Connect(ufd, be.ip, be.port);
  if (rc != 0 && rc != kConnectInProgress) {
    api_->Close(ufd);
    ++stats_.flows_failed;
    server_.CloseAfterFlush(conn.fd);
    return;
  }
  // Writable interest doubles as the connect-completion edge.
  if (!loop_.Add(ufd, uknet::kEvtReadable | uknet::kEvtWritable,
                 [this](int fd, uknet::EventMask ev) {
                   OnUpstreamEvent(fd, ev);
                 })) {
    api_->Close(ufd);
    ++stats_.flows_failed;
    server_.CloseAfterFlush(conn.fd);
    return;
  }
  Upstream up;
  up.client_fd = conn.fd;
  up.slot = slot;
  up.interest = uknet::kEvtReadable | uknet::kEvtWritable;
  upstreams_.emplace(ufd, std::move(up));
  client_to_upstream_[conn.fd] = ufd;
  ++stats_.flows_opened;
  stats_.fallback_steers += fell_back ? 1 : 0;
}

void L4Balancer::OnClientData(StreamServer::Conn& conn, std::string_view data) {
  auto it = client_to_upstream_.find(conn.fd);
  if (it == client_to_upstream_.end()) {
    return;  // upstream already gone; the conn is on its way down
  }
  auto uit = upstreams_.find(it->second);
  if (uit == upstreams_.end()) {
    return;
  }
  stats_.bytes_in += data.size();
  uit->second.pending.append(data);
  FlushUpstream(it->second, uit->second);
}

void L4Balancer::OnClientClose(StreamServer::Conn& conn) {
  auto it = client_to_upstream_.find(conn.fd);
  if (it == client_to_upstream_.end()) {
    return;
  }
  CloseUpstream(it->second, /*close_client=*/false);
}

void L4Balancer::FlushUpstream(int ufd, Upstream& up) {
  if (up.established) {
    while (!up.pending.empty()) {
      std::int64_t n = api_->Send(
          ufd,
          std::span(reinterpret_cast<const std::uint8_t*>(up.pending.data()),
                    up.pending.size()));
      if (n <= 0) {
        break;  // backend send buffer full; kEvtWritable resumes the flush
      }
      up.pending.erase(0, static_cast<std::size_t>(n));
    }
  }
  // Pre-establishment keeps writable interest armed for the connect edge;
  // after that it tracks the backlog exactly like StreamServer's flush.
  const uknet::EventMask want =
      !up.established || !up.pending.empty()
          ? (uknet::kEvtReadable | uknet::kEvtWritable)
          : uknet::kEvtReadable;
  if (want != up.interest && loop_.Mod(ufd, want)) {
    up.interest = want;
  }
}

void L4Balancer::CloseUpstream(int ufd, bool close_client) {
  auto it = upstreams_.find(ufd);
  if (it == upstreams_.end()) {
    return;
  }
  const int client_fd = it->second.client_fd;
  // Unlink first: the client-side close below re-enters OnClientClose, which
  // must not find the mapping and recurse.
  client_to_upstream_.erase(client_fd);
  upstreams_.erase(it);
  loop_.Del(ufd);
  api_->Close(ufd);
  if (close_client) {
    server_.Close(client_fd);
  }
}

void L4Balancer::OnUpstreamEvent(int ufd, uknet::EventMask events) {
  auto it = upstreams_.find(ufd);
  if (it == upstreams_.end()) {
    return;
  }
  if ((events & uknet::kEvtErr) != 0) {
    // Connection refused or reset by the backend: this flow is gone.
    CloseUpstream(ufd, /*close_client=*/true);
    return;
  }
  Upstream& up = it->second;
  if (!up.established) {
    auto sock = api_->fdtab().Get<uknet::TcpSocket>(ufd);
    if (sock != nullptr && sock->connected()) {
      up.established = true;
    }
  }
  if ((events & uknet::kEvtReadable) != 0) {
    std::uint8_t buf[8192];
    for (;;) {
      std::int64_t n = api_->Recv(ufd, buf);
      if (n > 0) {
        stats_.bytes_out += static_cast<std::uint64_t>(n);
        server_.Submit(up.client_fd, AsView(buf, n));
        if (upstreams_.count(ufd) == 0) {
          return;  // Submit closed the pair (client had want_close pending)
        }
        continue;
      }
      if (n == 0) {
        // Backend FIN: flush what we have to the client, then close it.
        const int client_fd = up.client_fd;
        CloseUpstream(ufd, /*close_client=*/false);
        server_.CloseAfterFlush(client_fd);
        return;
      }
      break;
    }
  }
  FlushUpstream(ufd, up);
}

void L4Balancer::StartProbe(int slot) {
  Backend& b = backends_[static_cast<std::size_t>(slot)];
  int pfd = api_->Socket(posix::SockType::kStream);
  if (pfd < 0) {
    return;  // fd pressure; retry next interval
  }
  const int rc = api_->Connect(pfd, b.config.ip, b.config.port);
  if (rc != 0 && rc != kConnectInProgress) {
    api_->Close(pfd);
    FinishProbe(slot, false);
    return;
  }
  if (!loop_.Add(pfd, uknet::kEvtReadable | uknet::kEvtWritable,
                 [this, slot](int, uknet::EventMask ev) {
                   OnProbeEvent(slot, ev);
                 })) {
    api_->Close(pfd);
    return;
  }
  b.probe_fd = pfd;
  b.probe_sent = false;
  b.probe_deadline = clock_->cycles() + config_.probe_timeout_cycles;
  ++stats_.probes_sent;
}

void L4Balancer::FinishProbe(int slot, bool ok) {
  Backend& b = backends_[static_cast<std::size_t>(slot)];
  if (b.probe_fd >= 0) {
    loop_.Del(b.probe_fd);
    api_->Close(b.probe_fd);
    b.probe_fd = -1;
  }
  b.next_probe_at = clock_->cycles() + config_.probe_interval_cycles;
  if (ok) {
    ++stats_.probes_ok;
    if (b.state == BackendState::kDown) {
      b.state = BackendState::kUp;  // revived (e.g. respawn at same address)
    }
  } else {
    ++stats_.probes_failed;
    if (b.state != BackendState::kDown) {
      MarkDown(slot);
    }
  }
}

void L4Balancer::OnProbeEvent(int slot, uknet::EventMask events) {
  Backend& b = backends_[static_cast<std::size_t>(slot)];
  const int pfd = b.probe_fd;
  if (pfd < 0) {
    return;
  }
  if ((events & uknet::kEvtErr) != 0) {
    FinishProbe(slot, false);
    return;
  }
  if (!b.probe_sent) {
    auto sock = api_->fdtab().Get<uknet::TcpSocket>(pfd);
    if (sock != nullptr && sock->connected()) {
      // Preamble + request in one write so the backend scaffold can detect
      // the probe marker on the connection's first chunk.
      std::string req(StreamServer::kProbePreamble);
      req.append(config_.probe_request);
      api_->Send(pfd,
                 std::span(reinterpret_cast<const std::uint8_t*>(req.data()),
                           req.size()));
      b.probe_sent = true;
    }
  }
  if ((events & uknet::kEvtReadable) != 0) {
    std::uint8_t buf[256];
    if (api_->Recv(pfd, buf) > 0) {
      FinishProbe(slot, true);  // any reply byte proves liveness
    }
  }
}

void L4Balancer::RunTimers() {
  const std::uint64_t now = clock_->cycles();
  for (std::size_t s = 0; s < backends_.size(); ++s) {
    Backend& b = backends_[s];
    if (b.probe_fd >= 0) {
      if (now >= b.probe_deadline) {
        FinishProbe(static_cast<int>(s), false);  // silent backend: dead
      }
      continue;
    }
    // Down slots keep getting probed: a respawned instance at the same
    // address is re-admitted by its first successful probe.
    if (now >= b.next_probe_at && b.state != BackendState::kDraining) {
      StartProbe(static_cast<int>(s));
    }
  }
}

std::size_t L4Balancer::PumpOnce(std::uint64_t timeout_cycles) {
  const std::size_t dispatched = loop_.PumpOnce(timeout_cycles);
  RunTimers();
  return dispatched;
}

}  // namespace apps
