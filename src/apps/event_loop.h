// apps/event_loop.h - the shared epoll-backed event loop the socket servers
// are built on: one thread multiplexes every listener and connection from a
// single EpollWait (and, under a scheduler, a single PollWait sleep) — the
// run-to-completion loop the paper's unmodified POSIX servers (redis, nginx)
// expect from the OS.
#ifndef APPS_EVENT_LOOP_H_
#define APPS_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "posix/api.h"

namespace apps {

class EventLoop {
 public:
  // |events| is the level-triggered ready mask the dispatch observed.
  using Handler = std::function<void(int fd, uknet::EventMask events)>;

  static constexpr std::uint64_t kNoTimeout = posix::PosixApi::kNoTimeout;

  explicit EventLoop(posix::PosixApi* api);
  ~EventLoop();

  bool ok() const { return epfd_ >= 0; }

  // Registers |fd| with |interest| and a dispatch handler. Handlers may Add/
  // Mod/Del (including their own fd) from inside a dispatch.
  bool Add(int fd, uknet::EventMask interest, Handler handler);
  bool Mod(int fd, uknet::EventMask interest);
  void Del(int fd);

  // One loop turn: waits up to |timeout_cycles| for readiness (0 = scan
  // without sleeping; kNoTimeout = block until an event), then dispatches
  // every ready descriptor's handler once. Returns handlers dispatched.
  std::size_t PumpOnce(std::uint64_t timeout_cycles = 0);

  // Registers a callback that runs at the END of every PumpOnce turn, after
  // all ready handlers dispatched. This is the persistence tier's batching
  // point: per-command work appends into memory, the turn hook does the one
  // file write (+ optional fsync) and advances the background-snapshot cursor
  // by its per-turn budget — so durability costs are amortized per turn, and
  // pause bounds are enforced at turn granularity. Hooks run in registration
  // order and cannot be removed (lifetime: owner outlives the loop's use).
  void AddTurnEndHook(std::function<void()> hook) {
    turn_hooks_.push_back(std::move(hook));
  }

  std::size_t watched() const { return handlers_.size(); }
  std::uint64_t turns() const { return turns_; }
  std::uint64_t dispatches() const { return dispatches_; }
  posix::PosixApi* api() { return api_; }

 private:
  // |added_turn| guards same-turn fd reuse: a handler registered DURING a
  // dispatch turn (a handler closed some fd, an accept reused its number)
  // must not receive a stale ready_ entry that was scanned for the old
  // socket — it waits for the next turn's scan of its own level.
  struct Registration {
    Handler handler;
    std::uint64_t added_turn = 0;
  };

  posix::PosixApi* api_;
  int epfd_ = -1;
  std::map<int, Registration> handlers_;
  std::vector<posix::EpollEvent> ready_;  // reused across turns (no per-turn alloc)
  std::vector<std::function<void()>> turn_hooks_;
  std::uint64_t turns_ = 0;
  std::uint64_t dispatches_ = 0;
};

}  // namespace apps

#endif  // APPS_EVENT_LOOP_H_
