#include "apps/resp.h"

namespace apps {

void RespCommandParser::Compact() {
  if (pos_ > 4096) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
}

std::optional<std::string> RespCommandParser::ReadLine() {
  std::size_t end = buf_.find("\r\n", pos_);
  if (end == std::string::npos) {
    return std::nullopt;
  }
  std::string line = buf_.substr(pos_, end - pos_);
  pos_ = end + 2;
  return line;
}

std::optional<std::vector<std::string>> RespCommandParser::Next() {
  std::size_t saved = pos_;
  auto fail = [this] {
    error_ = true;
    buf_.clear();
    pos_ = 0;
    return std::nullopt;
  };
  auto need_more = [this, saved]() {
    pos_ = saved;
    return std::nullopt;
  };

  auto header = ReadLine();
  if (!header.has_value()) {
    return need_more();
  }
  if (header->empty() || (*header)[0] != '*') {
    return fail();
  }
  long nargs = std::strtol(header->c_str() + 1, nullptr, 10);
  if (nargs <= 0 || nargs > 1024) {
    return fail();
  }
  std::vector<std::string> argv;
  argv.reserve(static_cast<std::size_t>(nargs));
  for (long i = 0; i < nargs; ++i) {
    auto len_line = ReadLine();
    if (!len_line.has_value()) {
      return need_more();
    }
    if (len_line->empty() || (*len_line)[0] != '$') {
      return fail();
    }
    long len = std::strtol(len_line->c_str() + 1, nullptr, 10);
    if (len < 0 || len > 512 * 1024) {
      return fail();
    }
    if (buf_.size() - pos_ < static_cast<std::size_t>(len) + 2) {
      return need_more();
    }
    argv.push_back(buf_.substr(pos_, static_cast<std::size_t>(len)));
    pos_ += static_cast<std::size_t>(len) + 2;  // skip \r\n
  }
  Compact();
  return argv;
}

std::string RespSimpleString(std::string_view s) { return "+" + std::string(s) + "\r\n"; }
std::string RespError(std::string_view msg) { return "-ERR " + std::string(msg) + "\r\n"; }
std::string RespInteger(std::int64_t v) { return ":" + std::to_string(v) + "\r\n"; }
std::string RespNil() { return "$-1\r\n"; }

std::string RespBulk(std::string_view data) {
  std::string out = "$" + std::to_string(data.size()) + "\r\n";
  out.append(data);
  out += "\r\n";
  return out;
}

std::string RespCommand(const std::vector<std::string>& argv) {
  std::string out = "*" + std::to_string(argv.size()) + "\r\n";
  for (const std::string& a : argv) {
    out += RespBulk(a);
  }
  return out;
}

std::size_t ConsumeReplies(std::string* buf) {
  std::size_t count = 0;
  std::size_t pos = 0;
  while (pos < buf->size()) {
    char type = (*buf)[pos];
    std::size_t line_end = buf->find("\r\n", pos);
    if (line_end == std::string::npos) {
      break;
    }
    if (type == '+' || type == '-' || type == ':') {
      pos = line_end + 2;
      ++count;
      continue;
    }
    if (type == '$') {
      long len = std::strtol(buf->c_str() + pos + 1, nullptr, 10);
      if (len < 0) {
        pos = line_end + 2;  // nil
        ++count;
        continue;
      }
      std::size_t total = line_end + 2 + static_cast<std::size_t>(len) + 2;
      if (buf->size() < total) {
        break;
      }
      pos = total;
      ++count;
      continue;
    }
    // Unknown type: drop the line to stay robust.
    pos = line_end + 2;
  }
  buf->erase(0, pos);
  return count;
}

}  // namespace apps
