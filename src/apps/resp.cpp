#include "apps/resp.h"

#include <charconv>

namespace apps {

namespace {

// Parses a decimal integer out of a non-null-terminated view.
bool ParseLong(std::string_view s, long* out) {
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

}  // namespace

void RespCommandParser::Compact() {
  if (pos_ > 4096) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
}

std::optional<std::string_view> RespCommandParser::ReadLine() {
  const char* start = buf_.data() + pos_;
  const char* cr = FindCrlf(start, buf_.size() - pos_);
  if (cr == nullptr) {
    return std::nullopt;
  }
  std::string_view line(start, static_cast<std::size_t>(cr - start));
  pos_ = static_cast<std::size_t>(cr - buf_.data()) + 2;
  return line;
}

const std::vector<std::string_view>* RespCommandParser::NextView() {
  // Compact BEFORE parsing, never after: the views handed back must stay
  // valid until the next call, so the buffer cannot move underneath them.
  Compact();
  std::size_t saved = pos_;
  auto fail = [this]() -> const std::vector<std::string_view>* {
    error_ = true;
    buf_.clear();
    pos_ = 0;
    return nullptr;
  };
  auto need_more = [this, saved]() -> const std::vector<std::string_view>* {
    pos_ = saved;
    return nullptr;
  };

  auto header = ReadLine();
  if (!header.has_value()) {
    return need_more();
  }
  if (header->empty() || (*header)[0] != '*') {
    return fail();
  }
  long nargs = 0;
  if (!ParseLong(header->substr(1), &nargs) || nargs <= 0 ||
      nargs > kRespMaxArraySize) {
    return fail();
  }
  argv_views_.clear();
  for (long i = 0; i < nargs; ++i) {
    auto len_line = ReadLine();
    if (!len_line.has_value()) {
      return need_more();
    }
    if (len_line->empty() || (*len_line)[0] != '$') {
      return fail();
    }
    long len = 0;
    if (!ParseLong(len_line->substr(1), &len) || len < 0 || len > kRespMaxBulkLen) {
      return fail();
    }
    if (buf_.size() - pos_ < static_cast<std::size_t>(len) + 2) {
      return need_more();
    }
    argv_views_.emplace_back(buf_.data() + pos_, static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len) + 2;  // skip \r\n
  }
  return &argv_views_;
}

std::optional<std::vector<std::string>> RespCommandParser::Next() {
  const std::vector<std::string_view>* argv = NextView();
  if (argv == nullptr) {
    return std::nullopt;
  }
  return std::vector<std::string>(argv->begin(), argv->end());
}

// ---- encoders ---------------------------------------------------------------------

void RespSimpleStringInto(std::string& out, std::string_view s) {
  out += '+';
  out.append(s);
  out.append("\r\n", 2);
}

void RespErrorInto(std::string& out, std::string_view msg) {
  out.append("-ERR ", 5);
  out.append(msg);
  out.append("\r\n", 2);
}

void RespIntegerInto(std::string& out, std::int64_t v) {
  // Fast path for the overwhelmingly common small results.
  if (v == 0) {
    out.append(kRespZero);
    return;
  }
  if (v == 1) {
    out.append(kRespOne);
    return;
  }
  char digits[24];
  auto [ptr, ec] = std::to_chars(digits, digits + sizeof(digits), v);
  (void)ec;
  out += ':';
  out.append(digits, static_cast<std::size_t>(ptr - digits));
  out.append("\r\n", 2);
}

void RespBulkInto(std::string& out, std::string_view data) {
  char digits[24];
  auto [ptr, ec] = std::to_chars(digits, digits + sizeof(digits), data.size());
  (void)ec;
  out += '$';
  out.append(digits, static_cast<std::size_t>(ptr - digits));
  out.append("\r\n", 2);
  out.append(data);
  out.append("\r\n", 2);
}

void RespCommandInto(std::string& out, std::initializer_list<std::string_view> argv) {
  char digits[24];
  auto [ptr, ec] = std::to_chars(digits, digits + sizeof(digits), argv.size());
  (void)ec;
  out += '*';
  out.append(digits, static_cast<std::size_t>(ptr - digits));
  out.append("\r\n", 2);
  for (std::string_view a : argv) {
    RespBulkInto(out, a);
  }
}

std::string RespSimpleString(std::string_view s) {
  std::string out;
  RespSimpleStringInto(out, s);
  return out;
}

std::string RespError(std::string_view msg) {
  std::string out;
  RespErrorInto(out, msg);
  return out;
}

std::string RespInteger(std::int64_t v) {
  std::string out;
  RespIntegerInto(out, v);
  return out;
}

std::string RespNil() { return std::string(kRespNil); }

std::string RespBulk(std::string_view data) {
  std::string out;
  RespBulkInto(out, data);
  return out;
}

std::string RespCommand(const std::vector<std::string>& argv) {
  std::string out;
  char digits[24];
  auto [ptr, ec] = std::to_chars(digits, digits + sizeof(digits), argv.size());
  (void)ec;
  out += '*';
  out.append(digits, static_cast<std::size_t>(ptr - digits));
  out.append("\r\n", 2);
  for (const std::string& a : argv) {
    RespBulkInto(out, a);
  }
  return out;
}

std::size_t ConsumeReplies(std::string* buf) {
  std::size_t count = 0;
  std::size_t pos = 0;
  while (pos < buf->size()) {
    char type = (*buf)[pos];
    const char* cr = FindCrlf(buf->data() + pos, buf->size() - pos);
    if (cr == nullptr) {
      break;
    }
    std::size_t line_end = static_cast<std::size_t>(cr - buf->data());
    if (type == '+' || type == '-' || type == ':') {
      pos = line_end + 2;
      ++count;
      continue;
    }
    if (type == '$') {
      long len = 0;
      if (!ParseLong(std::string_view(buf->data() + pos + 1, line_end - pos - 1),
                     &len)) {
        pos = line_end + 2;  // malformed length: skip the line to stay robust
        continue;
      }
      if (len < 0) {
        pos = line_end + 2;  // nil
        ++count;
        continue;
      }
      std::size_t total = line_end + 2 + static_cast<std::size_t>(len) + 2;
      if (buf->size() < total) {
        break;
      }
      pos = total;
      ++count;
      continue;
    }
    // Unknown type: drop the line to stay robust.
    pos = line_end + 2;
  }
  buf->erase(0, pos);
  return count;
}

}  // namespace apps
