// apps/persist.h - the durability tier: chunked RDB-style snapshots plus a
// per-turn append-only file, written through vfscore onto the unikernel block
// stack (blockfs over ramdisk/virtio-blk).
//
// Design constraints (see src/apps/PERSIST.md for the full contract):
//
//  * No fork. The servers run to completion on a cooperative scheduler, so a
//    background SAVE cannot clone the address space. Instead the snapshot
//    cursor walks a key list captured at save start, bounded by a per-turn
//    byte budget, while a copy-on-write-lite side log (PreMutate) preserves
//    the pre-image of any key mutated before the cursor reaches it — the
//    snapshot is point-in-time at StartBackgroundSave() without ever pausing
//    the event loop for more than one chunk.
//
//  * Zero-alloc hot path. AppendSet/AppendDel encode RESP into a per-shard
//    turn buffer whose capacity reaches a high-water mark and stays; the file
//    write happens once per event-loop turn (EventLoop::AddTurnEndHook →
//    OnTurnEnd), with the fsync policy knob deciding when the ukblockdev
//    flush barrier is issued (kAlways / kEveryTurn / kOff).
//
//  * Crash-safe by construction, not by rename. The VFS has no atomic rename,
//    so snapshot validity is carried by the file itself: a CRC-32C trailer
//    over the whole body. A crash mid-save leaves a file that fails the CRC
//    and Recover() falls back to the previous generation (two are retained).
//
//  * Replay ordering: newest CRC-valid snapshot first, then every AOF segment
//    with seg >= the snapshot's first_aof_seg, in segment order. The AOF is
//    canonicalized (every mutation is logged as a post-image SET, DEL or
//    FLUSHALL), so replay needs no command semantics beyond those three. A
//    truncated final record — the torn write of a crash — is tolerated: the
//    RESP parser simply never completes it.
#ifndef APPS_PERSIST_H_
#define APPS_PERSIST_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ukarch/crc32.h"
#include "vfscore/vfs.h"

namespace apps {

class Persist {
 public:
  enum class FsyncPolicy { kAlways, kEveryTurn, kOff };

  struct Config {
    // Directory holding every persistence file (typically a blockfs mount
    // root; the namespace below it is flat). Must resolve at construction.
    std::string dir = "/persist";
    FsyncPolicy fsync = FsyncPolicy::kEveryTurn;
    // Per-turn byte budget for background-save chunks: one event-loop turn
    // never writes more snapshot bytes than this (a single record larger
    // than the budget is the only exception — forced progress).
    std::size_t snapshot_chunk_bytes = 4096;
    std::uint16_t shards = 1;
  };

  // How the snapshot reads the store it persists. |capture| fills the full
  // key list of one shard (called once per shard at save start); |lookup|
  // returns the live value (nullopt when deleted). Both run on the owning
  // loop — Persist never touches store internals itself.
  struct Source {
    std::function<void(std::uint16_t shard, std::vector<std::string>* keys)> capture;
    std::function<std::optional<std::string_view>(std::uint16_t shard,
                                                  std::string_view key)> lookup;
  };

  // How recovery writes the store back.
  struct Applier {
    std::function<void(std::uint16_t shard, std::string_view key,
                       std::string_view value)> set;
    std::function<void(std::uint16_t shard, std::string_view key)> del;
    std::function<void(std::uint16_t shard)> clear;
  };

  struct RecoverStats {
    bool snapshot_loaded = false;
    std::uint32_t snapshot_gen = 0;
    std::uint32_t snapshots_rejected = 0;  // CRC/format failures skipped over
    std::uint64_t snapshot_keys = 0;
    std::uint64_t aof_segments = 0;
    std::uint64_t aof_commands = 0;
    bool aof_tail_truncated = false;  // torn final record tolerated
  };

  struct Stats {
    std::uint64_t aof_appends = 0;     // commands buffered
    std::uint64_t aof_writes = 0;      // segment file writes (dirty turns)
    std::uint64_t fsyncs = 0;          // barriers issued (any path)
    std::uint64_t snapshots_started = 0;
    std::uint64_t snapshots_completed = 0;
    std::uint64_t snapshots_aborted = 0;
    std::uint64_t snapshot_turns = 0;  // turns that advanced a background save
    std::uint64_t cow_preimages = 0;   // dirty-key side-log copies taken
    std::uint64_t io_errors = 0;
    // Per-turn ledger (the bounded-pause gate): largest byte counts any
    // single OnTurnEnd ever moved.
    std::size_t max_turn_snapshot_bytes = 0;
    std::size_t max_turn_aof_bytes = 0;
  };

  Persist(vfscore::Vfs* vfs, Config config);

  void SetSource(Source source) { source_ = std::move(source); }

  // ---- AOF (hot path) -------------------------------------------------------
  // Buffer one canonicalized mutation into |shard|'s turn buffer. Under
  // FsyncPolicy::kAlways the buffer is written through + barriered
  // immediately; otherwise no file I/O happens until the turn ends.
  void AppendSet(std::uint16_t shard, std::string_view key, std::string_view value);
  void AppendDel(std::uint16_t shard, std::string_view key);
  void AppendClear(std::uint16_t shard);

  // End-of-turn batching point (wire via EventLoop::AddTurnEndHook): writes
  // every dirty shard buffer to its AOF segment, fsyncs per policy, then
  // advances an active background save by one chunk budget.
  void OnTurnEnd();
  // Flushes one shard's buffer only — the per-queue variant for sharded
  // servers where each loop owns exactly one shard.
  void FlushShard(std::uint16_t shard);
  // WAIT-style barrier: write every buffer through and fsync regardless of
  // policy. Returns false on I/O error.
  bool FsyncNow();

  // ---- snapshots ------------------------------------------------------------
  // Synchronous full dump (SAVE): capture + write + commit in one call.
  bool SaveNow();
  // Begins a chunked background save (BGSAVE). False when one is already
  // running or the snapshot file cannot be created.
  bool StartBackgroundSave();
  bool save_active() const { return save_active_; }
  // COW-lite hook: call BEFORE applying any mutation of |key|. Costs one
  // branch when no save is active.
  void PreMutate(std::uint16_t shard, std::string_view key) {
    if (save_active_) {
      PreMutateSlow(shard, key);
    }
  }
  // Drops an in-progress background save (partial file unlinked). FLUSHALL
  // semantics: a store-wide clear invalidates the captured key list.
  void AbortSave();

  // ---- recovery -------------------------------------------------------------
  // Loads the newest valid snapshot, then replays the AOF tail. Also primes
  // the writer state (next segment/generation numbers) — call once, before
  // any Append.
  RecoverStats Recover(const Applier& apply);

  const Stats& stats() const { return stats_; }
  const Config& config() const { return config_; }
  // Current AOF segment number (tests pin the seal-at-save contract).
  std::uint32_t current_segment() const { return cur_seg_; }

 private:
  struct SvHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  template <typename V>
  using SvMap = std::unordered_map<std::string, V, SvHash, std::equal_to<>>;
  using SvSet = std::unordered_set<std::string, SvHash, std::equal_to<>>;

  struct ShardState {
    std::string turn_buf;  // capacity persists: the preallocated turn buffer
    std::shared_ptr<vfscore::File> seg_file;  // null until first flush of a segment
  };

  // Background-save state. |pending| tracks keys the cursor has not reached;
  // PreMutate moves a key from pending into |dirty| with its pre-image, and
  // the cursor prefers |dirty| over the live store.
  struct SaveState {
    bool active = false;
    std::uint32_t gen = 0;
    std::uint32_t first_aof_seg = 0;
    std::shared_ptr<vfscore::File> file;
    std::string path;
    ukarch::Crc32 crc;
    std::uint64_t keys_written = 0;
    std::uint16_t cur_shard = 0;
    std::size_t cursor = 0;
    std::vector<std::vector<std::string>> keys;  // per shard, capture order
    std::vector<SvSet> pending;
    std::vector<SvMap<std::string>> dirty;
    std::string record;  // reused record scratch
  };

  std::string AofPath(std::uint32_t seg, std::uint16_t shard) const;
  std::string SnapshotPath(std::uint32_t gen) const;

  void PreMutateSlow(std::uint16_t shard, std::string_view key);
  // Writes |shard|'s buffer through to its segment file (opens it first if
  // needed). Caller holds |mu_|.
  void FlushShardLocked(std::uint16_t shard, std::size_t* turn_bytes);
  bool FsyncShardLocked(std::uint16_t shard);
  // Emits up to |budget| snapshot bytes; finishes + commits when the cursor
  // completes. Caller holds |mu_|. Returns bytes written.
  std::size_t AdvanceSaveLocked(std::size_t budget);
  bool BeginSaveLocked();
  void FinishSaveLocked();
  void AbortSaveLocked();
  // Post-commit retention: keep the two newest generations, drop AOF
  // segments no retained snapshot needs.
  void RetireOldLocked();

  // Reads |path| fully into |out| (recovery-time only). False on any error.
  bool ReadWholeFile(const std::string& path, std::string* out);
  bool LoadSnapshot(std::uint32_t gen, const Applier& apply, RecoverStats* st);
  void ReplaySegment(std::uint32_t seg, std::uint16_t shard,
                     const Applier& apply, RecoverStats* st);

  vfscore::Vfs* vfs_;
  Config config_;
  Source source_;
  std::vector<ShardState> shards_;
  SaveState save_;
  // Mirrors save_.active for the wait-free hot-path check; save_ itself (and
  // all file state) is guarded by mu_ so sharded servers on real threads can
  // share one Persist.
  std::atomic<bool> save_active_{false};
  std::uint32_t cur_seg_ = 0;
  std::uint32_t next_gen_ = 1;
  // first_aof_seg of retained snapshot generations (retention GC input).
  std::unordered_map<std::uint32_t, std::uint32_t> snapshot_first_seg_;
  Stats stats_;
  mutable std::mutex mu_;
};

}  // namespace apps

#endif  // APPS_PERSIST_H_
