// apps/kvstore.h - the specialized UDP key-value store of §6.4 / Table 4.
//
// One server, four data paths, exactly the ladder the paper climbs:
//   kSocketSingle  — recvfrom/sendto, one syscall per packet;
//   kSocketBatch   — recvmmsg/sendmmsg, one syscall per 32-packet batch;
//   kUkNetdev      — no stack, no scheduler: poll-mode uknetdev bursts with
//                    hand-parsed Ethernet/IP/UDP (the paper's specialized
//                    unikernel that matches DPDK with one core);
//   kDpdkStyle     — same poll-mode path plus the DPDK framework's per-burst
//                    bookkeeping (mbuf pool churn), for the guest-DPDK rows.
#ifndef APPS_KVSTORE_H_
#define APPS_KVSTORE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "apps/event_loop.h"
#include "posix/api.h"
#include "uknet/wire_format.h"
#include "uknetdev/netdev.h"
#include "uksched/scheduler.h"

namespace apps {

enum class KvMode { kSocketSingle, kSocketBatch, kUkNetdev, kDpdkStyle };
const char* KvModeName(KvMode mode);

// Wire format: 'G'/'S' + u16 key [+ u16 value len + bytes]. Reply: value or 'E'.
struct KvRequest {
  bool is_set = false;
  std::uint16_t key = 0;
  std::string value;
};
std::vector<std::uint8_t> EncodeKvRequest(const KvRequest& req);

class KvServer {
 public:
  // Socket modes.
  KvServer(posix::PosixApi* api, std::uint16_t port, KvMode mode);
  // Raw netdev modes: parses frames itself; needs its own pools. |queues|
  // configures that many RX/TX queue pairs (clamped to the device maximum),
  // each with private pools — the sharded event-loop setup of §4: one loop
  // per queue, replies emitted on the queue the request arrived on.
  KvServer(uknetdev::NetDev* dev, ukplat::MemRegion* mem, ukalloc::Allocator* alloc,
           uknet::Ip4Addr ip, std::uint16_t port, KvMode mode,
           std::uint16_t queues = 1);

  bool Start();
  std::size_t PumpOnce();  // requests answered this turn (all queues)
  // One pump of a single queue: the per-queue event-loop body. Touches only
  // |queue|'s rings and pools (netdev modes).
  std::size_t PumpQueue(std::uint16_t queue);

  // ---- interrupt-driven pump ----------------------------------------------
  // Opts the server into blocking pumps. Must be called BEFORE Start() for
  // the netdev modes: queue setup registers the per-queue wakeup handlers.
  // |sched| is the scheduler whose current thread PumpQueueWait parks.
  void EnableWait(uksched::Scheduler* sched);
  // Blocking per-queue pump: drains like PumpQueue; when the queue is idle it
  // arms the RX interrupt, re-checks (arm-then-check, see uknetdev/netdev.h),
  // and blocks until a frame or |timeout_cycles| (relative; kNoWaitDeadline =
  // no timeout). Socket modes sleep through the shared apps::EventLoop (one
  // EpollWait over the server fd, which parks in NetStack::PollWait).
  // Without EnableWait (or off a scheduler thread) this is PumpQueue.
  std::size_t PumpQueueWait(std::uint16_t queue,
                            std::uint64_t timeout_cycles = kNoWaitDeadline);
  static constexpr std::uint64_t kNoWaitDeadline = uksched::Scheduler::kNoDeadline;

  struct WaitStats {
    std::uint64_t empty_pumps = 0;    // pump passes that found no request
    std::uint64_t blocked_waits = 0;  // times a pump loop actually slept
    std::uint64_t intr_fires = 0;     // RX interrupt handler invocations
    std::uint64_t timeouts = 0;       // waits ended by the caller's deadline
  };
  const WaitStats& wait_stats() const { return wait_stats_; }

  std::uint64_t requests() const { return requests_; }
  std::uint64_t queue_requests(std::uint16_t queue) const {
    return queue < queue_requests_.size() ? queue_requests_[queue] : 0;
  }
  std::uint16_t queue_count() const { return queues_; }
  KvMode mode() const { return mode_; }
  // Pool introspection for zero-alloc assertions (netdev modes).
  const uknetdev::NetBufPool* tx_pool(std::uint16_t queue = 0) const {
    return queue < tx_pools_.size() ? tx_pools_[queue].get() : nullptr;
  }
  const uknetdev::NetBufPool* rx_pool(std::uint16_t queue = 0) const {
    return queue < rx_pools_.size() ? rx_pools_[queue].get() : nullptr;
  }

 private:
  std::size_t PumpSocketSingle();
  std::size_t PumpSocketBatch();
  // One event-loop turn over the server fd (socket modes): blocks up to
  // |timeout_cycles| in EpollWait, returns requests answered.
  std::size_t PumpSocket(std::uint64_t timeout_cycles);
  std::size_t PumpNetdev(std::uint16_t queue);
  // Executes one request and writes the reply bytes straight into |out|
  // (usually the wire buffer itself). Returns reply length, 0 when |cap| is
  // too small. Never allocates.
  std::size_t HandleInto(std::span<const std::uint8_t> payload, std::uint8_t* out,
                         std::size_t cap);

  KvMode mode_;
  posix::PosixApi* api_ = nullptr;
  int fd_ = -1;
  std::uint16_t port_ = 0;
  // Socket modes multiplex the server fd through the shared event loop; the
  // readable dispatch runs the single/batch pump body.
  std::unique_ptr<EventLoop> loop_;

  uknetdev::NetDev* dev_ = nullptr;
  ukplat::MemRegion* mem_ = nullptr;
  ukalloc::Allocator* alloc_ = nullptr;
  uknet::Ip4Addr ip_ = 0;
  std::uint16_t queues_ = 1;
  std::vector<std::unique_ptr<uknetdev::NetBufPool>> tx_pools_;
  std::vector<std::unique_ptr<uknetdev::NetBufPool>> rx_pools_;

  std::unordered_map<std::uint16_t, std::string> store_;
  std::uint64_t requests_ = 0;
  std::vector<std::uint64_t> queue_requests_;
  std::uint16_t ip_id_ = 1;

  uksched::Scheduler* sched_ = nullptr;
  std::vector<std::unique_ptr<uksched::WaitQueue>> rx_waits_;  // netdev modes
  WaitStats wait_stats_;

  static constexpr int kBatch = 32;
};

}  // namespace apps

#endif  // APPS_KVSTORE_H_
