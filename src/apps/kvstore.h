// apps/kvstore.h - the specialized UDP key-value store of §6.4 / Table 4.
//
// One server, four data paths, exactly the ladder the paper climbs:
//   kSocketSingle  — recvfrom/sendto, one syscall per packet;
//   kSocketBatch   — recvmmsg/sendmmsg, one syscall per 32-packet batch;
//   kUkNetdev      — no stack, no scheduler: poll-mode uknetdev bursts with
//                    hand-parsed Ethernet/IP/UDP (the paper's specialized
//                    unikernel that matches DPDK with one core);
//   kDpdkStyle     — same poll-mode path plus the DPDK framework's per-burst
//                    bookkeeping (mbuf pool churn), for the guest-DPDK rows.
#ifndef APPS_KVSTORE_H_
#define APPS_KVSTORE_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include <array>
#include <deque>

#include "apps/event_loop.h"
#include "apps/persist.h"
#include "posix/api.h"
#include "uknet/wire_format.h"
#include "uknetdev/netdev.h"
#include "uksched/scheduler.h"
#include "uksched/spsc_ring.h"

namespace apps {

enum class KvMode { kSocketSingle, kSocketBatch, kUkNetdev, kDpdkStyle };
const char* KvModeName(KvMode mode);

// Wire format: 'G'/'S' + u16 key [+ u16 value len + bytes]. Reply: value or 'E'.
// Multi-get: 'M' + u8 n + n*u16 keys; reply 'V' + u8 n + n*(u16 len + bytes),
// len 0xffff marking a missing key. Multi-get values are capped at
// KvServer::kMaxInlineValue bytes (they must fit a cross-shard ring slot).
struct KvRequest {
  bool is_set = false;
  std::uint16_t key = 0;
  std::string value;
};
std::vector<std::uint8_t> EncodeKvRequest(const KvRequest& req);
std::vector<std::uint8_t> EncodeKvMultiGet(std::span<const std::uint16_t> keys);

class KvServer {
 public:
  // Socket modes.
  KvServer(posix::PosixApi* api, std::uint16_t port, KvMode mode);
  // Raw netdev modes: parses frames itself; needs its own pools. |queues|
  // configures that many RX/TX queue pairs (clamped to the device maximum),
  // each with private pools — the sharded event-loop setup of §4: one loop
  // per queue, replies emitted on the queue the request arrived on.
  KvServer(uknetdev::NetDev* dev, ukplat::MemRegion* mem, ukalloc::Allocator* alloc,
           uknet::Ip4Addr ip, std::uint16_t port, KvMode mode,
           std::uint16_t queues = 1);

  bool Start();
  std::size_t PumpOnce();  // requests answered this turn (all queues)
  // One pump of a single queue: the per-queue event-loop body. Touches only
  // |queue|'s rings and pools (netdev modes).
  std::size_t PumpQueue(std::uint16_t queue);

  // ---- interrupt-driven pump ----------------------------------------------
  // Opts the server into blocking pumps. Must be called BEFORE Start() for
  // the netdev modes: queue setup registers the per-queue wakeup handlers.
  // |sched| is the scheduler whose current thread PumpQueueWait parks.
  void EnableWait(uksched::Scheduler* sched);
  // Blocking per-queue pump: drains like PumpQueue; when the queue is idle it
  // arms the RX interrupt, re-checks (arm-then-check, see uknetdev/netdev.h),
  // and blocks until a frame or |timeout_cycles| (relative; kNoWaitDeadline =
  // no timeout). Socket modes sleep through the shared apps::EventLoop (one
  // EpollWait over the server fd, which parks in NetStack::PollWait).
  // Without EnableWait (or off a scheduler thread) this is PumpQueue.
  std::size_t PumpQueueWait(std::uint16_t queue,
                            std::uint64_t timeout_cycles = kNoWaitDeadline);
  static constexpr std::uint64_t kNoWaitDeadline = uksched::Scheduler::kNoDeadline;

  // Snapshot type. The live counters are PER-LOOP (one cacheline-padded slot
  // per queue's loop); wait_stats() sums the slots at read time and
  // wait_stats(queue) slices out one loop's view, so concurrent loops never
  // write-share a counter line and readers never race a writer.
  struct WaitStats {
    std::uint64_t empty_pumps = 0;    // pump passes that found no request
    std::uint64_t blocked_waits = 0;  // times a pump loop actually slept
    std::uint64_t intr_fires = 0;     // RX interrupt handler invocations
    std::uint64_t timeouts = 0;       // waits ended by the caller's deadline
  };
  WaitStats wait_stats() const;                     // all loops, summed
  WaitStats wait_stats(std::uint16_t queue) const;  // one loop's slot

  // Full snapshot: every aggregate the benches and tests read, captured from
  // the per-loop slots in one call. stats() sums across loops; stats(queue)
  // is one loop's slice.
  struct Stats {
    std::uint64_t requests = 0;        // real client traffic only
    std::uint64_t probe_requests = 0;  // balancer health probes ('P' opcode)
    std::uint64_t ring_messages = 0;
    std::uint64_t cross_shard_ops = 0;
    WaitStats waits;
  };
  Stats stats() const;
  Stats stats(std::uint16_t queue) const;

  std::uint64_t requests() const;
  std::uint64_t queue_requests(std::uint16_t queue) const {
    return loops_[LoopSlotFor(queue)].requests.load(std::memory_order_relaxed);
  }
  std::uint16_t queue_count() const { return queues_; }
  KvMode mode() const { return mode_; }

  // ---- shared-nothing sharding (§6 SMP scale-out) --------------------------
  // The store is split into one shard per queue, keyed by the same Toeplitz
  // machinery that steers frames: a client that sends key K over a flow
  // hashing to ShardForKey(K) gets parse→execute→reply entirely inside one
  // loop, no foreign cache lines. Requests for foreign keys (and multi-key
  // 'M' ops) travel between loops as messages over per-pair SPSC rings; the
  // owning loop executes against its own shard and rings the answer back.
  static std::uint16_t ShardForKey(std::uint16_t key, std::uint16_t nshards);
  std::size_t shard_size(std::uint16_t shard) const {
    return shard < shards_.size() ? shards_[shard].size() : 0;
  }
  // Shared-nothing audit counter: store accesses bucketed by (executing loop,
  // shard). The invariant the scale test asserts: every off-diagonal bucket
  // stays 0 — no loop ever touches a foreign shard, not even for cross-shard
  // ops (those execute on the owner via ring messages).
  std::uint64_t shard_accesses(std::uint16_t accessor, std::uint16_t shard) const {
    const std::size_t i = static_cast<std::size_t>(accessor) * queues_ + shard;
    return i < shard_accesses_.size()
               ? shard_accesses_[i].load(std::memory_order_relaxed)
               : 0;
  }
  std::uint64_t ring_messages() const;   // summed over per-loop slots
  std::uint64_t cross_shard_ops() const; // summed over per-loop slots

  // ---- durability (apps::Persist) ------------------------------------------
  // Wires the persistence tier in with one persist shard per queue: every
  // StoreSet is AOF-logged (keys canonicalized to decimal text) and each
  // PumpQueue flushes its own shard's buffer at turn end — the sharded
  // equivalent of the event-loop turn hook. |persist| must be configured with
  // shards == queue_count().
  void AttachPersist(Persist* persist);
  // Replays snapshot + AOF into the (empty) shards. Call before traffic.
  Persist::RecoverStats RecoverFromPersist();
  Persist* persist() { return persist_; }

  static constexpr std::size_t kMaxMultiKeys = 8;
  static constexpr std::size_t kMaxInlineValue = 64;  // ring-slot value cap
  // Pool introspection for zero-alloc assertions (netdev modes).
  const uknetdev::NetBufPool* tx_pool(std::uint16_t queue = 0) const {
    return queue < tx_pools_.size() ? tx_pools_[queue].get() : nullptr;
  }
  const uknetdev::NetBufPool* rx_pool(std::uint16_t queue = 0) const {
    return queue < rx_pools_.size() ? rx_pools_[queue].get() : nullptr;
  }

 private:
  // Cross-shard ring message: a foreign-key GET/SET shipped to the shard
  // owner, or the owner's response. Plain data with an inline value so ring
  // slots never point into another loop's memory.
  struct ShardMsg {
    enum Type : std::uint8_t { kGet, kSet, kResp };
    std::uint8_t type = kGet;
    std::uint16_t from = 0;    // origin queue: responses ring back here
    std::uint32_t req_id = 0;  // origin's pending-op id
    std::uint8_t slot = 0;     // key index within the origin's op
    std::uint16_t key = 0;
    bool found = false;  // kResp: the key existed
    std::uint8_t vlen = 0;
    std::uint8_t val[kMaxInlineValue] = {};
  };
  using ShardRing = uksched::SpscRing<ShardMsg, 64>;

  // A request whose reply waits on foreign shards: reply addressing is
  // snapshotted (the RX buffer goes back to its pool), local keys resolve
  // immediately, and each kResp fills one slot until none remain.
  struct PendingOp {
    std::uint32_t id = 0;
    char op = 'G';  // 'G' single get, 'S' single set, 'M' multi-get
    std::uint16_t queue = 0;  // arrival queue: the reply bursts from here
    uknetdev::MacAddr dst_mac{};
    uknet::Ip4Addr dst_ip = 0;
    std::uint16_t dst_port = 0;
    std::uint8_t nkeys = 0;
    std::uint8_t remaining = 0;  // outstanding ring responses
    struct Slot {
      std::uint16_t key = 0;
      bool found = false;
      std::uint8_t vlen = 0;
      std::uint8_t val[kMaxInlineValue] = {};
    };
    std::array<Slot, kMaxMultiKeys> slots{};
  };

  std::size_t PumpSocketSingle();
  std::size_t PumpSocketBatch();
  // One event-loop turn over the server fd (socket modes): blocks up to
  // |timeout_cycles| in EpollWait, returns requests answered.
  std::size_t PumpSocket(std::uint64_t timeout_cycles);
  std::size_t PumpNetdev(std::uint16_t queue);
  // Executes one request against |queue|'s shard and writes the reply bytes
  // straight into |out| (usually the wire buffer itself). Returns reply
  // length, 0 when |cap| is too small. Never allocates on the shard-local
  // path. A request touching foreign shards returns len 0 with |*deferred|
  // set: a PendingOp was parked and ring messages are in flight (|reply_to|
  // supplies the snapshot; null |reply_to| — socket modes — forces every key
  // local, which holds by construction when queues_ == 1).
  struct ReplyTo {
    uknetdev::MacAddr mac{};
    uknet::Ip4Addr ip = 0;
    std::uint16_t port = 0;
  };
  std::size_t HandleInto(std::uint16_t queue, std::span<const std::uint8_t> payload,
                         std::uint8_t* out, std::size_t cap,
                         const ReplyTo* reply_to, bool* deferred);
  // Shard access helpers: the ONLY paths that touch shards_, so the
  // (accessor, shard) audit counters see every access.
  std::string* StoreFind(std::uint16_t accessor, std::uint16_t shard,
                         std::uint16_t key);
  void StoreSet(std::uint16_t accessor, std::uint16_t shard, std::uint16_t key,
                std::span<const std::uint8_t> value);
  // Ring plumbing (netdev modes, queues_ > 1).
  ShardRing* RingTo(std::uint16_t from, std::uint16_t to) {
    return rings_[static_cast<std::size_t>(from) * queues_ + to].get();
  }
  // Push with backpressure: a full ring parks the message in the per-pair
  // outbox, flushed at the head of every DrainRings turn.
  void RingSend(std::uint16_t from, std::uint16_t to, const ShardMsg& msg);
  // Doorbell: bump |to|'s sequence and wake exactly one sleeper of that loop.
  void WakeShard(std::uint16_t to);
  // Drains every inbound ring of |queue| (and retries its outboxes):
  // executes foreign GET/SETs against the local shard, completes pending ops
  // on responses. Returns messages processed.
  std::size_t DrainRings(std::uint16_t queue);
  // Builds and bursts the reply frame of a completed PendingOp from its
  // arrival queue's TX pool.
  void EmitDeferredReply(const PendingOp& op);

  KvMode mode_;
  posix::PosixApi* api_ = nullptr;
  int fd_ = -1;
  std::uint16_t port_ = 0;
  // Socket modes multiplex the server fd through the shared event loop; the
  // readable dispatch runs the single/batch pump body.
  std::unique_ptr<EventLoop> loop_;

  uknetdev::NetDev* dev_ = nullptr;
  ukplat::MemRegion* mem_ = nullptr;
  ukalloc::Allocator* alloc_ = nullptr;
  uknet::Ip4Addr ip_ = 0;
  std::uint16_t queues_ = 1;
  std::vector<std::unique_ptr<uknetdev::NetBufPool>> tx_pools_;
  std::vector<std::unique_ptr<uknetdev::NetBufPool>> rx_pools_;

  // ---- per-loop counters ---------------------------------------------------
  // Every aggregate the server exposes (requests, ring messages, cross-shard
  // ops, wait accounting) lives in one cacheline-padded slot per loop; the
  // loop pumping queue q is the only writer of loops_[q], and the public
  // accessors sum the slots at read time. Socket modes use slot 0.
  static constexpr std::size_t kMaxLoopSlots = 16;
  static std::uint16_t LoopSlotFor(std::uint16_t queue) {
    return queue < kMaxLoopSlots ? queue
                                 : static_cast<std::uint16_t>(kMaxLoopSlots - 1);
  }
  struct alignas(64) LoopCounters {
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> probe_requests{0};
    std::atomic<std::uint64_t> ring_messages{0};
    std::atomic<std::uint64_t> cross_shard_ops{0};
    std::atomic<std::uint64_t> empty_pumps{0};
    std::atomic<std::uint64_t> blocked_waits{0};
    std::atomic<std::uint64_t> intr_fires{0};
    std::atomic<std::uint64_t> timeouts{0};
  };
  std::array<LoopCounters, kMaxLoopSlots> loops_;

  // One shard per queue; shards_[q] is owned by queue q's loop and only ever
  // touched by it (StoreFind/StoreSet assert the discipline via the audit
  // counters; the cold persistence paths — snapshot capture and boot-time
  // recovery — read/write shards directly but run before/outside loop
  // traffic). Socket modes degenerate to one shard.
  std::vector<std::unordered_map<std::uint16_t, std::string>> shards_;
  Persist* persist_ = nullptr;  // optional durability tier (unowned)
  // Audit counters, accessor-major [q][shard]. Atomic so a reader summing the
  // matrix never races the loops bumping their diagonal.
  std::vector<std::atomic<std::uint64_t>> shard_accesses_;
  std::uint16_t ip_id_ = 1;

  // Cross-shard transport: queues_^2 SPSC rings (from-major), per-pair
  // overflow outboxes, per-queue pending ops and doorbell sequences.
  std::vector<std::unique_ptr<ShardRing>> rings_;
  std::vector<std::deque<ShardMsg>> outbox_;
  std::vector<std::deque<PendingOp>> pending_;
  std::vector<std::uint32_t> next_req_id_;
  // Doorbell sequences: written by the PRODUCING loop (WakeShard, release),
  // read by the target loop's arm-then-check (acquire) — the one counter here
  // that is a protocol word, not a statistic.
  std::vector<std::atomic<std::uint64_t>> ring_doorbells_;

  uksched::Scheduler* sched_ = nullptr;
  std::vector<std::unique_ptr<uksched::WaitQueue>> rx_waits_;  // netdev modes

  static constexpr int kBatch = 32;
};

}  // namespace apps

#endif  // APPS_KVSTORE_H_
