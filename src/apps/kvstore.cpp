#include "apps/kvstore.h"

#include <algorithm>
#include <charconv>
#include <cstring>

#include "ukarch/hash.h"

namespace apps {

const char* KvModeName(KvMode mode) {
  switch (mode) {
    case KvMode::kSocketSingle: return "socket-single";
    case KvMode::kSocketBatch: return "socket-batch";
    case KvMode::kUkNetdev: return "uknetdev";
    case KvMode::kDpdkStyle: return "dpdk";
  }
  return "?";
}

std::vector<std::uint8_t> EncodeKvRequest(const KvRequest& req) {
  std::vector<std::uint8_t> out;
  out.push_back(req.is_set ? 'S' : 'G');
  out.push_back(static_cast<std::uint8_t>(req.key));
  out.push_back(static_cast<std::uint8_t>(req.key >> 8));
  if (req.is_set) {
    out.push_back(static_cast<std::uint8_t>(req.value.size()));
    out.push_back(static_cast<std::uint8_t>(req.value.size() >> 8));
    out.insert(out.end(), req.value.begin(), req.value.end());
  }
  return out;
}

std::vector<std::uint8_t> EncodeKvMultiGet(std::span<const std::uint16_t> keys) {
  std::vector<std::uint8_t> out;
  out.push_back('M');
  out.push_back(static_cast<std::uint8_t>(keys.size()));
  for (std::uint16_t k : keys) {
    out.push_back(static_cast<std::uint8_t>(k));
    out.push_back(static_cast<std::uint8_t>(k >> 8));
  }
  return out;
}

std::uint16_t KvServer::ShardForKey(std::uint16_t key, std::uint16_t nshards) {
  if (nshards <= 1) {
    return 0;
  }
  // Same Toeplitz machinery that steers flows to queues: a client that picks
  // keys whose shard matches its flow's queue gets the all-local fast path.
  const std::uint8_t bytes[2] = {static_cast<std::uint8_t>(key),
                                 static_cast<std::uint8_t>(key >> 8)};
  return static_cast<std::uint16_t>(ukarch::Toeplitz32(bytes, 2) % nshards);
}

KvServer::KvServer(posix::PosixApi* api, std::uint16_t port, KvMode mode)
    : mode_(mode), api_(api), port_(port) {}

KvServer::KvServer(uknetdev::NetDev* dev, ukplat::MemRegion* mem,
                   ukalloc::Allocator* alloc, uknet::Ip4Addr ip, std::uint16_t port,
                   KvMode mode, std::uint16_t queues)
    : mode_(mode), port_(port), dev_(dev), mem_(mem), alloc_(alloc), ip_(ip),
      queues_(queues == 0 ? 1 : queues) {}

bool KvServer::Start() {
  if (mode_ == KvMode::kSocketSingle || mode_ == KvMode::kSocketBatch) {
    // One queue, one shard: the sharding machinery degenerates to the old
    // single-store server (every key hashes to shard 0).
    shards_.assign(1, {});
    shard_accesses_ = std::vector<std::atomic<std::uint64_t>>(1);
    fd_ = api_->Socket(posix::SockType::kDgram);
    if (fd_ < 0 || api_->Bind(fd_, port_) != 0) {
      return false;
    }
    // Rebuilt on the shared event loop: the readable dispatch runs one pump
    // body (single: up to 32 recvfrom/sendto pairs; batch: one recvmmsg +
    // one sendmmsg). Level-triggered readiness re-reports leftovers.
    loop_ = std::make_unique<EventLoop>(api_);
    return loop_->Add(fd_, uknet::kEvtReadable, [this](int, uknet::EventMask) {
      if (mode_ == KvMode::kSocketSingle) {
        PumpSocketSingle();
      } else {
        PumpSocketBatch();
      }
    });
  }
  // Raw netdev: own the device completely (§6.4: "we remove the lwip stack
  // and scheduler altogether ... and code against the uknetdev API"). Each
  // queue pair gets private pools so per-queue loops never share state.
  const uknetdev::DevInfo info = dev_->Info();
  const std::uint16_t dev_max = std::min(info.max_rx_queues, info.max_tx_queues);
  if (queues_ > dev_max) {
    queues_ = dev_max == 0 ? 1 : dev_max;
  }
  const std::uint32_t bufs_per_q = std::max<std::uint32_t>(512 / queues_, 32);
  // Shared-nothing state: one shard per queue plus the full queues_^2 ring
  // mesh (the diagonal rings stay unused — a loop never messages itself).
  shards_.assign(queues_, {});
  shard_accesses_ = std::vector<std::atomic<std::uint64_t>>(
      static_cast<std::size_t>(queues_) * queues_);
  rings_.clear();
  for (std::size_t i = 0; i < static_cast<std::size_t>(queues_) * queues_; ++i) {
    rings_.push_back(std::make_unique<ShardRing>());
  }
  outbox_.assign(static_cast<std::size_t>(queues_) * queues_, {});
  pending_.assign(queues_, {});
  next_req_id_.assign(queues_, 1);
  ring_doorbells_ = std::vector<std::atomic<std::uint64_t>>(queues_);
  uknetdev::DevConf conf;
  conf.nb_rx_queues = queues_;
  conf.nb_tx_queues = queues_;
  if (!Ok(dev_->Configure(conf))) {
    return false;
  }
  for (std::uint16_t q = 0; q < queues_; ++q) {
    tx_pools_.push_back(uknetdev::NetBufPool::Create(alloc_, mem_, bufs_per_q, 2048));
    rx_pools_.push_back(uknetdev::NetBufPool::Create(alloc_, mem_, bufs_per_q, 2048));
    if (tx_pools_.back() == nullptr || rx_pools_.back() == nullptr) {
      return false;
    }
    if (!Ok(dev_->TxQueueSetup(q, uknetdev::TxQueueConf{}))) {
      return false;
    }
    uknetdev::RxQueueConf rxc;
    rxc.buffer_pool = rx_pools_[q].get();
    if (sched_ != nullptr) {
      // EnableWait was called: each queue gets a private wait queue and the
      // driver's interrupt fire wakes exactly that queue's pump loop.
      rx_waits_.push_back(std::make_unique<uksched::WaitQueue>(sched_));
      rxc.intr_handler = [this](std::uint16_t rxq) {
        loops_[LoopSlotFor(rxq)].intr_fires.fetch_add(1,
                                                      std::memory_order_relaxed);
        if (rxq < rx_waits_.size() && rx_waits_[rxq] != nullptr) {
          rx_waits_[rxq]->Wake();
        }
      };
    }
    if (!Ok(dev_->RxQueueSetup(q, rxc))) {
      return false;
    }
  }
  return Ok(dev_->Start());
}

void KvServer::EnableWait(uksched::Scheduler* sched) {
  sched_ = sched;
  // Socket modes sleep inside NetStack::PollWait, which only blocks once the
  // stack itself knows the scheduler — attach it here so PumpQueueWait does
  // not silently degrade to a spin.
  if (api_ != nullptr && api_->net() != nullptr) {
    api_->net()->SetScheduler(sched);
  }
}

std::size_t KvServer::PumpQueueWait(std::uint16_t queue,
                                    std::uint64_t timeout_cycles) {
  std::size_t handled = PumpQueue(queue);
  LoopCounters& lc = loops_[LoopSlotFor(queue)];
  if (handled > 0) {
    return handled;
  }
  lc.empty_pumps.fetch_add(1, std::memory_order_relaxed);
  if (sched_ == nullptr || sched_->current() == nullptr) {
    return handled;  // no scheduler: stay a plain (spinning) pump
  }
  if (mode_ == KvMode::kSocketSingle || mode_ == KvMode::kSocketBatch) {
    lc.blocked_waits.fetch_add(1, std::memory_order_relaxed);
    if (queue != 0) {
      // The single server fd lives on queue 0's loop; the event loop is not
      // reentrant (one shared ready array), so sibling pump threads sleep on
      // the stack directly instead of entering it.
      if (api_->net()->PollWait(uknet::NetStack::kAllQueues, timeout_cycles) == 0) {
        // deadline wake; frames woke it otherwise
        lc.timeouts.fetch_add(1, std::memory_order_relaxed);
      }
      return 0;
    }
    // Queue 0 sleeps through the event loop: one EpollWait over the server
    // fd, parked in NetStack::PollWait (RTO deadlines included). The
    // kNoWaitDeadline sentinel is the same ~0 as EventLoop::kNoTimeout.
    handled = PumpSocket(timeout_cycles);
    if (handled == 0) {
      lc.timeouts.fetch_add(1, std::memory_order_relaxed);
    }
    return handled;
  }
  if (queue >= rx_waits_.size() || rx_waits_[queue] == nullptr) {
    return handled;
  }
  const std::uint64_t now = sched_->clock()->cycles();
  const std::uint64_t deadline = timeout_cycles >= kNoWaitDeadline - now
                                     ? kNoWaitDeadline
                                     : now + timeout_cycles;
  for (;;) {
    // Arm-then-check: the line goes live before the verifying pump, so a
    // request that lands in between either shows up here or fires the
    // interrupt we are about to sleep on. The ring doorbell follows the same
    // contract: capture the sequence before the pump, and a bump observed
    // after an empty pump means a sibling rang while we drained — spin once
    // more instead of sleeping through the (already-fired) WakeOne.
    dev_->RxIntrEnable(queue);
    const std::uint64_t bell =
        queue < ring_doorbells_.size()
            ? ring_doorbells_[queue].load(std::memory_order_acquire)
            : 0;
    handled = PumpQueue(queue);
    if (handled > 0) {
      break;
    }
    if (queue < ring_doorbells_.size() &&
        ring_doorbells_[queue].load(std::memory_order_acquire) != bell) {
      continue;
    }
    lc.empty_pumps.fetch_add(1, std::memory_order_relaxed);
    lc.blocked_waits.fetch_add(1, std::memory_order_relaxed);
    const bool woken = rx_waits_[queue]->WaitTimeout(deadline);
    handled = PumpQueue(queue);
    if (!woken) {
      lc.timeouts.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (handled > 0) {
      break;
    }
    // Spurious wake (burst landed on a sibling consumer): sleep again.
  }
  dev_->RxIntrDisable(queue);
  return handled;
}

std::string* KvServer::StoreFind(std::uint16_t accessor, std::uint16_t shard,
                                 std::uint16_t key) {
  shard_accesses_[static_cast<std::size_t>(accessor) * queues_ + shard]
      .fetch_add(1, std::memory_order_relaxed);
  auto& map = shards_[shard];
  auto it = map.find(key);
  return it == map.end() ? nullptr : &it->second;
}

void KvServer::StoreSet(std::uint16_t accessor, std::uint16_t shard,
                        std::uint16_t key, std::span<const std::uint8_t> value) {
  shard_accesses_[static_cast<std::size_t>(accessor) * queues_ + shard]
      .fetch_add(1, std::memory_order_relaxed);
  if (persist_ != nullptr) {
    // AOF choke point: keys canonicalize to decimal text, values pass as-is.
    // PreMutate first (the COW-lite pre-image), then log the post-image.
    char digits[8];
    auto [ptr, ec] = std::to_chars(digits, digits + sizeof(digits), key);
    (void)ec;
    std::string_view key_text(digits, static_cast<std::size_t>(ptr - digits));
    persist_->PreMutate(shard, key_text);
    shards_[shard][key].assign(reinterpret_cast<const char*>(value.data()),
                               value.size());
    persist_->AppendSet(shard, key_text,
                        std::string_view(reinterpret_cast<const char*>(value.data()),
                                         value.size()));
    return;
  }
  shards_[shard][key].assign(reinterpret_cast<const char*>(value.data()),
                             value.size());
}

void KvServer::AttachPersist(Persist* persist) {
  persist_ = persist;
  persist_->SetSource(Persist::Source{
      .capture = [this](std::uint16_t shard, std::vector<std::string>* keys) {
        if (shard >= shards_.size()) {
          return;
        }
        keys->reserve(keys->size() + shards_[shard].size());
        for (const auto& [key, value] : shards_[shard]) {
          keys->push_back(std::to_string(key));
        }
      },
      .lookup = [this](std::uint16_t shard,
                       std::string_view key) -> std::optional<std::string_view> {
        std::uint16_t k = 0;
        auto [ptr, ec] = std::from_chars(key.data(), key.data() + key.size(), k);
        if (ec != std::errc{} || ptr != key.data() + key.size()) {
          return std::nullopt;
        }
        const std::string* v = StoreFind(shard, shard, k);
        if (v == nullptr) {
          return std::nullopt;
        }
        return std::string_view(*v);
      },
  });
}

Persist::RecoverStats KvServer::RecoverFromPersist() {
  if (persist_ == nullptr) {
    return {};
  }
  // Recovery writes shards directly (not through StoreSet): it runs before
  // traffic, and going through the choke point would re-log every replayed
  // command into the fresh AOF segment.
  auto parse_key = [](std::string_view key, std::uint16_t* out) {
    auto [ptr, ec] = std::from_chars(key.data(), key.data() + key.size(), *out);
    return ec == std::errc{} && ptr == key.data() + key.size();
  };
  return persist_->Recover(Persist::Applier{
      .set = [this, parse_key](std::uint16_t shard, std::string_view key,
                               std::string_view value) {
        std::uint16_t k = 0;
        if (shard < shards_.size() && parse_key(key, &k)) {
          shards_[shard][k].assign(value.data(), value.size());
        }
      },
      .del = [this, parse_key](std::uint16_t shard, std::string_view key) {
        std::uint16_t k = 0;
        if (shard < shards_.size() && parse_key(key, &k)) {
          shards_[shard].erase(k);
        }
      },
      .clear = [this](std::uint16_t shard) {
        if (shard < shards_.size()) {
          shards_[shard].clear();
        }
      },
  });
}

void KvServer::RingSend(std::uint16_t from, std::uint16_t to, const ShardMsg& msg) {
  loops_[LoopSlotFor(from)].ring_messages.fetch_add(1,
                                                    std::memory_order_relaxed);
  if (!RingTo(from, to)->Push(msg)) {
    // Ring full: park in the outbox, retried at the head of every DrainRings
    // turn of |from|. Backpressure, never loss.
    outbox_[static_cast<std::size_t>(from) * queues_ + to].push_back(msg);
  }
}

void KvServer::WakeShard(std::uint16_t to) {
  if (to < ring_doorbells_.size()) {
    // Release: the ring Push above happens-before a consumer that observes
    // the bumped bell (acquire) and drains.
    ring_doorbells_[to].fetch_add(1, std::memory_order_release);
  }
  // WakeOne, not Wake: exactly one loop owns queue |to|, waking more sleepers
  // would be a thundering herd against consumers that find nothing.
  if (to < rx_waits_.size() && rx_waits_[to] != nullptr) {
    rx_waits_[to]->WakeOne();
  }
}

std::size_t KvServer::DrainRings(std::uint16_t queue) {
  if (queues_ <= 1 || rings_.empty()) {
    return 0;
  }
  // Retry backpressured sends first: slots may have freed since last turn.
  for (std::uint16_t to = 0; to < queues_; ++to) {
    if (to == queue) {
      continue;
    }
    auto& ob = outbox_[static_cast<std::size_t>(queue) * queues_ + to];
    bool flushed = false;
    while (!ob.empty() && RingTo(queue, to)->Push(ob.front())) {
      ob.pop_front();
      flushed = true;
    }
    if (flushed) {
      WakeShard(to);
    }
  }
  std::size_t processed = 0;
  for (std::uint16_t from = 0; from < queues_; ++from) {
    if (from == queue) {
      continue;
    }
    ShardRing* ring = RingTo(from, queue);
    ShardMsg m;
    while (ring->Pop(&m)) {
      ++processed;
      switch (m.type) {
        case ShardMsg::kGet: {
          // Foreign loop asks for one of OUR keys: the only store touch is
          // the diagonal (queue, queue) — shared-nothing holds.
          std::string* v = StoreFind(queue, queue, m.key);
          ShardMsg r;
          r.type = ShardMsg::kResp;
          r.from = queue;
          r.req_id = m.req_id;
          r.slot = m.slot;
          r.key = m.key;
          r.found = v != nullptr;
          if (v != nullptr) {
            r.vlen = static_cast<std::uint8_t>(std::min(v->size(), kMaxInlineValue));
            std::memcpy(r.val, v->data(), r.vlen);
          }
          RingSend(queue, m.from, r);
          WakeShard(m.from);
          break;
        }
        case ShardMsg::kSet: {
          StoreSet(queue, queue, m.key, std::span(m.val, m.vlen));
          ShardMsg r;
          r.type = ShardMsg::kResp;
          r.from = queue;
          r.req_id = m.req_id;
          r.slot = m.slot;
          r.key = m.key;
          r.found = true;
          RingSend(queue, m.from, r);
          WakeShard(m.from);
          break;
        }
        case ShardMsg::kResp: {
          auto& pend = pending_[queue];
          for (auto it = pend.begin(); it != pend.end(); ++it) {
            if (it->id != m.req_id) {
              continue;
            }
            auto& slot = it->slots[m.slot];
            slot.found = m.found;
            slot.vlen = m.vlen;
            std::memcpy(slot.val, m.val, m.vlen);
            if (--it->remaining == 0) {
              EmitDeferredReply(*it);
              pend.erase(it);
            }
            break;
          }
          break;
        }
      }
    }
  }
  return processed;
}

void KvServer::EmitDeferredReply(const PendingOp& op) {
  using namespace uknet;
  constexpr std::size_t kHdrs = kEthHdrBytes + kIp4HdrBytes + kUdpHdrBytes;
  uknetdev::NetBuf* out = tx_pools_[op.queue]->Alloc();
  if (out == nullptr) {
    return;  // TX pool dry: drop like a NIC would, the client retries
  }
  std::uint32_t cap = out->capacity - out->headroom;
  std::uint8_t* odata =
      reinterpret_cast<std::uint8_t*>(mem_->At(out->data_gpa(), cap));
  if (odata == nullptr || cap < kHdrs + 2 + kMaxMultiKeys * (2 + kMaxInlineValue)) {
    tx_pools_[op.queue]->Free(out);
    return;
  }
  std::uint8_t* p = odata + kHdrs;
  std::size_t reply_len = 0;
  if (op.op == 'G') {
    const PendingOp::Slot& s = op.slots[0];
    if (s.found) {
      std::memcpy(p, s.val, s.vlen);
      reply_len = s.vlen;
    } else {
      p[0] = 'E';
      reply_len = 1;
    }
  } else if (op.op == 'S') {
    p[0] = 'K';
    reply_len = 1;
  } else {  // 'M'
    p[0] = 'V';
    p[1] = op.nkeys;
    std::size_t w = 2;
    for (std::uint8_t i = 0; i < op.nkeys; ++i) {
      const PendingOp::Slot& s = op.slots[i];
      if (!s.found) {
        p[w++] = 0xff;
        p[w++] = 0xff;
        continue;
      }
      p[w++] = s.vlen;
      p[w++] = 0;
      std::memcpy(p + w, s.val, s.vlen);
      w += s.vlen;
    }
    reply_len = w;
  }
  const std::size_t total = kHdrs + reply_len;
  EthHeader oeth{op.dst_mac, dev_->mac(), kEthTypeIp4};
  oeth.Serialize(odata);
  Ip4Header oip;
  oip.total_len = static_cast<std::uint16_t>(total - kEthHdrBytes);
  oip.id = ip_id_++;
  oip.proto = kIpProtoUdp;
  oip.src = ip_;
  oip.dst = op.dst_ip;
  oip.Serialize(odata + kEthHdrBytes);
  UdpHeader oudp;
  oudp.src_port = port_;
  oudp.dst_port = op.dst_port;
  oudp.Serialize(odata + kEthHdrBytes + kIp4HdrBytes, ip_, op.dst_ip,
                 std::span(p, reply_len));
  out->len = static_cast<std::uint32_t>(total);
  // The reply bursts from the ARRIVAL queue's loop — flow affinity holds even
  // for cross-shard ops; foreign shards only ever touched the rings.
  std::uint16_t sent = 1;
  uknetdev::NetBuf* bufs[1] = {out};
  dev_->TxBurst(op.queue, bufs, &sent);
  if (sent == 0) {
    tx_pools_[op.queue]->Free(out);
    return;
  }
  loops_[LoopSlotFor(op.queue)].requests.fetch_add(1,
                                                   std::memory_order_relaxed);
}

std::size_t KvServer::HandleInto(std::uint16_t queue,
                                 std::span<const std::uint8_t> payload,
                                 std::uint8_t* out, std::size_t cap,
                                 const ReplyTo* reply_to, bool* deferred) {
  if (deferred != nullptr) {
    *deferred = false;
  }
  if (cap < 1) {
    return 0;
  }
  // Health probe: the balancer's liveness check. Answered like any request
  // but callers tally it under probe_requests, not requests, so load stats
  // see only real client traffic.
  if (!payload.empty() && payload[0] == 'P') {
    out[0] = 'P';
    return 1;
  }
  if (payload.size() < 2) {
    out[0] = 'E';
    return 1;
  }
  // Deferral needs somewhere to send the eventual reply; socket modes pass
  // no reply_to but run queues_ == 1, where every key is local anyway.
  const bool can_defer = reply_to != nullptr && queues_ > 1;
  if (payload[0] == 'M') {
    const std::uint8_t n = payload[1];
    if (n == 0 || n > kMaxMultiKeys || payload.size() < 2u + 2u * n) {
      out[0] = 'E';
      return 1;
    }
    // Parse every key up front: the reply may be written in place over the
    // request buffer, which would clobber keys still unread.
    std::uint16_t keys[kMaxMultiKeys];
    for (std::uint8_t i = 0; i < n; ++i) {
      keys[i] = static_cast<std::uint16_t>(payload[2 + 2 * i] |
                                           (payload[3 + 2 * i] << 8));
    }
    PendingOp op;
    op.op = 'M';
    op.queue = queue;
    op.nkeys = n;
    for (std::uint8_t i = 0; i < n; ++i) {
      op.slots[i].key = keys[i];
      const std::uint16_t shard = ShardForKey(keys[i], queues_);
      if (shard == queue) {
        std::string* v = StoreFind(queue, shard, keys[i]);
        op.slots[i].found = v != nullptr;
        if (v != nullptr) {
          op.slots[i].vlen =
              static_cast<std::uint8_t>(std::min(v->size(), kMaxInlineValue));
          std::memcpy(op.slots[i].val, v->data(), op.slots[i].vlen);
        }
      } else {
        ++op.remaining;  // foreign key: resolved by the owner over the rings
      }
    }
    if (op.remaining == 0) {
      // All keys local: answer synchronously, no ring traffic.
      if (cap < 2 + n * (2 + kMaxInlineValue)) {
        return 0;
      }
      out[0] = 'V';
      out[1] = n;
      std::size_t w = 2;
      for (std::uint8_t i = 0; i < n; ++i) {
        const PendingOp::Slot& s = op.slots[i];
        if (!s.found) {
          out[w++] = 0xff;
          out[w++] = 0xff;
          continue;
        }
        out[w++] = s.vlen;
        out[w++] = 0;
        std::memcpy(out + w, s.val, s.vlen);
        w += s.vlen;
      }
      return w;
    }
    if (!can_defer) {
      out[0] = 'E';  // unreachable when queues_ == 1 (all keys hash local)
      return 1;
    }
    op.id = next_req_id_[queue]++;
    op.dst_mac = reply_to->mac;
    op.dst_ip = reply_to->ip;
    op.dst_port = reply_to->port;
    loops_[LoopSlotFor(queue)].cross_shard_ops.fetch_add(
        1, std::memory_order_relaxed);
    for (std::uint8_t i = 0; i < n; ++i) {
      const std::uint16_t shard = ShardForKey(keys[i], queues_);
      if (shard == queue) {
        continue;
      }
      ShardMsg m;
      m.type = ShardMsg::kGet;
      m.from = queue;
      m.req_id = op.id;
      m.slot = i;
      m.key = keys[i];
      RingSend(queue, shard, m);
      WakeShard(shard);
    }
    pending_[queue].push_back(op);
    *deferred = true;
    return 0;
  }
  if (payload.size() < 3) {
    out[0] = 'E';
    return 1;
  }
  std::uint16_t key = static_cast<std::uint16_t>(payload[1] | (payload[2] << 8));
  const std::uint16_t shard = ShardForKey(key, queues_);
  if (payload[0] == 'S') {
    if (payload.size() < 5) {
      out[0] = 'E';
      return 1;
    }
    std::uint16_t len = static_cast<std::uint16_t>(payload[3] | (payload[4] << 8));
    if (payload.size() < 5u + len) {
      out[0] = 'E';
      return 1;
    }
    if (shard == queue || !can_defer) {
      StoreSet(queue, shard, key, payload.subspan(5, len));
      out[0] = 'K';
      return 1;
    }
    if (len > kMaxInlineValue) {
      // Cross-shard values must fit a ring slot. Clients keep values this
      // large on their home flow (shard == queue), where there is no cap.
      out[0] = 'E';
      return 1;
    }
    PendingOp op;
    op.id = next_req_id_[queue]++;
    op.op = 'S';
    op.queue = queue;
    op.dst_mac = reply_to->mac;
    op.dst_ip = reply_to->ip;
    op.dst_port = reply_to->port;
    op.nkeys = 1;
    op.remaining = 1;
    op.slots[0].key = key;
    ShardMsg m;
    m.type = ShardMsg::kSet;
    m.from = queue;
    m.req_id = op.id;
    m.slot = 0;
    m.key = key;
    m.vlen = static_cast<std::uint8_t>(len);
    std::memcpy(m.val, payload.data() + 5, len);
    loops_[LoopSlotFor(queue)].cross_shard_ops.fetch_add(
        1, std::memory_order_relaxed);
    pending_[queue].push_back(op);
    RingSend(queue, shard, m);
    WakeShard(shard);
    *deferred = true;
    return 0;
  }
  if (payload[0] == 'G') {
    if (shard == queue || !can_defer) {
      std::string* v = StoreFind(queue, shard, key);
      if (v == nullptr) {
        out[0] = 'E';
        return 1;
      }
      if (v->size() > cap) {
        return 0;
      }
      // The value is copied straight into the wire buffer. |out| may overlap
      // the request payload; the key was already read above.
      std::memmove(out, v->data(), v->size());
      return v->size();
    }
    PendingOp op;
    op.id = next_req_id_[queue]++;
    op.op = 'G';
    op.queue = queue;
    op.dst_mac = reply_to->mac;
    op.dst_ip = reply_to->ip;
    op.dst_port = reply_to->port;
    op.nkeys = 1;
    op.remaining = 1;
    op.slots[0].key = key;
    ShardMsg m;
    m.type = ShardMsg::kGet;
    m.from = queue;
    m.req_id = op.id;
    m.slot = 0;
    m.key = key;
    loops_[LoopSlotFor(queue)].cross_shard_ops.fetch_add(
        1, std::memory_order_relaxed);
    pending_[queue].push_back(op);
    RingSend(queue, shard, m);
    WakeShard(shard);
    *deferred = true;
    return 0;
  }
  out[0] = 'E';
  return 1;
}

std::size_t KvServer::PumpSocketSingle() {
  std::size_t handled = 0;
  std::uint8_t buf[2048];
  std::uint8_t reply[2048];
  for (int i = 0; i < kBatch; ++i) {  // bounded work per turn, 1 syscall each
    uknet::Ip4Addr src_ip = 0;
    std::uint16_t src_port = 0;
    std::int64_t n = api_->RecvFrom(fd_, buf, &src_ip, &src_port);
    if (n < 0) {
      break;
    }
    const bool probe = n > 0 && buf[0] == 'P';
    std::size_t len = HandleInto(0, std::span(buf, static_cast<std::size_t>(n)),
                                 reply, sizeof(reply), nullptr, nullptr);
    api_->SendTo(fd_, src_ip, src_port, std::span(reply, len));
    (probe ? loops_[0].probe_requests : loops_[0].requests)
        .fetch_add(1, std::memory_order_relaxed);
    ++handled;
  }
  return handled;
}

std::size_t KvServer::PumpSocketBatch() {
  std::uint8_t storage[kBatch][2048];
  posix::MmsgRecv msgs[kBatch];
  for (int i = 0; i < kBatch; ++i) {
    msgs[i].data = storage[i];
    msgs[i].cap = sizeof(storage[i]);
  }
  std::int64_t got = api_->RecvMmsg(fd_, msgs);
  if (got <= 0) {
    return 0;
  }
  // One reply batch back (all to the same client in this workload). Replies
  // are written in place over the request buffers — no reply allocations.
  posix::MmsgVec vecs[kBatch];
  std::uint64_t probes = 0;
  for (std::int64_t i = 0; i < got; ++i) {
    probes += msgs[i].len > 0 && msgs[i].data[0] == 'P' ? 1 : 0;
    std::size_t len = HandleInto(0, std::span(msgs[i].data, msgs[i].len),
                                 msgs[i].data, msgs[i].cap, nullptr, nullptr);
    vecs[i] = posix::MmsgVec{msgs[i].data, len};
  }
  api_->SendMmsg(fd_, msgs[0].src_ip, msgs[0].src_port,
                 std::span(vecs, static_cast<std::size_t>(got)));
  loops_[0].requests.fetch_add(static_cast<std::uint64_t>(got) - probes,
                               std::memory_order_relaxed);
  loops_[0].probe_requests.fetch_add(probes, std::memory_order_relaxed);
  return static_cast<std::size_t>(got);
}

std::size_t KvServer::PumpNetdev(std::uint16_t queue) {
  using namespace uknet;
  uknetdev::NetBuf* pkts[kBatch];
  std::uint16_t cnt = kBatch;
  dev_->RxBurst(queue, pkts, &cnt);
  if (cnt == 0) {
    return 0;
  }
  const bool dpdk_style = mode_ == KvMode::kDpdkStyle;
  uknetdev::NetBuf* replies[kBatch];
  std::uint16_t nreplies = 0;
  for (std::uint16_t i = 0; i < cnt; ++i) {
    uknetdev::NetBuf* nb = pkts[i];
    std::uint8_t* raw = nb->Bytes(*mem_);
    std::span<const std::uint8_t> frame(raw, nb->len);
    // Parse Ethernet/IP/UDP by hand (zero-copy views into the netbuf).
    bool replied = false;
    if (raw != nullptr &&
        frame.size() >= kEthHdrBytes + kIp4HdrBytes + kUdpHdrBytes) {
      EthHeader eth = EthHeader::Parse(frame);
      auto ip = Ip4Header::Parse(frame.subspan(kEthHdrBytes));
      if (ip.has_value() && ip->proto == kIpProtoUdp) {
        // Slice at the parsed header length so IP options never read as UDP.
        auto body = frame.subspan(kEthHdrBytes + ip->header_len,
                                  ip->total_len - ip->header_len);
        auto udp = UdpHeader::Parse(body, ip->src, ip->dst, false);
        if (udp.has_value() && udp->dst_port == port_) {
          auto request = body.subspan(kUdpHdrBytes, udp->length - kUdpHdrBytes);
          constexpr std::size_t kHdrs = kEthHdrBytes + kIp4HdrBytes + kUdpHdrBytes;
          // Reply addressing snapshot: if the request defers to a foreign
          // shard, the RX buffer goes back to its pool before the reply exists.
          const ReplyTo rt{eth.src, ip->src, udp->src_port};
          bool deferred = false;
          // Opcode snapshot: the in-place reply below overwrites the request.
          const bool probe = !request.empty() && request[0] == 'P';
          if (dpdk_style) {
            // DPDK-framework path: per-packet mbuf churn through the TX pool
            // plus the copy into the fresh mbuf — the framework overhead that
            // makes the kDpdkStyle rows differ from raw uknetdev.
            uknetdev::NetBuf* out = tx_pools_[queue]->Alloc();
            if (out != nullptr) {
              std::uint32_t cap = out->capacity - out->headroom;
              std::uint8_t* odata =
                  reinterpret_cast<std::uint8_t*>(mem_->At(out->data_gpa(), cap));
              std::size_t reply_len =
                  odata != nullptr
                      ? HandleInto(queue, request, odata + kHdrs, cap - kHdrs,
                                   &rt, &deferred)
                      : 0;
              if (reply_len > 0) {
                std::size_t total = kHdrs + reply_len;
                EthHeader oeth{eth.src, dev_->mac(), kEthTypeIp4};
                oeth.Serialize(odata);
                Ip4Header oip;
                oip.total_len = static_cast<std::uint16_t>(total - kEthHdrBytes);
                oip.id = ip_id_++;
                oip.proto = kIpProtoUdp;
                oip.src = ip_;
                oip.dst = ip->src;
                oip.Serialize(odata + kEthHdrBytes);
                UdpHeader oudp;
                oudp.src_port = port_;
                oudp.dst_port = udp->src_port;
                oudp.Serialize(odata + kEthHdrBytes + kIp4HdrBytes, ip_, ip->src,
                               std::span(odata + kHdrs, reply_len));
                out->len = static_cast<std::uint32_t>(total);
                replies[nreplies++] = out;
                (probe ? loops_[LoopSlotFor(queue)].probe_requests
                       : loops_[LoopSlotFor(queue)].requests)
                    .fetch_add(1, std::memory_order_relaxed);
                replied = true;
              } else {
                tx_pools_[queue]->Free(out);
              }
            }
          } else {
            // Specialized uknetdev path (§6.4): the reply is written in place
            // in the received buffer — headers rewritten around it, the same
            // netbuf handed straight back to TxBurst. Zero copies, zero
            // allocations, no buffer churn.
            std::uint32_t cap = nb->capacity - nb->headroom;
            std::uint8_t* payload_at = raw + kHdrs;
            std::size_t reply_len =
                HandleInto(queue, request, payload_at, cap - kHdrs, &rt,
                           &deferred);
            if (reply_len > 0) {
              std::size_t total = kHdrs + reply_len;
              EthHeader oeth{eth.src, dev_->mac(), kEthTypeIp4};
              oeth.Serialize(raw);
              Ip4Header oip;
              oip.total_len = static_cast<std::uint16_t>(total - kEthHdrBytes);
              oip.id = ip_id_++;
              oip.proto = kIpProtoUdp;
              oip.src = ip_;
              oip.dst = ip->src;
              oip.Serialize(raw + kEthHdrBytes);
              UdpHeader oudp;
              oudp.src_port = port_;
              oudp.dst_port = udp->src_port;
              oudp.Serialize(raw + kEthHdrBytes + kIp4HdrBytes, ip_, ip->src,
                             std::span(payload_at, reply_len));
              nb->len = static_cast<std::uint32_t>(total);
              replies[nreplies++] = nb;  // ownership rides to TxBurst
              (probe ? loops_[LoopSlotFor(queue)].probe_requests
                     : loops_[LoopSlotFor(queue)].requests)
                  .fetch_add(1, std::memory_order_relaxed);
              replied = true;
              continue;  // do not free: the RX buffer is the TX buffer now
            }
          }
        }
      }
    }
    (void)replied;
    nb->pool->Free(nb);
  }
  if (nreplies > 0) {
    // Replies burst on the queue the requests arrived on: flow affinity all
    // the way down, no cross-queue hand-off.
    std::uint16_t sent = nreplies;
    dev_->TxBurst(queue, replies, &sent);
    for (std::uint16_t i = sent; i < nreplies; ++i) {
      if (replies[i]->pool != nullptr) {
        replies[i]->pool->Free(replies[i]);  // unsent buffers return to the pool
      }
    }
  }
  return cnt;
}

std::size_t KvServer::PumpSocket(std::uint64_t timeout_cycles) {
  if (loop_ == nullptr) {
    return 0;  // Start() not run (or failed): degrade like the old fd_=-1 path
  }
  const std::uint64_t before = requests();
  loop_->PumpOnce(timeout_cycles);
  if (persist_ != nullptr) {
    persist_->FlushShard(0);  // socket modes are single-sharded
  }
  return static_cast<std::size_t>(requests() - before);
}

std::size_t KvServer::PumpQueue(std::uint16_t queue) {
  switch (mode_) {
    case KvMode::kSocketSingle:
    case KvMode::kSocketBatch:
      return queue == 0 ? PumpSocket(0) : 0;
    case KvMode::kUkNetdev:
    case KvMode::kDpdkStyle: {
      if (queue >= queues_) {
        return 0;
      }
      // Ring work counts as progress: a drained message keeps the loop from
      // sleeping while a response (or a foreign request) is in flight.
      const std::size_t handled = PumpNetdev(queue) + DrainRings(queue);
      if (persist_ != nullptr) {
        // Per-queue turn end: this loop's AOF shard writes out exactly once
        // per pump, whatever the batch size was.
        persist_->FlushShard(queue);
      }
      return handled;
    }
  }
  return 0;
}

std::size_t KvServer::PumpOnce() {
  switch (mode_) {
    case KvMode::kSocketSingle:
    case KvMode::kSocketBatch:
      return PumpSocket(0);
    case KvMode::kUkNetdev:
    case KvMode::kDpdkStyle: {
      std::size_t handled = 0;
      for (std::uint16_t q = 0; q < queues_; ++q) {
        handled += PumpQueue(q);
      }
      return handled;
    }
  }
  return 0;
}

// ---- per-loop counter snapshots ---------------------------------------------------

KvServer::Stats KvServer::stats(std::uint16_t queue) const {
  const LoopCounters& lc = loops_[LoopSlotFor(queue)];
  return Stats{
      .requests = lc.requests.load(std::memory_order_relaxed),
      .probe_requests = lc.probe_requests.load(std::memory_order_relaxed),
      .ring_messages = lc.ring_messages.load(std::memory_order_relaxed),
      .cross_shard_ops = lc.cross_shard_ops.load(std::memory_order_relaxed),
      .waits =
          WaitStats{
              .empty_pumps = lc.empty_pumps.load(std::memory_order_relaxed),
              .blocked_waits = lc.blocked_waits.load(std::memory_order_relaxed),
              .intr_fires = lc.intr_fires.load(std::memory_order_relaxed),
              .timeouts = lc.timeouts.load(std::memory_order_relaxed),
          },
  };
}

KvServer::Stats KvServer::stats() const {
  Stats sum;
  for (std::uint16_t q = 0; q < kMaxLoopSlots; ++q) {
    const Stats one = stats(q);
    sum.requests += one.requests;
    sum.probe_requests += one.probe_requests;
    sum.ring_messages += one.ring_messages;
    sum.cross_shard_ops += one.cross_shard_ops;
    sum.waits.empty_pumps += one.waits.empty_pumps;
    sum.waits.blocked_waits += one.waits.blocked_waits;
    sum.waits.intr_fires += one.waits.intr_fires;
    sum.waits.timeouts += one.waits.timeouts;
  }
  return sum;
}

KvServer::WaitStats KvServer::wait_stats() const { return stats().waits; }

KvServer::WaitStats KvServer::wait_stats(std::uint16_t queue) const {
  return stats(queue).waits;
}

std::uint64_t KvServer::requests() const { return stats().requests; }

std::uint64_t KvServer::ring_messages() const { return stats().ring_messages; }

std::uint64_t KvServer::cross_shard_ops() const {
  return stats().cross_shard_ops;
}

}  // namespace apps
