#include "apps/kvstore.h"

#include <cstring>

namespace apps {

const char* KvModeName(KvMode mode) {
  switch (mode) {
    case KvMode::kSocketSingle: return "socket-single";
    case KvMode::kSocketBatch: return "socket-batch";
    case KvMode::kUkNetdev: return "uknetdev";
    case KvMode::kDpdkStyle: return "dpdk";
  }
  return "?";
}

std::vector<std::uint8_t> EncodeKvRequest(const KvRequest& req) {
  std::vector<std::uint8_t> out;
  out.push_back(req.is_set ? 'S' : 'G');
  out.push_back(static_cast<std::uint8_t>(req.key));
  out.push_back(static_cast<std::uint8_t>(req.key >> 8));
  if (req.is_set) {
    out.push_back(static_cast<std::uint8_t>(req.value.size()));
    out.push_back(static_cast<std::uint8_t>(req.value.size() >> 8));
    out.insert(out.end(), req.value.begin(), req.value.end());
  }
  return out;
}

KvServer::KvServer(posix::PosixApi* api, std::uint16_t port, KvMode mode)
    : mode_(mode), api_(api), port_(port) {}

KvServer::KvServer(uknetdev::NetDev* dev, ukplat::MemRegion* mem,
                   ukalloc::Allocator* alloc, uknet::Ip4Addr ip, std::uint16_t port,
                   KvMode mode)
    : mode_(mode), port_(port), dev_(dev), mem_(mem), alloc_(alloc), ip_(ip) {}

bool KvServer::Start() {
  if (mode_ == KvMode::kSocketSingle || mode_ == KvMode::kSocketBatch) {
    fd_ = api_->Socket(posix::SockType::kDgram);
    return fd_ >= 0 && api_->Bind(fd_, port_) == 0;
  }
  // Raw netdev: own the device completely (§6.4: "we remove the lwip stack
  // and scheduler altogether ... and code against the uknetdev API").
  tx_pool_ = uknetdev::NetBufPool::Create(alloc_, mem_, 512, 2048);
  rx_pool_ = uknetdev::NetBufPool::Create(alloc_, mem_, 512, 2048);
  if (tx_pool_ == nullptr || rx_pool_ == nullptr) {
    return false;
  }
  if (!Ok(dev_->Configure(uknetdev::DevConf{})) ||
      !Ok(dev_->TxQueueSetup(0, uknetdev::TxQueueConf{}))) {
    return false;
  }
  uknetdev::RxQueueConf rxc;
  rxc.buffer_pool = rx_pool_.get();
  if (!Ok(dev_->RxQueueSetup(0, rxc))) {
    return false;
  }
  return Ok(dev_->Start());
}

std::string KvServer::Handle(std::span<const std::uint8_t> payload) {
  if (payload.size() < 3) {
    return "E";
  }
  std::uint16_t key = static_cast<std::uint16_t>(payload[1] | (payload[2] << 8));
  if (payload[0] == 'S') {
    if (payload.size() < 5) {
      return "E";
    }
    std::uint16_t len = static_cast<std::uint16_t>(payload[3] | (payload[4] << 8));
    if (payload.size() < 5u + len) {
      return "E";
    }
    store_[key].assign(reinterpret_cast<const char*>(payload.data() + 5), len);
    return "K";
  }
  if (payload[0] == 'G') {
    auto it = store_.find(key);
    return it == store_.end() ? "E" : it->second;
  }
  return "E";
}

std::size_t KvServer::PumpSocketSingle() {
  std::size_t handled = 0;
  std::uint8_t buf[2048];
  for (int i = 0; i < kBatch; ++i) {  // bounded work per turn, 1 syscall each
    uknet::Ip4Addr src_ip = 0;
    std::uint16_t src_port = 0;
    std::int64_t n = api_->RecvFrom(fd_, buf, &src_ip, &src_port);
    if (n < 0) {
      break;
    }
    std::string reply = Handle(std::span(buf, static_cast<std::size_t>(n)));
    api_->SendTo(fd_, src_ip, src_port,
                 std::span(reinterpret_cast<const std::uint8_t*>(reply.data()),
                           reply.size()));
    ++requests_;
    ++handled;
  }
  return handled;
}

std::size_t KvServer::PumpSocketBatch() {
  std::uint8_t storage[kBatch][2048];
  posix::MmsgRecv msgs[kBatch];
  for (int i = 0; i < kBatch; ++i) {
    msgs[i].data = storage[i];
    msgs[i].cap = sizeof(storage[i]);
  }
  std::int64_t got = api_->RecvMmsg(fd_, msgs);
  if (got <= 0) {
    return 0;
  }
  // One reply batch back (all to the same client in this workload).
  std::vector<std::string> replies(static_cast<std::size_t>(got));
  std::vector<posix::MmsgVec> vecs(static_cast<std::size_t>(got));
  for (std::int64_t i = 0; i < got; ++i) {
    replies[static_cast<std::size_t>(i)] =
        Handle(std::span(msgs[i].data, msgs[i].len));
    vecs[static_cast<std::size_t>(i)] = posix::MmsgVec{
        reinterpret_cast<const std::uint8_t*>(replies[static_cast<std::size_t>(i)].data()),
        replies[static_cast<std::size_t>(i)].size()};
  }
  api_->SendMmsg(fd_, msgs[0].src_ip, msgs[0].src_port, vecs);
  requests_ += static_cast<std::uint64_t>(got);
  return static_cast<std::size_t>(got);
}

std::size_t KvServer::PumpNetdev() {
  using namespace uknet;
  uknetdev::NetBuf* pkts[kBatch];
  std::uint16_t cnt = kBatch;
  dev_->RxBurst(0, pkts, &cnt);
  if (cnt == 0) {
    return 0;
  }
  // DPDK-style framework bookkeeping per burst (mbuf accounting, prefetch
  // scaffolding) — the overhead that makes the kDpdkStyle rows differ.
  uknetdev::NetBuf* replies[kBatch];
  std::uint16_t nreplies = 0;
  for (std::uint16_t i = 0; i < cnt; ++i) {
    uknetdev::NetBuf* nb = pkts[i];
    const std::byte* raw = nb->Data(*mem_);
    std::span<const std::uint8_t> frame(reinterpret_cast<const std::uint8_t*>(raw),
                                        nb->len);
    // Parse Ethernet/IP/UDP by hand (zero-copy views into the netbuf).
    bool done = false;
    if (frame.size() >= kEthHdrBytes + kIp4HdrBytes + kUdpHdrBytes) {
      EthHeader eth = EthHeader::Parse(frame);
      auto ip = Ip4Header::Parse(frame.subspan(kEthHdrBytes));
      if (ip.has_value() && ip->proto == kIpProtoUdp) {
        auto body = frame.subspan(kEthHdrBytes + kIp4HdrBytes,
                                  ip->total_len - kIp4HdrBytes);
        auto udp = UdpHeader::Parse(body, ip->src, ip->dst, false);
        if (udp.has_value() && udp->dst_port == port_) {
          std::string reply =
              Handle(body.subspan(kUdpHdrBytes, udp->length - kUdpHdrBytes));
          // Build the reply frame into a TX buffer.
          uknetdev::NetBuf* out = tx_pool_->Alloc();
          if (out != nullptr) {
            std::size_t total =
                kEthHdrBytes + kIp4HdrBytes + kUdpHdrBytes + reply.size();
            std::byte* dst = mem_->At(out->data_gpa(), total);
            auto* odata = reinterpret_cast<std::uint8_t*>(dst);
            EthHeader oeth{eth.src, dev_->mac(), kEthTypeIp4};
            oeth.Serialize(odata);
            Ip4Header oip;
            oip.total_len = static_cast<std::uint16_t>(total - kEthHdrBytes);
            oip.proto = kIpProtoUdp;
            oip.src = ip_;
            oip.dst = ip->src;
            oip.Serialize(odata + kEthHdrBytes);
            UdpHeader oudp;
            oudp.src_port = port_;
            oudp.dst_port = udp->src_port;
            std::memcpy(odata + kEthHdrBytes + kIp4HdrBytes + kUdpHdrBytes,
                        reply.data(), reply.size());
            oudp.Serialize(odata + kEthHdrBytes + kIp4HdrBytes, ip_, ip->src,
                           std::span(reinterpret_cast<const std::uint8_t*>(reply.data()),
                                     reply.size()));
            out->len = static_cast<std::uint32_t>(total);
            replies[nreplies++] = out;
            ++requests_;
            done = true;
          }
        }
      }
    }
    (void)done;
    nb->pool->Free(nb);
  }
  if (nreplies > 0) {
    std::uint16_t sent = nreplies;
    dev_->TxBurst(0, replies, &sent);
    for (std::uint16_t i = sent; i < nreplies; ++i) {
      tx_pool_->Free(replies[i]);  // unsent buffers return to the pool
    }
  }
  return cnt;
}

std::size_t KvServer::PumpOnce() {
  switch (mode_) {
    case KvMode::kSocketSingle: return PumpSocketSingle();
    case KvMode::kSocketBatch: return PumpSocketBatch();
    case KvMode::kUkNetdev:
    case KvMode::kDpdkStyle: return PumpNetdev();
  }
  return 0;
}

}  // namespace apps
