// apps/stream_server.h - the shared TCP stream-server scaffold.
//
// RedisServer, HttpServer and the tab5 event-loop echo grew three identical
// copies of the same machinery: drain the accept queue on kEvtAcceptable,
// recv-loop each readable connection, flush a pending-output buffer with
// interest tracking (watch kEvtWritable only while bytes are backlogged so an
// idle connection lets the loop sleep), and close after the drain once the
// peer sent FIN or the app asked for teardown. This scaffold is that copy,
// extracted once, with the protocol reduced to three callbacks.
//
// It is also the fork point for SMP scale-out (§6): the scaffold does not own
// its EventLoop, so N instances can ride N per-queue loops while a steering
// hook on the listening instance hands each accepted fd to the instance whose
// loop owns the connection's RSS queue (accept-steer-dispatch) — every loop
// runs this one code path.
#ifndef APPS_STREAM_SERVER_H_
#define APPS_STREAM_SERVER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "apps/event_loop.h"
#include "posix/api.h"
#include "uknet/stack.h"

namespace apps {

class StreamServer {
 public:
  struct Conn {
    int fd = -1;
    // Handler-owned scratch: the scaffold never reads or writes |in| or
    // |user| — byte-assembling protocols (HTTP) buffer partial requests in
    // |in|, stateful parsers (RESP) live behind |user|.
    std::string in;
    std::shared_ptr<void> user;
    // Scaffold-owned: bytes appended by the handler are flushed with
    // interest tracking; |want_close| closes once the backlog drains.
    std::string out;
    bool peer_eof = false;
    bool want_close = false;
    // Scaffold-owned: set when the connection announced itself as balancer
    // health-probe traffic (kProbePreamble as its first bytes). Protocol
    // handlers consult it to keep probes out of their request stats.
    bool probe = false;
    bool preamble_checked = false;
    uknet::EventMask interest = uknet::kEvtReadable;
  };

  struct Handler {
    // Ran once per accepted/adopted connection; seed c.user here.
    std::function<void(Conn&)> on_open;
    // Ran per received chunk: consume |data| (and/or buffer it in c.in),
    // append replies to c.out, set c.want_close to close after the flush.
    std::function<void(Conn&, std::string_view data)> on_data;
    // Ran right before the fd closes (error, FIN, or want_close).
    std::function<void(Conn&)> on_close;
  };

  // Steering hook for the listening instance: maps a freshly accepted fd to
  // the StreamServer that must own it (return this/nullptr to keep it local).
  // The chosen instance may run on another loop; the caller is responsible
  // for waking that loop (NetStack::RaiseQueueEvent on its queue).
  using Steer = std::function<StreamServer*(int fd)>;

  StreamServer(posix::PosixApi* api, EventLoop* loop, Handler handler)
      : api_(api), loop_(loop), handler_(std::move(handler)) {}
  ~StreamServer();

  StreamServer(const StreamServer&) = delete;
  StreamServer& operator=(const StreamServer&) = delete;

  // Binds, listens and registers the acceptor with the loop. One listening
  // instance per port; sharded siblings receive their fds via Adopt.
  bool Listen(std::uint16_t port);
  void SetSteer(Steer steer) { steer_ = std::move(steer); }

  // Registers an fd accepted elsewhere (the steering acceptor) with this
  // instance's loop and runs on_open. False when the loop cannot watch it
  // (the fd is closed — an unregistered conn would leak).
  bool Adopt(int fd);

  // Health-probe announcement: a connection whose first received bytes are
  // exactly this preamble is marked Conn::probe and counted in probe_conns()
  // instead of polluting protocol stats; the bytes after the preamble flow to
  // the handler as normal. The balancer sends preamble+request in one write,
  // so the scaffold only tests the first chunk of a connection.
  static constexpr std::string_view kProbePreamble = "\x01PROBE\x01";

  // Appends bytes to |fd|'s pending output and flushes with interest
  // tracking — for proxy-style apps that produce data for a connection from
  // outside its own on_data dispatch (an upstream replied). Returns false if
  // the fd is not a connection of this server.
  bool Submit(int fd, std::string_view data);

  // Closes |fd| once its pending output drains (immediately if none).
  void CloseAfterFlush(int fd);

  // Immediate teardown: runs on_close, deregisters and closes the fd now,
  // discarding any unflushed output (dead-upstream path).
  void Close(int fd);

  // The connection state for |fd|, or nullptr. Valid until the next close.
  Conn* Find(int fd) {
    auto it = conns_.find(fd);
    return it == conns_.end() ? nullptr : &it->second;
  }

  std::size_t connections() const { return conns_.size(); }
  std::uint64_t accepted() const { return accepted_; }
  std::uint64_t probe_conns() const { return probe_conns_; }
  int listen_fd() const { return listen_fd_; }
  EventLoop* loop() { return loop_; }

 private:
  void OnAcceptable();
  void OnConnEvent(int fd, uknet::EventMask events);
  void CloseConn(int fd);
  // Flushes pending replies; keeps kEvtWritable interest while bytes remain.
  void FlushOut(int fd, Conn& conn);

  posix::PosixApi* api_;
  EventLoop* loop_;
  Handler handler_;
  Steer steer_;
  int listen_fd_ = -1;
  std::map<int, Conn> conns_;
  std::uint64_t accepted_ = 0;
  std::uint64_t probe_conns_ = 0;
};

}  // namespace apps

#endif  // APPS_STREAM_SERVER_H_
