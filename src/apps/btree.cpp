#include "apps/btree.h"

#include <cstring>
#include <new>

namespace apps {

// Node layouts. Leaves store value pointers (length-prefixed allocator
// buffers); inners store child pointers.
struct BTree::Node {
  bool is_leaf = true;
  int count = 0;  // keys in use
  std::int64_t keys[kOrder];
};

struct BTree::Leaf : BTree::Node {
  std::byte* values[kOrder];  // each: [u32 len][payload...]
  Leaf* next = nullptr;       // leaf chaining for scans
};

struct BTree::Inner : BTree::Node {
  Node* children[kOrder + 1];
};

BTree::BTree(ukalloc::Allocator* alloc) : alloc_(alloc) { root_ = NewLeaf(); }

BTree::~BTree() {
  if (root_ != nullptr) {
    DestroySubtree(root_);
  }
}

BTree::Node* BTree::NewLeaf() {
  void* mem = alloc_->Malloc(sizeof(Leaf));
  if (mem == nullptr) {
    return nullptr;
  }
  ++nodes_;
  auto* leaf = new (mem) Leaf();
  leaf->is_leaf = true;
  return leaf;
}

BTree::Node* BTree::NewInner() {
  void* mem = alloc_->Malloc(sizeof(Inner));
  if (mem == nullptr) {
    return nullptr;
  }
  ++nodes_;
  auto* inner = new (mem) Inner();
  inner->is_leaf = false;
  return inner;
}

void BTree::FreeNode(Node* n) {
  --nodes_;
  alloc_->Free(n);
}

void BTree::FreeValue(std::byte* v) { alloc_->Free(v); }

void BTree::DestroySubtree(Node* n) {
  if (n->is_leaf) {
    auto* leaf = static_cast<Leaf*>(n);
    for (int i = 0; i < leaf->count; ++i) {
      FreeValue(leaf->values[i]);
    }
  } else {
    auto* inner = static_cast<Inner*>(n);
    for (int i = 0; i <= inner->count; ++i) {
      DestroySubtree(inner->children[i]);
    }
  }
  FreeNode(n);
}

namespace {
// First index with key >= target.
int LowerBound(const std::int64_t* keys, int count, std::int64_t target) {
  int lo = 0;
  int hi = count;
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (keys[mid] < target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}
}  // namespace

BTree::SplitResult BTree::InsertRec(Node* n, std::int64_t key,
                                    std::span<const std::byte> value) {
  SplitResult result;
  if (n->is_leaf) {
    auto* leaf = static_cast<Leaf*>(n);
    int idx = LowerBound(leaf->keys, leaf->count, key);
    if (idx < leaf->count && leaf->keys[idx] == key) {
      // Overwrite in place.
      auto* buf = static_cast<std::byte*>(alloc_->Malloc(4 + value.size()));
      if (buf == nullptr) {
        result.ok = false;
        return result;
      }
      std::uint32_t len = static_cast<std::uint32_t>(value.size());
      std::memcpy(buf, &len, 4);
      std::memcpy(buf + 4, value.data(), value.size());
      FreeValue(leaf->values[idx]);
      leaf->values[idx] = buf;
      return result;
    }
    auto* buf = static_cast<std::byte*>(alloc_->Malloc(4 + value.size()));
    if (buf == nullptr) {
      result.ok = false;
      return result;
    }
    std::uint32_t len = static_cast<std::uint32_t>(value.size());
    std::memcpy(buf, &len, 4);
    std::memcpy(buf + 4, value.data(), value.size());
    // Shift in.
    for (int i = leaf->count; i > idx; --i) {
      leaf->keys[i] = leaf->keys[i - 1];
      leaf->values[i] = leaf->values[i - 1];
    }
    leaf->keys[idx] = key;
    leaf->values[idx] = buf;
    ++leaf->count;
    ++size_;
    if (leaf->count < kOrder) {
      return result;
    }
    // Split the leaf.
    auto* right = static_cast<Leaf*>(NewLeaf());
    if (right == nullptr) {
      result.ok = false;
      return result;
    }
    int half = leaf->count / 2;
    right->count = leaf->count - half;
    for (int i = 0; i < right->count; ++i) {
      right->keys[i] = leaf->keys[half + i];
      right->values[i] = leaf->values[half + i];
    }
    leaf->count = half;
    right->next = leaf->next;
    leaf->next = right;
    result.split = true;
    result.sep = right->keys[0];
    result.right = right;
    return result;
  }

  auto* inner = static_cast<Inner*>(n);
  int idx = LowerBound(inner->keys, inner->count, key);
  if (idx < inner->count && inner->keys[idx] == key) {
    ++idx;  // equal separator: key lives in the right child
  }
  SplitResult child = InsertRec(inner->children[idx], key, value);
  if (!child.ok) {
    result.ok = false;
    return result;
  }
  if (!child.split) {
    return result;
  }
  // Install the new separator + right child.
  for (int i = inner->count; i > idx; --i) {
    inner->keys[i] = inner->keys[i - 1];
    inner->children[i + 1] = inner->children[i];
  }
  inner->keys[idx] = child.sep;
  inner->children[idx + 1] = child.right;
  ++inner->count;
  if (inner->count < kOrder) {
    return result;
  }
  // Split the inner node; middle key moves up.
  auto* right = static_cast<Inner*>(NewInner());
  if (right == nullptr) {
    result.ok = false;
    return result;
  }
  int mid = inner->count / 2;
  result.split = true;
  result.sep = inner->keys[mid];
  right->count = inner->count - mid - 1;
  for (int i = 0; i < right->count; ++i) {
    right->keys[i] = inner->keys[mid + 1 + i];
  }
  for (int i = 0; i <= right->count; ++i) {
    right->children[i] = inner->children[mid + 1 + i];
  }
  inner->count = mid;
  result.right = right;
  return result;
}

bool BTree::Insert(std::int64_t key, std::span<const std::byte> value) {
  if (root_ == nullptr) {
    return false;
  }
  SplitResult top = InsertRec(root_, key, value);
  if (!top.ok) {
    return false;
  }
  if (top.split) {
    auto* new_root = static_cast<Inner*>(NewInner());
    if (new_root == nullptr) {
      return false;
    }
    new_root->count = 1;
    new_root->keys[0] = top.sep;
    new_root->children[0] = root_;
    new_root->children[1] = top.right;
    root_ = new_root;
    ++height_;
  }
  return true;
}

std::optional<BTree::Payload> BTree::Find(std::int64_t key) const {
  const Node* n = root_;
  while (n != nullptr && !n->is_leaf) {
    const auto* inner = static_cast<const Inner*>(n);
    int idx = LowerBound(inner->keys, inner->count, key);
    if (idx < inner->count && inner->keys[idx] == key) {
      ++idx;
    }
    n = inner->children[idx];
  }
  if (n == nullptr) {
    return std::nullopt;
  }
  const auto* leaf = static_cast<const Leaf*>(n);
  int idx = LowerBound(leaf->keys, leaf->count, key);
  if (idx >= leaf->count || leaf->keys[idx] != key) {
    return std::nullopt;
  }
  std::uint32_t len = 0;
  std::memcpy(&len, leaf->values[idx], 4);
  return Payload{leaf->values[idx] + 4, len};
}

bool BTree::Erase(std::int64_t key) {
  // Lazy deletion from the leaf (no rebalancing — ukdb workloads are
  // insert/lookup heavy; underfull leaves are tolerated like SQLite's
  // free-at-close strategy for small tables).
  Node* n = root_;
  while (n != nullptr && !n->is_leaf) {
    auto* inner = static_cast<Inner*>(n);
    int idx = LowerBound(inner->keys, inner->count, key);
    if (idx < inner->count && inner->keys[idx] == key) {
      ++idx;
    }
    n = inner->children[idx];
  }
  if (n == nullptr) {
    return false;
  }
  auto* leaf = static_cast<Leaf*>(n);
  int idx = LowerBound(leaf->keys, leaf->count, key);
  if (idx >= leaf->count || leaf->keys[idx] != key) {
    return false;
  }
  FreeValue(leaf->values[idx]);
  for (int i = idx; i < leaf->count - 1; ++i) {
    leaf->keys[i] = leaf->keys[i + 1];
    leaf->values[i] = leaf->values[i + 1];
  }
  --leaf->count;
  --size_;
  return true;
}

void BTree::Scan(std::int64_t lo, std::int64_t hi,
                 const std::function<bool(std::int64_t, Payload)>& fn) const {
  // Descend to the leaf containing lo, then walk the chain.
  const Node* n = root_;
  while (n != nullptr && !n->is_leaf) {
    const auto* inner = static_cast<const Inner*>(n);
    int idx = LowerBound(inner->keys, inner->count, lo);
    if (idx < inner->count && inner->keys[idx] == lo) {
      ++idx;
    }
    n = inner->children[idx];
  }
  const auto* leaf = static_cast<const Leaf*>(n);
  while (leaf != nullptr) {
    for (int i = 0; i < leaf->count; ++i) {
      if (leaf->keys[i] < lo) {
        continue;
      }
      if (leaf->keys[i] > hi) {
        return;
      }
      std::uint32_t len = 0;
      std::memcpy(&len, leaf->values[i], 4);
      if (!fn(leaf->keys[i], Payload{leaf->values[i] + 4, len})) {
        return;
      }
    }
    leaf = leaf->next;
  }
}

bool BTree::CheckInvariants() const {
  // Walk the leaf chain: keys strictly increasing globally.
  const Node* n = root_;
  while (n != nullptr && !n->is_leaf) {
    n = static_cast<const Inner*>(n)->children[0];
  }
  const auto* leaf = static_cast<const Leaf*>(n);
  bool first = true;
  std::int64_t prev = 0;
  std::size_t counted = 0;
  while (leaf != nullptr) {
    for (int i = 0; i < leaf->count; ++i) {
      if (!first && leaf->keys[i] <= prev) {
        return false;
      }
      prev = leaf->keys[i];
      first = false;
      ++counted;
    }
    leaf = leaf->next;
  }
  return counted == size_;
}

}  // namespace apps
