// uklibc/profiles.h - libc environments for automated-porting resolution.
//
// §4 of the paper builds applications with their native build systems and
// links the object archives against Unikraft with musl or newlib, with or
// without a glibc-compatibility layer. Whether a library links is a pure
// symbol-resolution question, so Table 2 is reproduced by an actual resolver
// (uklibc/porting.h) over the symbol sets defined here.
#ifndef UKLIBC_PROFILES_H_
#define UKLIBC_PROFILES_H_

#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace uklibc {

enum class Libc { kNolibc, kNewlib, kMusl };
const char* LibcName(Libc l);

// Symbol groups, from universally available to glibc-only.
enum class SymbolGroup {
  kCore,        // memcpy/strlen/malloc/printf — every libc
  kPosix,       // open/socket/pthread_create — musl yes, newlib partial
  kPosixWide,   // getaddrinfo/epoll/eventfd wrappers — musl yes, newlib no
  kGlibcChk,    // __*_chk fortify aliases — only the compat layer
  kGlibc64,     // pread64/pwrite64/fopen64 LFS aliases — only the compat layer
  kGlibcMisc,   // qsort_r, __libc_start_main... — only the compat layer
};

// Representative concrete symbols per group (the resolver works on names).
const std::vector<std::string>& SymbolsInGroup(SymbolGroup g);

struct LibcProfile {
  Libc libc;
  bool glibc_compat_layer;

  // True if |symbol| resolves in this environment.
  bool Provides(std::string_view symbol) const;
  // All symbols this environment exports.
  std::set<std::string> AllSymbols() const;

  std::string DisplayName() const;
};

}  // namespace uklibc

#endif  // UKLIBC_PROFILES_H_
