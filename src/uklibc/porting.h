// uklibc/porting.h - the automated-porting resolver behind Table 2.
//
// Each external library ships a manifest of symbols its pre-built archive
// imports (what `nm -u` would show) plus per-libc image sizes and the glue
// LoC the paper reports. Resolve() replays the final Unikraft link step:
// a port succeeds iff no imported symbol stays undefined.
#ifndef UKLIBC_PORTING_H_
#define UKLIBC_PORTING_H_

#include <string>
#include <vector>

#include "uklibc/profiles.h"

namespace uklibc {

struct LibraryManifest {
  std::string name;
  std::vector<std::string> required_symbols;
  double musl_image_mb = 0.0;    // Table 2 "Size (MB)" under musl
  double newlib_image_mb = 0.0;  // and under newlib
  int glue_loc = 0;              // hand-written glue code lines
  bool newlib_std_builds = false;  // ✓/✗ under plain newlib in the paper
};

struct ResolveResult {
  bool success = false;
  std::vector<std::string> missing_symbols;
};

// Links |lib| against |env|; success iff every import resolves.
ResolveResult Resolve(const LibraryManifest& lib, const LibcProfile& env);

// The 24 libraries of Table 2 with their manifests.
const std::vector<LibraryManifest>& Table2Libraries();

}  // namespace uklibc

#endif  // UKLIBC_PORTING_H_
