#include "uklibc/porting.h"

namespace uklibc {

ResolveResult Resolve(const LibraryManifest& lib, const LibcProfile& env) {
  ResolveResult result;
  for (const std::string& sym : lib.required_symbols) {
    if (!env.Provides(sym)) {
      result.missing_symbols.push_back(sym);
    }
  }
  result.success = result.missing_symbols.empty();
  // The paper's newlib column is not purely symbol-driven (newlib stubs exist
  // but return failures); manifests carry the observed outcome and we only
  // allow symbol resolution to *refute* a claimed success, never to invent
  // one for plain newlib.
  if (env.libc == Libc::kNewlib && !env.glibc_compat_layer && !lib.newlib_std_builds) {
    result.success = false;
    if (result.missing_symbols.empty()) {
      result.missing_symbols.push_back("(newlib stub failure)");
    }
  }
  return result;
}

const std::vector<LibraryManifest>& Table2Libraries() {
  // Import sets modeled per library family: pure-compute libraries need only
  // core symbols; network/server code pulls wide-POSIX; anything built from a
  // distro-style build system picks up fortify (__*_chk) and LFS (64-suffix)
  // references, which is exactly why the "std" musl column fails in Table 2.
  auto core = [](std::initializer_list<const char*> extra) {
    std::vector<std::string> v = {"memcpy", "strlen", "malloc", "free", "printf"};
    v.insert(v.end(), extra.begin(), extra.end());
    return v;
  };
  static const std::vector<LibraryManifest> kLibs = {
      {"lib-axtls", core({"socket", "read", "__memcpy_chk"}), 0.364, 0.436, 0, false},
      {"lib-bzip2", core({"open", "__printf_chk"}), 0.324, 0.388, 0, false},
      {"lib-c-ares", core({"getaddrinfo", "socket", "__sprintf_chk"}), 0.328, 0.424, 0,
       false},
      {"lib-duktape", core({"qsort", "snprintf"}), 0.756, 0.856, 7, false},
      {"lib-farmhash", core({}), 0.256, 0.340, 0, true},
      {"lib-fft2d", core({"qsort"}), 0.364, 0.440, 0, false},
      {"lib-helloworld", core({}), 0.248, 0.332, 0, true},
      {"lib-httpreply", core({"socket", "send", "recv"}), 0.252, 0.372, 0, false},
      {"lib-libucontext", core({"mmap"}), 0.248, 0.332, 0, false},
      {"lib-libunwind", core({}), 0.248, 0.328, 0, true},
      {"lib-lighttpd", core({"epoll_create1", "writev", "__fprintf_chk", "pread64"}),
       0.676, 0.788, 6, false},
      {"lib-memcached", core({"socket", "sendmsg", "__snprintf_chk", "eventfd"}), 0.536,
       0.660, 6, false},
      {"lib-micropython", core({"qsort", "snprintf"}), 0.648, 0.708, 7, false},
      {"lib-nginx", core({"epoll_wait", "writev", "pread64", "__printf_chk",
                          "sendmsg"}),
       0.704, 0.792, 5, false},
      {"lib-open62541", core({}), 0.252, 0.336, 13, true},
      {"lib-openssl", core({"pthread_create", "__memcpy_chk", "stat64"}), 2.9, 3.0, 0,
       false},
      {"lib-pcre", core({"qsort"}), 0.356, 0.432, 0, false},
      {"lib-python3", core({"dlopen", "qsort_r", "__isoc99_sscanf", "pread64"}), 3.1,
       3.2, 26, false},
      {"lib-redis-client", core({"socket", "connect", "__printf_chk"}), 0.660, 0.764,
       29, false},
      {"lib-redis-server", core({"epoll_wait", "writev", "__printf_chk", "fopen64"}),
       1.3, 1.4, 32, false},
      {"lib-ruby", core({"dlopen", "qsort_r", "backtrace", "pread64"}), 5.6, 5.7, 37,
       false},
      {"lib-sqlite", core({"pread64", "pwrite64", "open"}), 1.4, 1.4, 5, false},
      {"lib-zlib", core({"open", "__memcpy_chk"}), 0.368, 0.432, 0, false},
      {"lib-zydis", core({"snprintf"}), 0.688, 0.756, 0, false},
  };
  return kLibs;
}

}  // namespace uklibc
