#include "uklibc/profiles.h"

#include <map>

namespace uklibc {

const char* LibcName(Libc l) {
  switch (l) {
    case Libc::kNolibc: return "nolibc";
    case Libc::kNewlib: return "newlib";
    case Libc::kMusl: return "musl";
  }
  return "?";
}

const std::vector<std::string>& SymbolsInGroup(SymbolGroup g) {
  static const std::map<SymbolGroup, std::vector<std::string>> kGroups = {
      {SymbolGroup::kCore,
       {"memcpy", "memset", "memmove", "strlen", "strcmp", "strncpy", "strchr",
        "malloc", "free", "calloc", "realloc", "printf", "snprintf", "sprintf",
        "fprintf", "qsort", "abort", "exit", "atoi", "strtol", "memcmp", "strstr"}},
      {SymbolGroup::kPosix,
       {"open", "read", "write", "close", "lseek", "stat", "fstat", "unlink",
        "mkdir", "opendir", "readdir", "socket", "bind", "listen", "accept",
        "connect", "send", "recv", "setsockopt", "pthread_create", "pthread_join",
        "pthread_mutex_lock", "pthread_mutex_unlock", "gettimeofday", "time",
        "clock_gettime", "sigaction", "mmap", "munmap", "fcntl", "poll", "select",
        "dup2", "pipe", "getenv", "setenv"}},
      {SymbolGroup::kPosixWide,
       {"getaddrinfo", "freeaddrinfo", "getnameinfo", "epoll_create1", "epoll_ctl",
        "epoll_wait", "eventfd", "inet_ntop", "inet_pton", "if_nametoindex",
        "getifaddrs", "sendmsg", "recvmsg", "writev", "readv", "sysconf", "dlopen",
        "dlsym", "realpath", "nanosleep", "sched_yield"}},
      {SymbolGroup::kGlibcChk,
       {"__printf_chk", "__fprintf_chk", "__sprintf_chk", "__snprintf_chk",
        "__memcpy_chk", "__memset_chk", "__strcpy_chk", "__strncpy_chk",
        "__strcat_chk", "__read_chk", "__vfprintf_chk", "__explicit_bzero_chk"}},
      {SymbolGroup::kGlibc64,
       {"pread64", "pwrite64", "fopen64", "lseek64", "mmap64", "open64", "ftello64",
        "fseeko64", "stat64", "fstat64", "readdir64", "truncate64"}},
      {SymbolGroup::kGlibcMisc,
       {"qsort_r", "__libc_start_main", "secure_getenv", "gnu_get_libc_version",
        "__register_atfork", "backtrace", "error", "err", "warn",
        "program_invocation_name", "__isoc99_sscanf", "__isoc99_fscanf"}},
  };
  return kGroups.at(g);
}

namespace {

bool GroupProvided(const LibcProfile& p, SymbolGroup g) {
  switch (g) {
    case SymbolGroup::kCore:
      return true;  // even nolibc carries the core set (paper §3: memcpy etc.)
    case SymbolGroup::kPosix:
      return p.libc != Libc::kNolibc;
    case SymbolGroup::kPosixWide:
      // newlib is an embedded libc: the wide-POSIX surface is simply absent
      // ("many glibc functions are not implemented at all", §4) unless the
      // compat layer supplies syscall-backed implementations.
      return p.libc == Libc::kMusl || (p.libc == Libc::kNewlib && p.glibc_compat_layer);
    case SymbolGroup::kGlibcChk:
    case SymbolGroup::kGlibc64:
    case SymbolGroup::kGlibcMisc:
      return p.glibc_compat_layer;
  }
  return false;
}

}  // namespace

bool LibcProfile::Provides(std::string_view symbol) const {
  for (SymbolGroup g : {SymbolGroup::kCore, SymbolGroup::kPosix, SymbolGroup::kPosixWide,
                        SymbolGroup::kGlibcChk, SymbolGroup::kGlibc64,
                        SymbolGroup::kGlibcMisc}) {
    if (!GroupProvided(*this, g)) {
      continue;
    }
    for (const std::string& s : SymbolsInGroup(g)) {
      if (s == symbol) {
        return true;
      }
    }
  }
  return false;
}

std::set<std::string> LibcProfile::AllSymbols() const {
  std::set<std::string> out;
  for (SymbolGroup g : {SymbolGroup::kCore, SymbolGroup::kPosix, SymbolGroup::kPosixWide,
                        SymbolGroup::kGlibcChk, SymbolGroup::kGlibc64,
                        SymbolGroup::kGlibcMisc}) {
    if (!GroupProvided(*this, g)) {
      continue;
    }
    for (const std::string& s : SymbolsInGroup(g)) {
      out.insert(s);
    }
  }
  return out;
}

std::string LibcProfile::DisplayName() const {
  std::string name = LibcName(libc);
  if (glibc_compat_layer) {
    name += "+compat";
  }
  return name;
}

}  // namespace uklibc
