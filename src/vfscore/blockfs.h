// vfscore/blockfs.h - a writable filesystem over the ukblockdev queue API.
//
// This is the persistence tier's root: where ramfs keeps file bytes on the
// instance heap (wiped by every ukboot::Instance reboot), blockfs keeps them
// on a BlockDev whose backing image lives host-side and therefore *survives*
// Shutdown()+Boot(). The fleet testbed mounts one per backend at the kRootfs
// inittab stage so snapshot/AOF files written before a kill are readable by
// the reborn incarnation.
//
// On-disk layout (4 KiB blocks over 512 B sectors):
//   block 0            superblock (magic, geometry, inode count)
//   block 1            allocation bitmap (one byte per block)
//   blocks 2..3        inode table: 64 fixed slots, flat root directory
//   blocks 4..         data, addressed by 12 direct + 1 single-indirect
//                      pointer per inode (max file ≈ 4.04 MiB)
//
// Metadata is write-through: every namespace or size change rewrites the
// affected metadata block synchronously (SubmitAndWait), so a remount —
// even from a brand-new BlockFs object after a reboot — reconstructs the
// exact tree from disk. Node::Fsync issues a Request::Op::kFlush barrier,
// which is what vfscore::File::Fsync rides.
#ifndef VFSCORE_BLOCKFS_H_
#define VFSCORE_BLOCKFS_H_

#include <cstring>
#include <memory>
#include <vector>

#include "ukblockdev/blockdev.h"
#include "ukplat/memregion.h"
#include "vfscore/node.h"

namespace vfscore {

class BlockFs final : public FsDriver {
 public:
  static constexpr std::uint32_t kBlockBytes = 4096;
  static constexpr std::uint32_t kMaxInodes = 64;
  static constexpr std::uint32_t kNameMax = 62;
  static constexpr std::uint32_t kDirectPtrs = 12;
  static constexpr std::uint32_t kIndirectPtrs = kBlockBytes / 4;
  static constexpr std::uint64_t kMaxFileBytes =
      std::uint64_t{kDirectPtrs + kIndirectPtrs} * kBlockBytes;

  // |mem| provides the bounce buffer the block requests address (devices
  // speak guest-physical); one block is carved at construction.
  BlockFs(ukblockdev::BlockDev* dev, ukplat::MemRegion* mem);

  const char* fs_name() const override { return "blockfs"; }
  // Loads the superblock + metadata from disk. kInval when the device does
  // not carry a valid blockfs image (callers format first).
  ukarch::Status Mount(std::shared_ptr<Node>* root) override;

  // Writes a fresh empty filesystem over the device.
  ukarch::Status Format();
  // Format() only when no valid superblock is present — the idempotent boot
  // entry point: first boot formats, reboots find their data.
  ukarch::Status EnsureFormatted();

  // Device write-cache barrier (Request::Op::kFlush through the queue).
  ukarch::Status Flush();

  std::uint32_t total_blocks() const { return total_blocks_; }
  std::uint32_t free_blocks() const;

 private:
  friend class BlockFsFile;
  friend class BlockFsDir;

#pragma pack(push, 1)
  struct Super {
    char magic[8];
    std::uint32_t block_bytes;
    std::uint32_t total_blocks;
    std::uint32_t inode_count;
    std::uint32_t data_start;
  };
  struct Inode {
    std::uint8_t used;
    std::uint8_t name_len;
    char name[kNameMax];
    std::uint64_t size;
    std::uint32_t direct[kDirectPtrs];
    std::uint32_t indirect;
    std::uint32_t pad;
  };
#pragma pack(pop)
  static_assert(sizeof(Inode) == 128, "inode slots must pack 32 per block");

  static constexpr std::uint32_t kSuperBlock = 0;
  static constexpr std::uint32_t kBitmapBlock = 1;
  static constexpr std::uint32_t kInodeStart = 2;
  static constexpr std::uint32_t kInodeBlocks =
      kMaxInodes * sizeof(Inode) / kBlockBytes;
  static constexpr std::uint32_t kDataStart = kInodeStart + kInodeBlocks;
  static constexpr char kMagic[8] = {'U', 'K', 'B', 'F', 'S', '0', '1', '\0'};

  // Whole-block transfers through the bounce buffer.
  ukarch::Status ReadBlock(std::uint32_t block, void* out);
  ukarch::Status WriteBlock(std::uint32_t block, const void* in);

  // Write-through metadata updaters (cache is authoritative in memory,
  // mirrored to disk on every change).
  ukarch::Status WriteInode(std::uint32_t idx);
  ukarch::Status WriteBitmap();

  std::uint32_t AllocBlock();            // 0 when full (0 is never a data block)
  void FreeBlock(std::uint32_t block);

  // Block-pointer plumbing for one inode; |pos| indexes the file's blocks.
  std::uint32_t GetPtr(const Inode& ino, std::uint32_t pos);
  ukarch::Status SetPtr(std::uint32_t inode_idx, std::uint32_t pos,
                        std::uint32_t block);
  // Frees every data block from |first_pos| on (plus the indirect block when
  // it empties) and mirrors the metadata.
  ukarch::Status FreeRange(std::uint32_t inode_idx, std::uint32_t first_pos);

  ukblockdev::BlockDev* dev_;
  ukplat::MemRegion* mem_;
  std::uint64_t bounce_gpa_;
  std::uint32_t sectors_per_block_ = 0;
  std::uint32_t total_blocks_ = 0;
  bool mounted_ = false;
  std::vector<Inode> inodes_;
  std::vector<std::uint8_t> bitmap_;
};

}  // namespace vfscore

#endif  // VFSCORE_BLOCKFS_H_
