#include "vfscore/blockfs.h"

#include <algorithm>

namespace vfscore {

// ---- node classes -----------------------------------------------------------

// A regular file: all state lives in the filesystem's inode cache (index
// |idx|) and on disk; the node object itself is a stateless handle, so any
// number of opens — across remounts of the same BlockFs — stay coherent.
class BlockFsFile final : public Node {
 public:
  BlockFsFile(BlockFs* fs, std::uint32_t idx) : fs_(fs), idx_(idx) {}

  NodeType type() const override { return NodeType::kRegular; }
  NodeStat Stat() const override {
    return NodeStat{NodeType::kRegular, fs_->inodes_[idx_].size, idx_ + 1};
  }
  std::int64_t Read(std::uint64_t offset, std::span<std::byte> out) override;
  std::int64_t Write(std::uint64_t offset, std::span<const std::byte> in) override;
  ukarch::Status Truncate(std::uint64_t size) override;
  ukarch::Status Fsync() override { return fs_->Flush(); }

 private:
  BlockFs* fs_;
  std::uint32_t idx_;
};

// The flat root directory: names map straight onto inode-table slots.
class BlockFsDir final : public Node {
 public:
  explicit BlockFsDir(BlockFs* fs) : fs_(fs) {}

  NodeType type() const override { return NodeType::kDirectory; }
  NodeStat Stat() const override {
    std::uint64_t n = 0;
    for (const auto& ino : fs_->inodes_) {
      n += ino.used != 0 ? 1 : 0;
    }
    return NodeStat{NodeType::kDirectory, n, 0};
  }
  ukarch::Status Lookup(std::string_view name, std::shared_ptr<Node>* out) override;
  ukarch::Status Create(std::string_view name, NodeType ntype,
                        std::shared_ptr<Node>* out) override;
  ukarch::Status Remove(std::string_view name) override;
  ukarch::Status ReadDir(std::vector<DirEntry>* out) override;
  ukarch::Status Fsync() override { return fs_->Flush(); }

 private:
  std::int32_t Find(std::string_view name) const;

  BlockFs* fs_;
};

// ---- BlockFs: device plumbing ----------------------------------------------

BlockFs::BlockFs(ukblockdev::BlockDev* dev, ukplat::MemRegion* mem)
    : dev_(dev), mem_(mem), bounce_gpa_(mem->Carve(kBlockBytes, 512)) {
  const ukblockdev::Geometry geom = dev_->geometry();
  if (geom.sector_bytes != 0 && kBlockBytes % geom.sector_bytes == 0) {
    sectors_per_block_ = kBlockBytes / geom.sector_bytes;
    total_blocks_ = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(geom.TotalBytes() / kBlockBytes, kBlockBytes));
  }
}

ukarch::Status BlockFs::ReadBlock(std::uint32_t block, void* out) {
  ukblockdev::Request req;
  req.op = ukblockdev::Request::Op::kRead;
  req.sector = std::uint64_t{block} * sectors_per_block_;
  req.count = sectors_per_block_;
  req.data_gpa = bounce_gpa_;
  if (ukblockdev::SubmitAndWait(*dev_, &req) != 0) {
    return ukarch::Status::kIo;
  }
  const std::byte* p = mem_->At(bounce_gpa_, kBlockBytes);
  if (p == nullptr) {
    return ukarch::Status::kFault;
  }
  std::memcpy(out, p, kBlockBytes);
  return ukarch::Status::kOk;
}

ukarch::Status BlockFs::WriteBlock(std::uint32_t block, const void* in) {
  std::byte* p = mem_->At(bounce_gpa_, kBlockBytes);
  if (p == nullptr) {
    return ukarch::Status::kFault;
  }
  std::memcpy(p, in, kBlockBytes);
  ukblockdev::Request req;
  req.op = ukblockdev::Request::Op::kWrite;
  req.sector = std::uint64_t{block} * sectors_per_block_;
  req.count = sectors_per_block_;
  req.data_gpa = bounce_gpa_;
  return ukblockdev::SubmitAndWait(*dev_, &req) == 0 ? ukarch::Status::kOk
                                                     : ukarch::Status::kIo;
}

ukarch::Status BlockFs::Flush() {
  if (!mounted_) {
    return ukarch::Status::kInval;
  }
  ukblockdev::Request req;
  req.op = ukblockdev::Request::Op::kFlush;
  return ukblockdev::SubmitAndWait(*dev_, &req) == 0 ? ukarch::Status::kOk
                                                     : ukarch::Status::kIo;
}

// ---- BlockFs: format / mount ------------------------------------------------

ukarch::Status BlockFs::Format() {
  if (bounce_gpa_ == ukplat::MemRegion::kBadGpa || sectors_per_block_ == 0 ||
      total_blocks_ <= kDataStart) {
    return ukarch::Status::kInval;
  }
  std::vector<std::uint8_t> block(kBlockBytes, 0);

  Super super{};
  std::memcpy(super.magic, kMagic, sizeof(kMagic));
  super.block_bytes = kBlockBytes;
  super.total_blocks = total_blocks_;
  super.inode_count = kMaxInodes;
  super.data_start = kDataStart;
  std::memcpy(block.data(), &super, sizeof(super));
  ukarch::Status st = WriteBlock(kSuperBlock, block.data());
  if (!Ok(st)) {
    return st;
  }

  // Bitmap: metadata blocks are born allocated, everything after is free.
  std::fill(block.begin(), block.end(), 0);
  for (std::uint32_t b = 0; b < kDataStart; ++b) {
    block[b] = 1;
  }
  st = WriteBlock(kBitmapBlock, block.data());
  if (!Ok(st)) {
    return st;
  }

  std::fill(block.begin(), block.end(), 0);
  for (std::uint32_t b = 0; b < kInodeBlocks; ++b) {
    st = WriteBlock(kInodeStart + b, block.data());
    if (!Ok(st)) {
      return st;
    }
  }
  mounted_ = false;  // force a metadata reload on the next Mount()
  return ukarch::Status::kOk;
}

ukarch::Status BlockFs::EnsureFormatted() {
  if (bounce_gpa_ == ukplat::MemRegion::kBadGpa || sectors_per_block_ == 0 ||
      total_blocks_ <= kDataStart) {
    return ukarch::Status::kInval;
  }
  std::vector<std::uint8_t> block(kBlockBytes, 0);
  ukarch::Status st = ReadBlock(kSuperBlock, block.data());
  if (!Ok(st)) {
    return st;
  }
  Super super{};
  std::memcpy(&super, block.data(), sizeof(super));
  if (std::memcmp(super.magic, kMagic, sizeof(kMagic)) == 0 &&
      super.block_bytes == kBlockBytes) {
    return ukarch::Status::kOk;
  }
  return Format();
}

ukarch::Status BlockFs::Mount(std::shared_ptr<Node>* root) {
  if (!mounted_) {
    if (bounce_gpa_ == ukplat::MemRegion::kBadGpa || sectors_per_block_ == 0 ||
        total_blocks_ <= kDataStart) {
      return ukarch::Status::kInval;
    }
    std::vector<std::uint8_t> block(kBlockBytes, 0);
    ukarch::Status st = ReadBlock(kSuperBlock, block.data());
    if (!Ok(st)) {
      return st;
    }
    Super super{};
    std::memcpy(&super, block.data(), sizeof(super));
    if (std::memcmp(super.magic, kMagic, sizeof(kMagic)) != 0 ||
        super.block_bytes != kBlockBytes || super.inode_count != kMaxInodes ||
        super.total_blocks > total_blocks_) {
      return ukarch::Status::kInval;
    }
    total_blocks_ = super.total_blocks;

    st = ReadBlock(kBitmapBlock, block.data());
    if (!Ok(st)) {
      return st;
    }
    bitmap_.assign(block.begin(), block.end());

    inodes_.assign(kMaxInodes, Inode{});
    for (std::uint32_t b = 0; b < kInodeBlocks; ++b) {
      st = ReadBlock(kInodeStart + b, block.data());
      if (!Ok(st)) {
        return st;
      }
      std::memcpy(inodes_.data() + b * (kBlockBytes / sizeof(Inode)),
                  block.data(), kBlockBytes);
    }
    mounted_ = true;
  }
  *root = std::make_shared<BlockFsDir>(this);
  return ukarch::Status::kOk;
}

// ---- BlockFs: metadata write-through ---------------------------------------

ukarch::Status BlockFs::WriteInode(std::uint32_t idx) {
  const std::uint32_t per_block = kBlockBytes / sizeof(Inode);
  const std::uint32_t block = kInodeStart + idx / per_block;
  return WriteBlock(block, inodes_.data() + (idx / per_block) * per_block);
}

ukarch::Status BlockFs::WriteBitmap() {
  return WriteBlock(kBitmapBlock, bitmap_.data());
}

std::uint32_t BlockFs::AllocBlock() {
  for (std::uint32_t b = kDataStart; b < total_blocks_; ++b) {
    if (bitmap_[b] == 0) {
      bitmap_[b] = 1;
      return b;
    }
  }
  return 0;
}

void BlockFs::FreeBlock(std::uint32_t block) {
  if (block >= kDataStart && block < total_blocks_) {
    bitmap_[block] = 0;
  }
}

std::uint32_t BlockFs::free_blocks() const {
  std::uint32_t n = 0;
  for (std::uint32_t b = kDataStart; b < total_blocks_; ++b) {
    n += bitmap_[b] == 0 ? 1 : 0;
  }
  return n;
}

std::uint32_t BlockFs::GetPtr(const Inode& ino, std::uint32_t pos) {
  if (pos < kDirectPtrs) {
    return ino.direct[pos];
  }
  if (ino.indirect == 0 || pos >= kDirectPtrs + kIndirectPtrs) {
    return 0;
  }
  std::uint32_t ptrs[kIndirectPtrs];
  if (!Ok(ReadBlock(ino.indirect, ptrs))) {
    return 0;
  }
  return ptrs[pos - kDirectPtrs];
}

ukarch::Status BlockFs::SetPtr(std::uint32_t inode_idx, std::uint32_t pos,
                               std::uint32_t block) {
  Inode& ino = inodes_[inode_idx];
  if (pos < kDirectPtrs) {
    ino.direct[pos] = block;
    return WriteInode(inode_idx);
  }
  if (pos >= kDirectPtrs + kIndirectPtrs) {
    return ukarch::Status::kNoSpc;
  }
  if (ino.indirect == 0) {
    const std::uint32_t ind = AllocBlock();
    if (ind == 0) {
      return ukarch::Status::kNoSpc;
    }
    std::uint32_t zero[kIndirectPtrs] = {};
    ukarch::Status st = WriteBlock(ind, zero);
    if (!Ok(st)) {
      return st;
    }
    ino.indirect = ind;
    st = WriteInode(inode_idx);
    if (!Ok(st)) {
      return st;
    }
    st = WriteBitmap();
    if (!Ok(st)) {
      return st;
    }
  }
  std::uint32_t ptrs[kIndirectPtrs];
  ukarch::Status st = ReadBlock(ino.indirect, ptrs);
  if (!Ok(st)) {
    return st;
  }
  ptrs[pos - kDirectPtrs] = block;
  return WriteBlock(ino.indirect, ptrs);
}

ukarch::Status BlockFs::FreeRange(std::uint32_t inode_idx, std::uint32_t first_pos) {
  Inode& ino = inodes_[inode_idx];
  for (std::uint32_t p = first_pos; p < kDirectPtrs; ++p) {
    FreeBlock(ino.direct[p]);
    ino.direct[p] = 0;
  }
  if (ino.indirect != 0) {
    std::uint32_t ptrs[kIndirectPtrs];
    ukarch::Status st = ReadBlock(ino.indirect, ptrs);
    if (!Ok(st)) {
      return st;
    }
    bool any_kept = false;
    const std::uint32_t ind_first =
        first_pos > kDirectPtrs ? first_pos - kDirectPtrs : 0;
    for (std::uint32_t p = 0; p < kIndirectPtrs; ++p) {
      if (p >= ind_first) {
        FreeBlock(ptrs[p]);
        ptrs[p] = 0;
      } else if (ptrs[p] != 0) {
        any_kept = true;
      }
    }
    if (any_kept) {
      st = WriteBlock(ino.indirect, ptrs);
      if (!Ok(st)) {
        return st;
      }
    } else {
      FreeBlock(ino.indirect);
      ino.indirect = 0;
    }
  }
  ukarch::Status st = WriteInode(inode_idx);
  if (!Ok(st)) {
    return st;
  }
  return WriteBitmap();
}

// ---- BlockFsFile ------------------------------------------------------------

std::int64_t BlockFsFile::Read(std::uint64_t offset, std::span<std::byte> out) {
  const BlockFs::Inode& ino = fs_->inodes_[idx_];
  if (offset >= ino.size) {
    return 0;
  }
  const std::size_t want =
      std::min<std::uint64_t>(out.size(), ino.size - offset);
  std::size_t done = 0;
  std::uint8_t block[BlockFs::kBlockBytes];
  while (done < want) {
    const std::uint64_t at = offset + done;
    const auto pos = static_cast<std::uint32_t>(at / BlockFs::kBlockBytes);
    const std::size_t in_block = static_cast<std::size_t>(at % BlockFs::kBlockBytes);
    const std::size_t n = std::min(want - done, BlockFs::kBlockBytes - in_block);
    const std::uint32_t blk = fs_->GetPtr(ino, pos);
    if (blk == 0) {
      std::memset(out.data() + done, 0, n);  // hole reads as zeros
    } else {
      if (!Ok(fs_->ReadBlock(blk, block))) {
        return done > 0 ? static_cast<std::int64_t>(done)
                        : ukarch::Raw(ukarch::Status::kIo);
      }
      std::memcpy(out.data() + done, block + in_block, n);
    }
    done += n;
  }
  return static_cast<std::int64_t>(done);
}

std::int64_t BlockFsFile::Write(std::uint64_t offset, std::span<const std::byte> in) {
  if (offset + in.size() > BlockFs::kMaxFileBytes) {
    return ukarch::Raw(ukarch::Status::kNoSpc);
  }
  std::size_t done = 0;
  std::uint8_t block[BlockFs::kBlockBytes];
  while (done < in.size()) {
    const std::uint64_t at = offset + done;
    const auto pos = static_cast<std::uint32_t>(at / BlockFs::kBlockBytes);
    const std::size_t in_block = static_cast<std::size_t>(at % BlockFs::kBlockBytes);
    const std::size_t n =
        std::min(in.size() - done, BlockFs::kBlockBytes - in_block);
    std::uint32_t blk = fs_->GetPtr(fs_->inodes_[idx_], pos);
    const bool fresh = blk == 0;
    if (fresh) {
      blk = fs_->AllocBlock();
      if (blk == 0 || !Ok(fs_->SetPtr(idx_, pos, blk)) ||
          !Ok(fs_->WriteBitmap())) {
        if (blk != 0) {
          fs_->FreeBlock(blk);
        }
        break;  // out of space: report the partial write below
      }
    }
    if (n == BlockFs::kBlockBytes) {
      std::memcpy(block, in.data() + done, n);
    } else {
      if (fresh) {
        std::memset(block, 0, sizeof(block));
      } else if (!Ok(fs_->ReadBlock(blk, block))) {
        break;
      }
      std::memcpy(block + in_block, in.data() + done, n);
    }
    if (!Ok(fs_->WriteBlock(blk, block))) {
      break;
    }
    done += n;
  }
  if (done == 0 && !in.empty()) {
    return ukarch::Raw(ukarch::Status::kNoSpc);
  }
  BlockFs::Inode& ino = fs_->inodes_[idx_];
  if (offset + done > ino.size) {
    ino.size = offset + done;
    if (!Ok(fs_->WriteInode(idx_))) {
      return ukarch::Raw(ukarch::Status::kIo);
    }
  }
  return static_cast<std::int64_t>(done);
}

ukarch::Status BlockFsFile::Truncate(std::uint64_t size) {
  if (size > BlockFs::kMaxFileBytes) {
    return ukarch::Status::kNoSpc;
  }
  BlockFs::Inode& ino = fs_->inodes_[idx_];
  if (size < ino.size) {
    const auto keep = static_cast<std::uint32_t>(
        (size + BlockFs::kBlockBytes - 1) / BlockFs::kBlockBytes);
    ukarch::Status st = fs_->FreeRange(idx_, keep);
    if (!Ok(st)) {
      return st;
    }
  }
  ino.size = size;  // growth leaves a hole; reads return zeros
  return fs_->WriteInode(idx_);
}

// ---- BlockFsDir -------------------------------------------------------------

std::int32_t BlockFsDir::Find(std::string_view name) const {
  for (std::uint32_t i = 0; i < BlockFs::kMaxInodes; ++i) {
    const BlockFs::Inode& ino = fs_->inodes_[i];
    if (ino.used != 0 &&
        std::string_view(ino.name, ino.name_len) == name) {
      return static_cast<std::int32_t>(i);
    }
  }
  return -1;
}

ukarch::Status BlockFsDir::Lookup(std::string_view name,
                                  std::shared_ptr<Node>* out) {
  const std::int32_t idx = Find(name);
  if (idx < 0) {
    return ukarch::Status::kNoEnt;
  }
  *out = std::make_shared<BlockFsFile>(fs_, static_cast<std::uint32_t>(idx));
  return ukarch::Status::kOk;
}

ukarch::Status BlockFsDir::Create(std::string_view name, NodeType ntype,
                                  std::shared_ptr<Node>* out) {
  if (ntype != NodeType::kRegular) {
    return ukarch::Status::kNoSys;  // flat namespace: no subdirectories
  }
  if (name.empty() || name.size() > BlockFs::kNameMax) {
    return ukarch::Status::kInval;
  }
  if (Find(name) >= 0) {
    return ukarch::Status::kExist;
  }
  for (std::uint32_t i = 0; i < BlockFs::kMaxInodes; ++i) {
    BlockFs::Inode& ino = fs_->inodes_[i];
    if (ino.used == 0) {
      ino = BlockFs::Inode{};
      ino.used = 1;
      ino.name_len = static_cast<std::uint8_t>(name.size());
      std::memcpy(ino.name, name.data(), name.size());
      ukarch::Status st = fs_->WriteInode(i);
      if (!Ok(st)) {
        ino.used = 0;
        return st;
      }
      *out = std::make_shared<BlockFsFile>(fs_, i);
      return ukarch::Status::kOk;
    }
  }
  return ukarch::Status::kNoSpc;
}

ukarch::Status BlockFsDir::Remove(std::string_view name) {
  const std::int32_t idx = Find(name);
  if (idx < 0) {
    return ukarch::Status::kNoEnt;
  }
  const auto i = static_cast<std::uint32_t>(idx);
  ukarch::Status st = fs_->FreeRange(i, 0);
  if (!Ok(st)) {
    return st;
  }
  fs_->inodes_[i] = BlockFs::Inode{};
  return fs_->WriteInode(i);
}

ukarch::Status BlockFsDir::ReadDir(std::vector<DirEntry>* out) {
  out->clear();
  for (const BlockFs::Inode& ino : fs_->inodes_) {
    if (ino.used != 0) {
      out->push_back(DirEntry{std::string(ino.name, ino.name_len),
                              NodeType::kRegular});
    }
  }
  return ukarch::Status::kOk;
}

}  // namespace vfscore
