#include "vfscore/vfs.h"

namespace vfscore {

// ---- Node default implementations (wrong-type errors) ------------------------

ukarch::Status Node::Lookup(std::string_view, std::shared_ptr<Node>*) {
  return type() == NodeType::kDirectory ? ukarch::Status::kNoSys : ukarch::Status::kNotDir;
}
ukarch::Status Node::Create(std::string_view, NodeType, std::shared_ptr<Node>*) {
  return type() == NodeType::kDirectory ? ukarch::Status::kNoSys : ukarch::Status::kNotDir;
}
ukarch::Status Node::Remove(std::string_view) {
  return type() == NodeType::kDirectory ? ukarch::Status::kNoSys : ukarch::Status::kNotDir;
}
ukarch::Status Node::ReadDir(std::vector<DirEntry>*) {
  return type() == NodeType::kDirectory ? ukarch::Status::kNoSys : ukarch::Status::kNotDir;
}
std::int64_t Node::Read(std::uint64_t, std::span<std::byte>) {
  return ukarch::Raw(ukarch::Status::kIsDir);
}
std::int64_t Node::Write(std::uint64_t, std::span<const std::byte>) {
  return ukarch::Raw(ukarch::Status::kIsDir);
}
ukarch::Status Node::Truncate(std::uint64_t) { return ukarch::Status::kIsDir; }

// ---- File ---------------------------------------------------------------------

std::int64_t File::Read(std::span<std::byte> out) {
  std::int64_t n = ReadAt(offset_, out);
  if (n > 0) {
    offset_ += static_cast<std::uint64_t>(n);
  }
  return n;
}

std::int64_t File::Write(std::span<const std::byte> in) {
  if ((flags_ & kAppend) != 0) {
    offset_ = node_->Stat().size;
  }
  std::int64_t n = WriteAt(offset_, in);
  if (n > 0) {
    offset_ += static_cast<std::uint64_t>(n);
  }
  return n;
}

std::int64_t File::ReadAt(std::uint64_t offset, std::span<std::byte> out) {
  if ((flags_ & kRead) == 0) {
    return ukarch::Raw(ukarch::Status::kBadF);
  }
  return node_->Read(offset, out);
}

std::int64_t File::WriteAt(std::uint64_t offset, std::span<const std::byte> in) {
  if ((flags_ & kWrite) == 0) {
    return ukarch::Raw(ukarch::Status::kBadF);
  }
  return node_->Write(offset, in);
}

ukarch::Status File::Fsync() {
  if ((flags_ & kWrite) == 0) {
    return ukarch::Status::kBadF;
  }
  return node_->Fsync();
}

std::int64_t File::Seek(std::int64_t offset, Whence whence) {
  std::int64_t base = 0;
  switch (whence) {
    case Whence::kSet: base = 0; break;
    case Whence::kCur: base = static_cast<std::int64_t>(offset_); break;
    case Whence::kEnd: base = static_cast<std::int64_t>(node_->Stat().size); break;
  }
  std::int64_t target = base + offset;
  if (target < 0) {
    return ukarch::Raw(ukarch::Status::kInval);
  }
  offset_ = static_cast<std::uint64_t>(target);
  return target;
}

// ---- path helpers --------------------------------------------------------------

std::vector<std::string_view> SplitPath(std::string_view path) {
  std::vector<std::string_view> parts;
  std::size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') {
      ++i;
    }
    std::size_t start = i;
    while (i < path.size() && path[i] != '/') {
      ++i;
    }
    std::string_view part = path.substr(start, i - start);
    if (part.empty() || part == ".") {
      continue;
    }
    if (part == "..") {
      if (!parts.empty()) {
        parts.pop_back();
      }
      continue;
    }
    parts.push_back(part);
  }
  return parts;
}

namespace {

std::string Normalize(std::string_view path) {
  std::string norm = "/";
  for (std::string_view part : SplitPath(path)) {
    if (norm.back() != '/') {
      norm += '/';
    }
    norm += part;
  }
  return norm;
}

}  // namespace

// ---- Vfs -----------------------------------------------------------------------

ukarch::Status Vfs::Mount(std::string path, FsDriver* fs) {
  std::string prefix = Normalize(path);
  for (const MountPoint& m : mounts_) {
    if (m.prefix == prefix) {
      return ukarch::Status::kBusy;
    }
  }
  std::shared_ptr<Node> root;
  ukarch::Status st = fs->Mount(&root);
  if (!Ok(st)) {
    return st;
  }
  if (root == nullptr || root->type() != NodeType::kDirectory) {
    return ukarch::Status::kNotDir;
  }
  mounts_.push_back(MountPoint{std::move(prefix), fs, std::move(root)});
  return ukarch::Status::kOk;
}

ukarch::Status Vfs::Unmount(std::string_view path) {
  std::string prefix = Normalize(path);
  for (auto it = mounts_.begin(); it != mounts_.end(); ++it) {
    if (it->prefix == prefix) {
      mounts_.erase(it);
      return ukarch::Status::kOk;
    }
  }
  return ukarch::Status::kNoEnt;
}

const Vfs::MountPoint* Vfs::FindMount(std::string_view path, std::string_view* rest) const {
  const MountPoint* best = nullptr;
  std::size_t best_len = 0;
  for (const MountPoint& m : mounts_) {
    std::size_t plen = m.prefix.size();
    bool prefix_match =
        path.size() >= plen && path.substr(0, plen) == m.prefix &&
        (m.prefix == "/" || path.size() == plen || path[plen] == '/');
    if (prefix_match && plen >= best_len) {
      best = &m;
      best_len = plen;
    }
  }
  if (best != nullptr && rest != nullptr) {
    *rest = path.substr(best->prefix == "/" ? 0 : best_len);
  }
  return best;
}

ukarch::Status Vfs::Resolve(std::string_view path, std::shared_ptr<Node>* out) {
  std::string norm = Normalize(path);
  std::string_view rest;
  const MountPoint* mp = FindMount(norm, &rest);
  if (mp == nullptr) {
    return ukarch::Status::kNoEnt;
  }
  std::shared_ptr<Node> cur = mp->root;
  for (std::string_view part : SplitPath(rest)) {
    ++lookup_ops_;
    std::shared_ptr<Node> next;
    ukarch::Status st = cur->Lookup(part, &next);
    if (!Ok(st)) {
      return st;
    }
    cur = std::move(next);
  }
  *out = std::move(cur);
  return ukarch::Status::kOk;
}

ukarch::Status Vfs::WalkToParent(std::string_view path, std::shared_ptr<Node>* parent,
                                 std::string* leaf) {
  std::string norm = Normalize(path);
  auto pos = norm.find_last_of('/');
  std::string parent_path = pos == 0 ? "/" : norm.substr(0, pos);
  *leaf = norm.substr(pos + 1);
  if (leaf->empty()) {
    return ukarch::Status::kInval;
  }
  ukarch::Status st = Resolve(parent_path, parent);
  if (!Ok(st)) {
    return st;
  }
  if ((*parent)->type() != NodeType::kDirectory) {
    return ukarch::Status::kNotDir;
  }
  return ukarch::Status::kOk;
}

ukarch::Status Vfs::Open(std::string_view path, std::uint32_t flags,
                         std::shared_ptr<File>* out) {
  std::shared_ptr<Node> node;
  ukarch::Status st = Resolve(path, &node);
  if (st == ukarch::Status::kNoEnt && (flags & kCreate) != 0) {
    std::shared_ptr<Node> parent;
    std::string leaf;
    st = WalkToParent(path, &parent, &leaf);
    if (!Ok(st)) {
      return st;
    }
    st = parent->Create(leaf, NodeType::kRegular, &node);
    if (!Ok(st)) {
      return st;
    }
  } else if (Ok(st) && (flags & kExcl) != 0 && (flags & kCreate) != 0) {
    return ukarch::Status::kExist;
  } else if (!Ok(st)) {
    return st;
  }
  if (node->type() == NodeType::kDirectory && (flags & kWrite) != 0) {
    return ukarch::Status::kIsDir;
  }
  if ((flags & kTrunc) != 0 && node->type() == NodeType::kRegular) {
    st = node->Truncate(0);
    if (!Ok(st)) {
      return st;
    }
  }
  *out = std::make_shared<File>(std::move(node), flags);
  return ukarch::Status::kOk;
}

ukarch::Status Vfs::Mkdir(std::string_view path) {
  std::shared_ptr<Node> existing;
  if (Ok(Resolve(path, &existing))) {
    return ukarch::Status::kExist;
  }
  std::shared_ptr<Node> parent;
  std::string leaf;
  ukarch::Status st = WalkToParent(path, &parent, &leaf);
  if (!Ok(st)) {
    return st;
  }
  std::shared_ptr<Node> node;
  return parent->Create(leaf, NodeType::kDirectory, &node);
}

ukarch::Status Vfs::Unlink(std::string_view path) {
  std::shared_ptr<Node> parent;
  std::string leaf;
  ukarch::Status st = WalkToParent(path, &parent, &leaf);
  if (!Ok(st)) {
    return st;
  }
  return parent->Remove(leaf);
}

ukarch::Status Vfs::Fsync(std::string_view path) {
  std::shared_ptr<Node> node;
  ukarch::Status st = Resolve(path, &node);
  if (!Ok(st)) {
    return st;
  }
  return node->Fsync();
}

ukarch::Status Vfs::Stat(std::string_view path, NodeStat* out) {
  std::shared_ptr<Node> node;
  ukarch::Status st = Resolve(path, &node);
  if (!Ok(st)) {
    return st;
  }
  *out = node->Stat();
  return ukarch::Status::kOk;
}

ukarch::Status Vfs::ReadDir(std::string_view path, std::vector<DirEntry>* out) {
  std::shared_ptr<Node> node;
  ukarch::Status st = Resolve(path, &node);
  if (!Ok(st)) {
    return st;
  }
  return node->ReadDir(out);
}

}  // namespace vfscore
