// vfscore/ramfs.h - RAM filesystem over the instance allocator.
//
// Unikraft guests that need no persistent storage link ramfs (the nginx image
// in Fig 2 has no block subsystem because of it). File contents live in 4 KiB
// chunks taken from the unikernel's own heap so memory pressure experiments
// (Fig 11) see the rootfs cost; metadata uses host containers for clarity.
#ifndef VFSCORE_RAMFS_H_
#define VFSCORE_RAMFS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ukalloc/allocator.h"
#include "vfscore/node.h"

namespace vfscore {

class RamFs final : public FsDriver {
 public:
  explicit RamFs(ukalloc::Allocator* alloc) : alloc_(alloc) {}

  const char* fs_name() const override { return "ramfs"; }
  ukarch::Status Mount(std::shared_ptr<Node>* root) override;

  ukalloc::Allocator* allocator() const { return alloc_; }

 private:
  ukalloc::Allocator* alloc_;
  std::shared_ptr<Node> root_;  // created once; remount returns the same tree
};

namespace ramfs_detail {

class RamFile final : public Node {
 public:
  explicit RamFile(ukalloc::Allocator* alloc, std::uint64_t inode)
      : alloc_(alloc), inode_(inode) {}
  ~RamFile() override;

  NodeType type() const override { return NodeType::kRegular; }
  NodeStat Stat() const override { return NodeStat{NodeType::kRegular, size_, inode_}; }
  std::int64_t Read(std::uint64_t offset, std::span<std::byte> out) override;
  std::int64_t Write(std::uint64_t offset, std::span<const std::byte> in) override;
  ukarch::Status Truncate(std::uint64_t size) override;

  static constexpr std::size_t kChunk = 4096;

 private:
  // Grows the chunk vector to cover |size| bytes. False on allocator OOM.
  bool EnsureCapacity(std::uint64_t size);

  ukalloc::Allocator* alloc_;
  std::uint64_t inode_;
  std::uint64_t size_ = 0;
  std::vector<std::byte*> chunks_;  // each kChunk bytes from alloc_
};

class RamDir final : public Node {
 public:
  explicit RamDir(ukalloc::Allocator* alloc, std::uint64_t inode)
      : alloc_(alloc), inode_(inode) {}

  NodeType type() const override { return NodeType::kDirectory; }
  NodeStat Stat() const override {
    return NodeStat{NodeType::kDirectory, entries_.size(), inode_};
  }
  ukarch::Status Lookup(std::string_view name, std::shared_ptr<Node>* out) override;
  ukarch::Status Create(std::string_view name, NodeType ntype,
                        std::shared_ptr<Node>* out) override;
  ukarch::Status Remove(std::string_view name) override;
  ukarch::Status ReadDir(std::vector<DirEntry>* out) override;

 private:
  ukalloc::Allocator* alloc_;
  std::uint64_t inode_;
  std::map<std::string, std::shared_ptr<Node>, std::less<>> entries_;
};

}  // namespace ramfs_detail
}  // namespace vfscore

#endif  // VFSCORE_RAMFS_H_
