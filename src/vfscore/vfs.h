// vfscore/vfs.h - path resolution, mount table, and file handles (§5.2).
//
// The vfscore micro-library is the standard path applications take for file
// I/O (scenario 3 in Fig 4); the SHFS experiment in §6.3 measures exactly the
// cost of this layer, so the implementation is deliberately structured like a
// real VFS: longest-prefix mount lookup, per-component directory walk,
// separate open-file table entries with offsets.
#ifndef VFSCORE_VFS_H_
#define VFSCORE_VFS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "vfscore/node.h"

namespace vfscore {

// Open flags (subset of fcntl.h semantics).
enum OpenFlags : std::uint32_t {
  kRead = 1u << 0,
  kWrite = 1u << 1,
  kCreate = 1u << 2,
  kTrunc = 1u << 3,
  kAppend = 1u << 4,
  kExcl = 1u << 5,
};

class File {
 public:
  File(std::shared_ptr<Node> node, std::uint32_t flags)
      : node_(std::move(node)), flags_(flags) {}

  // Sequential I/O advancing the file offset.
  std::int64_t Read(std::span<std::byte> out);
  std::int64_t Write(std::span<const std::byte> in);
  // Positional I/O (pread/pwrite).
  std::int64_t ReadAt(std::uint64_t offset, std::span<std::byte> out);
  std::int64_t WriteAt(std::uint64_t offset, std::span<const std::byte> in);

  enum class Whence { kSet, kCur, kEnd };
  std::int64_t Seek(std::int64_t offset, Whence whence);

  // fsync(fd): flushes the node to stable storage. kBadF on a descriptor not
  // opened for writing (nothing of this handle's can be dirty — mirrors the
  // POSIX EBADF contract the posix layer tests pin down).
  ukarch::Status Fsync();

  Node& node() { return *node_; }
  std::uint64_t offset() const { return offset_; }
  std::uint32_t flags() const { return flags_; }

 private:
  std::shared_ptr<Node> node_;
  std::uint32_t flags_;
  std::uint64_t offset_ = 0;
};

class Vfs {
 public:
  // Mounts |fs| at |path| ("/" or a directory that exists on the parent fs).
  // Longest-prefix wins on resolution. The driver stays owned by the caller.
  ukarch::Status Mount(std::string path, FsDriver* fs);
  ukarch::Status Unmount(std::string_view path);

  ukarch::Status Open(std::string_view path, std::uint32_t flags,
                      std::shared_ptr<File>* out);
  ukarch::Status Mkdir(std::string_view path);
  ukarch::Status Unlink(std::string_view path);
  // Path-addressed flush (sync of one file without holding a descriptor).
  ukarch::Status Fsync(std::string_view path);
  ukarch::Status Stat(std::string_view path, NodeStat* out);
  ukarch::Status ReadDir(std::string_view path, std::vector<DirEntry>* out);

  // Resolution core, exposed for the open()-latency experiment (Fig 22):
  // walks the mount table and directory components.
  ukarch::Status Resolve(std::string_view path, std::shared_ptr<Node>* out);

  std::size_t mount_count() const { return mounts_.size(); }

  // Instrumentation for the Fig 22 bench: component lookups performed.
  std::uint64_t lookup_ops() const { return lookup_ops_; }

 private:
  struct MountPoint {
    std::string prefix;  // normalized, no trailing slash except root "/"
    FsDriver* fs;
    std::shared_ptr<Node> root;
  };

  // Returns the best mount for |path| and the remaining relative part.
  const MountPoint* FindMount(std::string_view path, std::string_view* rest) const;
  ukarch::Status WalkToParent(std::string_view path, std::shared_ptr<Node>* parent,
                              std::string* leaf);

  std::vector<MountPoint> mounts_;
  mutable std::uint64_t lookup_ops_ = 0;
};

// Splits a normalized path into components, ignoring empty and "." parts.
std::vector<std::string_view> SplitPath(std::string_view path);

}  // namespace vfscore

#endif  // VFSCORE_VFS_H_
