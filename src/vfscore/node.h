// vfscore/node.h - vnode interface implemented by every filesystem driver.
#ifndef VFSCORE_NODE_H_
#define VFSCORE_NODE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ukarch/status.h"

namespace vfscore {

enum class NodeType { kRegular, kDirectory };

struct DirEntry {
  std::string name;
  NodeType type;
};

struct NodeStat {
  NodeType type = NodeType::kRegular;
  std::uint64_t size = 0;
  std::uint64_t inode = 0;
};

// A filesystem object. Directory operations return kNotDir on files and file
// operations return kIsDir on directories, mirroring POSIX errno behaviour.
class Node {
 public:
  virtual ~Node() = default;

  virtual NodeType type() const = 0;
  virtual NodeStat Stat() const = 0;

  // Directory operations.
  virtual ukarch::Status Lookup(std::string_view name, std::shared_ptr<Node>* out);
  virtual ukarch::Status Create(std::string_view name, NodeType ntype,
                                std::shared_ptr<Node>* out);
  virtual ukarch::Status Remove(std::string_view name);
  virtual ukarch::Status ReadDir(std::vector<DirEntry>* out);

  // File operations. Return bytes transferred or a negative errno.
  virtual std::int64_t Read(std::uint64_t offset, std::span<std::byte> out);
  virtual std::int64_t Write(std::uint64_t offset, std::span<const std::byte> in);
  virtual ukarch::Status Truncate(std::uint64_t size);

  // Pushes the node's dirty state to stable storage. Memory-backed
  // filesystems (ramfs, shfs) have nothing below them and inherit this no-op;
  // block-backed filesystems override it to issue a ukblockdev flush barrier.
  virtual ukarch::Status Fsync() { return ukarch::Status::kOk; }
};

// Mountable filesystem: produces a root directory node.
class FsDriver {
 public:
  virtual ~FsDriver() = default;
  virtual const char* fs_name() const = 0;
  virtual ukarch::Status Mount(std::shared_ptr<Node>* root) = 0;
};

}  // namespace vfscore

#endif  // VFSCORE_NODE_H_
