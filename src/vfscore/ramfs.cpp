#include "vfscore/ramfs.h"

#include <cstring>

namespace vfscore {

namespace {
std::uint64_t NextInode() {
  static std::uint64_t counter = 1;
  return counter++;
}
}  // namespace

ukarch::Status RamFs::Mount(std::shared_ptr<Node>* root) {
  if (root_ == nullptr) {
    root_ = std::make_shared<ramfs_detail::RamDir>(alloc_, NextInode());
  }
  *root = root_;
  return ukarch::Status::kOk;
}

namespace ramfs_detail {

RamFile::~RamFile() {
  for (std::byte* chunk : chunks_) {
    alloc_->Free(chunk);
  }
}

bool RamFile::EnsureCapacity(std::uint64_t size) {
  std::size_t need = static_cast<std::size_t>((size + kChunk - 1) / kChunk);
  while (chunks_.size() < need) {
    auto* chunk = static_cast<std::byte*>(alloc_->Malloc(kChunk));
    if (chunk == nullptr) {
      return false;
    }
    std::memset(chunk, 0, kChunk);
    chunks_.push_back(chunk);
  }
  return true;
}

std::int64_t RamFile::Read(std::uint64_t offset, std::span<std::byte> out) {
  if (offset >= size_) {
    return 0;  // EOF
  }
  std::size_t n = static_cast<std::size_t>(
      out.size() < size_ - offset ? out.size() : size_ - offset);
  std::size_t copied = 0;
  while (copied < n) {
    std::uint64_t pos = offset + copied;
    std::size_t ci = static_cast<std::size_t>(pos / kChunk);
    std::size_t coff = static_cast<std::size_t>(pos % kChunk);
    std::size_t take = kChunk - coff;
    if (take > n - copied) {
      take = n - copied;
    }
    std::memcpy(out.data() + copied, chunks_[ci] + coff, take);
    copied += take;
  }
  return static_cast<std::int64_t>(n);
}

std::int64_t RamFile::Write(std::uint64_t offset, std::span<const std::byte> in) {
  if (!EnsureCapacity(offset + in.size())) {
    return ukarch::Raw(ukarch::Status::kNoSpc);
  }
  std::size_t copied = 0;
  while (copied < in.size()) {
    std::uint64_t pos = offset + copied;
    std::size_t ci = static_cast<std::size_t>(pos / kChunk);
    std::size_t coff = static_cast<std::size_t>(pos % kChunk);
    std::size_t take = kChunk - coff;
    if (take > in.size() - copied) {
      take = in.size() - copied;
    }
    std::memcpy(chunks_[ci] + coff, in.data() + copied, take);
    copied += take;
  }
  if (offset + in.size() > size_) {
    size_ = offset + in.size();
  }
  return static_cast<std::int64_t>(in.size());
}

ukarch::Status RamFile::Truncate(std::uint64_t size) {
  if (size > size_) {
    if (!EnsureCapacity(size)) {
      return ukarch::Status::kNoSpc;
    }
    size_ = size;
    return ukarch::Status::kOk;
  }
  std::size_t keep = static_cast<std::size_t>((size + kChunk - 1) / kChunk);
  while (chunks_.size() > keep) {
    alloc_->Free(chunks_.back());
    chunks_.pop_back();
  }
  size_ = size;
  // Zero the tail of the last kept chunk so re-extension reads zeros.
  if (!chunks_.empty() && size % kChunk != 0) {
    std::size_t coff = static_cast<std::size_t>(size % kChunk);
    std::memset(chunks_.back() + coff, 0, kChunk - coff);
  }
  return ukarch::Status::kOk;
}

ukarch::Status RamDir::Lookup(std::string_view name, std::shared_ptr<Node>* out) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return ukarch::Status::kNoEnt;
  }
  *out = it->second;
  return ukarch::Status::kOk;
}

ukarch::Status RamDir::Create(std::string_view name, NodeType ntype,
                              std::shared_ptr<Node>* out) {
  if (name.empty() || name.size() > 255) {
    return ukarch::Status::kNameTooLong;
  }
  if (entries_.contains(name)) {
    return ukarch::Status::kExist;
  }
  std::shared_ptr<Node> node;
  if (ntype == NodeType::kRegular) {
    node = std::make_shared<RamFile>(alloc_, NextInode());
  } else {
    node = std::make_shared<RamDir>(alloc_, NextInode());
  }
  entries_.emplace(std::string(name), node);
  *out = std::move(node);
  return ukarch::Status::kOk;
}

ukarch::Status RamDir::Remove(std::string_view name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return ukarch::Status::kNoEnt;
  }
  if (it->second->type() == NodeType::kDirectory) {
    std::vector<DirEntry> children;
    (void)it->second->ReadDir(&children);
    if (!children.empty()) {
      return ukarch::Status::kNotEmpty;
    }
  }
  entries_.erase(it);
  return ukarch::Status::kOk;
}

ukarch::Status RamDir::ReadDir(std::vector<DirEntry>* out) {
  out->clear();
  out->reserve(entries_.size());
  for (const auto& [name, node] : entries_) {
    out->push_back(DirEntry{name, node->type()});
  }
  return ukarch::Status::kOk;
}

}  // namespace ramfs_detail
}  // namespace vfscore
