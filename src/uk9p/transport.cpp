#include "uk9p/transport.h"

namespace uk9p {

Virtio9pTransport::Virtio9pTransport(ukplat::MemRegion* mem, ukplat::Clock* clock,
                                     Server* server, std::uint32_t msize,
                                     std::uint16_t qsize)
    : mem_(mem), clock_(clock), server_(server), msize_(msize) {
  std::uint64_t ring_gpa = mem_->Carve(ukplat::Virtqueue::FootprintBytes(qsize), 16);
  req_gpa_ = mem_->Carve(msize, 16);
  resp_gpa_ = mem_->Carve(msize, 16);
  if (ring_gpa == ukplat::MemRegion::kBadGpa || req_gpa_ == ukplat::MemRegion::kBadGpa ||
      resp_gpa_ == ukplat::MemRegion::kBadGpa) {
    return;
  }
  vq_ = std::make_unique<ukplat::Virtqueue>(mem_, ring_gpa, qsize);
  ok_ = true;
}

void Virtio9pTransport::DeviceRun() {
  while (auto chain = vq_->DevicePop()) {
    if (chain->segments.size() != 2) {
      vq_->DevicePush(chain->head, 0);
      continue;
    }
    const auto& req_seg = chain->segments[0];
    const auto& resp_seg = chain->segments[1];
    const std::byte* req_bytes = mem_->At(req_seg.gpa, req_seg.len);
    std::byte* resp_bytes = mem_->At(resp_seg.gpa, resp_seg.len);
    if (req_bytes == nullptr || resp_bytes == nullptr) {
      vq_->DevicePush(chain->head, 0);
      continue;
    }
    std::vector<std::uint8_t> reply = server_->Handle(
        std::span(reinterpret_cast<const std::uint8_t*>(req_bytes), req_seg.len));
    std::uint32_t n = static_cast<std::uint32_t>(
        reply.size() < resp_seg.len ? reply.size() : resp_seg.len);
    std::memcpy(resp_bytes, reply.data(), n);
    clock_->ChargeCopy(req_seg.len + n);  // host-side copies through the share
    vq_->DevicePush(chain->head, n);
  }
  clock_->Charge(clock_->model().irq_inject);
}

std::vector<std::uint8_t> Virtio9pTransport::Rpc(std::span<const std::uint8_t> request) {
  if (!ok_ || request.size() > msize_) {
    return {};
  }
  ++rpcs_;
  mem_->CopyIn(req_gpa_, std::as_bytes(request));
  ukplat::Virtqueue::Segment segs[2] = {
      {req_gpa_, static_cast<std::uint32_t>(request.size()), false},
      {resp_gpa_, msize_, true},
  };
  if (!vq_->Enqueue(std::span(segs), nullptr)) {
    return {};
  }
  if (vq_->NeedsKick()) {
    clock_->Charge(clock_->model().vm_exit);
    vq_->MarkKicked();
  }
  DeviceRun();
  auto done = vq_->DequeueCompletion();
  if (!done.has_value() || done->written == 0) {
    return {};
  }
  std::vector<std::uint8_t> reply(done->written);
  mem_->CopyOut(resp_gpa_, std::as_writable_bytes(std::span(reply)));
  return reply;
}

}  // namespace uk9p
