// uk9p/proto.h - 9P2000 message subset (§5.2: "apps can use the 9pfs protocol
// to access storage on the host").
//
// Wire format follows the Plan 9 manual: every message is
// size[4] type[1] tag[2] payload, strings are len[2]+bytes, qids are
// type[1] version[4] path[8], all little-endian. We implement the subset the
// filesystem driver needs (version/attach/walk/open/create/read/write/clunk/
// remove/stat/wstat) plus Rerror. Directory reads return a simplified entry
// encoding (count[2] then {qid, name} pairs) — documented deviation kept
// stable between our client and server.
#ifndef UK9P_PROTO_H_
#define UK9P_PROTO_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace uk9p {

enum class MsgType : std::uint8_t {
  kTversion = 100, kRversion = 101,
  kTattach = 104, kRattach = 105,
  kRerror = 107,
  kTwalk = 110, kRwalk = 111,
  kTopen = 112, kRopen = 113,
  kTcreate = 114, kRcreate = 115,
  kTread = 116, kRread = 117,
  kTwrite = 118, kRwrite = 119,
  kTclunk = 120, kRclunk = 121,
  kTremove = 122, kRremove = 123,
  kTstat = 124, kRstat = 125,
  kTwstat = 126, kRwstat = 127,
};

inline constexpr std::uint16_t kNoTag = 0xFFFF;
inline constexpr std::uint32_t kNoFid = 0xFFFFFFFF;
inline constexpr std::uint8_t kQtDir = 0x80;
inline constexpr std::uint8_t kQtFile = 0x00;
// Open modes.
inline constexpr std::uint8_t kORead = 0;
inline constexpr std::uint8_t kOWrite = 1;
inline constexpr std::uint8_t kORdWr = 2;
inline constexpr std::uint8_t kOTrunc = 0x10;
// Permission bit marking directories in Tcreate.
inline constexpr std::uint32_t kDmDir = 0x80000000u;

struct Qid {
  std::uint8_t type = kQtFile;
  std::uint32_t version = 0;
  std::uint64_t path = 0;
};

// Simplified stat payload (subset of the 9P stat structure).
struct Stat {
  Qid qid;
  std::uint64_t length = 0;
  std::string name;
};

// Little-endian serializer with bounds discipline.
class Writer {
 public:
  void U8(std::uint8_t v) { buf_.push_back(v); }
  void U16(std::uint16_t v);
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  void Str(std::string_view s);
  void Bytes(std::span<const std::uint8_t> data);
  void QidField(const Qid& q);

  // Finalizes a message: patches size[4] at the front.
  std::vector<std::uint8_t> Finish();

  // Returns the raw buffer without size patching (for nested encodings like
  // directory listings embedded in Rread payloads).
  std::vector<std::uint8_t> TakeRaw() { return std::move(buf_); }

  // Starts a message header (reserves size, writes type+tag).
  void Begin(MsgType type, std::uint16_t tag);

 private:
  std::vector<std::uint8_t> buf_;
};

// Little-endian reader; all getters return nullopt past the end, and the
// error latches so callers can check once at the end.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t U8();
  std::uint16_t U16();
  std::uint32_t U32();
  std::uint64_t U64();
  std::string Str();
  std::vector<std::uint8_t> Bytes(std::size_t n);
  Qid QidField();

  bool ok() const { return ok_; }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  bool Need(std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// Parses the 7-byte header of a complete message. Returns nullopt when the
// buffer is shorter than its declared size.
struct Header {
  std::uint32_t size;
  MsgType type;
  std::uint16_t tag;
};
std::optional<Header> ParseHeader(std::span<const std::uint8_t> msg);

const char* MsgTypeName(MsgType t);

// Payload view of a complete message (skips the 7-byte header).
inline std::span<const std::uint8_t> Payload(std::span<const std::uint8_t> msg) {
  return msg.size() >= 7 ? msg.subspan(7) : std::span<const std::uint8_t>();
}

}  // namespace uk9p

#endif  // UK9P_PROTO_H_
