#include "uk9p/server.h"

#include <functional>

namespace uk9p {

namespace {
std::uint64_t g_qid_counter = 1;
}

HostNode* HostNode::AddDir(const std::string& child_name) {
  auto node = std::make_unique<HostNode>();
  node->name = child_name;
  node->is_dir = true;
  node->qid_path = g_qid_counter++;
  HostNode* raw = node.get();
  children[child_name] = std::move(node);
  return raw;
}

HostNode* HostNode::AddFile(const std::string& child_name,
                            std::vector<std::uint8_t> content) {
  auto node = std::make_unique<HostNode>();
  node->name = child_name;
  node->is_dir = false;
  node->data = std::move(content);
  node->qid_path = g_qid_counter++;
  HostNode* raw = node.get();
  children[child_name] = std::move(node);
  return raw;
}

Server::Server() : root_(std::make_unique<HostNode>()) {
  root_->name.assign(1, '/');
  root_->is_dir = true;
  root_->qid_path = g_qid_counter++;
}

Qid Server::QidOf(const HostNode& n) const {
  return Qid{n.is_dir ? kQtDir : kQtFile, 0, n.qid_path};
}

std::vector<std::uint8_t> Server::Error(std::uint16_t tag, std::string_view ename) {
  Writer w;
  w.Begin(MsgType::kRerror, tag);
  w.Str(ename);
  return w.Finish();
}

std::vector<std::uint8_t> Server::Handle(std::span<const std::uint8_t> request) {
  ++requests_served_;
  auto hdr = ParseHeader(request);
  if (!hdr.has_value()) {
    return Error(kNoTag, "malformed message");
  }
  Reader r(request.subspan(7, hdr->size - 7));
  switch (hdr->type) {
    case MsgType::kTversion: return Version(hdr->tag, r);
    case MsgType::kTattach: return Attach(hdr->tag, r);
    case MsgType::kTwalk: return Walk(hdr->tag, r);
    case MsgType::kTopen: return Open(hdr->tag, r);
    case MsgType::kTcreate: return Create(hdr->tag, r);
    case MsgType::kTread: return Read(hdr->tag, r);
    case MsgType::kTwrite: return Write(hdr->tag, r);
    case MsgType::kTclunk: return Clunk(hdr->tag, r);
    case MsgType::kTremove: return Remove(hdr->tag, r);
    case MsgType::kTstat: return StatMsg(hdr->tag, r);
    case MsgType::kTwstat: return Wstat(hdr->tag, r);
    default: return Error(hdr->tag, "unsupported message");
  }
}

std::vector<std::uint8_t> Server::Version(std::uint16_t tag, Reader& r) {
  std::uint32_t client_msize = r.U32();
  std::string version = r.Str();
  if (!r.ok()) {
    return Error(tag, "short Tversion");
  }
  if (client_msize < msize_) {
    msize_ = client_msize;
  }
  fids_.clear();  // version resets the session
  Writer w;
  w.Begin(MsgType::kRversion, tag);
  w.U32(msize_);
  w.Str(version == "9P2000" ? version : "unknown");
  return w.Finish();
}

std::vector<std::uint8_t> Server::Attach(std::uint16_t tag, Reader& r) {
  std::uint32_t fid = r.U32();
  (void)r.U32();  // afid (no auth)
  (void)r.Str();  // uname
  (void)r.Str();  // aname
  if (!r.ok()) {
    return Error(tag, "short Tattach");
  }
  if (fids_.contains(fid)) {
    return Error(tag, "fid in use");
  }
  fids_[fid] = Fid{root_.get(), false};
  Writer w;
  w.Begin(MsgType::kRattach, tag);
  w.QidField(QidOf(*root_));
  return w.Finish();
}

std::vector<std::uint8_t> Server::Walk(std::uint16_t tag, Reader& r) {
  std::uint32_t fid = r.U32();
  std::uint32_t newfid = r.U32();
  std::uint16_t nwname = r.U16();
  auto it = fids_.find(fid);
  if (it == fids_.end()) {
    return Error(tag, "unknown fid");
  }
  HostNode* cur = it->second.node;
  std::vector<Qid> qids;
  for (std::uint16_t i = 0; i < nwname; ++i) {
    std::string name = r.Str();
    if (!r.ok()) {
      return Error(tag, "short Twalk");
    }
    if (!cur->is_dir) {
      break;
    }
    auto child = cur->children.find(name);
    if (child == cur->children.end()) {
      break;
    }
    cur = child->second.get();
    qids.push_back(QidOf(*cur));
  }
  // Per the spec, a partial walk (fewer qids than names) does not move newfid.
  if (qids.size() == nwname) {
    fids_[newfid] = Fid{cur, false};
  } else if (nwname > 0 && qids.empty()) {
    return Error(tag, "file not found");
  }
  Writer w;
  w.Begin(MsgType::kRwalk, tag);
  w.U16(static_cast<std::uint16_t>(qids.size()));
  for (const Qid& q : qids) {
    w.QidField(q);
  }
  return w.Finish();
}

std::vector<std::uint8_t> Server::Open(std::uint16_t tag, Reader& r) {
  std::uint32_t fid = r.U32();
  std::uint8_t mode = r.U8();
  auto it = fids_.find(fid);
  if (it == fids_.end()) {
    return Error(tag, "unknown fid");
  }
  if ((mode & kOTrunc) != 0 && !it->second.node->is_dir) {
    it->second.node->data.clear();
  }
  it->second.open = true;
  Writer w;
  w.Begin(MsgType::kRopen, tag);
  w.QidField(QidOf(*it->second.node));
  w.U32(msize_ - 24);  // iounit
  return w.Finish();
}

std::vector<std::uint8_t> Server::Create(std::uint16_t tag, Reader& r) {
  std::uint32_t fid = r.U32();
  std::string name = r.Str();
  std::uint32_t perm = r.U32();
  (void)r.U8();  // mode
  auto it = fids_.find(fid);
  if (it == fids_.end()) {
    return Error(tag, "unknown fid");
  }
  HostNode* dir = it->second.node;
  if (!dir->is_dir) {
    return Error(tag, "not a directory");
  }
  if (dir->children.contains(name)) {
    return Error(tag, "file exists");
  }
  HostNode* child = (perm & kDmDir) != 0 ? dir->AddDir(name) : dir->AddFile(name, {});
  // fid now refers to the new file, open (spec behaviour).
  it->second = Fid{child, true};
  Writer w;
  w.Begin(MsgType::kRcreate, tag);
  w.QidField(QidOf(*child));
  w.U32(msize_ - 24);
  return w.Finish();
}

std::vector<std::uint8_t> Server::Read(std::uint16_t tag, Reader& r) {
  std::uint32_t fid = r.U32();
  std::uint64_t offset = r.U64();
  std::uint32_t count = r.U32();
  auto it = fids_.find(fid);
  if (it == fids_.end()) {
    return Error(tag, "unknown fid");
  }
  HostNode* node = it->second.node;
  if (count > msize_ - 24) {
    count = msize_ - 24;
  }
  Writer w;
  w.Begin(MsgType::kRread, tag);
  if (node->is_dir) {
    // Simplified directory listing: count[2] then {qid, name} entries,
    // whole listing returned at offset 0, empty otherwise.
    if (offset != 0) {
      w.U32(0);
      return w.Finish();
    }
    Writer body;
    body.U16(static_cast<std::uint16_t>(node->children.size()));
    for (const auto& [name, child] : node->children) {
      body.QidField(QidOf(*child));
      body.Str(name);
    }
    std::vector<std::uint8_t> payload = body.TakeRaw();
    w.U32(static_cast<std::uint32_t>(payload.size()));
    w.Bytes(payload);
    return w.Finish();
  }
  std::uint64_t avail = node->data.size() > offset ? node->data.size() - offset : 0;
  std::uint32_t n = static_cast<std::uint32_t>(avail < count ? avail : count);
  w.U32(n);
  w.Bytes(std::span(node->data).subspan(static_cast<std::size_t>(offset), n));
  return w.Finish();
}

std::vector<std::uint8_t> Server::Write(std::uint16_t tag, Reader& r) {
  std::uint32_t fid = r.U32();
  std::uint64_t offset = r.U64();
  std::uint32_t count = r.U32();
  std::vector<std::uint8_t> data = r.Bytes(count);
  if (!r.ok()) {
    return Error(tag, "short Twrite");
  }
  auto it = fids_.find(fid);
  if (it == fids_.end()) {
    return Error(tag, "unknown fid");
  }
  HostNode* node = it->second.node;
  if (node->is_dir) {
    return Error(tag, "is a directory");
  }
  if (node->data.size() < offset + count) {
    node->data.resize(static_cast<std::size_t>(offset + count), 0);
  }
  std::copy(data.begin(), data.end(),
            node->data.begin() + static_cast<std::ptrdiff_t>(offset));
  Writer w;
  w.Begin(MsgType::kRwrite, tag);
  w.U32(count);
  return w.Finish();
}

std::vector<std::uint8_t> Server::Clunk(std::uint16_t tag, Reader& r) {
  std::uint32_t fid = r.U32();
  if (fids_.erase(fid) == 0) {
    return Error(tag, "unknown fid");
  }
  Writer w;
  w.Begin(MsgType::kRclunk, tag);
  return w.Finish();
}

std::vector<std::uint8_t> Server::Remove(std::uint16_t tag, Reader& r) {
  std::uint32_t fid = r.U32();
  auto it = fids_.find(fid);
  if (it == fids_.end()) {
    return Error(tag, "unknown fid");
  }
  HostNode* node = it->second.node;
  fids_.erase(it);
  // Find and erase from the parent by scanning from the root (host trees in
  // the experiments are shallow; simplicity over speed here).
  std::function<bool(HostNode*)> erase_in = [&](HostNode* dir) {
    for (auto child = dir->children.begin(); child != dir->children.end(); ++child) {
      if (child->second.get() == node) {
        dir->children.erase(child);
        return true;
      }
      if (child->second->is_dir && erase_in(child->second.get())) {
        return true;
      }
    }
    return false;
  };
  if (!erase_in(root_.get())) {
    return Error(tag, "cannot remove root");
  }
  Writer w;
  w.Begin(MsgType::kRremove, tag);
  return w.Finish();
}

std::vector<std::uint8_t> Server::StatMsg(std::uint16_t tag, Reader& r) {
  std::uint32_t fid = r.U32();
  auto it = fids_.find(fid);
  if (it == fids_.end()) {
    return Error(tag, "unknown fid");
  }
  const HostNode* node = it->second.node;
  Writer w;
  w.Begin(MsgType::kRstat, tag);
  w.QidField(QidOf(*node));
  w.U64(node->data.size());
  w.Str(node->name);
  return w.Finish();
}

std::vector<std::uint8_t> Server::Wstat(std::uint16_t tag, Reader& r) {
  // Size-only wstat: used by the client to implement truncate.
  std::uint32_t fid = r.U32();
  std::uint64_t new_size = r.U64();
  auto it = fids_.find(fid);
  if (it == fids_.end()) {
    return Error(tag, "unknown fid");
  }
  HostNode* node = it->second.node;
  if (node->is_dir) {
    return Error(tag, "is a directory");
  }
  node->data.resize(static_cast<std::size_t>(new_size), 0);
  Writer w;
  w.Begin(MsgType::kRwstat, tag);
  return w.Finish();
}

}  // namespace uk9p
