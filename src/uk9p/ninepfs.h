// uk9p/ninepfs.h - 9pfs: a vfscore filesystem driver speaking 9P over the
// virtio transport. This is the persistent-storage path of §5.2.
#ifndef UK9P_NINEPFS_H_
#define UK9P_NINEPFS_H_

#include <memory>
#include <string>
#include <vector>

#include "uk9p/proto.h"
#include "uk9p/transport.h"
#include "vfscore/node.h"

namespace uk9p {

// Thin RPC client: wraps message encode/decode over a transport.
class Client {
 public:
  explicit Client(Virtio9pTransport* transport) : transport_(transport) {}

  // Session setup: Tversion + Tattach of the root fid. False on failure.
  bool Start();

  // All calls return ok() style results; fid management is the caller's job.
  bool Walk(std::uint32_t fid, std::uint32_t newfid,
            const std::vector<std::string>& names, std::vector<Qid>* qids);
  bool Open(std::uint32_t fid, std::uint8_t mode, Qid* qid);
  bool Create(std::uint32_t fid, const std::string& name, bool dir, Qid* qid);
  std::int64_t Read(std::uint32_t fid, std::uint64_t offset, std::span<std::byte> out);
  std::int64_t Write(std::uint32_t fid, std::uint64_t offset,
                     std::span<const std::byte> in);
  bool Clunk(std::uint32_t fid);
  bool RemoveFid(std::uint32_t fid);
  bool Stat(std::uint32_t fid, uk9p::Stat* out);
  bool WstatSize(std::uint32_t fid, std::uint64_t size);
  // Directory listing through the simplified Rread encoding.
  bool ListDir(std::uint32_t fid, std::vector<uk9p::Stat>* entries);

  std::uint32_t AllocFid() { return next_fid_++; }
  std::uint32_t root_fid() const { return kRootFid; }
  std::uint32_t iounit() const { return transport_->msize() - 24; }

  static constexpr std::uint32_t kRootFid = 0;

 private:
  std::vector<std::uint8_t> Call(Writer& w, MsgType expect);

  Virtio9pTransport* transport_;
  std::uint32_t next_fid_ = 1;
  std::uint16_t next_tag_ = 1;
};

// vfscore driver: mounts the 9P share.
class NinePFs final : public vfscore::FsDriver {
 public:
  explicit NinePFs(Client* client) : client_(client) {}

  const char* fs_name() const override { return "9pfs"; }
  ukarch::Status Mount(std::shared_ptr<vfscore::Node>* root) override;

 private:
  Client* client_;
};

}  // namespace uk9p

#endif  // UK9P_NINEPFS_H_
