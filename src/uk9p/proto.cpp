#include "uk9p/proto.h"

#include <cstring>

namespace uk9p {

void Writer::U16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::U32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::U64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::Str(std::string_view s) {
  U16(static_cast<std::uint16_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Writer::Bytes(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void Writer::QidField(const Qid& q) {
  U8(q.type);
  U32(q.version);
  U64(q.path);
}

void Writer::Begin(MsgType type, std::uint16_t tag) {
  buf_.clear();
  U32(0);  // size placeholder
  U8(static_cast<std::uint8_t>(type));
  U16(tag);
}

std::vector<std::uint8_t> Writer::Finish() {
  std::uint32_t size = static_cast<std::uint32_t>(buf_.size());
  std::memcpy(buf_.data(), &size, 4);
  return std::move(buf_);
}

bool Reader::Need(std::size_t n) {
  if (!ok_ || pos_ + n > data_.size()) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t Reader::U8() {
  if (!Need(1)) {
    return 0;
  }
  return data_[pos_++];
}

std::uint16_t Reader::U16() {
  if (!Need(2)) {
    return 0;
  }
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
  pos_ += 2;
  return v;
}

std::uint32_t Reader::U32() {
  if (!Need(4)) {
    return 0;
  }
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  }
  pos_ += 4;
  return v;
}

std::uint64_t Reader::U64() {
  if (!Need(8)) {
    return 0;
  }
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  }
  pos_ += 8;
  return v;
}

std::string Reader::Str() {
  std::uint16_t len = U16();
  if (!Need(len)) {
    return {};
  }
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return s;
}

std::vector<std::uint8_t> Reader::Bytes(std::size_t n) {
  if (!Need(n)) {
    return {};
  }
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Qid Reader::QidField() {
  Qid q;
  q.type = U8();
  q.version = U32();
  q.path = U64();
  return q;
}

std::optional<Header> ParseHeader(std::span<const std::uint8_t> msg) {
  if (msg.size() < 7) {
    return std::nullopt;
  }
  Reader r(msg);
  Header h{};
  h.size = r.U32();
  h.type = static_cast<MsgType>(r.U8());
  h.tag = r.U16();
  if (h.size < 7 || h.size > msg.size()) {
    return std::nullopt;
  }
  return h;
}

const char* MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kTversion: return "Tversion";
    case MsgType::kRversion: return "Rversion";
    case MsgType::kTattach: return "Tattach";
    case MsgType::kRattach: return "Rattach";
    case MsgType::kRerror: return "Rerror";
    case MsgType::kTwalk: return "Twalk";
    case MsgType::kRwalk: return "Rwalk";
    case MsgType::kTopen: return "Topen";
    case MsgType::kRopen: return "Ropen";
    case MsgType::kTcreate: return "Tcreate";
    case MsgType::kRcreate: return "Rcreate";
    case MsgType::kTread: return "Tread";
    case MsgType::kRread: return "Rread";
    case MsgType::kTwrite: return "Twrite";
    case MsgType::kRwrite: return "Rwrite";
    case MsgType::kTclunk: return "Tclunk";
    case MsgType::kRclunk: return "Rclunk";
    case MsgType::kTremove: return "Tremove";
    case MsgType::kRremove: return "Rremove";
    case MsgType::kTstat: return "Tstat";
    case MsgType::kRstat: return "Rstat";
    case MsgType::kTwstat: return "Twstat";
    case MsgType::kRwstat: return "Rwstat";
  }
  return "?";
}

}  // namespace uk9p
