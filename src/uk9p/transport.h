// uk9p/transport.h - virtio-9p transport: 9P RPCs over a split virtqueue.
//
// Matches §5.2: "our 9pfs implementation relies on virtio-9p as transport for
// KVM". A request is a two-segment chain (T-message, device-writable reply
// buffer) in guest memory; the embedded server half pops the chain, handles
// the message, writes the reply, and the usual VM-exit/interrupt costs are
// charged to the virtual clock. Fig 20's latencies are this path.
#ifndef UK9P_TRANSPORT_H_
#define UK9P_TRANSPORT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "uk9p/server.h"
#include "ukplat/clock.h"
#include "ukplat/memregion.h"
#include "ukplat/virtqueue.h"

namespace uk9p {

class Virtio9pTransport {
 public:
  // Carves ring + request/reply buffers from |mem|. |msize| bounds a single
  // message (buffers are sized to it).
  Virtio9pTransport(ukplat::MemRegion* mem, ukplat::Clock* clock, Server* server,
                    std::uint32_t msize = 64 * 1024, std::uint16_t qsize = 8);

  bool ok() const { return ok_; }

  // Synchronous RPC: sends |request|, returns the reply bytes (empty on
  // transport failure). Real ring traversal + copies; exit/irq costs charged.
  std::vector<std::uint8_t> Rpc(std::span<const std::uint8_t> request);

  std::uint32_t msize() const { return msize_; }
  std::uint64_t rpcs() const { return rpcs_; }

 private:
  void DeviceRun();

  ukplat::MemRegion* mem_;
  ukplat::Clock* clock_;
  Server* server_;
  std::uint32_t msize_;
  std::unique_ptr<ukplat::Virtqueue> vq_;
  std::uint64_t req_gpa_ = 0;
  std::uint64_t resp_gpa_ = 0;
  bool ok_ = false;
  std::uint64_t rpcs_ = 0;
};

}  // namespace uk9p

#endif  // UK9P_TRANSPORT_H_
