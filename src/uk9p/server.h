// uk9p/server.h - host-side 9P file server.
//
// Plays the role of QEMU's virtfs/9p device backend: it owns a host directory
// tree (in-memory here — the paper's host share was a 1 GB directory of
// random data, which the Fig 20 bench recreates) and answers one 9P T-message
// at a time with the matching R-message.
#ifndef UK9P_SERVER_H_
#define UK9P_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "uk9p/proto.h"

namespace uk9p {

// Host-side filesystem tree the server exports.
struct HostNode {
  std::string name;
  bool is_dir = false;
  std::vector<std::uint8_t> data;
  std::map<std::string, std::unique_ptr<HostNode>> children;
  std::uint64_t qid_path = 0;

  HostNode* AddDir(const std::string& child_name);
  HostNode* AddFile(const std::string& child_name, std::vector<std::uint8_t> content);
};

class Server {
 public:
  Server();

  // The exported share; populate before serving.
  HostNode& root() { return *root_; }

  // Handles one complete T-message, returns the R-message bytes.
  std::vector<std::uint8_t> Handle(std::span<const std::uint8_t> request);

  std::uint32_t msize() const { return msize_; }
  std::uint64_t requests_served() const { return requests_served_; }

 private:
  struct Fid {
    HostNode* node;
    bool open = false;
  };

  std::vector<std::uint8_t> Error(std::uint16_t tag, std::string_view ename);
  Qid QidOf(const HostNode& n) const;

  std::vector<std::uint8_t> Version(std::uint16_t tag, Reader& r);
  std::vector<std::uint8_t> Attach(std::uint16_t tag, Reader& r);
  std::vector<std::uint8_t> Walk(std::uint16_t tag, Reader& r);
  std::vector<std::uint8_t> Open(std::uint16_t tag, Reader& r);
  std::vector<std::uint8_t> Create(std::uint16_t tag, Reader& r);
  std::vector<std::uint8_t> Read(std::uint16_t tag, Reader& r);
  std::vector<std::uint8_t> Write(std::uint16_t tag, Reader& r);
  std::vector<std::uint8_t> Clunk(std::uint16_t tag, Reader& r);
  std::vector<std::uint8_t> Remove(std::uint16_t tag, Reader& r);
  std::vector<std::uint8_t> StatMsg(std::uint16_t tag, Reader& r);
  std::vector<std::uint8_t> Wstat(std::uint16_t tag, Reader& r);

  std::unique_ptr<HostNode> root_;
  std::map<std::uint32_t, Fid> fids_;
  std::uint32_t msize_ = 64 * 1024;
  std::uint64_t next_qid_ = 1;
  std::uint64_t requests_served_ = 0;

  std::uint64_t NextQid() { return next_qid_++; }
  friend struct HostNode;
};

}  // namespace uk9p

#endif  // UK9P_SERVER_H_
