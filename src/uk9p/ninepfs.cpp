#include "uk9p/ninepfs.h"

#include <cstring>

namespace uk9p {

namespace {

// A vfscore node backed by a 9P fid. The fid references the *path*; reads and
// writes clone a fresh fid per operation burst via walk, like the real 9pfs
// keeps per-open fids.
class NinePNode final : public vfscore::Node {
 public:
  NinePNode(Client* client, std::uint32_t fid, bool is_dir)
      : client_(client), fid_(fid), is_dir_(is_dir) {}

  ~NinePNode() override { client_->Clunk(fid_); }

  vfscore::NodeType type() const override {
    return is_dir_ ? vfscore::NodeType::kDirectory : vfscore::NodeType::kRegular;
  }

  vfscore::NodeStat Stat() const override {
    uk9p::Stat st;
    vfscore::NodeStat out;
    if (client_->Stat(fid_, &st)) {
      out.type = (st.qid.type & kQtDir) != 0 ? vfscore::NodeType::kDirectory
                                             : vfscore::NodeType::kRegular;
      out.size = st.length;
      out.inode = st.qid.path;
    }
    return out;
  }

  ukarch::Status Lookup(std::string_view name,
                        std::shared_ptr<vfscore::Node>* out) override {
    if (!is_dir_) {
      return ukarch::Status::kNotDir;
    }
    std::uint32_t newfid = client_->AllocFid();
    std::vector<Qid> qids;
    if (!client_->Walk(fid_, newfid, {std::string(name)}, &qids) || qids.size() != 1) {
      return ukarch::Status::kNoEnt;
    }
    *out = std::make_shared<NinePNode>(client_, newfid, (qids[0].type & kQtDir) != 0);
    return ukarch::Status::kOk;
  }

  ukarch::Status Create(std::string_view name, vfscore::NodeType ntype,
                        std::shared_ptr<vfscore::Node>* out) override {
    if (!is_dir_) {
      return ukarch::Status::kNotDir;
    }
    // Tcreate moves the fid to the new file, so clone the dir fid first.
    std::uint32_t newfid = client_->AllocFid();
    std::vector<Qid> qids;
    if (!client_->Walk(fid_, newfid, {}, &qids)) {
      return ukarch::Status::kIo;
    }
    Qid qid;
    if (!client_->Create(newfid, std::string(name),
                         ntype == vfscore::NodeType::kDirectory, &qid)) {
      client_->Clunk(newfid);
      return ukarch::Status::kExist;
    }
    *out = std::make_shared<NinePNode>(client_, newfid,
                                       ntype == vfscore::NodeType::kDirectory);
    return ukarch::Status::kOk;
  }

  ukarch::Status Remove(std::string_view name) override {
    std::uint32_t victim = client_->AllocFid();
    std::vector<Qid> qids;
    if (!client_->Walk(fid_, victim, {std::string(name)}, &qids) || qids.size() != 1) {
      return ukarch::Status::kNoEnt;
    }
    if (!client_->RemoveFid(victim)) {
      return ukarch::Status::kIo;
    }
    return ukarch::Status::kOk;
  }

  ukarch::Status ReadDir(std::vector<vfscore::DirEntry>* out) override {
    if (!is_dir_) {
      return ukarch::Status::kNotDir;
    }
    EnsureOpen();
    std::vector<uk9p::Stat> entries;
    if (!client_->ListDir(fid_, &entries)) {
      return ukarch::Status::kIo;
    }
    out->clear();
    for (const uk9p::Stat& st : entries) {
      out->push_back(vfscore::DirEntry{
          st.name, (st.qid.type & kQtDir) != 0 ? vfscore::NodeType::kDirectory
                                               : vfscore::NodeType::kRegular});
    }
    return ukarch::Status::kOk;
  }

  std::int64_t Read(std::uint64_t offset, std::span<std::byte> out) override {
    if (is_dir_) {
      return ukarch::Raw(ukarch::Status::kIsDir);
    }
    EnsureOpen();
    // Split into iounit-sized reads like the real client.
    std::size_t done = 0;
    while (done < out.size()) {
      std::size_t chunk = out.size() - done;
      if (chunk > client_->iounit()) {
        chunk = client_->iounit();
      }
      std::int64_t n = client_->Read(fid_, offset + done, out.subspan(done, chunk));
      if (n < 0) {
        return done > 0 ? static_cast<std::int64_t>(done) : n;
      }
      done += static_cast<std::size_t>(n);
      if (n == 0) {
        break;  // EOF
      }
    }
    return static_cast<std::int64_t>(done);
  }

  std::int64_t Write(std::uint64_t offset, std::span<const std::byte> in) override {
    if (is_dir_) {
      return ukarch::Raw(ukarch::Status::kIsDir);
    }
    EnsureOpen();
    std::size_t done = 0;
    while (done < in.size()) {
      std::size_t chunk = in.size() - done;
      if (chunk > client_->iounit()) {
        chunk = client_->iounit();
      }
      std::int64_t n = client_->Write(fid_, offset + done, in.subspan(done, chunk));
      if (n <= 0) {
        return done > 0 ? static_cast<std::int64_t>(done) : n;
      }
      done += static_cast<std::size_t>(n);
    }
    return static_cast<std::int64_t>(done);
  }

  ukarch::Status Truncate(std::uint64_t size) override {
    if (is_dir_) {
      return ukarch::Status::kIsDir;
    }
    return client_->WstatSize(fid_, size) ? ukarch::Status::kOk : ukarch::Status::kIo;
  }

 private:
  void EnsureOpen() {
    if (!opened_) {
      Qid qid;
      opened_ = client_->Open(fid_, kORdWr, &qid);
    }
  }

  Client* client_;
  std::uint32_t fid_;
  bool is_dir_;
  bool opened_ = false;
};

}  // namespace

std::vector<std::uint8_t> Client::Call(Writer& w, MsgType expect) {
  std::vector<std::uint8_t> reply = transport_->Rpc(w.Finish());
  auto hdr = ParseHeader(reply);
  if (!hdr.has_value() || hdr->type != expect) {
    return {};
  }
  return reply;
}

bool Client::Start() {
  Writer w;
  w.Begin(MsgType::kTversion, kNoTag);
  w.U32(transport_->msize());
  w.Str("9P2000");
  if (Call(w, MsgType::kRversion).empty()) {
    return false;
  }
  Writer a;
  a.Begin(MsgType::kTattach, next_tag_++);
  a.U32(kRootFid);
  a.U32(kNoFid);
  a.Str("unikraft");
  a.Str("/");
  return !Call(a, MsgType::kRattach).empty();
}

bool Client::Walk(std::uint32_t fid, std::uint32_t newfid,
                  const std::vector<std::string>& names, std::vector<Qid>* qids) {
  Writer w;
  w.Begin(MsgType::kTwalk, next_tag_++);
  w.U32(fid);
  w.U32(newfid);
  w.U16(static_cast<std::uint16_t>(names.size()));
  for (const std::string& n : names) {
    w.Str(n);
  }
  std::vector<std::uint8_t> reply = Call(w, MsgType::kRwalk);
  if (reply.empty()) {
    return false;
  }
  Reader r(Payload(reply));
  std::uint16_t nwqid = r.U16();
  qids->clear();
  for (std::uint16_t i = 0; i < nwqid; ++i) {
    qids->push_back(r.QidField());
  }
  return r.ok() && nwqid == names.size();
}

bool Client::Open(std::uint32_t fid, std::uint8_t mode, Qid* qid) {
  Writer w;
  w.Begin(MsgType::kTopen, next_tag_++);
  w.U32(fid);
  w.U8(mode);
  std::vector<std::uint8_t> reply = Call(w, MsgType::kRopen);
  if (reply.empty()) {
    return false;
  }
  Reader r(Payload(reply));
  *qid = r.QidField();
  return r.ok();
}

bool Client::Create(std::uint32_t fid, const std::string& name, bool dir, Qid* qid) {
  Writer w;
  w.Begin(MsgType::kTcreate, next_tag_++);
  w.U32(fid);
  w.Str(name);
  w.U32(dir ? kDmDir : 0);
  w.U8(kORdWr);
  std::vector<std::uint8_t> reply = Call(w, MsgType::kRcreate);
  if (reply.empty()) {
    return false;
  }
  Reader r(Payload(reply));
  *qid = r.QidField();
  return r.ok();
}

std::int64_t Client::Read(std::uint32_t fid, std::uint64_t offset,
                          std::span<std::byte> out) {
  Writer w;
  w.Begin(MsgType::kTread, next_tag_++);
  w.U32(fid);
  w.U64(offset);
  w.U32(static_cast<std::uint32_t>(out.size()));
  std::vector<std::uint8_t> reply = Call(w, MsgType::kRread);
  if (reply.empty()) {
    return ukarch::Raw(ukarch::Status::kIo);
  }
  Reader r(Payload(reply));
  std::uint32_t count = r.U32();
  std::vector<std::uint8_t> data = r.Bytes(count);
  if (!r.ok() || data.size() > out.size()) {
    return ukarch::Raw(ukarch::Status::kIo);
  }
  if (!data.empty()) {
    std::memcpy(out.data(), data.data(), data.size());
  }
  return static_cast<std::int64_t>(data.size());
}

std::int64_t Client::Write(std::uint32_t fid, std::uint64_t offset,
                           std::span<const std::byte> in) {
  Writer w;
  w.Begin(MsgType::kTwrite, next_tag_++);
  w.U32(fid);
  w.U64(offset);
  w.U32(static_cast<std::uint32_t>(in.size()));
  w.Bytes(std::span(reinterpret_cast<const std::uint8_t*>(in.data()), in.size()));
  std::vector<std::uint8_t> reply = Call(w, MsgType::kRwrite);
  if (reply.empty()) {
    return ukarch::Raw(ukarch::Status::kIo);
  }
  Reader r(Payload(reply));
  std::uint32_t count = r.U32();
  return r.ok() ? static_cast<std::int64_t>(count) : ukarch::Raw(ukarch::Status::kIo);
}

bool Client::Clunk(std::uint32_t fid) {
  Writer w;
  w.Begin(MsgType::kTclunk, next_tag_++);
  w.U32(fid);
  return !Call(w, MsgType::kRclunk).empty();
}

bool Client::RemoveFid(std::uint32_t fid) {
  Writer w;
  w.Begin(MsgType::kTremove, next_tag_++);
  w.U32(fid);
  return !Call(w, MsgType::kRremove).empty();
}

bool Client::Stat(std::uint32_t fid, uk9p::Stat* out) {
  Writer w;
  w.Begin(MsgType::kTstat, next_tag_++);
  w.U32(fid);
  std::vector<std::uint8_t> reply = Call(w, MsgType::kRstat);
  if (reply.empty()) {
    return false;
  }
  Reader r(Payload(reply));
  out->qid = r.QidField();
  out->length = r.U64();
  out->name = r.Str();
  return r.ok();
}

bool Client::WstatSize(std::uint32_t fid, std::uint64_t size) {
  Writer w;
  w.Begin(MsgType::kTwstat, next_tag_++);
  w.U32(fid);
  w.U64(size);
  return !Call(w, MsgType::kRwstat).empty();
}

bool Client::ListDir(std::uint32_t fid, std::vector<uk9p::Stat>* entries) {
  Writer w;
  w.Begin(MsgType::kTread, next_tag_++);
  w.U32(fid);
  w.U64(0);
  w.U32(iounit());
  std::vector<std::uint8_t> reply = Call(w, MsgType::kRread);
  if (reply.empty()) {
    return false;
  }
  Reader r(Payload(reply));
  std::uint32_t payload_len = r.U32();
  std::vector<std::uint8_t> payload = r.Bytes(payload_len);
  if (!r.ok()) {
    return false;
  }
  Reader body(payload);
  std::uint16_t count = body.U16();
  entries->clear();
  for (std::uint16_t i = 0; i < count; ++i) {
    uk9p::Stat st;
    st.qid = body.QidField();
    st.name = body.Str();
    entries->push_back(std::move(st));
  }
  return body.ok();
}

ukarch::Status NinePFs::Mount(std::shared_ptr<vfscore::Node>* root) {
  if (!client_->Start()) {
    return ukarch::Status::kIo;
  }
  // Clone the root fid so the node owns its own.
  std::uint32_t fid = client_->AllocFid();
  std::vector<Qid> qids;
  if (!client_->Walk(client_->root_fid(), fid, {}, &qids)) {
    return ukarch::Status::kIo;
  }
  *root = std::make_shared<NinePNode>(client_, fid, true);
  return ukarch::Status::kOk;
}

}  // namespace uk9p
