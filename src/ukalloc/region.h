// ukalloc/region.h - bump ("bootalloc") allocator, backend 5.
//
// The paper's bootalloc: a region allocator whose free() is a no-op, intended
// for just-in-time instantiation where boot time beats memory reuse (fastest
// bar in Fig 14). Each allocation is prefixed with an 8-byte size so
// realloc/usable-size still work.
#ifndef UKALLOC_REGION_H_
#define UKALLOC_REGION_H_

#include "ukalloc/allocator.h"

namespace ukalloc {

class RegionAllocator final : public Allocator {
 public:
  RegionAllocator(std::byte* base, std::size_t len);

  const char* name() const override { return "bootalloc"; }

  std::size_t bytes_remaining() const {
    return static_cast<std::size_t>(limit_ - brk_);
  }

 protected:
  void* DoMalloc(std::size_t size) override;
  void DoFree(void* /*ptr*/) override {}  // region allocators never reclaim
  std::size_t DoUsableSize(const void* ptr) const override;
  void* DoMemalign(std::size_t align, std::size_t size, bool* handled) override;

 private:
  std::byte* brk_ = nullptr;
  std::byte* limit_ = nullptr;
};

}  // namespace ukalloc

#endif  // UKALLOC_REGION_H_
