#include "ukalloc/mimalloc_lite.h"

#include <cstring>

#include "ukarch/align.h"

namespace ukalloc {

using ukarch::AlignUp;

MimallocLite::MimallocLite(std::byte* base, std::size_t len) : Allocator(base, len) {
  auto start = AlignUp(reinterpret_cast<std::uintptr_t>(base), kPageBytes);
  auto end = reinterpret_cast<std::uintptr_t>(base) + len;
  if (end <= start + kPageBytes) {
    // Region too small for even one aligned page: fall back to a single
    // unaligned page area so tiny heaps still work for small allocations.
    start = AlignUp(reinterpret_cast<std::uintptr_t>(base), 64);
    if (end <= start + 2 * kPageHeaderBytes) {
      return;
    }
  }
  pages_base_ = reinterpret_cast<std::byte*>(start);
  total_pages_ = (end - start) / kPageBytes;
}

// Size classes: 16..128 in steps of 16, then four subdivisions per power of
// two up to 8 KiB — the same shape as mimalloc's class table.
unsigned MimallocLite::SizeClassOf(std::size_t size) {
  if (size <= 128) {
    return static_cast<unsigned>((size + 15) / 16 - 1);  // classes 0..7
  }
  unsigned cls = 8;
  std::size_t lo = 128;
  while (lo < kMaxSmall) {
    std::size_t step = lo / 4;
    for (int i = 0; i < 4; ++i) {
      lo += step;
      if (size <= lo) {
        return cls;
      }
      ++cls;
    }
  }
  return kNumClasses;  // out of small range
}

std::size_t MimallocLite::ClassBlockSize(unsigned cls) {
  if (cls <= 7) {
    return (cls + 1) * 16;
  }
  std::size_t lo = 128;
  unsigned c = 8;
  while (true) {
    std::size_t step = lo / 4;
    for (int i = 0; i < 4; ++i) {
      lo += step;
      if (c == cls) {
        return lo;
      }
      ++c;
    }
  }
}

MimallocLite::PageHeader* MimallocLite::PageOf(const void* ptr) const {
  auto off = static_cast<std::uint64_t>(static_cast<const std::byte*>(ptr) - pages_base_);
  std::uint64_t page_idx = off / kPageBytes;
  auto* hdr = reinterpret_cast<PageHeader*>(pages_base_ + page_idx * kPageBytes);
  // Huge spans only stamp their first page; walk back while the candidate
  // header is not stamped. Bounded by the span length in practice.
  while (reinterpret_cast<std::byte*>(hdr) > pages_base_ && hdr->magic != kPageMagic &&
         hdr->magic != kHugeMagic) {
    hdr = reinterpret_cast<PageHeader*>(reinterpret_cast<std::byte*>(hdr) - kPageBytes);
  }
  if (hdr->magic != kPageMagic && hdr->magic != kHugeMagic) {
    return nullptr;
  }
  return hdr;
}

std::byte* MimallocLite::AcquireSpan(std::uint64_t pages) {
  // First-fit over recycled spans, splitting the tail back.
  FreeSpan** link = &free_spans_;
  while (*link != nullptr) {
    FreeSpan* span = *link;
    if (span->pages >= pages) {
      if (span->pages > pages) {
        auto* rest = reinterpret_cast<FreeSpan*>(
            reinterpret_cast<std::byte*>(span) + pages * kPageBytes);
        rest->pages = span->pages - pages;
        rest->next = span->next;
        *link = rest;
      } else {
        *link = span->next;
      }
      return reinterpret_cast<std::byte*>(span);
    }
    link = &span->next;
  }
  if (next_fresh_page_ + pages > total_pages_) {
    return nullptr;
  }
  std::byte* addr = pages_base_ + next_fresh_page_ * kPageBytes;
  next_fresh_page_ += pages;
  return addr;
}

void MimallocLite::ReleaseSpan(std::byte* addr, std::uint64_t pages) {
  auto* span = reinterpret_cast<FreeSpan*>(addr);
  span->pages = pages;
  span->next = free_spans_;
  free_spans_ = span;
}

void MimallocLite::LinkPartial(PageHeader* page, unsigned cls) {
  page->next_partial = partial_[cls];
  page->prev_partial = nullptr;
  if (partial_[cls] != nullptr) {
    partial_[cls]->prev_partial = page;
  }
  partial_[cls] = page;
}

void MimallocLite::UnlinkPartial(PageHeader* page, unsigned cls) {
  if (page->prev_partial != nullptr) {
    page->prev_partial->next_partial = page->next_partial;
  } else if (partial_[cls] == page) {
    partial_[cls] = page->next_partial;
  }
  if (page->next_partial != nullptr) {
    page->next_partial->prev_partial = page->prev_partial;
  }
  page->next_partial = nullptr;
  page->prev_partial = nullptr;
}

MimallocLite::PageHeader* MimallocLite::NewPage(unsigned cls) {
  std::byte* addr = AcquireSpan(1);
  if (addr == nullptr) {
    return nullptr;
  }
  auto* page = reinterpret_cast<PageHeader*>(addr);
  *page = PageHeader{};
  page->magic = kPageMagic;
  page->cls = cls;
  page->block_size = static_cast<std::uint32_t>(ClassBlockSize(cls));
  page->capacity =
      static_cast<std::uint32_t>((kPageBytes - kPageHeaderBytes) / page->block_size);
  ++pages_in_use_;
  LinkPartial(page, cls);
  return page;
}

void* MimallocLite::DoMalloc(std::size_t size) {
  if (pages_base_ == nullptr) {
    return nullptr;
  }
  if (size > kMaxSmall) {
    // Huge path: whole span with a stamped first page.
    std::uint64_t pages =
        (AlignUp(size + kPageHeaderBytes, kPageBytes)) / kPageBytes;
    std::byte* addr = AcquireSpan(pages);
    if (addr == nullptr) {
      return nullptr;
    }
    auto* page = reinterpret_cast<PageHeader*>(addr);
    *page = PageHeader{};
    page->magic = kHugeMagic;
    page->block_size = 0;
    page->span_pages = pages;
    page->used = 1;
    pages_in_use_ += pages;
    return addr + kPageHeaderBytes;
  }

  unsigned cls = SizeClassOf(size);
  PageHeader* page = partial_[cls];
  if (page == nullptr) {
    page = NewPage(cls);
    if (page == nullptr) {
      return nullptr;
    }
  }
  void* block = nullptr;
  if (page->free_head != nullptr) {
    block = page->free_head;
    std::memcpy(&page->free_head, block, sizeof(void*));
  } else {
    // Lazy bump extension.
    block = reinterpret_cast<std::byte*>(page) + kPageHeaderBytes +
            static_cast<std::size_t>(page->bump_next) * page->block_size;
    ++page->bump_next;
  }
  ++page->used;
  if (page->free_head == nullptr && page->bump_next >= page->capacity) {
    UnlinkPartial(page, cls);  // page is now full
  }
  return block;
}

void MimallocLite::DoFree(void* ptr) {
  PageHeader* page = PageOf(ptr);
  if (page == nullptr) {
    return;
  }
  if (page->magic == kHugeMagic) {
    std::uint64_t pages = page->span_pages;
    page->magic = 0;
    pages_in_use_ -= pages;
    ReleaseSpan(reinterpret_cast<std::byte*>(page), pages);
    return;
  }
  bool was_full = page->free_head == nullptr && page->bump_next >= page->capacity;
  std::memcpy(ptr, &page->free_head, sizeof(void*));
  page->free_head = ptr;
  --page->used;
  if (was_full) {
    LinkPartial(page, page->cls);
  } else if (page->used == 0) {
    // Retire empty pages so other classes can reuse them.
    UnlinkPartial(page, page->cls);
    page->magic = 0;
    --pages_in_use_;
    ReleaseSpan(reinterpret_cast<std::byte*>(page), 1);
  }
}

std::size_t MimallocLite::DoUsableSize(const void* ptr) const {
  const PageHeader* page = PageOf(ptr);
  if (page == nullptr) {
    return 0;
  }
  if (page->magic == kHugeMagic) {
    return page->span_pages * kPageBytes - kPageHeaderBytes;
  }
  return page->block_size;
}

}  // namespace ukalloc
