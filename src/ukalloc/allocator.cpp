#include "ukalloc/allocator.h"

#include <cstring>

#include "ukarch/align.h"

namespace ukalloc {
namespace {

// Marker placed immediately before pointers produced by the generic memalign
// fallback so Free() can recover the raw allocation.
constexpr std::uint64_t kAlignMagic = 0xA11A'11C4'0FF5'E7F0ull;

struct AlignPrefix {
  void* raw;
  std::uint64_t magic;
};

}  // namespace

void* Allocator::Malloc(std::size_t size) {
  if (size == 0) {
    size = 1;
  }
  void* p = DoMalloc(size);
  ++stats_.malloc_calls;
  if (p == nullptr) {
    ++stats_.failed_allocs;
    return nullptr;
  }
  stats_.bytes_in_use += DoUsableSize(p);
  if (stats_.bytes_in_use > stats_.peak_bytes) {
    stats_.peak_bytes = stats_.bytes_in_use;
  }
  return p;
}

bool Allocator::IsAlignWrapped(const void* ptr) const {
  auto* b = static_cast<const std::byte*>(ptr);
  if (b < base_ + sizeof(AlignPrefix) || b >= base_ + len_) {
    return false;
  }
  AlignPrefix pfx;
  std::memcpy(&pfx, b - sizeof(AlignPrefix), sizeof(pfx));
  return pfx.magic == kAlignMagic && Owns(pfx.raw) && pfx.raw < ptr;
}

void Allocator::Free(void* ptr) {
  if (ptr == nullptr) {
    return;
  }
  ++stats_.free_calls;
  if (IsAlignWrapped(ptr)) {
    AlignPrefix pfx;
    std::memcpy(&pfx, static_cast<std::byte*>(ptr) - sizeof(AlignPrefix), sizeof(pfx));
    std::size_t sz = DoUsableSize(pfx.raw);
    stats_.bytes_in_use -= sz < stats_.bytes_in_use ? sz : stats_.bytes_in_use;
    DoFree(pfx.raw);
    return;
  }
  std::size_t sz = DoUsableSize(ptr);
  stats_.bytes_in_use -= sz < stats_.bytes_in_use ? sz : stats_.bytes_in_use;
  DoFree(ptr);
}

void* Allocator::Calloc(std::size_t n, std::size_t size) {
  if (size != 0 && n > SIZE_MAX / size) {
    return nullptr;
  }
  std::size_t total = n * size;
  void* p = Malloc(total);
  if (p != nullptr) {
    std::memset(p, 0, total);
  }
  return p;
}

void* Allocator::Realloc(void* ptr, std::size_t new_size) {
  if (ptr == nullptr) {
    return Malloc(new_size);
  }
  if (new_size == 0) {
    Free(ptr);
    return nullptr;
  }
  std::size_t old = UsableSize(ptr);
  if (old >= new_size) {
    return ptr;  // shrink in place
  }
  void* np = Malloc(new_size);
  if (np == nullptr) {
    return nullptr;
  }
  std::memcpy(np, ptr, old);
  Free(ptr);
  return np;
}

std::size_t Allocator::UsableSize(void* ptr) const {
  if (ptr == nullptr) {
    return 0;
  }
  if (IsAlignWrapped(ptr)) {
    AlignPrefix pfx;
    std::memcpy(&pfx, static_cast<std::byte*>(ptr) - sizeof(AlignPrefix), sizeof(pfx));
    std::size_t raw_usable = DoUsableSize(pfx.raw);
    std::size_t shift = static_cast<std::size_t>(static_cast<std::byte*>(ptr) -
                                                 static_cast<std::byte*>(pfx.raw));
    return raw_usable > shift ? raw_usable - shift : 0;
  }
  return DoUsableSize(ptr);
}

void* Allocator::Memalign(std::size_t align, std::size_t size) {
  if (!ukarch::IsPow2(align)) {
    return nullptr;
  }
  if (align <= 16) {
    return Malloc(size);
  }
  bool handled = true;
  void* p = DoMemalign(align, size, &handled);
  if (handled) {
    ++stats_.malloc_calls;
    if (p == nullptr) {
      ++stats_.failed_allocs;
    } else {
      stats_.bytes_in_use += DoUsableSize(p);
      if (stats_.bytes_in_use > stats_.peak_bytes) {
        stats_.peak_bytes = stats_.bytes_in_use;
      }
    }
    return p;
  }
  return GenericMemalign(align, size);
}

void* Allocator::GenericMemalign(std::size_t align, std::size_t size) {
  // Over-allocate so an aligned address with room for the prefix always
  // exists inside the raw block, then stamp the prefix just before it.
  std::size_t slack = align + sizeof(AlignPrefix);
  void* raw = Malloc(size + slack);
  if (raw == nullptr) {
    return nullptr;
  }
  auto addr = reinterpret_cast<std::uintptr_t>(raw) + sizeof(AlignPrefix);
  addr = ukarch::AlignUp(addr, align);
  AlignPrefix pfx{raw, kAlignMagic};
  std::memcpy(reinterpret_cast<std::byte*>(addr) - sizeof(AlignPrefix), &pfx, sizeof(pfx));
  return reinterpret_cast<void*>(addr);
}

}  // namespace ukalloc
