#include "ukalloc/region.h"

#include <cstring>

#include "ukarch/align.h"

namespace ukalloc {

using ukarch::AlignUp;

namespace {
constexpr std::size_t kSizePrefix = 16;  // keeps payloads 16-aligned
}

RegionAllocator::RegionAllocator(std::byte* base, std::size_t len) : Allocator(base, len) {
  brk_ = reinterpret_cast<std::byte*>(AlignUp(reinterpret_cast<std::uintptr_t>(base), 16));
  limit_ = base + len;
}

void* RegionAllocator::DoMalloc(std::size_t size) {
  std::size_t need = AlignUp(size, 16) + kSizePrefix;
  if (brk_ + need > limit_) {
    return nullptr;
  }
  std::uint64_t sz = size;
  std::memcpy(brk_, &sz, sizeof(sz));
  void* user = brk_ + kSizePrefix;
  brk_ += need;
  return user;
}

std::size_t RegionAllocator::DoUsableSize(const void* ptr) const {
  std::uint64_t sz = 0;
  std::memcpy(&sz, static_cast<const std::byte*>(ptr) - kSizePrefix, sizeof(sz));
  return static_cast<std::size_t>(AlignUp(sz, 16));
}

void* RegionAllocator::DoMemalign(std::size_t align, std::size_t size, bool* handled) {
  *handled = true;
  auto addr = AlignUp(reinterpret_cast<std::uintptr_t>(brk_) + kSizePrefix, align);
  std::byte* user = reinterpret_cast<std::byte*>(addr);
  std::byte* start = user - kSizePrefix;
  std::byte* end = user + AlignUp(size, 16);
  if (end > limit_) {
    return nullptr;
  }
  std::uint64_t sz = size;
  std::memcpy(start, &sz, sizeof(sz));
  brk_ = end;
  return user;
}

}  // namespace ukalloc
