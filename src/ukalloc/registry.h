// ukalloc/registry.h - backend selection, the pick-an-allocator knob of §5.5.
#ifndef UKALLOC_REGISTRY_H_
#define UKALLOC_REGISTRY_H_

#include <memory>
#include <string_view>
#include <vector>

#include "ukalloc/allocator.h"

namespace ukalloc {

enum class Backend {
  kBuddy,
  kTlsf,
  kTinyAlloc,
  kMimalloc,
  kBootAlloc,
};

const char* BackendName(Backend b);
// Parses "buddy" | "tlsf" | "tinyalloc" | "mimalloc" | "bootalloc".
bool ParseBackend(std::string_view name, Backend* out);

// Instantiates the backend over [base, base+len). Never allocates host memory.
std::unique_ptr<Allocator> CreateAllocator(Backend b, std::byte* base, std::size_t len);

// All five paper backends, in the order Fig 14 plots them.
const std::vector<Backend>& AllBackends();

}  // namespace ukalloc

#endif  // UKALLOC_REGISTRY_H_
