// ukalloc/allocator.h - the ukalloc API (§3.2 of the paper).
//
// Unikraft's internal allocation interface multiplexes POSIX-style requests
// onto one of several backend allocators, each owning a separate memory
// region. We reproduce that: Allocator is the uk_alloc interface (malloc /
// calloc / memalign / realloc / free against an explicit backend object), and
// the five paper backends (buddy from Mini-OS, TLSF, tinyalloc, a mimalloc
// work-alike, and the boot region allocator) implement it over a caller-
// provided heap [base, base+len), exactly like Unikraft's init functions that
// receive the first usable byte of the heap plus its length.
//
// All bookkeeping lives inside the heap region: backends may not call the host
// malloc. That keeps Fig 11's "minimum memory to boot" experiment honest.
#ifndef UKALLOC_ALLOCATOR_H_
#define UKALLOC_ALLOCATOR_H_

#include <cstddef>
#include <cstdint>

namespace ukalloc {

struct AllocStats {
  std::uint64_t malloc_calls = 0;
  std::uint64_t free_calls = 0;
  std::uint64_t failed_allocs = 0;
  std::uint64_t bytes_in_use = 0;   // payload bytes currently handed out
  std::uint64_t peak_bytes = 0;
  std::uint64_t heap_bytes = 0;     // total region size
};

class Allocator {
 public:
  Allocator(std::byte* base, std::size_t len) : base_(base), len_(len) {
    stats_.heap_bytes = len;
  }
  virtual ~Allocator() = default;

  Allocator(const Allocator&) = delete;
  Allocator& operator=(const Allocator&) = delete;

  // POSIX-shaped entry points (the uk_malloc()/uk_free() family). Malloc
  // returns storage aligned to 16 bytes; Memalign to any power-of-two.
  void* Malloc(std::size_t size);
  void Free(void* ptr);
  void* Calloc(std::size_t n, std::size_t size);
  void* Realloc(void* ptr, std::size_t new_size);
  void* Memalign(std::size_t align, std::size_t size);

  virtual const char* name() const = 0;

  // Bytes a previously returned pointer can legally hold (>= requested).
  std::size_t UsableSize(void* ptr) const;

  const AllocStats& stats() const { return stats_; }
  std::byte* heap_base() const { return base_; }
  std::size_t heap_len() const { return len_; }

  bool Owns(const void* p) const {
    auto* b = static_cast<const std::byte*>(p);
    return b >= base_ && b < base_ + len_;
  }

 protected:
  virtual void* DoMalloc(std::size_t size) = 0;
  virtual void DoFree(void* ptr) = 0;
  virtual std::size_t DoUsableSize(const void* ptr) const = 0;
  // Backends with natural alignment support override this; returning nullptr
  // with |use_generic| untouched falls back to the over-allocate-and-shift
  // scheme implemented in the base class.
  virtual void* DoMemalign(std::size_t /*align*/, std::size_t /*size*/,
                           bool* handled) {
    *handled = false;
    return nullptr;
  }

 private:
  void* GenericMemalign(std::size_t align, std::size_t size);
  bool IsAlignWrapped(const void* ptr) const;

  std::byte* base_;
  std::size_t len_;
  AllocStats stats_;
};

}  // namespace ukalloc

#endif  // UKALLOC_ALLOCATOR_H_
