#include "ukalloc/tinyalloc.h"

#include <new>

#include "ukarch/align.h"

namespace ukalloc {

using ukarch::AlignUp;

TinyAllocator::TinyAllocator(std::byte* base, std::size_t len, std::size_t max_blocks)
    : Allocator(base, len), max_blocks_(max_blocks) {
  // Carve the descriptor table from the front of the region (tinyalloc places
  // it in static storage; inside the region keeps us self-contained).
  std::size_t table_bytes = AlignUp(sizeof(Block) * max_blocks, 16);
  if (table_bytes + 64 > len) {
    return;
  }
  blocks_ = reinterpret_cast<Block*>(base);
  for (std::size_t i = 0; i < max_blocks; ++i) {
    new (&blocks_[i]) Block();
    blocks_[i].next = i + 1 < max_blocks ? &blocks_[i + 1] : nullptr;
  }
  fresh_ = &blocks_[0];
  heap_top_ = reinterpret_cast<std::byte*>(AlignUp(
      reinterpret_cast<std::uintptr_t>(base + table_bytes), 16));
  heap_limit_ = base + len;
}

void* TinyAllocator::DoMalloc(std::size_t size) {
  if (blocks_ == nullptr) {
    return nullptr;
  }
  std::size_t num = AlignUp(size, 16);

  // First fit over the sorted free list.
  Block* prev = nullptr;
  for (Block* blk = free_; blk != nullptr; prev = blk, blk = blk->next) {
    if (blk->size >= num) {
      if (prev != nullptr) {
        prev->next = blk->next;
      } else {
        free_ = blk->next;
      }
      blk->next = used_;
      used_ = blk;
      return blk->addr;
    }
  }
  // Carve fresh space off the heap top.
  Block* blk = AllocBlock(num);
  return blk != nullptr ? blk->addr : nullptr;
}

TinyAllocator::Block* TinyAllocator::AllocBlock(std::size_t num) {
  if (fresh_ == nullptr || heap_top_ + num > heap_limit_) {
    return nullptr;
  }
  Block* blk = fresh_;
  fresh_ = blk->next;
  blk->addr = heap_top_;
  blk->size = num;
  heap_top_ += num;
  blk->next = used_;
  used_ = blk;
  return blk;
}

void TinyAllocator::DoFree(void* ptr) {
  // Find the descriptor on the used list (tinyalloc does the same walk).
  Block* prev = nullptr;
  for (Block* blk = used_; blk != nullptr; prev = blk, blk = blk->next) {
    if (blk->addr == ptr) {
      if (prev != nullptr) {
        prev->next = blk->next;
      } else {
        used_ = blk->next;
      }
      InsertFreeSorted(blk);
      return;
    }
  }
  // Unknown pointer: ignore, like ta_free on a foreign address.
}

void TinyAllocator::InsertFreeSorted(Block* blk) {
  Block* prev = nullptr;
  Block* cur = free_;
  while (cur != nullptr && cur->addr < blk->addr) {
    prev = cur;
    cur = cur->next;
  }
  blk->next = cur;
  if (prev != nullptr) {
    prev->next = blk;
  } else {
    free_ = blk;
  }
  Compact(prev != nullptr ? prev : blk);
}

void TinyAllocator::Compact(Block* blk) {
  // Merge maximal runs of physically adjacent blocks starting at |blk|
  // (tinyalloc's ta_compact logic).
  while (blk != nullptr) {
    Block* scan = blk;
    std::byte* end = blk->addr + blk->size;
    Block* next = blk->next;
    while (next != nullptr && next->addr == end) {
      end = next->addr + next->size;
      scan = next;
      next = next->next;
    }
    if (scan != blk) {
      std::size_t merged = static_cast<std::size_t>(end - blk->addr);
      blk->size = merged;
      Block* after = scan->next;
      ReleaseBlocks(blk->next, after);
      blk->next = after;
    }
    blk = blk->next;
  }
}

void TinyAllocator::ReleaseBlocks(Block* from, Block* to) {
  while (from != nullptr && from != to) {
    Block* next = from->next;
    from->addr = nullptr;
    from->size = 0;
    from->next = fresh_;
    fresh_ = from;
    from = next;
  }
}

std::size_t TinyAllocator::DoUsableSize(const void* ptr) const {
  for (const Block* blk = used_; blk != nullptr; blk = blk->next) {
    if (blk->addr == ptr) {
      return blk->size;
    }
  }
  return 0;
}

std::size_t TinyAllocator::free_list_length() const {
  std::size_t n = 0;
  for (const Block* b = free_; b != nullptr; b = b->next) {
    ++n;
  }
  return n;
}

std::size_t TinyAllocator::used_list_length() const {
  std::size_t n = 0;
  for (const Block* b = used_; b != nullptr; b = b->next) {
    ++n;
  }
  return n;
}

}  // namespace ukalloc
