// ukalloc/tinyalloc.h - port of thi-ng/tinyalloc (backend 4).
//
// tinyalloc keeps a fixed table of block descriptors and three lists: fresh
// (never used), free (sorted by address, compacted on insert) and used. Alloc
// is first-fit over the free list, falling back to carving new space off the
// heap top. The address-sorted compaction walk is what makes tinyalloc degrade
// as live-block counts grow — visible in Fig 16 where it wins below ~1000
// SQLite queries and loses beyond.
#ifndef UKALLOC_TINYALLOC_H_
#define UKALLOC_TINYALLOC_H_

#include "ukalloc/allocator.h"

namespace ukalloc {

class TinyAllocator final : public Allocator {
 public:
  // |max_blocks| mirrors tinyalloc's TA_MAX_BLOCKS compile-time knob.
  TinyAllocator(std::byte* base, std::size_t len, std::size_t max_blocks = 4096);

  const char* name() const override { return "tinyalloc"; }

  std::size_t free_list_length() const;
  std::size_t used_list_length() const;

 protected:
  void* DoMalloc(std::size_t size) override;
  void DoFree(void* ptr) override;
  std::size_t DoUsableSize(const void* ptr) const override;

 private:
  struct Block {
    std::byte* addr = nullptr;
    Block* next = nullptr;
    std::size_t size = 0;
  };

  Block* AllocBlock(std::size_t num);
  void InsertFreeSorted(Block* blk);
  void Compact(Block* blk);
  void ReleaseBlocks(Block* from, Block* to);

  Block* blocks_ = nullptr;      // descriptor table, carved from the region
  std::size_t max_blocks_ = 0;
  Block* free_ = nullptr;
  Block* used_ = nullptr;
  Block* fresh_ = nullptr;
  std::byte* heap_top_ = nullptr;   // next never-used byte
  std::byte* heap_limit_ = nullptr;
};

}  // namespace ukalloc

#endif  // UKALLOC_TINYALLOC_H_
