#include "ukalloc/tlsf.h"

#include <cstring>

#include "ukarch/align.h"

namespace ukalloc {

using ukarch::AlignDown;
using ukarch::AlignUp;
using ukarch::Fls;

TlsfAllocator::TlsfAllocator(std::byte* base, std::size_t len) : Allocator(base, len) {
  auto start = AlignUp(reinterpret_cast<std::uintptr_t>(base), kAlign);
  auto end = AlignDown(reinterpret_cast<std::uintptr_t>(base) + len, kAlign);
  // Space for one block header + payload + sentinel header.
  if (end <= start || end - start < 2 * kHeaderOverhead + kMinPayload + kAlign) {
    return;
  }
  pool_first_ = reinterpret_cast<Block*>(start);
  std::size_t payload = (end - start) - 2 * kHeaderOverhead;
  payload = AlignDown(payload, kAlign);
  pool_first_->prev_phys = nullptr;
  pool_first_->size_flags = 0;
  pool_first_->SetSize(payload);
  pool_first_->SetFree(true);

  sentinel_ = NextPhys(pool_first_);
  sentinel_->prev_phys = pool_first_;
  sentinel_->size_flags = 0;
  sentinel_->SetSize(0);
  sentinel_->SetPrevFree(true);

  InsertFree(pool_first_);
}

TlsfAllocator::Mapping TlsfAllocator::MapInsert(std::size_t size) {
  if (size < kSmallBlockSize) {
    return Mapping{0, static_cast<unsigned>(size / (kSmallBlockSize / kSlCount))};
  }
  unsigned fl = Fls(size) - 1;  // index of msb
  unsigned sl = static_cast<unsigned>((size >> (fl - kSlCountLog2)) ^ (1u << kSlCountLog2));
  return Mapping{fl - kFlShift + 1, sl};
}

TlsfAllocator::Mapping TlsfAllocator::MapSearch(std::size_t* size) {
  // Round up so any block in the found list fits (good-fit).
  if (*size >= kSmallBlockSize) {
    unsigned fl = Fls(*size) - 1;
    std::size_t round = (std::size_t{1} << (fl - kSlCountLog2)) - 1;
    *size += round;
    *size &= ~round;
  }
  return MapInsert(*size);
}

void TlsfAllocator::InsertFree(Block* b) {
  Mapping m = MapInsert(b->size());
  if (m.fl >= kFlCount) {
    m.fl = kFlCount - 1;
    m.sl = kSlCount - 1;
  }
  Block*& head = free_lists_[m.fl][m.sl];
  b->next_free = head;
  b->prev_free = nullptr;
  if (head != nullptr) {
    head->prev_free = b;
  }
  head = b;
  fl_bitmap_ |= 1ull << m.fl;
  sl_bitmap_[m.fl] |= 1u << m.sl;
  b->SetFree(true);
  NextPhys(b)->SetPrevFree(true);
  NextPhys(b)->prev_phys = b;
}

void TlsfAllocator::RemoveFree(Block* b, unsigned fl, unsigned sl) {
  if (b->prev_free != nullptr) {
    b->prev_free->next_free = b->next_free;
  } else {
    free_lists_[fl][sl] = b->next_free;
    if (free_lists_[fl][sl] == nullptr) {
      sl_bitmap_[fl] &= ~(1u << sl);
      if (sl_bitmap_[fl] == 0) {
        fl_bitmap_ &= ~(1ull << fl);
      }
    }
  }
  if (b->next_free != nullptr) {
    b->next_free->prev_free = b->prev_free;
  }
  b->SetFree(false);
  NextPhys(b)->SetPrevFree(false);
}

TlsfAllocator::Block* TlsfAllocator::FindFit(std::size_t* size) {
  Mapping m = MapSearch(size);
  if (m.fl >= kFlCount) {
    return nullptr;
  }
  // Search the second level at fl for a list >= sl.
  std::uint32_t sl_map = sl_bitmap_[m.fl] & (~0u << m.sl);
  unsigned fl = m.fl;
  if (sl_map == 0) {
    // Move up to the next non-empty first level.
    std::uint64_t fl_map = fl_bitmap_ & (~0ull << (m.fl + 1));
    if (fl_map == 0) {
      return nullptr;
    }
    fl = ukarch::Ffs(fl_map) - 1;
    sl_map = sl_bitmap_[fl];
  }
  unsigned sl = ukarch::Ffs(sl_map) - 1;
  Block* b = free_lists_[fl][sl];
  RemoveFree(b, fl, sl);
  return b;
}

TlsfAllocator::Block* TlsfAllocator::SplitIfWorthIt(Block* b, std::size_t size) {
  if (b->size() >= size + kHeaderOverhead + kMinPayload + kAlign) {
    std::size_t remain = b->size() - size - kHeaderOverhead;
    remain = AlignDown(remain, kAlign);
    std::size_t new_size = b->size() - remain - kHeaderOverhead;
    Block* next = NextPhys(b);
    b->SetSize(new_size);
    Block* rest = NextPhys(b);
    rest->prev_phys = b;
    rest->size_flags = 0;
    rest->SetSize(remain);
    next->prev_phys = rest;
    InsertFree(rest);
  }
  return b;
}

TlsfAllocator::Block* TlsfAllocator::Coalesce(Block* b) {
  // Merge with the previous physical block when free.
  if (b->IsPrevFree()) {
    Block* prev = b->prev_phys;
    Mapping m = MapInsert(prev->size());
    if (m.fl >= kFlCount) {
      m.fl = kFlCount - 1;
      m.sl = kSlCount - 1;
    }
    RemoveFree(prev, m.fl, m.sl);
    prev->SetSize(prev->size() + kHeaderOverhead + b->size());
    NextPhys(prev)->prev_phys = prev;
    b = prev;
  }
  // Merge with the next physical block when free.
  Block* next = NextPhys(b);
  if (next->IsFree() && next != sentinel_) {
    Mapping m = MapInsert(next->size());
    if (m.fl >= kFlCount) {
      m.fl = kFlCount - 1;
      m.sl = kSlCount - 1;
    }
    RemoveFree(next, m.fl, m.sl);
    b->SetSize(b->size() + kHeaderOverhead + next->size());
    NextPhys(b)->prev_phys = b;
  }
  return b;
}

void* TlsfAllocator::DoMalloc(std::size_t size) {
  if (pool_first_ == nullptr) {
    return nullptr;
  }
  std::size_t need = AlignUp(size < kMinPayload ? kMinPayload : size, kAlign);
  Block* b = FindFit(&need);
  if (b == nullptr) {
    return nullptr;
  }
  SplitIfWorthIt(b, need);
  b->SetFree(false);
  NextPhys(b)->SetPrevFree(false);
  return PayloadOf(b);
}

void TlsfAllocator::DoFree(void* ptr) {
  Block* b = BlockFromPayload(ptr);
  if (b->IsFree()) {
    return;  // double free; ignore
  }
  b = Coalesce(b);
  InsertFree(b);
}

std::size_t TlsfAllocator::DoUsableSize(const void* ptr) const {
  const Block* b = reinterpret_cast<const Block*>(static_cast<const std::byte*>(ptr) -
                                                  kHeaderOverhead);
  return b->size();
}

bool TlsfAllocator::CheckInvariants() const {
  if (pool_first_ == nullptr) {
    return true;
  }
  const Block* b = pool_first_;
  bool prev_free = false;
  while (b != sentinel_) {
    if (b->IsFree() && prev_free) {
      return false;  // two adjacent free blocks escaped coalescing
    }
    if (b->IsPrevFree() != prev_free) {
      return false;
    }
    prev_free = b->IsFree();
    const Block* next =
        reinterpret_cast<const Block*>(reinterpret_cast<const std::byte*>(b) +
                                       kHeaderOverhead + b->size());
    if (next->prev_phys != b && (prev_free || next == sentinel_)) {
      // prev_phys must be valid whenever the previous block is free.
      if (prev_free) {
        return false;
      }
    }
    b = next;
  }
  return true;
}

std::size_t TlsfAllocator::LargestFreeBlock() const {
  std::size_t largest = 0;
  for (unsigned fl = 0; fl < kFlCount; ++fl) {
    for (unsigned sl = 0; sl < kSlCount; ++sl) {
      for (const Block* b = free_lists_[fl][sl]; b != nullptr; b = b->next_free) {
        if (b->size() > largest) {
          largest = b->size();
        }
      }
    }
  }
  return largest;
}

}  // namespace ukalloc
