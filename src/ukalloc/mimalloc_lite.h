// ukalloc/mimalloc_lite.h - mimalloc work-alike (backend 3).
//
// Reproduces the design ingredients that make Microsoft's mimalloc fast and
// that the paper credits for its Redis/nginx wins: size-class pages with
// per-page free lists (free-list sharding), O(1) malloc via pop from the
// current page, lazy per-page bump extension, and page-local frees that keep
// spatial locality. Thread-local heaps are collapsed to one heap because the
// simulated unikernels here are single-core, matching the evaluation setup.
#ifndef UKALLOC_MIMALLOC_LITE_H_
#define UKALLOC_MIMALLOC_LITE_H_

#include <array>

#include "ukalloc/allocator.h"

namespace ukalloc {

class MimallocLite final : public Allocator {
 public:
  static constexpr std::size_t kPageBytes = 64 * 1024;
  static constexpr std::size_t kMaxSmall = 8 * 1024;  // larger goes to span path

  MimallocLite(std::byte* base, std::size_t len);

  const char* name() const override { return "mimalloc"; }

  // Test hooks.
  static unsigned SizeClassOf(std::size_t size);
  static std::size_t ClassBlockSize(unsigned cls);
  std::size_t PagesInUse() const { return pages_in_use_; }

 protected:
  void* DoMalloc(std::size_t size) override;
  void DoFree(void* ptr) override;
  std::size_t DoUsableSize(const void* ptr) const override;

 private:
  static constexpr std::uint32_t kPageMagic = 0x6D69'6C70;  // 'milp'
  static constexpr std::uint32_t kHugeMagic = 0x6D69'6C68;  // 'milh'
  static constexpr std::size_t kPageHeaderBytes = 64;
  static constexpr unsigned kNumClasses = 40;

  struct PageHeader {
    std::uint32_t magic = 0;
    std::uint32_t cls = 0;
    std::uint32_t block_size = 0;
    std::uint32_t capacity = 0;
    std::uint32_t used = 0;
    std::uint32_t bump_next = 0;       // next never-allocated slot
    void* free_head = nullptr;         // page-local free list
    PageHeader* next_partial = nullptr;
    PageHeader* prev_partial = nullptr;
    std::uint64_t span_pages = 1;      // for huge spans: pages covered
  };
  static_assert(sizeof(PageHeader) <= kPageHeaderBytes);

  struct FreeSpan {                    // lives at the start of a free span
    FreeSpan* next;
    std::uint64_t pages;
  };

  PageHeader* PageOf(const void* ptr) const;
  PageHeader* NewPage(unsigned cls);
  std::byte* AcquireSpan(std::uint64_t pages);
  void ReleaseSpan(std::byte* addr, std::uint64_t pages);
  void UnlinkPartial(PageHeader* page, unsigned cls);
  void LinkPartial(PageHeader* page, unsigned cls);

  std::byte* pages_base_ = nullptr;  // 64K-aligned start of the page area
  std::uint64_t total_pages_ = 0;
  std::uint64_t next_fresh_page_ = 0;
  FreeSpan* free_spans_ = nullptr;
  std::array<PageHeader*, kNumClasses> partial_{};  // pages with free blocks
  std::size_t pages_in_use_ = 0;
};

}  // namespace ukalloc

#endif  // UKALLOC_MIMALLOC_LITE_H_
