// ukalloc/buddy.h - binary buddy allocator (the Mini-OS allocator, backend 1).
//
// Power-of-two block sizes from 32 bytes up, per-order free lists, and
// classic buddy coalescing (buddy address = offset XOR block size). Like the
// Mini-OS page allocator it descends from, init does an eager pass over the
// whole heap to build its start-bit map — that real O(heap) work is why the
// buddy backend has the slowest boot in Fig 14 of the paper, and in ours.
#ifndef UKALLOC_BUDDY_H_
#define UKALLOC_BUDDY_H_

#include <array>

#include "ukalloc/allocator.h"

namespace ukalloc {

class BuddyAllocator final : public Allocator {
 public:
  static constexpr unsigned kMinOrder = 5;   // 32-byte blocks
  static constexpr unsigned kMaxOrder = 40;  // 1 TiB cap, plenty for any heap

  BuddyAllocator(std::byte* base, std::size_t len);

  const char* name() const override { return "buddy"; }

  // Exposed for tests: number of free blocks at |order|.
  std::size_t FreeBlocksAt(unsigned order) const;
  std::uint64_t double_free_count() const { return double_frees_; }

 protected:
  void* DoMalloc(std::size_t size) override;
  void DoFree(void* ptr) override;
  std::size_t DoUsableSize(const void* ptr) const override;
  void* DoMemalign(std::size_t align, std::size_t size, bool* handled) override;

 private:
  struct FreeNode {           // lives at the start of each free block
    std::uint64_t magic;
    FreeNode* next;
    FreeNode* prev;
    unsigned order;
  };
  struct UsedHeader {         // precedes the user payload of allocated blocks
    std::uint64_t magic;
    unsigned order;
    unsigned pad;
  };
  static constexpr std::uint64_t kFreeMagic = 0xF4EE'B10C'F4EE'B10Cull;
  static constexpr std::uint64_t kUsedMagic = 0x05ED'B10C'05ED'B10Cull;
  static constexpr std::size_t kHeaderBytes = 16;

  std::uint64_t OffsetOf(const void* block) const;
  // Inserts a free block at |off|, merging with free buddies upward.
  void InsertAndCoalesce(std::uint64_t off, unsigned order);
  void PushFree(std::byte* block, unsigned order);
  std::byte* PopFree(unsigned order);
  void RemoveFree(FreeNode* node, unsigned order);
  void* AllocOrder(unsigned order);

  // Start-bit map: bit i set <=> an allocated block starts at offset i*32.
  bool StartBit(std::uint64_t off) const;
  void SetStartBit(std::uint64_t off, bool v);

  std::byte* heap_ = nullptr;       // aligned managed area
  std::size_t heap_len_ = 0;
  std::byte* bitmap_ = nullptr;     // carved from the front of the region
  std::size_t bitmap_bytes_ = 0;
  std::array<FreeNode*, kMaxOrder + 1> free_lists_{};
  std::uint64_t double_frees_ = 0;
};

}  // namespace ukalloc

#endif  // UKALLOC_BUDDY_H_
