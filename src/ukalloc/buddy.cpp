#include "ukalloc/buddy.h"

#include <cstring>

#include "ukarch/align.h"

namespace ukalloc {

using ukarch::AlignUp;
using ukarch::CeilPow2;
using ukarch::Log2Floor;

BuddyAllocator::BuddyAllocator(std::byte* base, std::size_t len) : Allocator(base, len) {
  // Reserve the start-bit map at the front of the region: one bit per minimum
  // block (32 B) of the remainder, like Mini-OS's page bitmap.
  std::size_t min_block = 1ull << kMinOrder;
  std::size_t map_bytes = len / (min_block * 8) + 1;
  map_bytes = AlignUp(map_bytes, 64);
  if (map_bytes >= len) {
    return;  // heap too small to manage; all allocations will fail
  }
  bitmap_ = base;
  bitmap_bytes_ = map_bytes;
  std::memset(bitmap_, 0, bitmap_bytes_);  // eager O(heap) init pass

  auto heap_addr = AlignUp(reinterpret_cast<std::uintptr_t>(base + map_bytes), min_block);
  heap_ = reinterpret_cast<std::byte*>(heap_addr);
  auto end_addr = reinterpret_cast<std::uintptr_t>(base) + len;
  heap_len_ = end_addr > heap_addr ? end_addr - heap_addr : 0;

  // Seed free lists page by page and coalesce upward, the way Mini-OS's
  // init_mm()/free_pages() hands memory to the buddy system. This is real
  // O(#pages) work at boot — the reason the buddy backend has the slowest
  // boot bar in Fig 14.
  constexpr unsigned kPageOrder = 12;  // 4 KiB seeding granularity
  std::uint64_t off = 0;
  std::uint64_t remain = heap_len_;
  while (remain >= min_block) {
    unsigned order = kPageOrder;
    while ((1ull << order) > remain || (off & ((1ull << order) - 1)) != 0) {
      --order;
    }
    InsertAndCoalesce(off, order);
    remain -= 1ull << order;
    off += 1ull << order;
  }
}

void BuddyAllocator::InsertAndCoalesce(std::uint64_t off, unsigned order) {
  while (order < kMaxOrder) {
    std::uint64_t buddy_off = off ^ (1ull << order);
    if (buddy_off + (1ull << order) > heap_len_) {
      break;
    }
    auto* buddy = reinterpret_cast<FreeNode*>(heap_ + buddy_off);
    if (buddy->magic != kFreeMagic || buddy->order != order) {
      break;
    }
    RemoveFree(buddy, order);
    off = off < buddy_off ? off : buddy_off;
    ++order;
  }
  PushFree(heap_ + off, order);
}

std::uint64_t BuddyAllocator::OffsetOf(const void* block) const {
  return static_cast<std::uint64_t>(static_cast<const std::byte*>(block) - heap_);
}

bool BuddyAllocator::StartBit(std::uint64_t off) const {
  std::uint64_t bit = off >> kMinOrder;
  return (bitmap_[bit >> 3] & std::byte{1} << (bit & 7)) != std::byte{0};
}

void BuddyAllocator::SetStartBit(std::uint64_t off, bool v) {
  std::uint64_t bit = off >> kMinOrder;
  if (v) {
    bitmap_[bit >> 3] |= std::byte{1} << (bit & 7);
  } else {
    bitmap_[bit >> 3] &= ~(std::byte{1} << (bit & 7));
  }
}

void BuddyAllocator::PushFree(std::byte* block, unsigned order) {
  auto* node = reinterpret_cast<FreeNode*>(block);
  node->magic = kFreeMagic;
  node->order = order;
  node->prev = nullptr;
  node->next = free_lists_[order];
  if (node->next != nullptr) {
    node->next->prev = node;
  }
  free_lists_[order] = node;
}

std::byte* BuddyAllocator::PopFree(unsigned order) {
  FreeNode* node = free_lists_[order];
  if (node == nullptr) {
    return nullptr;
  }
  free_lists_[order] = node->next;
  if (node->next != nullptr) {
    node->next->prev = nullptr;
  }
  node->magic = 0;
  return reinterpret_cast<std::byte*>(node);
}

void BuddyAllocator::RemoveFree(FreeNode* node, unsigned order) {
  if (node->prev != nullptr) {
    node->prev->next = node->next;
  } else {
    free_lists_[order] = node->next;
  }
  if (node->next != nullptr) {
    node->next->prev = node->prev;
  }
  node->magic = 0;
}

void* BuddyAllocator::AllocOrder(unsigned want) {
  unsigned order = want;
  while (order <= kMaxOrder && free_lists_[order] == nullptr) {
    ++order;
  }
  if (order > kMaxOrder) {
    return nullptr;
  }
  std::byte* block = PopFree(order);
  // Split down to the requested order, returning the second halves.
  while (order > want) {
    --order;
    PushFree(block + (1ull << order), order);
  }
  auto* hdr = reinterpret_cast<UsedHeader*>(block);
  hdr->magic = kUsedMagic;
  hdr->order = want;
  SetStartBit(OffsetOf(block), true);
  return block + kHeaderBytes;
}

void* BuddyAllocator::DoMalloc(std::size_t size) {
  if (heap_ == nullptr) {
    return nullptr;
  }
  std::size_t need = CeilPow2(size + kHeaderBytes);
  if (need < (1ull << kMinOrder)) {
    need = 1ull << kMinOrder;
  }
  return AllocOrder(Log2Floor(need));
}

void BuddyAllocator::DoFree(void* ptr) {
  std::byte* block = static_cast<std::byte*>(ptr) - kHeaderBytes;
  auto* hdr = reinterpret_cast<UsedHeader*>(block);
  std::uint64_t off = OffsetOf(block);
  if (hdr->magic != kUsedMagic || !StartBit(off)) {
    ++double_frees_;
    return;
  }
  unsigned order = hdr->order;
  hdr->magic = 0;
  SetStartBit(off, false);
  InsertAndCoalesce(off, order);
}

std::size_t BuddyAllocator::DoUsableSize(const void* ptr) const {
  const std::byte* block = static_cast<const std::byte*>(ptr) - kHeaderBytes;
  const auto* hdr = reinterpret_cast<const UsedHeader*>(block);
  if (hdr->magic != kUsedMagic) {
    return 0;
  }
  return (1ull << hdr->order) - kHeaderBytes;
}

void* BuddyAllocator::DoMemalign(std::size_t align, std::size_t size, bool* handled) {
  // A power-of-two block is naturally aligned to its size; the 16-byte header
  // shift breaks that, so only handle the case where over-sizing fixes it.
  if (align <= kHeaderBytes) {
    *handled = true;
    return DoMalloc(size);
  }
  *handled = false;
  return nullptr;
}

std::size_t BuddyAllocator::FreeBlocksAt(unsigned order) const {
  std::size_t n = 0;
  for (FreeNode* node = free_lists_[order]; node != nullptr; node = node->next) {
    ++n;
  }
  return n;
}

}  // namespace ukalloc
