// ukalloc/tlsf.h - Two-Level Segregated Fit allocator (backend 2).
//
// Real-time allocator from Masmano et al. (ECRTS'04), the paper's TLSF
// backend: O(1) malloc and free via a two-level bitmap over segregated free
// lists, immediate physical coalescing, good-fit search. Initialization is
// O(1) — it only stamps one pool-sized free block — which is why TLSF boots
// near the top of Fig 14.
#ifndef UKALLOC_TLSF_H_
#define UKALLOC_TLSF_H_

#include <array>

#include "ukalloc/allocator.h"

namespace ukalloc {

class TlsfAllocator final : public Allocator {
 public:
  TlsfAllocator(std::byte* base, std::size_t len);

  const char* name() const override { return "tlsf"; }

  // Test hooks: walks the physical block chain checking invariants
  // (sizes sum to pool size, no two adjacent free blocks, free blocks are on
  // the right segregated list). Returns false on the first violation.
  bool CheckInvariants() const;
  std::size_t LargestFreeBlock() const;

 protected:
  void* DoMalloc(std::size_t size) override;
  void DoFree(void* ptr) override;
  std::size_t DoUsableSize(const void* ptr) const override;

 private:
  // Canonical TLSF parameters: 32 second-level lists, 8-byte alignment.
  static constexpr unsigned kSlCountLog2 = 5;
  static constexpr unsigned kSlCount = 1u << kSlCountLog2;
  static constexpr unsigned kAlign = 16;
  static constexpr unsigned kFlShift = kSlCountLog2 + 4;  // small-block cutoff 2^9=512
  static constexpr unsigned kFlMax = 40;                  // up to 1 TiB blocks
  static constexpr unsigned kFlCount = kFlMax - kFlShift + 1;
  static constexpr std::size_t kSmallBlockSize = 1u << kFlShift;

  // Block header layout. |size| stores payload size; low bits carry flags.
  // Physically contiguous blocks are linked through size arithmetic and
  // |prev_phys| (only valid when the previous block is free).
  struct Block {
    Block* prev_phys;
    std::size_t size_flags;
    // Free-list links, valid only while the block is free:
    Block* next_free;
    Block* prev_free;

    static constexpr std::size_t kFreeBit = 1;
    static constexpr std::size_t kPrevFreeBit = 2;

    std::size_t size() const { return size_flags & ~std::size_t{3}; }
    void SetSize(std::size_t s) { size_flags = s | (size_flags & 3); }
    bool IsFree() const { return (size_flags & kFreeBit) != 0; }
    void SetFree(bool f) { size_flags = f ? size_flags | kFreeBit : size_flags & ~kFreeBit; }
    bool IsPrevFree() const { return (size_flags & kPrevFreeBit) != 0; }
    void SetPrevFree(bool f) {
      size_flags = f ? size_flags | kPrevFreeBit : size_flags & ~kPrevFreeBit;
    }
  };
  // User payload starts right after prev_phys+size_flags (16 bytes).
  static constexpr std::size_t kHeaderOverhead = 2 * sizeof(void*);
  static constexpr std::size_t kMinPayload = 2 * sizeof(void*);  // free-list links fit

  struct Mapping {
    unsigned fl;
    unsigned sl;
  };
  static Mapping MapInsert(std::size_t size);
  static Mapping MapSearch(std::size_t* size);

  Block* BlockFromPayload(void* p) const {
    return reinterpret_cast<Block*>(static_cast<std::byte*>(p) - kHeaderOverhead);
  }
  void* PayloadOf(Block* b) const {
    return reinterpret_cast<std::byte*>(b) + kHeaderOverhead;
  }
  Block* NextPhys(Block* b) const {
    return reinterpret_cast<Block*>(reinterpret_cast<std::byte*>(PayloadOf(b)) + b->size());
  }

  void InsertFree(Block* b);
  void RemoveFree(Block* b, unsigned fl, unsigned sl);
  Block* FindFit(std::size_t* size);
  Block* SplitIfWorthIt(Block* b, std::size_t size);
  Block* Coalesce(Block* b);

  std::uint64_t fl_bitmap_ = 0;
  std::array<std::uint32_t, kFlCount> sl_bitmap_{};
  std::array<std::array<Block*, kSlCount>, kFlCount> free_lists_{};
  Block* pool_first_ = nullptr;
  Block* sentinel_ = nullptr;  // zero-size terminator at the end of the pool
};

}  // namespace ukalloc

#endif  // UKALLOC_TLSF_H_
