#include "ukalloc/registry.h"

#include "ukalloc/buddy.h"
#include "ukalloc/mimalloc_lite.h"
#include "ukalloc/region.h"
#include "ukalloc/tinyalloc.h"
#include "ukalloc/tlsf.h"

namespace ukalloc {

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kBuddy: return "buddy";
    case Backend::kTlsf: return "tlsf";
    case Backend::kTinyAlloc: return "tinyalloc";
    case Backend::kMimalloc: return "mimalloc";
    case Backend::kBootAlloc: return "bootalloc";
  }
  return "?";
}

bool ParseBackend(std::string_view name, Backend* out) {
  for (Backend b : AllBackends()) {
    if (name == BackendName(b)) {
      *out = b;
      return true;
    }
  }
  return false;
}

std::unique_ptr<Allocator> CreateAllocator(Backend b, std::byte* base, std::size_t len) {
  switch (b) {
    case Backend::kBuddy: return std::make_unique<BuddyAllocator>(base, len);
    case Backend::kTlsf: return std::make_unique<TlsfAllocator>(base, len);
    case Backend::kTinyAlloc: return std::make_unique<TinyAllocator>(base, len);
    case Backend::kMimalloc: return std::make_unique<MimallocLite>(base, len);
    case Backend::kBootAlloc: return std::make_unique<RegionAllocator>(base, len);
  }
  return nullptr;
}

const std::vector<Backend>& AllBackends() {
  static const std::vector<Backend> kAll = {Backend::kBuddy, Backend::kTlsf,
                                            Backend::kTinyAlloc, Backend::kMimalloc,
                                            Backend::kBootAlloc};
  return kAll;
}

}  // namespace ukalloc
