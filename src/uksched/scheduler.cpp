#include "uksched/scheduler.h"

namespace uksched {

namespace {
// makecontext() entries take int arguments; split/join the Thread pointer.
Thread* JoinPtr(unsigned hi, unsigned lo) {
  std::uintptr_t v = (static_cast<std::uintptr_t>(hi) << 32) | lo;
  return reinterpret_cast<Thread*>(v);
}
}  // namespace

Thread::Thread(Scheduler* sched, std::string name, std::function<void()> entry,
               std::byte* stack, std::size_t stack_size)
    : sched_(sched),
      name_(std::move(name)),
      entry_(std::move(entry)),
      stack_(stack),
      stack_size_(stack_size) {}

void Thread::Trampoline(unsigned hi, unsigned lo) {
  Thread* self = JoinPtr(hi, lo);
  self->entry_();
  self->sched_->Exit();
}

Scheduler::~Scheduler() {
  for (auto& t : threads_) {
    if (t->stack_ != nullptr) {
      alloc_->Free(t->stack_);
    }
  }
}

Thread* Scheduler::CreateThread(std::string tname, std::function<void()> entry,
                                std::size_t stack_size) {
  auto* stack = static_cast<std::byte*>(alloc_->Memalign(16, stack_size));
  if (stack == nullptr) {
    return nullptr;
  }
  auto thread = std::make_unique<Thread>(this, std::move(tname), std::move(entry), stack,
                                         stack_size);
  Thread* t = thread.get();
  t->id_ = next_id_++;

  getcontext(&t->ctx_);
  t->ctx_.uc_stack.ss_sp = stack;
  t->ctx_.uc_stack.ss_size = stack_size;
  t->ctx_.uc_link = &sched_ctx_;
  auto addr = reinterpret_cast<std::uintptr_t>(t);
  makecontext(&t->ctx_, reinterpret_cast<void (*)()>(&Thread::Trampoline), 2,
              static_cast<unsigned>(addr >> 32), static_cast<unsigned>(addr & 0xffffffffu));

  threads_.push_back(std::move(thread));
  ++stats_.threads_created;
  ++live_threads_;
  Enqueue(t);
  return t;
}

void Scheduler::Enqueue(Thread* t) {
  t->state_ = ThreadState::kReady;
  ready_.push_back(t);
}

std::size_t Scheduler::Run() {
  while (!ready_.empty()) {
    Thread* t = ready_.front();
    ready_.pop_front();
    SwitchTo(t);
    ReapExited();
  }
  return live_threads_;
}

void Scheduler::SwitchTo(Thread* t) {
  current_ = t;
  t->state_ = ThreadState::kRunning;
  t->slice_start_cycles_ = clock_->cycles();
  ++stats_.context_switches;
  swapcontext(&sched_ctx_, &t->ctx_);
  current_ = nullptr;
}

void Scheduler::SwitchBack() { swapcontext(&current_->ctx_, &sched_ctx_); }

void Scheduler::Yield() {
  Thread* t = current_;
  if (t == nullptr) {
    return;  // not on a scheduler thread
  }
  ++t->voluntary_switches_;
  Enqueue(t);
  SwitchBack();
}

void Scheduler::PreemptPoint() {
  Thread* t = current_;
  if (t == nullptr) {
    return;
  }
  if (ShouldPreempt(*t)) {
    ++stats_.preemptions;
    ++t->involuntary_switches_;
    Enqueue(t);
    SwitchBack();
  }
}

void Scheduler::Exit() {
  Thread* t = current_;
  t->state_ = ThreadState::kExited;
  --live_threads_;
  SwitchBack();
}

void Scheduler::ReapExited() {
  // Stacks of exited threads are returned to the allocator promptly so
  // minimum-memory runs can recycle them.
  for (auto& t : threads_) {
    if (t->state_ == ThreadState::kExited && t->stack_ != nullptr) {
      alloc_->Free(t->stack_);
      t->stack_ = nullptr;
    }
  }
}

bool PreemptScheduler::ShouldPreempt(const Thread& t) const {
  return clock()->cycles() - t.slice_start_cycles() >= quantum_;
}

void WaitQueue::Wait() {
  Thread* t = sched_->current();
  if (t == nullptr) {
    return;
  }
  t->state_ = ThreadState::kBlocked;
  waiters_.push_back(t);
  sched_->SwitchBack();
}

std::size_t WaitQueue::Wake(std::size_t n) {
  std::size_t woken = 0;
  while (woken < n && !waiters_.empty()) {
    Thread* t = waiters_.front();
    waiters_.pop_front();
    sched_->Enqueue(t);
    ++woken;
  }
  return woken;
}

}  // namespace uksched
