#include "uksched/scheduler.h"

#include <algorithm>

// ThreadSanitizer cannot follow raw swapcontext(): every switch looks like one
// OS thread suddenly running on a foreign stack, which trips false positives
// (and breaks TSan's shadow-stack bookkeeping). Its fiber API exists exactly
// for ucontext/green-thread runtimes: announce each stack as a fiber and tell
// TSan about every switch. All of this compiles away outside tsan builds, and
// none of it is used by the ThreadScheduler backend — real std::threads hand
// off through a mutex/condvar pair TSan understands natively.
#if defined(__SANITIZE_THREAD__)
#define UKSCHED_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define UKSCHED_TSAN 1
#endif
#endif

#if defined(UKSCHED_TSAN)
extern "C" {
void* __tsan_get_current_fiber(void);
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
}
#endif

namespace uksched {

namespace {

#if defined(UKSCHED_TSAN)
void* TsanCreateFiber() { return __tsan_create_fiber(0); }
void TsanDestroyFiber(void* f) {
  if (f != nullptr) {
    __tsan_destroy_fiber(f);
  }
}
void TsanSwitchTo(void* f) {
  if (f != nullptr) {
    __tsan_switch_to_fiber(f, 0);
  }
}
void* TsanCurrentFiber() { return __tsan_get_current_fiber(); }
#else
void* TsanCreateFiber() { return nullptr; }
void TsanDestroyFiber(void* /*f*/) {}
void TsanSwitchTo(void* /*f*/) {}
void* TsanCurrentFiber() { return nullptr; }
#endif

// makecontext() entries take int arguments; split/join the Thread pointer.
Thread* JoinPtr(unsigned hi, unsigned lo) {
  std::uintptr_t v = (static_cast<std::uintptr_t>(hi) << 32) | lo;
  return reinterpret_cast<Thread*>(v);
}
}  // namespace

Thread::Thread(Scheduler* sched, std::string name, std::function<void()> entry,
               std::byte* stack, std::size_t stack_size)
    : sched_(sched),
      name_(std::move(name)),
      entry_(std::move(entry)),
      stack_(stack),
      stack_size_(stack_size) {}

void Thread::Trampoline(unsigned hi, unsigned lo) {
  Thread* self = JoinPtr(hi, lo);
  self->entry_();
  self->sched_->Exit();
}

Scheduler::~Scheduler() {
  for (auto& t : threads_) {
    if (t->waitq_ != nullptr) {
      // Unlink leftover blocked threads from their queues: a WaitQueue may
      // legitimately outlive its scheduler (member destruction order), and
      // its own dtor must then find nothing pointing back here.
      auto& w = t->waitq_->waiters_;
      w.erase(std::remove(w.begin(), w.end(), t.get()), w.end());
      t->waitq_ = nullptr;
    }
    if (t->stack_ != nullptr) {
      alloc_->Free(t->stack_);
    }
    TsanDestroyFiber(t->tsan_fiber_);
    t->tsan_fiber_ = nullptr;
  }
}

// ---- fiber backend (default) -------------------------------------------------------

bool Scheduler::PrepareThread(Thread* t, std::size_t stack_size) {
  auto* stack = static_cast<std::byte*>(alloc_->Memalign(16, stack_size));
  if (stack == nullptr) {
    return false;
  }
  t->stack_ = stack;
  t->stack_size_ = stack_size;
  getcontext(&t->ctx_);
  t->ctx_.uc_stack.ss_sp = stack;
  t->ctx_.uc_stack.ss_size = stack_size;
  t->ctx_.uc_link = &sched_ctx_;
  auto addr = reinterpret_cast<std::uintptr_t>(t);
  makecontext(&t->ctx_, reinterpret_cast<void (*)()>(&Thread::Trampoline), 2,
              static_cast<unsigned>(addr >> 32), static_cast<unsigned>(addr & 0xffffffffu));
  t->tsan_fiber_ = TsanCreateFiber();
  return true;
}

void Scheduler::SwitchTo(Thread* t) {
  if (tsan_sched_fiber_ == nullptr) {
    tsan_sched_fiber_ = TsanCurrentFiber();
  }
  TsanSwitchTo(t->tsan_fiber_);
  swapcontext(&sched_ctx_, &t->ctx_);
}

void Scheduler::SwitchBack() {
  TsanSwitchTo(tsan_sched_fiber_);
  swapcontext(&current_->ctx_, &sched_ctx_);
}

void Scheduler::ReleaseThread(Thread* t) {
  // Stacks of exited threads are returned to the allocator promptly so
  // minimum-memory runs can recycle them.
  if (t->stack_ != nullptr) {
    alloc_->Free(t->stack_);
    t->stack_ = nullptr;
  }
  TsanDestroyFiber(t->tsan_fiber_);
  t->tsan_fiber_ = nullptr;
}

// ---- backend-agnostic dispatch -----------------------------------------------------

Thread* Scheduler::CreateThread(std::string tname, std::function<void()> entry,
                                std::size_t stack_size) {
  auto thread = std::make_unique<Thread>(this, std::move(tname), std::move(entry),
                                         nullptr, stack_size);
  Thread* t = thread.get();
  Guard g(this);
  if (!PrepareThread(t, stack_size)) {
    return nullptr;
  }
  t->id_ = next_id_++;
  threads_.push_back(std::move(thread));
  ++stats_.threads_created;
  ++live_threads_;
  Enqueue(t);
  return t;
}

void Scheduler::Enqueue(Thread* t) {
  t->state_ = ThreadState::kReady;
  ready_.push_back(t);
}

std::size_t Scheduler::Run() {
  for (;;) {
    Lock();
    WakeExpired();
    if (ready_.empty()) {
      // Nothing runnable. A real-thread backend first parks briefly in real
      // time (IdleWait) so an external producer's Wake can land. After that:
      // if a blocked thread holds a wake deadline, this is the unikernel's
      // idle state — halt and let the virtual clock jump to the next timer
      // interrupt. Otherwise the world is done (or deadlocked on waits that
      // nothing can satisfy) and Run() reports the leftovers.
      if (IdleWait()) {
        Unlock();
        continue;
      }
      const bool advanced = AdvanceToNextDeadline();
      Unlock();
      if (!advanced) {
        break;
      }
      continue;
    }
    Thread* t = ready_.front();
    ready_.pop_front();
    current_ = t;
    t->state_ = ThreadState::kRunning;
    t->slice_start_cycles_ = clock_->cycles();
    ++stats_.context_switches;
    SwitchTo(t);
    current_ = nullptr;
    ReapExited();
    Unlock();
  }
  return live_threads_;
}

void Scheduler::WakeExpired() {
  // O(1) on the dispatch hot path: scan only when a deadline can be due.
  // (The hint is a lower bound — Wake() may retire the thread that set it —
  // so a stale hint costs at most one wasted scan, never a missed wakeup.)
  const std::uint64_t now = clock_->cycles();
  if (timed_waiters_ == 0 || now < next_deadline_hint_) {
    return;
  }
  std::uint64_t next = kNoDeadline;
  for (auto& owned : threads_) {
    Thread* t = owned.get();
    if (t->state_ != ThreadState::kBlocked || !t->has_deadline_) {
      continue;
    }
    if (t->wake_deadline_ > now) {
      next = std::min(next, t->wake_deadline_);
      continue;
    }
    if (t->waitq_ != nullptr) {
      auto& w = t->waitq_->waiters_;
      w.erase(std::remove(w.begin(), w.end(), t), w.end());
      t->waitq_ = nullptr;
    }
    t->has_deadline_ = false;
    --timed_waiters_;
    t->timed_out_ = true;
    Enqueue(t);
  }
  next_deadline_hint_ = next;
}

bool Scheduler::AdvanceToNextDeadline() {
  if (timed_waiters_ == 0) {
    return false;
  }
  std::uint64_t earliest = kNoDeadline;
  for (const auto& t : threads_) {
    if (t->state_ == ThreadState::kBlocked && t->has_deadline_ &&
        t->wake_deadline_ < earliest) {
      earliest = t->wake_deadline_;
    }
  }
  if (earliest == kNoDeadline) {
    return false;
  }
  const std::uint64_t now = clock_->cycles();
  if (earliest > now) {
    clock_->Charge(earliest - now);  // HLT until the timer interrupt
    ++stats_.idle_advances;
  }
  return true;
}

void Scheduler::Yield() {
  Thread* t = current_;
  if (t == nullptr) {
    return;  // not on a scheduler thread
  }
  Guard g(this);
  ++t->voluntary_switches_;
  Enqueue(t);
  SwitchBack();
}

void Scheduler::PreemptPoint() {
  Thread* t = current_;
  if (t == nullptr || !ShouldPreempt(*t)) {
    return;
  }
  Guard g(this);
  ++stats_.preemptions;
  ++t->involuntary_switches_;
  Enqueue(t);
  SwitchBack();
}

void Scheduler::Exit() {
  Guard g(this);
  Thread* t = current_;
  t->state_ = ThreadState::kExited;
  --live_threads_;
  SwitchBack();
  // Fiber backend: never reached (the context is abandoned). Thread backend:
  // returns so the OS thread can unwind out of its main function.
}

void Scheduler::ReapExited() {
  for (auto& t : threads_) {
    if (t->state_ == ThreadState::kExited && !t->reaped_) {
      t->reaped_ = true;
      ReleaseThread(t.get());
    }
  }
}

bool PreemptScheduler::ShouldPreempt(const Thread& t) const {
  return clock()->cycles() - t.slice_start_cycles() >= quantum_;
}

// ---- WaitQueue protocol ------------------------------------------------------------

WaitQueue::~WaitQueue() {
  // Touch the scheduler only when there is something to detach: an empty
  // queue may legitimately outlive its scheduler (member destruction order),
  // while parked waiters imply the scheduler is still alive.
  if (!waiters_.empty()) {
    sched_->DetachQueue(this);
  }
}

void WaitQueue::Wait() { sched_->ParkCurrent(this, nullptr, 0, Scheduler::kNoDeadline); }

bool WaitQueue::WaitTimeout(std::uint64_t deadline_cycles) {
  return sched_->ParkCurrent(this, nullptr, 0, deadline_cycles);
}

bool WaitQueue::WaitTimeoutUnless(const std::atomic<std::uint64_t>& seq,
                                  std::uint64_t last_seen,
                                  std::uint64_t deadline_cycles) {
  return sched_->ParkCurrent(this, &seq, last_seen, deadline_cycles);
}

std::size_t WaitQueue::Wake(std::size_t n) { return sched_->WakeFromQueue(this, n); }

bool Scheduler::ParkCurrent(WaitQueue* q, const std::atomic<std::uint64_t>* seq,
                            std::uint64_t last_seen, std::uint64_t deadline_cycles) {
  Thread* t = current_;
  if (t == nullptr) {
    return true;  // not on a scheduler thread: nothing to block
  }
  Guard g(this);
  // The doorbell check runs under the scheduler lock, so a producer's bump is
  // either visible here (skip the park) or ordered before its WakeOne (which
  // will find this thread already in waiters_). No window to lose a wake.
  if (seq != nullptr && seq->load(std::memory_order_acquire) != last_seen) {
    return true;
  }
  t->state_ = ThreadState::kBlocked;
  t->waitq_ = q;
  t->wake_deadline_ = deadline_cycles;
  t->has_deadline_ = deadline_cycles != kNoDeadline;
  t->timed_out_ = false;
  if (t->has_deadline_) {
    ++timed_waiters_;
    next_deadline_hint_ = std::min(next_deadline_hint_, deadline_cycles);
  }
  q->waiters_.push_back(t);
  SwitchBack();
  return !t->timed_out_;
}

std::size_t Scheduler::WakeFromQueue(WaitQueue* q, std::size_t n) {
  Guard g(this);
  std::size_t woken = 0;
  while (woken < n && !q->waiters_.empty()) {
    Thread* t = q->waiters_.front();
    q->waiters_.pop_front();
    t->waitq_ = nullptr;
    if (t->has_deadline_) {
      t->has_deadline_ = false;
      --timed_waiters_;
    }
    t->timed_out_ = false;
    Enqueue(t);
    ++woken;
  }
  return woken;
}

void Scheduler::DetachQueue(WaitQueue* q) {
  Guard g(this);
  for (Thread* t : q->waiters_) {
    // Detach: WakeExpired/Wake must never follow a pointer into this object
    // again. The deadline stays, so a timed waiter still times out normally.
    t->waitq_ = nullptr;
  }
}

}  // namespace uksched
