// uksched/scheduler.h - the uksched API (§3.3).
//
// Scheduling in Unikraft is available but optional: images can be built with
// no scheduler at all (run-to-completion event loop), with a cooperative
// scheduler, or with a preemptive one. We reproduce that with real stackful
// threads over ucontext: the platform library contribution (context switching)
// is the swapcontext pair, and the policy lives in scheduler subclasses, just
// as the paper separates plat from uksched.
//
// Preemption is simulated deterministically: threads call PreemptPoint() at
// kernel-entry points (the syscall shim does this), and the preemptive
// scheduler forces a yield once the thread has consumed its virtual-time
// quantum. This keeps runs reproducible while still exercising involuntary
// context switches.
//
// Backends: the dispatch loop, ready queue, timed-wait bookkeeping and the
// WaitQueue protocol live here; HOW a context is created, entered and left is
// a virtual seam. The default backend is the ucontext fiber simulator; the
// ThreadScheduler backend (thread_scheduler.h) runs the same threads on real
// std::threads with run-to-block baton handoff, selected at runtime with
// UKRAFT_THREADS=real via MakeScheduler().
#ifndef UKSCHED_SCHEDULER_H_
#define UKSCHED_SCHEDULER_H_

#include <ucontext.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ukalloc/allocator.h"
#include "ukplat/clock.h"

namespace uksched {

class Scheduler;
class ThreadScheduler;
class WaitQueue;

enum class ThreadState { kReady, kRunning, kBlocked, kExited };

class Thread {
 public:
  Thread(Scheduler* sched, std::string name, std::function<void()> entry,
         std::byte* stack, std::size_t stack_size);

  const std::string& name() const { return name_; }
  std::uint64_t id() const { return id_; }
  ThreadState state() const { return state_; }
  std::uint64_t slice_start_cycles() const { return slice_start_cycles_; }

 private:
  friend class Scheduler;
  friend class ThreadScheduler;
  friend class WaitQueue;

  static void Trampoline(unsigned hi, unsigned lo);

  Scheduler* sched_;
  std::string name_;
  std::function<void()> entry_;
  std::byte* stack_;
  std::size_t stack_size_;
  ucontext_t ctx_{};
  ThreadState state_ = ThreadState::kReady;
  std::uint64_t id_ = 0;
  std::uint64_t slice_start_cycles_ = 0;
  std::uint64_t voluntary_switches_ = 0;
  std::uint64_t involuntary_switches_ = 0;
  bool reaped_ = false;  // backend resources (stack / OS thread) released
  // Timed-wait bookkeeping (WaitQueue::WaitTimeout): the queue the thread is
  // parked on, its absolute wake deadline, and whether the wake was a timeout
  // (vs an explicit Wake()).
  WaitQueue* waitq_ = nullptr;
  std::uint64_t wake_deadline_ = 0;
  bool has_deadline_ = false;
  bool timed_out_ = false;
  // ThreadSanitizer fiber handle: TSan models each ucontext stack as a fiber
  // so the swapcontext pairs don't look like wild cross-stack accesses.
  // Unused (stays null) outside -fsanitize=thread builds and on the real
  // std::thread backend (which needs no annotation crutch: every handoff is
  // an ordinary mutex/condvar edge TSan understands natively).
  void* tsan_fiber_ = nullptr;
};

// FIFO queue of blocked threads, the building block for mutexes, semaphores
// and socket wait lists.
class WaitQueue {
 public:
  explicit WaitQueue(Scheduler* sched) : sched_(sched) {}
  // Detaches any still-parked threads so the scheduler never follows a
  // dangling queue pointer. Untimed waiters stay blocked forever (as they
  // always did on a destroyed queue); timed waiters still wake at their
  // deadline, reported as timed out.
  ~WaitQueue();

  // Blocks the calling thread until woken. Must run on a scheduler thread.
  void Wait();
  // Blocks until Wake() or until the virtual clock reaches |deadline_cycles|
  // (an absolute cycle count; Scheduler::kNoDeadline waits forever). When
  // every thread is blocked and at least one holds a deadline, the scheduler
  // advances the clock straight to the earliest deadline — the CPU halts
  // instead of spinning, which is the idle model interrupt-driven unikernels
  // rely on. Returns true when woken by Wake(), false on timeout.
  bool WaitTimeout(std::uint64_t deadline_cycles);
  // Check-and-park: atomically verifies |seq| still reads |last_seen| and
  // parks only then; returns true immediately (no block) when the sequence
  // moved. This closes the lost-doorbell race with producers on OTHER OS
  // threads — a producer publishes work, bumps |seq| (release) and rings
  // WakeOne; because the check and the park happen under the scheduler lock,
  // the bump is either observed here (no sleep) or ordered before the wake
  // (the sleeper is already in the queue). Same return contract as
  // WaitTimeout.
  bool WaitTimeoutUnless(const std::atomic<std::uint64_t>& seq,
                         std::uint64_t last_seen, std::uint64_t deadline_cycles);
  // Wakes up to |n| waiters (all when n == SIZE_MAX). Returns number woken.
  // Safe to call from a foreign OS thread on the ThreadScheduler backend.
  std::size_t Wake(std::size_t n = SIZE_MAX);
  // Wakes exactly the oldest waiter (FIFO). The targeted form for doorbell
  // notifications (SPSC rings): one message has one consumer, so waking the
  // whole queue would thundering-herd every sleeping loop only for all but
  // one to go straight back to sleep.
  std::size_t WakeOne() { return Wake(1); }
  bool empty() const { return waiters_.empty(); }
  std::size_t size() const { return waiters_.size(); }

 private:
  friend class Scheduler;  // timeout expiry removes threads from waiters_

  Scheduler* sched_;
  std::deque<Thread*> waiters_;
};

class Scheduler {
 public:
  struct Stats {
    std::uint64_t context_switches = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t threads_created = 0;
    // Times the scheduler found nothing runnable and jumped the virtual
    // clock to the earliest timed-wait deadline (a HLT until the next timer
    // interrupt; zero in a pure spin workload).
    std::uint64_t idle_advances = 0;
  };

  // Sentinel deadline for WaitQueue::WaitTimeout: wait forever.
  static constexpr std::uint64_t kNoDeadline = ~0ull;

  Scheduler(ukalloc::Allocator* alloc, ukplat::Clock* clock)
      : alloc_(alloc), clock_(clock) {}
  virtual ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  virtual const char* name() const = 0;
  // True when scheduler threads are real OS threads (ThreadScheduler). The
  // dispatch discipline is identical either way (run-to-block, FIFO baton);
  // what changes is that WaitQueue wakes may arrive from foreign OS threads.
  virtual bool real_threads() const { return false; }

  // Creates a thread; it becomes runnable immediately. Returns nullptr when
  // the backend cannot prepare it (fiber stacks come from the allocator, so
  // Fig 11's minimum-memory runs hit this).
  Thread* CreateThread(std::string tname, std::function<void()> entry,
                       std::size_t stack_size = kDefaultStackSize);

  // Runs ready threads until everything is exited or blocked. Returns the
  // number of threads still blocked (0 means clean completion).
  std::size_t Run();

  // Called from inside a thread: give up the CPU voluntarily.
  void Yield();
  // Called from inside a thread at kernel-entry points; may force a yield
  // under the preemptive policy.
  void PreemptPoint();
  // Terminates the calling thread.
  void Exit();

  Thread* current() const { return current_; }
  const Stats& stats() const { return stats_; }
  std::size_t num_ready() const { return ready_.size(); }
  std::size_t live_threads() const { return live_threads_; }
  ukplat::Clock* clock() const { return clock_; }

  static constexpr std::size_t kDefaultStackSize = 64 * 1024;

 protected:
  // Policy hook: whether |t| must be preempted at a preemption point.
  virtual bool ShouldPreempt(const Thread& t) const = 0;

  // ---- backend seam ---------------------------------------------------------
  // Default implementations are the ucontext fiber simulator. All are called
  // with the scheduler lock held (a no-op lock on the fiber backend).
  // Allocates/binds the execution context for a new thread.
  virtual bool PrepareThread(Thread* t, std::size_t stack_size);
  // Dispatcher -> thread handoff; returns when the thread yields, blocks or
  // exits.
  virtual void SwitchTo(Thread* t);
  // Thread -> dispatcher handoff (the other half of SwitchTo).
  virtual void SwitchBack();
  // Releases backend resources of an exited thread (stack / OS thread join).
  virtual void ReleaseThread(Thread* t);
  // Serializes scheduler state against foreign-OS-thread callers (WaitQueue
  // wakes). The fiber backend runs on one OS thread: no-ops.
  virtual void Lock() const {}
  virtual void Unlock() const {}
  // Idle hook, called with nothing runnable (lock held): a real-thread
  // backend parks briefly in real time so an external producer's Wake can
  // land before the virtual clock jumps a timed wait to its deadline.
  // Returns true when something became runnable.
  virtual bool IdleWait() { return false; }

  // Makes |t| runnable (lock held). The real-thread backend also pokes its
  // condvar so an idle dispatcher notices external wakes.
  virtual void Enqueue(Thread* t);

  void ReapExited();
  // Timed waits: wake every blocked thread whose deadline has passed; when
  // nothing is runnable, jump the clock to the earliest pending deadline.
  void WakeExpired();
  bool AdvanceToNextDeadline();

  ukalloc::Allocator* alloc_;
  ukplat::Clock* clock_;
  std::deque<Thread*> ready_;
  std::vector<std::unique_ptr<Thread>> threads_;
  Thread* current_ = nullptr;
  ucontext_t sched_ctx_{};
  Stats stats_;
  std::uint64_t next_id_ = 1;
  std::size_t live_threads_ = 0;
  // Blocked threads holding a wake deadline, plus a lower bound on the
  // earliest of their deadlines. Together they keep the per-dispatch expiry
  // check O(1): the full scan only runs when a deadline can actually be due.
  std::size_t timed_waiters_ = 0;
  std::uint64_t next_deadline_hint_ = kNoDeadline;
  // TSan fiber handle for the scheduler's own context (the OS thread's
  // original stack); captured lazily on the first dispatch. Null outside
  // -fsanitize=thread builds.
  void* tsan_sched_fiber_ = nullptr;

 private:
  friend class Thread;
  friend class WaitQueue;

  struct Guard {
    explicit Guard(const Scheduler* s) : s_(s) { s_->Lock(); }
    ~Guard() { s_->Unlock(); }
    const Scheduler* s_;
  };

  // WaitQueue protocol (the queue owns waiters_; the scheduler owns the
  // locking and the dispatch bookkeeping).
  bool ParkCurrent(WaitQueue* q, const std::atomic<std::uint64_t>* seq,
                   std::uint64_t last_seen, std::uint64_t deadline_cycles);
  std::size_t WakeFromQueue(WaitQueue* q, std::size_t n);
  void DetachQueue(WaitQueue* q);
};

// Cooperative: run-to-block, never preempts (the policy the paper selects for
// Redis because it "fits well with Redis's single threaded approach").
class CoopScheduler final : public Scheduler {
 public:
  using Scheduler::Scheduler;
  const char* name() const override { return "ukcoop"; }

 protected:
  bool ShouldPreempt(const Thread& /*t*/) const override { return false; }
};

// Preemptive: round-robin with a virtual-time quantum.
class PreemptScheduler final : public Scheduler {
 public:
  PreemptScheduler(ukalloc::Allocator* alloc, ukplat::Clock* clock,
                   std::uint64_t quantum_cycles = 360'000)  // 100us at 3.6GHz
      : Scheduler(alloc, clock), quantum_(quantum_cycles) {}
  const char* name() const override { return "ukpreempt"; }

 protected:
  bool ShouldPreempt(const Thread& t) const override;

 private:
  std::uint64_t quantum_;
};

// True when UKRAFT_THREADS=real selects the real-OS-thread backend.
bool RealThreadsRequested();
// Cooperative scheduler factory honoring UKRAFT_THREADS: the ucontext fiber
// simulator by default, the baton-passing ThreadScheduler over real pinned
// std::threads when UKRAFT_THREADS=real. Defined in thread_scheduler.cpp.
std::unique_ptr<Scheduler> MakeScheduler(ukalloc::Allocator* alloc,
                                         ukplat::Clock* clock);

}  // namespace uksched

#endif  // UKSCHED_SCHEDULER_H_
