// uksched/scheduler.h - the uksched API (§3.3).
//
// Scheduling in Unikraft is available but optional: images can be built with
// no scheduler at all (run-to-completion event loop), with a cooperative
// scheduler, or with a preemptive one. We reproduce that with real stackful
// threads over ucontext: the platform library contribution (context switching)
// is the swapcontext pair, and the policy lives in scheduler subclasses, just
// as the paper separates plat from uksched.
//
// Preemption is simulated deterministically: threads call PreemptPoint() at
// kernel-entry points (the syscall shim does this), and the preemptive
// scheduler forces a yield once the thread has consumed its virtual-time
// quantum. This keeps runs reproducible while still exercising involuntary
// context switches.
#ifndef UKSCHED_SCHEDULER_H_
#define UKSCHED_SCHEDULER_H_

#include <ucontext.h>

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ukalloc/allocator.h"
#include "ukplat/clock.h"

namespace uksched {

class Scheduler;
class WaitQueue;

enum class ThreadState { kReady, kRunning, kBlocked, kExited };

class Thread {
 public:
  Thread(Scheduler* sched, std::string name, std::function<void()> entry,
         std::byte* stack, std::size_t stack_size);

  const std::string& name() const { return name_; }
  std::uint64_t id() const { return id_; }
  ThreadState state() const { return state_; }
  std::uint64_t slice_start_cycles() const { return slice_start_cycles_; }

 private:
  friend class Scheduler;
  friend class WaitQueue;

  static void Trampoline(unsigned hi, unsigned lo);

  Scheduler* sched_;
  std::string name_;
  std::function<void()> entry_;
  std::byte* stack_;
  std::size_t stack_size_;
  ucontext_t ctx_{};
  ThreadState state_ = ThreadState::kReady;
  std::uint64_t id_ = 0;
  std::uint64_t slice_start_cycles_ = 0;
  std::uint64_t voluntary_switches_ = 0;
  std::uint64_t involuntary_switches_ = 0;
  // Timed-wait bookkeeping (WaitQueue::WaitTimeout): the queue the thread is
  // parked on, its absolute wake deadline, and whether the wake was a timeout
  // (vs an explicit Wake()).
  WaitQueue* waitq_ = nullptr;
  std::uint64_t wake_deadline_ = 0;
  bool has_deadline_ = false;
  bool timed_out_ = false;
  // ThreadSanitizer fiber handle: TSan models each ucontext stack as a fiber
  // so the swapcontext pairs don't look like wild cross-stack accesses.
  // Unused (stays null) outside -fsanitize=thread builds.
  void* tsan_fiber_ = nullptr;
};

// FIFO queue of blocked threads, the building block for mutexes, semaphores
// and socket wait lists.
class WaitQueue {
 public:
  explicit WaitQueue(Scheduler* sched) : sched_(sched) {}
  // Detaches any still-parked threads so the scheduler never follows a
  // dangling queue pointer. Untimed waiters stay blocked forever (as they
  // always did on a destroyed queue); timed waiters still wake at their
  // deadline, reported as timed out.
  ~WaitQueue();

  // Blocks the calling thread until woken. Must run on a scheduler thread.
  void Wait();
  // Blocks until Wake() or until the virtual clock reaches |deadline_cycles|
  // (an absolute cycle count; Scheduler::kNoDeadline waits forever). When
  // every thread is blocked and at least one holds a deadline, the scheduler
  // advances the clock straight to the earliest deadline — the CPU halts
  // instead of spinning, which is the idle model interrupt-driven unikernels
  // rely on. Returns true when woken by Wake(), false on timeout.
  bool WaitTimeout(std::uint64_t deadline_cycles);
  // Wakes up to |n| waiters (all when n == SIZE_MAX). Returns number woken.
  std::size_t Wake(std::size_t n = SIZE_MAX);
  // Wakes exactly the oldest waiter (FIFO). The targeted form for doorbell
  // notifications (SPSC rings): one message has one consumer, so waking the
  // whole queue would thundering-herd every sleeping loop only for all but
  // one to go straight back to sleep.
  std::size_t WakeOne() { return Wake(1); }
  bool empty() const { return waiters_.empty(); }
  std::size_t size() const { return waiters_.size(); }

 private:
  friend class Scheduler;  // timeout expiry removes threads from waiters_

  Scheduler* sched_;
  std::deque<Thread*> waiters_;
};

class Scheduler {
 public:
  struct Stats {
    std::uint64_t context_switches = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t threads_created = 0;
    // Times the scheduler found nothing runnable and jumped the virtual
    // clock to the earliest timed-wait deadline (a HLT until the next timer
    // interrupt; zero in a pure spin workload).
    std::uint64_t idle_advances = 0;
  };

  // Sentinel deadline for WaitQueue::WaitTimeout: wait forever.
  static constexpr std::uint64_t kNoDeadline = ~0ull;

  Scheduler(ukalloc::Allocator* alloc, ukplat::Clock* clock)
      : alloc_(alloc), clock_(clock) {}
  virtual ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  virtual const char* name() const = 0;

  // Creates a thread; it becomes runnable immediately. Returns nullptr when
  // the stack allocation fails (Fig 11's minimum-memory runs hit this).
  Thread* CreateThread(std::string tname, std::function<void()> entry,
                       std::size_t stack_size = kDefaultStackSize);

  // Runs ready threads until everything is exited or blocked. Returns the
  // number of threads still blocked (0 means clean completion).
  std::size_t Run();

  // Called from inside a thread: give up the CPU voluntarily.
  void Yield();
  // Called from inside a thread at kernel-entry points; may force a yield
  // under the preemptive policy.
  void PreemptPoint();
  // Terminates the calling thread.
  void Exit();

  Thread* current() const { return current_; }
  const Stats& stats() const { return stats_; }
  std::size_t num_ready() const { return ready_.size(); }
  std::size_t live_threads() const { return live_threads_; }
  ukplat::Clock* clock() const { return clock_; }

  static constexpr std::size_t kDefaultStackSize = 64 * 1024;

 protected:
  // Policy hook: whether |t| must be preempted at a preemption point.
  virtual bool ShouldPreempt(const Thread& t) const = 0;

 private:
  friend class Thread;
  friend class WaitQueue;

  void Enqueue(Thread* t);
  void SwitchTo(Thread* t);
  void SwitchBack();  // thread -> scheduler context
  void ReapExited();
  // Timed waits: wake every blocked thread whose deadline has passed; when
  // nothing is runnable, jump the clock to the earliest pending deadline.
  void WakeExpired();
  bool AdvanceToNextDeadline();

  ukalloc::Allocator* alloc_;
  ukplat::Clock* clock_;
  std::deque<Thread*> ready_;
  std::vector<std::unique_ptr<Thread>> threads_;
  Thread* current_ = nullptr;
  ucontext_t sched_ctx_{};
  Stats stats_;
  std::uint64_t next_id_ = 1;
  std::size_t live_threads_ = 0;
  // Blocked threads holding a wake deadline, plus a lower bound on the
  // earliest of their deadlines. Together they keep the per-dispatch expiry
  // check O(1): the full scan only runs when a deadline can actually be due.
  std::size_t timed_waiters_ = 0;
  std::uint64_t next_deadline_hint_ = kNoDeadline;
  // TSan fiber handle for the scheduler's own context (the OS thread's
  // original stack); captured lazily on the first dispatch. Null outside
  // -fsanitize=thread builds.
  void* tsan_sched_fiber_ = nullptr;
};

// Cooperative: run-to-block, never preempts (the policy the paper selects for
// Redis because it "fits well with Redis's single threaded approach").
class CoopScheduler final : public Scheduler {
 public:
  using Scheduler::Scheduler;
  const char* name() const override { return "ukcoop"; }

 protected:
  bool ShouldPreempt(const Thread& /*t*/) const override { return false; }
};

// Preemptive: round-robin with a virtual-time quantum.
class PreemptScheduler final : public Scheduler {
 public:
  PreemptScheduler(ukalloc::Allocator* alloc, ukplat::Clock* clock,
                   std::uint64_t quantum_cycles = 360'000)  // 100us at 3.6GHz
      : Scheduler(alloc, clock), quantum_(quantum_cycles) {}
  const char* name() const override { return "ukpreempt"; }

 protected:
  bool ShouldPreempt(const Thread& t) const override;

 private:
  std::uint64_t quantum_;
};

}  // namespace uksched

#endif  // UKSCHED_SCHEDULER_H_
