// uksched/thread_scheduler.h - the real-OS-thread scheduler backend.
//
// Same dispatch discipline as the fiber simulator — run-to-block, FIFO ready
// queue, virtual-clock idle jumps — but every uksched::Thread is a real
// std::thread and every handoff is a baton pass under one mutex/condvar pair:
// the dispatcher marks a thread running and sleeps until it hands back; the
// thread sleeps until marked running. Exactly one context executes at a time,
// so the deterministic semantics every test asserts (wake counts, FIFO order,
// run-to-block interleavings) are preserved bit-for-bit, while the memory
// model becomes the real one: every cross-thread edge is an ordinary
// mutex/condvar acquire-release that ThreadSanitizer checks natively — no
// fiber annotations anywhere on this path.
//
// What the baton buys beyond the simulator: WaitQueue wakes may arrive from
// FOREIGN OS threads (a vhost backend thread, a producer ringing a doorbell).
// Wake() takes the scheduler lock, and an idle dispatcher parks on the condvar
// in real time before jumping the virtual clock, so external doorbells land
// instead of being outrun by the clock. WaitQueue::WaitTimeoutUnless closes
// the check-then-park race against such producers.
//
// Threads that are still blocked when the scheduler dies stay parked forever
// (fiber parity: a blocked fiber's stack was simply never resumed); their OS
// threads are detached and keep only a shared_ptr to the baton, never to the
// scheduler.
#ifndef UKSCHED_THREAD_SCHEDULER_H_
#define UKSCHED_THREAD_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "uksched/scheduler.h"

namespace uksched {

class ThreadScheduler final : public Scheduler {
 public:
  struct Config {
    // Real time an idle dispatcher waits for an external Wake before jumping
    // the virtual clock (timed waiters) or giving up a strike (untimed).
    std::chrono::microseconds idle_grace{500};
    // Consecutive fruitless idle graces tolerated while only UNtimed waiters
    // remain before Run() declares the world stuck and returns the leftovers
    // (the fiber backend returns immediately; the budget exists so external
    // producers get a real-time window to ring their doorbell).
    int idle_strike_limit = 100;
  };

  ThreadScheduler(ukalloc::Allocator* alloc, ukplat::Clock* clock)
      : ThreadScheduler(alloc, clock, Config{}) {}
  ThreadScheduler(ukalloc::Allocator* alloc, ukplat::Clock* clock,
                  Config config);
  ~ThreadScheduler() override;

  const char* name() const override { return "ukthread"; }
  bool real_threads() const override { return true; }

 protected:
  bool ShouldPreempt(const Thread& /*t*/) const override { return false; }

  bool PrepareThread(Thread* t, std::size_t stack_size) override;
  void SwitchTo(Thread* t) override;
  void SwitchBack() override;
  void ReleaseThread(Thread* t) override;
  void Lock() const override;
  void Unlock() const override;
  bool IdleWait() override;
  void Enqueue(Thread* t) override;

 private:
  // The handoff state. Owned by shared_ptr so a detached, forever-blocked
  // thread can keep waiting on it after the scheduler object is gone.
  struct Baton {
    std::mutex mu;
    std::condition_variable cv;
    Thread* running = nullptr;  // nullptr: the dispatcher's turn
    bool shutdown = false;      // wakes never-dispatched threads at teardown
  };

  void ThreadMain(Thread* t, std::shared_ptr<Baton> baton);

  Config config_;
  std::shared_ptr<Baton> baton_;
  std::unordered_map<Thread*, std::thread> os_threads_;
  int idle_strikes_ = 0;
};

}  // namespace uksched

#endif  // UKSCHED_THREAD_SCHEDULER_H_
