// uksched/spsc_ring.h - bounded single-producer/single-consumer message ring.
//
// The cross-shard transport for the shared-nothing SMP model (§6): when N
// event loops each own one RSS queue and one store shard, an operation that
// touches a foreign shard must not reach into that shard's memory. Instead it
// travels as a message over a ring owned by exactly one (producer, consumer)
// loop pair — the classic shared-nothing mailbox, sized so a full ring is
// backpressure, not an allocation.
//
// The ring is lock-free in the SPSC discipline: the producer only writes
// head_, the consumer only writes tail_, and each reads the other side with
// acquire/release ordering. Under the simulator every loop is a uksched
// thread on one OS thread, so the atomics cost nothing; on real SMP (and
// under the TSan build flavor, which checks exactly this) they are the whole
// correctness story.
//
// Notification is deliberately OUTSIDE the ring: Push() returns whether the
// ring went non-empty so the caller can ring the consumer's doorbell
// (WaitQueue::WakeOne / NetStack::RaiseQueueEvent) — the ring does not know
// who sleeps where, and a consumer that polls never pays for wakeups.
#ifndef UKSCHED_SPSC_RING_H_
#define UKSCHED_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace uksched {

template <typename T, std::size_t Capacity>
class SpscRing {
  static_assert(Capacity >= 2 && (Capacity & (Capacity - 1)) == 0,
                "SpscRing capacity must be a power of two");

 public:
  // Producer side. Returns false when the ring is full (backpressure: the
  // producer keeps the message and retries after the consumer drains).
  bool Push(const T& v) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= Capacity) {
      return false;
    }
    slots_[head & kMask] = v;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns false when the ring is empty.
  bool Pop(T* out) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (head == tail) {
      return false;
    }
    *out = slots_[tail & kMask];
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }
  std::size_t size() const {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }
  static constexpr std::size_t capacity() { return Capacity; }

 private:
  static constexpr std::size_t kMask = Capacity - 1;
  // Indices are free-running (wrap at SIZE_MAX, masked on access) so
  // full-vs-empty needs no spare slot: full is head - tail == Capacity.
  std::atomic<std::size_t> head_{0};
  std::atomic<std::size_t> tail_{0};
  T slots_[Capacity]{};
};

}  // namespace uksched

#endif  // UKSCHED_SPSC_RING_H_
