#include "uksched/thread_scheduler.h"

#include <cstdlib>
#include <string_view>

namespace uksched {

ThreadScheduler::ThreadScheduler(ukalloc::Allocator* alloc, ukplat::Clock* clock,
                                 Config config)
    : Scheduler(alloc, clock),
      config_(config),
      baton_(std::make_shared<Baton>()) {}

ThreadScheduler::~ThreadScheduler() {
  {
    std::lock_guard<std::mutex> lk(baton_->mu);
    baton_->shutdown = true;
    baton_->cv.notify_all();
  }
  for (auto& [t, os] : os_threads_) {
    if (!os.joinable()) {
      continue;
    }
    if (t->state_ == ThreadState::kBlocked) {
      // Fiber parity: a blocked thread on a dying scheduler simply never
      // resumes. The OS thread keeps only its shared_ptr to the baton and
      // parks on it forever; detaching leaks nothing but the thread itself.
      os.detach();
    } else {
      // kReady (never dispatched: the shutdown flag unparks it without
      // running the entry) or kExited (unwinding right now).
      os.join();
    }
  }
}

void ThreadScheduler::Lock() const { baton_->mu.lock(); }
void ThreadScheduler::Unlock() const { baton_->mu.unlock(); }

bool ThreadScheduler::PrepareThread(Thread* t, std::size_t /*stack_size*/) {
  // Real threads bring their own OS stack; the allocator is not involved.
  // The new thread parks immediately — it runs only once dispatched.
  os_threads_.emplace(
      t, std::thread([this, t, baton = baton_] { ThreadMain(t, baton); }));
  return true;
}

void ThreadScheduler::ThreadMain(Thread* t, std::shared_ptr<Baton> baton) {
  {
    std::unique_lock<std::mutex> lk(baton->mu);
    baton->cv.wait(lk, [&] { return baton->running == t || baton->shutdown; });
    if (baton->shutdown && baton->running != t) {
      return;  // scheduler died before this thread ever ran
    }
  }
  t->entry_();
  Exit();
}

void ThreadScheduler::SwitchTo(Thread* t) {
  // Called from Run() with the lock held: hand the baton to |t| and sleep
  // until it comes back (yield, block or exit). The lock is released inside
  // the wait and held again on return, which is what gives every dispatcher
  // <-> thread transition its acquire/release edge.
  idle_strikes_ = 0;
  std::unique_lock<std::mutex> lk(baton_->mu, std::adopt_lock);
  baton_->running = t;
  baton_->cv.notify_all();
  baton_->cv.wait(lk, [&] { return baton_->running == nullptr; });
  lk.release();
}

void ThreadScheduler::SwitchBack() {
  // Called from a running thread with the lock held: return the baton and —
  // unless this thread is exiting — sleep until dispatched again.
  Thread* t = current_;
  std::unique_lock<std::mutex> lk(baton_->mu, std::adopt_lock);
  baton_->running = nullptr;
  baton_->cv.notify_all();
  if (t->state_ != ThreadState::kExited) {
    baton_->cv.wait(lk, [&] { return baton_->running == t; });
  }
  lk.release();
}

void ThreadScheduler::ReleaseThread(Thread* t) {
  auto it = os_threads_.find(t);
  if (it == os_threads_.end()) {
    return;
  }
  // The thread already returned the baton (Exit path) and needs no lock to
  // finish unwinding, so joining under the scheduler lock cannot deadlock.
  if (it->second.joinable()) {
    it->second.join();
  }
  os_threads_.erase(it);
}

void ThreadScheduler::Enqueue(Thread* t) {
  Scheduler::Enqueue(t);
  // An external Wake (foreign OS thread) may race an idle dispatcher parked
  // in IdleWait: poke the condvar so it rechecks the ready queue.
  baton_->cv.notify_all();
}

bool ThreadScheduler::IdleWait() {
  if (live_threads_ == 0) {
    return false;
  }
  // Park in REAL time before advancing the VIRTUAL clock: an external
  // producer's doorbell (Wake from a foreign OS thread) should end an idle
  // period the way a device interrupt ends a HLT — jumping straight to a
  // timed waiter's deadline would manufacture timeouts the workload does not
  // have. Managed-thread-only worlds lose nothing but idle_grace of real time
  // per advance.
  std::unique_lock<std::mutex> lk(baton_->mu, std::adopt_lock);
  baton_->cv.wait_for(lk, config_.idle_grace, [&] { return !ready_.empty(); });
  lk.release();
  if (!ready_.empty()) {
    idle_strikes_ = 0;
    return true;
  }
  if (timed_waiters_ > 0) {
    return false;  // let the virtual clock jump to the earliest deadline
  }
  // Only untimed waiters remain: keep a bounded real-time window open for
  // external producers, then report the world stuck (fiber parity).
  return ++idle_strikes_ <= config_.idle_strike_limit;
}

// ---- factory -----------------------------------------------------------------------

bool RealThreadsRequested() {
  const char* v = std::getenv("UKRAFT_THREADS");
  return v != nullptr && std::string_view(v) == "real";
}

std::unique_ptr<Scheduler> MakeScheduler(ukalloc::Allocator* alloc,
                                         ukplat::Clock* clock) {
  if (RealThreadsRequested()) {
    return std::make_unique<ThreadScheduler>(alloc, clock);
  }
  return std::make_unique<CoopScheduler>(alloc, clock);
}

}  // namespace uksched
