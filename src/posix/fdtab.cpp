#include "posix/fdtab.h"

#include <type_traits>

namespace posix {

FdTable::~FdTable() {
  for (std::size_t fd = 0; fd < entries_.size(); ++fd) {
    if (watched_[fd].load(std::memory_order_acquire) != 0) {
      DetachSink(static_cast<int>(fd));
    }
  }
}

int FdTable::Install(FdEntry entry) {
  for (std::size_t fd = 3; fd < entries_.size(); ++fd) {
    if (std::holds_alternative<std::monostate>(entries_[fd])) {
      entries_[fd] = std::move(entry);
      edges_[fd].store(0, std::memory_order_relaxed);
      watched_[fd].store(0, std::memory_order_relaxed);
      return static_cast<int>(fd);
    }
  }
  return ukarch::Raw(ukarch::Status::kMFile);
}

int FdTable::Dup2(int oldfd, int newfd) {
  if (!InUse(oldfd) || newfd < 0 ||
      static_cast<std::size_t>(newfd) >= entries_.size()) {
    return ukarch::Raw(ukarch::Status::kBadF);
  }
  if (oldfd == newfd) {
    return newfd;  // POSIX: equal descriptors are a no-op, never a close
  }
  if (InUse(newfd)) {
    Close(newfd);  // dup2 implicitly closes the target description
  }
  entries_[static_cast<std::size_t>(newfd)] = entries_[static_cast<std::size_t>(oldfd)];
  return newfd;
}

bool FdTable::Replace(int fd, FdEntry entry) {
  if (!InUse(fd)) {
    return false;
  }
  const auto slot = static_cast<std::size_t>(fd);
  const bool was_watched = watched_[slot].load(std::memory_order_acquire) != 0;
  if (was_watched) {
    DetachSink(fd);
  }
  entries_[slot] = std::move(entry);
  edges_[slot].store(0, std::memory_order_relaxed);
  if (was_watched) {
    // Same descriptor, same open description (pending -> bound/connected):
    // the watch carries over to the materialized socket.
    Subscribe(fd);
  }
  return true;
}

ukarch::Status FdTable::Close(int fd) {
  if (!InUse(fd)) {
    return ukarch::Status::kBadF;
  }
  const auto slot = static_cast<std::size_t>(fd);
  // The socket may outlive this descriptor (other shared_ptr holders): stop
  // it from raising edges under a token that now means something else.
  uknet::SocketEventSource* src = EventSourceOf(fd);
  DetachSink(fd);
  // Dup2 sharing check, gated so the common close stays O(1): a socket held
  // only by this slot plus the stack's own registry has use_count 2 — more
  // implies a possible sibling descriptor, and only then is the table scan
  // worth paying. (A stack-unregistered dup'd socket can slip the gate; it
  // is already dead, so neither the FIN skip nor the sink matter for it.)
  int sharer = -1;
  int watched_sharer = -1;
  const long uses = std::visit(
      [](const auto& p) -> long {
        if constexpr (std::is_same_v<std::decay_t<decltype(p)>, std::monostate>) {
          return 0;
        } else {
          return p.use_count();
        }
      },
      entries_[slot]);
  if (src != nullptr && uses > 2) {
    for (std::size_t other = 0; other < entries_.size(); ++other) {
      if (other == slot || EventSourceOf(static_cast<int>(other)) != src) {
        continue;
      }
      sharer = static_cast<int>(other);
      if (watched_[other].load(std::memory_order_acquire) != 0) {
        watched_sharer = sharer;
        break;
      }
    }
  }
  // Graceful TCP teardown on close, like the socket layer does — but only
  // when the LAST descriptor goes (POSIX: dup'd descriptors share one open
  // description; closing one must not FIN the survivor's connection).
  if (sharer < 0) {
    if (auto tcp = Get<uknet::TcpSocket>(fd)) {
      tcp->Close();
    }
  }
  entries_[slot] = std::monostate{};
  edges_[slot].store(0, std::memory_order_relaxed);
  watched_[slot].store(0, std::memory_order_relaxed);
  ++gens_[slot];  // stale epoll interest for this number stops matching here
  // A socket has ONE sink slot. If a dup'd descriptor still watches this
  // socket, re-home the sink to the survivor so its edge delivery (and with
  // it the lost-wakeup defence) does not die with the closed number.
  if (watched_sharer >= 0) {
    Subscribe(watched_sharer);
  }
  return ukarch::Status::kOk;
}

std::size_t FdTable::open_count() const {
  std::size_t n = 0;
  for (const FdEntry& e : entries_) {
    if (!std::holds_alternative<std::monostate>(e)) {
      ++n;
    }
  }
  return n;
}

bool FdTable::Watch(int fd) {
  if (!InUse(fd)) {
    return false;
  }
  watched_[static_cast<std::size_t>(fd)].store(1, std::memory_order_release);
  Subscribe(fd);
  return true;
}

uknet::EventMask FdTable::TakeEdges(int fd) {
  if (fd < 0 || static_cast<std::size_t>(fd) >= edges_.size()) {
    return 0;
  }
  // Exchange, not load+store: a foreign loop's fetch_or landing between the
  // two would be erased — the classic lost-edge race this PR closes.
  return edges_[static_cast<std::size_t>(fd)].exchange(
      0, std::memory_order_acquire);
}

int FdTable::FdQueue(int fd) const {
  if (auto tcp = Get<uknet::TcpSocket>(fd)) {
    return static_cast<int>(tcp->tx_queue());
  }
  return kNoQueueAffinity;
}

void FdTable::OnSocketEvent(std::uint64_t token, uknet::EventMask events) {
  // Wakeup-grade work only (raised from inside stack dispatch): accumulate
  // the edge; level scanning happens on the consumer's side of the wake.
  if (token >= edges_.size()) {
    return;
  }
  // May run on a foreign loop's thread (the queue that dispatched the
  // packet); release pairs with the owner's acquire exchange in TakeEdges.
  edges_[static_cast<std::size_t>(token)].fetch_or(events,
                                                   std::memory_order_release);
  edges_delivered_.fetch_add(1, std::memory_order_relaxed);
}

uknet::SocketEventSource* FdTable::EventSourceOf(int fd) const {
  // Files and pending sockets have no edges; their levels are constant.
  if (auto udp = Get<uknet::UdpSocket>(fd)) {
    return udp.get();
  }
  if (auto tcp = Get<uknet::TcpSocket>(fd)) {
    return tcp.get();
  }
  if (auto lst = Get<uknet::TcpListener>(fd)) {
    return lst.get();
  }
  return nullptr;
}

void FdTable::Subscribe(int fd) {
  if (auto* src = EventSourceOf(fd)) {
    src->SetEventSink(this, static_cast<std::uint64_t>(fd));
  }
}

void FdTable::DetachSink(int fd) {
  if (auto* src = EventSourceOf(fd)) {
    src->SetEventSink(nullptr, 0);
  }
}

}  // namespace posix
