#include "posix/fdtab.h"

namespace posix {

int FdTable::Install(FdEntry entry) {
  for (std::size_t fd = 3; fd < entries_.size(); ++fd) {
    if (std::holds_alternative<std::monostate>(entries_[fd])) {
      entries_[fd] = std::move(entry);
      return static_cast<int>(fd);
    }
  }
  return ukarch::Raw(ukarch::Status::kMFile);
}

int FdTable::Dup2(int oldfd, int newfd) {
  if (!InUse(oldfd) || newfd < 0 ||
      static_cast<std::size_t>(newfd) >= entries_.size()) {
    return ukarch::Raw(ukarch::Status::kBadF);
  }
  entries_[static_cast<std::size_t>(newfd)] = entries_[static_cast<std::size_t>(oldfd)];
  return newfd;
}

ukarch::Status FdTable::Close(int fd) {
  if (!InUse(fd)) {
    return ukarch::Status::kBadF;
  }
  // Graceful TCP teardown on close, like the socket layer does.
  if (auto tcp = Get<uknet::TcpSocket>(fd)) {
    tcp->Close();
  }
  entries_[static_cast<std::size_t>(fd)] = std::monostate{};
  return ukarch::Status::kOk;
}

std::size_t FdTable::open_count() const {
  std::size_t n = 0;
  for (const FdEntry& e : entries_) {
    if (!std::holds_alternative<std::monostate>(e)) {
      ++n;
    }
  }
  return n;
}

}  // namespace posix
