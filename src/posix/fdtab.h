// posix/fdtab.h - the posix-fdtab micro-library: integer descriptors over
// VFS files and network sockets, plus the readiness-interest bookkeeping the
// poll/epoll layer builds on.
//
// The table is the single uknet::SocketEventSink for every watched socket
// (token = fd): edges accumulate per descriptor, and a per-slot generation
// counter — bumped on Close — lets epoll interest lists detect that a
// descriptor number was reused for a different socket and drop the stale
// registration instead of delivering the old socket's events.
#ifndef POSIX_FDTAB_H_
#define POSIX_FDTAB_H_

#include <atomic>
#include <map>
#include <memory>
#include <variant>
#include <vector>

#include "ukarch/status.h"
#include "uknet/stack.h"
#include "vfscore/vfs.h"

namespace posix {

// A socket created but not yet connected/listening (the state between
// socket() and connect()/listen() in the BSD API).
struct PendingSocket {
  bool is_stream = false;
  std::uint16_t bound_port = 0;
};

// One epoll interest-list entry: the subscribed event mask, the user cookie
// returned with each event, and the fd-slot generation at registration time
// (a mismatch means the fd was closed and reused — the entry is stale).
struct EpollInterest {
  uknet::EventMask events = 0;
  std::uint64_t data = 0;
  std::uint32_t gen = 0;
};

// An epoll instance, itself installed in the fd table (epoll_create returns
// a descriptor). |rotor| rotates the scan start across EpollWait calls so
// ready descriptors are reported fairly when the caller's event array is
// smaller than the ready set.
struct EpollInstance {
  std::map<int, EpollInterest> interest;
  int rotor = -1;
};

// One open description. monostate marks a free slot.
using FdEntry = std::variant<std::monostate, std::shared_ptr<vfscore::File>,
                             std::shared_ptr<uknet::UdpSocket>,
                             std::shared_ptr<uknet::TcpSocket>,
                             std::shared_ptr<uknet::TcpListener>,
                             std::shared_ptr<PendingSocket>,
                             std::shared_ptr<EpollInstance>>;

class FdTable : public uknet::SocketEventSink {
 public:
  explicit FdTable(int max_fds = 1024)
      : entries_(static_cast<std::size_t>(max_fds)),
        edges_(static_cast<std::size_t>(max_fds)),
        gens_(static_cast<std::size_t>(max_fds), 0),
        watched_(static_cast<std::size_t>(max_fds)) {}
  // Sockets can outlive the table (shared_ptrs held by the stack or the
  // app); detach every sink so no socket raises into freed memory.
  ~FdTable() override;

  // Installs |entry| at the lowest free descriptor >= 3 (0-2 reserved for
  // std streams). Returns -EMFILE when the table is full.
  int Install(FdEntry entry);

  // dup2 semantics: places a copy of |oldfd| at |newfd| (closing an in-use
  // target first; equal descriptors are a no-op). Table-level operation:
  // PosixApi-layer per-fd state (the blocking flag) is owned by the api and
  // cleared only by its close syscall — callers mixing direct Dup2 with
  // PosixApi blocking flags must clear them via PosixApi::Close.
  int Dup2(int oldfd, int newfd);

  // Replaces the entry at |fd| in place (socket state transitions:
  // pending -> bound/listening/connected keep their descriptor — same open
  // description, so the generation does NOT change and an existing watch
  // transfers to the new object).
  bool Replace(int fd, FdEntry entry);

  // Clears the slot, detaches the socket's event sink, drops accumulated
  // edges and the blocking/watch state, and bumps the slot generation so
  // stale epoll interest never matches a reused descriptor.
  ukarch::Status Close(int fd);

  template <typename T>
  std::shared_ptr<T> Get(int fd) const {
    if (fd < 0 || static_cast<std::size_t>(fd) >= entries_.size()) {
      return nullptr;
    }
    const auto* p = std::get_if<std::shared_ptr<T>>(&entries_[static_cast<std::size_t>(fd)]);
    return p == nullptr ? nullptr : *p;
  }

  bool InUse(int fd) const {
    return fd >= 0 && static_cast<std::size_t>(fd) < entries_.size() &&
           !std::holds_alternative<std::monostate>(entries_[static_cast<std::size_t>(fd)]);
  }

  std::size_t open_count() const;
  std::size_t capacity() const { return entries_.size(); }

  // ---- readiness interest ---------------------------------------------------
  // Subscribes |fd|'s socket to this table's sink (idempotent; files and
  // pending sockets have nothing to subscribe but still count as watched).
  // Returns false for descriptors not in use. Watches are sticky for the
  // descriptor's lifetime (cleared at Close): the layer serves persistent
  // multiplexers, so a one-shot poll() leaves the socket subscribed — its
  // later edges cost spurious (correctness-neutral) sleeper wakeups, never
  // lost ones.
  bool Watch(int fd);
  bool watched(int fd) const {
    return fd >= 0 && static_cast<std::size_t>(fd) < watched_.size() &&
           watched_[static_cast<std::size_t>(fd)].load(
               std::memory_order_acquire) != 0;
  }
  // Accumulated readiness edges since the last TakeEdges (level state lives
  // on the sockets; the edge mask is for wake bookkeeping and tests).
  uknet::EventMask edges(int fd) const {
    return fd >= 0 && static_cast<std::size_t>(fd) < edges_.size()
               ? edges_[static_cast<std::size_t>(fd)].load(
                     std::memory_order_acquire)
               : 0;
  }
  uknet::EventMask TakeEdges(int fd);
  // Device-queue affinity of |fd|'s socket: the RSS queue a TCP connection's
  // flow is pinned to (fixed at connect/accept). kNoQueueAffinity for
  // listeners (SYNs can land on any queue), UDP sockets, files, and free
  // slots. This is what lets a per-queue event loop prove its whole interest
  // set lives on one queue and sleep in PollWait(queue) instead of kAllQueues.
  static constexpr int kNoQueueAffinity = -1;
  int FdQueue(int fd) const;
  // Slot generation: bumped at Close so interest lists can detect fd reuse.
  std::uint32_t generation(int fd) const {
    return fd >= 0 && static_cast<std::size_t>(fd) < gens_.size()
               ? gens_[static_cast<std::size_t>(fd)]
               : 0;
  }
  std::uint64_t edges_delivered() const {
    return edges_delivered_.load(std::memory_order_relaxed);
  }

  // uknet::SocketEventSink: |token| is the watched fd.
  void OnSocketEvent(std::uint64_t token, uknet::EventMask events) override;

 private:
  // (De)registers this table as |fd|'s socket sink.
  uknet::SocketEventSource* EventSourceOf(int fd) const;
  void Subscribe(int fd);
  void DetachSink(int fd);

  std::vector<FdEntry> entries_;
  // Edge accumulation is the one FdTable path a FOREIGN loop touches: a
  // socket's OnSocketEvent can fire from whichever queue's loop dispatched
  // the packet, concurrent with the owner loop draining TakeEdges. The mask
  // and watch flag are atomics (fetch_or vs exchange); everything else in the
  // table (install/close/dup) stays owner-loop-only by contract.
  std::vector<std::atomic<uknet::EventMask>> edges_;  // accumulated edges
  std::vector<std::uint32_t> gens_;  // slot generation (fd-reuse guard)
  std::vector<std::atomic<std::uint8_t>> watched_;  // live readiness watch
  std::atomic<std::uint64_t> edges_delivered_{0};
};

}  // namespace posix

#endif  // POSIX_FDTAB_H_
