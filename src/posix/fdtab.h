// posix/fdtab.h - the posix-fdtab micro-library: integer descriptors over
// VFS files and network sockets.
#ifndef POSIX_FDTAB_H_
#define POSIX_FDTAB_H_

#include <memory>
#include <variant>
#include <vector>

#include "ukarch/status.h"
#include "uknet/stack.h"
#include "vfscore/vfs.h"

namespace posix {

// A socket created but not yet connected/listening (the state between
// socket() and connect()/listen() in the BSD API).
struct PendingSocket {
  bool is_stream = false;
  std::uint16_t bound_port = 0;
};

// One open description. monostate marks a free slot.
using FdEntry = std::variant<std::monostate, std::shared_ptr<vfscore::File>,
                             std::shared_ptr<uknet::UdpSocket>,
                             std::shared_ptr<uknet::TcpSocket>,
                             std::shared_ptr<uknet::TcpListener>,
                             std::shared_ptr<PendingSocket>>;

class FdTable {
 public:
  explicit FdTable(int max_fds = 1024) : entries_(static_cast<std::size_t>(max_fds)) {}

  // Installs |entry| at the lowest free descriptor >= 3 (0-2 reserved for
  // std streams). Returns -EMFILE when the table is full.
  int Install(FdEntry entry);

  // dup2 semantics: places a copy of |oldfd| at |newfd|.
  int Dup2(int oldfd, int newfd);

  // Replaces the entry at |fd| in place (socket state transitions:
  // pending -> bound/listening/connected keep their descriptor).
  bool Replace(int fd, FdEntry entry) {
    if (!InUse(fd)) {
      return false;
    }
    entries_[static_cast<std::size_t>(fd)] = std::move(entry);
    return true;
  }

  ukarch::Status Close(int fd);

  template <typename T>
  std::shared_ptr<T> Get(int fd) const {
    if (fd < 0 || static_cast<std::size_t>(fd) >= entries_.size()) {
      return nullptr;
    }
    const auto* p = std::get_if<std::shared_ptr<T>>(&entries_[static_cast<std::size_t>(fd)]);
    return p == nullptr ? nullptr : *p;
  }

  bool InUse(int fd) const {
    return fd >= 0 && static_cast<std::size_t>(fd) < entries_.size() &&
           !std::holds_alternative<std::monostate>(entries_[static_cast<std::size_t>(fd)]);
  }

  std::size_t open_count() const;
  std::size_t capacity() const { return entries_.size(); }

 private:
  std::vector<FdEntry> entries_;
};

}  // namespace posix

#endif  // POSIX_FDTAB_H_
