// posix/shim.h - the syscall shim layer (§4) with its four dispatch modes.
//
// Table 1 of the paper compares: Linux syscalls (with and without
// mitigations), Unikraft's run-time binary-compat translation, and plain
// function calls. The shim reproduces all four paths over one handler table:
//
//   kDirectCall      — what natively-linked Unikraft apps get: the "syscall"
//                      compiles to a function call (4 cycles).
//   kShimTable       — one indirection through the registered handler table
//                      (what the syscall-shim macro registration produces).
//   kBinaryCompat    — run-time syscall translation as in HermiTux/OSv-style
//                      binary compatibility on Unikraft (84 cycles).
//   kLinuxTrap       — a real Linux guest syscall, mitigations on (222) or
//   kLinuxTrapFast   — off (154).
//
// The cycle constants charge the virtual clock; the handler-table dispatch is
// real code, so the *relative* cost ladder in Table 1 is reproduced by
// construction and measured by bench/tab1_syscall_cost.
#ifndef POSIX_SHIM_H_
#define POSIX_SHIM_H_

#include <array>
#include <cstdint>
#include <functional>

#include "posix/syscalls.h"
#include "ukplat/clock.h"
#include "uksched/scheduler.h"

namespace posix {

enum class DispatchMode {
  kDirectCall,
  kShimTable,
  kBinaryCompat,
  kLinuxTrap,
  kLinuxTrapFast,
};
const char* DispatchModeName(DispatchMode m);

struct SyscallArgs {
  std::uint64_t a0 = 0, a1 = 0, a2 = 0, a3 = 0, a4 = 0, a5 = 0;
};
using SyscallHandler = std::function<std::int64_t(const SyscallArgs&)>;

class SyscallShim {
 public:
  SyscallShim(ukplat::Clock* clock, DispatchMode mode,
              uksched::Scheduler* sched = nullptr)
      : clock_(clock), mode_(mode), sched_(sched) {}

  // Registers the handler for syscall |nr| (the uk_syscall_r_* macro analog).
  void Register(int nr, SyscallHandler handler);
  bool Handles(int nr) const {
    return nr >= 0 && nr <= kMaxSyscallNr && table_[static_cast<std::size_t>(nr)] != nullptr;
  }

  // Invokes syscall |nr|: charges the mode's entry cost, runs a preemption
  // point (kernel entry), dispatches, auto-stubs -ENOSYS for unregistered
  // numbers (§4.1: "which our shim layer automatically does").
  std::int64_t Call(int nr, const SyscallArgs& args = SyscallArgs{});

  DispatchMode mode() const { return mode_; }
  void set_mode(DispatchMode mode) { mode_ = mode; }

  std::uint64_t calls() const { return calls_; }
  std::uint64_t enosys_calls() const { return enosys_; }

  // Entry cost in cycles for |mode| under |model| (Table 1 constants).
  static std::uint64_t EntryCost(DispatchMode mode, const ukplat::CostModel& model);

 private:
  ukplat::Clock* clock_;
  DispatchMode mode_;
  uksched::Scheduler* sched_;
  std::array<SyscallHandler, kMaxSyscallNr + 1> table_{};
  std::uint64_t calls_ = 0;
  std::uint64_t enosys_ = 0;
};

}  // namespace posix

#endif  // POSIX_SHIM_H_
