// posix/api.h - the POSIX-compatibility layer: libc-level calls marshalled
// through the syscall shim into VFS and network stack operations.
//
// Every operation goes through SyscallShim::Call with real argument
// marshalling (pointers and lengths in registers, like the ABI), so switching
// DispatchMode turns the same application into a "Linux guest" (trap costs),
// a binary-compat unikernel, or a natively linked Unikraft image — which is
// how the environment baselines of Figs 12/13/17 and Table 4 are built.
//
// Non-blocking by design: unikernel applications in the paper run
// run-to-completion event loops; -EAGAIN means "pump the stack and retry".
// Sockets can opt into blocking (SetBlocking, the inverse of O_NONBLOCK):
// recv*/accept on a blocking fd park the calling uksched::Thread in
// NetStack::PollWait — the interrupt-driven idle path — instead of returning
// -EAGAIN, provided the stack has a scheduler attached and the call runs on
// a scheduler thread (otherwise the flag is ignored and -EAGAIN comes back).
#ifndef POSIX_API_H_
#define POSIX_API_H_

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "posix/fdtab.h"
#include "posix/shim.h"

namespace posix {

enum class SockType { kDgram, kStream };

// Scatter element for the batched (sendmmsg/recvmmsg) calls of Table 4.
struct MmsgVec {
  const std::uint8_t* data = nullptr;
  std::size_t len = 0;
};
struct MmsgRecv {
  std::uint8_t* data = nullptr;
  std::size_t cap = 0;
  std::size_t len = 0;  // filled in
  uknet::Ip4Addr src_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t rx_queue = 0;  // device queue the datagram arrived on
};

class PosixApi {
 public:
  PosixApi(ukplat::Clock* clock, vfscore::Vfs* vfs, uknet::NetStack* net,
           DispatchMode mode, uksched::Scheduler* sched = nullptr);

  // ---- files (through vfscore) ----
  int Open(std::string_view path, std::uint32_t flags);
  std::int64_t Read(int fd, std::span<std::byte> out);
  std::int64_t Write(int fd, std::span<const std::byte> in);
  std::int64_t Pread(int fd, std::uint64_t off, std::span<std::byte> out);
  std::int64_t Pwrite(int fd, std::uint64_t off, std::span<const std::byte> in);
  std::int64_t Lseek(int fd, std::int64_t off, int whence);  // 0 SET 1 CUR 2 END
  int Close(int fd);
  int Stat(std::string_view path, vfscore::NodeStat* out);
  int Unlink(std::string_view path);
  int Mkdir(std::string_view path);
  int Fsync(int fd);

  // ---- sockets (through uknet) ----
  int Socket(SockType type);
  int Bind(int fd, std::uint16_t port);
  int Listen(int fd);
  int Accept(int fd);  // returns new fd or -EAGAIN
  int Connect(int fd, uknet::Ip4Addr ip, std::uint16_t port);
  std::int64_t Send(int fd, std::span<const std::uint8_t> data);
  std::int64_t Recv(int fd, std::span<std::uint8_t> out);
  std::int64_t SendTo(int fd, uknet::Ip4Addr ip, std::uint16_t port,
                      std::span<const std::uint8_t> data);
  std::int64_t RecvFrom(int fd, std::span<std::uint8_t> out, uknet::Ip4Addr* src_ip,
                        std::uint16_t* src_port);
  // Batched datagram I/O: one syscall entry for the whole batch.
  std::int64_t SendMmsg(int fd, uknet::Ip4Addr ip, std::uint16_t port,
                        std::span<const MmsgVec> msgs);
  std::int64_t RecvMmsg(int fd, std::span<MmsgRecv> msgs);

  // Marks |fd| blocking/non-blocking (default: non-blocking). On a blocking
  // fd, Recv/RecvFrom/RecvMmsg/Accept sleep in NetStack::PollWait until data
  // (or a connection) arrives or a TCP timer needs service, then retry.
  // Returns 0 or -EBADF. The flag clears on Close.
  int SetBlocking(int fd, bool blocking);
  bool IsBlocking(int fd) const;

  // ---- misc ----
  std::int64_t GetPid() { return shim_.Call(SyscallNumber("getpid")); }
  std::int64_t RawSyscall(int nr, const SyscallArgs& args = SyscallArgs{}) {
    return shim_.Call(nr, args);
  }

  SyscallShim& shim() { return shim_; }
  FdTable& fdtab() { return fdtab_; }
  uknet::NetStack* net() { return net_; }

 private:
  void RegisterHandlers();
  // True when the blocking loop may actually sleep for |fd|.
  bool ShouldBlock(int fd) const;

  SyscallShim shim_;
  FdTable fdtab_;
  vfscore::Vfs* vfs_;
  uknet::NetStack* net_;
  std::vector<std::uint8_t> blocking_;  // per-fd blocking flag (index = fd)
};

}  // namespace posix

#endif  // POSIX_API_H_
