// posix/api.h - the POSIX-compatibility layer: libc-level calls marshalled
// through the syscall shim into VFS and network stack operations.
//
// Every operation goes through SyscallShim::Call with real argument
// marshalling (pointers and lengths in registers, like the ABI), so switching
// DispatchMode turns the same application into a "Linux guest" (trap costs),
// a binary-compat unikernel, or a natively linked Unikraft image — which is
// how the environment baselines of Figs 12/13/17 and Table 4 are built.
//
// Non-blocking by design: unikernel applications in the paper run
// run-to-completion event loops; -EAGAIN means "pump the stack and retry".
//
// Readiness multiplexing: Poll/EpollCreate/EpollCtl/EpollWait expose the
// uknet readiness-event API at the descriptor level. Levels are *derived*
// from current socket state on every scan (readable/writable/acceptable/
// hup/err), so reports stay level-triggered and -EAGAIN consumer loops are
// always correct; the accumulated edges only drive wakeups. EpollWait (and
// Poll with a timeout) sleep in NetStack::PollWait — the interrupt-driven
// idle path — and wake on frames, TCP timers, or a registered socket edge.
//
// Sockets can still opt into blocking one-fd calls (SetBlocking, the inverse
// of O_NONBLOCK): recv*/accept on a blocking fd are one-descriptor waits on
// the same readiness machinery, provided the stack has a scheduler attached
// and the call runs on a scheduler thread (otherwise the flag is ignored and
// -EAGAIN comes back).
#ifndef POSIX_API_H_
#define POSIX_API_H_

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "posix/fdtab.h"
#include "posix/shim.h"

namespace posix {

enum class SockType { kDgram, kStream };

// Scatter element for the batched (sendmmsg/recvmmsg) calls of Table 4.
// The send element IS the stack's batched-TX view, so the sendmmsg handler
// passes the caller's array straight to UdpSocket::SendToBatch.
using MmsgVec = uknet::UdpSocket::DatagramVec;
struct MmsgRecv {
  std::uint8_t* data = nullptr;
  std::size_t cap = 0;
  std::size_t len = 0;  // filled in
  uknet::Ip4Addr src_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t rx_queue = 0;  // device queue the datagram arrived on
};

// ---- readiness multiplexing types ----
// Event bits are uknet's (kEvtReadable/kEvtWritable/kEvtAcceptable/kEvtHup/
// kEvtErr); err and hup are always reported, registered or not, like POSIX.

struct PollFd {
  int fd = -1;
  uknet::EventMask events = 0;   // interest
  uknet::EventMask revents = 0;  // filled by Poll
};

enum class EpollOp { kAdd, kMod, kDel };

struct EpollEvent {
  int fd = -1;
  uknet::EventMask events = 0;  // ready mask (level)
  std::uint64_t data = 0;       // user cookie from EpollCtl
};

class PosixApi {
 public:
  PosixApi(ukplat::Clock* clock, vfscore::Vfs* vfs, uknet::NetStack* net,
           DispatchMode mode, uksched::Scheduler* sched = nullptr);

  // ---- files (through vfscore) ----
  int Open(std::string_view path, std::uint32_t flags);
  std::int64_t Read(int fd, std::span<std::byte> out);
  std::int64_t Write(int fd, std::span<const std::byte> in);
  std::int64_t Pread(int fd, std::uint64_t off, std::span<std::byte> out);
  std::int64_t Pwrite(int fd, std::uint64_t off, std::span<const std::byte> in);
  std::int64_t Lseek(int fd, std::int64_t off, int whence);  // 0 SET 1 CUR 2 END
  int Close(int fd);
  int Stat(std::string_view path, vfscore::NodeStat* out);
  int Unlink(std::string_view path);
  int Mkdir(std::string_view path);
  int Fsync(int fd);

  // ---- sockets (through uknet) ----
  int Socket(SockType type);
  int Bind(int fd, std::uint16_t port);
  int Listen(int fd);
  int Accept(int fd);  // returns new fd or -EAGAIN
  int Connect(int fd, uknet::Ip4Addr ip, std::uint16_t port);
  std::int64_t Send(int fd, std::span<const std::uint8_t> data);
  std::int64_t Recv(int fd, std::span<std::uint8_t> out);
  std::int64_t SendTo(int fd, uknet::Ip4Addr ip, std::uint16_t port,
                      std::span<const std::uint8_t> data);
  std::int64_t RecvFrom(int fd, std::span<std::uint8_t> out, uknet::Ip4Addr* src_ip,
                        std::uint16_t* src_port);
  // Batched datagram I/O: one syscall entry for the whole batch.
  std::int64_t SendMmsg(int fd, uknet::Ip4Addr ip, std::uint16_t port,
                        std::span<const MmsgVec> msgs);
  std::int64_t RecvMmsg(int fd, std::span<MmsgRecv> msgs);

  // ---- readiness multiplexing ----
  // Timeouts are virtual cycles: 0 = non-blocking scan, kNoTimeout = sleep
  // until an event. Blocking requires the stack scheduler (CanBlock);
  // otherwise both degrade to one poll pass + scan.
  static constexpr std::uint64_t kNoTimeout = ~0ull;

  // Scans |fds| (subscribing each to the readiness sinks) and fills revents
  // with the level mask; blocks up to |timeout_cycles| for the first event.
  // Returns the number of descriptors with non-zero revents (0 on timeout).
  int Poll(std::span<PollFd> fds, std::uint64_t timeout_cycles = 0);

  // epoll work-alikes. EpollCreate installs an epoll instance as an fd.
  // EpollCtl manages the interest list (kAdd: -EEXIST if present, kMod/kDel:
  // -ENOENT if absent); interest records the fd-slot generation, so entries
  // that survive a Close never match — a reused descriptor number delivers
  // nothing until it is re-added. EpollWait fills |out| with level-ready
  // descriptors (rotating the scan start for multi-fd fairness) and returns
  // the count, 0 on timeout.
  int EpollCreate();
  int EpollCtl(int epfd, EpollOp op, int fd, uknet::EventMask events,
               std::uint64_t data = 0);
  int EpollWait(int epfd, std::span<EpollEvent> out,
                std::uint64_t timeout_cycles = 0);

  // Level-triggered readiness of one descriptor, derived from current socket
  // state (files are always readable+writable).
  uknet::EventMask ReadyMask(int fd) const;

  // Marks |fd| blocking/non-blocking (default: non-blocking). On a blocking
  // fd, Recv/RecvFrom/RecvMmsg/Accept become one-descriptor waits on the
  // readiness machinery: they sleep in NetStack::PollWait until the level
  // shows readable/acceptable (or hup/err), then retry. Returns 0 or -EBADF.
  // The flag clears on Close.
  int SetBlocking(int fd, bool blocking);
  bool IsBlocking(int fd) const;

  // ---- misc ----
  std::int64_t GetPid() { return shim_.Call(SyscallNumber("getpid")); }
  std::int64_t RawSyscall(int nr, const SyscallArgs& args = SyscallArgs{}) {
    return shim_.Call(nr, args);
  }

  SyscallShim& shim() { return shim_; }
  FdTable& fdtab() { return fdtab_; }
  uknet::NetStack* net() { return net_; }

 private:
  void RegisterHandlers();
  // True when a blocking call may actually sleep for |fd|.
  bool ShouldBlock(int fd) const;
  // The one-descriptor wait every blocking recv*/accept is built on: watches
  // |fd| and sleeps in PollWait until its level intersects |want| (hup/err
  // always end the wait). The shared core under Poll/EpollWait's sleeps.
  void WaitFdReady(int fd, uknet::EventMask want);
  // Scan bodies (no blocking): return ready count.
  int ScanPoll(std::span<PollFd> fds);
  int ScanEpoll(EpollInstance& inst, std::span<EpollEvent> out);
  // Turns a relative timeout into an absolute deadline (kNoTimeout passes).
  std::uint64_t DeadlineFor(std::uint64_t timeout_cycles) const;

  ukplat::Clock* clock_;
  SyscallShim shim_;
  FdTable fdtab_;
  vfscore::Vfs* vfs_;
  uknet::NetStack* net_;
  std::vector<std::uint8_t> blocking_;  // per-fd blocking flag (index = fd)
};

}  // namespace posix

#endif  // POSIX_API_H_
