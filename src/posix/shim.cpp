#include "posix/shim.h"

#include "ukarch/status.h"

namespace posix {

const char* DispatchModeName(DispatchMode m) {
  switch (m) {
    case DispatchMode::kDirectCall: return "direct-call";
    case DispatchMode::kShimTable: return "shim-table";
    case DispatchMode::kBinaryCompat: return "binary-compat";
    case DispatchMode::kLinuxTrap: return "linux-trap";
    case DispatchMode::kLinuxTrapFast: return "linux-trap-nomitig";
  }
  return "?";
}

std::uint64_t SyscallShim::EntryCost(DispatchMode mode, const ukplat::CostModel& model) {
  switch (mode) {
    case DispatchMode::kDirectCall: return model.function_call;
    case DispatchMode::kShimTable: return model.function_call * 2;  // one indirection
    case DispatchMode::kBinaryCompat: return model.binary_compat_dispatch;
    case DispatchMode::kLinuxTrap: return model.syscall_trap_mitigated;
    case DispatchMode::kLinuxTrapFast: return model.syscall_trap_plain;
  }
  return 0;
}

void SyscallShim::Register(int nr, SyscallHandler handler) {
  if (nr >= 0 && nr <= kMaxSyscallNr) {
    table_[static_cast<std::size_t>(nr)] = std::move(handler);
  }
}

std::int64_t SyscallShim::Call(int nr, const SyscallArgs& args) {
  ++calls_;
  clock_->Charge(EntryCost(mode_, clock_->model()));
  if (sched_ != nullptr) {
    sched_->PreemptPoint();  // syscalls are the kernel-entry preemption points
  }
  if (nr < 0 || nr > kMaxSyscallNr || table_[static_cast<std::size_t>(nr)] == nullptr) {
    ++enosys_;
    return ukarch::Raw(ukarch::Status::kNoSys);
  }
  return table_[static_cast<std::size_t>(nr)](args);
}

}  // namespace posix
