#include "posix/api.h"

#include <cstring>

namespace posix {

namespace {

constexpr std::int64_t Err(ukarch::Status s) { return ukarch::Raw(s); }

std::uint64_t Ptr(const void* p) { return reinterpret_cast<std::uint64_t>(p); }

template <typename T>
T* AsPtr(std::uint64_t v) {
  return reinterpret_cast<T*>(v);
}

}  // namespace

PosixApi::PosixApi(ukplat::Clock* clock, vfscore::Vfs* vfs, uknet::NetStack* net,
                   DispatchMode mode, uksched::Scheduler* sched)
    : clock_(clock), shim_(clock, mode, sched), vfs_(vfs), net_(net) {
  RegisterHandlers();
}

int PosixApi::SetBlocking(int fd, bool blocking) {
  if (!fdtab_.InUse(fd)) {
    return static_cast<int>(Err(ukarch::Status::kBadF));
  }
  if (blocking_.size() < fdtab_.capacity()) {
    blocking_.resize(fdtab_.capacity(), 0);
  }
  blocking_[static_cast<std::size_t>(fd)] = blocking ? 1 : 0;
  return 0;
}

bool PosixApi::IsBlocking(int fd) const {
  return fd >= 0 && static_cast<std::size_t>(fd) < blocking_.size() &&
         blocking_[static_cast<std::size_t>(fd)] != 0;
}

bool PosixApi::ShouldBlock(int fd) const {
  return IsBlocking(fd) && net_ != nullptr && net_->CanBlock();
}

// ---- readiness multiplexing --------------------------------------------------------

uknet::EventMask PosixApi::ReadyMask(int fd) const {
  if (auto tcp = fdtab_.Get<uknet::TcpSocket>(fd)) {
    uknet::EventMask m = 0;
    if (tcp->failed()) {
      m |= uknet::kEvtErr | uknet::kEvtHup;
    }
    if (tcp->readable()) {
      m |= uknet::kEvtReadable;
    }
    if (tcp->peer_closed()) {
      m |= uknet::kEvtHup;  // drained data stays readable alongside the hup
    }
    const uknet::TcpState st = tcp->state();
    if (!tcp->failed() && tcp->send_space() > 0 &&
        (st == uknet::TcpState::kEstablished || st == uknet::TcpState::kCloseWait)) {
      m |= uknet::kEvtWritable;
    }
    return m;
  }
  if (auto udp = fdtab_.Get<uknet::UdpSocket>(fd)) {
    // Datagram sends go straight to a TX netbuf (or fail transiently); treat
    // the socket as always writable, like the kernel does for UDP.
    uknet::EventMask m = uknet::kEvtWritable;
    if (udp->readable()) {
      m |= uknet::kEvtReadable;
    }
    return m;
  }
  if (auto lst = fdtab_.Get<uknet::TcpListener>(fd)) {
    return lst->backlog() > 0 ? (uknet::kEvtAcceptable | uknet::kEvtReadable) : 0;
  }
  if (fdtab_.Get<vfscore::File>(fd) != nullptr) {
    return uknet::kEvtReadable | uknet::kEvtWritable;  // RAM-backed: never blocks
  }
  return 0;  // pending sockets, epoll instances, free slots
}

std::uint64_t PosixApi::DeadlineFor(std::uint64_t timeout_cycles) const {
  if (timeout_cycles == kNoTimeout) {
    return kNoTimeout;
  }
  const std::uint64_t now = clock_->cycles();
  return timeout_cycles >= kNoTimeout - now ? kNoTimeout : now + timeout_cycles;
}

void PosixApi::WaitFdReady(int fd, uknet::EventMask want) {
  fdtab_.Watch(fd);
  const std::uint32_t gen = fdtab_.generation(fd);
  want |= uknet::kEvtErr | uknet::kEvtHup;  // teardown always ends a wait
  while ((ReadyMask(fd) & want) == 0) {
    if (!fdtab_.InUse(fd) || fdtab_.generation(fd) != gen) {
      // Closed under the sleeper (possibly reused for a different socket):
      // stop waiting — the caller retries and reports on the fd's NEW state
      // instead of hanging on the old socket's readiness.
      return;
    }
    // Frames, registered-socket edges and TCP timers all end this sleep; the
    // level is re-derived on every wake, so spurious wakeups are harmless.
    net_->PollWait();
  }
}

int PosixApi::ScanPoll(std::span<PollFd> fds) {
  int ready = 0;
  for (PollFd& p : fds) {
    if (p.fd < 0) {
      p.revents = 0;  // POSIX: negative fds mark ignored entries
      continue;
    }
    if (!fdtab_.InUse(p.fd)) {
      p.revents = uknet::kEvtErr;  // POLLNVAL-equivalent: report, never hang
      ++ready;
      continue;
    }
    fdtab_.Watch(p.fd);
    fdtab_.TakeEdges(p.fd);  // consumed: the level below carries the report
    p.revents = ReadyMask(p.fd) & (p.events | uknet::kEvtErr | uknet::kEvtHup);
    if (p.revents != 0) {
      ++ready;
    }
  }
  return ready;
}

int PosixApi::ScanEpoll(EpollInstance& inst, std::span<EpollEvent> out) {
  if (out.empty() || inst.interest.empty()) {
    return 0;
  }
  // Rotate the scan start across calls: when more descriptors are ready than
  // |out| holds, successive waits cycle through them instead of starving the
  // high-numbered fds (the multi-fd fairness rule).
  int n = 0;
  int last_reported = inst.rotor;
  auto it = inst.interest.upper_bound(inst.rotor);
  std::size_t steps = inst.interest.size();
  while (steps-- > 0 && n < static_cast<int>(out.size()) && !inst.interest.empty()) {
    if (it == inst.interest.end()) {
      it = inst.interest.begin();
    }
    const int fd = it->first;
    const EpollInterest& interest = it->second;
    if (!fdtab_.InUse(fd) || fdtab_.generation(fd) != interest.gen) {
      // The descriptor was closed (and possibly reused for a different
      // socket): the registration is stale — prune it, deliver nothing.
      it = inst.interest.erase(it);
      continue;
    }
    fdtab_.TakeEdges(fd);
    uknet::EventMask m =
        ReadyMask(fd) & (interest.events | uknet::kEvtErr | uknet::kEvtHup);
    if (m != 0) {
      out[n].fd = fd;
      out[n].events = m;
      out[n].data = interest.data;
      ++n;
      last_reported = fd;
    }
    ++it;
  }
  if (n > 0) {
    inst.rotor = last_reported;
  }
  return n;
}

void PosixApi::RegisterHandlers() {
  // ---- file handlers ----
  shim_.Register(SyscallNumber("open"), [this](const SyscallArgs& a) -> std::int64_t {
    auto* path = AsPtr<const char>(a.a0);
    std::shared_ptr<vfscore::File> file;
    ukarch::Status st = vfs_->Open(std::string_view(path, a.a1),
                                   static_cast<std::uint32_t>(a.a2), &file);
    if (!Ok(st)) {
      return Err(st);
    }
    return fdtab_.Install(std::move(file));
  });
  shim_.Register(SyscallNumber("read"), [this](const SyscallArgs& a) -> std::int64_t {
    auto file = fdtab_.Get<vfscore::File>(static_cast<int>(a.a0));
    if (file == nullptr) {
      return Err(ukarch::Status::kBadF);
    }
    return file->Read(std::span(AsPtr<std::byte>(a.a1), a.a2));
  });
  shim_.Register(SyscallNumber("write"), [this](const SyscallArgs& a) -> std::int64_t {
    auto file = fdtab_.Get<vfscore::File>(static_cast<int>(a.a0));
    if (file == nullptr) {
      return Err(ukarch::Status::kBadF);
    }
    return file->Write(std::span(AsPtr<const std::byte>(a.a1), a.a2));
  });
  shim_.Register(SyscallNumber("pread64"), [this](const SyscallArgs& a) -> std::int64_t {
    auto file = fdtab_.Get<vfscore::File>(static_cast<int>(a.a0));
    if (file == nullptr) {
      return Err(ukarch::Status::kBadF);
    }
    return file->ReadAt(a.a3, std::span(AsPtr<std::byte>(a.a1), a.a2));
  });
  shim_.Register(SyscallNumber("pwrite64"), [this](const SyscallArgs& a) -> std::int64_t {
    auto file = fdtab_.Get<vfscore::File>(static_cast<int>(a.a0));
    if (file == nullptr) {
      return Err(ukarch::Status::kBadF);
    }
    return file->WriteAt(a.a3, std::span(AsPtr<const std::byte>(a.a1), a.a2));
  });
  shim_.Register(SyscallNumber("lseek"), [this](const SyscallArgs& a) -> std::int64_t {
    auto file = fdtab_.Get<vfscore::File>(static_cast<int>(a.a0));
    if (file == nullptr) {
      return Err(ukarch::Status::kBadF);
    }
    auto whence = static_cast<vfscore::File::Whence>(a.a2);
    return file->Seek(static_cast<std::int64_t>(a.a1), whence);
  });
  shim_.Register(SyscallNumber("close"), [this](const SyscallArgs& a) -> std::int64_t {
    const int fd = static_cast<int>(a.a0);
    if (fd >= 0 && static_cast<std::size_t>(fd) < blocking_.size()) {
      blocking_[static_cast<std::size_t>(fd)] = 0;  // flags never survive reuse
    }
    return Err(fdtab_.Close(fd));
  });
  shim_.Register(SyscallNumber("stat"), [this](const SyscallArgs& a) -> std::int64_t {
    auto* path = AsPtr<const char>(a.a0);
    return Err(vfs_->Stat(std::string_view(path, a.a1),
                          AsPtr<vfscore::NodeStat>(a.a2)));
  });
  shim_.Register(SyscallNumber("unlink"), [this](const SyscallArgs& a) -> std::int64_t {
    auto* path = AsPtr<const char>(a.a0);
    return Err(vfs_->Unlink(std::string_view(path, a.a1)));
  });
  shim_.Register(SyscallNumber("mkdir"), [this](const SyscallArgs& a) -> std::int64_t {
    auto* path = AsPtr<const char>(a.a0);
    return Err(vfs_->Mkdir(std::string_view(path, a.a1)));
  });
  shim_.Register(SyscallNumber("fsync"), [this](const SyscallArgs& a) -> std::int64_t {
    auto file = fdtab_.Get<vfscore::File>(static_cast<int>(a.a0));
    if (file == nullptr) {
      return Err(ukarch::Status::kBadF);
    }
    // File::Fsync enforces the write-mode check (EBADF on a read-only fd)
    // and forwards to the node — a ukblockdev flush barrier on block-backed
    // filesystems, a no-op on memory-backed ones.
    return Err(file->Fsync());
  });
  shim_.Register(SyscallNumber("getpid"), [](const SyscallArgs&) -> std::int64_t {
    return 1;  // single-application domain: PID 1, always
  });

  // ---- socket handlers ----
  shim_.Register(SyscallNumber("socket"), [this](const SyscallArgs& a) -> std::int64_t {
    auto pending = std::make_shared<PendingSocket>();
    pending->is_stream = a.a0 == static_cast<std::uint64_t>(SockType::kStream);
    return fdtab_.Install(std::move(pending));
  });
  shim_.Register(SyscallNumber("bind"), [this](const SyscallArgs& a) -> std::int64_t {
    int fd = static_cast<int>(a.a0);
    auto pending = fdtab_.Get<PendingSocket>(fd);
    if (pending == nullptr) {
      return Err(ukarch::Status::kBadF);
    }
    auto port = static_cast<std::uint16_t>(a.a1);
    if (!pending->is_stream) {
      // Datagram sockets materialize at bind time.
      auto udp = net_->UdpOpen();
      ukarch::Status st = udp->Bind(port);
      if (!Ok(st)) {
        return Err(st);
      }
      fdtab_.Replace(fd, std::move(udp));
      return 0;
    }
    pending->bound_port = port;
    return 0;
  });
  shim_.Register(SyscallNumber("listen"), [this](const SyscallArgs& a) -> std::int64_t {
    int fd = static_cast<int>(a.a0);
    auto pending = fdtab_.Get<PendingSocket>(fd);
    if (pending == nullptr || !pending->is_stream || pending->bound_port == 0) {
      return Err(ukarch::Status::kBadF);
    }
    auto listener = net_->TcpListen(pending->bound_port);
    if (listener == nullptr) {
      return Err(ukarch::Status::kAddrInUse);
    }
    fdtab_.Replace(fd, std::move(listener));
    return 0;
  });
  shim_.Register(SyscallNumber("accept"), [this](const SyscallArgs& a) -> std::int64_t {
    const int fd = static_cast<int>(a.a0);
    auto listener = fdtab_.Get<uknet::TcpListener>(fd);
    if (listener == nullptr) {
      return Err(ukarch::Status::kBadF);
    }
    net_->Poll();
    for (;;) {
      auto conn = listener->Accept();
      if (conn != nullptr) {
        return fdtab_.Install(std::move(conn));
      }
      if (!ShouldBlock(fd)) {
        return Err(ukarch::Status::kAgain);
      }
      // Blocking accept is a one-descriptor wait on the readiness machinery:
      // sleep until the listener's level shows kEvtAcceptable, then retry.
      WaitFdReady(fd, uknet::kEvtAcceptable);
    }
  });
  shim_.Register(SyscallNumber("connect"), [this](const SyscallArgs& a) -> std::int64_t {
    int fd = static_cast<int>(a.a0);
    auto pending = fdtab_.Get<PendingSocket>(fd);
    if (pending == nullptr || !pending->is_stream) {
      return Err(ukarch::Status::kBadF);
    }
    auto conn = net_->TcpConnect(static_cast<uknet::Ip4Addr>(a.a1),
                                 static_cast<std::uint16_t>(a.a2));
    if (conn == nullptr) {
      return Err(ukarch::Status::kNetUnreach);
    }
    fdtab_.Replace(fd, std::move(conn));
    return Err(ukarch::Status::kInProgress);  // non-blocking connect
  });
  shim_.Register(SyscallNumber("sendto"), [this](const SyscallArgs& a) -> std::int64_t {
    auto udp = fdtab_.Get<uknet::UdpSocket>(static_cast<int>(a.a0));
    if (udp == nullptr) {
      return Err(ukarch::Status::kBadF);
    }
    return udp->SendTo(static_cast<uknet::Ip4Addr>(a.a4),
                       static_cast<std::uint16_t>(a.a5),
                       std::span(AsPtr<const std::uint8_t>(a.a1), a.a2));
  });
  shim_.Register(SyscallNumber("recvfrom"), [this](const SyscallArgs& a) -> std::int64_t {
    const int fd = static_cast<int>(a.a0);
    auto udp = fdtab_.Get<uknet::UdpSocket>(fd);
    if (udp == nullptr) {
      return Err(ukarch::Status::kBadF);
    }
    net_->Poll();
    // Zero-allocation receive: the payload is copied once, straight from the
    // driver netbuf into the caller's buffer (the syscall-boundary copy).
    for (;;) {
      std::int64_t n = udp->RecvInto(std::span(AsPtr<std::uint8_t>(a.a1), a.a2),
                                     a.a4 != 0 ? AsPtr<uknet::Ip4Addr>(a.a4) : nullptr,
                                     a.a5 != 0 ? AsPtr<std::uint16_t>(a.a5) : nullptr);
      if (n != Err(ukarch::Status::kAgain) || !ShouldBlock(fd)) {
        return n;
      }
      WaitFdReady(fd, uknet::kEvtReadable);  // one-fd wait: halt until a datagram
    }
  });
  shim_.Register(SyscallNumber("sendmmsg"), [this](const SyscallArgs& a) -> std::int64_t {
    auto udp = fdtab_.Get<uknet::UdpSocket>(static_cast<int>(a.a0));
    if (udp == nullptr) {
      return Err(ukarch::Status::kBadF);
    }
    // Batched TX all the way down: the caller's scatter array is the stack's
    // own view type, and the whole batch rides UdpSocket::SendToBatch — one
    // netbuf per datagram, one TxBurst per chunk instead of one per packet.
    std::int64_t sent = udp->SendToBatch(
        static_cast<uknet::Ip4Addr>(a.a4), static_cast<std::uint16_t>(a.a5),
        std::span(AsPtr<const MmsgVec>(a.a1), a.a2));
    return sent < 0 ? 0 : sent;  // nothing accepted reports an empty batch
  });
  shim_.Register(SyscallNumber("recvmmsg"), [this](const SyscallArgs& a) -> std::int64_t {
    const int fd = static_cast<int>(a.a0);
    auto udp = fdtab_.Get<uknet::UdpSocket>(fd);
    if (udp == nullptr) {
      return Err(ukarch::Status::kBadF);
    }
    net_->Poll();
    // Batched receive: one stack poll for the whole batch, then each datagram
    // copied once from its netbuf into the caller's scatter array. Blocking
    // mode sleeps until at least one datagram is in, then takes the batch.
    if (!udp->readable() && ShouldBlock(fd)) {
      WaitFdReady(fd, uknet::kEvtReadable);
    }
    auto* msgs = AsPtr<MmsgRecv>(a.a1);
    std::int64_t got = 0;
    for (std::uint64_t i = 0; i < a.a2; ++i) {
      std::int64_t n = udp->RecvInto(std::span(msgs[i].data, msgs[i].cap),
                                     &msgs[i].src_ip, &msgs[i].src_port,
                                     &msgs[i].rx_queue);
      if (n < 0) {
        break;
      }
      msgs[i].len = static_cast<std::size_t>(n);
      ++got;
    }
    return got == 0 ? Err(ukarch::Status::kAgain) : got;
  });
  auto tcp_send = [this](const SyscallArgs& a) -> std::int64_t {
    auto tcp = fdtab_.Get<uknet::TcpSocket>(static_cast<int>(a.a0));
    if (tcp == nullptr) {
      return Err(ukarch::Status::kBadF);
    }
    std::int64_t n = tcp->Send(std::span(AsPtr<const std::uint8_t>(a.a1), a.a2));
    if (n == 0 && a.a2 > 0) {
      // Send accepted nothing: the retransmission queue is at capacity or
      // the TX netbuf pool ran dry. Both are transient backpressure — ACKs
      // release retained buffers back to the pool — so both map to EAGAIN.
      return Err(ukarch::Status::kAgain);
    }
    return n;
  };
  auto tcp_recv = [this](const SyscallArgs& a) -> std::int64_t {
    const int fd = static_cast<int>(a.a0);
    auto tcp = fdtab_.Get<uknet::TcpSocket>(fd);
    if (tcp == nullptr) {
      return Err(ukarch::Status::kBadF);
    }
    net_->Poll();
    for (;;) {
      std::int64_t n = tcp->Recv(std::span(AsPtr<std::uint8_t>(a.a1), a.a2));
      if (n != Err(ukarch::Status::kAgain) || !ShouldBlock(fd)) {
        return n;  // data, FIN (0) and errors all end a blocking recv
      }
      // One-fd wait; PollWait's deadline folds in this connection's RTO, so
      // a blocked reader still drives its own retransmissions.
      WaitFdReady(fd, uknet::kEvtReadable);
    }
  };
  shim_.Register(SyscallNumber("sendmsg"), tcp_send);
  shim_.Register(SyscallNumber("recvmsg"), tcp_recv);

  // ---- readiness multiplexing handlers ----
  shim_.Register(SyscallNumber("poll"), [this](const SyscallArgs& a) -> std::int64_t {
    std::span<PollFd> fds(AsPtr<PollFd>(a.a1), a.a2);
    const std::uint64_t timeout = a.a3;
    const std::uint64_t deadline = DeadlineFor(timeout);
    if (net_ != nullptr) {
      net_->Poll();
    }
    for (;;) {
      int ready = ScanPoll(fds);
      if (ready > 0 || timeout == 0 || net_ == nullptr || !net_->CanBlock()) {
        return ready;  // without a scheduler this degrades to one scan pass
      }
      const std::uint64_t now = clock_->cycles();
      if (deadline != kNoTimeout && now >= deadline) {
        return 0;
      }
      net_->PollWait(uknet::NetStack::kAllQueues,
                     deadline == kNoTimeout ? uknet::NetStack::kNoDeadline
                                            : deadline - now);
    }
  });
  shim_.Register(SyscallNumber("epoll_create1"),
                 [this](const SyscallArgs&) -> std::int64_t {
                   return fdtab_.Install(std::make_shared<EpollInstance>());
                 });
  shim_.Register(SyscallNumber("epoll_ctl"), [this](const SyscallArgs& a) -> std::int64_t {
    auto inst = fdtab_.Get<EpollInstance>(static_cast<int>(a.a0));
    if (inst == nullptr) {
      return Err(ukarch::Status::kBadF);
    }
    const auto op = static_cast<EpollOp>(a.a1);
    const int fd = static_cast<int>(a.a2);
    auto it = inst->interest.find(fd);
    // An entry that survived a Close of its descriptor is stale even if the
    // number is in use again: it never matches and never delivers.
    const bool present = it != inst->interest.end() && fdtab_.InUse(fd) &&
                         fdtab_.generation(fd) == it->second.gen;
    switch (op) {
      case EpollOp::kAdd: {
        if (present) {
          return Err(ukarch::Status::kExist);
        }
        if (!fdtab_.Watch(fd)) {
          return Err(ukarch::Status::kBadF);
        }
        inst->interest[fd] =
            EpollInterest{static_cast<uknet::EventMask>(a.a3), a.a4,
                          fdtab_.generation(fd)};
        return 0;
      }
      case EpollOp::kMod:
        if (!present) {
          return Err(ukarch::Status::kNoEnt);
        }
        it->second.events = static_cast<uknet::EventMask>(a.a3);
        it->second.data = a.a4;
        return 0;
      case EpollOp::kDel:
        if (it == inst->interest.end()) {
          return Err(ukarch::Status::kNoEnt);
        }
        inst->interest.erase(it);
        return 0;
    }
    return Err(ukarch::Status::kInval);
  });
  shim_.Register(SyscallNumber("epoll_wait"), [this](const SyscallArgs& a) -> std::int64_t {
    auto inst = fdtab_.Get<EpollInstance>(static_cast<int>(a.a0));
    if (inst == nullptr) {
      return Err(ukarch::Status::kBadF);
    }
    std::span<EpollEvent> out(AsPtr<EpollEvent>(a.a1), a.a2);
    if (out.empty()) {
      return Err(ukarch::Status::kInval);  // a 0-slot wait could never end
    }
    const std::uint64_t timeout = a.a3;
    const std::uint64_t deadline = DeadlineFor(timeout);
    // Queue affinity: when every live interest entry is a TCP connection
    // pinned to the same RSS queue, this loop owns that queue outright and
    // can sleep on its private wait line instead of the shared any-queue one
    // (no thundering herd across per-queue loops; socket edges and ring
    // doorbells still end a pinned sleep). One non-affine fd — a listener,
    // a UDP socket, a file — forces kAllQueues: its events can originate on
    // any queue.
    std::uint16_t wait_queue = uknet::NetStack::kAllQueues;
    bool affine = true;
    for (const auto& [ifd, interest] : inst->interest) {
      if (!fdtab_.InUse(ifd) || fdtab_.generation(ifd) != interest.gen) {
        continue;  // stale entry: delivers nothing, constrains nothing
      }
      const int q = fdtab_.FdQueue(ifd);
      if (q == FdTable::kNoQueueAffinity ||
          (wait_queue != uknet::NetStack::kAllQueues &&
           wait_queue != static_cast<std::uint16_t>(q))) {
        affine = false;
        break;
      }
      wait_queue = static_cast<std::uint16_t>(q);
    }
    if (!affine) {
      wait_queue = uknet::NetStack::kAllQueues;
    }
    if (net_ != nullptr) {
      net_->Poll();
    }
    for (;;) {
      int n = ScanEpoll(*inst, out);
      if (n > 0 || timeout == 0 || net_ == nullptr || !net_->CanBlock()) {
        return n;
      }
      const std::uint64_t now = clock_->cycles();
      if (deadline != kNoTimeout && now >= deadline) {
        return 0;
      }
      // The multiplexed sleep of the whole design: one thread, any number of
      // watched descriptors, parked in PollWait until a frame, a TCP timer,
      // or a registered socket edge ends it.
      net_->PollWait(wait_queue,
                     deadline == kNoTimeout ? uknet::NetStack::kNoDeadline
                                            : deadline - now);
    }
  });
}

// ---- public wrappers: marshal into the register ABI ------------------------------

int PosixApi::Open(std::string_view path, std::uint32_t flags) {
  return static_cast<int>(shim_.Call(
      SyscallNumber("open"), SyscallArgs{Ptr(path.data()), path.size(), flags}));
}

std::int64_t PosixApi::Read(int fd, std::span<std::byte> out) {
  return shim_.Call(SyscallNumber("read"),
                    SyscallArgs{static_cast<std::uint64_t>(fd), Ptr(out.data()),
                                out.size()});
}

std::int64_t PosixApi::Write(int fd, std::span<const std::byte> in) {
  return shim_.Call(SyscallNumber("write"),
                    SyscallArgs{static_cast<std::uint64_t>(fd), Ptr(in.data()),
                                in.size()});
}

std::int64_t PosixApi::Pread(int fd, std::uint64_t off, std::span<std::byte> out) {
  return shim_.Call(SyscallNumber("pread64"),
                    SyscallArgs{static_cast<std::uint64_t>(fd), Ptr(out.data()),
                                out.size(), off});
}

std::int64_t PosixApi::Pwrite(int fd, std::uint64_t off, std::span<const std::byte> in) {
  return shim_.Call(SyscallNumber("pwrite64"),
                    SyscallArgs{static_cast<std::uint64_t>(fd), Ptr(in.data()),
                                in.size(), off});
}

std::int64_t PosixApi::Lseek(int fd, std::int64_t off, int whence) {
  return shim_.Call(SyscallNumber("lseek"),
                    SyscallArgs{static_cast<std::uint64_t>(fd),
                                static_cast<std::uint64_t>(off),
                                static_cast<std::uint64_t>(whence)});
}

int PosixApi::Close(int fd) {
  return static_cast<int>(
      shim_.Call(SyscallNumber("close"), SyscallArgs{static_cast<std::uint64_t>(fd)}));
}

int PosixApi::Stat(std::string_view path, vfscore::NodeStat* out) {
  return static_cast<int>(shim_.Call(
      SyscallNumber("stat"), SyscallArgs{Ptr(path.data()), path.size(), Ptr(out)}));
}

int PosixApi::Unlink(std::string_view path) {
  return static_cast<int>(shim_.Call(SyscallNumber("unlink"),
                                     SyscallArgs{Ptr(path.data()), path.size()}));
}

int PosixApi::Mkdir(std::string_view path) {
  return static_cast<int>(shim_.Call(SyscallNumber("mkdir"),
                                     SyscallArgs{Ptr(path.data()), path.size()}));
}

int PosixApi::Fsync(int fd) {
  return static_cast<int>(
      shim_.Call(SyscallNumber("fsync"), SyscallArgs{static_cast<std::uint64_t>(fd)}));
}

int PosixApi::Socket(SockType type) {
  return static_cast<int>(shim_.Call(
      SyscallNumber("socket"), SyscallArgs{static_cast<std::uint64_t>(type)}));
}

int PosixApi::Bind(int fd, std::uint16_t port) {
  return static_cast<int>(shim_.Call(
      SyscallNumber("bind"), SyscallArgs{static_cast<std::uint64_t>(fd), port}));
}

int PosixApi::Listen(int fd) {
  return static_cast<int>(
      shim_.Call(SyscallNumber("listen"), SyscallArgs{static_cast<std::uint64_t>(fd)}));
}

int PosixApi::Accept(int fd) {
  return static_cast<int>(
      shim_.Call(SyscallNumber("accept"), SyscallArgs{static_cast<std::uint64_t>(fd)}));
}

int PosixApi::Connect(int fd, uknet::Ip4Addr ip, std::uint16_t port) {
  return static_cast<int>(shim_.Call(
      SyscallNumber("connect"),
      SyscallArgs{static_cast<std::uint64_t>(fd), ip, port}));
}

std::int64_t PosixApi::Send(int fd, std::span<const std::uint8_t> data) {
  return shim_.Call(SyscallNumber("sendmsg"),
                    SyscallArgs{static_cast<std::uint64_t>(fd), Ptr(data.data()),
                                data.size()});
}

std::int64_t PosixApi::Recv(int fd, std::span<std::uint8_t> out) {
  return shim_.Call(SyscallNumber("recvmsg"),
                    SyscallArgs{static_cast<std::uint64_t>(fd), Ptr(out.data()),
                                out.size()});
}

std::int64_t PosixApi::SendTo(int fd, uknet::Ip4Addr ip, std::uint16_t port,
                              std::span<const std::uint8_t> data) {
  return shim_.Call(SyscallNumber("sendto"),
                    SyscallArgs{static_cast<std::uint64_t>(fd), Ptr(data.data()),
                                data.size(), 0, ip, port});
}

std::int64_t PosixApi::RecvFrom(int fd, std::span<std::uint8_t> out,
                                uknet::Ip4Addr* src_ip, std::uint16_t* src_port) {
  return shim_.Call(SyscallNumber("recvfrom"),
                    SyscallArgs{static_cast<std::uint64_t>(fd), Ptr(out.data()),
                                out.size(), 0, Ptr(src_ip), Ptr(src_port)});
}

std::int64_t PosixApi::SendMmsg(int fd, uknet::Ip4Addr ip, std::uint16_t port,
                                std::span<const MmsgVec> msgs) {
  return shim_.Call(SyscallNumber("sendmmsg"),
                    SyscallArgs{static_cast<std::uint64_t>(fd), Ptr(msgs.data()),
                                msgs.size(), 0, ip, port});
}

std::int64_t PosixApi::RecvMmsg(int fd, std::span<MmsgRecv> msgs) {
  return shim_.Call(SyscallNumber("recvmmsg"),
                    SyscallArgs{static_cast<std::uint64_t>(fd), Ptr(msgs.data()),
                                msgs.size()});
}

int PosixApi::Poll(std::span<PollFd> fds, std::uint64_t timeout_cycles) {
  return static_cast<int>(shim_.Call(
      SyscallNumber("poll"),
      SyscallArgs{0, Ptr(fds.data()), fds.size(), timeout_cycles}));
}

int PosixApi::EpollCreate() {
  return static_cast<int>(shim_.Call(SyscallNumber("epoll_create1")));
}

int PosixApi::EpollCtl(int epfd, EpollOp op, int fd, uknet::EventMask events,
                       std::uint64_t data) {
  return static_cast<int>(shim_.Call(
      SyscallNumber("epoll_ctl"),
      SyscallArgs{static_cast<std::uint64_t>(epfd), static_cast<std::uint64_t>(op),
                  static_cast<std::uint64_t>(fd), events, data}));
}

int PosixApi::EpollWait(int epfd, std::span<EpollEvent> out,
                        std::uint64_t timeout_cycles) {
  return static_cast<int>(shim_.Call(
      SyscallNumber("epoll_wait"),
      SyscallArgs{static_cast<std::uint64_t>(epfd), Ptr(out.data()), out.size(),
                  timeout_cycles}));
}

}  // namespace posix
