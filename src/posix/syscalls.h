// posix/syscalls.h - x86_64 Linux syscall number space (0..313) and the set
// Unikraft implements (§4.1: "we have implementations for 146 syscalls").
//
// The number->name table drives Fig 5's heatmap and Fig 7's per-application
// support computation; the supported set is the one the syscall shim
// dispatches, everything else auto-stubs to -ENOSYS exactly like the paper's
// shim layer does.
#ifndef POSIX_SYSCALLS_H_
#define POSIX_SYSCALLS_H_

#include <cstdint>
#include <set>
#include <string_view>
#include <vector>

namespace posix {

inline constexpr int kMaxSyscallNr = 313;  // finit_module, like the paper's Fig 5

// Name of syscall |nr| on x86_64 ("" for gaps). Stable data table.
std::string_view SyscallName(int nr);
// Reverse lookup; -1 when unknown.
int SyscallNumber(std::string_view name);

// The 146 syscalls the simulated Unikraft implements or stubs meaningfully.
const std::set<int>& SupportedSyscalls();

// Convenience: all valid numbers in [0, kMaxSyscallNr].
std::vector<int> AllSyscallNumbers();

}  // namespace posix

#endif  // POSIX_SYSCALLS_H_
