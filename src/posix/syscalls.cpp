#include "posix/syscalls.h"

#include <array>
#include <map>

namespace posix {

namespace {

// x86_64 syscall table, numbers 0..313 (through finit_module, the highest
// square in the paper's Fig 5 heatmap).
constexpr std::array<std::string_view, kMaxSyscallNr + 1> kNames = {
    "read", "write", "open", "close", "stat", "fstat", "lstat", "poll",         // 0-7
    "lseek", "mmap", "mprotect", "munmap", "brk", "rt_sigaction",               // 8-13
    "rt_sigprocmask", "rt_sigreturn", "ioctl", "pread64", "pwrite64", "readv",  // 14-19
    "writev", "access", "pipe", "select", "sched_yield", "mremap",              // 20-25
    "msync", "mincore", "madvise", "shmget", "shmat", "shmctl",                 // 26-31
    "dup", "dup2", "pause", "nanosleep", "getitimer", "alarm",                  // 32-37
    "setitimer", "getpid", "sendfile", "socket", "connect", "accept",           // 38-43
    "sendto", "recvfrom", "sendmsg", "recvmsg", "shutdown", "bind",             // 44-49
    "listen", "getsockname", "getpeername", "socketpair", "setsockopt",         // 50-54
    "getsockopt", "clone", "fork", "vfork", "execve", "exit",                   // 55-60
    "wait4", "kill", "uname", "semget", "semop", "semctl",                      // 61-66
    "shmdt", "msgget", "msgsnd", "msgrcv", "msgctl", "fcntl",                   // 67-72
    "flock", "fsync", "fdatasync", "truncate", "ftruncate", "getdents",         // 73-78
    "getcwd", "chdir", "fchdir", "rename", "mkdir", "rmdir",                    // 79-84
    "creat", "link", "unlink", "symlink", "readlink", "chmod",                  // 85-90
    "fchmod", "chown", "fchown", "lchown", "umask", "gettimeofday",             // 91-96
    "getrlimit", "getrusage", "sysinfo", "times", "ptrace", "getuid",           // 97-102
    "syslog", "getgid", "setuid", "setgid", "geteuid", "getegid",               // 103-108
    "setpgid", "getppid", "getpgrp", "setsid", "setreuid", "setregid",          // 109-114
    "getgroups", "setgroups", "setresuid", "getresuid", "setresgid",            // 115-119
    "getresgid", "getpgid", "setfsuid", "setfsgid", "getsid", "capget",         // 120-125
    "capset", "rt_sigpending", "rt_sigtimedwait", "rt_sigqueueinfo",            // 126-129
    "rt_sigsuspend", "sigaltstack", "utime", "mknod", "uselib",                 // 130-134
    "personality", "ustat", "statfs", "fstatfs", "sysfs", "getpriority",        // 135-140
    "setpriority", "sched_setparam", "sched_getparam", "sched_setscheduler",    // 141-144
    "sched_getscheduler", "sched_get_priority_max", "sched_get_priority_min",   // 145-147
    "sched_rr_get_interval", "mlock", "munlock", "mlockall", "munlockall",      // 148-152
    "vhangup", "modify_ldt", "pivot_root", "_sysctl", "prctl", "arch_prctl",    // 153-158
    "adjtimex", "setrlimit", "chroot", "sync", "acct", "settimeofday",          // 159-164
    "mount", "umount2", "swapon", "swapoff", "reboot", "sethostname",           // 165-170
    "setdomainname", "iopl", "ioperm", "create_module", "init_module",          // 171-175
    "delete_module", "get_kernel_syms", "query_module", "quotactl",             // 176-179
    "nfsservctl", "getpmsg", "putpmsg", "afs_syscall", "tuxcall",               // 180-184
    "security", "gettid", "readahead", "setxattr", "lsetxattr",                 // 185-189
    "fsetxattr", "getxattr", "lgetxattr", "fgetxattr", "listxattr",             // 190-194
    "llistxattr", "flistxattr", "removexattr", "lremovexattr",                  // 195-198
    "fremovexattr", "tkill", "time", "futex", "sched_setaffinity",              // 199-203
    "sched_getaffinity", "set_thread_area", "io_setup", "io_destroy",           // 204-207
    "io_getevents", "io_submit", "io_cancel", "get_thread_area",                // 208-211
    "lookup_dcookie", "epoll_create", "epoll_ctl_old", "epoll_wait_old",        // 212-215
    "remap_file_pages", "getdents64", "set_tid_address", "restart_syscall",     // 216-219
    "semtimedop", "fadvise64", "timer_create", "timer_settime",                 // 220-223
    "timer_gettime", "timer_getoverrun", "timer_delete", "clock_settime",       // 224-227
    "clock_gettime", "clock_getres", "clock_nanosleep", "exit_group",           // 228-231
    "epoll_wait", "epoll_ctl", "tgkill", "utimes", "vserver",                   // 232-236
    "mbind", "set_mempolicy", "get_mempolicy", "mq_open", "mq_unlink",          // 237-241
    "mq_timedsend", "mq_timedreceive", "mq_notify", "mq_getsetattr",            // 242-245
    "kexec_load", "waitid", "add_key", "request_key", "keyctl",                 // 246-250
    "ioprio_set", "ioprio_get", "inotify_init", "inotify_add_watch",            // 251-254
    "inotify_rm_watch", "migrate_pages", "openat", "mkdirat", "mknodat",        // 255-259
    "fchownat", "futimesat", "newfstatat", "unlinkat", "renameat",              // 260-264
    "linkat", "symlinkat", "readlinkat", "fchmodat", "faccessat",               // 265-269
    "pselect6", "ppoll", "unshare", "set_robust_list", "get_robust_list",       // 270-274
    "splice", "tee", "sync_file_range", "vmsplice", "move_pages",               // 275-279
    "utimensat", "epoll_pwait", "signalfd", "timerfd_create", "eventfd",        // 280-284
    "fallocate", "timerfd_settime", "timerfd_gettime", "accept4",               // 285-288
    "signalfd4", "eventfd2", "epoll_create1", "dup3", "pipe2",                  // 289-293
    "inotify_init1", "preadv", "pwritev", "rt_tgsigqueueinfo",                  // 294-297
    "perf_event_open", "recvmmsg", "fanotify_init", "fanotify_mark",            // 298-301
    "prlimit64", "name_to_handle_at", "open_by_handle_at", "clock_adjtime",     // 302-305
    "syncfs", "sendmmsg", "setns", "getcpu", "process_vm_readv",                // 306-310
    "process_vm_writev", "kcmp", "finit_module",                                // 311-313
};

}  // namespace

std::string_view SyscallName(int nr) {
  if (nr < 0 || nr > kMaxSyscallNr) {
    return "";
  }
  return kNames[static_cast<std::size_t>(nr)];
}

int SyscallNumber(std::string_view name) {
  static const std::map<std::string_view, int> kIndex = [] {
    std::map<std::string_view, int> m;
    for (int i = 0; i <= kMaxSyscallNr; ++i) {
      m[kNames[static_cast<std::size_t>(i)]] = i;
    }
    return m;
  }();
  auto it = kIndex.find(name);
  return it == kIndex.end() ? -1 : it->second;
}

const std::set<int>& SupportedSyscalls() {
  // 146 syscalls (the paper's count): core file I/O, memory, sockets, time,
  // scheduling, signals-lite, plus cheap unikernel stubs (getpid & friends).
  static const std::set<int> kSupported = [] {
    std::set<int> s;
    auto add = [&s](std::initializer_list<const char*> names) {
      for (const char* n : names) {
        int nr = SyscallNumber(n);
        if (nr >= 0) {
          s.insert(nr);
        }
      }
    };
    add({"read", "write", "open", "close", "stat", "fstat", "lstat", "poll", "lseek",
         "mmap", "mprotect", "munmap", "brk", "rt_sigaction", "rt_sigprocmask",
         "rt_sigreturn", "ioctl", "pread64", "pwrite64", "readv", "writev", "access",
         "pipe", "select", "sched_yield", "mremap", "msync", "madvise", "dup", "dup2",
         "pause", "nanosleep", "getitimer", "alarm", "setitimer", "getpid", "sendfile",
         "socket", "connect", "accept", "sendto", "recvfrom", "sendmsg", "recvmsg",
         "shutdown", "bind", "listen", "getsockname", "getpeername", "socketpair",
         "setsockopt", "getsockopt", "clone", "fork", "execve", "exit", "wait4", "kill",
         "uname", "fcntl", "flock", "fsync", "fdatasync", "truncate", "ftruncate",
         "getdents", "getcwd", "chdir", "fchdir", "rename", "mkdir", "rmdir", "creat",
         "link", "unlink", "symlink", "readlink", "chmod", "fchmod", "chown", "umask",
         "gettimeofday", "getrlimit", "getrusage", "sysinfo", "times", "getuid",
         "getgid", "setuid", "setgid", "geteuid", "getegid", "setpgid", "getppid",
         "getpgrp", "setsid", "sigaltstack", "statfs", "fstatfs", "getpriority",
         "setpriority", "arch_prctl", "setrlimit", "sync", "gettid", "time", "futex",
         "sched_setaffinity", "sched_getaffinity", "getdents64", "set_tid_address",
         "fadvise64", "clock_settime", "clock_gettime", "clock_getres",
         "clock_nanosleep", "exit_group", "epoll_wait", "epoll_ctl", "tgkill", "utimes",
         "openat", "mkdirat", "newfstatat", "unlinkat", "renameat", "linkat",
         "symlinkat", "readlinkat", "faccessat", "pselect6", "ppoll",
         "set_robust_list", "get_robust_list", "utimensat", "epoll_pwait",
         "timerfd_create", "eventfd", "fallocate", "timerfd_settime",
         "timerfd_gettime", "accept4", "eventfd2", "epoll_create1", "dup3", "pipe2",
         "preadv", "pwritev", "recvmmsg", "prlimit64", "sendmmsg", "getcpu",
         "getrandom"});
    return s;
  }();
  return kSupported;
}

std::vector<int> AllSyscallNumbers() {
  std::vector<int> v;
  v.reserve(kMaxSyscallNr + 1);
  for (int i = 0; i <= kMaxSyscallNr; ++i) {
    v.push_back(i);
  }
  return v;
}

}  // namespace posix
