// ukblockdev/ramdisk.h - RAM-backed block device (the paper's RamFS-class
// guests "do not include a block subsystem"; the ramdisk exists for tests and
// for images that want a block layer without virtio).
#ifndef UKBLOCKDEV_RAMDISK_H_
#define UKBLOCKDEV_RAMDISK_H_

#include <deque>
#include <vector>

#include "ukblockdev/blockdev.h"
#include "ukplat/memregion.h"

namespace ukblockdev {

class RamDisk final : public BlockDev {
 public:
  RamDisk(ukplat::MemRegion* guest_mem, std::uint64_t sectors,
          std::uint32_t sector_bytes = 512);

  const char* name() const override { return "ramdisk"; }
  Geometry geometry() const override { return geom_; }
  bool Submit(Request* req) override;
  std::size_t ProcessCompletions(std::size_t max) override;

  // Test hook: direct access to backing bytes.
  std::vector<std::uint8_t>& backing() { return disk_; }

  // Flush requests completed. The ramdisk has no volatile write cache, so a
  // flush is a counted no-op — vfscore::File::Fsync still reaches it and the
  // counter lets tests assert the plumbing end to end.
  std::uint64_t flushes() const { return flushes_; }

 private:
  std::int32_t Execute(Request* req);

  ukplat::MemRegion* guest_mem_;
  Geometry geom_;
  std::vector<std::uint8_t> disk_;
  std::deque<Request*> completed_;
  std::uint64_t flushes_ = 0;
};

}  // namespace ukblockdev

#endif  // UKBLOCKDEV_RAMDISK_H_
