// ukblockdev/blockdev.h - the ukblock API (scenario 8 in Fig 4).
//
// Asynchronous, queue-oriented block API in the style of uknetdev: the
// application owns request lifetimes, submissions are non-blocking, and
// completions are reaped in batches — the design that lets disk-bound apps
// "optimize throughput by coding against the ukblock API" instead of going
// through the VFS.
#ifndef UKBLOCKDEV_BLOCKDEV_H_
#define UKBLOCKDEV_BLOCKDEV_H_

#include <cstdint>
#include <functional>

#include "ukarch/status.h"

namespace ukblockdev {

struct Geometry {
  std::uint64_t sectors = 0;
  std::uint32_t sector_bytes = 512;
  std::uint64_t TotalBytes() const { return sectors * sector_bytes; }
};

struct Request {
  enum class Op : std::uint8_t { kRead, kWrite, kFlush };
  static constexpr std::int32_t kPending = INT32_MIN;

  Op op = Op::kRead;
  std::uint64_t sector = 0;
  std::uint32_t count = 0;        // sectors
  std::uint64_t data_gpa = 0;     // guest-physical buffer address
  std::int32_t result = kPending; // 0 or negative errno once complete
  void* cookie = nullptr;

  bool done() const { return result != kPending; }
};

class BlockDev {
 public:
  virtual ~BlockDev() = default;

  virtual const char* name() const = 0;
  virtual Geometry geometry() const = 0;

  // Non-blocking submit; false when the queue is full (caller retries after
  // reaping completions). The request must stay alive until completed.
  virtual bool Submit(Request* req) = 0;

  // Processes device work and completes up to |max| requests, invoking the
  // completion handler for each. Returns the number completed.
  virtual std::size_t ProcessCompletions(std::size_t max) = 0;

  void SetCompletionHandler(std::function<void(Request*)> handler) {
    handler_ = std::move(handler);
  }

 protected:
  void Complete(Request* req, std::int32_t result) {
    req->result = result;
    if (handler_) {
      handler_(req);
    }
  }

 private:
  std::function<void(Request*)> handler_;
};

// Convenience synchronous wrapper used by filesystems: submits and spins on
// completions. Returns the request result.
std::int32_t SubmitAndWait(BlockDev& dev, Request* req);

}  // namespace ukblockdev

#endif  // UKBLOCKDEV_BLOCKDEV_H_
