#include "ukblockdev/blockdev.h"

namespace ukblockdev {

std::int32_t SubmitAndWait(BlockDev& dev, Request* req) {
  while (!dev.Submit(req)) {
    dev.ProcessCompletions(SIZE_MAX);
  }
  while (!req->done()) {
    if (dev.ProcessCompletions(SIZE_MAX) == 0 && !req->done()) {
      // A device that makes no progress with a pending request is wedged.
      req->result = ukarch::Raw(ukarch::Status::kIo);
      break;
    }
  }
  return req->result;
}

}  // namespace ukblockdev
