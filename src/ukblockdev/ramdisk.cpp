#include "ukblockdev/ramdisk.h"

#include <cstring>

namespace ukblockdev {

RamDisk::RamDisk(ukplat::MemRegion* guest_mem, std::uint64_t sectors,
                 std::uint32_t sector_bytes)
    : guest_mem_(guest_mem),
      geom_{sectors, sector_bytes},
      disk_(sectors * sector_bytes, 0) {}

std::int32_t RamDisk::Execute(Request* req) {
  if (req->op == Request::Op::kFlush) {
    ++flushes_;  // no write cache to drain; acknowledged immediately
    return 0;
  }
  std::uint64_t offset = req->sector * geom_.sector_bytes;
  std::size_t bytes = static_cast<std::size_t>(req->count) * geom_.sector_bytes;
  if (req->sector + req->count > geom_.sectors) {
    return ukarch::Raw(ukarch::Status::kInval);
  }
  std::byte* buf = guest_mem_->At(req->data_gpa, bytes);
  if (buf == nullptr) {
    return ukarch::Raw(ukarch::Status::kFault);
  }
  if (req->op == Request::Op::kRead) {
    std::memcpy(buf, disk_.data() + offset, bytes);
  } else {
    std::memcpy(disk_.data() + offset, buf, bytes);
  }
  return 0;
}

bool RamDisk::Submit(Request* req) {
  req->result = Execute(req);
  // Completion is deferred to ProcessCompletions to preserve the async shape.
  completed_.push_back(req);
  return true;
}

std::size_t RamDisk::ProcessCompletions(std::size_t max) {
  std::size_t n = 0;
  while (n < max && !completed_.empty()) {
    Request* req = completed_.front();
    completed_.pop_front();
    std::int32_t result = req->result;
    req->result = Request::kPending;  // Complete() sets the final value
    Complete(req, result);
    ++n;
  }
  return n;
}

}  // namespace ukblockdev
