#include "ukblockdev/virtio_blk.h"

#include <cstring>

namespace ukblockdev {

namespace {
constexpr std::uint32_t kVirtioBlkTIn = 0;     // read
constexpr std::uint32_t kVirtioBlkTOut = 1;    // write
constexpr std::uint32_t kVirtioBlkTFlush = 4;
constexpr std::uint8_t kVirtioBlkSOk = 0;
constexpr std::uint8_t kVirtioBlkSIoErr = 1;
}  // namespace

std::size_t VirtioBlk::FootprintBytes(std::uint16_t qsize) {
  return ukplat::Virtqueue::FootprintBytes(qsize) + std::size_t{qsize} * kReqSlotBytes;
}

VirtioBlk::VirtioBlk(ukplat::MemRegion* guest_mem, ukplat::Clock* clock,
                     std::uint64_t ring_gpa, std::uint16_t qsize, std::uint64_t sectors,
                     std::uint32_t sector_bytes)
    : guest_mem_(guest_mem),
      clock_(clock),
      vq_(guest_mem, ring_gpa, qsize),
      geom_{sectors, sector_bytes},
      disk_(sectors * sector_bytes, 0),
      slots_gpa_(ring_gpa + ukplat::Virtqueue::FootprintBytes(qsize)),
      qsize_(qsize) {}

bool VirtioBlk::Submit(Request* req) {
  if (vq_.NumFree() < 3) {
    return false;
  }
  // Rotating header/status slots; safe because a request occupies its slot
  // only while its chain is outstanding and there are as many slots as
  // descriptors / 3 chains possible.
  std::uint64_t slot = slots_gpa_ + (next_slot_ % qsize_) * kReqSlotBytes;
  ++next_slot_;

  VirtioBlkHdr hdr{};
  hdr.type = req->op == Request::Op::kRead    ? kVirtioBlkTIn
             : req->op == Request::Op::kWrite ? kVirtioBlkTOut
                                              : kVirtioBlkTFlush;
  hdr.sector = req->sector;
  guest_mem_->Write(slot, hdr);

  std::size_t bytes = static_cast<std::size_t>(req->count) * geom_.sector_bytes;
  ukplat::Virtqueue::Segment segs[3];
  segs[0] = {slot, sizeof(VirtioBlkHdr), false};
  segs[1] = {req->data_gpa, static_cast<std::uint32_t>(bytes),
             req->op == Request::Op::kRead};
  segs[2] = {slot + sizeof(VirtioBlkHdr), 1, true};  // status byte
  std::size_t nsegs = req->op == Request::Op::kFlush ? 1u : 3u;
  if (req->op == Request::Op::kFlush) {
    segs[1] = segs[2];  // flush has no data segment
    nsegs = 2;
  }
  if (!vq_.Enqueue(std::span(segs).first(nsegs), req)) {
    return false;
  }
  slot_of_[req] = slot;
  if (vq_.NeedsKick()) {
    // Notifying the device is a VM exit (ioeventfd path).
    clock_->Charge(clock_->model().vm_exit);
    vq_.MarkKicked();
    ++kicks_;
  }
  return true;
}

void VirtioBlk::DeviceRun() {
  bool did_work = false;
  while (auto chain = vq_.DevicePop()) {
    std::uint8_t status = kVirtioBlkSOk;
    std::uint32_t written = 0;
    VirtioBlkHdr hdr{};
    if (chain->segments.empty() ||
        chain->segments[0].len < sizeof(VirtioBlkHdr)) {
      status = kVirtioBlkSIoErr;
    } else {
      hdr = guest_mem_->Read<VirtioBlkHdr>(chain->segments[0].gpa);
      if (hdr.type == kVirtioBlkTIn || hdr.type == kVirtioBlkTOut) {
        const auto& data_seg = chain->segments[1];
        std::uint64_t offset = hdr.sector * geom_.sector_bytes;
        if (offset + data_seg.len > disk_.size()) {
          status = kVirtioBlkSIoErr;
        } else {
          std::byte* buf = guest_mem_->At(data_seg.gpa, data_seg.len);
          if (buf == nullptr) {
            status = kVirtioBlkSIoErr;
          } else if (hdr.type == kVirtioBlkTIn) {
            std::memcpy(buf, disk_.data() + offset, data_seg.len);
            clock_->ChargeCopy(data_seg.len);
            written = data_seg.len;
          } else {
            std::memcpy(disk_.data() + offset, buf, data_seg.len);
            clock_->ChargeCopy(data_seg.len);
          }
        }
      } else if (hdr.type == kVirtioBlkTFlush) {
        // Barrier: all writes acknowledged before this chain are stable once
        // the status byte lands. The simulated disk image is a host vector,
        // so the only observable effect is the modeled drain cost + counter.
        clock_->Charge(kFlushBarrierCycles);
        ++flushes_;
      }
    }
    // Status byte lives in the last (device-writable) segment.
    const auto& status_seg = chain->segments.back();
    guest_mem_->Write<std::uint8_t>(status_seg.gpa, status);
    vq_.DevicePush(chain->head, written + 1);
    did_work = true;
  }
  if (did_work) {
    clock_->Charge(clock_->model().irq_inject);
    ++irqs_;
  }
}

std::size_t VirtioBlk::ProcessCompletions(std::size_t max) {
  DeviceRun();
  std::size_t n = 0;
  while (n < max) {
    auto done = vq_.DequeueCompletion();
    if (!done.has_value()) {
      break;
    }
    auto* req = static_cast<Request*>(done->cookie);
    // Read back the status byte the device wrote into the request's slot.
    std::int32_t result = ukarch::Raw(ukarch::Status::kIo);
    auto it = slot_of_.find(req);
    if (it != slot_of_.end()) {
      std::uint8_t status =
          guest_mem_->Read<std::uint8_t>(it->second + sizeof(VirtioBlkHdr));
      result = status == kVirtioBlkSOk ? 0 : ukarch::Raw(ukarch::Status::kIo);
      slot_of_.erase(it);
    }
    Complete(req, result);
    ++n;
  }
  return n;
}

}  // namespace ukblockdev
