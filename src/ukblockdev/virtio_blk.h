// ukblockdev/virtio_blk.h - virtio-blk driver + device backend over a split
// virtqueue in guest memory.
//
// Faithful request framing (virtio spec §5.2.6): each request is a 3-segment
// descriptor chain [header | data | status]. The guest driver half builds
// chains and kicks; the embedded device half (the "VMM thread") pops chains,
// executes them against a host-side disk image, writes the status byte, and
// charges the VM-exit and interrupt-injection costs to the virtual clock.
#ifndef UKBLOCKDEV_VIRTIO_BLK_H_
#define UKBLOCKDEV_VIRTIO_BLK_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "ukblockdev/blockdev.h"
#include "ukplat/clock.h"
#include "ukplat/memregion.h"
#include "ukplat/virtqueue.h"

namespace ukblockdev {

class VirtioBlk final : public BlockDev {
 public:
  // |ring_gpa| must point at a carved area of Virtqueue::FootprintBytes(qsize)
  // plus qsize * kReqSlotBytes for per-request header/status slots.
  VirtioBlk(ukplat::MemRegion* guest_mem, ukplat::Clock* clock, std::uint64_t ring_gpa,
            std::uint16_t qsize, std::uint64_t sectors, std::uint32_t sector_bytes = 512);

  static std::size_t FootprintBytes(std::uint16_t qsize);

  const char* name() const override { return "virtio-blk"; }
  Geometry geometry() const override { return geom_; }
  bool Submit(Request* req) override;
  std::size_t ProcessCompletions(std::size_t max) override;

  std::vector<std::uint8_t>& backing() { return disk_; }
  std::uint64_t kicks() const { return kicks_; }
  std::uint64_t irqs() const { return irqs_; }
  // Write-cache barriers executed by the device side (VIRTIO_BLK_T_FLUSH
  // chains). Unlike the ramdisk's no-op, each barrier charges the modeled
  // cost of draining the host-side cache before the status byte is written.
  std::uint64_t flushes() const { return flushes_; }

  // Modeled cycles for one cache barrier: the device thread must issue and
  // wait out a host-side fdatasync-equivalent before acknowledging.
  static constexpr std::uint64_t kFlushBarrierCycles = 12'000;

  static constexpr std::size_t kReqSlotBytes = 32;  // 16B header + status + pad

 private:
  // virtio-blk header as it appears in guest memory.
  struct VirtioBlkHdr {
    std::uint32_t type;      // 0 = read, 1 = write, 4 = flush
    std::uint32_t reserved;
    std::uint64_t sector;
  };

  void DeviceRun();  // the VMM side: drain the queue, execute, push used

  ukplat::MemRegion* guest_mem_;
  ukplat::Clock* clock_;
  ukplat::Virtqueue vq_;
  Geometry geom_;
  std::vector<std::uint8_t> disk_;
  std::uint64_t slots_gpa_ = 0;
  std::uint16_t qsize_ = 0;
  std::uint32_t next_slot_ = 0;
  std::unordered_map<Request*, std::uint64_t> slot_of_;  // outstanding requests
  std::uint64_t kicks_ = 0;
  std::uint64_t irqs_ = 0;
  std::uint64_t flushes_ = 0;
};

}  // namespace ukblockdev

#endif  // UKBLOCKDEV_VIRTIO_BLK_H_
