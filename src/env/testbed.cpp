#include "env/testbed.h"

#include <cstdlib>

namespace env {

std::uint16_t QueuesFromEnv() {
  const char* v = std::getenv("UKRAFT_QUEUES");
  if (v == nullptr) {
    return 1;
  }
  long n = std::strtol(v, nullptr, 10);
  if (n < 1) {
    return 1;
  }
  if (n > 4) {
    return 4;
  }
  return static_cast<std::uint16_t>(n);
}

SimHost::SimHost(ukplat::Clock* clock, ukplat::Wire* wire, int side, uknet::Ip4Addr ip,
                 ukalloc::Backend alloc_backend, uknetdev::VirtioBackend net_backend,
                 std::size_t mem_bytes, std::uint16_t queues)
    : mem(mem_bytes) {
  if (queues == 0) {
    queues = QueuesFromEnv();
  }
  std::size_t heap_bytes = mem_bytes - (4ull << 20);
  std::uint64_t heap_gpa = mem.Carve(heap_bytes, 4096);
  alloc = ukalloc::CreateAllocator(alloc_backend, mem.At(heap_gpa, heap_bytes),
                                   heap_bytes);
  uknetdev::VirtioNet::Config cfg;
  cfg.backend = net_backend;
  cfg.wire_side = side;
  cfg.mac = uknetdev::MacAddr{{2, 0, 0, 0, 0, static_cast<std::uint8_t>(side + 1)}};
  cfg.queue_size = 256;
  nic = std::make_unique<uknetdev::VirtioNet>(&mem, clock, wire, cfg);
  stack = std::make_unique<uknet::NetStack>(&mem, clock, alloc.get());
  uknet::NetIf::Config ifcfg;
  ifcfg.ip = ip;
  ifcfg.queues = queues;
  netif = stack->AddInterface(nic.get(), ifcfg);
}

TestBed::TestBed(Profile profile) : profile_(std::move(profile)) {
  wire_ = std::make_unique<ukplat::Wire>(&clock_);
  // Native/container profiles do not cross a VMM: their NIC uses the polled
  // (exit-free) path and pays the host kernel stack per packet instead.
  uknetdev::VirtioBackend server_backend =
      profile_.virtualized ? profile_.backend : uknetdev::VirtioBackend::kVhostUser;
  server_ = std::make_unique<SimHost>(&clock_, wire_.get(), 0, kServerIp,
                                      profile_.allocator, server_backend);
  // The client box is always the same machine: Linux + default stack.
  client_ = std::make_unique<SimHost>(&clock_, wire_.get(), 1, kClientIp,
                                      ukalloc::Backend::kTlsf,
                                      uknetdev::VirtioBackend::kVhostUser);
  // Pre-resolve ARP (the paper's warm-up phase).
  server_->netif->AddArpEntry(kClientIp, client_->nic->mac());
  client_->netif->AddArpEntry(kServerIp, server_->nic->mac());

  ramfs_ = std::make_unique<vfscore::RamFs>(server_->alloc.get());
  vfs_.Mount("/", ramfs_.get());
  api_ = std::make_unique<posix::PosixApi>(&clock_, &vfs_, server_->stack.get(),
                                           profile_.dispatch);
}

void TestBed::ChargeRequestOverhead() { clock_.Charge(profile_.per_request_overhead); }

void TestBed::ChargeHostNetPath(std::size_t packets) {
  if (!profile_.virtualized) {
    clock_.Charge(profile_.host_net_per_packet * packets);
    return;
  }
  // Guests with a general-purpose kernel pay their own stack per packet on
  // top of the virtio path (unikernel stacks run for real in the simulation).
  clock_.Charge(profile_.guest_stack_per_packet * packets);
  // VMM I/O quality: Firecracker/uHyve-class monitors pay extra per packet
  // relative to QEMU/KVM's vhost path (§5.3, Firecracker issue #1034).
  if (profile_.vmm.io_efficiency < 1.0) {
    double extra = (1.0 / profile_.vmm.io_efficiency - 1.0) * 1200.0;
    clock_.Charge(static_cast<std::uint64_t>(extra * static_cast<double>(packets)));
  }
}

void TestBed::Poll() {
  server_->stack->Poll();
  client_->stack->Poll();
}

}  // namespace env
