#include "env/fleet.h"

#include <cstdlib>

namespace env {

namespace {

uknetdev::MacAddr MacForPort(int port) {
  return uknetdev::MacAddr{
      {2, 0, 0, 0, 0, static_cast<std::uint8_t>(port + 1)}};
}

}  // namespace

// ---- BackendHost ------------------------------------------------------------

FleetTestBed::BackendHost::BackendHost(FleetTestBed* owner, int idx)
    : fleet(owner),
      index(idx),
      wire_port(2 + idx),
      ip(BackendIp(idx)) {
  ukboot::InstanceConfig icfg;
  icfg.name = "b" + std::to_string(idx);
  icfg.memory_bytes = owner->config_.backend_memory_bytes;
  icfg.nics = 1;
  instance = std::make_unique<ukboot::Instance>(icfg);

  // The inittab below is registered once and replayed by every Boot() —
  // including reboots after Shutdown() — so cold-start under load runs the
  // same stages as first boot and reports fresh timings for each.
  instance->RegisterInit(
      ukboot::InitStage::kBus, "virtio-net", [this](ukboot::Instance& inst) {
        uknetdev::VirtioNet::Config cfg;
        cfg.backend = uknetdev::VirtioBackend::kVhostUser;
        cfg.wire_side = wire_port;
        cfg.mac = MacForPort(wire_port);
        cfg.queue_size = 256;
        nic = std::make_unique<uknetdev::VirtioNet>(
            &inst.mem(), &fleet->clock_, fleet->wire_.get(), cfg);
        return ukarch::Status::kOk;
      });
  instance->RegisterInit(
      ukboot::InitStage::kRootfs, "blockfs", [this](ukboot::Instance& inst) {
        // The disk outlives every incarnation (host-side backing bytes); the
        // filesystem object is rebuilt each boot — its bounce buffer must be
        // re-carved from the freshly reset guest RAM. First boot formats,
        // reboots mount what the previous incarnation wrote.
        if (disk == nullptr) {
          disk = std::make_unique<ukblockdev::RamDisk>(&inst.mem(),
                                                       /*sectors=*/8192);
        }
        blockfs = std::make_unique<vfscore::BlockFs>(disk.get(), &inst.mem());
        auto st = blockfs->EnsureFormatted();
        if (!ukarch::Ok(st)) {
          return st;
        }
        return vfs.Mount("/persist", blockfs.get());
      });
  instance->RegisterInit(
      ukboot::InitStage::kSys, "netstack", [this](ukboot::Instance& inst) {
        stack = std::make_unique<uknet::NetStack>(&inst.mem(), &fleet->clock_,
                                                  inst.heap());
        uknet::NetIf::Config ifcfg;
        ifcfg.ip = ip;
        ifcfg.queues = 1;
        netif = stack->AddInterface(nic.get(), ifcfg);
        return netif != nullptr ? ukarch::Status::kOk : ukarch::Status::kNoMem;
      });
  instance->RegisterInit(
      ukboot::InitStage::kLate, "redis", [this](ukboot::Instance& inst) {
        api = std::make_unique<posix::PosixApi>(&fleet->clock_, &vfs,
                                                stack.get(),
                                                posix::DispatchMode::kDirectCall);
        server = std::make_unique<apps::RedisServer>(
            api.get(), inst.heap(), fleet->config_.backend_port);
        if (!server->Start()) {
          return ukarch::Status::kNoMem;
        }
        // Durability: attach the persistence tier over /persist and replay
        // whatever the previous incarnation saved (newest valid snapshot,
        // then the AOF tail) — the reborn backend serves its pre-kill data.
        apps::Persist::Config pcfg;
        pcfg.dir = "/persist";
        persist = std::make_unique<apps::Persist>(&vfs, pcfg);
        server->AttachPersist(persist.get());
        last_recover = server->RecoverFromPersist();
        // Serving identity: clients GET "id" to learn which incarnation of
        // which backend answered them. Seeded AFTER recovery (it must name
        // THIS incarnation) and straight into the store, bypassing the AOF —
        // identity is ephemeral by design.
        return server->store().Set("id", id()) ? ukarch::Status::kOk
                                               : ukarch::Status::kNoMem;
      });
}

std::string FleetTestBed::BackendHost::id() const {
  std::string s = "b" + std::to_string(index);
  if (incarnation > 1) {
    s += "-r" + std::to_string(incarnation - 1);
  }
  return s;
}

// ---- FleetTestBed -----------------------------------------------------------

FleetTestBed::FleetTestBed(Config config) : config_(config) {
  ukplat::Wire::Config wcfg;
  wcfg.queue_depth = 4096;  // the switch carries the whole fleet's traffic
  wire_ = std::make_unique<ukplat::Wire>(&clock_, wcfg);

  client_ = std::make_unique<SimHost>(&clock_, wire_.get(), 0, kClientIp,
                                      ukalloc::Backend::kTlsf,
                                      uknetdev::VirtioBackend::kVhostUser,
                                      64ull << 20, 1);
  balancer_host_ = std::make_unique<SimHost>(&clock_, wire_.get(), 1,
                                             kBalancerIp,
                                             ukalloc::Backend::kTlsf,
                                             uknetdev::VirtioBackend::kVhostUser,
                                             64ull << 20, 1);
  balancer_api_ = std::make_unique<posix::PosixApi>(
      &clock_, &balancer_vfs_, balancer_host_->stack.get(),
      posix::DispatchMode::kDirectCall);

  apps::L4Balancer::Config bcfg;
  bcfg.vip_port = config_.vip_port;
  bcfg.probe_interval_cycles = config_.probe_interval_cycles;
  bcfg.probe_timeout_cycles = config_.probe_timeout_cycles;
  balancer_ = std::make_unique<apps::L4Balancer>(balancer_api_.get(), &clock_,
                                                 bcfg);

  client_->netif->AddArpEntry(kBalancerIp, MacForPort(1));
  balancer_host_->netif->AddArpEntry(kClientIp, MacForPort(0));

  for (int i = 0; i < config_.backends; ++i) {
    backends_.push_back(std::make_unique<BackendHost>(this, i));
    balancer_->AddBackend({BackendIp(i), config_.backend_port});
    BootBackend(i);
  }
  balancer_->Start();
}

FleetTestBed::~FleetTestBed() {
  for (auto& b : backends_) {
    if (b->alive) {
      KillBackend(b->index);
    }
  }
}

ukboot::BootReport FleetTestBed::BootBackend(int i) {
  BackendHost& b = *backends_[i];
  // Bump before Boot(): the inittab's kLate stage seeds the store with id(),
  // which must already name the new incarnation ("b<i>-r<n>").
  ++b.incarnation;
  b.report = b.instance->Boot();
  if (!b.report.ok) {
    --b.incarnation;
    return b.report;
  }
  b.alive = true;
  // ARP warm-up: the balancer already knows this port's MAC (it is derived
  // from the port and survives respawns), but a fresh stack knows nobody.
  b.netif->AddArpEntry(kBalancerIp, MacForPort(1));
  balancer_host_->netif->AddArpEntry(b.ip, MacForPort(b.wire_port));
  return b.report;
}

void FleetTestBed::KillBackend(int i) {
  BackendHost& b = *backends_[i];
  if (!b.alive) {
    return;
  }
  // Reverse bring-up order; everything below lives on the instance heap or
  // guest RAM, so it must be gone before Shutdown() wipes both. This is a
  // HARD kill: persist still holds un-flushed turn buffers and possibly a
  // half-written snapshot — exactly what replay-on-boot must tolerate. Only
  // the disk (host-side backing) survives.
  b.server.reset();
  b.persist.reset();
  b.api.reset();
  b.netif = nullptr;
  b.stack.reset();
  b.nic.reset();
  b.vfs.Unmount("/persist");
  b.blockfs.reset();
  wire_->ResetPort(b.wire_port);
  b.instance->Shutdown();
  b.alive = false;
}

void FleetTestBed::PumpAll() {
  // Every turn costs CPU time even when no frame moves; without this the
  // virtual clock freezes the moment traffic stalls and the balancer's probe
  // interval/timeout (both cycle deadlines) could never expire — exactly the
  // window where a dead backend must be detected. ~5.6us per turn keeps
  // probe rounds hundreds of turns apart while staying far below rto_cycles.
  clock_.Charge(kTurnCycles);
  client_->stack->Poll();
  balancer_host_->stack->Poll();
  balancer_->PumpOnce();
  for (auto& b : backends_) {
    if (!b->alive) {
      continue;
    }
    b->stack->Poll();
    b->server->PumpOnce();
  }
}

bool FleetTestBed::PumpUntil(const std::function<bool()>& done, int max_turns) {
  for (int i = 0; i < max_turns; ++i) {
    if (done()) {
      return true;
    }
    PumpAll();
  }
  return done();
}

// ---- FleetChurnClient -------------------------------------------------------

namespace {

constexpr std::string_view kGetIdRequest = "*2\r\n$3\r\nGET\r\n$2\r\nid\r\n";

// Parses a complete RESP bulk-string reply out of |rx|. Returns true and
// fills |value| when one is fully buffered.
bool ParseBulk(const std::string& rx, std::string* value) {
  if (rx.size() < 4 || rx[0] != '$') {
    return false;
  }
  const std::size_t eol = rx.find("\r\n");
  if (eol == std::string::npos) {
    return false;
  }
  const long len = std::strtol(rx.c_str() + 1, nullptr, 10);
  if (len < 0) {
    *value = "";  // $-1: null bulk (unseeded backend)
    return true;
  }
  const std::size_t need = eol + 2 + static_cast<std::size_t>(len) + 2;
  if (rx.size() < need) {
    return false;
  }
  value->assign(rx, eol + 2, static_cast<std::size_t>(len));
  return true;
}

}  // namespace

FleetChurnClient::FleetChurnClient(uknet::NetStack* stack, uknet::Ip4Addr vip,
                                   std::uint16_t port, int concurrency)
    : stack_(stack), vip_(vip), port_(port),
      slots_(static_cast<std::size_t>(concurrency)) {}

bool FleetChurnClient::idle() const {
  for (const Slot& s : slots_) {
    if (s.sock != nullptr) {
      return false;
    }
  }
  return true;
}

void FleetChurnClient::StepSlot(Slot& slot, std::size_t* done) {
  if (slot.sock == nullptr) {
    if (!running_) {
      return;
    }
    slot.sock = stack_->TcpConnect(vip_, port_);
    slot.rx.clear();
    slot.sent = false;
    return;
  }
  if (slot.sock->failed()) {
    // RST before the reply: the balancer had no healthy slot, or tore the
    // flow down when its backend died mid-request. The slot retries.
    ++aborted_;
    slot.sock->Close();
    slot.sock = nullptr;
    return;
  }
  if (!slot.sock->connected() && !slot.sock->peer_closed()) {
    return;  // handshake in flight
  }
  if (!slot.sent && slot.sock->connected()) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(kGetIdRequest.data());
    if (slot.sock->Send(std::span(p, kGetIdRequest.size())) > 0) {
      slot.sent = true;
    }
  }
  std::uint8_t buf[512];
  for (;;) {
    const std::int64_t n = slot.sock->Recv(buf);
    if (n > 0) {
      slot.rx.append(reinterpret_cast<char*>(buf),
                     static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0 && !slot.rx.empty()) {
      break;  // peer closed after replying; parse what arrived
    }
    if (n == 0) {
      // Closed before any reply (balancer teardown): aborted flow.
      ++aborted_;
      slot.sock->Close();
      slot.sock = nullptr;
      return;
    }
    break;  // -EAGAIN
  }
  std::string value;
  if (ParseBulk(slot.rx, &value)) {
    ++completed_;
    ++by_backend_[value];
    ++*done;
    slot.sock->Close();
    slot.sock = nullptr;
  }
}

std::size_t FleetChurnClient::Pump() {
  std::size_t done = 0;
  for (Slot& slot : slots_) {
    StepSlot(slot, &done);
  }
  return done;
}

}  // namespace env
