// env/testbed.h - a two-machine testbed: server host under a Profile, client
// host on the other end of the wire (the paper's second Shuttle box running
// wrk / redis-benchmark / testpmd).
#ifndef ENV_TESTBED_H_
#define ENV_TESTBED_H_

#include <memory>

#include "env/profile.h"
#include "posix/api.h"
#include "uknet/stack.h"
#include "uknetdev/loopback.h"
#include "uknetdev/virtio_net.h"
#include "ukplat/wire.h"
#include "vfscore/ramfs.h"

namespace env {

// Queue pairs the testbed configures per interface. Defaults to 1; the
// UKRAFT_QUEUES environment variable overrides it (clamped to [1, 4]) so CI
// can run the whole suite with queue-sharded datapaths (ci.sh sets 2 for the
// sanitizer leg).
std::uint16_t QueuesFromEnv();

// One simulated machine: guest RAM, allocator, NIC, stack.
struct SimHost {
  SimHost(ukplat::Clock* clock, ukplat::Wire* wire, int side, uknet::Ip4Addr ip,
          ukalloc::Backend alloc_backend, uknetdev::VirtioBackend net_backend,
          std::size_t mem_bytes = 64ull << 20, std::uint16_t queues = 0 /* env */);

  ukplat::MemRegion mem;
  std::unique_ptr<ukalloc::Allocator> alloc;
  std::unique_ptr<uknetdev::VirtioNet> nic;
  std::unique_ptr<uknet::NetStack> stack;
  uknet::NetIf* netif = nullptr;
};

// The full experiment world for one Profile.
class TestBed {
 public:
  explicit TestBed(Profile profile);

  // Per-request cost the server pays beyond the real work: applied by the
  // benchmark loop once per request processed.
  void ChargeRequestOverhead();
  // Per-packet path cost differences for non-virtualized profiles are charged
  // by the NIC backend already (virtio); native/container profiles instead
  // charge the host kernel path per packet here.
  void ChargeHostNetPath(std::size_t packets);

  ukplat::Clock& clock() { return clock_; }
  ukplat::Wire& wire() { return *wire_; }
  SimHost& server() { return *server_; }
  SimHost& client() { return *client_; }
  posix::PosixApi& api() { return *api_; }
  vfscore::Vfs& vfs() { return vfs_; }
  const Profile& profile() const { return profile_; }

  // Pumps both sides once.
  void Poll();

  static constexpr uknet::Ip4Addr kServerIp = 0x0a000001;  // 10.0.0.1
  static constexpr uknet::Ip4Addr kClientIp = 0x0a000002;  // 10.0.0.2

 private:
  Profile profile_;
  ukplat::Clock clock_;
  std::unique_ptr<ukplat::Wire> wire_;
  std::unique_ptr<SimHost> server_;
  std::unique_ptr<SimHost> client_;
  vfscore::Vfs vfs_;
  std::unique_ptr<vfscore::RamFs> ramfs_;
  std::unique_ptr<posix::PosixApi> api_;
};

}  // namespace env

#endif  // ENV_TESTBED_H_
