// env/fleet.h - the fleet testbed: one Wire (switch mode) hosting a churn
// client, an apps::L4Balancer, and N redis backend unikernels each booted
// through a real ukboot::Instance.
//
// This is the paper's deployment story made executable: many tiny
// specialized VMs behind a balancer instead of one big VM, with boot latency
// as a *serving* metric — KillBackend() destroys a backend's NIC and stack
// mid-traffic and BootBackend() replays the full inittab (paging, allocator,
// scheduler, virtio bring-up, stack, server) against the same guest RAM, so
// cold-start-to-first-served-reply is measured over real boot stages, not a
// constant.
//
// Wire port map: 0 = client host, 1 = balancer host, 2+i = backend i. MACs
// are derived from the port, so a respawned backend reuses its predecessor's
// L2 address and the survivors' ARP entries stay valid.
#ifndef ENV_FLEET_H_
#define ENV_FLEET_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "apps/l4_balancer.h"
#include "apps/persist.h"
#include "apps/redis.h"
#include "env/testbed.h"
#include "posix/api.h"
#include "ukblockdev/ramdisk.h"
#include "ukboot/instance.h"
#include "uknet/stack.h"
#include "uknetdev/virtio_net.h"
#include "ukplat/clock.h"
#include "ukplat/wire.h"
#include "vfscore/blockfs.h"
#include "vfscore/vfs.h"

namespace env {

class FleetTestBed {
 public:
  struct Config {
    int backends = 2;
    std::uint16_t vip_port = 6379;      // what clients dial
    std::uint16_t backend_port = 6400;  // what each backend redis serves
    std::uint64_t probe_interval_cycles = 3'000'000;
    std::uint64_t probe_timeout_cycles = 12'000'000;
    std::size_t backend_memory_bytes = 48ull << 20;
  };

  // One backend unikernel: the Instance owns guest RAM and the boot
  // sequence; NIC, stack and server are built by its inittab on every Boot()
  // and torn down (reverse order) by Kill(). `report` holds the most recent
  // boot's per-stage timings.
  struct BackendHost {
    BackendHost(FleetTestBed* fleet, int index);

    // The serving identity: "b<i>" for the first boot, "b<i>-r<n>" after n
    // respawns. Seeded into the redis store under key "id" so a client can
    // tell which instance (and which incarnation) answered.
    std::string id() const;

    std::unique_ptr<ukboot::Instance> instance;
    std::unique_ptr<uknetdev::VirtioNet> nic;
    std::unique_ptr<uknet::NetStack> stack;
    uknet::NetIf* netif = nullptr;
    vfscore::Vfs vfs;
    // The durable root: the ramdisk's backing bytes live host-side, so —
    // like a cloud block volume — they survive Shutdown()+Boot(). Created
    // once per BackendHost, never torn down by KillBackend.
    std::unique_ptr<ukblockdev::RamDisk> disk;
    // Per-boot persistence stack over |disk|: the kRootfs inittab stage
    // formats-or-mounts blockfs at /persist, the kLate stage recovers the
    // store through apps::Persist (snapshot + AOF tail replay).
    std::unique_ptr<vfscore::BlockFs> blockfs;
    std::unique_ptr<apps::Persist> persist;
    apps::Persist::RecoverStats last_recover;
    std::unique_ptr<posix::PosixApi> api;
    std::unique_ptr<apps::RedisServer> server;
    ukboot::BootReport report;

    FleetTestBed* fleet;
    int index = 0;
    int wire_port = 0;
    uknet::Ip4Addr ip = 0;
    int incarnation = 0;  // bumped by every successful boot
    bool alive = false;
  };

  explicit FleetTestBed(Config config);
  ~FleetTestBed();

  FleetTestBed(const FleetTestBed&) = delete;
  FleetTestBed& operator=(const FleetTestBed&) = delete;

  // (Re)boots backend |i| through its full inittab and wires ARP with the
  // balancer. Returns the boot report (also stored on the BackendHost).
  ukboot::BootReport BootBackend(int i);

  // Hard kill: server, posix layer, stack and NIC are destroyed, the wire
  // port forgets its MAC, and the Instance shuts down to pre-boot state.
  // In-flight frames to the backend fall on the floor — exactly what the
  // balancer's probe timeout must detect.
  void KillBackend(int i);

  bool backend_alive(int i) const { return backends_[i]->alive; }

  // One non-blocking turn of every live component: client stack, balancer
  // (loop + probe timers), every live backend (stack + server loop).
  void PumpAll();
  // Pumps until |done| returns true; false when |max_turns| ran out.
  bool PumpUntil(const std::function<bool()>& done, int max_turns = 200000);

  ukplat::Clock& clock() { return clock_; }
  ukplat::Wire& wire() { return *wire_; }
  SimHost& client_host() { return *client_; }
  SimHost& balancer_sim() { return *balancer_host_; }
  uknet::NetStack* client_stack() { return client_->stack.get(); }
  apps::L4Balancer& balancer() { return *balancer_; }
  posix::PosixApi& balancer_api() { return *balancer_api_; }
  BackendHost& backend(int i) { return *backends_[i]; }
  int backend_count() const { return static_cast<int>(backends_.size()); }
  const Config& config() const { return config_; }

  // Modeled CPU cost of one PumpAll() turn; keeps the virtual clock moving
  // when traffic stalls so cycle-based probe deadlines can expire.
  static constexpr std::uint64_t kTurnCycles = 20'000;

  static constexpr uknet::Ip4Addr kClientIp = 0x0a000064;    // 10.0.0.100
  static constexpr uknet::Ip4Addr kBalancerIp = 0x0a000001;  // 10.0.0.1
  static uknet::Ip4Addr BackendIp(int i) {
    return 0x0a00000a + static_cast<uknet::Ip4Addr>(i);  // 10.0.0.10+i
  }

 private:
  friend struct BackendHost;

  Config config_;
  ukplat::Clock clock_;
  std::unique_ptr<ukplat::Wire> wire_;
  std::unique_ptr<SimHost> client_;
  std::unique_ptr<SimHost> balancer_host_;
  vfscore::Vfs balancer_vfs_;
  std::unique_ptr<posix::PosixApi> balancer_api_;
  std::unique_ptr<apps::L4Balancer> balancer_;
  std::vector<std::unique_ptr<BackendHost>> backends_;
};

// Connection-churn driver: |concurrency| slots, each running the short-lived
// client lifecycle connect -> GET id -> read reply -> close -> reconnect
// against the balancer VIP, entirely over raw TcpSockets on the client
// host's stack. Completed replies are tallied per serving backend id, which
// is how scenario tests observe steering (and re-steering after a kill).
class FleetChurnClient {
 public:
  FleetChurnClient(uknet::NetStack* stack, uknet::Ip4Addr vip,
                   std::uint16_t port, int concurrency);

  // Advances every slot one step; returns replies completed this call.
  // While paused, finished slots do not reopen (drain-to-idle).
  std::size_t Pump();
  void set_running(bool running) { running_ = running; }
  // True when no slot holds a live connection (after a drain).
  bool idle() const;

  std::uint64_t completed() const { return completed_; }
  // Connections that died before delivering a reply (RST from the balancer
  // or mid-flow teardown); churn scenarios assert bounds on this.
  std::uint64_t aborted() const { return aborted_; }
  const std::unordered_map<std::string, std::uint64_t>& by_backend() const {
    return by_backend_;
  }

 private:
  struct Slot {
    std::shared_ptr<uknet::TcpSocket> sock;
    std::string rx;
    bool sent = false;
  };

  void StepSlot(Slot& slot, std::size_t* done);

  uknet::NetStack* stack_;
  uknet::Ip4Addr vip_;
  std::uint16_t port_;
  std::vector<Slot> slots_;
  bool running_ = true;
  std::uint64_t completed_ = 0;
  std::uint64_t aborted_ = 0;
  std::unordered_map<std::string, std::uint64_t> by_backend_;
};

}  // namespace env

#endif  // ENV_FLEET_H_
