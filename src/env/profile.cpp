#include "env/profile.h"

namespace env {

using posix::DispatchMode;
using ukalloc::Backend;
using uknetdev::VirtioBackend;
using ukplat::VmmModel;

Profile Profile::UnikraftKvm() {
  return Profile{.name = "unikraft-kvm",
                 .dispatch = DispatchMode::kDirectCall,
                 .virtualized = true,
                 .vmm = VmmModel::Qemu(),
                 .allocator = Backend::kMimalloc};
}

Profile Profile::LinuxNative() {
  return Profile{.name = "linux-native",
                 .dispatch = DispatchMode::kLinuxTrap,
                 .virtualized = false,
                 .allocator = Backend::kTlsf,
                 .host_net_per_packet = 2000};
}

Profile Profile::LinuxKvm() {
  return Profile{.name = "linux-kvm",
                 .dispatch = DispatchMode::kLinuxTrap,
                 .virtualized = true,
                 .vmm = VmmModel::Qemu(),
                 .allocator = Backend::kTlsf,
                 .guest_stack_per_packet = 2000,  // guest kernel skb path
                 .per_request_overhead = 900};    // distro guest bloat
}

Profile Profile::LinuxFirecracker() {
  Profile p = LinuxKvm();
  p.name = "linux-fc";
  p.vmm = VmmModel::Firecracker();
  return p;
}

Profile Profile::DockerNative() {
  Profile p = LinuxNative();
  p.name = "docker-native";
  p.host_net_per_packet = 2600;  // + veth pair and bridge traversal
  return p;
}

Profile Profile::OsvKvm() {
  return Profile{.name = "osv-kvm",
                 .dispatch = DispatchMode::kBinaryCompat,
                 .virtualized = true,
                 .vmm = VmmModel::Qemu(),
                 .allocator = Backend::kTlsf,
                 .guest_stack_per_packet = 700,  // OSv's BSD-derived stack
                 .per_request_overhead = 500};
}

Profile Profile::RumpKvm() {
  return Profile{.name = "rump-kvm",
                 .dispatch = DispatchMode::kBinaryCompat,
                 .virtualized = true,
                 .vmm = VmmModel::Qemu(),
                 .allocator = Backend::kBuddy,
                 .guest_stack_per_packet = 1800,  // NetBSD stack
                 .per_request_overhead = 2800};   // unmaintained, unconfigurable
}

Profile Profile::LupineKvm() {
  return Profile{.name = "lupine-kvm",
                 .dispatch = DispatchMode::kLinuxTrapFast,  // KML: ring-0 app
                 .virtualized = true,
                 .vmm = VmmModel::Qemu(),
                 .allocator = Backend::kTlsf,
                 .guest_stack_per_packet = 2000,  // it is still the Linux stack
                 .per_request_overhead = 600};    // trimmed but some bloat remains (§5.3)
}

Profile Profile::LupineFirecracker() {
  Profile p = LupineKvm();
  p.name = "lupine-fc";
  p.vmm = VmmModel::Firecracker();
  return p;
}

Profile Profile::HermituxUhyve() {
  return Profile{.name = "hermitux-uhyve",
                 .dispatch = DispatchMode::kBinaryCompat,
                 .virtualized = true,
                 .vmm = VmmModel::UHyve(),  // no virtio support (§5.3)
                 .allocator = Backend::kBuddy,
                 .guest_stack_per_packet = 600,
                 .per_request_overhead = 5200};
}

Profile Profile::MirageSolo5() {
  return Profile{.name = "mirage-solo5",
                 .dispatch = DispatchMode::kDirectCall,
                 .virtualized = true,
                 .vmm = VmmModel::Solo5(),
                 .allocator = Backend::kBuddy,
                 .guest_stack_per_packet = 1500,  // mirage-tcpip
                 .per_request_overhead = 7000};   // OCaml runtime per request
}

const std::vector<Profile>& Profile::Fig12Set() {
  static const std::vector<Profile> kSet = {
      HermituxUhyve(), LinuxFirecracker(), LupineFirecracker(), RumpKvm(), LinuxKvm(),
      LupineKvm(),     DockerNative(),     OsvKvm(),            LinuxNative(),
      UnikraftKvm()};
  return kSet;
}

}  // namespace env
