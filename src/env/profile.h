// env/profile.h - the execution environments of Figs 12/13/17 and Table 4.
//
// Every baseline (Linux native/guest/container, OSv, Rump, Lupine, HermiTux,
// Mirage, Unikraft) is the *same application code* run under a profile that
// sets the mechanically different parts:
//   * how a syscall enters the kernel (DispatchMode — Table 1 costs),
//   * whether packets traverse a VMM (virtio backend + VMM I/O quality),
//   * the default allocator the image was built with,
//   * a residual per-request overhead for systems the paper identifies as
//     carrying bloat that configuration could not remove (Rump, HermiTux).
#ifndef ENV_PROFILE_H_
#define ENV_PROFILE_H_

#include <string>
#include <vector>

#include "posix/shim.h"
#include "ukalloc/registry.h"
#include "uknetdev/virtio_net.h"
#include "ukplat/vmm.h"

namespace env {

struct Profile {
  std::string name;
  posix::DispatchMode dispatch = posix::DispatchMode::kDirectCall;
  bool virtualized = true;                       // packets cross a VMM
  ukplat::VmmModel vmm = ukplat::VmmModel::Qemu();
  uknetdev::VirtioBackend backend = uknetdev::VirtioBackend::kVhostNet;
  ukalloc::Backend allocator = ukalloc::Backend::kTlsf;
  // Host kernel network-stack cycles per packet for non-virtualized runs
  // (native/container); containers add the veth/bridge hop.
  std::uint64_t host_net_per_packet = 2000;
  // Guest-side network stack cycles per packet: ~2000 for full Linux guest
  // kernels, 0 for unikernel stacks (whose light path runs for real here).
  std::uint64_t guest_stack_per_packet = 0;
  // Residual per-request bloat (cycles) the paper attributes to systems that
  // could not be slimmed by configuration.
  std::uint64_t per_request_overhead = 0;

  static Profile UnikraftKvm();
  static Profile LinuxNative();
  static Profile LinuxKvm();
  static Profile LinuxFirecracker();
  static Profile DockerNative();
  static Profile OsvKvm();
  static Profile RumpKvm();
  static Profile LupineKvm();
  static Profile LupineFirecracker();
  static Profile HermituxUhyve();
  static Profile MirageSolo5();

  // The ten platforms of Figs 12/13, slowest-first like the paper plots.
  static const std::vector<Profile>& Fig12Set();
};

}  // namespace env

#endif  // ENV_PROFILE_H_
