// analysis/syscall_study.h - syscall requirements of the top-30 Debian server
// applications vs Unikraft's supported set (Figs 5 and 7).
//
// The paper combined static analysis with an strace-driven dynamic test
// framework to find which syscalls each application actually needs. We embed
// requirement sets reconstructed from their heatmap structure: a common core
// every server needs (the black squares), server-class groups (sockets,
// epoll, signalfd...), and per-application extras — then run the same
// aggregations: per-syscall demand counts (the heatmap), per-app support
// percentage, and the marginal gain from implementing the next most-wanted
// 5/10 syscalls (the greedy set-cover of Fig 7).
#ifndef ANALYSIS_SYSCALL_STUDY_H_
#define ANALYSIS_SYSCALL_STUDY_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace analysis {

struct AppSyscalls {
  std::string app;
  std::set<int> required;
};

// The 30 most popular Debian server applications with their requirement sets.
const std::vector<AppSyscalls>& Top30ServerApps();

// Heatmap cell: how many of the 30 apps need syscall |nr|.
std::map<int, int> DemandCounts();

struct AppSupport {
  std::string app;
  double supported_pct;         // with current Unikraft set
  double with_top5_pct;         // if 5 most-demanded missing syscalls added
  double with_top10_pct;        // if 10 added
};

// Fig 7 rows. |supported| defaults to posix::SupportedSyscalls().
std::vector<AppSupport> ComputeSupport(const std::set<int>& supported);

// The N most-demanded syscalls missing from |supported| (greedy frequency
// order — what "implement the next 5" means in Fig 7).
std::vector<int> TopMissing(const std::set<int>& supported, std::size_t n);

}  // namespace analysis

#endif  // ANALYSIS_SYSCALL_STUDY_H_
