#include "analysis/syscall_study.h"

#include <algorithm>

#include "posix/syscalls.h"
#include "ukarch/random.h"

namespace analysis {

namespace {

std::set<int> Named(std::initializer_list<const char*> names) {
  std::set<int> s;
  for (const char* n : names) {
    int nr = posix::SyscallNumber(n);
    if (nr >= 0) {
      s.insert(nr);
    }
  }
  return s;
}

// The common core every server app needs (the paper's black squares).
const std::set<int>& CoreSet() {
  static const std::set<int> kCore = Named(
      {"read", "write", "open", "close", "stat", "fstat", "lstat", "lseek", "mmap",
       "mprotect", "munmap", "brk", "rt_sigaction", "rt_sigprocmask", "ioctl",
       "access", "pipe", "select", "dup", "dup2", "getpid", "exit", "uname", "fcntl",
       "getcwd", "getdents", "readlink", "getuid", "getgid", "geteuid", "getegid",
       "arch_prctl", "gettid", "futex", "set_tid_address", "exit_group",
       "clock_gettime", "openat", "newfstatat", "set_robust_list", "prlimit64",
       "rt_sigreturn", "execve", "getrlimit", "mremap", "getdents64"});
  return kCore;
}

const std::set<int>& SocketSet() {
  static const std::set<int> kSock = Named(
      {"socket", "connect", "accept", "sendto", "recvfrom", "sendmsg", "recvmsg",
       "shutdown", "bind", "listen", "getsockname", "getpeername", "setsockopt",
       "getsockopt", "accept4", "poll", "ppoll", "writev", "readv"});
  return kSock;
}

const std::set<int>& EventSet() {
  static const std::set<int> kEvent = Named(
      {"epoll_create1", "epoll_ctl", "epoll_wait", "epoll_pwait", "eventfd2",
       "timerfd_create", "timerfd_settime", "signalfd4", "pselect6"});
  return kEvent;
}

const std::set<int>& ProcessSet() {
  static const std::set<int> kProc = Named(
      {"clone", "fork", "wait4", "kill", "tgkill", "setpgid", "getppid", "setsid",
       "setuid", "setgid", "setgroups", "umask", "chown", "chdir", "sigaltstack",
       "prctl", "capget", "capset", "setresuid", "setresgid"});
  return kProc;
}

const std::set<int>& FsExtraSet() {
  static const std::set<int> kFs = Named(
      {"rename", "mkdir", "rmdir", "unlink", "link", "symlink", "chmod", "fchmod",
       "ftruncate", "fsync", "fdatasync", "flock", "utimes", "utimensat", "statfs",
       "fstatfs", "fallocate", "pread64", "pwrite64", "sendfile", "truncate",
       "unlinkat", "mkdirat", "renameat", "fadvise64", "fchown", "fchdir"});
  return kFs;
}

// Rarely supported / exotic calls that some apps pull in (colored but sparse
// squares; several remain unsupported in Unikraft).
const std::set<int>& ExoticPool() {
  static const std::set<int> kExotic = Named(
      {"semget", "semop", "semctl", "shmget", "shmat", "shmctl", "shmdt", "msgget",
       "msgsnd", "msgrcv", "msgctl", "inotify_init", "inotify_add_watch",
       "inotify_rm_watch", "splice", "tee", "io_setup", "io_submit", "io_getevents",
       "mbind", "set_mempolicy", "get_mempolicy", "mlock", "mlockall", "setns",
       "unshare", "getcpu", "sched_setscheduler", "sched_getscheduler", "personality",
       "sysinfo", "times", "getrusage", "setpriority", "getpriority", "syslog",
       "setrlimit", "madvise", "mincore", "msync", "getitimer", "setitimer",
       "alarm", "pause", "nanosleep", "clock_nanosleep", "clock_getres", "time",
       "gettimeofday", "epoll_create", "mount", "umount2", "chroot", "pivot_root",
       "quotactl", "name_to_handle_at", "perf_event_open", "fanotify_init",
       "process_vm_readv", "kcmp", "finit_module", "init_module", "delete_module",
       "add_key", "request_key", "keyctl", "lookup_dcookie", "readahead",
       "setxattr", "getxattr", "listxattr", "removexattr", "fgetxattr", "fsetxattr",
       "ioprio_set", "ioprio_get", "migrate_pages", "move_pages", "mq_open",
       "mq_unlink", "mq_timedsend", "mq_timedreceive", "waitid", "vmsplice",
       "remap_file_pages", "sync_file_range", "timer_create", "timer_settime",
       "timer_gettime", "timer_delete", "sched_rr_get_interval", "sched_setparam",
       "sched_getparam", "socketpair", "creat", "mknod", "ustat", "sysfs",
       "getsid", "getpgid", "getpgrp", "setreuid", "setregid", "getgroups",
       "getresuid", "getresgid", "rt_sigpending", "rt_sigtimedwait",
       "rt_sigsuspend", "rt_sigqueueinfo", "sync", "acct", "settimeofday",
       "sethostname", "setdomainname", "vhangup", "swapon", "swapoff", "reboot",
       "iopl", "ioperm", "uselib", "ptrace", "modify_ldt", "lchown", "utime"});
  return kExotic;
}

}  // namespace

const std::vector<AppSyscalls>& Top30ServerApps() {
  static const std::vector<AppSyscalls> kApps = [] {
    const char* names[30] = {
        "apache",    "avahi",     "bind9",    "dovecot",  "exim",      "firebird",
        "groonga",   "h2o",       "influxdb", "knot",     "lighttpd",  "mariadb",
        "memcached", "mongodb",   "mongoose", "mongrel",  "mutt",      "mysql",
        "nghttp",    "nginx",     "nullmailer", "openlitespeed", "opensmtpd",
        "postgresql", "redis",    "sqlite3",  "tntnet",   "webfs",     "weborf",
        "whitedb"};
    // Profile of each app: which groups it pulls and how many exotic extras.
    // Deterministic per-app seed keeps the figure reproducible.
    std::vector<AppSyscalls> apps;
    for (int i = 0; i < 30; ++i) {
      AppSyscalls app;
      app.app = names[i];
      app.required = CoreSet();
      bool is_db = i == 5 || i == 8 || i == 11 || i == 13 || i == 17 || i == 23 ||
                   i == 25 || i == 29;
      bool is_mailer = i == 3 || i == 4 || i == 16 || i == 20 || i == 22;
      // Every server talks to the network except the pure-embedded DBs.
      if (!(i == 25 || i == 29)) {
        app.required.insert(SocketSet().begin(), SocketSet().end());
      }
      // Modern event-loop servers.
      if (i == 7 || i == 10 || i == 12 || i == 14 || i == 18 || i == 19 || i == 21 ||
          i == 24 || i == 26 || i == 27 || i == 28 || i == 8) {
        app.required.insert(EventSet().begin(), EventSet().end());
      }
      // Forking/daemon-style servers.
      if (i == 0 || i == 2 || is_mailer || is_db || i == 1) {
        app.required.insert(ProcessSet().begin(), ProcessSet().end());
      }
      // Storage-heavy apps.
      if (is_db || is_mailer || i == 0 || i == 6 || i == 27) {
        app.required.insert(FsExtraSet().begin(), FsExtraSet().end());
      }
      // A deterministic handful of exotic calls per app. Apps share the same
      // skewed tail (SysV IPC, inotify, splice...) so the union stays small —
      // that's what keeps >half the syscall space unused in Fig 5.
      ukarch::Xorshift rng(0x5eed0000u + static_cast<std::uint64_t>(i));
      std::vector<int> pool(ExoticPool().begin(), ExoticPool().end());
      std::size_t extras = 2 + rng.NextBelow(6);
      for (std::size_t k = 0; k < extras; ++k) {
        app.required.insert(pool[rng.NextZipfish(30)]);
      }
      apps.push_back(std::move(app));
    }
    return apps;
  }();
  return kApps;
}

std::map<int, int> DemandCounts() {
  std::map<int, int> counts;
  for (const AppSyscalls& app : Top30ServerApps()) {
    for (int nr : app.required) {
      ++counts[nr];
    }
  }
  return counts;
}

std::vector<int> TopMissing(const std::set<int>& supported, std::size_t n) {
  std::map<int, int> demand = DemandCounts();
  std::vector<std::pair<int, int>> missing;  // (count, nr)
  for (const auto& [nr, count] : demand) {
    if (!supported.contains(nr)) {
      missing.push_back({count, nr});
    }
  }
  std::sort(missing.begin(), missing.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  std::vector<int> out;
  for (std::size_t i = 0; i < missing.size() && i < n; ++i) {
    out.push_back(missing[i].second);
  }
  return out;
}

std::vector<AppSupport> ComputeSupport(const std::set<int>& supported) {
  std::set<int> plus5 = supported;
  for (int nr : TopMissing(supported, 5)) {
    plus5.insert(nr);
  }
  std::set<int> plus10 = supported;
  for (int nr : TopMissing(supported, 10)) {
    plus10.insert(nr);
  }
  std::vector<AppSupport> rows;
  for (const AppSyscalls& app : Top30ServerApps()) {
    auto pct = [&app](const std::set<int>& have) {
      std::size_t got = 0;
      for (int nr : app.required) {
        if (have.contains(nr)) {
          ++got;
        }
      }
      return 100.0 * static_cast<double>(got) / static_cast<double>(app.required.size());
    };
    rows.push_back(AppSupport{app.app, pct(supported), pct(plus5), pct(plus10)});
  }
  return rows;
}

}  // namespace analysis
