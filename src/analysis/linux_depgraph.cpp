#include "analysis/linux_depgraph.h"

namespace analysis {

std::uint64_t ComponentGraph::TotalCalls() const {
  std::uint64_t sum = 0;
  for (const WeightedEdge& e : edges) {
    sum += e.calls;
  }
  return sum;
}

double ComponentGraph::Density() const {
  if (components.size() < 2) {
    return 0.0;
  }
  double pairs = static_cast<double>(components.size()) *
                 static_cast<double>(components.size() - 1);
  return static_cast<double>(edges.size()) / pairs;
}

std::uint64_t ComponentGraph::Coupling(const std::string& component) const {
  std::uint64_t sum = 0;
  for (const WeightedEdge& e : edges) {
    if (e.from == component || e.to == component) {
      sum += e.calls;
    }
  }
  return sum;
}

std::string ComponentGraph::ToDot() const {
  std::string dot = "digraph linux {\n";
  for (const WeightedEdge& e : edges) {
    dot += "  \"" + e.from + "\" -> \"" + e.to + "\" [label=\"" +
           std::to_string(e.calls) + "\"];\n";
  }
  dot += "}\n";
  return dot;
}

const ComponentGraph& LinuxKernelGraph() {
  // Weighted edges transcribed from the paper's Fig 1 annotations (cscope
  // cross-component call counts between kernel source subdirectories).
  static const ComponentGraph kGraph = {
      {"fs", "time", "mm", "sched", "net", "block", "locking", "security", "irq",
       "ipc", "crypto", "pid"},
      {
          {"fs", "time", 90},      {"fs", "mm", 277},      {"fs", "sched", 111},
          {"fs", "net", 311},      {"fs", "block", 95},    {"fs", "locking", 13},
          {"fs", "security", 14},  {"fs", "irq", 23},      {"fs", "ipc", 3},
          {"mm", "fs", 77},        {"mm", "time", 37},     {"mm", "sched", 151},
          {"mm", "block", 110},    {"mm", "locking", 1},   {"mm", "security", 2},
          {"mm", "irq", 4},        {"sched", "mm", 213},   {"sched", "time", 15},
          {"sched", "locking", 53},{"sched", "irq", 2},    {"sched", "fs", 28},
          {"net", "fs", 6},        {"net", "mm", 22},      {"net", "sched", 207},
          {"net", "time", 101},    {"net", "security", 36},{"net", "locking", 16},
          {"net", "irq", 8},       {"net", "ipc", 2},      {"block", "mm", 91},
          {"block", "sched", 551}, {"block", "time", 107}, {"block", "fs", 465},
          {"block", "locking", 60},{"block", "irq", 11},   {"block", "ipc", 5},
          {"time", "sched", 7},    {"time", "irq", 27},    {"irq", "sched", 720},
          {"irq", "time", 68},     {"irq", "locking", 46}, {"irq", "mm", 36},
          {"irq", "fs", 25},       {"ipc", "mm", 2},       {"ipc", "fs", 10},
          {"ipc", "sched", 164},   {"ipc", "time", 24},    {"ipc", "security", 30},
          {"locking", "sched", 117},{"locking", "time", 8},{"security", "fs", 7},
          {"security", "mm", 119}, {"security", "net", 226},{"security", "sched", 3},
          {"crypto", "mm", 122},   {"crypto", "sched", 191},{"crypto", "time", 24},
          {"crypto", "fs", 6},     {"pid", "sched", 4},    {"pid", "mm", 10},
          {"pid", "fs", 17},       {"pid", "time", 67},    {"pid", "irq", 11},
          {"pid", "locking", 6},   {"pid", "security", 39},{"pid", "ipc", 1},
      },
  };
  return kGraph;
}

}  // namespace analysis
