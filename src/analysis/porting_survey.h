// analysis/porting_survey.h - generative model of the Fig 6 developer survey.
//
// The paper surveyed ~70 community developers about the time spent porting
// libraries, split into: the library itself, its dependencies, missing OS
// primitives, and missing build-system primitives. The key effect is that a
// maturing common base amortizes the last three categories away. We model
// that directly: ports arrive over four quarters against the ukbuild
// dependency graph; a port pays for every dependency and OS/build primitive
// not yet in the cumulative base, and pays only the per-library effort once
// everything it needs already landed. The declining stacked bars of Fig 6
// then emerge from the graph structure rather than being hardcoded.
#ifndef ANALYSIS_PORTING_SURVEY_H_
#define ANALYSIS_PORTING_SURVEY_H_

#include <string>
#include <vector>

namespace analysis {

struct QuarterEffort {
  std::string quarter;
  double library_days = 0.0;
  double dependency_days = 0.0;
  double os_primitive_days = 0.0;
  double build_primitive_days = 0.0;
  double Total() const {
    return library_days + dependency_days + os_primitive_days + build_primitive_days;
  }
};

// Runs the porting timeline; returns one row per quarter (Q2'19..Q1'20).
std::vector<QuarterEffort> SimulatePortingTimeline();

}  // namespace analysis

#endif  // ANALYSIS_PORTING_SURVEY_H_
