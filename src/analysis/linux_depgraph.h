// analysis/linux_depgraph.h - the Linux kernel component dependency graph of
// Fig 1, as structured data plus the metrics the paper draws from it.
//
// The paper extracted cross-component function calls with cscope over the
// kernel tree. We embed the weighted edge list their Fig 1 annotates, and run
// the same analytics (edge counts, density, coupling per component) that
// motivate "removing or replacing any single component ... is a daunting
// task". Our own Figs 2/3 graphs come live from ukbuild::Linker::Graph and
// are compared against these numbers by bench/fig01* and tests.
#ifndef ANALYSIS_LINUX_DEPGRAPH_H_
#define ANALYSIS_LINUX_DEPGRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

namespace analysis {

struct WeightedEdge {
  std::string from;
  std::string to;
  std::uint32_t calls;  // cross-component function calls
};

struct ComponentGraph {
  std::vector<std::string> components;
  std::vector<WeightedEdge> edges;

  std::uint64_t TotalCalls() const;
  std::size_t EdgePairs() const { return edges.size(); }
  // Fraction of ordered component pairs that have at least one dependency.
  double Density() const;
  // Sum of in+out call weights for |component| (how hard it is to remove).
  std::uint64_t Coupling(const std::string& component) const;
  std::string ToDot() const;
};

// Fig 1's graph: 12 kernel components, cscope-derived call counts.
const ComponentGraph& LinuxKernelGraph();

}  // namespace analysis

#endif  // ANALYSIS_LINUX_DEPGRAPH_H_
