#include "analysis/porting_survey.h"

#include <map>
#include <set>

#include "ukarch/random.h"

namespace analysis {

namespace {

// A port arriving in some quarter: the library, its external dependencies,
// and the OS/build primitives it needs from the common base.
struct PortJob {
  std::string name;
  int quarter;  // 0..3
  std::vector<std::string> deps;
  std::vector<std::string> os_primitives;
  std::vector<std::string> build_primitives;
  double library_days;
};

const std::vector<PortJob>& Jobs() {
  // Port arrivals reconstructed from the project timeline: early ports drag
  // in everything (libuv needs the scheduler and poll; openssl needs
  // pthreads...), later ports find the base already there.
  static const std::vector<PortJob> kJobs = {
      // Q2 2019: the foundation quarter.
      {"newlib", 0, {}, {"sbrk", "clock", "tls"}, {"extlib-build", "patch-queue"}, 9},
      {"lwip", 0, {}, {"semaphores", "timers", "netdev-api"}, {"kconfig-select"}, 11},
      {"pthread-embedded", 0, {}, {"tls", "sched-hooks"}, {"extlib-build"}, 6},
      {"openssl", 0, {"pthread-embedded"}, {"getrandom"}, {"patch-queue"}, 8},
      {"helloworld-suite", 0, {}, {}, {"app-template"}, 2},
      // Q3 2019: servers and languages begin.
      {"nginx", 1, {"lwip", "openssl"}, {"poll", "writev"}, {}, 7},
      {"sqlite", 1, {"newlib"}, {"pread-pwrite"}, {}, 4},
      {"micropython", 1, {"newlib"}, {}, {}, 5},
      {"zlib", 1, {}, {}, {}, 1.5},
      {"duktape", 1, {}, {}, {}, 2},
      // Q4 2019: the base mostly exists.
      {"redis", 2, {"lwip", "pthread-embedded"}, {"eventfd"}, {}, 6},
      {"memcached", 2, {"lwip", "libevent"}, {}, {}, 4},
      {"libevent", 2, {"lwip"}, {}, {}, 3},
      {"pcre", 2, {}, {}, {}, 1},
      {"lua", 2, {"newlib"}, {}, {}, 2},
      // Q1 2020: ports are cheap now.
      {"python3", 3, {"newlib", "zlib", "openssl"}, {}, {}, 8},
      {"ruby", 3, {"newlib", "openssl"}, {}, {}, 6},
      {"webassembly-wamr", 3, {"newlib"}, {}, {}, 3},
      {"click", 3, {"lwip"}, {}, {}, 3},
  };
  return kJobs;
}

}  // namespace

std::vector<QuarterEffort> SimulatePortingTimeline() {
  const char* quarter_names[4] = {"Q2-2019", "Q3-2019", "Q4-2019", "Q1-2020"};
  std::vector<QuarterEffort> out;
  std::set<std::string> base_libs;
  std::set<std::string> base_os;
  std::set<std::string> base_build;

  constexpr double kDepDays = 5.0;    // porting a missing dependency
  constexpr double kOsDays = 6.5;     // implementing a missing OS primitive
  constexpr double kBuildDays = 4.0;  // extending the build system

  for (int q = 0; q < 4; ++q) {
    QuarterEffort row;
    row.quarter = quarter_names[q];
    for (const PortJob& job : Jobs()) {
      if (job.quarter != q) {
        continue;
      }
      row.library_days += job.library_days;
      for (const std::string& dep : job.deps) {
        if (!base_libs.contains(dep)) {
          row.dependency_days += kDepDays;
          base_libs.insert(dep);
        }
      }
      for (const std::string& prim : job.os_primitives) {
        if (!base_os.contains(prim)) {
          row.os_primitive_days += kOsDays;
          base_os.insert(prim);
        }
      }
      for (const std::string& prim : job.build_primitives) {
        if (!base_build.contains(prim)) {
          row.build_primitive_days += kBuildDays;
          base_build.insert(prim);
        }
      }
      base_libs.insert(job.name);
    }
    out.push_back(row);
  }
  return out;
}

}  // namespace analysis
