// shfs/shfs.h - SHFS, the specialized hash filesystem from MiniCache (§6.3).
//
// SHFS replaces path resolution with a single hash lookup: file names map to
// buckets of a fixed hash table laid out in one volume; opening a file is a
// hash + bucket probe, no per-component directory walk and no VFS object
// allocation. Fig 22 measures exactly this against vfscore and a Linux VM.
//
// The volume is immutable after Build() (a web cache loads its content up
// front), which is also what lets open() stay allocation-free.
#ifndef SHFS_SHFS_H_
#define SHFS_SHFS_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ukarch/status.h"
#include "vfscore/node.h"

namespace shfs {

// An open file: a view into the volume. Cheap to copy; no cleanup needed
// (the "file descriptor" of the specialized stack).
struct FileHandle {
  std::span<const std::uint8_t> data;
  std::uint64_t hash = 0;
};

class Shfs {
 public:
  class Builder {
   public:
    explicit Builder(std::size_t bucket_count = 1024) : bucket_count_(bucket_count) {}
    Builder& Add(std::string name, std::vector<std::uint8_t> content);
    std::unique_ptr<Shfs> Build();

   private:
    struct Pending {
      std::string name;
      std::vector<std::uint8_t> content;
    };
    std::size_t bucket_count_;
    std::vector<Pending> files_;
  };

  // O(1) open-by-name: hash, probe the bucket chain. nullopt when missing.
  std::optional<FileHandle> Open(std::string_view name) const;

  // Reads |out.size()| bytes at |offset| from an open handle; returns bytes
  // read (short at EOF).
  static std::size_t Read(const FileHandle& h, std::uint64_t offset,
                          std::span<std::uint8_t> out);

  std::size_t file_count() const { return entries_.size(); }
  std::size_t bucket_count() const { return buckets_.size(); }
  // Probes performed across all Opens (collision-chain hops; Fig 22 sanity).
  std::uint64_t probe_count() const { return probes_; }

  // Largest collision chain, for the hash-quality tests.
  std::size_t MaxChainLength() const;

 private:
  friend class Builder;
  struct Entry {
    std::uint64_t hash;
    std::string name;           // kept for exactness check on collision
    std::uint64_t offset;       // into volume_
    std::uint64_t length;
    std::int32_t next = -1;     // collision chain
  };

  std::vector<std::int32_t> buckets_;  // head entry index or -1
  std::vector<Entry> entries_;
  std::vector<std::uint8_t> volume_;
  mutable std::uint64_t probes_ = 0;
};

// Adapter mounting an SHFS volume read-only through vfscore, so Fig 22 can
// compare "same content, specialized API" vs "same content, via VFS".
class ShfsVfsDriver final : public vfscore::FsDriver {
 public:
  explicit ShfsVfsDriver(const Shfs* volume) : volume_(volume) {}
  const char* fs_name() const override { return "shfs"; }
  ukarch::Status Mount(std::shared_ptr<vfscore::Node>* root) override;

  const Shfs* volume() const { return volume_; }

  // The adapter needs the name list for ReadDir; built lazily by Mount from
  // the builder-recorded names.
  void SetNameIndex(std::vector<std::string> names) { names_ = std::move(names); }

 private:
  const Shfs* volume_;
  std::vector<std::string> names_;
};

}  // namespace shfs

#endif  // SHFS_SHFS_H_
