#include "shfs/shfs.h"

#include <cstring>

#include "ukarch/hash.h"

namespace shfs {

Shfs::Builder& Shfs::Builder::Add(std::string name, std::vector<std::uint8_t> content) {
  files_.push_back(Pending{std::move(name), std::move(content)});
  return *this;
}

std::unique_ptr<Shfs> Shfs::Builder::Build() {
  auto fs = std::unique_ptr<Shfs>(new Shfs());
  fs->buckets_.assign(bucket_count_, -1);
  for (Pending& f : files_) {
    Entry e;
    e.hash = ukarch::Fnv1a64(f.name);
    e.name = f.name;
    e.offset = fs->volume_.size();
    e.length = f.content.size();
    fs->volume_.insert(fs->volume_.end(), f.content.begin(), f.content.end());
    std::size_t bucket = e.hash % bucket_count_;
    e.next = fs->buckets_[bucket];
    fs->buckets_[bucket] = static_cast<std::int32_t>(fs->entries_.size());
    fs->entries_.push_back(std::move(e));
  }
  return fs;
}

std::optional<FileHandle> Shfs::Open(std::string_view name) const {
  std::uint64_t hash = ukarch::Fnv1a64(name);
  std::int32_t idx = buckets_[hash % buckets_.size()];
  while (idx >= 0) {
    ++probes_;
    const Entry& e = entries_[static_cast<std::size_t>(idx)];
    if (e.hash == hash && e.name == name) {
      return FileHandle{
          std::span(volume_).subspan(static_cast<std::size_t>(e.offset),
                                     static_cast<std::size_t>(e.length)),
          hash};
    }
    idx = e.next;
  }
  return std::nullopt;
}

std::size_t Shfs::Read(const FileHandle& h, std::uint64_t offset,
                       std::span<std::uint8_t> out) {
  if (offset >= h.data.size()) {
    return 0;
  }
  std::size_t n = h.data.size() - static_cast<std::size_t>(offset);
  if (n > out.size()) {
    n = out.size();
  }
  std::memcpy(out.data(), h.data.data() + offset, n);
  return n;
}

std::size_t Shfs::MaxChainLength() const {
  std::size_t max_len = 0;
  for (std::int32_t head : buckets_) {
    std::size_t len = 0;
    for (std::int32_t idx = head; idx >= 0;
         idx = entries_[static_cast<std::size_t>(idx)].next) {
      ++len;
    }
    if (len > max_len) {
      max_len = len;
    }
  }
  return max_len;
}

namespace {

// Read-only file node over a FileHandle.
class ShfsFileNode final : public vfscore::Node {
 public:
  explicit ShfsFileNode(FileHandle handle) : handle_(handle) {}

  vfscore::NodeType type() const override { return vfscore::NodeType::kRegular; }
  vfscore::NodeStat Stat() const override {
    return vfscore::NodeStat{vfscore::NodeType::kRegular, handle_.data.size(),
                             handle_.hash};
  }
  std::int64_t Read(std::uint64_t offset, std::span<std::byte> out) override {
    return static_cast<std::int64_t>(Shfs::Read(
        handle_, offset,
        std::span(reinterpret_cast<std::uint8_t*>(out.data()), out.size())));
  }
  std::int64_t Write(std::uint64_t, std::span<const std::byte>) override {
    return ukarch::Raw(ukarch::Status::kPerm);  // read-only volume
  }
  ukarch::Status Truncate(std::uint64_t) override { return ukarch::Status::kPerm; }

 private:
  FileHandle handle_;
};

class ShfsRootNode final : public vfscore::Node {
 public:
  ShfsRootNode(const Shfs* volume, std::vector<std::string> names)
      : volume_(volume), names_(std::move(names)) {}

  vfscore::NodeType type() const override { return vfscore::NodeType::kDirectory; }
  vfscore::NodeStat Stat() const override {
    return vfscore::NodeStat{vfscore::NodeType::kDirectory, volume_->file_count(), 0};
  }
  ukarch::Status Lookup(std::string_view name,
                        std::shared_ptr<vfscore::Node>* out) override {
    auto handle = volume_->Open(name);
    if (!handle.has_value()) {
      return ukarch::Status::kNoEnt;
    }
    *out = std::make_shared<ShfsFileNode>(*handle);
    return ukarch::Status::kOk;
  }
  ukarch::Status Create(std::string_view, vfscore::NodeType,
                        std::shared_ptr<vfscore::Node>*) override {
    return ukarch::Status::kPerm;
  }
  ukarch::Status Remove(std::string_view) override { return ukarch::Status::kPerm; }
  ukarch::Status ReadDir(std::vector<vfscore::DirEntry>* out) override {
    out->clear();
    for (const std::string& n : names_) {
      out->push_back(vfscore::DirEntry{n, vfscore::NodeType::kRegular});
    }
    return ukarch::Status::kOk;
  }

 private:
  const Shfs* volume_;
  std::vector<std::string> names_;
};

}  // namespace

ukarch::Status ShfsVfsDriver::Mount(std::shared_ptr<vfscore::Node>* root) {
  *root = std::make_shared<ShfsRootNode>(volume_, names_);
  return ukarch::Status::kOk;
}

}  // namespace shfs
