// ukarch/random.h - deterministic PRNG for workload generators.
//
// All benchmark workloads (key distributions, packet sizes, request mixes) draw
// from this generator with fixed seeds so every figure in EXPERIMENTS.md is
// reproducible bit-for-bit across runs and machines.
#ifndef UKARCH_RANDOM_H_
#define UKARCH_RANDOM_H_

#include <cstdint>

namespace ukarch {

// xorshift128+ — fast, tiny state, deterministic. Not cryptographic.
class Xorshift {
 public:
  explicit constexpr Xorshift(std::uint64_t seed = 0x853c49e6748fea9bull)
      : s0_(seed ? seed : 1), s1_(seed * 0x9e3779b97f4a7c15ull + 1) {}

  constexpr std::uint64_t Next() {
    std::uint64_t x = s0_;
    std::uint64_t const y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  // Uniform in [0, bound). bound == 0 returns 0.
  constexpr std::uint64_t NextBelow(std::uint64_t bound) {
    return bound == 0 ? 0 : Next() % bound;
  }

  // Uniform in [lo, hi] inclusive.
  constexpr std::uint64_t NextInRange(std::uint64_t lo, std::uint64_t hi) {
    return lo + NextBelow(hi - lo + 1);
  }

  // Approximate Zipf-like skew: picks from [0, n) favouring low indices.
  // Used by the key-value workloads to model hot keys.
  constexpr std::uint64_t NextZipfish(std::uint64_t n) {
    if (n <= 1) {
      return 0;
    }
    std::uint64_t r = Next();
    // Three draws, take the min: cheap skew towards 0 without floating point.
    std::uint64_t a = r % n;
    std::uint64_t b = (r >> 21) % n;
    std::uint64_t c = (r >> 42) % n;
    std::uint64_t m = a < b ? a : b;
    return m < c ? m : c;
  }

 private:
  std::uint64_t s0_;
  std::uint64_t s1_;
};

}  // namespace ukarch

#endif  // UKARCH_RANDOM_H_
