// ukarch/crc32.h - CRC-32C (Castagnoli) over byte spans.
//
// Used by the persistence tier to checksum snapshot files: a snapshot is only
// eligible for replay-on-boot when its trailer CRC matches the body, so a
// crash mid-BGSAVE (or a torn sector) demotes the file instead of loading
// garbage. Table-driven, incremental (feed chunks as they are produced), no
// hardware dependency.
#ifndef UKARCH_CRC32_H_
#define UKARCH_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace ukarch {

namespace crc32_detail {

inline const std::array<std::uint32_t, 256>& Table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) != 0 ? 0x82F63B78u ^ (c >> 1) : c >> 1;  // reflected CRC-32C
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace crc32_detail

// Incremental accumulator: construct, Update() over chunks, value().
class Crc32 {
 public:
  void Update(std::span<const std::byte> data) {
    const auto& table = crc32_detail::Table();
    for (std::byte b : data) {
      state_ = table[(state_ ^ static_cast<std::uint8_t>(b)) & 0xFFu] ^ (state_ >> 8);
    }
  }
  void Update(const void* data, std::size_t len) {
    Update(std::span(static_cast<const std::byte*>(data), len));
  }

  std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }
  void Reset() { state_ = 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

inline std::uint32_t Crc32Of(std::span<const std::byte> data) {
  Crc32 c;
  c.Update(data);
  return c.value();
}

}  // namespace ukarch

#endif  // UKARCH_CRC32_H_
