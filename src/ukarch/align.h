// ukarch/align.h - alignment and power-of-two helpers shared by all micro-libraries.
//
// These mirror the helpers Unikraft keeps in include/uk/arch/ and are used by the
// allocators, the virtqueue implementation, and the page-table builder.
#ifndef UKARCH_ALIGN_H_
#define UKARCH_ALIGN_H_

#include <cstddef>
#include <cstdint>

namespace ukarch {

inline constexpr std::size_t kCacheLineSize = 64;
inline constexpr std::size_t kPageSize = 4096;
inline constexpr std::size_t kPageShift = 12;

// True iff |x| is a power of two. Zero is not a power of two.
constexpr bool IsPow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

// Round |x| up to the next multiple of |align|; |align| must be a power of two.
constexpr std::uint64_t AlignUp(std::uint64_t x, std::uint64_t align) {
  return (x + align - 1) & ~(align - 1);
}

// Round |x| down to the previous multiple of |align|; |align| must be a power of two.
constexpr std::uint64_t AlignDown(std::uint64_t x, std::uint64_t align) {
  return x & ~(align - 1);
}

// True iff |x| is a multiple of |align| (power of two).
constexpr bool IsAligned(std::uint64_t x, std::uint64_t align) { return (x & (align - 1)) == 0; }

// Smallest power of two >= |x|. Returns 1 for x <= 1.
constexpr std::uint64_t CeilPow2(std::uint64_t x) {
  if (x <= 1) {
    return 1;
  }
  std::uint64_t v = x - 1;
  v |= v >> 1;
  v |= v >> 2;
  v |= v >> 4;
  v |= v >> 8;
  v |= v >> 16;
  v |= v >> 32;
  return v + 1;
}

// Floor of log2(x); x must be non-zero.
constexpr unsigned Log2Floor(std::uint64_t x) {
  unsigned r = 0;
  while (x >>= 1) {
    ++r;
  }
  return r;
}

// Ceiling of log2(x); x must be non-zero.
constexpr unsigned Log2Ceil(std::uint64_t x) {
  return IsPow2(x) ? Log2Floor(x) : Log2Floor(x) + 1;
}

// Find-first-set (1-based, 0 when x == 0), as used by the TLSF mapping functions.
constexpr unsigned Ffs(std::uint64_t x) {
  if (x == 0) {
    return 0;
  }
  unsigned r = 1;
  while ((x & 1) == 0) {
    x >>= 1;
    ++r;
  }
  return r;
}

// Find-last-set (1-based index of the most significant set bit, 0 when x == 0).
constexpr unsigned Fls(std::uint64_t x) { return x == 0 ? 0 : Log2Floor(x) + 1; }

}  // namespace ukarch

#endif  // UKARCH_ALIGN_H_
