// ukarch/hash.h - small deterministic hash functions.
//
// SHFS (the hash filesystem, §6.3 of the paper) keys files by content hash, and
// several components (dependency graphs, fd tables) want a stable, seedable hash
// that does not vary across platforms or standard-library versions.
#ifndef UKARCH_HASH_H_
#define UKARCH_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ukarch {

// 64-bit FNV-1a. Stable across runs, good enough for hash tables and SHFS keys.
constexpr std::uint64_t Fnv1a64(std::string_view data, std::uint64_t seed = 0xcbf29ce484222325ull) {
  std::uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

// 32-bit FNV-1a, used where a compact hash is enough (e.g. ARP cache buckets).
constexpr std::uint32_t Fnv1a32(std::string_view data, std::uint32_t seed = 0x811c9dc5u) {
  std::uint32_t h = seed;
  for (char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x01000193u;
  }
  return h;
}

// Integer mix (SplitMix64 finalizer): spreads sequential ids across buckets.
constexpr std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// ---- Toeplitz / RSS ---------------------------------------------------------
//
// The hash real NICs use for receive-side scaling: each set bit of the input
// XORs a sliding 32-bit window of the key into the hash. Deterministic across
// platforms, so the stack's TX steering and the device's RX demux can agree
// on a flow -> queue mapping without talking to each other.

// Microsoft's well-known 40-byte RSS key (covers up to 36 bytes of input).
inline constexpr std::uint8_t kRssKey[40] = {
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67,
    0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0, 0xd0, 0xca, 0x2b, 0xcb,
    0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30,
    0xf2, 0x0c, 0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
};

constexpr std::uint32_t Toeplitz32(const std::uint8_t* data, std::size_t len,
                                   const std::uint8_t* key = kRssKey,
                                   std::size_t key_len = sizeof(kRssKey)) {
  std::uint32_t hash = 0;
  std::uint32_t window = (static_cast<std::uint32_t>(key[0]) << 24) |
                         (static_cast<std::uint32_t>(key[1]) << 16) |
                         (static_cast<std::uint32_t>(key[2]) << 8) |
                         static_cast<std::uint32_t>(key[3]);
  std::size_t key_bit = 32;  // next key bit to shift into the window
  for (std::size_t i = 0; i < len; ++i) {
    for (int b = 7; b >= 0; --b) {
      if ((data[i] >> b) & 1) {
        hash ^= window;
      }
      std::uint32_t next = 0;
      if (key_bit / 8 < key_len) {
        next = (key[key_bit / 8] >> (7 - key_bit % 8)) & 1;
      }
      window = (window << 1) | next;
      ++key_bit;
    }
  }
  return hash;
}

namespace detail {

// Toeplitz is GF(2)-linear in the input, so the hash of a 12-byte tuple is
// the XOR of 12 per-(position, byte-value) contributions. Precomputing them
// turns the per-packet 96-iteration bit loop into 12 table lookups — this
// runs on the RX classification and UDP TX steering hot paths.
struct FlowHashTable {
  std::uint32_t t[12][256] = {};
};

constexpr FlowHashTable BuildFlowHashTable() {
  FlowHashTable tbl;
  for (int i = 0; i < 12; ++i) {
    for (int v = 0; v < 256; ++v) {
      std::uint8_t tuple[12] = {0};
      tuple[i] = static_cast<std::uint8_t>(v);
      tbl.t[i][v] = Toeplitz32(tuple, 12);
    }
  }
  return tbl;
}

inline constexpr FlowHashTable kFlowHashTable = BuildFlowHashTable();

}  // namespace detail

// Flow hash over a TCP/UDP 4-tuple. Direction-independent: the endpoints are
// put in canonical order before hashing, so hash(A->B) == hash(B->A). This is
// what lets one event loop own a flow completely — the queue its requests
// arrive on is the queue its replies are steered to. Equivalent to
// Toeplitz32 over the canonical 12-byte tuple (asserted in tests), computed
// via the precomputed table.
constexpr std::uint32_t FlowHash4(std::uint32_t ip_a, std::uint16_t port_a,
                                  std::uint32_t ip_b, std::uint16_t port_b) {
  if (ip_a > ip_b || (ip_a == ip_b && port_a > port_b)) {
    std::uint32_t tip = ip_a;
    ip_a = ip_b;
    ip_b = tip;
    std::uint16_t tport = port_a;
    port_a = port_b;
    port_b = tport;
  }
  const auto& t = detail::kFlowHashTable.t;
  return t[0][(ip_a >> 24) & 0xff] ^ t[1][(ip_a >> 16) & 0xff] ^
         t[2][(ip_a >> 8) & 0xff] ^ t[3][ip_a & 0xff] ^
         t[4][(ip_b >> 24) & 0xff] ^ t[5][(ip_b >> 16) & 0xff] ^
         t[6][(ip_b >> 8) & 0xff] ^ t[7][ip_b & 0xff] ^
         t[8][(port_a >> 8) & 0xff] ^ t[9][port_a & 0xff] ^
         t[10][(port_b >> 8) & 0xff] ^ t[11][port_b & 0xff];
}

}  // namespace ukarch

#endif  // UKARCH_HASH_H_
