// ukarch/hash.h - small deterministic hash functions.
//
// SHFS (the hash filesystem, §6.3 of the paper) keys files by content hash, and
// several components (dependency graphs, fd tables) want a stable, seedable hash
// that does not vary across platforms or standard-library versions.
#ifndef UKARCH_HASH_H_
#define UKARCH_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ukarch {

// 64-bit FNV-1a. Stable across runs, good enough for hash tables and SHFS keys.
constexpr std::uint64_t Fnv1a64(std::string_view data, std::uint64_t seed = 0xcbf29ce484222325ull) {
  std::uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

// 32-bit FNV-1a, used where a compact hash is enough (e.g. ARP cache buckets).
constexpr std::uint32_t Fnv1a32(std::string_view data, std::uint32_t seed = 0x811c9dc5u) {
  std::uint32_t h = seed;
  for (char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x01000193u;
  }
  return h;
}

// Integer mix (SplitMix64 finalizer): spreads sequential ids across buckets.
constexpr std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace ukarch

#endif  // UKARCH_HASH_H_
