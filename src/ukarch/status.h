// ukarch/status.h - errno-style status codes shared across module boundaries.
//
// Unikraft's APIs return negative errno values on hot paths instead of throwing;
// we keep the same convention so the syscall shim can pass results through
// unchanged and so tests can assert on specific codes.
#ifndef UKARCH_STATUS_H_
#define UKARCH_STATUS_H_

#include <cstdint>

namespace ukarch {

// Subset of errno used by the simulated kernel. Values match Linux x86_64 so the
// syscall shim can return them directly.
enum class Status : std::int32_t {
  kOk = 0,
  kPerm = -1,            // EPERM
  kNoEnt = -2,           // ENOENT
  kIntr = -4,            // EINTR
  kIo = -5,              // EIO
  kBadF = -9,            // EBADF
  kAgain = -11,          // EAGAIN
  kNoMem = -12,          // ENOMEM
  kAccess = -13,         // EACCES
  kFault = -14,          // EFAULT
  kBusy = -16,           // EBUSY
  kExist = -17,          // EEXIST
  kNotDir = -20,         // ENOTDIR
  kIsDir = -21,          // EISDIR
  kInval = -22,          // EINVAL
  kNFile = -23,          // ENFILE
  kMFile = -24,          // EMFILE
  kNoSpc = -28,          // ENOSPC
  kPipe = -32,           // EPIPE
  kNameTooLong = -36,    // ENAMETOOLONG
  kNoSys = -38,          // ENOSYS
  kNotEmpty = -39,       // ENOTEMPTY
  kNoProtoOpt = -92,     // ENOPROTOOPT
  kNotSup = -95,         // EOPNOTSUPP
  kAddrInUse = -98,      // EADDRINUSE
  kNetUnreach = -101,    // ENETUNREACH
  kConnReset = -104,     // ECONNRESET
  kNotConn = -107,       // ENOTCONN
  kTimedOut = -110,      // ETIMEDOUT
  kConnRefused = -111,   // ECONNREFUSED
  kHostUnreach = -113,   // EHOSTUNREACH
  kAlready = -114,       // EALREADY
  kInProgress = -115,    // EINPROGRESS
};

constexpr bool Ok(Status s) { return s == Status::kOk; }
constexpr std::int32_t Raw(Status s) { return static_cast<std::int32_t>(s); }

// Human-readable name for diagnostics and test failure messages.
constexpr const char* StatusName(Status s) {
  switch (s) {
    case Status::kOk: return "OK";
    case Status::kPerm: return "EPERM";
    case Status::kNoEnt: return "ENOENT";
    case Status::kIntr: return "EINTR";
    case Status::kIo: return "EIO";
    case Status::kBadF: return "EBADF";
    case Status::kAgain: return "EAGAIN";
    case Status::kNoMem: return "ENOMEM";
    case Status::kAccess: return "EACCES";
    case Status::kFault: return "EFAULT";
    case Status::kBusy: return "EBUSY";
    case Status::kExist: return "EEXIST";
    case Status::kNotDir: return "ENOTDIR";
    case Status::kIsDir: return "EISDIR";
    case Status::kInval: return "EINVAL";
    case Status::kNFile: return "ENFILE";
    case Status::kMFile: return "EMFILE";
    case Status::kNoSpc: return "ENOSPC";
    case Status::kPipe: return "EPIPE";
    case Status::kNameTooLong: return "ENAMETOOLONG";
    case Status::kNoSys: return "ENOSYS";
    case Status::kNotEmpty: return "ENOTEMPTY";
    case Status::kNoProtoOpt: return "ENOPROTOOPT";
    case Status::kNotSup: return "EOPNOTSUPP";
    case Status::kAddrInUse: return "EADDRINUSE";
    case Status::kNetUnreach: return "ENETUNREACH";
    case Status::kConnReset: return "ECONNRESET";
    case Status::kNotConn: return "ENOTCONN";
    case Status::kTimedOut: return "ETIMEDOUT";
    case Status::kConnRefused: return "ECONNREFUSED";
    case Status::kHostUnreach: return "EHOSTUNREACH";
    case Status::kAlready: return "EALREADY";
    case Status::kInProgress: return "EINPROGRESS";
  }
  return "E?";
}

}  // namespace ukarch

#endif  // UKARCH_STATUS_H_
