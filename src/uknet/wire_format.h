// uknet/wire_format.h - on-wire packet formats: Ethernet, ARP, IPv4, ICMP,
// UDP, TCP. Network byte order on the wire, host order in the structs; the
// Internet checksum is computed for real on both paths (part of the genuine
// per-packet CPU cost the socket-vs-uknetdev experiments measure).
#ifndef UKNET_WIRE_FORMAT_H_
#define UKNET_WIRE_FORMAT_H_

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "uknetdev/netdev.h"

namespace uknet {

using Ip4Addr = std::uint32_t;  // host byte order

inline constexpr std::uint16_t kEthTypeIp4 = 0x0800;
inline constexpr std::uint16_t kEthTypeArp = 0x0806;
inline constexpr std::uint8_t kIpProtoIcmp = 1;
inline constexpr std::uint8_t kIpProtoTcp = 6;
inline constexpr std::uint8_t kIpProtoUdp = 17;

inline constexpr std::size_t kEthHdrBytes = 14;
inline constexpr std::size_t kIp4HdrBytes = 20;
inline constexpr std::size_t kUdpHdrBytes = 8;
inline constexpr std::size_t kTcpHdrBytes = 20;
inline constexpr std::size_t kArpBytes = 28;

// "a.b.c.d" helper for tests and examples.
Ip4Addr MakeIp(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d);
std::string IpToString(Ip4Addr ip);

// RFC 1071 Internet checksum over |data|, starting from |initial| (used to
// fold in the pseudo-header for TCP/UDP).
std::uint16_t InternetChecksum(std::span<const std::uint8_t> data,
                               std::uint32_t initial = 0);
// Pseudo-header partial sum for TCP/UDP checksums.
std::uint32_t PseudoHeaderSum(Ip4Addr src, Ip4Addr dst, std::uint8_t proto,
                              std::uint16_t length);

struct EthHeader {
  uknetdev::MacAddr dst;
  uknetdev::MacAddr src;
  std::uint16_t ethertype = 0;

  void Serialize(std::uint8_t* out) const;
  static EthHeader Parse(std::span<const std::uint8_t> in);
};

struct ArpPacket {
  std::uint16_t oper = 0;  // 1 request, 2 reply
  uknetdev::MacAddr sender_mac;
  Ip4Addr sender_ip = 0;
  uknetdev::MacAddr target_mac;
  Ip4Addr target_ip = 0;

  void Serialize(std::uint8_t* out) const;
  static std::optional<ArpPacket> Parse(std::span<const std::uint8_t> in);
};

struct Ip4Header {
  std::uint16_t total_len = 0;
  std::uint16_t id = 0;
  std::uint8_t ttl = 64;
  std::uint8_t proto = 0;
  // Header length in bytes as parsed (IHL * 4). Parse accepts options
  // (IHL > 5), so L4 payload slicing must start here, never at the fixed
  // kIp4HdrBytes offset. Serialize always emits an option-less header.
  std::uint8_t header_len = kIp4HdrBytes;
  Ip4Addr src = 0;
  Ip4Addr dst = 0;

  // Serializes with a freshly computed header checksum.
  void Serialize(std::uint8_t* out) const;
  // Returns nullopt on bad version/length/checksum.
  static std::optional<Ip4Header> Parse(std::span<const std::uint8_t> in);
};

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  // header + payload

  // |payload| is required to compute the checksum over the full datagram.
  void Serialize(std::uint8_t* out, Ip4Addr src_ip, Ip4Addr dst_ip,
                 std::span<const std::uint8_t> payload) const;
  static std::optional<UdpHeader> Parse(std::span<const std::uint8_t> datagram,
                                        Ip4Addr src_ip, Ip4Addr dst_ip,
                                        bool verify_checksum = true);
};

inline constexpr std::uint8_t kTcpFin = 0x01;
inline constexpr std::uint8_t kTcpSyn = 0x02;
inline constexpr std::uint8_t kTcpRst = 0x04;
inline constexpr std::uint8_t kTcpPsh = 0x08;
inline constexpr std::uint8_t kTcpAck = 0x10;

// One SACK block: [start, end) in sequence space, RFC 2018 semantics (left
// edge received, right edge is first byte NOT covered).
struct TcpSackBlock {
  std::uint32_t start = 0;
  std::uint32_t end = 0;
};

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 0;

  // TCP options. kTcpHdrBytes stays the 20-byte base header; segments that
  // carry options have HeaderBytes() > kTcpHdrBytes and a data offset > 5.
  // Serialize emits exactly the options set here (MSS/wscale/SACK-permitted
  // only make sense on SYNs; SACK blocks only on established-state ACKs) and
  // Parse fills them back in, skipping unknown kinds.
  std::uint16_t mss = 0;         // kind 2; 0 = absent
  std::int8_t wscale = -1;       // kind 3; -1 = absent, else shift count
  bool sack_permitted = false;   // kind 4
  std::uint8_t sack_count = 0;   // number of valid entries in |sacks|
  std::array<TcpSackBlock, 4> sacks{};  // kind 5

  // Option area size in bytes, NOP-padded to a 4-byte multiple.
  std::size_t OptionBytes() const;
  // Total header size: base 20 bytes + options.
  std::size_t HeaderBytes() const { return kTcpHdrBytes + OptionBytes(); }

  void Serialize(std::uint8_t* out, Ip4Addr src_ip, Ip4Addr dst_ip,
                 std::span<const std::uint8_t> payload) const;
  static std::optional<TcpHeader> Parse(std::span<const std::uint8_t> segment,
                                        Ip4Addr src_ip, Ip4Addr dst_ip,
                                        std::size_t* header_len,
                                        bool verify_checksum = true);
};

struct IcmpEcho {
  bool is_reply = false;
  std::uint16_t id = 0;
  std::uint16_t seq = 0;
  std::vector<std::uint8_t> payload;

  std::vector<std::uint8_t> Serialize() const;
  static std::optional<IcmpEcho> Parse(std::span<const std::uint8_t> in);
};

// Sequence-number arithmetic (RFC 793 comparisons with wraparound).
inline bool SeqLt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
inline bool SeqLe(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}

}  // namespace uknet

#endif  // UKNET_WIRE_FORMAT_H_
