#include <cstring>

#include "uknet/stack.h"

namespace uknet {

namespace {
constexpr uknetdev::MacAddr kBroadcast{{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}};
constexpr std::uint16_t kRxBurstSize = 32;
}  // namespace

NetIf::NetIf(NetStack* stack, uknetdev::NetDev* dev, ukplat::MemRegion* mem,
             ukalloc::Allocator* alloc, Config config)
    : stack_(stack), dev_(dev), mem_(mem), alloc_(alloc), config_(config) {}

ukarch::Status NetIf::Init() {
  tx_pool_ = uknetdev::NetBufPool::Create(alloc_, mem_, config_.tx_pool_bufs,
                                          config_.buf_size);
  rx_pool_ = uknetdev::NetBufPool::Create(alloc_, mem_, config_.rx_pool_bufs,
                                          config_.buf_size);
  if (tx_pool_ == nullptr || rx_pool_ == nullptr) {
    return ukarch::Status::kNoMem;
  }
  ukarch::Status st = dev_->Configure(uknetdev::DevConf{});
  if (!Ok(st)) {
    return st;
  }
  st = dev_->TxQueueSetup(0, uknetdev::TxQueueConf{});
  if (!Ok(st)) {
    return st;
  }
  uknetdev::RxQueueConf rxc;
  rxc.buffer_pool = rx_pool_.get();
  st = dev_->RxQueueSetup(0, rxc);
  if (!Ok(st)) {
    return st;
  }
  return dev_->Start();
}

bool NetIf::SendEth(uknetdev::MacAddr dst, std::uint16_t ethertype,
                    std::span<const std::uint8_t> payload) {
  uknetdev::NetBuf* nb = tx_pool_->Alloc();
  if (nb == nullptr) {
    return false;
  }
  std::uint32_t frame_len = static_cast<std::uint32_t>(kEthHdrBytes + payload.size());
  if (nb->capacity - nb->headroom < frame_len) {
    tx_pool_->Free(nb);
    return false;
  }
  nb->len = frame_len;
  std::byte* data = mem_->At(nb->data_gpa(), frame_len);
  if (data == nullptr) {
    tx_pool_->Free(nb);
    return false;
  }
  EthHeader eth{dst, dev_->mac(), ethertype};
  eth.Serialize(reinterpret_cast<std::uint8_t*>(data));
  std::memcpy(data + kEthHdrBytes, payload.data(), payload.size());

  uknetdev::NetBuf* pkts[1] = {nb};
  std::uint16_t cnt = 1;
  dev_->TxBurst(0, pkts, &cnt);
  if (cnt != 1) {
    tx_pool_->Free(nb);
    return false;
  }
  return true;
}

void NetIf::SendArpRequest(Ip4Addr target) {
  ArpPacket arp;
  arp.oper = 1;
  arp.sender_mac = dev_->mac();
  arp.sender_ip = config_.ip;
  arp.target_ip = target;
  std::uint8_t body[kArpBytes];
  arp.Serialize(body);
  ++if_stats_.arp_requests;
  SendEth(kBroadcast, kEthTypeArp, body);
}

bool NetIf::SendIp(Ip4Addr dst, std::uint8_t proto,
                   std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> packet(kIp4HdrBytes + payload.size());
  Ip4Header ip;
  ip.total_len = static_cast<std::uint16_t>(packet.size());
  ip.id = ip_id_++;
  ip.proto = proto;
  ip.src = config_.ip;
  ip.dst = dst;
  ip.Serialize(packet.data());
  std::memcpy(packet.data() + kIp4HdrBytes, payload.data(), payload.size());

  Ip4Addr hop = NextHop(dst);
  auto cached = arp_cache_.find(hop);
  if (cached == arp_cache_.end()) {
    // Park behind ARP (bounded queue; beyond that, drop — TCP retransmits).
    auto& pending = arp_pending_[hop];
    if (pending.size() >= 8) {
      ++if_stats_.pending_dropped;
      return false;
    }
    pending.push_back(std::move(packet));
    SendArpRequest(hop);
    return true;
  }
  ++if_stats_.ip_tx;
  return SendEth(cached->second, kEthTypeIp4, packet);
}

std::size_t NetIf::Poll() {
  uknetdev::NetBuf* pkts[kRxBurstSize];
  std::uint16_t cnt = kRxBurstSize;
  dev_->RxBurst(0, pkts, &cnt);
  for (std::uint16_t i = 0; i < cnt; ++i) {
    uknetdev::NetBuf* nb = pkts[i];
    const std::byte* data = nb->Data(*mem_);
    if (data != nullptr) {
      HandleFrame(std::span(reinterpret_cast<const std::uint8_t*>(data), nb->len));
    }
    if (nb->pool != nullptr) {
      nb->pool->Free(nb);
    }
  }
  return cnt;
}

void NetIf::HandleFrame(std::span<const std::uint8_t> frame) {
  if (frame.size() < kEthHdrBytes) {
    return;
  }
  EthHeader eth = EthHeader::Parse(frame);
  bool for_us = eth.dst == dev_->mac() || eth.dst == kBroadcast;
  if (!for_us) {
    return;
  }
  std::span<const std::uint8_t> body = frame.subspan(kEthHdrBytes);
  if (eth.ethertype == kEthTypeArp) {
    HandleArp(body);
  } else if (eth.ethertype == kEthTypeIp4) {
    HandleIp(body);
  }
}

void NetIf::HandleArp(std::span<const std::uint8_t> body) {
  auto arp = ArpPacket::Parse(body);
  if (!arp.has_value()) {
    return;
  }
  // Learn the sender either way (gratuitous + reply + request).
  arp_cache_[arp->sender_ip] = arp->sender_mac;

  // Flush packets parked behind this resolution.
  auto pending = arp_pending_.find(arp->sender_ip);
  if (pending != arp_pending_.end()) {
    for (std::vector<std::uint8_t>& packet : pending->second) {
      ++if_stats_.ip_tx;
      SendEth(arp->sender_mac, kEthTypeIp4, packet);
    }
    arp_pending_.erase(pending);
  }

  if (arp->oper == 1 && arp->target_ip == config_.ip) {
    ArpPacket reply;
    reply.oper = 2;
    reply.sender_mac = dev_->mac();
    reply.sender_ip = config_.ip;
    reply.target_mac = arp->sender_mac;
    reply.target_ip = arp->sender_ip;
    std::uint8_t out[kArpBytes];
    reply.Serialize(out);
    ++if_stats_.arp_replies;
    SendEth(arp->sender_mac, kEthTypeArp, out);
  }
}

void NetIf::HandleIp(std::span<const std::uint8_t> body) {
  auto ip = Ip4Header::Parse(body);
  if (!ip.has_value()) {
    ++if_stats_.rx_checksum_drops;
    return;
  }
  if (ip->dst != config_.ip) {
    return;  // not routed; unikernels are endpoints
  }
  ++if_stats_.ip_rx;
  std::span<const std::uint8_t> payload =
      body.subspan(kIp4HdrBytes, ip->total_len - kIp4HdrBytes);
  stack_->HandleIpPacket(this, *ip, payload);
}

}  // namespace uknet
