#include <algorithm>
#include <cstring>

#include "ukarch/hash.h"
#include "uknet/stack.h"

namespace uknet {

namespace {
constexpr uknetdev::MacAddr kBroadcast{{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}};
constexpr std::uint16_t kRxBurstSize = 32;
constexpr std::size_t kArpPendingCap = 8;
constexpr std::uint32_t kMinPoolBufsPerQueue = 8;
}  // namespace

NetIf::NetIf(NetStack* stack, uknetdev::NetDev* dev, ukplat::MemRegion* mem,
             ukalloc::Allocator* alloc, Config config)
    : stack_(stack), dev_(dev), mem_(mem), alloc_(alloc), config_(config) {}

NetIf::~NetIf() {
  // Netbufs parked behind unresolved ARP still belong to their TX pools.
  for (auto& [hop, pending] : arp_pending_) {
    for (PendingTx& p : pending) {
      FreeTxBuf(p.nb);
    }
  }
}

ukarch::Status NetIf::Init() {
  const uknetdev::DevInfo info = dev_->Info();
  dev_tx_headroom_ = info.tx_headroom;
  const std::uint16_t dev_max = std::min(info.max_rx_queues, info.max_tx_queues);
  nb_queues_ = std::clamp<std::uint16_t>(config_.queues, 1, std::max<std::uint16_t>(dev_max, 1));

  // Per-queue private pools: the total budget splits evenly so queue loops
  // never contend on a shared free list.
  const std::uint32_t tx_per_q =
      std::max(config_.tx_pool_bufs / nb_queues_, kMinPoolBufsPerQueue);
  const std::uint32_t rx_per_q =
      std::max(config_.rx_pool_bufs / nb_queues_, kMinPoolBufsPerQueue);
  tx_pools_.clear();
  rx_pools_.clear();
  for (std::uint16_t q = 0; q < nb_queues_; ++q) {
    tx_pools_.push_back(
        uknetdev::NetBufPool::Create(alloc_, mem_, tx_per_q, config_.buf_size));
    rx_pools_.push_back(
        uknetdev::NetBufPool::Create(alloc_, mem_, rx_per_q, config_.buf_size));
    if (tx_pools_.back() == nullptr || rx_pools_.back() == nullptr) {
      return ukarch::Status::kNoMem;
    }
    // TX writability interrupt: a dry pool regaining a buffer notifies the
    // stack, which turns it into kEvtWritable edges / a queue doorbell.
    tx_pools_.back()->SetRefillCallback(
        [this, q] { stack_->OnTxPoolRefill(this, q); });
  }

  uknetdev::DevConf conf;
  conf.nb_rx_queues = nb_queues_;
  conf.nb_tx_queues = nb_queues_;
  ukarch::Status st = dev_->Configure(conf);
  if (!Ok(st)) {
    return st;
  }
  for (auto& w : rx_wakeups_) {
    w.store(0, std::memory_order_relaxed);
  }
  for (std::uint16_t q = 0; q < nb_queues_; ++q) {
    st = dev_->TxQueueSetup(q, uknetdev::TxQueueConf{});
    if (!Ok(st)) {
      return st;
    }
    uknetdev::RxQueueConf rxc;
    rxc.buffer_pool = rx_pools_[q].get();
    // Wakeup hook: inert until a PollWait arms the line (RxIntrEnable).
    rxc.intr_handler = [this](std::uint16_t rxq) { OnRxInterrupt(rxq); };
    st = dev_->RxQueueSetup(q, rxc);
    if (!Ok(st)) {
      return st;
    }
  }
  return dev_->Start();
}

// ---- interrupt-driven idle ---------------------------------------------------------

void NetIf::ArmRx(std::uint16_t queue) {
  if (queue < nb_queues_) {
    dev_->RxIntrEnable(queue);
  }
}

void NetIf::DisarmRx(std::uint16_t queue) {
  if (queue < nb_queues_) {
    dev_->RxIntrDisable(queue);
  }
}

void NetIf::OnRxInterrupt(std::uint16_t queue) {
  // May fire on a foreign loop (device backend thread): the slot is atomic
  // and fixed-size, so no coordination with the owning loop is needed.
  rx_wakeups_[QueueSlot(queue)].fetch_add(1, std::memory_order_relaxed);
  stack_->WakeRxWaiters(queue);
}

std::uint16_t NetIf::TxQueueFor(Ip4Addr remote_ip, std::uint16_t local_port,
                                std::uint16_t remote_port) const {
  if (nb_queues_ <= 1) {
    return 0;
  }
  return static_cast<std::uint16_t>(
      ukarch::FlowHash4(config_.ip, local_port, remote_ip, remote_port) % nb_queues_);
}

// ---- zero-copy TX ------------------------------------------------------------------

uknetdev::NetBuf* NetIf::AllocTxBuf(std::uint32_t l4_header_bytes, std::uint16_t queue) {
  std::uint32_t reserve = dev_tx_headroom_ +
                          static_cast<std::uint32_t>(kEthHdrBytes + kIp4HdrBytes) +
                          l4_header_bytes;
  if (queue >= tx_pools_.size()) {
    return nullptr;
  }
  return tx_pools_[queue]->AllocWithHeadroom(reserve);
}

void NetIf::FreeTxBuf(uknetdev::NetBuf* nb) {
  if (nb != nullptr && nb->pool != nullptr) {
    nb->pool->Free(nb);
  }
}

bool NetIf::SendEthBuf(uknetdev::MacAddr dst, std::uint16_t ethertype,
                       uknetdev::NetBuf* nb, std::uint16_t queue) {
  std::uint8_t* hdr = nb->PrependHeader(*mem_, kEthHdrBytes);
  if (hdr == nullptr) {
    FreeTxBuf(nb);
    return false;
  }
  EthHeader eth{dst, dev_->mac(), ethertype};
  eth.Serialize(hdr);
  uknetdev::NetBuf* pkts[1] = {nb};
  std::uint16_t cnt = 1;
  dev_->TxBurst(queue, pkts, &cnt);
  if (cnt != 1) {
    FreeTxBuf(nb);
    return false;
  }
  return true;
}

std::uint16_t NetIf::SendEthBatch(uknetdev::MacAddr dst, std::uint16_t ethertype,
                                  uknetdev::NetBuf** pkts, std::uint16_t cnt,
                                  std::uint16_t queue) {
  EthHeader eth{dst, dev_->mac(), ethertype};
  std::uint16_t ready = 0;
  for (std::uint16_t i = 0; i < cnt; ++i) {
    std::uint8_t* hdr = pkts[i]->PrependHeader(*mem_, kEthHdrBytes);
    if (hdr == nullptr) {
      FreeTxBuf(pkts[i]);
      continue;
    }
    eth.Serialize(hdr);
    pkts[ready++] = pkts[i];
  }
  std::uint16_t sent = ready;
  if (ready > 0) {
    dev_->TxBurst(queue, pkts, &sent);
    for (std::uint16_t i = sent; i < ready; ++i) {
      FreeTxBuf(pkts[i]);
    }
  }
  return sent;
}

bool NetIf::SendIpBuf(Ip4Addr dst, std::uint8_t proto, uknetdev::NetBuf* nb,
                      std::uint16_t queue) {
  // The single-packet send is the batch of one: same header construction,
  // same ARP-miss parking policy (bounded per-hop queue; beyond that, drop —
  // TCP retransmits), one place to change either.
  uknetdev::NetBuf* pkts[1] = {nb};
  return SendIpBatch(dst, proto, pkts, 1, queue) == 1;
}

std::uint16_t NetIf::SendIpBatch(Ip4Addr dst, std::uint8_t proto,
                                 uknetdev::NetBuf** pkts, std::uint16_t cnt,
                                 std::uint16_t queue) {
  // One destination means one next hop: resolve it once for the whole batch
  // instead of per packet, then emit everything in a single TxBurst.
  std::uint16_t ready = 0;
  for (std::uint16_t i = 0; i < cnt; ++i) {
    Ip4Header ip;
    ip.total_len = static_cast<std::uint16_t>(kIp4HdrBytes + pkts[i]->len);
    ip.id = ip_id_++;
    ip.proto = proto;
    ip.src = config_.ip;
    ip.dst = dst;
    std::uint8_t* hdr = pkts[i]->PrependHeader(*mem_, kIp4HdrBytes);
    if (hdr == nullptr) {
      FreeTxBuf(pkts[i]);
      continue;
    }
    ip.Serialize(hdr);
    pkts[ready++] = pkts[i];
  }
  if (ready == 0) {
    return 0;
  }
  Ip4Addr hop = NextHop(dst);
  auto cached = arp_cache_.find(hop);
  if (cached == arp_cache_.end()) {
    // Unresolved next hop: park what the bounded per-hop queue accepts
    // behind ONE ARP request; overflow drops (UDP callers retry, TCP
    // retransmission recovers).
    auto& pending = arp_pending_[hop];
    std::uint16_t parked = 0;
    for (std::uint16_t i = 0; i < ready; ++i) {
      if (pending.size() >= kArpPendingCap) {
        ++if_stats_.pending_dropped;
        FreeTxBuf(pkts[i]);
        continue;
      }
      pending.push_back(PendingTx{pkts[i], queue});
      ++parked;
    }
    if (parked > 0) {
      // A full pending queue means an earlier park already sent the request;
      // re-asking per dropped batch would just add ARP frames to congestion.
      SendArpRequest(hop, queue);
    }
    return parked;
  }
  std::uint16_t sent = SendEthBatch(cached->second, kEthTypeIp4, pkts, ready, queue);
  if_stats_.ip_tx += sent;
  return sent;
}

bool NetIf::SendIp(Ip4Addr dst, std::uint8_t proto,
                   std::span<const std::uint8_t> payload, std::uint16_t queue) {
  uknetdev::NetBuf* nb = AllocTxBuf(0, queue);
  if (nb == nullptr) {
    return false;
  }
  std::uint8_t* body = nb->Append(*mem_, static_cast<std::uint32_t>(payload.size()));
  if (body == nullptr) {
    FreeTxBuf(nb);
    return false;
  }
  if (!payload.empty()) {
    std::memcpy(body, payload.data(), payload.size());
  }
  return SendIpBuf(dst, proto, nb, queue);
}

bool NetIf::SendEth(uknetdev::MacAddr dst, std::uint16_t ethertype,
                    std::span<const std::uint8_t> payload) {
  uknetdev::NetBuf* nb = AllocTxBuf();
  if (nb == nullptr) {
    return false;
  }
  std::uint8_t* body = nb->Append(*mem_, static_cast<std::uint32_t>(payload.size()));
  if (body == nullptr) {
    FreeTxBuf(nb);
    return false;
  }
  if (!payload.empty()) {
    std::memcpy(body, payload.data(), payload.size());
  }
  return SendEthBuf(dst, ethertype, nb);
}

void NetIf::SendArpRequest(Ip4Addr target, std::uint16_t queue) {
  ArpPacket arp;
  arp.oper = 1;
  arp.sender_mac = dev_->mac();
  arp.sender_ip = config_.ip;
  arp.target_ip = target;
  uknetdev::NetBuf* nb = AllocTxBuf(0, queue);
  if (nb == nullptr) {
    return;
  }
  std::uint8_t* body = nb->Append(*mem_, kArpBytes);
  if (body == nullptr) {
    FreeTxBuf(nb);
    return;
  }
  arp.Serialize(body);
  ++if_stats_.arp_requests;
  SendEthBuf(kBroadcast, kEthTypeArp, nb, queue);
}

// ---- batched RX --------------------------------------------------------------------

std::size_t NetIf::Poll() {
  std::size_t handled = 0;
  for (std::uint16_t q = 0; q < nb_queues_; ++q) {
    handled += Poll(q);
  }
  return handled;
}

std::size_t NetIf::Poll(std::uint16_t queue) {
  if (queue >= nb_queues_) {
    return 0;
  }
  uknetdev::NetBuf* pkts[kRxBurstSize];
  std::uint16_t cnt = kRxBurstSize;
  dev_->RxBurst(queue, pkts, &cnt);
  return ProcessRxBurst(queue, pkts, cnt);
}

std::size_t NetIf::ProcessRxBurst(std::uint16_t queue, uknetdev::NetBuf** pkts,
                                  std::uint16_t cnt) {
  for (std::uint16_t i = 0; i < cnt; ++i) {
    uknetdev::NetBuf* nb = pkts[i];
    const std::byte* data = nb->Data(*mem_);
    bool retained = false;
    if (data != nullptr) {
      retained = HandleFrame(
          queue, nb,
          std::span(reinterpret_cast<const std::uint8_t*>(data), nb->len));
    }
    if (!retained && nb->pool != nullptr) {
      nb->pool->Free(nb);
    }
  }
  return cnt;
}

bool NetIf::HandleFrame(std::uint16_t queue, uknetdev::NetBuf* nb,
                        std::span<const std::uint8_t> frame) {
  if (frame.size() < kEthHdrBytes) {
    return false;
  }
  EthHeader eth = EthHeader::Parse(frame);
  bool for_us = eth.dst == dev_->mac() || eth.dst == kBroadcast;
  if (!for_us) {
    return false;
  }
  std::span<const std::uint8_t> body = frame.subspan(kEthHdrBytes);
  if (eth.ethertype == kEthTypeArp) {
    HandleArp(queue, body);
    return false;
  }
  if (eth.ethertype == kEthTypeIp4) {
    return HandleIp(queue, nb, body);
  }
  return false;
}

void NetIf::HandleArp(std::uint16_t queue, std::span<const std::uint8_t> body) {
  auto arp = ArpPacket::Parse(body);
  if (!arp.has_value()) {
    return;
  }
  // Learn the sender either way (gratuitous + reply + request).
  arp_cache_[arp->sender_ip] = arp->sender_mac;

  // Flush netbufs parked behind this resolution: they already carry their IP
  // headers, so only the Ethernet header is prepended before they go out —
  // batched per TX queue so every packet stays on its flow's queue.
  auto pending = arp_pending_.find(arp->sender_ip);
  if (pending != arp_pending_.end()) {
    for (std::uint16_t q = 0; q < nb_queues_; ++q) {
      uknetdev::NetBuf* batch[kArpPendingCap];
      std::uint16_t n = 0;
      for (PendingTx& p : pending->second) {
        if (p.queue == q && n < kArpPendingCap) {
          batch[n++] = p.nb;
        }
      }
      if (n > 0) {
        if_stats_.ip_tx +=
            SendEthBatch(arp->sender_mac, kEthTypeIp4, batch, n, q);
      }
    }
    arp_pending_.erase(pending);
  }

  if (arp->oper == 1 && arp->target_ip == config_.ip) {
    ArpPacket reply;
    reply.oper = 2;
    reply.sender_mac = dev_->mac();
    reply.sender_ip = config_.ip;
    reply.target_mac = arp->sender_mac;
    reply.target_ip = arp->sender_ip;
    uknetdev::NetBuf* nb = AllocTxBuf(0, queue);
    if (nb == nullptr) {
      return;
    }
    std::uint8_t* out = nb->Append(*mem_, kArpBytes);
    if (out == nullptr) {
      FreeTxBuf(nb);
      return;
    }
    reply.Serialize(out);
    ++if_stats_.arp_replies;
    SendEthBuf(arp->sender_mac, kEthTypeArp, nb, queue);
  }
}

bool NetIf::HandleIp(std::uint16_t queue, uknetdev::NetBuf* nb,
                     std::span<const std::uint8_t> body) {
  auto ip = Ip4Header::Parse(body);
  if (!ip.has_value()) {
    ++if_stats_.rx_checksum_drops;
    return false;
  }
  if (ip->dst != config_.ip) {
    return false;  // not routed; unikernels are endpoints
  }
  ++if_stats_.ip_rx;
  // Slice the L4 payload at the parsed header length: packets carrying IP
  // options (IHL > 5) must not leak option bytes into the UDP/TCP payload.
  std::span<const std::uint8_t> payload =
      body.subspan(ip->header_len, ip->total_len - ip->header_len);
  return stack_->HandleIpPacket(this, queue, nb, *ip, payload);
}

}  // namespace uknet
