// TCP state machine: connection setup/teardown, sliding-window transfer,
// retransmission. Invariants the tests lean on:
//  * retx_queue_ segments cover [snd_una_, DataEnd()) in order; the front
//    segment contains snd_una_ (or the queue is empty)
//  * every queued segment holds one reference on its netbuf until the ACK
//    that covers it; (re)transmission takes a second, transient reference
//  * rcv_nxt_ is the next expected byte; out-of-order segments are dropped
//    (the wire delivers in order, so only loss reorders — retransmit covers it)
//  * a segment is ACKed on every receive that changes rcv_nxt_ or on FIN.
#include <cstring>

#include "uknet/stack.h"

namespace uknet {

const char* TcpStateName(TcpState s) {
  switch (s) {
    case TcpState::kClosed: return "CLOSED";
    case TcpState::kListen: return "LISTEN";
    case TcpState::kSynSent: return "SYN_SENT";
    case TcpState::kSynRcvd: return "SYN_RCVD";
    case TcpState::kEstablished: return "ESTABLISHED";
    case TcpState::kFinWait1: return "FIN_WAIT_1";
    case TcpState::kFinWait2: return "FIN_WAIT_2";
    case TcpState::kCloseWait: return "CLOSE_WAIT";
    case TcpState::kLastAck: return "LAST_ACK";
    case TcpState::kClosing: return "CLOSING";
    case TcpState::kTimeWait: return "TIME_WAIT";
  }
  return "?";
}

TcpSocket::~TcpSocket() { ReleaseAllSegments(); }

void TcpSocket::ReleaseAllSegments() {
  // Segments still awaiting ACK hold the queue's netbuf references. Sockets
  // the stack no longer tracks always have an empty queue (every removal
  // path requires the FIN — and with it all data — to be acknowledged, or
  // ~NetStack drained them), so this never touches a destroyed pool.
  for (TcpTxSegment& seg : retx_queue_) {
    netif_->FreeTxBuf(seg.nb);
  }
  retx_queue_.clear();
  send_buffered_ = 0;
}

std::int64_t TcpSocket::Send(std::span<const std::uint8_t> data) {
  if (reset_) {
    return ukarch::Raw(ukarch::Status::kConnReset);
  }
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait &&
      state_ != TcpState::kSynSent && state_ != TcpState::kSynRcvd) {
    return ukarch::Raw(ukarch::Status::kPipe);
  }
  if (fin_queued_) {
    return ukarch::Raw(ukarch::Status::kPipe);
  }
  // Fill MSS-sized TX netbufs directly: the app bytes are written exactly
  // once, into the buffer that goes to the device. Each filled segment joins
  // the retransmission queue, which retains the netbuf until it is ACKed.
  ukplat::MemRegion* mem = stack_->mem();
  std::size_t accepted = 0;
  while (accepted < data.size() && send_buffered_ < kSendBufCap) {
    std::uint32_t want = static_cast<std::uint32_t>(data.size() - accepted);
    std::uint32_t space = static_cast<std::uint32_t>(kSendBufCap - send_buffered_);
    if (want > space) {
      want = space;
    }
    // Coalesce small writes into the trailing segment while it is below MSS
    // (unless its buffer is parked behind ARP resolution — the bytes are
    // spoken for until the pending send releases its reference).
    if (!retx_queue_.empty() && retx_queue_.back().len < kMss &&
        retx_queue_.back().nb->refcnt == 1) {
      TcpTxSegment& seg = retx_queue_.back();
      uknetdev::NetBuf* nb = seg.nb;
      nb->headroom = seg.payload_headroom;  // restore: TX prepended headers
      nb->len = seg.len;
      std::uint32_t take = want < kMss - seg.len ? want : kMss - seg.len;
      if (take > nb->tailroom()) {
        take = nb->tailroom();
      }
      std::uint8_t* at = take > 0 ? nb->Append(*mem, take) : nullptr;
      if (at != nullptr) {
        std::memcpy(at, data.data() + accepted, take);
        seg.len += take;
        send_buffered_ += take;
        accepted += take;
        continue;
      }
    }
    uknetdev::NetBuf* nb = netif_->AllocTxBuf(kTcpHdrBytes, tx_queue_);
    if (nb == nullptr) {
      // TX pool dry: report what was accepted. Mark the socket starved so the
      // pool-refill edge raises kEvtWritable — the app's flush loop parks on
      // writability instead of spinning retries against an empty pool.
      tx_pool_starved_ = true;
      break;
    }
    std::uint32_t take = want < kMss ? want : kMss;
    if (take > nb->tailroom()) {
      take = nb->tailroom();
    }
    std::uint8_t* at = nb->Append(*mem, take);
    if (at == nullptr) {
      netif_->FreeTxBuf(nb);
      break;
    }
    std::memcpy(at, data.data() + accepted, take);
    TcpTxSegment seg;
    seg.seq = retx_queue_.empty() ? snd_nxt_ : DataEnd();
    seg.len = take;
    seg.payload_headroom = nb->headroom;
    seg.nb = nb;
    retx_queue_.push_back(seg);
    send_buffered_ += take;
    accepted += take;
  }
  Output();
  return static_cast<std::int64_t>(accepted);
}

std::int64_t TcpSocket::Recv(std::span<std::uint8_t> out) {
  if (reset_) {
    return ukarch::Raw(ukarch::Status::kConnReset);
  }
  if (recv_buf_.empty()) {
    if (fin_received_) {
      return 0;  // orderly EOF
    }
    return ukarch::Raw(ukarch::Status::kAgain);
  }
  bool was_zero_window = AdvertisedWindow() == 0;
  std::size_t n = out.size() < recv_buf_.size() ? out.size() : recv_buf_.size();
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = recv_buf_.front();
    recv_buf_.pop_front();
  }
  if (was_zero_window && AdvertisedWindow() > 0 && state_ == TcpState::kEstablished) {
    // Window update so the stalled sender resumes.
    EmitSegment(kTcpAck, snd_nxt_);
  }
  return static_cast<std::int64_t>(n);
}

void TcpSocket::Close() {
  switch (state_) {
    case TcpState::kEstablished:
    case TcpState::kSynRcvd:
      fin_queued_ = true;
      EnterState(TcpState::kFinWait1);
      Output();
      break;
    case TcpState::kCloseWait:
      fin_queued_ = true;
      EnterState(TcpState::kLastAck);
      Output();
      break;
    case TcpState::kSynSent:
    case TcpState::kListen:
      EnterState(TcpState::kClosed);
      // Data queued before the handshake finished will never be sent; give
      // the netbufs (and the connection key) back right away.
      ReleaseAllSegments();
      stack_->RemoveConnection(this);
      break;
    default:
      break;
  }
}

void TcpSocket::EmitSegment(std::uint8_t flags, std::uint32_t seq) {
  TcpHeader hdr;
  hdr.src_port = local_port_;
  hdr.dst_port = remote_port_;
  hdr.seq = seq;
  hdr.ack = rcv_nxt_;
  hdr.flags = flags;
  hdr.window = AdvertisedWindow();
  ++tcp_stats_.segments_sent;
  stack_->SendTcpHeaderOnly(netif_, remote_ip_, hdr, tx_queue_);
  last_send_cycles_ = stack_->clock()->cycles();
}

void TcpSocket::EmitRetained(TcpTxSegment& seg, std::uint32_t from, std::uint32_t take,
                             std::uint8_t flags) {
  uknetdev::NetBuf* nb = seg.nb;
  if (nb == nullptr || take == 0) {
    return;
  }
  ukplat::MemRegion* mem = stack_->mem();
  TcpHeader hdr;
  hdr.src_port = local_port_;
  hdr.dst_port = remote_port_;
  hdr.seq = from;
  hdr.ack = rcv_nxt_;
  hdr.flags = flags;
  hdr.window = AdvertisedWindow();
  const std::uint32_t offset = from - seg.seq;
  if (offset != 0) {
    // Mid-segment suffix (snd_una_ inside the segment after a partial ACK,
    // or the continuation of a window-truncated send). Prepending headers
    // here would consume "headroom" that is really the segment's own earlier
    // payload — and a later full retransmit would re-send the clobbered
    // bytes. These rare sends take a one-copy fallback into a fresh buffer;
    // segment-aligned sends below (every normal transmission, and go-back-N /
    // fast retransmit at segment boundaries) stay copy-free.
    const std::byte* src = mem->At(nb->gpa + seg.payload_headroom + offset, take);
    uknetdev::NetBuf* out = netif_->AllocTxBuf(kTcpHdrBytes, tx_queue_);
    if (src == nullptr || out == nullptr) {
      netif_->FreeTxBuf(out);
      return;  // pool dry: drop; the retransmission timer recovers
    }
    std::uint8_t* body = out->Append(*mem, take);
    std::uint8_t* hdr_at = body != nullptr ? out->PrependHeader(*mem, kTcpHdrBytes)
                                           : nullptr;
    if (hdr_at == nullptr) {
      netif_->FreeTxBuf(out);
      return;
    }
    std::memcpy(body, src, take);
    hdr.Serialize(hdr_at, netif_->ip(), remote_ip_, std::span(body, take));
    ++tcp_stats_.segments_sent;
    netif_->SendIpBuf(remote_ip_, kIpProtoTcp, out, tx_queue_);
    last_send_cycles_ = stack_->clock()->cycles();
    return;
  }
  if (nb->refcnt > 1) {
    // A previous transmission of this buffer is still parked behind ARP
    // resolution; its bytes (headers included) are spoken for. Skip — the
    // flush or the retransmission timer covers these sequence numbers.
    return;
  }
  // Segment-aligned send: restore the payload view (transmissions prepend
  // headers in place), truncate to |take|, and re-burst the same retained
  // buffer. No payload byte is copied.
  nb->headroom = seg.payload_headroom;
  nb->len = take;
  const std::uint8_t* body = nb->Bytes(*mem);
  std::uint8_t* hdr_at = nb->PrependHeader(*mem, kTcpHdrBytes);
  if (hdr_at == nullptr) {
    return;  // headroom exhausted (cannot happen for AllocTxBuf segments)
  }
  hdr.Serialize(hdr_at, netif_->ip(), remote_ip_, std::span(body, take));
  nb->Ref();  // the transmission's reference; the TX path releases it
  ++tcp_stats_.segments_sent;
  netif_->SendIpBuf(remote_ip_, kIpProtoTcp, nb, tx_queue_);
  last_send_cycles_ = stack_->clock()->cycles();
}

void TcpSocket::Output() {
  if (state_ == TcpState::kSynSent || state_ == TcpState::kSynRcvd ||
      state_ == TcpState::kListen || state_ == TcpState::kClosed) {
    return;  // handshake segments are emitted by the state machine
  }
  std::uint32_t in_flight = snd_nxt_ - snd_una_;
  const std::uint32_t data_end = DataEnd();
  // Send queued segments the peer's window allows. Whole segments go out
  // zero-copy; a window smaller than the segment sends a prefix from the
  // same retained buffer (the remainder follows once the window opens).
  for (TcpTxSegment& seg : retx_queue_) {
    if (!SeqLt(snd_nxt_, data_end) || in_flight >= snd_wnd_) {
      break;
    }
    std::uint32_t seg_end = seg.seq + seg.len;
    if (!SeqLt(snd_nxt_, seg_end)) {
      continue;  // already fully sent (awaiting ACK)
    }
    std::uint32_t budget = snd_wnd_ - in_flight;
    std::uint32_t take = seg_end - snd_nxt_;
    if (take > budget) {
      take = budget;
    }
    std::uint8_t flags = kTcpAck;
    if (snd_nxt_ + take == data_end) {
      flags |= kTcpPsh;
    }
    EmitRetained(seg, snd_nxt_, take, flags);
    snd_nxt_ += take;
    in_flight += take;
  }
  // Flush a queued FIN once all data is out. The FIN consumes a sequence
  // slot of its own; segment accounting never mixes it into payload math.
  if (fin_queued_ && !fin_sent_ && !SeqLt(snd_nxt_, data_end)) {
    EmitSegment(kTcpFin | kTcpAck, snd_nxt_);
    snd_nxt_ += 1;
    fin_sent_ = true;
  }
}

void TcpSocket::CheckTimer() {
  bool has_unacked = SeqLt(snd_una_, snd_nxt_);
  if (!has_unacked) {
    return;
  }
  std::uint64_t now = stack_->clock()->cycles();
  if (now - last_send_cycles_ < stack_->rto_cycles) {
    return;
  }
  // Go-back-N: re-burst the retained netbufs covering [snd_una_, snd_nxt_).
  // Zero payload copies — the buffers were filled once, in Send().
  ++tcp_stats_.retransmissions;
  if (!RetransmitWindow(/*first_unacked_only=*/false) && fin_sent_) {
    EmitSegment(kTcpFin | kTcpAck, snd_nxt_ - 1);
  }
}

bool TcpSocket::RetransmitWindow(bool first_unacked_only) {
  bool resent = false;
  for (TcpTxSegment& seg : retx_queue_) {
    std::uint32_t seg_end = seg.seq + seg.len;
    if (!SeqLt(snd_una_, seg_end)) {
      continue;  // head segment partially acked ranges below snd_una_
    }
    if (!SeqLt(seg.seq, snd_nxt_)) {
      break;  // never sent; Output owns it
    }
    std::uint32_t from = SeqLt(seg.seq, snd_una_) ? snd_una_ : seg.seq;
    std::uint32_t end = SeqLt(snd_nxt_, seg_end) ? snd_nxt_ : seg_end;
    if (SeqLt(from, end)) {
      EmitRetained(seg, from, end - from, kTcpAck);
      resent = true;
    }
    if (first_unacked_only) {
      break;
    }
  }
  return resent;
}

void TcpSocket::ReleaseAcked(std::uint32_t ack) {
  while (!retx_queue_.empty()) {
    TcpTxSegment& seg = retx_queue_.front();
    if (!SeqLe(seg.seq + seg.len, ack)) {
      break;  // partial ACK inside this segment: keep it for retransmission
    }
    send_buffered_ -= seg.len;
    netif_->FreeTxBuf(seg.nb);  // release the queue's reference
    retx_queue_.pop_front();
  }
}

void TcpSocket::OnSegment(std::uint16_t rx_queue, const TcpHeader& hdr,
                          std::span<const std::uint8_t> payload) {
  ++tcp_stats_.segments_received;
  last_rx_queue_ = rx_queue;
  if ((hdr.flags & kTcpRst) != 0) {
    // Connection abort: release the retained TX netbufs immediately (a
    // zombie with 64KB queued would pin ~47 pool buffers until stack
    // teardown) and reclaim the 4-tuple so new connections can use it. The
    // dispatch path holds a shared_ptr, so self-removal is safe; the app
    // still observes the reset through failed().
    reset_ = true;
    EnterState(TcpState::kClosed);
    ReleaseAllSegments();
    RaiseEvent(kEvtErr | kEvtHup);  // hard error edge: wake any multiplexer
    stack_->RemoveConnection(this);
    return;
  }

  // --- handshake states ---
  if (state_ == TcpState::kSynSent) {
    if ((hdr.flags & (kTcpSyn | kTcpAck)) == (kTcpSyn | kTcpAck) &&
        hdr.ack == snd_nxt_) {
      rcv_nxt_ = hdr.seq + 1;
      snd_una_ = hdr.ack;
      snd_wnd_ = hdr.window;
      EnterState(TcpState::kEstablished);
      RaiseEvent(kEvtWritable);  // connect completed: the socket can send now
      EmitSegment(kTcpAck, snd_nxt_);
      Output();
    }
    return;
  }
  if (state_ == TcpState::kSynRcvd) {
    if ((hdr.flags & kTcpAck) != 0 && hdr.ack == snd_nxt_) {
      snd_una_ = hdr.ack;
      snd_wnd_ = hdr.window;
      EnterState(TcpState::kEstablished);
      stack_->NotifyAccepted(this);
      // Fall through: the ACK may carry data.
    } else {
      return;
    }
  }

  // --- ACK processing ---
  const bool send_was_full = send_space() == 0;
  if ((hdr.flags & kTcpAck) != 0) {
    if (SeqLt(snd_una_, hdr.ack) && SeqLe(hdr.ack, snd_nxt_)) {
      // Cumulative ACK: release fully-covered segments back to the pool.
      // Sequence-range accounting per segment — the FIN's sequence slot
      // cannot skew a byte count here (the old deque arithmetic underflowed
      // once a FIN was in flight).
      ReleaseAcked(hdr.ack);
      snd_una_ = hdr.ack;
      dup_ack_count_ = 0;
      if (send_was_full && send_space() > 0) {
        // Send-window reopen edge: a writer parked on a full send buffer
        // (Send() accepting 0) can make progress again.
        RaiseEvent(kEvtWritable);
      }
      // FIN fully acknowledged: advance teardown.
      if (fin_sent_ && snd_una_ == snd_nxt_) {
        if (state_ == TcpState::kFinWait1) {
          EnterState(TcpState::kFinWait2);
        } else if (state_ == TcpState::kLastAck) {
          EnterState(TcpState::kClosed);
          stack_->RemoveConnection(this);
        } else if (state_ == TcpState::kClosing) {
          EnterState(TcpState::kTimeWait);
          time_wait_polls_left_ = stack_->time_wait_poll_budget;
        }
      }
    } else if (hdr.ack == snd_una_ && SeqLt(snd_una_, snd_nxt_) && payload.empty()) {
      ++tcp_stats_.dup_acks;
      if (++dup_ack_count_ >= 3) {
        dup_ack_count_ = 0;
        ++tcp_stats_.retransmissions;
        // Fast retransmit of the first unacked segment — the same retained
        // netbuf goes out again, no copy.
        if (fin_sent_ && retx_queue_.empty()) {
          EmitSegment(kTcpFin | kTcpAck, snd_una_);
        } else {
          RetransmitWindow(/*first_unacked_only=*/true);
        }
      }
    }
    snd_wnd_ = hdr.window;
  }

  // --- payload ---
  const bool was_readable = readable();
  bool advanced = false;
  if (!payload.empty()) {
    if (hdr.seq == rcv_nxt_) {
      std::size_t space = kRecvBufCap - recv_buf_.size();
      std::size_t n = payload.size() < space ? payload.size() : space;
      recv_buf_.insert(recv_buf_.end(), payload.begin(),
                       payload.begin() + static_cast<std::ptrdiff_t>(n));
      rcv_nxt_ += static_cast<std::uint32_t>(n);
      advanced = true;
    } else if (SeqLt(hdr.seq, rcv_nxt_)) {
      // Old retransmission; re-ACK so the peer advances.
      advanced = true;
    } else {
      ++tcp_stats_.out_of_order_dropped;
      advanced = true;  // send dup ACK to trigger fast retransmit
    }
  }

  // --- FIN ---
  if ((hdr.flags & kTcpFin) != 0 && hdr.seq == rcv_nxt_) {
    rcv_nxt_ += 1;
    fin_received_ = true;
    advanced = true;
    // Orderly-shutdown edge. Data already queued stays readable: consumers
    // drain it first and only then observe the EOF (Recv() returning 0).
    RaiseEvent(kEvtHup);
    if (state_ == TcpState::kEstablished) {
      EnterState(TcpState::kCloseWait);
    } else if (state_ == TcpState::kFinWait1) {
      EnterState(TcpState::kClosing);
    } else if (state_ == TcpState::kFinWait2) {
      // Linger in TIME_WAIT (2MSL-equivalent Poll budget) so a retransmitted
      // FIN — the peer never saw our final ACK — still finds the connection
      // and gets a fresh ACK instead of a RST.
      EnterState(TcpState::kTimeWait);
      time_wait_polls_left_ = stack_->time_wait_poll_budget;
      if (!was_readable && readable()) {
        RaiseEvent(kEvtReadable);
      }
      EmitSegment(kTcpAck, snd_nxt_);
      return;
    }
  } else if ((hdr.flags & kTcpFin) != 0 && SeqLt(hdr.seq, rcv_nxt_)) {
    // Retransmitted FIN: our final ACK was lost. Re-ACK, and restart the
    // TIME_WAIT linger so the re-ACK itself gets the same grace period.
    advanced = true;
    if (state_ == TcpState::kTimeWait) {
      time_wait_polls_left_ = stack_->time_wait_poll_budget;
    }
  }

  if (!was_readable && readable()) {
    RaiseEvent(kEvtReadable);  // empty -> readable (data or EOF) transition
  }
  if (advanced) {
    EmitSegment(kTcpAck, snd_nxt_);
  }
  Output();
}

}  // namespace uknet
