// TCP state machine: connection setup/teardown, sliding-window transfer,
// NewReno congestion control, SACK-based loss recovery, delayed ACKs.
// Invariants the tests lean on:
//  * retx_queue_ segments cover [snd_una_, DataEnd()) in order; the front
//    segment contains snd_una_ (or the queue is empty)
//  * every queued segment holds one reference on its netbuf until the
//    cumulative ACK that covers it; (re)transmission takes a second,
//    transient reference — recovery never copies payload bytes
//  * the SACK scoreboard is one bit per retained segment; retransmission
//    passes skip sacked segments but only a cumulative ACK releases them
//  * rcv_nxt_ is the next expected byte; out-of-order segments queue in a
//    bounded reassembly list (ooo_ranges_) that doubles as the SACK-block
//    source, and drain into recv_buf_ when the hole fills
//  * every receive that advances rcv_nxt_ owes the peer an ACK; the delayed
//    ACK machinery bounds the debt to 2*MSS or one Poll/PollWait turn
//    (RunTcpTimers flushes), whichever comes first.
// The whole modern fast path gates on NetStack::tcp_modern; with it off the
// socket behaves like the pre-modernization stack (no options, no cwnd, an
// ACK per in-order segment) so benches can measure the delta.
#include <cstring>

#include "uknet/stack.h"

namespace uknet {

const char* TcpStateName(TcpState s) {
  switch (s) {
    case TcpState::kClosed: return "CLOSED";
    case TcpState::kListen: return "LISTEN";
    case TcpState::kSynSent: return "SYN_SENT";
    case TcpState::kSynRcvd: return "SYN_RCVD";
    case TcpState::kEstablished: return "ESTABLISHED";
    case TcpState::kFinWait1: return "FIN_WAIT_1";
    case TcpState::kFinWait2: return "FIN_WAIT_2";
    case TcpState::kCloseWait: return "CLOSE_WAIT";
    case TcpState::kLastAck: return "LAST_ACK";
    case TcpState::kClosing: return "CLOSING";
    case TcpState::kTimeWait: return "TIME_WAIT";
  }
  return "?";
}

TcpSocket::~TcpSocket() { ReleaseAllSegments(); }

void TcpSocket::SetBufferCaps(std::size_t send_cap, std::size_t recv_cap) {
  const std::size_t floor = 2 * kMss;
  send_cap_ = send_cap < floor ? floor : send_cap;
  recv_cap_ = recv_cap < floor ? floor : recv_cap;
}

void TcpSocket::ReleaseAllSegments() {
  // Segments still awaiting ACK hold the queue's netbuf references. Sockets
  // the stack no longer tracks always have an empty queue (every removal
  // path requires the FIN — and with it all data — to be acknowledged, or
  // ~NetStack drained them), so this never touches a destroyed pool.
  for (TcpTxSegment& seg : retx_queue_) {
    netif_->FreeTxBuf(seg.nb);
  }
  retx_queue_.clear();
  send_buffered_ = 0;
}

std::int64_t TcpSocket::Send(std::span<const std::uint8_t> data) {
  if (reset_) {
    return ukarch::Raw(ukarch::Status::kConnReset);
  }
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait &&
      state_ != TcpState::kSynSent && state_ != TcpState::kSynRcvd) {
    return ukarch::Raw(ukarch::Status::kPipe);
  }
  if (fin_queued_) {
    return ukarch::Raw(ukarch::Status::kPipe);
  }
  // Fill MSS-sized TX netbufs directly: the app bytes are written exactly
  // once, into the buffer that goes to the device. Each filled segment joins
  // the retransmission queue, which retains the netbuf until it is ACKed.
  ukplat::MemRegion* mem = stack_->mem();
  std::size_t accepted = 0;
  while (accepted < data.size() && send_buffered_ < send_cap_) {
    std::uint32_t want = static_cast<std::uint32_t>(data.size() - accepted);
    std::uint32_t space = static_cast<std::uint32_t>(send_cap_ - send_buffered_);
    if (want > space) {
      want = space;
    }
    // Coalesce small writes into the trailing segment while it is below MSS.
    // On the modern path only into a segment that has not been transmitted
    // yet (a sent segment's end is a wire-frame boundary; growing it would
    // strand snd_una_ mid-segment on the ACK and push later retransmissions
    // off the retained-buffer path — legacy has no such contract and keeps
    // the seed behavior). Also skip a buffer parked behind ARP resolution —
    // those bytes are spoken for until the pending send releases its
    // reference.
    if (!retx_queue_.empty() && retx_queue_.back().len < kMss &&
        (!stack_->tcp_modern || !SeqLt(retx_queue_.back().seq, snd_nxt_)) &&
        retx_queue_.back().nb->refcnt == 1) {
      TcpTxSegment& seg = retx_queue_.back();
      uknetdev::NetBuf* nb = seg.nb;
      nb->headroom = seg.payload_headroom;  // restore: TX prepended headers
      nb->len = seg.len;
      std::uint32_t take = want < kMss - seg.len ? want : kMss - seg.len;
      if (take > nb->tailroom()) {
        take = nb->tailroom();
      }
      std::uint8_t* at = take > 0 ? nb->Append(*mem, take) : nullptr;
      if (at != nullptr) {
        std::memcpy(at, data.data() + accepted, take);
        seg.len += take;
        send_buffered_ += take;
        accepted += take;
        continue;
      }
    }
    uknetdev::NetBuf* nb = netif_->AllocTxBuf(kTcpHdrBytes, tx_queue_);
    if (nb == nullptr) {
      // TX pool dry: report what was accepted. Mark the socket starved so the
      // pool-refill edge raises kEvtWritable — the app's flush loop parks on
      // writability instead of spinning retries against an empty pool.
      tx_pool_starved_ = true;
      break;
    }
    std::uint32_t take = want < kMss ? want : kMss;
    if (take > nb->tailroom()) {
      take = nb->tailroom();
    }
    std::uint8_t* at = nb->Append(*mem, take);
    if (at == nullptr) {
      netif_->FreeTxBuf(nb);
      break;
    }
    std::memcpy(at, data.data() + accepted, take);
    TcpTxSegment seg;
    seg.seq = retx_queue_.empty() ? snd_nxt_ : DataEnd();
    seg.len = take;
    seg.payload_headroom = nb->headroom;
    seg.nb = nb;
    retx_queue_.push_back(seg);
    send_buffered_ += take;
    accepted += take;
  }
  Output();
  return static_cast<std::int64_t>(accepted);
}

std::int64_t TcpSocket::Recv(std::span<std::uint8_t> out) {
  if (reset_) {
    return ukarch::Raw(ukarch::Status::kConnReset);
  }
  if (recv_buf_.empty()) {
    if (fin_received_) {
      return 0;  // orderly EOF
    }
    return ukarch::Raw(ukarch::Status::kAgain);
  }
  bool was_zero_window = AdvertisedWindow() == 0;
  std::size_t n = out.size() < recv_buf_.size() ? out.size() : recv_buf_.size();
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = recv_buf_.front();
    recv_buf_.pop_front();
  }
  if (was_zero_window && AdvertisedWindow() > 0 && state_ == TcpState::kEstablished) {
    // Window update so the stalled sender resumes.
    EmitSegment(kTcpAck, snd_nxt_);
  }
  return static_cast<std::int64_t>(n);
}

void TcpSocket::Close() {
  switch (state_) {
    case TcpState::kEstablished:
    case TcpState::kSynRcvd:
      fin_queued_ = true;
      EnterState(TcpState::kFinWait1);
      Output();
      break;
    case TcpState::kCloseWait:
      fin_queued_ = true;
      EnterState(TcpState::kLastAck);
      Output();
      break;
    case TcpState::kSynSent:
    case TcpState::kListen:
      EnterState(TcpState::kClosed);
      // Data queued before the handshake finished will never be sent; give
      // the netbufs (and the connection key) back right away.
      ReleaseAllSegments();
      stack_->RemoveConnection(this);
      break;
    default:
      break;
  }
}

void TcpSocket::EmitSegment(std::uint8_t flags, std::uint32_t seq) {
  TcpHeader hdr;
  hdr.src_port = local_port_;
  hdr.dst_port = remote_port_;
  hdr.seq = seq;
  hdr.ack = rcv_nxt_;
  hdr.flags = flags;
  hdr.window = AdvertisedWindow();
  // ACKs advertise the reassembly queue as SACK blocks: adjacent ranges
  // coalesce into one span, and the span holding the most recently received
  // segment goes first (RFC 2018) — at most 3 so the header stays within
  // one option write. The ordering matters under deep flights: only the
  // first three spans fit, and the sender's loss detection keys off whether
  // its newest data (or a tail-loss probe's echo) shows up sacked. The rest
  // follow in ascending order.
  if (sack_enabled_ && (flags & kTcpAck) != 0 && (flags & kTcpSyn) == 0 &&
      !ooo_ranges_.empty()) {
    TcpSackBlock spans[kMaxOooRanges];
    std::uint8_t n_spans = 0;
    std::uint8_t recent = 0;
    for (const OooRange& r : ooo_ranges_) {
      std::uint32_t r_end = r.seq + static_cast<std::uint32_t>(r.data.size());
      if (n_spans > 0 && spans[n_spans - 1].end == r.seq) {
        spans[n_spans - 1].end = r_end;
      } else {
        spans[n_spans].start = r.seq;
        spans[n_spans].end = r_end;
        ++n_spans;
      }
      if (SeqLe(spans[n_spans - 1].start, last_ooo_seq_) &&
          SeqLt(last_ooo_seq_, r_end)) {
        recent = n_spans - 1;
      }
    }
    hdr.sacks[hdr.sack_count++] = spans[recent];
    for (std::uint8_t i = 0; i < n_spans && hdr.sack_count < 3; ++i) {
      if (i != recent) {
        hdr.sacks[hdr.sack_count++] = spans[i];
      }
    }
  }
  ++tcp_stats_.segments_sent;
  if ((flags & (kTcpSyn | kTcpFin)) == 0 && (flags & kTcpAck) != 0) {
    ++tcp_stats_.pure_acks_sent;
  }
  stack_->SendTcpHeaderOnly(netif_, remote_ip_, hdr, tx_queue_);
  if ((flags & (kTcpSyn | kTcpFin)) != 0) {
    // Only retransmittable segments restart the retransmission timer. A pure
    // ACK must not: a stalled sender keeps ACKing its peer's traffic, and if
    // those sends pushed the epoch forward its own RTO would never fire.
    rtx_epoch_cycles_ = stack_->clock()->cycles();
  }
  // Whatever this segment was, it carried ack = rcv_nxt_: the debt is paid.
  delack_pending_ = false;
  delack_bytes_ = 0;
}

void TcpSocket::EmitRetained(TcpTxSegment& seg, std::uint32_t from, std::uint32_t take,
                             std::uint8_t flags, bool retransmit) {
  uknetdev::NetBuf* nb = seg.nb;
  if (nb == nullptr || take == 0) {
    return;
  }
  ukplat::MemRegion* mem = stack_->mem();
  TcpHeader hdr;
  hdr.src_port = local_port_;
  hdr.dst_port = remote_port_;
  hdr.seq = from;
  hdr.ack = rcv_nxt_;
  hdr.flags = flags;
  hdr.window = AdvertisedWindow();
  const std::uint32_t offset = from - seg.seq;
  if (offset != 0) {
    // Mid-segment suffix (snd_una_ inside the segment after a partial ACK,
    // or the continuation of a window-truncated send). Prepending headers
    // here would consume "headroom" that is really the segment's own earlier
    // payload — and a later full retransmit would re-send the clobbered
    // bytes. These rare sends take a one-copy fallback into a fresh buffer;
    // segment-aligned sends below (every normal transmission, and go-back-N /
    // fast retransmit at segment boundaries) stay copy-free.
    const std::byte* src = mem->At(nb->gpa + seg.payload_headroom + offset, take);
    uknetdev::NetBuf* out = netif_->AllocTxBuf(kTcpHdrBytes, tx_queue_);
    if (src == nullptr || out == nullptr) {
      netif_->FreeTxBuf(out);
      return;  // pool dry: drop; the retransmission timer recovers
    }
    std::uint8_t* body = out->Append(*mem, take);
    std::uint8_t* hdr_at = body != nullptr ? out->PrependHeader(*mem, kTcpHdrBytes)
                                           : nullptr;
    if (hdr_at == nullptr) {
      netif_->FreeTxBuf(out);
      return;
    }
    std::memcpy(body, src, take);
    hdr.Serialize(hdr_at, netif_->ip(), remote_ip_, std::span(body, take));
    if (retransmit) {
      ++tcp_stats_.rexmit_copy_allocs;
    }
    ++tcp_stats_.segments_sent;
    ++tcp_stats_.data_segments_sent;
    netif_->SendIpBuf(remote_ip_, kIpProtoTcp, out, tx_queue_);
    rtx_epoch_cycles_ = stack_->clock()->cycles();
    delack_pending_ = false;
    delack_bytes_ = 0;
    return;
  }
  if (nb->refcnt > 1) {
    // A previous transmission of this buffer is still parked behind ARP
    // resolution; its bytes (headers included) are spoken for. Skip — the
    // flush or the retransmission timer covers these sequence numbers.
    return;
  }
  // Segment-aligned send: restore the payload view (transmissions prepend
  // headers in place), truncate to |take|, and re-burst the same retained
  // buffer. No payload byte is copied.
  nb->headroom = seg.payload_headroom;
  nb->len = take;
  const std::uint8_t* body = nb->Bytes(*mem);
  std::uint8_t* hdr_at = nb->PrependHeader(*mem, kTcpHdrBytes);
  if (hdr_at == nullptr) {
    return;  // headroom exhausted (cannot happen for AllocTxBuf segments)
  }
  hdr.Serialize(hdr_at, netif_->ip(), remote_ip_, std::span(body, take));
  nb->Ref();  // the transmission's reference; the TX path releases it
  ++tcp_stats_.segments_sent;
  ++tcp_stats_.data_segments_sent;
  netif_->SendIpBuf(remote_ip_, kIpProtoTcp, nb, tx_queue_);
  rtx_epoch_cycles_ = stack_->clock()->cycles();
  delack_pending_ = false;
  delack_bytes_ = 0;
}

void TcpSocket::Output() {
  if (state_ == TcpState::kSynSent || state_ == TcpState::kSynRcvd ||
      state_ == TcpState::kListen || state_ == TcpState::kClosed) {
    return;  // handshake segments are emitted by the state machine
  }
  std::uint32_t in_flight = snd_nxt_ - snd_una_;
  const std::uint32_t data_end = DataEnd();
  // The send window: the peer's advertised (scaled) window, gated by cwnd
  // when the modern fast path is on. Legacy mode keeps the raw stop-and-go
  // behavior — flow control only.
  std::uint32_t wnd = snd_wnd_;
  if (stack_->tcp_modern && cwnd_ < wnd) {
    wnd = cwnd_;
  }
  // Send queued segments the window allows. Whole segments go out
  // zero-copy; a budget that ends mid-segment makes the flow WAIT rather
  // than split — a split segment leaves snd_una_ landing mid-buffer on the
  // ACK, and every later retransmission of that suffix falls off the
  // retained-buffer path into a copy. The one exception is an idle flow
  // against a sub-MSS peer window: with nothing in flight there is no ACK
  // on the way to open the window, so a prefix must go out to make
  // progress.
  for (TcpTxSegment& seg : retx_queue_) {
    if (!SeqLt(snd_nxt_, data_end) || in_flight >= wnd) {
      break;
    }
    std::uint32_t seg_end = seg.seq + seg.len;
    if (!SeqLt(snd_nxt_, seg_end)) {
      continue;  // already fully sent (awaiting ACK)
    }
    std::uint32_t budget = wnd - in_flight;
    std::uint32_t take = seg_end - snd_nxt_;
    if (take > budget) {
      if (stack_->tcp_modern && in_flight > 0) {
        break;
      }
      take = budget;
    }
    std::uint8_t flags = kTcpAck;
    if (snd_nxt_ + take == data_end) {
      flags |= kTcpPsh;
    }
    EmitRetained(seg, snd_nxt_, take, flags);
    snd_nxt_ += take;
    in_flight += take;
  }
  // Flush a queued FIN once all data is out. The FIN consumes a sequence
  // slot of its own; segment accounting never mixes it into payload math.
  if (fin_queued_ && !fin_sent_ && !SeqLt(snd_nxt_, data_end)) {
    EmitSegment(kTcpFin | kTcpAck, snd_nxt_);
    snd_nxt_ += 1;
    fin_sent_ = true;
  }
}

void TcpSocket::CheckTimer() {
  // End-of-turn delayed-ACK flush: RunTcpTimers calls here once per
  // Poll/PollWait turn, so an ACK owed by the RX pass is on the wire before
  // the loop sleeps — the coalescing window is one turn, never a stall.
  FlushDelayedAck();
  bool has_unacked = SeqLt(snd_una_, snd_nxt_);
  if (!has_unacked) {
    return;
  }
  std::uint64_t now = stack_->clock()->cycles();
  if (now - rtx_epoch_cycles_ < stack_->rto_cycles * rto_backoff_) {
    // Tail-loss probe: a loss at the end of a burst leaves too few trailing
    // segments to raise three dup ACKs, so fast retransmit never arms and
    // the stream would sit out the whole RTO. After a quarter of it,
    // retransmit the segment at snd_una_ — the cumulative hole — once. If
    // that segment was the loss, the probe repairs it and the cumulative
    // ACK advances; if only its ACK was lost, the peer's old-segment re-ACK
    // advances us just the same. Either way the stall breaks in one round
    // trip without depending on SACK feedback (the peer's bounded
    // reassembly queue may not even hold the newest data). One probe per
    // stall: forward progress re-arms it, the exponential backoff takes
    // over if even the probe goes unanswered.
    if (stack_->tcp_modern && sack_enabled_ && !tlp_probe_sent_ &&
        rto_backoff_ == 1 && !retx_queue_.empty() &&
        now - rtx_epoch_cycles_ >= stack_->rto_cycles / 4) {
      TcpTxSegment& seg = retx_queue_.front();
      std::uint32_t seg_end = seg.seq + seg.len;
      std::uint32_t end = SeqLt(snd_nxt_, seg_end) ? snd_nxt_ : seg_end;
      if (SeqLt(snd_una_, end)) {
        tlp_probe_sent_ = true;
        ++tcp_stats_.tlp_probes;
        ++tcp_stats_.retransmissions;  // a probe IS a data retransmission
        EmitRetained(seg, snd_una_, end - snd_una_, kTcpAck, /*retransmit=*/true);
      }
    }
    return;
  }
  // Go-back-N with scoreboard holes: re-burst the retained netbufs covering
  // [snd_una_, snd_nxt_), skipping SACKed segments. Zero payload copies —
  // the buffers were filled once, in Send().
  ++tcp_stats_.retransmissions;
  ++tcp_stats_.rto_retransmits;
  if (stack_->tcp_modern) {
    // RFC 5681 timeout response: remember half the flight, collapse cwnd to
    // one segment (slow start rebuilds it), and back the timer off
    // exponentially until an ACK shows forward progress.
    std::uint32_t flight = snd_nxt_ - snd_una_;
    std::uint32_t floor = 2 * kMss;
    ssthresh_ = flight / 2 > floor ? flight / 2 : floor;
    cwnd_ = kMss;
    in_fast_recovery_ = false;
    if (rto_backoff_ < stack_->rto_backoff_cap) {
      rto_backoff_ *= 2;
    }
  }
  if (!RetransmitWindow(/*first_unacked_only=*/false) && fin_sent_) {
    EmitSegment(kTcpFin | kTcpAck, snd_nxt_ - 1);
  }
}

bool TcpSocket::RetransmitWindow(bool first_unacked_only) {
  bool resent = false;
  for (TcpTxSegment& seg : retx_queue_) {
    std::uint32_t seg_end = seg.seq + seg.len;
    if (!SeqLt(snd_una_, seg_end)) {
      continue;  // head segment partially acked ranges below snd_una_
    }
    if (!SeqLt(seg.seq, snd_nxt_)) {
      break;  // never sent; Output owns it
    }
    if (seg.sacked) {
      // The peer already holds these bytes — the scoreboard turns the
      // go-back-N re-burst into a holes-only re-burst, and points fast
      // retransmit at the first real hole.
      ++tcp_stats_.sack_rexmit_segments;
      continue;
    }
    std::uint32_t from = SeqLt(seg.seq, snd_una_) ? snd_una_ : seg.seq;
    std::uint32_t end = SeqLt(snd_nxt_, seg_end) ? snd_nxt_ : seg_end;
    if (SeqLt(from, end)) {
      EmitRetained(seg, from, end - from, kTcpAck, /*retransmit=*/true);
      resent = true;
    }
    if (first_unacked_only && resent) {
      break;
    }
  }
  return resent;
}

void TcpSocket::ReleaseAcked(std::uint32_t ack) {
  while (!retx_queue_.empty()) {
    TcpTxSegment& seg = retx_queue_.front();
    if (!SeqLe(seg.seq + seg.len, ack)) {
      break;  // partial ACK inside this segment: keep it for retransmission
    }
    send_buffered_ -= seg.len;
    netif_->FreeTxBuf(seg.nb);  // release the queue's reference
    retx_queue_.pop_front();
  }
}

void TcpSocket::UpdateSendWindow(const TcpHeader& hdr) {
  // The single place the peer's 16-bit window field becomes snd_wnd_ bytes.
  // RFC 7323: the shift never applies to a segment carrying SYN — the scale
  // is negotiated inside unscaled windows.
  if ((hdr.flags & kTcpSyn) != 0) {
    snd_wnd_ = hdr.window;
  } else {
    snd_wnd_ = static_cast<std::uint32_t>(hdr.window) << snd_wscale_;
  }
}

void TcpSocket::OnAckProgress(std::uint32_t acked_bytes, std::uint32_t ack) {
  rto_backoff_ = 1;  // forward progress: the exponential backoff resets
  tlp_probe_sent_ = false;  // and the tail-loss probe re-arms
  // Forward ACK restarts the retransmission timer for whatever remains in
  // flight (RFC 6298 5.3) — the deadline times the OLDEST unacked data from
  // the most recent evidence the path is moving, not from its original send.
  rtx_epoch_cycles_ = stack_->clock()->cycles();
  if (!stack_->tcp_modern) {
    return;
  }
  if (in_fast_recovery_) {
    if (SeqLt(ack, recover_)) {
      // NewReno partial ACK: the first hole is repaired but more were lost
      // in the same window. Retransmit the next hole immediately, deflate
      // cwnd by the amount ACKed (plus one MSS back for the segment that
      // left the network), and stay in recovery until |recover_| is covered.
      std::uint32_t deflate = acked_bytes > kMss ? acked_bytes - kMss : 0;
      cwnd_ = cwnd_ > deflate + kMss ? cwnd_ - deflate : kMss;
      RetransmitWindow(/*first_unacked_only=*/true);
      return;
    }
    // Full ACK: everything outstanding at recovery entry is covered.
    // Deflate to ssthresh and resume congestion avoidance.
    cwnd_ = ssthresh_;
    in_fast_recovery_ = false;
    return;
  }
  if (cwnd_ < ssthresh_) {
    // Slow start: one MSS per ACK, ACK-counting capped to the bytes it
    // actually covered (delayed ACKs grow byte-accurately, RFC 3465 style).
    cwnd_ += acked_bytes < kMss ? acked_bytes : kMss;
  } else {
    // Congestion avoidance: ~one MSS per RTT.
    std::uint32_t inc = kMss * kMss / cwnd_;
    cwnd_ += inc > 0 ? inc : 1;
  }
  // cwnd beyond the send buffer can never matter; keep the number readable.
  if (cwnd_ > send_cap_) {
    cwnd_ = static_cast<std::uint32_t>(send_cap_);
  }
}

void TcpSocket::OnDupAck() {
  ++tcp_stats_.dup_acks;
  ++dup_ack_count_;
  if (!stack_->tcp_modern) {
    // Legacy: trigger on every third dup ACK, counter resets.
    if (dup_ack_count_ >= 3) {
      dup_ack_count_ = 0;
      ++tcp_stats_.retransmissions;
      if (fin_sent_ && retx_queue_.empty()) {
        EmitSegment(kTcpFin | kTcpAck, snd_una_);
      } else {
        RetransmitWindow(/*first_unacked_only=*/true);
      }
    }
    return;
  }
  // Tail-loss probe feedback: the probe re-sent the highest in-flight
  // segment, so the very next dup ACK tells us where it landed. If that
  // tail is now SACKed while the cumulative ACK still points at a hole,
  // every unsacked segment below it is lost — there will never be three
  // dup ACKs (the tail was the last data the peer will see), so waiting
  // for the classic threshold means waiting for the RTO the probe exists
  // to avoid. Enter recovery off this single ACK.
  bool tail_sacked_behind_hole = false;
  if (tlp_probe_sent_ && !in_fast_recovery_ && dup_ack_count_ < 3) {
    for (auto it = retx_queue_.rbegin(); it != retx_queue_.rend(); ++it) {
      if (!SeqLt(it->seq, snd_nxt_)) {
        continue;  // queued behind cwnd, never transmitted
      }
      tail_sacked_behind_hole = it->sacked;
      break;
    }
  }
  if (!in_fast_recovery_ && (dup_ack_count_ == 3 || tail_sacked_behind_hole)) {
    // Fast retransmit + fast recovery entry (RFC 6582): halve the flight
    // into ssthresh, retransmit the first hole from the retained queue
    // (no copy), and inflate cwnd by the three segments the dup ACKs prove
    // have left the network.
    std::uint32_t flight = snd_nxt_ - snd_una_;
    std::uint32_t floor = 2 * kMss;
    ssthresh_ = flight / 2 > floor ? flight / 2 : floor;
    cwnd_ = ssthresh_ + 3 * kMss;
    in_fast_recovery_ = true;
    recover_ = snd_nxt_;
    ++tcp_stats_.retransmissions;
    ++tcp_stats_.fast_retransmits;
    if (fin_sent_ && retx_queue_.empty()) {
      EmitSegment(kTcpFin | kTcpAck, snd_una_);
    } else {
      RetransmitWindow(/*first_unacked_only=*/true);
    }
  } else if (in_fast_recovery_) {
    // Each further dup ACK means another segment left the network: inflate
    // so Output() may clock out new data while the hole repairs.
    cwnd_ += kMss;
  }
}

void TcpSocket::ApplySackBlocks(const TcpHeader& hdr) {
  if (!sack_enabled_ || hdr.sack_count == 0) {
    return;
  }
  // Whole-segment scoreboard: a retained segment is sacked when one block
  // covers it entirely. Segments are MSS-cut at Send() time and the peer
  // reassembles ranges from those same segments, so partial coverage only
  // happens across block boundaries — the next ACK's grown block gets it.
  for (TcpTxSegment& seg : retx_queue_) {
    if (seg.sacked) {
      continue;
    }
    std::uint32_t seg_end = seg.seq + seg.len;
    for (std::uint8_t i = 0; i < hdr.sack_count; ++i) {
      if (SeqLe(hdr.sacks[i].start, seg.seq) && SeqLe(seg_end, hdr.sacks[i].end)) {
        seg.sacked = true;
        break;
      }
    }
  }
}

bool TcpSocket::QueueOutOfOrder(std::uint32_t seq,
                                std::span<const std::uint8_t> payload) {
  if (payload.empty() || payload.size() > RecvSpace()) {
    return false;
  }
  std::uint32_t end = seq + static_cast<std::uint32_t>(payload.size());
  // Duplicate of a range already queued (an OOO retransmission): nothing to
  // store, but it IS held — report success so the caller re-ACKs with the
  // SACK block instead of counting a drop.
  for (const OooRange& r : ooo_ranges_) {
    std::uint32_t r_end = r.seq + static_cast<std::uint32_t>(r.data.size());
    if (SeqLe(r.seq, seq) && SeqLe(end, r_end)) {
      // Even a duplicate is "the most recently received segment" for SACK
      // ordering — a tail-loss probe's echo must lead the next ACK's blocks.
      last_ooo_seq_ = seq;
      return true;
    }
    // Partial overlap never happens between the MSS-cut segments both ends
    // exchange; drop odd wire data rather than splice.
    if (SeqLt(seq, r_end) && SeqLt(r.seq, end)) {
      return false;
    }
  }
  auto it = ooo_ranges_.begin();
  while (it != ooo_ranges_.end() && SeqLt(it->seq, seq)) {
    ++it;
  }
  // Exactly-adjacent segments coalesce in place: a 20-segment OOO burst
  // behind one hole is ONE range, not twenty. Without this the bounded list
  // overflows under a deep flight (kMaxOooRanges is 8, a 32K window is 23
  // segments) and everything past the cap is silently re-dropped — worse,
  // the SACK blocks stop covering the newest data, which is exactly the
  // evidence loss recovery keys off.
  bool merged = false;
  if (it != ooo_ranges_.begin()) {
    auto prev = std::prev(it);
    if (prev->seq + static_cast<std::uint32_t>(prev->data.size()) == seq) {
      prev->data.insert(prev->data.end(), payload.begin(), payload.end());
      // Bridged the gap to the successor too? Splice it in.
      if (it != ooo_ranges_.end() && end == it->seq) {
        prev->data.insert(prev->data.end(), it->data.begin(), it->data.end());
        ooo_ranges_.erase(it);
      }
      merged = true;
    }
  }
  if (!merged && it != ooo_ranges_.end() && end == it->seq) {
    it->seq = seq;
    it->data.insert(it->data.begin(), payload.begin(), payload.end());
    merged = true;
  }
  if (!merged) {
    if (ooo_ranges_.size() >= kMaxOooRanges) {
      return false;
    }
    OooRange range;
    range.seq = seq;
    range.data.assign(payload.begin(), payload.end());
    ooo_ranges_.insert(it, std::move(range));
  }
  ooo_buffered_ += payload.size();
  last_ooo_seq_ = seq;
  ++tcp_stats_.ooo_queued;
  return true;
}

void TcpSocket::DrainOutOfOrder() {
  while (!ooo_ranges_.empty() && SeqLe(ooo_ranges_.front().seq, rcv_nxt_)) {
    OooRange& r = ooo_ranges_.front();
    std::uint32_t r_end = r.seq + static_cast<std::uint32_t>(r.data.size());
    if (SeqLt(rcv_nxt_, r_end)) {
      // The bytes were already charged against RecvSpace while queued, so
      // moving them into recv_buf_ cannot overflow the cap.
      std::size_t skip = rcv_nxt_ - r.seq;  // 0 unless a retransmit overlapped
      recv_buf_.insert(recv_buf_.end(),
                       r.data.begin() + static_cast<std::ptrdiff_t>(skip),
                       r.data.end());
      rcv_nxt_ = r_end;
    }
    ooo_buffered_ -= r.data.size();
    ooo_ranges_.erase(ooo_ranges_.begin());
  }
}

void TcpSocket::NoteAckOwed(std::size_t payload_bytes) {
  if (!stack_->tcp_modern) {
    AckNow();  // legacy: an ACK per in-order arrival
    return;
  }
  if (!delack_pending_) {
    delack_pending_ = true;
    delack_deadline_ = stack_->clock()->cycles() + stack_->delack_cycles;
  }
  delack_bytes_ += payload_bytes;
  if (delack_bytes_ >= 2 * static_cast<std::size_t>(kMss)) {
    AckNow();  // RFC 1122: an ACK at least every second full-sized segment
  } else {
    ++tcp_stats_.acks_coalesced;
  }
}

void TcpSocket::AckNow() {
  // EmitSegment clears the pending/owed state (the segment carries rcv_nxt_).
  EmitSegment(kTcpAck, snd_nxt_);
}

void TcpSocket::FlushDelayedAck() {
  if (delack_pending_) {
    AckNow();
  }
}

void TcpSocket::OnSegment(std::uint16_t rx_queue, const TcpHeader& hdr,
                          std::span<const std::uint8_t> payload) {
  ++tcp_stats_.segments_received;
  last_rx_queue_ = rx_queue;
  if ((hdr.flags & kTcpRst) != 0) {
    // Connection abort: release the retained TX netbufs immediately (a
    // zombie with 64KB queued would pin ~47 pool buffers until stack
    // teardown) and reclaim the 4-tuple so new connections can use it. The
    // dispatch path holds a shared_ptr, so self-removal is safe; the app
    // still observes the reset through failed().
    reset_ = true;
    EnterState(TcpState::kClosed);
    ReleaseAllSegments();
    RaiseEvent(kEvtErr | kEvtHup);  // hard error edge: wake any multiplexer
    stack_->RemoveConnection(this);
    return;
  }

  // --- handshake states ---
  if (state_ == TcpState::kSynSent) {
    if ((hdr.flags & (kTcpSyn | kTcpAck)) == (kTcpSyn | kTcpAck) &&
        hdr.ack == snd_nxt_) {
      rcv_nxt_ = hdr.seq + 1;
      snd_una_ = hdr.ack;
      // Option negotiation completes here: each extension is on only when
      // both SYNs carried it. A plain-header peer degrades the connection
      // to the classic 64KB / cumulative-ACK behavior.
      if (rcv_wscale_offer_ >= 0 && hdr.wscale >= 0) {
        snd_wscale_ = hdr.wscale;
        rcv_wscale_ = rcv_wscale_offer_;
      }
      sack_enabled_ = sack_offered_ && hdr.sack_permitted;
      if (hdr.mss != 0) {
        peer_mss_ = hdr.mss;
      }
      UpdateSendWindow(hdr);
      EnterState(TcpState::kEstablished);
      RaiseEvent(kEvtWritable);  // connect completed: the socket can send now
      EmitSegment(kTcpAck, snd_nxt_);
      Output();
    }
    return;
  }
  if (state_ == TcpState::kSynRcvd) {
    if ((hdr.flags & kTcpAck) != 0 && hdr.ack == snd_nxt_) {
      snd_una_ = hdr.ack;
      UpdateSendWindow(hdr);
      EnterState(TcpState::kEstablished);
      stack_->NotifyAccepted(this);
      // Fall through: the ACK may carry data.
    } else {
      return;
    }
  }

  // --- ACK processing ---
  const bool send_was_full = send_space() == 0;
  if ((hdr.flags & kTcpAck) != 0) {
    // SACK scoreboard first: a dup ACK's blocks must be marked before the
    // fast-retransmit they trigger picks its hole.
    ApplySackBlocks(hdr);
    if (SeqLt(snd_una_, hdr.ack) && SeqLe(hdr.ack, snd_nxt_)) {
      // Cumulative ACK: release fully-covered segments back to the pool.
      // Sequence-range accounting per segment — the FIN's sequence slot
      // cannot skew a byte count here (the old deque arithmetic underflowed
      // once a FIN was in flight).
      std::uint32_t acked_bytes = hdr.ack - snd_una_;
      ReleaseAcked(hdr.ack);
      snd_una_ = hdr.ack;
      dup_ack_count_ = 0;
      OnAckProgress(acked_bytes, hdr.ack);
      if (send_was_full && send_space() > 0) {
        // Send-window reopen edge: a writer parked on a full send buffer
        // (Send() accepting 0) can make progress again.
        RaiseEvent(kEvtWritable);
      }
      // FIN fully acknowledged: advance teardown.
      if (fin_sent_ && snd_una_ == snd_nxt_) {
        if (state_ == TcpState::kFinWait1) {
          EnterState(TcpState::kFinWait2);
        } else if (state_ == TcpState::kLastAck) {
          EnterState(TcpState::kClosed);
          stack_->RemoveConnection(this);
        } else if (state_ == TcpState::kClosing) {
          EnterState(TcpState::kTimeWait);
          time_wait_polls_left_ = stack_->time_wait_poll_budget;
        }
      }
    } else if (hdr.ack == snd_una_ && SeqLt(snd_una_, snd_nxt_) && payload.empty()) {
      OnDupAck();
    }
    UpdateSendWindow(hdr);
  }

  // --- payload ---
  const bool was_readable = readable();
  if (!payload.empty()) {
    if (hdr.seq == rcv_nxt_) {
      std::size_t space = RecvSpace();
      std::size_t n = payload.size() < space ? payload.size() : space;
      recv_buf_.insert(recv_buf_.end(), payload.begin(),
                       payload.begin() + static_cast<std::ptrdiff_t>(n));
      rcv_nxt_ += static_cast<std::uint32_t>(n);
      bool filled_hole = false;
      if (!ooo_ranges_.empty()) {
        std::size_t before = ooo_ranges_.size();
        DrainOutOfOrder();
        filled_hole = ooo_ranges_.size() != before;
      }
      if (filled_hole || n < payload.size()) {
        // A repaired hole (RFC 5681: ACK immediately so recovery sees the
        // jump) or a full receive buffer (the cut tail will be
        // retransmitted; tell the peer the window now) must not wait.
        AckNow();
      } else {
        NoteAckOwed(n);
      }
    } else if (SeqLt(hdr.seq, rcv_nxt_)) {
      // Old retransmission; re-ACK immediately so the peer advances.
      AckNow();
    } else {
      // Above-window sequence: queue for reassembly (modern) and answer
      // with an immediate dup ACK whose SACK blocks name the ranges held —
      // the sender's fast retransmit re-bursts only the hole.
      if (!stack_->tcp_modern || !QueueOutOfOrder(hdr.seq, payload)) {
        ++tcp_stats_.out_of_order_dropped;
      }
      AckNow();
    }
  }

  // --- FIN ---
  if ((hdr.flags & kTcpFin) != 0 && hdr.seq == rcv_nxt_) {
    rcv_nxt_ += 1;
    fin_received_ = true;
    // Orderly-shutdown edge. Data already queued stays readable: consumers
    // drain it first and only then observe the EOF (Recv() returning 0).
    RaiseEvent(kEvtHup);
    if (state_ == TcpState::kEstablished) {
      EnterState(TcpState::kCloseWait);
    } else if (state_ == TcpState::kFinWait1) {
      EnterState(TcpState::kClosing);
    } else if (state_ == TcpState::kFinWait2) {
      // Linger in TIME_WAIT (2MSL-equivalent Poll budget) so a retransmitted
      // FIN — the peer never saw our final ACK — still finds the connection
      // and gets a fresh ACK instead of a RST.
      EnterState(TcpState::kTimeWait);
      time_wait_polls_left_ = stack_->time_wait_poll_budget;
      if (!was_readable && readable()) {
        RaiseEvent(kEvtReadable);
      }
      AckNow();
      return;
    }
    AckNow();  // a FIN is never delay-ACKed
  } else if ((hdr.flags & kTcpFin) != 0 && SeqLt(hdr.seq, rcv_nxt_)) {
    // Retransmitted FIN: our final ACK was lost. Re-ACK, and restart the
    // TIME_WAIT linger so the re-ACK itself gets the same grace period.
    if (state_ == TcpState::kTimeWait) {
      time_wait_polls_left_ = stack_->time_wait_poll_budget;
    }
    AckNow();
  }

  if (!was_readable && readable()) {
    RaiseEvent(kEvtReadable);  // empty -> readable (data or EOF) transition
  }
  Output();
}

}  // namespace uknet
