// TCP state machine: connection setup/teardown, sliding-window transfer,
// retransmission. Invariants the tests lean on:
//  * send_buf_ front always corresponds to snd_una_
//  * rcv_nxt_ is the next expected byte; out-of-order segments are dropped
//    (the wire delivers in order, so only loss reorders — retransmit covers it)
//  * a segment is ACKed on every receive that changes rcv_nxt_ or on FIN.
#include <cstring>

#include "uknet/stack.h"

namespace uknet {

const char* TcpStateName(TcpState s) {
  switch (s) {
    case TcpState::kClosed: return "CLOSED";
    case TcpState::kListen: return "LISTEN";
    case TcpState::kSynSent: return "SYN_SENT";
    case TcpState::kSynRcvd: return "SYN_RCVD";
    case TcpState::kEstablished: return "ESTABLISHED";
    case TcpState::kFinWait1: return "FIN_WAIT_1";
    case TcpState::kFinWait2: return "FIN_WAIT_2";
    case TcpState::kCloseWait: return "CLOSE_WAIT";
    case TcpState::kLastAck: return "LAST_ACK";
    case TcpState::kClosing: return "CLOSING";
    case TcpState::kTimeWait: return "TIME_WAIT";
  }
  return "?";
}

std::int64_t TcpSocket::Send(std::span<const std::uint8_t> data) {
  if (reset_) {
    return ukarch::Raw(ukarch::Status::kConnReset);
  }
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait &&
      state_ != TcpState::kSynSent && state_ != TcpState::kSynRcvd) {
    return ukarch::Raw(ukarch::Status::kPipe);
  }
  if (fin_queued_) {
    return ukarch::Raw(ukarch::Status::kPipe);
  }
  std::size_t space = kSendBufCap - send_buf_.size();
  std::size_t n = data.size() < space ? data.size() : space;
  send_buf_.insert(send_buf_.end(), data.begin(), data.begin() + static_cast<std::ptrdiff_t>(n));
  Output();
  return static_cast<std::int64_t>(n);
}

std::int64_t TcpSocket::Recv(std::span<std::uint8_t> out) {
  if (reset_) {
    return ukarch::Raw(ukarch::Status::kConnReset);
  }
  if (recv_buf_.empty()) {
    if (fin_received_) {
      return 0;  // orderly EOF
    }
    return ukarch::Raw(ukarch::Status::kAgain);
  }
  bool was_zero_window = AdvertisedWindow() == 0;
  std::size_t n = out.size() < recv_buf_.size() ? out.size() : recv_buf_.size();
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = recv_buf_.front();
    recv_buf_.pop_front();
  }
  if (was_zero_window && AdvertisedWindow() > 0 && state_ == TcpState::kEstablished) {
    // Window update so the stalled sender resumes.
    EmitSegment(kTcpAck, snd_nxt_);
  }
  return static_cast<std::int64_t>(n);
}

void TcpSocket::Close() {
  switch (state_) {
    case TcpState::kEstablished:
    case TcpState::kSynRcvd:
      fin_queued_ = true;
      EnterState(TcpState::kFinWait1);
      Output();
      break;
    case TcpState::kCloseWait:
      fin_queued_ = true;
      EnterState(TcpState::kLastAck);
      Output();
      break;
    case TcpState::kSynSent:
    case TcpState::kListen:
      EnterState(TcpState::kClosed);
      break;
    default:
      break;
  }
}

void TcpSocket::EmitSegment(std::uint8_t flags, std::uint32_t seq) {
  TcpHeader hdr;
  hdr.src_port = local_port_;
  hdr.dst_port = remote_port_;
  hdr.seq = seq;
  hdr.ack = rcv_nxt_;
  hdr.flags = flags;
  hdr.window = AdvertisedWindow();
  ++tcp_stats_.segments_sent;
  stack_->SendTcpHeaderOnly(netif_, remote_ip_, hdr);
  last_send_cycles_ = stack_->clock()->cycles();
}

void TcpSocket::EmitData(std::uint8_t flags, std::uint32_t seq, std::uint32_t off,
                         std::uint32_t take) {
  TcpHeader hdr;
  hdr.src_port = local_port_;
  hdr.dst_port = remote_port_;
  hdr.seq = seq;
  hdr.ack = rcv_nxt_;
  hdr.flags = flags;
  hdr.window = AdvertisedWindow();
  uknetdev::NetBuf* nb = netif_->AllocTxBuf(kTcpHdrBytes);
  if (nb == nullptr) {
    return;  // pool dry: drop; the retransmission timer recovers
  }
  ukplat::MemRegion* mem = stack_->mem();
  std::uint8_t* body = nb->Append(*mem, take);
  if (body == nullptr) {
    netif_->FreeTxBuf(nb);
    return;
  }
  // Copy straight from the send deque window into the wire buffer — the one
  // unavoidable copy on the TCP TX path (the deque survives for retransmit).
  for (std::uint32_t i = 0; i < take; ++i) {
    body[i] = send_buf_[off + i];
  }
  std::uint8_t* hdr_at = nb->PrependHeader(*mem, kTcpHdrBytes);
  if (hdr_at == nullptr) {
    netif_->FreeTxBuf(nb);
    return;
  }
  hdr.Serialize(hdr_at, netif_->ip(), remote_ip_, std::span(body, take));
  ++tcp_stats_.segments_sent;
  netif_->SendIpBuf(remote_ip_, kIpProtoTcp, nb);
  last_send_cycles_ = stack_->clock()->cycles();
}

void TcpSocket::Output() {
  if (state_ == TcpState::kSynSent || state_ == TcpState::kSynRcvd ||
      state_ == TcpState::kListen || state_ == TcpState::kClosed) {
    return;  // handshake segments are emitted by the state machine
  }
  // Bytes in flight and window-limited budget.
  std::uint32_t in_flight = snd_nxt_ - snd_una_;
  std::uint32_t unsent =
      static_cast<std::uint32_t>(send_buf_.size()) - in_flight;
  while (unsent > 0 && in_flight < snd_wnd_) {
    std::uint32_t budget = snd_wnd_ - in_flight;
    std::uint32_t take = unsent < budget ? unsent : budget;
    if (take > kMss) {
      take = kMss;
    }
    std::uint8_t flags = kTcpAck;
    if (take == unsent) {
      flags |= kTcpPsh;
    }
    EmitData(flags, snd_nxt_, in_flight, take);
    snd_nxt_ += take;
    in_flight += take;
    unsent -= take;
  }
  // Flush a queued FIN once all data is out.
  if (fin_queued_ && !fin_sent_ && unsent == 0) {
    EmitSegment(kTcpFin | kTcpAck, snd_nxt_);
    snd_nxt_ += 1;  // FIN consumes a sequence number
    fin_sent_ = true;
  }
}

void TcpSocket::CheckTimer() {
  bool has_unacked = SeqLt(snd_una_, snd_nxt_);
  if (!has_unacked) {
    return;
  }
  std::uint64_t now = stack_->clock()->cycles();
  if (now - last_send_cycles_ < stack_->rto_cycles) {
    return;
  }
  // Retransmit from snd_una_ (go-back-N, one window).
  ++tcp_stats_.retransmissions;
  std::uint32_t in_flight = snd_nxt_ - snd_una_;
  std::uint32_t data_in_flight =
      in_flight - ((fin_sent_ && in_flight > 0) ? 1u : 0u);
  if (data_in_flight > send_buf_.size()) {
    data_in_flight = static_cast<std::uint32_t>(send_buf_.size());
  }
  std::uint32_t off = 0;
  std::uint32_t seq = snd_una_;
  if (data_in_flight == 0 && fin_sent_) {
    EmitSegment(kTcpFin | kTcpAck, seq);
    return;
  }
  while (off < data_in_flight) {
    std::uint32_t take = data_in_flight - off;
    if (take > kMss) {
      take = kMss;
    }
    EmitData(kTcpAck, seq, off, take);
    off += take;
    seq += take;
  }
}

void TcpSocket::OnSegment(const TcpHeader& hdr, std::span<const std::uint8_t> payload) {
  ++tcp_stats_.segments_received;
  if ((hdr.flags & kTcpRst) != 0) {
    reset_ = true;
    EnterState(TcpState::kClosed);
    return;
  }

  // --- handshake states ---
  if (state_ == TcpState::kSynSent) {
    if ((hdr.flags & (kTcpSyn | kTcpAck)) == (kTcpSyn | kTcpAck) &&
        hdr.ack == snd_nxt_) {
      rcv_nxt_ = hdr.seq + 1;
      snd_una_ = hdr.ack;
      snd_wnd_ = hdr.window;
      EnterState(TcpState::kEstablished);
      EmitSegment(kTcpAck, snd_nxt_);
      Output();
    }
    return;
  }
  if (state_ == TcpState::kSynRcvd) {
    if ((hdr.flags & kTcpAck) != 0 && hdr.ack == snd_nxt_) {
      snd_una_ = hdr.ack;
      snd_wnd_ = hdr.window;
      EnterState(TcpState::kEstablished);
      stack_->NotifyAccepted(this);
      // Fall through: the ACK may carry data.
    } else {
      return;
    }
  }

  // --- ACK processing ---
  if ((hdr.flags & kTcpAck) != 0) {
    if (SeqLt(snd_una_, hdr.ack) && SeqLe(hdr.ack, snd_nxt_)) {
      std::uint32_t acked = hdr.ack - snd_una_;
      std::uint32_t data_acked = acked;
      // FIN occupies the last sequence slot.
      if (fin_sent_ && hdr.ack == snd_nxt_) {
        data_acked -= 1;
      }
      for (std::uint32_t i = 0; i < data_acked && !send_buf_.empty(); ++i) {
        send_buf_.pop_front();
      }
      snd_una_ = hdr.ack;
      dup_ack_count_ = 0;
      // FIN fully acknowledged: advance teardown.
      if (fin_sent_ && snd_una_ == snd_nxt_) {
        if (state_ == TcpState::kFinWait1) {
          EnterState(TcpState::kFinWait2);
        } else if (state_ == TcpState::kLastAck) {
          EnterState(TcpState::kClosed);
          stack_->RemoveConnection(this);
        } else if (state_ == TcpState::kClosing) {
          EnterState(TcpState::kTimeWait);
          stack_->RemoveConnection(this);
        }
      }
    } else if (hdr.ack == snd_una_ && SeqLt(snd_una_, snd_nxt_) && payload.empty()) {
      ++tcp_stats_.dup_acks;
      if (++dup_ack_count_ >= 3) {
        dup_ack_count_ = 0;
        ++tcp_stats_.retransmissions;
        // Fast retransmit of the first unacked segment.
        std::uint32_t take = snd_nxt_ - snd_una_;
        bool fin_only = fin_sent_ && take == 1 && send_buf_.empty();
        if (fin_only) {
          EmitSegment(kTcpFin | kTcpAck, snd_una_);
        } else {
          if (take > kMss) {
            take = kMss;
          }
          if (take > send_buf_.size()) {
            take = static_cast<std::uint32_t>(send_buf_.size());
          }
          EmitData(kTcpAck, snd_una_, 0, take);
        }
      }
    }
    snd_wnd_ = hdr.window;
  }

  // --- payload ---
  bool advanced = false;
  if (!payload.empty()) {
    if (hdr.seq == rcv_nxt_) {
      std::size_t space = kRecvBufCap - recv_buf_.size();
      std::size_t n = payload.size() < space ? payload.size() : space;
      recv_buf_.insert(recv_buf_.end(), payload.begin(),
                       payload.begin() + static_cast<std::ptrdiff_t>(n));
      rcv_nxt_ += static_cast<std::uint32_t>(n);
      advanced = true;
    } else if (SeqLt(hdr.seq, rcv_nxt_)) {
      // Old retransmission; re-ACK so the peer advances.
      advanced = true;
    } else {
      ++tcp_stats_.out_of_order_dropped;
      advanced = true;  // send dup ACK to trigger fast retransmit
    }
  }

  // --- FIN ---
  if ((hdr.flags & kTcpFin) != 0 && hdr.seq == rcv_nxt_) {
    rcv_nxt_ += 1;
    fin_received_ = true;
    advanced = true;
    if (state_ == TcpState::kEstablished) {
      EnterState(TcpState::kCloseWait);
    } else if (state_ == TcpState::kFinWait1) {
      EnterState(TcpState::kClosing);
    } else if (state_ == TcpState::kFinWait2) {
      EnterState(TcpState::kTimeWait);
      EmitSegment(kTcpAck, snd_nxt_);
      stack_->RemoveConnection(this);
      return;
    }
  }

  if (advanced) {
    EmitSegment(kTcpAck, snd_nxt_);
  }
  Output();
}

}  // namespace uknet
