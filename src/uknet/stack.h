// uknet/stack.h - the network stack (lwIP's role in the paper's stack).
//
// A deliberately small but real TCP/IP implementation: ARP resolution with a
// pending-packet queue, IPv4 with header checksums, ICMP echo, UDP sockets,
// and TCP with the full connect/accept handshake, cumulative ACKs, flow
// control from the peer's advertised window, retransmission on timeout and
// on triple duplicate ACKs, and graceful FIN teardown. Everything is polled
// (run-to-completion): NetStack::Poll() pumps interfaces and timers once,
// which is exactly how a single-core unikernel event loop drives lwIP.
//
// Stack metadata lives in host memory; packet buffers come from the netbuf
// pools in guest RAM, so the data path stays device-addressable end to end.
#ifndef UKNET_STACK_H_
#define UKNET_STACK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "ukalloc/allocator.h"
#include "ukarch/status.h"
#include "uknet/wire_format.h"
#include "uknetdev/netdev.h"
#include "ukplat/clock.h"
#include "ukplat/memregion.h"

namespace uknet {

class NetStack;

class NetIf {
 public:
  struct Config {
    Ip4Addr ip = 0;
    Ip4Addr netmask = 0xffffff00;
    Ip4Addr gateway = 0;
    std::uint32_t tx_pool_bufs = 256;
    std::uint32_t rx_pool_bufs = 256;
    std::uint32_t buf_size = 2048;
  };

  NetIf(NetStack* stack, uknetdev::NetDev* dev, ukplat::MemRegion* mem,
        ukalloc::Allocator* alloc, Config config);

  // Configures queues and pools and starts the device.
  ukarch::Status Init();

  Ip4Addr ip() const { return config_.ip; }
  uknetdev::MacAddr mac() const { return dev_->mac(); }
  uknetdev::NetDev* dev() { return dev_; }

  // Processes up to one RX burst; returns packets handled.
  std::size_t Poll();

  // Sends an IPv4 packet (header built here). May queue behind ARP.
  bool SendIp(Ip4Addr dst, std::uint8_t proto, std::span<const std::uint8_t> payload);

  void AddArpEntry(Ip4Addr ip, uknetdev::MacAddr mac) { arp_cache_[ip] = mac; }
  bool RouteMatches(Ip4Addr dst) const {
    return (dst & config_.netmask) == (config_.ip & config_.netmask);
  }

  struct IfStats {
    std::uint64_t arp_requests = 0;
    std::uint64_t arp_replies = 0;
    std::uint64_t ip_rx = 0;
    std::uint64_t ip_tx = 0;
    std::uint64_t rx_checksum_drops = 0;
    std::uint64_t pending_dropped = 0;
  };
  const IfStats& if_stats() const { return if_stats_; }

 private:
  friend class NetStack;

  bool SendEth(uknetdev::MacAddr dst, std::uint16_t ethertype,
               std::span<const std::uint8_t> payload);
  void HandleFrame(std::span<const std::uint8_t> frame);
  void HandleArp(std::span<const std::uint8_t> body);
  void HandleIp(std::span<const std::uint8_t> body);
  void SendArpRequest(Ip4Addr target);
  Ip4Addr NextHop(Ip4Addr dst) const {
    return RouteMatches(dst) || config_.gateway == 0 ? dst : config_.gateway;
  }

  NetStack* stack_;
  uknetdev::NetDev* dev_;
  ukplat::MemRegion* mem_;
  ukalloc::Allocator* alloc_;
  Config config_;
  std::unique_ptr<uknetdev::NetBufPool> tx_pool_;
  std::unique_ptr<uknetdev::NetBufPool> rx_pool_;
  std::map<Ip4Addr, uknetdev::MacAddr> arp_cache_;
  // Packets parked behind unresolved ARP: next-hop ip -> raw IP packets.
  std::map<Ip4Addr, std::vector<std::vector<std::uint8_t>>> arp_pending_;
  IfStats if_stats_;
  std::uint16_t ip_id_ = 1;
};

// ---- UDP -----------------------------------------------------------------------

struct Datagram {
  Ip4Addr src_ip = 0;
  std::uint16_t src_port = 0;
  std::vector<std::uint8_t> payload;
};

class UdpSocket {
 public:
  ukarch::Status Bind(std::uint16_t port);
  std::uint16_t local_port() const { return port_; }

  // Non-blocking. SendTo returns bytes sent or negative errno.
  std::int64_t SendTo(Ip4Addr dst, std::uint16_t dst_port,
                      std::span<const std::uint8_t> payload);
  // Returns a datagram if available.
  std::optional<Datagram> RecvFrom();
  bool readable() const { return !rx_.empty(); }
  std::size_t queued() const { return rx_.size(); }

  // Optional callback invoked on datagram arrival (event-loop integration).
  void SetRxCallback(std::function<void()> cb) { rx_cb_ = std::move(cb); }

 private:
  friend class NetStack;
  explicit UdpSocket(NetStack* stack) : stack_(stack) {}

  NetStack* stack_;
  std::uint16_t port_ = 0;
  bool explicitly_bound_ = false;
  std::deque<Datagram> rx_;
  std::function<void()> rx_cb_;
  static constexpr std::size_t kMaxQueue = 1024;
};

// ---- TCP -----------------------------------------------------------------------

enum class TcpState {
  kClosed, kListen, kSynSent, kSynRcvd, kEstablished,
  kFinWait1, kFinWait2, kCloseWait, kLastAck, kClosing, kTimeWait,
};
const char* TcpStateName(TcpState s);

class TcpSocket {
 public:
  TcpState state() const { return state_; }
  Ip4Addr remote_ip() const { return remote_ip_; }
  std::uint16_t remote_port() const { return remote_port_; }
  std::uint16_t local_port() const { return local_port_; }

  // Buffered, non-blocking send: returns bytes accepted (0 when the send
  // buffer is full) or negative errno when the connection cannot send.
  std::int64_t Send(std::span<const std::uint8_t> data);
  // Non-blocking receive: bytes read, -EAGAIN when empty, 0 once the peer
  // closed and all data was drained.
  std::int64_t Recv(std::span<std::uint8_t> out);

  bool readable() const { return !recv_buf_.empty() || fin_received_; }
  std::size_t send_space() const { return kSendBufCap - send_buf_.size(); }
  bool connected() const { return state_ == TcpState::kEstablished; }
  bool failed() const { return reset_; }

  // Graceful close (FIN). Data already in the send buffer is flushed first.
  void Close();

  struct TcpStats {
    std::uint64_t segments_sent = 0;
    std::uint64_t segments_received = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t dup_acks = 0;
    std::uint64_t out_of_order_dropped = 0;
  };
  const TcpStats& tcp_stats() const { return tcp_stats_; }

  static constexpr std::size_t kSendBufCap = 64 * 1024;
  static constexpr std::size_t kRecvBufCap = 64 * 1024;
  static constexpr std::uint32_t kMss = 1400;

 private:
  friend class NetStack;
  TcpSocket(NetStack* stack, NetIf* netif) : stack_(stack), netif_(netif) {}

  void OnSegment(const TcpHeader& hdr, std::span<const std::uint8_t> payload);
  void Output();            // transmit what window + buffer allow
  void CheckTimer();        // RTO-based retransmission
  void EmitSegment(std::uint8_t flags, std::uint32_t seq,
                   std::span<const std::uint8_t> payload);
  std::uint16_t AdvertisedWindow() const {
    std::size_t space = kRecvBufCap - recv_buf_.size();
    return static_cast<std::uint16_t>(space > 0xffff ? 0xffff : space);
  }
  void EnterState(TcpState s) { state_ = s; }

  NetStack* stack_;
  NetIf* netif_;
  TcpState state_ = TcpState::kClosed;
  Ip4Addr remote_ip_ = 0;
  std::uint16_t remote_port_ = 0;
  std::uint16_t local_port_ = 0;

  // Send side: bytes [0, in_flight) of send_buf_ are sent-but-unacked,
  // [in_flight, size) unsent. snd_una maps to send_buf_[0].
  std::uint32_t snd_una_ = 0;
  std::uint32_t snd_nxt_ = 0;
  std::uint32_t snd_wnd_ = 0;
  std::deque<std::uint8_t> send_buf_;
  bool fin_queued_ = false;
  bool fin_sent_ = false;

  std::uint32_t rcv_nxt_ = 0;
  std::deque<std::uint8_t> recv_buf_;
  bool fin_received_ = false;
  bool reset_ = false;

  std::uint64_t last_send_cycles_ = 0;
  std::uint32_t dup_ack_count_ = 0;
  std::uint32_t last_ack_seen_ = 0;

  TcpStats tcp_stats_;
};

class TcpListener {
 public:
  std::uint16_t port() const { return port_; }
  std::shared_ptr<TcpSocket> Accept();  // nullptr when queue empty
  std::size_t backlog() const { return accept_queue_.size(); }

 private:
  friend class NetStack;
  TcpListener(NetStack* stack, std::uint16_t port) : stack_(stack), port_(port) {}
  NetStack* stack_;
  std::uint16_t port_;
  std::deque<std::shared_ptr<TcpSocket>> accept_queue_;
};

// ---- the stack --------------------------------------------------------------------

class NetStack {
 public:
  NetStack(ukplat::MemRegion* mem, ukplat::Clock* clock, ukalloc::Allocator* alloc)
      : mem_(mem), clock_(clock), alloc_(alloc) {}

  // Interfaces.
  NetIf* AddInterface(uknetdev::NetDev* dev, NetIf::Config config);
  NetIf* RouteTo(Ip4Addr dst);

  // Sockets.
  std::shared_ptr<UdpSocket> UdpOpen();
  std::shared_ptr<TcpListener> TcpListen(std::uint16_t port);
  std::shared_ptr<TcpSocket> TcpConnect(Ip4Addr dst, std::uint16_t port);

  // ICMP echo client: sends a ping; replies are counted.
  bool Ping(Ip4Addr dst, std::uint16_t seq);
  std::uint64_t pings_answered() const { return pings_answered_; }

  // One pump: interface RX, TCP timers. Call in the application loop.
  void Poll();
  // Test helper: polls until |pred| or |max_iters| rounds.
  bool PollUntil(const std::function<bool()>& pred, int max_iters = 10000);

  ukplat::Clock* clock() { return clock_; }
  ukplat::MemRegion* mem() { return mem_; }

  // Retransmission timeout, virtual time. Exposed for loss tests.
  std::uint64_t rto_cycles = 720'000'000;  // 200 ms at 3.6 GHz

  struct StackStats {
    std::uint64_t udp_rx = 0;
    std::uint64_t udp_tx = 0;
    std::uint64_t tcp_rx = 0;
    std::uint64_t icmp_rx = 0;
    std::uint64_t no_socket_drops = 0;
    std::uint64_t rst_sent = 0;
  };
  const StackStats& stats() const { return stats_; }

 private:
  friend class NetIf;
  friend class UdpSocket;
  friend class TcpSocket;
  friend class TcpListener;

  struct ConnKey {
    std::uint16_t local_port;
    Ip4Addr remote_ip;
    std::uint16_t remote_port;
    auto operator<=>(const ConnKey&) const = default;
  };

  void HandleIpPacket(NetIf* netif, const Ip4Header& ip,
                      std::span<const std::uint8_t> payload);
  void HandleUdp(NetIf* netif, const Ip4Header& ip,
                 std::span<const std::uint8_t> payload);
  void HandleTcp(NetIf* netif, const Ip4Header& ip,
                 std::span<const std::uint8_t> payload);
  void HandleIcmp(NetIf* netif, const Ip4Header& ip,
                  std::span<const std::uint8_t> payload);
  void SendRst(NetIf* netif, const Ip4Header& ip, const TcpHeader& hdr,
               std::size_t payload_len);
  std::uint16_t AllocEphemeralPort();
  std::uint32_t NewIss();  // deterministic initial sequence numbers
  // Called by TcpSocket state transitions.
  void NotifyAccepted(TcpSocket* sock);
  void RemoveConnection(TcpSocket* sock);

  ukplat::MemRegion* mem_;
  ukplat::Clock* clock_;
  ukalloc::Allocator* alloc_;
  std::vector<std::unique_ptr<NetIf>> netifs_;
  std::map<std::uint16_t, std::shared_ptr<UdpSocket>> udp_ports_;
  std::map<std::uint16_t, std::shared_ptr<TcpListener>> tcp_listeners_;
  std::map<ConnKey, std::shared_ptr<TcpSocket>> tcp_conns_;
  std::uint16_t next_ephemeral_ = 49152;
  std::uint32_t iss_counter_ = 10'000;
  std::uint64_t pings_answered_ = 0;
  StackStats stats_;
};

}  // namespace uknet

#endif  // UKNET_STACK_H_
