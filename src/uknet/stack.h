// uknet/stack.h - the network stack (lwIP's role in the paper's stack).
//
// A deliberately small but real TCP/IP implementation: ARP resolution with a
// pending-packet queue, IPv4 with header checksums, ICMP echo, UDP sockets,
// and TCP with the full connect/accept handshake, cumulative ACKs, flow
// control from the peer's advertised window, retransmission on timeout and
// on triple duplicate ACKs, and graceful FIN teardown. Everything is polled
// (run-to-completion): NetStack::Poll() pumps interfaces and timers once,
// which is exactly how a single-core unikernel event loop drives lwIP.
//
// Stack metadata lives in host memory; packet buffers come from the netbuf
// pools in guest RAM, so the data path stays device-addressable end to end.
#ifndef UKNET_STACK_H_
#define UKNET_STACK_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "ukalloc/allocator.h"
#include "ukarch/status.h"
#include "uklock/rcu.h"
#include "uknet/wire_format.h"
#include "uknetdev/netdev.h"
#include "ukplat/clock.h"
#include "ukplat/memregion.h"
#include "uksched/scheduler.h"

namespace uknet {

class NetStack;

// Widest per-queue counter tracking the stack supports. Queues beyond this
// (no device here advertises close to it) share the last slot; the arrays are
// fixed-size so foreign-loop publishers never race a resize.
inline constexpr std::size_t kMaxQueueSlots = 16;
inline std::uint16_t QueueSlot(std::uint16_t queue) {
  return queue < kMaxQueueSlots ? queue
                                : static_cast<std::uint16_t>(kMaxQueueSlots - 1);
}

// ---- readiness events --------------------------------------------------------------
//
// One notification contract for the whole tree: sockets raise *edges* from
// the paths where state actually changes (demux pushes, ACKs that reopen the
// send buffer, FIN/RST teardown, accept-queue pushes), and consumers derive
// *level-triggered* readiness from the edge plus current socket state. The
// posix poll/epoll layer builds its interest lists on these sinks; the apps'
// event loop multiplexes many connections from one PollWait sleep on top.

using EventMask = std::uint32_t;
inline constexpr EventMask kEvtReadable = 1u << 0;    // data (or EOF) to read
inline constexpr EventMask kEvtWritable = 1u << 1;    // send buffer reopened
inline constexpr EventMask kEvtAcceptable = 1u << 2;  // accept queue non-empty
inline constexpr EventMask kEvtHup = 1u << 3;         // peer FIN received
inline constexpr EventMask kEvtErr = 1u << 4;         // reset / hard failure

// Edge sink registered per socket (SetEventSink). Raised from inside stack
// dispatch, so implementations must do wakeup-grade work only: record the
// edge and return — no socket calls back into the stack, no blocking.
// |token| is the opaque cookie the subscriber registered (posix uses the fd).
class SocketEventSink {
 public:
  virtual ~SocketEventSink() = default;
  virtual void OnSocketEvent(std::uint64_t token, EventMask events) = 0;
};

// Shared edge-source state every socket kind inherits: one registered sink,
// one opaque token, one Raise path (deliver to the sink, then bump the
// stack's event sequence so PollWait sleepers rescan). A socket with no sink
// costs nothing and perturbs no wakeup accounting.
class SocketEventSource {
 public:
  // Registers the readiness-edge sink (one per socket; nullptr detaches).
  void SetEventSink(SocketEventSink* sink, std::uint64_t token = 0) {
    sink_ = sink;
    sink_token_ = token;
  }

 protected:
  void Raise(NetStack* stack, EventMask events);  // defined in stack.cpp

 private:
  SocketEventSink* sink_ = nullptr;
  std::uint64_t sink_token_ = 0;
};

class NetIf {
 public:
  struct Config {
    Ip4Addr ip = 0;
    Ip4Addr netmask = 0xffffff00;
    Ip4Addr gateway = 0;
    // TOTAL pool budgets; split evenly across the configured queues so each
    // queue owns a private pool and no lock is needed on the hot path.
    std::uint32_t tx_pool_bufs = 256;
    std::uint32_t rx_pool_bufs = 256;
    std::uint32_t buf_size = 2048;
    // Desired RX/TX queue pairs; clamped to what the device advertises.
    std::uint16_t queues = 1;
  };

  NetIf(NetStack* stack, uknetdev::NetDev* dev, ukplat::MemRegion* mem,
        ukalloc::Allocator* alloc, Config config);
  ~NetIf();

  // Configures queues and pools and starts the device.
  ukarch::Status Init();

  Ip4Addr ip() const { return config_.ip; }
  uknetdev::MacAddr mac() const { return dev_->mac(); }
  uknetdev::NetDev* dev() { return dev_; }
  std::uint16_t queue_count() const { return nb_queues_; }
  // Pool introspection for tests and benches (zero-alloc assertions).
  const uknetdev::NetBufPool* tx_pool(std::uint16_t queue = 0) const {
    return queue < tx_pools_.size() ? tx_pools_[queue].get() : nullptr;
  }
  const uknetdev::NetBufPool* rx_pool(std::uint16_t queue = 0) const {
    return queue < rx_pools_.size() ? rx_pools_[queue].get() : nullptr;
  }

  // The TX queue a flow steers to: the symmetric RSS hash of the 4-tuple,
  // identical to the classification the device applies on RX — so the queue
  // that carries a flow's requests also carries its replies.
  std::uint16_t TxQueueFor(Ip4Addr remote_ip, std::uint16_t local_port,
                           std::uint16_t remote_port) const;

  // Processes one RX burst per queue (all queues). Returns packets handled.
  std::size_t Poll();
  // Processes up to one RX burst on a single queue: pulls the burst array off
  // the device, then classifies and dispatches every frame. Independent app
  // loops pump disjoint queues through this entry point; each loop touches
  // only its queue's rings and pools.
  std::size_t Poll(std::uint16_t queue);

  // ---- interrupt-driven idle ----------------------------------------------
  // Per-queue wait plumbing used by NetStack::PollWait: Arm/Disarm toggle the
  // device's RX interrupt line (out-of-range queues are ignored — a stack may
  // hold interfaces with different queue counts), and the interrupt handler
  // registered at Init wakes the stack's per-queue waiters. rx_wakeups(q)
  // counts handler fires: with storm avoidance it stays O(1) per burst.
  void ArmRx(std::uint16_t queue);
  void DisarmRx(std::uint16_t queue);
  std::uint64_t rx_wakeups(std::uint16_t queue = 0) const {
    return rx_wakeups_[QueueSlot(queue)].load(std::memory_order_relaxed);
  }

  // ---- zero-copy TX --------------------------------------------------------
  // The TX convention: a protocol layer allocates a netbuf whose headroom
  // reserves every header below it (device + Ethernet + IP + its own),
  // appends the application payload, prepends its own header in place, and
  // hands the buffer down. Each lower layer prepends its header into the
  // remaining headroom — the frame that reaches TxBurst was never copied.

  // Allocates a TX netbuf from |queue|'s pool, reserving device+Ethernet+IP
  // headroom plus |l4_header_bytes| for the caller's own header. nullptr when
  // the pool is dry (caller backs off; TCP retransmission or the app retries).
  uknetdev::NetBuf* AllocTxBuf(std::uint32_t l4_header_bytes = 0,
                               std::uint16_t queue = 0);
  // Returns an unsent TX netbuf to its pool.
  void FreeTxBuf(uknetdev::NetBuf* nb);

  // Zero-copy IPv4 send on |queue|: |nb| holds the L4 payload (with any L4
  // header already prepended in place); the IP and Ethernet headers are
  // prepended into its headroom here. Ownership always passes to the
  // interface: on ARP miss the buffer parks behind the resolution (with its
  // queue), on failure it is freed.
  bool SendIpBuf(Ip4Addr dst, std::uint8_t proto, uknetdev::NetBuf* nb,
                 std::uint16_t queue = 0);
  // Zero-copy Ethernet send: prepends the Ethernet header in place and
  // bursts the buffer to the device on |queue|. Takes ownership of |nb|.
  bool SendEthBuf(uknetdev::MacAddr dst, std::uint16_t ethertype,
                  uknetdev::NetBuf* nb, std::uint16_t queue = 0);
  // Batch TX: prepends Ethernet headers for all |cnt| buffers to the same
  // next hop and enqueues them in a single TxBurst on |queue|. Returns
  // packets queued; unsent buffers are freed. Takes ownership of the array.
  std::uint16_t SendEthBatch(uknetdev::MacAddr dst, std::uint16_t ethertype,
                             uknetdev::NetBuf** pkts, std::uint16_t cnt,
                             std::uint16_t queue = 0);
  // Batch IPv4 send to ONE destination: prepends each buffer's IP header in
  // place, resolves the next hop once, and hands the whole batch to a single
  // TxBurst (the UDP reply-flood path: N replies, one device doorbell).
  // Takes ownership of all |cnt| buffers. Returns packets accepted (sent or,
  // on an unresolved next hop, parked behind the ARP request); the rest are
  // freed.
  std::uint16_t SendIpBatch(Ip4Addr dst, std::uint8_t proto,
                            uknetdev::NetBuf** pkts, std::uint16_t cnt,
                            std::uint16_t queue = 0);

  // Copying compatibility shim over SendIpBuf for payloads that only exist
  // as a contiguous span (ICMP echo bodies, tests).
  bool SendIp(Ip4Addr dst, std::uint8_t proto, std::span<const std::uint8_t> payload,
              std::uint16_t queue = 0);

  void AddArpEntry(Ip4Addr ip, uknetdev::MacAddr mac) { arp_cache_[ip] = mac; }
  bool RouteMatches(Ip4Addr dst) const {
    return (dst & config_.netmask) == (config_.ip & config_.netmask);
  }

  // Snapshot type: if_stats() returns it BY VALUE so per-queue loops can bump
  // the live (atomic) counters while a reader aggregates.
  struct IfStats {
    std::uint64_t arp_requests = 0;
    std::uint64_t arp_replies = 0;
    std::uint64_t ip_rx = 0;
    std::uint64_t ip_tx = 0;
    std::uint64_t rx_checksum_drops = 0;
    std::uint64_t pending_dropped = 0;
  };
  IfStats if_stats() const {
    return IfStats{
        .arp_requests = if_stats_.arp_requests.load(std::memory_order_relaxed),
        .arp_replies = if_stats_.arp_replies.load(std::memory_order_relaxed),
        .ip_rx = if_stats_.ip_rx.load(std::memory_order_relaxed),
        .ip_tx = if_stats_.ip_tx.load(std::memory_order_relaxed),
        .rx_checksum_drops =
            if_stats_.rx_checksum_drops.load(std::memory_order_relaxed),
        .pending_dropped =
            if_stats_.pending_dropped.load(std::memory_order_relaxed),
    };
  }

 private:
  friend class NetStack;

  bool SendEth(uknetdev::MacAddr dst, std::uint16_t ethertype,
               std::span<const std::uint8_t> payload);
  // Batch dispatch: classifies and handles |cnt| received buffers (all from
  // RX |queue|); frees each unless an upper layer retained it (UDP zero-copy
  // delivery).
  std::size_t ProcessRxBurst(std::uint16_t queue, uknetdev::NetBuf** pkts,
                             std::uint16_t cnt);
  // Returns true when the netbuf ownership moved to an upper layer.
  bool HandleFrame(std::uint16_t queue, uknetdev::NetBuf* nb,
                   std::span<const std::uint8_t> frame);
  void HandleArp(std::uint16_t queue, std::span<const std::uint8_t> body);
  bool HandleIp(std::uint16_t queue, uknetdev::NetBuf* nb,
                std::span<const std::uint8_t> body);
  void SendArpRequest(Ip4Addr target, std::uint16_t queue);
  // RX interrupt handler (installed as the device's RxQueueConf::intr_handler
  // at Init): counts the fire and wakes the stack's waiters for |queue|.
  void OnRxInterrupt(std::uint16_t queue);
  Ip4Addr NextHop(Ip4Addr dst) const {
    return RouteMatches(dst) || config_.gateway == 0 ? dst : config_.gateway;
  }

  NetStack* stack_;
  uknetdev::NetDev* dev_;
  ukplat::MemRegion* mem_;
  ukalloc::Allocator* alloc_;
  Config config_;
  std::uint32_t dev_tx_headroom_ = 0;  // cached from DevInfo at Init
  std::uint16_t nb_queues_ = 1;        // clamped to the device maximum at Init
  std::vector<std::unique_ptr<uknetdev::NetBufPool>> tx_pools_;
  std::vector<std::unique_ptr<uknetdev::NetBufPool>> rx_pools_;
  std::map<Ip4Addr, uknetdev::MacAddr> arp_cache_;
  // Netbufs parked behind unresolved ARP: next-hop ip -> IP packets whose
  // IP header is already built; only the Ethernet header is missing. The
  // buffers themselves wait — no serialized copies — and remember the TX
  // queue their flow steers to, so the flush preserves queue affinity.
  struct PendingTx {
    uknetdev::NetBuf* nb = nullptr;
    std::uint16_t queue = 0;
  };
  std::map<Ip4Addr, std::vector<PendingTx>> arp_pending_;
  // Live counters. Relaxed atomics: each is bumped on exactly one loop's hot
  // path but read (and summed into an IfStats snapshot) from any loop.
  struct IfCounters {
    std::atomic<std::uint64_t> arp_requests{0};
    std::atomic<std::uint64_t> arp_replies{0};
    std::atomic<std::uint64_t> ip_rx{0};
    std::atomic<std::uint64_t> ip_tx{0};
    std::atomic<std::uint64_t> rx_checksum_drops{0};
    std::atomic<std::uint64_t> pending_dropped{0};
  };
  IfCounters if_stats_;
  std::uint16_t ip_id_ = 1;
  // Interrupt fires, one slot per queue: the handler may run on a foreign
  // loop (device backend) while the owning loop reads its own slot.
  std::array<std::atomic<std::uint64_t>, kMaxQueueSlots> rx_wakeups_{};
};

// ---- UDP -----------------------------------------------------------------------

struct Datagram {
  Ip4Addr src_ip = 0;
  std::uint16_t src_port = 0;
  std::vector<std::uint8_t> payload;
};

// Zero-copy received datagram: a view into the driver's netbuf, whose
// ownership moved from the RX ring to the socket queue. The payload bytes
// live in guest RAM until the view is released back to the pool. When the
// RX pool runs low (slow consumer), delivery falls back to copying into
// |owned| and freeing the netbuf immediately so a parked socket queue can
// never starve the RX ring for the rest of the interface.
struct DatagramView {
  Ip4Addr src_ip = 0;
  std::uint16_t src_port = 0;
  const std::uint8_t* data = nullptr;
  std::size_t len = 0;
  uknetdev::NetBuf* nb = nullptr;  // backing buffer; nullptr when copied
  std::vector<std::uint8_t> owned;  // copy fallback storage
  std::uint16_t rx_queue = 0;       // device queue the datagram arrived on
};

class UdpSocket : public SocketEventSource {
 public:
  ~UdpSocket();

  ukarch::Status Bind(std::uint16_t port);
  std::uint16_t local_port() const { return port_; }

  // Non-blocking. SendTo returns bytes sent or negative errno. The payload
  // is written straight into a device netbuf; UDP/IP/Ethernet headers are
  // prepended in place around it (no intermediate datagram buffer).
  std::int64_t SendTo(Ip4Addr dst, std::uint16_t dst_port,
                      std::span<const std::uint8_t> payload);

  // Batched send to one destination: builds one netbuf per payload and hands
  // the lot to NetIf::SendIpBatch — one TxBurst for the whole reply flood.
  // Returns datagrams accepted (stops early when the TX pool runs dry).
  struct DatagramVec {
    const std::uint8_t* data = nullptr;
    std::size_t len = 0;
  };
  std::int64_t SendToBatch(Ip4Addr dst, std::uint16_t dst_port,
                           std::span<const DatagramVec> msgs);

  // Zero-allocation receive: copies the payload straight from the netbuf
  // into |out| and releases the buffer. Bytes copied, or -EAGAIN when empty.
  // |rx_queue| (optional) reports the device queue the datagram arrived on,
  // so sharded consumers can verify/route flow affinity.
  std::int64_t RecvInto(std::span<std::uint8_t> out, Ip4Addr* src_ip = nullptr,
                        std::uint16_t* src_port = nullptr,
                        std::uint16_t* rx_queue = nullptr);
  // Zero-copy batch receive: borrow views of up to |max| queued datagrams
  // without copying. The views stay valid until ReleaseFront.
  std::size_t PeekBatch(const DatagramView** out, std::size_t max) const;
  // Releases the first |n| queued datagrams (returns netbufs to their pool).
  void ReleaseFront(std::size_t n);

  // Copying convenience wrapper (tests, simple apps).
  std::optional<Datagram> RecvFrom();
  bool readable() const { return !rx_.empty(); }
  std::size_t queued() const { return rx_.size(); }
  // Device queue of the most recently delivered datagram (flow affinity).
  std::uint16_t last_rx_queue() const { return last_rx_queue_; }

  // Optional callback invoked on datagram arrival (legacy event-loop hook;
  // new consumers should register a SocketEventSink instead — the demux
  // raises kEvtReadable on every datagram push).
  void SetRxCallback(std::function<void()> cb) { rx_cb_ = std::move(cb); }

 private:
  friend class NetStack;
  explicit UdpSocket(NetStack* stack) : stack_(stack) {}
  void RaiseEvent(EventMask events) { Raise(stack_, events); }

  NetStack* stack_;
  std::uint16_t port_ = 0;
  bool explicitly_bound_ = false;
  std::deque<DatagramView> rx_;
  std::function<void()> rx_cb_;
  std::uint16_t last_rx_queue_ = 0;
  static constexpr std::size_t kMaxQueue = 1024;
};

// ---- TCP -----------------------------------------------------------------------

enum class TcpState {
  kClosed, kListen, kSynSent, kSynRcvd, kEstablished,
  kFinWait1, kFinWait2, kCloseWait, kLastAck, kClosing, kTimeWait,
};
const char* TcpStateName(TcpState s);

// One queued TX segment: |nb| holds the payload bytes for [seq, seq+len) at
// a recorded headroom. The retransmission queue owns one reference to |nb|
// for the segment's whole lifetime (until cumulatively ACKed); every
// (re)transmission restores the payload view, prepends fresh TCP/IP/Ethernet
// headers into the same headroom, takes an extra reference, and bursts the
// buffer — the payload bytes are written exactly once, in Send().
struct TcpTxSegment {
  std::uint32_t seq = 0;               // first sequence number of the payload
  std::uint32_t len = 0;               // payload bytes
  std::uint32_t payload_headroom = 0;  // nb->headroom at which the payload starts
  uknetdev::NetBuf* nb = nullptr;      // retained buffer (one queue reference)
  // SACK scoreboard bit: the peer reported this whole segment received.
  // Retransmission passes skip sacked segments; a cumulative ACK still owns
  // the release. Cleared only with the segment (RFC 2018 reneging is not
  // modeled on this wire).
  bool sacked = false;
};

class TcpSocket : public SocketEventSource {
 public:
  ~TcpSocket();

  TcpState state() const { return state_; }
  Ip4Addr remote_ip() const { return remote_ip_; }
  std::uint16_t remote_port() const { return remote_port_; }
  std::uint16_t local_port() const { return local_port_; }
  // Queue affinity: every segment of this flow is sent on tx_queue_ (RSS of
  // the 4-tuple) and — because the device runs the same hash — arrives on the
  // matching RX queue. last_rx_queue() lets tests assert that property.
  std::uint16_t tx_queue() const { return tx_queue_; }
  std::uint16_t last_rx_queue() const { return last_rx_queue_; }

  // Buffered, non-blocking send: returns bytes accepted (0 when the send
  // buffer is full) or negative errno when the connection cannot send.
  std::int64_t Send(std::span<const std::uint8_t> data);
  // Non-blocking receive: bytes read, -EAGAIN when empty, 0 once the peer
  // closed and all data was drained.
  std::int64_t Recv(std::span<std::uint8_t> out);

  bool readable() const { return !recv_buf_.empty() || fin_received_; }
  std::size_t send_space() const { return send_cap_ - send_buffered_; }
  bool connected() const { return state_ == TcpState::kEstablished; }
  bool failed() const { return reset_; }
  // Peer sent its FIN (the level behind kEvtHup). Queued data stays readable;
  // Recv returns 0 only once it is drained.
  bool peer_closed() const { return fin_received_; }

  // Edges raised to the registered sink: kEvtReadable when the receive
  // buffer turns non-empty (or EOF arrives), kEvtWritable when an ACK
  // reopens a full send buffer or the handshake completes, kEvtHup on the
  // peer's FIN, kEvtErr on RST.

  // Graceful close (FIN). Data already in the send buffer is flushed first.
  void Close();

  struct TcpStats {
    std::uint64_t segments_sent = 0;
    std::uint64_t segments_received = 0;
    std::uint64_t retransmissions = 0;  // recovery events (RTO fires + fast rexmits)
    std::uint64_t dup_acks = 0;
    std::uint64_t out_of_order_dropped = 0;
    // Fast-path accounting: data vs pure-ACK frames on the wire (the
    // delayed-ACK win shows up as pure_acks_sent falling while
    // data_segments_sent holds), plus per-mechanism recovery counters.
    std::uint64_t data_segments_sent = 0;
    std::uint64_t pure_acks_sent = 0;
    std::uint64_t acks_coalesced = 0;       // ACK-owing arrivals folded away
    std::uint64_t fast_retransmits = 0;     // 3-dup-ACK entries into recovery
    std::uint64_t rto_retransmits = 0;      // RTO timer fires
    std::uint64_t sack_rexmit_segments = 0; // data segments skipped as SACKed
    std::uint64_t ooo_queued = 0;           // out-of-order segments buffered
    std::uint64_t tlp_probes = 0;           // tail-loss probes sent
    // Retransmissions that could NOT reuse the retained netbuf (snd_una_
    // landed mid-segment, so the suffix copies into a fresh buffer). The
    // loss bench gates this at zero: recovery must run on retained buffers.
    std::uint64_t rexmit_copy_allocs = 0;
  };
  const TcpStats& tcp_stats() const { return tcp_stats_; }

  // Congestion-state introspection (loss tests assert trajectories).
  std::uint32_t cwnd() const { return cwnd_; }
  std::uint32_t ssthresh() const { return ssthresh_; }
  std::uint32_t in_flight() const { return snd_nxt_ - snd_una_; }
  bool in_fast_recovery() const { return in_fast_recovery_; }
  // Effective peer window after the negotiated scale shift.
  std::uint32_t send_window() const { return snd_wnd_; }
  bool sack_enabled() const { return sack_enabled_; }
  int send_wscale() const { return snd_wscale_; }
  int recv_wscale() const { return rcv_wscale_; }

  // Per-socket buffer caps (default kSendBufCap/kRecvBufCap). Raising the
  // receive cap before connect/listen is what makes window scaling matter:
  // the wscale shift offered at SYN is computed from recv_cap so the scaled
  // advertised window can expose the whole buffer. A listener's caps
  // (TcpListener::SetBufferCaps) are inherited by accepted sockets. Caps are
  // clamped to >= 2*kMss; shrinking below queued data is not supported.
  void SetBufferCaps(std::size_t send_cap, std::size_t recv_cap);
  std::size_t send_cap() const { return send_cap_; }
  std::size_t recv_cap() const { return recv_cap_; }

  static constexpr std::size_t kSendBufCap = 64 * 1024;
  static constexpr std::size_t kRecvBufCap = 64 * 1024;
  static constexpr std::uint32_t kMss = 1400;

 private:
  friend class NetStack;
  TcpSocket(NetStack* stack, NetIf* netif) : stack_(stack), netif_(netif) {}
  void RaiseEvent(EventMask events) { Raise(stack_, events); }

  void OnSegment(std::uint16_t rx_queue, const TcpHeader& hdr,
                 std::span<const std::uint8_t> payload);
  void Output();            // transmit what window + cwnd + buffer allow
  void CheckTimer();        // RTO-based retransmission + delayed-ACK flush
  // Re-sends the retained ranges overlapping [snd_una_, snd_nxt_) — the
  // whole window (go-back-N RTO) or just the first unacked segment (fast
  // retransmit). SACKed segments are skipped in both modes: the scoreboard
  // turns the full-window re-burst into a holes-only re-burst. Returns
  // whether any data segment went out.
  bool RetransmitWindow(bool first_unacked_only);
  // Control segment (ACK/FIN/window update): header only, no payload. ACKs
  // carry the receiver's current SACK blocks when the peer negotiated SACK.
  void EmitSegment(std::uint8_t flags, std::uint32_t seq);
  // Satellite of the wscale work: every path that learns the peer's window
  // funnels through here, so the scale shift applies in exactly one place.
  // SYN/SYN|ACK windows are never scaled (RFC 7323).
  void UpdateSendWindow(const TcpHeader& hdr);
  // NewReno ACK-clocking: grows cwnd in slow start / congestion avoidance,
  // enters and exits fast recovery, handles NewReno partial ACKs.
  void OnAckProgress(std::uint32_t acked_bytes, std::uint32_t ack);
  void OnDupAck();
  // Marks retained segments covered by the ACK's SACK blocks.
  void ApplySackBlocks(const TcpHeader& hdr);
  // Receive-side reassembly: queues an out-of-order payload (bounded), or
  // drains contiguous ranges into recv_buf_ once the hole fills.
  bool QueueOutOfOrder(std::uint32_t seq, std::span<const std::uint8_t> payload);
  void DrainOutOfOrder();
  // Delayed-ACK machinery: NoteAckOwed records that rcv_nxt_ advanced
  // (flushing immediately past the 2*MSS coalescing budget); AckNow emits a
  // pure ACK and clears the owed state; FlushDelayedAck is the end-of-turn /
  // timer-deadline flush NetStack::RunTcpTimers drives.
  void NoteAckOwed(std::size_t payload_bytes);
  void AckNow();
  void FlushDelayedAck();
  // (Re)transmits |take| payload bytes of a retained segment starting at
  // sequence |from| (SeqLe(seg.seq, from), from+take within the segment).
  // Segment-aligned sends (from == seg.seq — every first transmission and
  // boundary-aligned retransmit) restore the netbuf's payload view, prepend
  // the TCP header in place, ref the buffer and re-burst it: zero payload
  // copies. Mid-segment suffix sends would prepend headers over the
  // segment's own earlier payload bytes, so they copy into a fresh buffer.
  void EmitRetained(TcpTxSegment& seg, std::uint32_t from, std::uint32_t take,
                    std::uint8_t flags, bool retransmit = false);
  // Sequence number one past the last byte queued for transmission.
  std::uint32_t DataEnd() const {
    return retx_queue_.empty() ? snd_una_
                               : retx_queue_.back().seq + retx_queue_.back().len;
  }
  // Releases fully-acked segments from the front of the retransmission queue.
  void ReleaseAcked(std::uint32_t ack);
  // Releases every retained segment (teardown). ~NetStack calls this for the
  // sockets it still tracks so that app-held socket handles outliving the
  // stack never touch the (by then destroyed) NetIf pools in ~TcpSocket.
  void ReleaseAllSegments();
  // Raw receive window in bytes (free buffer space).
  std::size_t RecvSpace() const {
    std::size_t used = recv_buf_.size() + ooo_buffered_;
    return used < recv_cap_ ? recv_cap_ - used : 0;
  }
  // The 16-bit window field for a non-SYN segment: space >> rcv_wscale_,
  // saturated. With no scale negotiated this is the classic 64KB clamp.
  std::uint16_t AdvertisedWindow() const {
    std::size_t wnd = RecvSpace() >> rcv_wscale_;
    return static_cast<std::uint16_t>(wnd > 0xffff ? 0xffff : wnd);
  }
  void EnterState(TcpState s) { state_ = s; }

  NetStack* stack_;
  NetIf* netif_;
  TcpState state_ = TcpState::kClosed;
  Ip4Addr remote_ip_ = 0;
  std::uint16_t remote_port_ = 0;
  std::uint16_t local_port_ = 0;
  std::uint16_t tx_queue_ = 0;       // RSS flow queue, fixed at connect/accept
  std::uint16_t last_rx_queue_ = 0;  // queue the last segment arrived on

  // Send side: the retransmission queue holds retained netbufs covering
  // [snd_una_, DataEnd()); bytes in [snd_una_, snd_nxt_) are in flight,
  // [snd_nxt_, DataEnd()) are queued but unsent. Per-segment sequence
  // accounting replaces deque offset arithmetic, so the FIN's extra sequence
  // slot can never underflow a buffer index.
  std::uint32_t snd_una_ = 0;
  std::uint32_t snd_nxt_ = 0;
  std::uint32_t snd_wnd_ = 0;  // peer window, already scaled (UpdateSendWindow)
  std::deque<TcpTxSegment> retx_queue_;
  std::size_t send_buffered_ = 0;  // payload bytes across retx_queue_
  bool fin_queued_ = false;
  bool fin_sent_ = false;

  // ---- congestion control (NewReno) ----------------------------------------
  // Byte-denominated cwnd/ssthresh, RFC 5681/6582. Slow start while
  // cwnd < ssthresh (cwnd += min(acked, MSS) per ACK), congestion avoidance
  // above it (cwnd += MSS*MSS/cwnd per ACK). Fast recovery inflates cwnd by
  // one MSS per dup ACK and deflates to ssthresh when |recover_| is fully
  // ACKed; partial ACKs retransmit the next hole without leaving recovery.
  // Legacy mode (NetStack::tcp_modern == false) pins cwnd wide open so the
  // pre-modern stop-and-go behavior stays available as a bench baseline.
  std::uint32_t cwnd_ = 10 * kMss;        // IW10
  std::uint32_t ssthresh_ = 0x7fffffff;   // "infinite" until first loss
  bool in_fast_recovery_ = false;
  std::uint32_t recover_ = 0;             // snd_nxt_ at recovery entry
  std::uint32_t rto_backoff_ = 1;         // RTO multiplier, doubles per fire
  // One tail-loss probe per stall (CheckTimer, at rto_cycles/4): re-sends the
  // highest outstanding segment so a tail loss raises a SACK reply instead of
  // sitting out the RTO. Re-armed by forward ACK progress.
  bool tlp_probe_sent_ = false;

  // ---- negotiated options --------------------------------------------------
  bool sack_enabled_ = false;      // both sides sent SACK-permitted
  bool sack_offered_ = false;      // we sent SACK-permitted on our SYN
  int snd_wscale_ = 0;             // shift applied to the peer's window field
  int rcv_wscale_ = 0;             // shift the peer applies to ours
  // The shift we offered on our SYN (-1 = none). rcv_wscale_ stays 0 until
  // the peer echoes the option — the SYN's own window must go out unscaled.
  std::int8_t rcv_wscale_offer_ = -1;
  std::uint32_t peer_mss_ = kMss;
  std::size_t send_cap_ = kSendBufCap;
  std::size_t recv_cap_ = kRecvBufCap;

  std::uint32_t rcv_nxt_ = 0;
  std::deque<std::uint8_t> recv_buf_;
  // Out-of-order reassembly: disjoint, sorted ranges above rcv_nxt_ waiting
  // for the hole to fill. Bounded (kMaxOooRanges, and counted against
  // RecvSpace() via ooo_buffered_) so a hostile sender cannot balloon the
  // heap. Doubles as the source of the SACK blocks our ACKs advertise.
  struct OooRange {
    std::uint32_t seq = 0;
    std::vector<std::uint8_t> data;
  };
  static constexpr std::size_t kMaxOooRanges = 8;
  std::vector<OooRange> ooo_ranges_;
  std::size_t ooo_buffered_ = 0;  // payload bytes across ooo_ranges_
  // Sequence of the most recently received (or re-received) OOO segment: the
  // SACK span holding it leads the next ACK's blocks, RFC 2018 style.
  std::uint32_t last_ooo_seq_ = 0;
  bool fin_received_ = false;
  bool reset_ = false;

  // ---- delayed ACK ---------------------------------------------------------
  // ACK-owing state: set when rcv_nxt_ advances without an immediate ACK.
  // Flushed by the 2*MSS budget (RFC 1122 "at least every second segment"),
  // by any segment we emit that carries the current ack, or — at the latest —
  // by the end-of-turn pass in NetStack::RunTcpTimers. delack_deadline_ folds
  // into NextTimerDeadline so a blocked PollWait still wakes to flush.
  bool delack_pending_ = false;
  std::size_t delack_bytes_ = 0;          // payload bytes since the last ACK
  std::uint64_t delack_deadline_ = 0;     // absolute cycles, valid when pending
  // Send() hit a dry TX pool: the socket could not buffer everything the app
  // offered even though send_space() remained. The pool-refill edge
  // (NetStack::OnTxPoolRefill) clears this and raises kEvtWritable so the
  // app's flush resumes on the buffer return instead of a busy retry.
  bool tx_pool_starved_ = false;

  // Retransmission-timer epoch: when the oldest outstanding, retransmittable
  // thing (data, SYN, FIN) was last put on the wire — restarted by data
  // transmission and by forward ACK progress, and NOT by pure-ACK emission.
  // Timing the RTO off "time since any send" looks equivalent on a quiet
  // connection, but under bidirectional traffic the ACKs a stalled endpoint
  // keeps sending for its peer's segments would push its own retransmission
  // deadline out forever.
  std::uint64_t rtx_epoch_cycles_ = 0;
  std::uint32_t dup_ack_count_ = 0;
  // Poll cycles left before a TIME_WAIT connection is reaped (2MSL stand-in).
  // While > 0 the connection stays registered so a retransmitted FIN (lost
  // final ACK) finds it and gets a fresh ACK instead of a RST.
  std::uint32_t time_wait_polls_left_ = 0;

  TcpStats tcp_stats_;
};

// The handshake-completion path raises kEvtAcceptable to the registered
// sink on every accept-queue push.
class TcpListener : public SocketEventSource {
 public:
  std::uint16_t port() const { return port_; }
  std::shared_ptr<TcpSocket> Accept();  // nullptr when queue empty
  std::size_t backlog() const { return accept_queue_.size(); }
  // Buffer caps inherited by every socket this listener accepts (the SYN|ACK
  // wscale offer is computed from recv_cap, so it must be set before the
  // handshake, i.e. here rather than on the accepted socket).
  void SetBufferCaps(std::size_t send_cap, std::size_t recv_cap) {
    accept_send_cap_ = send_cap;
    accept_recv_cap_ = recv_cap;
  }

 private:
  friend class NetStack;
  TcpListener(NetStack* stack, std::uint16_t port) : stack_(stack), port_(port) {}
  void RaiseEvent(EventMask events) { Raise(stack_, events); }
  NetStack* stack_;
  std::uint16_t port_;
  std::deque<std::shared_ptr<TcpSocket>> accept_queue_;
  std::size_t accept_send_cap_ = TcpSocket::kSendBufCap;
  std::size_t accept_recv_cap_ = TcpSocket::kRecvBufCap;
};

// ---- the stack --------------------------------------------------------------------

class NetStack {
 public:
  NetStack(ukplat::MemRegion* mem, ukplat::Clock* clock, ukalloc::Allocator* alloc)
      : mem_(mem), clock_(clock), alloc_(alloc) {}
  ~NetStack();

  // Interfaces.
  NetIf* AddInterface(uknetdev::NetDev* dev, NetIf::Config config);
  NetIf* RouteTo(Ip4Addr dst);

  // Sockets.
  std::shared_ptr<UdpSocket> UdpOpen();
  std::shared_ptr<TcpListener> TcpListen(std::uint16_t port);
  std::shared_ptr<TcpSocket> TcpConnect(Ip4Addr dst, std::uint16_t port);

  // ICMP echo client: sends a ping; replies are counted.
  bool Ping(Ip4Addr dst, std::uint16_t seq);
  std::uint64_t pings_answered() const {
    return pings_answered_.load(std::memory_order_relaxed);
  }

  // One pump: interface RX, TCP timers. Call in the application loop.
  void Poll();
  // Test helper: polls until |pred| or |max_iters| rounds.
  bool PollUntil(const std::function<bool()>& pred, int max_iters = 10000);

  // ---- interrupt-driven idle (§3.3 scheduler integration) -----------------
  // Sentinels: PollWait(kAllQueues) waits for traffic on any queue of any
  // interface; kNoDeadline means no caller-imposed timeout.
  static constexpr std::uint16_t kAllQueues = 0xffff;
  static constexpr std::uint64_t kNoDeadline = ~0ull;

  // Attaches the scheduler whose threads may block in PollWait. Must be set
  // (and the caller must be on a scheduler thread) for PollWait to actually
  // block; otherwise PollWait degrades to one Poll-equivalent pass.
  void SetScheduler(uksched::Scheduler* sched);
  uksched::Scheduler* scheduler() const { return sched_; }
  bool CanBlock() const {
    return sched_ != nullptr && sched_->current() != nullptr;
  }

  // Blocking pump: drains |queue| (or every queue) plus TCP timers; if that
  // finds nothing, arms the RX interrupts, drains once more to close the
  // arm/arrival race, and blocks the calling uksched::Thread on the per-queue
  // WaitQueue until a frame interrupt or a deadline — the earliest of the
  // caller's |timeout_cycles| (relative) and the next TCP timer (RTO of any
  // connection with data in flight, TIME_WAIT reaping) — wakes it. Returns
  // the number of frames handled; 0 after a deadline wake (whose timer pass,
  // e.g. an RTO retransmission, has already run). Interrupts are disarmed on
  // return: they are live only while a PollWait sleeps.
  std::size_t PollWait(std::uint16_t queue = kAllQueues,
                       std::uint64_t timeout_cycles = kNoDeadline);
  // Earliest absolute cycle at which a TCP timer needs service, or
  // kNoDeadline when no connection is waiting on time.
  std::uint64_t NextTimerDeadline() const;

  // ---- readiness-event fan-in ---------------------------------------------
  // Called by every socket RaiseEvent once a registered sink consumed the
  // edge: bumps the stack-wide event sequence and wakes ALL PollWait
  // sleepers. A waiter that finds the sequence advanced across its sleep
  // returns (frames or not) so its caller can rescan readiness — that is
  // what makes PollWait wake on *pending socket events*, not only on frames
  // landing on its own queue. Sockets without sinks never reach this path,
  // so pure frame-driven waiters keep their exact wakeup counts.
  void NotifySocketEvent();
  std::uint64_t event_seq() const {
    return event_seq_.load(std::memory_order_acquire);
  }

  // Per-queue doorbell for non-frame work (SPSC ring messages, steered fds):
  // bumps |queue|'s soft-event sequence and wakes exactly ONE sleeper of that
  // queue (WakeOne — one message has one consumer; waking the whole herd
  // would cost every other loop a spurious drain) plus one kAllQueues waiter.
  // Same arm-then-check contract as frames: the raise only ends waits entered
  // before it, so producers must push the work *before* ringing and consumers
  // must check their rings before calling PollWait. A PollWait(queue) sleeper
  // returns (possibly with 0 frames) when the sequence advanced across its
  // sleep so its caller can drain the ring.
  void RaiseQueueEvent(std::uint16_t queue);
  std::uint64_t queue_event_seq(std::uint16_t queue) const {
    return queue_event_seq_[QueueSlot(queue)].load(std::memory_order_acquire);
  }

  // TX-pool refill edge (NetBufPool::SetRefillCallback, registered per queue
  // by NetIf::Init): |netif|'s queue |queue| TX pool went dry under demand and
  // just regained a buffer. Raises kEvtWritable on every connection starved
  // on that pool and rings the queue's doorbell, so writable-interested loops
  // sleep through pool exhaustion instead of taking busy turns.
  void OnTxPoolRefill(NetIf* netif, std::uint16_t queue);

  // Snapshot type. The live counters are PER-LOOP: each PollWait(queue) bumps
  // its own queue's cacheline-padded slot (PollWait(kAllQueues) and Poll()
  // share one extra slot), so sharded loops never bounce a counter line.
  // wait_stats() sums the slots into a snapshot at read time;
  // wait_stats(queue) slices out one loop's view.
  struct WaitStats {
    std::uint64_t poll_iterations = 0;  // drain passes PollWait executed
    std::uint64_t blocked_waits = 0;    // times a caller actually slept
    std::uint64_t frame_wakeups = 0;    // woken by an RX interrupt
    std::uint64_t timer_wakeups = 0;    // woken by RTO/timeout deadline
    std::uint64_t queue_event_wakeups = 0;  // ended by RaiseQueueEvent
  };
  WaitStats wait_stats() const;                     // all slots, summed
  WaitStats wait_stats(std::uint16_t queue) const;  // one queue's slot

  ukplat::Clock* clock() { return clock_; }
  ukplat::MemRegion* mem() { return mem_; }

  // RCU introspection (tests): registered TCP connections in the current
  // published snapshot, and retired registry versions still awaiting a grace
  // period.
  std::size_t tcp_conn_count() const { return tcp_conns_.size(); }
  std::size_t rcu_pending() const { return rcu_.pending(); }

  // Retransmission timeout, virtual time. Exposed for loss tests. The
  // effective per-connection timeout is rto_cycles * the connection's current
  // backoff multiplier (doubles per consecutive RTO fire, capped, reset on
  // forward ACK progress).
  std::uint64_t rto_cycles = 720'000'000;  // 200 ms at 3.6 GHz
  // Upper bound on the per-connection RTO backoff multiplier.
  std::uint32_t rto_backoff_cap = 64;
  // Delayed-ACK time bound (RFC 1122's 500ms cap analogue): an ACK owed at
  // cycle T is guaranteed on the wire by T + delack_cycles even if the owning
  // loop sleeps — the deadline folds into NextTimerDeadline. In a polled loop
  // the end-of-turn flush in RunTcpTimers almost always beats it.
  std::uint64_t delack_cycles = 72'000'000;  // 20 ms at 3.6 GHz
  // Modern fast path (NewReno + SACK + delayed ACKs + wscale offers). Flip
  // off to get the pre-modernization stop-and-go stack: no TCP options
  // offered, no cwnd gate, an ACK per in-order segment — kept as the
  // baseline the tab5 --loss bench compares against.
  bool tcp_modern = true;
  // TIME_WAIT linger, measured in Poll() cycles (a 2MSL equivalent for the
  // run-to-completion loop). Exposed so teardown tests stay fast.
  std::uint32_t time_wait_poll_budget = 64;

  // Snapshot type; the live counters are relaxed atomics bumped from whatever
  // loop demuxes the packet.
  struct StackStats {
    std::uint64_t udp_rx = 0;
    std::uint64_t udp_tx = 0;
    std::uint64_t tcp_rx = 0;
    std::uint64_t icmp_rx = 0;
    std::uint64_t no_socket_drops = 0;
    std::uint64_t rst_sent = 0;
  };
  StackStats stats() const {
    return StackStats{
        .udp_rx = stats_.udp_rx.load(std::memory_order_relaxed),
        .udp_tx = stats_.udp_tx.load(std::memory_order_relaxed),
        .tcp_rx = stats_.tcp_rx.load(std::memory_order_relaxed),
        .icmp_rx = stats_.icmp_rx.load(std::memory_order_relaxed),
        .no_socket_drops = stats_.no_socket_drops.load(std::memory_order_relaxed),
        .rst_sent = stats_.rst_sent.load(std::memory_order_relaxed),
    };
  }

 private:
  friend class NetIf;
  friend class UdpSocket;
  friend class TcpSocket;
  friend class TcpListener;

  struct ConnKey {
    std::uint16_t local_port;
    Ip4Addr remote_ip;
    std::uint16_t remote_port;
    auto operator<=>(const ConnKey&) const = default;
  };

  // The bool results report whether |nb| ownership moved to an upper layer
  // (UDP zero-copy delivery parks the netbuf in the socket queue). |queue| is
  // the RX queue the packet arrived on: the demux shards on it — replies are
  // emitted on the same queue, and sockets record it as their flow's queue.
  bool HandleIpPacket(NetIf* netif, std::uint16_t queue, uknetdev::NetBuf* nb,
                      const Ip4Header& ip, std::span<const std::uint8_t> payload);
  bool HandleUdp(NetIf* netif, std::uint16_t queue, uknetdev::NetBuf* nb,
                 const Ip4Header& ip, std::span<const std::uint8_t> payload);
  void HandleTcp(NetIf* netif, std::uint16_t queue, const Ip4Header& ip,
                 std::span<const std::uint8_t> payload);
  void HandleIcmp(NetIf* netif, std::uint16_t queue, const Ip4Header& ip,
                  std::span<const std::uint8_t> payload);
  void SendRst(NetIf* netif, const Ip4Header& ip, const TcpHeader& hdr,
               std::size_t payload_len, std::uint16_t queue);
  // Shared header-only TCP segment builder (SYN, SYN|ACK, RST, ACK...):
  // serialized in place in a TX netbuf, bursts on |queue|.
  bool SendTcpHeaderOnly(NetIf* netif, Ip4Addr dst, const TcpHeader& hdr,
                         std::uint16_t queue = 0);
  std::uint16_t AllocEphemeralPort();
  std::uint32_t NewIss();  // deterministic initial sequence numbers
  // Called by TcpSocket state transitions.
  void NotifyAccepted(TcpSocket* sock);
  void RemoveConnection(TcpSocket* sock);
  // TCP timer pass (RTO checks + TIME_WAIT reaping), shared by Poll and the
  // PollWait drain.
  void RunTcpTimers();
  // Wakes PollWait sleepers for |queue| (and any-queue waiters). Called from
  // NetIf's RX interrupt handler — wakeup-grade work only.
  void WakeRxWaiters(std::uint16_t queue);
  // Sizes the per-queue wait queues to the widest interface.
  void EnsureWaitQueues();

  ukplat::MemRegion* mem_;
  ukplat::Clock* clock_;
  ukalloc::Allocator* alloc_;
  std::vector<std::unique_ptr<NetIf>> netifs_;
  // RCU-published registries: the demux hot path (HandleUdp/HandleTcp finds,
  // timer scans) acquire-loads a snapshot and never takes a lock; writers
  // (bind/connect/accept/teardown) are serialized inside each registry and
  // publish copy-on-write. Grace periods are tied to event-loop turn
  // boundaries: Poll()/PollWait announce quiescence on their loop's slot
  // (queue q -> slot q, Poll()/kAllQueues -> the shared extra slot). The
  // domain is declared first so it outlives the registries; retired map
  // versions drain in ~RcuDomain at the latest.
  uklock::RcuDomain rcu_;
  uklock::RcuRegistry<std::uint16_t, std::shared_ptr<UdpSocket>> udp_ports_{
      &rcu_};
  uklock::RcuRegistry<std::uint16_t, std::shared_ptr<TcpListener>>
      tcp_listeners_{&rcu_};
  uklock::RcuRegistry<ConnKey, std::shared_ptr<TcpSocket>> tcp_conns_{&rcu_};
  std::uint16_t next_ephemeral_ = 49152;
  std::uint32_t iss_counter_ = 10'000;
  std::atomic<std::uint64_t> pings_answered_{0};
  struct StackCounters {
    std::atomic<std::uint64_t> udp_rx{0};
    std::atomic<std::uint64_t> udp_tx{0};
    std::atomic<std::uint64_t> tcp_rx{0};
    std::atomic<std::uint64_t> icmp_rx{0};
    std::atomic<std::uint64_t> no_socket_drops{0};
    std::atomic<std::uint64_t> rst_sent{0};
  };
  StackCounters stats_;
  uksched::Scheduler* sched_ = nullptr;
  std::vector<std::unique_ptr<uksched::WaitQueue>> rx_waits_;  // one per queue
  std::unique_ptr<uksched::WaitQueue> any_wait_;  // PollWait(kAllQueues)
  // Sleepers currently holding each queue's interrupt armed. PollWait only
  // disarms a line on return when the last holder lets go — a kAllQueues
  // waiter returning must not kill the armed line of a still-blocked
  // per-queue sibling (that would be a lost wakeup). Atomic because a
  // kAllQueues waiter and a pinned waiter on different loops hold the same
  // slot concurrently.
  std::array<std::atomic<std::uint32_t>, kMaxQueueSlots> rx_arm_counts_{};
  // Per-loop wait accounting: slot q belongs to the loop pumping
  // PollWait(q); the extra slot at kMaxQueueSlots belongs to
  // Poll()/PollWait(kAllQueues) callers. Cacheline-padded so neighboring
  // loops never write-share a line; wait_stats() sums at read time.
  struct alignas(64) WaitSlot {
    std::atomic<std::uint64_t> poll_iterations{0};
    std::atomic<std::uint64_t> blocked_waits{0};
    std::atomic<std::uint64_t> frame_wakeups{0};
    std::atomic<std::uint64_t> timer_wakeups{0};
    std::atomic<std::uint64_t> queue_event_wakeups{0};
  };
  static constexpr std::size_t kAllQueuesSlot = kMaxQueueSlots;
  std::array<WaitSlot, kMaxQueueSlots + 1> wait_slots_;
  // Delivered readiness edges (registered sinks). Release on publish,
  // acquire on the PollWait re-check: the edge's cause happens-before the
  // woken waiter's rescan.
  std::atomic<std::uint64_t> event_seq_{0};
  // Per-queue soft-event sequences (RaiseQueueEvent doorbells) plus their sum;
  // a kAllQueues waiter watches the sum, a pinned waiter its own slot. Fixed
  // size: a foreign-loop producer ringing a doorbell must never race a
  // resize.
  std::array<std::atomic<std::uint64_t>, kMaxQueueSlots> queue_event_seq_{};
  std::atomic<std::uint64_t> queue_event_total_{0};
};

}  // namespace uknet

#endif  // UKNET_STACK_H_
