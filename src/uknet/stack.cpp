#include "uknet/stack.h"

#include <algorithm>
#include <cstring>

#include "ukarch/hash.h"

namespace uknet {

bool NetStack::SendTcpHeaderOnly(NetIf* netif, Ip4Addr dst, const TcpHeader& hdr,
                                 std::uint16_t queue) {
  // Sized to the header the caller built: SYN/SYN|ACK segments carry the
  // MSS/wscale/SACK-permitted offers, ACKs may carry SACK blocks — the data
  // offset and checksum come out of Serialize either way.
  const std::uint32_t hdr_bytes = static_cast<std::uint32_t>(hdr.HeaderBytes());
  uknetdev::NetBuf* nb = netif->AllocTxBuf(hdr_bytes, queue);
  if (nb == nullptr) {
    return false;
  }
  std::uint8_t* at = nb->PrependHeader(*mem_, hdr_bytes);
  if (at == nullptr) {
    netif->FreeTxBuf(nb);
    return false;
  }
  hdr.Serialize(at, netif->ip(), dst, {});
  return netif->SendIpBuf(dst, kIpProtoTcp, nb, queue);
}

// The wscale shift to offer for a receive buffer of |recv_cap| bytes: the
// smallest shift whose scaled 16-bit field can still advertise the whole
// buffer (RFC 7323 caps the shift at 14). A 64KB default buffer yields
// shift 0 — the option is still sent (it enables the peer's side), and the
// window values stay bit-identical to the unscaled stack.
static std::int8_t WscaleFor(std::size_t recv_cap) {
  std::int8_t s = 0;
  while (s < 14 && ((recv_cap - 1) >> s) > 0xffff) {
    ++s;
  }
  return s;
}

// ---- readiness events -------------------------------------------------------------
//
// Every socket kind funnels its edges through the same two steps: deliver to
// the registered sink (wakeup-grade work only), then bump the stack's event
// sequence so PollWait sleepers rescan.

void SocketEventSource::Raise(NetStack* stack, EventMask events) {
  if (sink_ == nullptr) {
    return;
  }
  sink_->OnSocketEvent(sink_token_, events);
  stack->NotifySocketEvent();
}

void NetStack::NotifySocketEvent() {
  // Release: the socket-state change behind the edge happens-before any
  // waiter that observes the bumped sequence (acquire) and rescans.
  event_seq_.fetch_add(1, std::memory_order_release);
  // Wake every sleeper: the socket an edge belongs to is not tied to the
  // queue a waiter picked (a server socket fans in flows from all queues).
  // Spurious wakes are resolved by the waiters' own readiness rescans.
  for (auto& wq : rx_waits_) {
    if (wq != nullptr) {
      wq->Wake();
    }
  }
  if (any_wait_ != nullptr) {
    any_wait_->Wake();
  }
}

// ---- UDP socket -------------------------------------------------------------------

UdpSocket::~UdpSocket() {
  // Queued datagram views still own driver netbufs.
  for (DatagramView& view : rx_) {
    if (view.nb != nullptr && view.nb->pool != nullptr) {
      view.nb->pool->Free(view.nb);
    }
  }
}

ukarch::Status UdpSocket::Bind(std::uint16_t port) {
  if (explicitly_bound_) {
    return ukarch::Status::kInval;  // one explicit bind per socket
  }
  if (stack_->udp_ports_.Read()->contains(port)) {
    return ukarch::Status::kAddrInUse;
  }
  // Re-register under the requested port (the stack holds the shared_ptr):
  // one copy-on-write pass unlinks the old key and publishes the new one.
  ukarch::Status result = ukarch::Status::kBadF;
  stack_->udp_ports_.Update([&](auto& ports) {
    for (auto it = ports.begin(); it != ports.end(); ++it) {
      if (it->second.get() == this) {
        auto self = it->second;
        ports.erase(it);
        port_ = port;
        explicitly_bound_ = true;
        ports[port] = std::move(self);
        result = ukarch::Status::kOk;
        return;
      }
    }
  });
  return result;
}

std::int64_t UdpSocket::SendTo(Ip4Addr dst, std::uint16_t dst_port,
                               std::span<const std::uint8_t> payload) {
  NetIf* netif = stack_->RouteTo(dst);
  if (netif == nullptr) {
    return ukarch::Raw(ukarch::Status::kNetUnreach);
  }
  // Zero-copy TX: the payload is written once, straight into the netbuf that
  // goes to the device; the UDP header (and below it IP + Ethernet) is
  // prepended in place in the buffer's headroom reservation. The flow hash
  // steers the datagram onto its queue — the same queue the peer's replies
  // will arrive on.
  const std::uint16_t queue = netif->TxQueueFor(dst, port_, dst_port);
  uknetdev::NetBuf* nb = netif->AllocTxBuf(kUdpHdrBytes, queue);
  if (nb == nullptr) {
    return ukarch::Raw(ukarch::Status::kAgain);
  }
  std::uint8_t* body =
      nb->Append(*stack_->mem(), static_cast<std::uint32_t>(payload.size()));
  if (body == nullptr) {
    netif->FreeTxBuf(nb);
    return ukarch::Raw(ukarch::Status::kInval);
  }
  if (!payload.empty()) {
    std::memcpy(body, payload.data(), payload.size());
  }
  UdpHeader hdr;
  hdr.src_port = port_;
  hdr.dst_port = dst_port;
  std::uint8_t* hdr_at = nb->PrependHeader(*stack_->mem(), kUdpHdrBytes);
  if (hdr_at == nullptr) {
    netif->FreeTxBuf(nb);
    return ukarch::Raw(ukarch::Status::kAgain);
  }
  hdr.Serialize(hdr_at, netif->ip(), dst, std::span(body, payload.size()));
  ++stack_->stats_.udp_tx;
  if (!netif->SendIpBuf(dst, kIpProtoUdp, nb, queue)) {
    return ukarch::Raw(ukarch::Status::kAgain);
  }
  return static_cast<std::int64_t>(payload.size());
}

std::int64_t UdpSocket::SendToBatch(Ip4Addr dst, std::uint16_t dst_port,
                                    std::span<const DatagramVec> msgs) {
  NetIf* netif = stack_->RouteTo(dst);
  if (netif == nullptr) {
    return ukarch::Raw(ukarch::Status::kNetUnreach);
  }
  const std::uint16_t queue = netif->TxQueueFor(dst, port_, dst_port);
  constexpr std::size_t kChunk = 64;
  uknetdev::NetBuf* pkts[kChunk];
  std::int64_t accepted = 0;
  std::size_t i = 0;
  while (i < msgs.size()) {
    // Build up to one chunk of UDP datagrams (payload written once, headers
    // prepended in place), then burst the chunk in a single TxBurst.
    std::uint16_t built = 0;
    while (built < kChunk && i < msgs.size()) {
      const DatagramVec& msg = msgs[i];
      uknetdev::NetBuf* nb = netif->AllocTxBuf(kUdpHdrBytes, queue);
      if (nb == nullptr) {
        break;  // pool dry: burst what we have, report the partial batch
      }
      std::uint8_t* body =
          nb->Append(*stack_->mem(), static_cast<std::uint32_t>(msg.len));
      std::uint8_t* hdr_at =
          body != nullptr ? nb->PrependHeader(*stack_->mem(), kUdpHdrBytes) : nullptr;
      if (hdr_at == nullptr) {
        netif->FreeTxBuf(nb);
        break;
      }
      if (msg.len > 0) {
        std::memcpy(body, msg.data, msg.len);
      }
      UdpHeader hdr;
      hdr.src_port = port_;
      hdr.dst_port = dst_port;
      hdr.Serialize(hdr_at, netif->ip(), dst, std::span(body, msg.len));
      pkts[built++] = nb;
      ++i;
    }
    if (built == 0) {
      break;
    }
    std::uint16_t sent = netif->SendIpBatch(dst, kIpProtoUdp, pkts, built, queue);
    stack_->stats_.udp_tx += sent;
    accepted += sent;
    if (sent < built) {
      break;
    }
  }
  if (accepted == 0 && !msgs.empty()) {
    return ukarch::Raw(ukarch::Status::kAgain);
  }
  return accepted;
}

std::int64_t UdpSocket::RecvInto(std::span<std::uint8_t> out, Ip4Addr* src_ip,
                                 std::uint16_t* src_port, std::uint16_t* rx_queue) {
  if (rx_.empty()) {
    return ukarch::Raw(ukarch::Status::kAgain);
  }
  DatagramView& view = rx_.front();
  std::size_t n = view.len < out.size() ? view.len : out.size();
  if (n > 0) {
    std::memcpy(out.data(), view.data, n);
  }
  if (src_ip != nullptr) {
    *src_ip = view.src_ip;
  }
  if (src_port != nullptr) {
    *src_port = view.src_port;
  }
  if (rx_queue != nullptr) {
    *rx_queue = view.rx_queue;
  }
  if (view.nb != nullptr && view.nb->pool != nullptr) {
    view.nb->pool->Free(view.nb);
  }
  rx_.pop_front();
  return static_cast<std::int64_t>(n);
}

std::size_t UdpSocket::PeekBatch(const DatagramView** out, std::size_t max) const {
  std::size_t n = 0;
  for (const DatagramView& view : rx_) {
    if (n >= max) {
      break;
    }
    out[n++] = &view;
  }
  return n;
}

void UdpSocket::ReleaseFront(std::size_t n) {
  for (std::size_t i = 0; i < n && !rx_.empty(); ++i) {
    DatagramView& view = rx_.front();
    if (view.nb != nullptr && view.nb->pool != nullptr) {
      view.nb->pool->Free(view.nb);
    }
    rx_.pop_front();
  }
}

std::optional<Datagram> UdpSocket::RecvFrom() {
  if (rx_.empty()) {
    return std::nullopt;
  }
  DatagramView& view = rx_.front();
  Datagram d;
  d.src_ip = view.src_ip;
  d.src_port = view.src_port;
  d.payload.assign(view.data, view.data + view.len);
  if (view.nb != nullptr && view.nb->pool != nullptr) {
    view.nb->pool->Free(view.nb);
  }
  rx_.pop_front();
  return d;
}

// ---- listener ----------------------------------------------------------------------

std::shared_ptr<TcpSocket> TcpListener::Accept() {
  if (accept_queue_.empty()) {
    return nullptr;
  }
  auto sock = accept_queue_.front();
  accept_queue_.pop_front();
  return sock;
}

// ---- NetStack ----------------------------------------------------------------------

NetStack::~NetStack() {
  // Application code may hold socket shared_ptrs beyond the stack's life.
  // Release their retained TX netbufs now, while the NetIf pools still
  // exist; the eventual ~TcpSocket then has nothing to free.
  for (const auto& [key, conn] : *tcp_conns_.Read()) {
    conn->ReleaseAllSegments();
  }
  // No loop can be mid-turn here (destruction is single-threaded under the
  // run-to-block contract): drain every retired registry version now, while
  // the sockets they reference still have live pools underneath them.
  rcu_.Synchronize();
}

NetIf* NetStack::AddInterface(uknetdev::NetDev* dev, NetIf::Config config) {
  auto netif = std::make_unique<NetIf>(this, dev, mem_, alloc_, config);
  if (!Ok(netif->Init())) {
    return nullptr;
  }
  netifs_.push_back(std::move(netif));
  EnsureWaitQueues();
  return netifs_.back().get();
}

NetIf* NetStack::RouteTo(Ip4Addr dst) {
  for (auto& netif : netifs_) {
    if (netif->RouteMatches(dst)) {
      return netif.get();
    }
  }
  // Default route: first interface with a gateway.
  for (auto& netif : netifs_) {
    if (netif->config_.gateway != 0) {
      return netif.get();
    }
  }
  return netifs_.empty() ? nullptr : netifs_.front().get();
}

std::shared_ptr<UdpSocket> NetStack::UdpOpen() {
  auto sock = std::shared_ptr<UdpSocket>(new UdpSocket(this));
  std::uint16_t port = AllocEphemeralPort();
  sock->port_ = port;
  udp_ports_.Insert(port, sock);
  return sock;
}

std::shared_ptr<TcpListener> NetStack::TcpListen(std::uint16_t port) {
  if (tcp_listeners_.Read()->contains(port)) {
    return nullptr;
  }
  auto listener = std::shared_ptr<TcpListener>(new TcpListener(this, port));
  tcp_listeners_.Insert(port, listener);
  return listener;
}

std::shared_ptr<TcpSocket> NetStack::TcpConnect(Ip4Addr dst, std::uint16_t port) {
  NetIf* netif = RouteTo(dst);
  if (netif == nullptr) {
    return nullptr;
  }
  auto sock = std::shared_ptr<TcpSocket>(new TcpSocket(this, netif));
  sock->remote_ip_ = dst;
  sock->remote_port_ = port;
  sock->local_port_ = AllocEphemeralPort();
  sock->tx_queue_ = netif->TxQueueFor(dst, sock->local_port_, port);
  std::uint32_t iss = NewIss();
  sock->snd_una_ = iss;
  sock->snd_nxt_ = iss + 1;  // SYN consumes one
  sock->EnterState(TcpState::kSynSent);
  tcp_conns_.Insert(ConnKey{sock->local_port_, dst, port}, sock);
  // SYN segment. The modern stack offers its options here; negotiation
  // completes when the SYN|ACK arrives (TcpSocket::OnSegment). The window
  // field of a SYN is always unscaled — rcv_wscale_ is still 0 here, so
  // AdvertisedWindow() is the raw clamped space.
  TcpHeader hdr;
  hdr.src_port = sock->local_port_;
  hdr.dst_port = port;
  hdr.seq = iss;
  hdr.flags = kTcpSyn;
  hdr.window = sock->AdvertisedWindow();
  if (tcp_modern) {
    hdr.mss = static_cast<std::uint16_t>(TcpSocket::kMss);
    hdr.wscale = WscaleFor(sock->recv_cap_);
    hdr.sack_permitted = true;
    sock->rcv_wscale_offer_ = hdr.wscale;
    sock->sack_offered_ = true;
  }
  ++sock->tcp_stats_.segments_sent;
  SendTcpHeaderOnly(netif, dst, hdr, sock->tx_queue_);
  sock->rtx_epoch_cycles_ = clock_->cycles();
  return sock;
}

bool NetStack::Ping(Ip4Addr dst, std::uint16_t seq) {
  NetIf* netif = RouteTo(dst);
  if (netif == nullptr) {
    return false;
  }
  IcmpEcho echo;
  echo.is_reply = false;
  echo.id = 0x77;
  echo.seq = seq;
  echo.payload = {'u', 'k', 'r', 'a', 'f', 't'};
  return netif->SendIp(dst, kIpProtoIcmp, echo.Serialize());
}

void NetStack::Poll() {
  for (auto& netif : netifs_) {
    netif->Poll();
  }
  RunTcpTimers();
  // Turn boundary: this caller holds no registry snapshot anymore.
  rcu_.Quiescent(kAllQueuesSlot);
}

void NetStack::RunTcpTimers() {
  // Timers, plus TIME_WAIT reaping: a connection lingers registered for a
  // 2MSL-equivalent number of poll cycles so retransmitted FINs are re-ACKed
  // instead of RST; afterwards the key is reclaimed.
  // Iterate the published snapshot (safe even if CheckTimer unlinks a
  // connection — that publishes a NEW version, the one under our feet is
  // immutable) and reap in a single copy-on-write pass.
  std::vector<ConnKey> reap;
  for (const auto& [key, connp] : *tcp_conns_.Read()) {
    TcpSocket& conn = *connp;
    conn.CheckTimer();
    if (conn.state() == TcpState::kTimeWait &&
        (conn.time_wait_polls_left_ == 0 || --conn.time_wait_polls_left_ == 0)) {
      // A zero budget (entry value or counted down) reaps on the next poll,
      // so the knob's minimum means "shortest linger", never "forever".
      reap.push_back(key);
    }
  }
  if (!reap.empty()) {
    tcp_conns_.Update([&](auto& conns) {
      for (const ConnKey& k : reap) {
        conns.erase(k);
      }
    });
  }
}

// ---- interrupt-driven idle ---------------------------------------------------------

void NetStack::SetScheduler(uksched::Scheduler* sched) {
  sched_ = sched;
  EnsureWaitQueues();
}

void NetStack::EnsureWaitQueues() {
  if (sched_ == nullptr) {
    return;
  }
  std::uint16_t max_queues = 1;
  for (const auto& netif : netifs_) {
    max_queues = std::max(max_queues, netif->queue_count());
  }
  while (rx_waits_.size() < max_queues) {
    rx_waits_.push_back(std::make_unique<uksched::WaitQueue>(sched_));
  }
  if (any_wait_ == nullptr) {
    any_wait_ = std::make_unique<uksched::WaitQueue>(sched_);
  }
}

void NetStack::WakeRxWaiters(std::uint16_t queue) {
  if (queue < rx_waits_.size() && rx_waits_[queue] != nullptr) {
    rx_waits_[queue]->Wake();
  }
  if (any_wait_ != nullptr) {
    any_wait_->Wake();
  }
}

void NetStack::OnTxPoolRefill(NetIf* netif, std::uint16_t queue) {
  bool raised = false;
  for (const auto& [key, conn] : *tcp_conns_.Read()) {
    if (conn->netif_ == netif && conn->tx_queue_ == queue &&
        conn->tx_pool_starved_) {
      conn->tx_pool_starved_ = false;
      conn->RaiseEvent(kEvtWritable);
      raised = true;
    }
  }
  if (raised) {
    // The kEvtWritable edges above already woke every PollWait sleeper via
    // NotifySocketEvent; nothing more to do.
    return;
  }
  // No starved connection registered (raw netdev apps, UDP senders): ring the
  // queue doorbell so a loop parked on this queue re-runs its TX backlog.
  RaiseQueueEvent(queue);
}

void NetStack::RaiseQueueEvent(std::uint16_t queue) {
  EnsureWaitQueues();
  // Release on both sequences: the producer's work (ring push, fd steer) was
  // published before the ring — a waiter that observes the bump (acquire)
  // sees the work. The arrays are fixed-size, so a producer on a foreign
  // loop never races a resize.
  queue_event_seq_[QueueSlot(queue)].fetch_add(1, std::memory_order_release);
  queue_event_total_.fetch_add(1, std::memory_order_release);
  // Targeted wake: one doorbell, one consumer. The queue's pinned loop is the
  // intended recipient; a single kAllQueues waiter also qualifies (a
  // single-loop deployment parks there). Anything else keeps sleeping.
  if (queue < rx_waits_.size() && rx_waits_[queue] != nullptr) {
    rx_waits_[queue]->WakeOne();
  }
  if (any_wait_ != nullptr) {
    any_wait_->WakeOne();
  }
}

std::uint64_t NetStack::NextTimerDeadline() const {
  std::uint64_t earliest = kNoDeadline;
  for (const auto& [key, conn] : *tcp_conns_.Read()) {
    std::uint64_t d = kNoDeadline;
    if (SeqLt(conn->snd_una_, conn->snd_nxt_)) {
      // RTO of in-flight data, at the connection's current backoff.
      d = conn->rtx_epoch_cycles_ + rto_cycles * conn->rto_backoff_;
      if (tcp_modern && conn->sack_enabled_ && !conn->tlp_probe_sent_ &&
          conn->rto_backoff_ == 1) {
        // Tail-loss probe fires at a quarter RTO; a blocked loop has to wake
        // for it or the probe degenerates back into the full RTO stall it
        // exists to avoid.
        d = std::min(d, conn->rtx_epoch_cycles_ + rto_cycles / 4);
      }
    } else if (conn->state() == TcpState::kTimeWait) {
      // TIME_WAIT reaping counts poll passes, not cycles; bound the sleep so
      // a blocking loop still retires the connection in finite virtual time.
      d = clock_->cycles() + rto_cycles;
    }
    if (conn->delack_pending_ && conn->delack_deadline_ < d) {
      // An owed ACK bounds the sleep too. In practice the end-of-turn flush
      // in RunTcpTimers pays the debt before any loop ever parks, but the
      // deadline keeps the contract airtight for callers that block between
      // RX and the timer pass.
      d = conn->delack_deadline_;
    }
    earliest = std::min(earliest, d);
  }
  return earliest;
}

std::size_t NetStack::PollWait(std::uint16_t queue, std::uint64_t timeout_cycles) {
  const bool all = queue == kAllQueues;
  // Per-loop accounting: a pinned waiter owns its queue's slot, a kAllQueues
  // waiter the shared extra slot. Relaxed — each slot has one writer (this
  // loop); readers sum snapshots.
  WaitSlot& ws = wait_slots_[all ? kAllQueuesSlot : QueueSlot(queue)];
  // This loop's RCU slot: announced quiescent at every point where the turn
  // provably holds no registry snapshot (before parking, and on return).
  const std::size_t rcu_slot = all ? kAllQueuesSlot : QueueSlot(queue);
  auto drain = [&]() -> std::size_t {
    ws.poll_iterations.fetch_add(1, std::memory_order_relaxed);
    std::size_t n = 0;
    for (auto& netif : netifs_) {
      n += all ? netif->Poll() : netif->Poll(queue);
    }
    RunTcpTimers();
    return n;
  };
  auto for_each_queue = [&](auto&& fn) {
    const std::uint16_t lo = all ? 0 : queue;
    const std::uint16_t hi =
        all ? static_cast<std::uint16_t>(rx_waits_.size())
            : static_cast<std::uint16_t>(queue + 1);
    for (std::uint16_t q = lo; q < hi; ++q) {
      fn(q);
    }
  };
  auto arm = [&] {
    for (auto& netif : netifs_) {
      for_each_queue([&](std::uint16_t q) { netif->ArmRx(q); });
    }
  };

  std::size_t handled = drain();
  if (handled > 0 || !CanBlock()) {
    rcu_.Quiescent(rcu_slot);
    return handled;  // degrades to one Poll-equivalent pass
  }
  uksched::WaitQueue* wq = all ? any_wait_.get()
                               : (queue < rx_waits_.size() ? rx_waits_[queue].get()
                                                           : nullptr);
  if (wq == nullptr) {
    return handled;
  }
  // This sleeper holds the affected lines armed for the whole blocking phase;
  // the matching release on return only disarms lines nobody else holds.
  for_each_queue([&](std::uint16_t q) {
    rx_arm_counts_[QueueSlot(q)].fetch_add(1, std::memory_order_acq_rel);
  });
  // Readiness edges delivered to registered sinks also end this wait: a
  // sibling loop may consume the frames, but the *event* (readable/writable/
  // acceptable) still belongs to this caller's sockets — return so it can
  // rescan instead of sleeping through its own readiness.
  const std::uint64_t events_at_entry =
      event_seq_.load(std::memory_order_acquire);
  // Soft per-queue doorbells (RaiseQueueEvent) end this wait the same way: a
  // pinned waiter watches its own queue's sequence, a kAllQueues waiter the
  // stack-wide sum. Acquire pairs with the producer's release so the woken
  // consumer sees the pushed work.
  auto soft_seq = [&]() -> std::uint64_t {
    if (all) {
      return queue_event_total_.load(std::memory_order_acquire);
    }
    return queue_event_seq_[QueueSlot(queue)].load(std::memory_order_acquire);
  };
  const std::uint64_t soft_at_entry = soft_seq();
  const std::uint64_t now = clock_->cycles();
  const std::uint64_t caller_deadline =
      timeout_cycles >= kNoDeadline - now ? kNoDeadline : now + timeout_cycles;
  for (;;) {
    // Arm-THEN-check: the interrupt line goes live before the verifying
    // drain, so a frame arriving in between either lands in this drain or
    // fires the armed line — it can never be missed (netdev.h rule 3).
    arm();
    handled = drain();
    if (handled > 0) {
      break;
    }
    const std::uint64_t deadline = std::min(caller_deadline, NextTimerDeadline());
    ws.blocked_waits.fetch_add(1, std::memory_order_relaxed);
    // Parking is a quiescent state: every snapshot this turn read is done.
    rcu_.Quiescent(rcu_slot);
    const bool woken = wq->WaitTimeout(deadline);
    if (woken) {
      ws.frame_wakeups.fetch_add(1, std::memory_order_relaxed);
      handled = drain();  // this RxBurst also re-arms drained lines
      if (soft_seq() != soft_at_entry) {
        ws.queue_event_wakeups.fetch_add(1, std::memory_order_relaxed);
        break;  // a doorbell rang for this queue: caller drains its rings
      }
      if (handled > 0 ||
          event_seq_.load(std::memory_order_acquire) != events_at_entry) {
        break;  // frames in hand, or a registered socket has pending events
      }
      // Spurious (another loop drained the frames first): sleep again.
    } else {
      ws.timer_wakeups.fetch_add(1, std::memory_order_relaxed);
      handled = drain();  // run the due timer work (RTO retransmit, 2MSL)
      break;  // a deadline fired: hand control back to the caller
    }
  }
  // Interrupts are live only while someone sleeps: disarm each line this
  // caller held once its count drops to zero. A still-blocked sibling
  // (per-queue waiter vs a kAllQueues waiter) keeps its line armed.
  for_each_queue([&](std::uint16_t q) {
    auto& holders = rx_arm_counts_[QueueSlot(q)];
    if (holders.load(std::memory_order_acquire) > 0 &&
        holders.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      for (auto& netif : netifs_) {
        netif->DisarmRx(q);
      }
    }
  });
  rcu_.Quiescent(rcu_slot);
  return handled;
}

NetStack::WaitStats NetStack::wait_stats() const {
  WaitStats sum;
  for (const WaitSlot& s : wait_slots_) {
    sum.poll_iterations += s.poll_iterations.load(std::memory_order_relaxed);
    sum.blocked_waits += s.blocked_waits.load(std::memory_order_relaxed);
    sum.frame_wakeups += s.frame_wakeups.load(std::memory_order_relaxed);
    sum.timer_wakeups += s.timer_wakeups.load(std::memory_order_relaxed);
    sum.queue_event_wakeups +=
        s.queue_event_wakeups.load(std::memory_order_relaxed);
  }
  return sum;
}

NetStack::WaitStats NetStack::wait_stats(std::uint16_t queue) const {
  const WaitSlot& s =
      wait_slots_[queue == kAllQueues ? kAllQueuesSlot : QueueSlot(queue)];
  return WaitStats{
      .poll_iterations = s.poll_iterations.load(std::memory_order_relaxed),
      .blocked_waits = s.blocked_waits.load(std::memory_order_relaxed),
      .frame_wakeups = s.frame_wakeups.load(std::memory_order_relaxed),
      .timer_wakeups = s.timer_wakeups.load(std::memory_order_relaxed),
      .queue_event_wakeups =
          s.queue_event_wakeups.load(std::memory_order_relaxed),
  };
}

bool NetStack::PollUntil(const std::function<bool()>& pred, int max_iters) {
  for (int i = 0; i < max_iters; ++i) {
    if (pred()) {
      return true;
    }
    Poll();
  }
  return pred();
}

std::uint16_t NetStack::AllocEphemeralPort() {
  for (int tries = 0; tries < 20000; ++tries) {
    std::uint16_t port = next_ephemeral_;
    next_ephemeral_ = next_ephemeral_ >= 65534 ? 49152 : next_ephemeral_ + 1;
    bool used = udp_ports_.Read()->contains(port) ||
                tcp_listeners_.Read()->contains(port);
    for (const auto& [key, conn] : *tcp_conns_.Read()) {
      used = used || key.local_port == port;
    }
    if (!used) {
      return port;
    }
  }
  return 0;
}

std::uint32_t NetStack::NewIss() {
  return static_cast<std::uint32_t>(ukarch::Mix64(iss_counter_++));
}

bool NetStack::HandleIpPacket(NetIf* netif, std::uint16_t queue, uknetdev::NetBuf* nb,
                              const Ip4Header& ip,
                              std::span<const std::uint8_t> payload) {
  switch (ip.proto) {
    case kIpProtoUdp: return HandleUdp(netif, queue, nb, ip, payload);
    case kIpProtoTcp: HandleTcp(netif, queue, ip, payload); break;
    case kIpProtoIcmp: HandleIcmp(netif, queue, ip, payload); break;
    default: break;
  }
  return false;
}

bool NetStack::HandleUdp(NetIf* netif, std::uint16_t queue, uknetdev::NetBuf* nb,
                         const Ip4Header& ip,
                         std::span<const std::uint8_t> payload) {
  (void)netif;
  auto hdr = UdpHeader::Parse(payload, ip.src, ip.dst);
  if (!hdr.has_value()) {
    return false;
  }
  ++stats_.udp_rx;
  const auto* udp_ports = udp_ports_.Read();  // lock-free demux
  auto it = udp_ports->find(hdr->dst_port);
  if (it == udp_ports->end()) {
    ++stats_.no_socket_drops;
    return false;
  }
  UdpSocket& sock = *it->second;
  if (sock.rx_.size() >= UdpSocket::kMaxQueue) {
    ++stats_.no_socket_drops;
    return false;
  }
  DatagramView view;
  view.src_ip = ip.src;
  view.src_port = hdr->src_port;
  view.len = hdr->length - kUdpHdrBytes;
  view.rx_queue = queue;
  sock.last_rx_queue_ = queue;
  // Zero-copy delivery: the socket queue takes ownership of the netbuf and
  // records a view of the payload bytes where they already are. Retaining is
  // only safe while the RX pool keeps enough buffers circulating — a slow
  // consumer must not park the whole pool and stall RX for the interface —
  // so below the low-water mark delivery degrades to copy-and-free.
  bool retain = nb != nullptr && nb->pool != nullptr &&
                nb->pool->available() >= nb->pool->capacity() / 4;
  if (retain) {
    view.data = payload.data() + kUdpHdrBytes;
    view.nb = nb;
  } else {
    view.owned.assign(payload.begin() + kUdpHdrBytes,
                      payload.begin() + hdr->length);
    view.data = view.owned.data();
    view.nb = nullptr;
  }
  sock.rx_.push_back(std::move(view));
  sock.RaiseEvent(kEvtReadable);  // demux push: the datagram is readable now
  if (sock.rx_cb_) {
    sock.rx_cb_();
  }
  return retain;
}

void NetStack::HandleIcmp(NetIf* netif, std::uint16_t queue, const Ip4Header& ip,
                          std::span<const std::uint8_t> payload) {
  auto echo = IcmpEcho::Parse(payload);
  if (!echo.has_value()) {
    return;
  }
  ++stats_.icmp_rx;
  if (echo->is_reply) {
    ++pings_answered_;
    return;
  }
  IcmpEcho reply = *echo;
  reply.is_reply = true;
  netif->SendIp(ip.src, kIpProtoIcmp, reply.Serialize(), queue);
}

void NetStack::SendRst(NetIf* netif, const Ip4Header& ip, const TcpHeader& hdr,
                       std::size_t payload_len, std::uint16_t queue) {
  ++stats_.rst_sent;
  TcpHeader rst;
  rst.src_port = hdr.dst_port;
  rst.dst_port = hdr.src_port;
  rst.flags = kTcpRst | kTcpAck;
  rst.seq = (hdr.flags & kTcpAck) != 0 ? hdr.ack : 0;
  rst.ack = hdr.seq + static_cast<std::uint32_t>(payload_len) +
            (((hdr.flags & kTcpSyn) != 0) ? 1 : 0);
  SendTcpHeaderOnly(netif, ip.src, rst, queue);
}

void NetStack::HandleTcp(NetIf* netif, std::uint16_t queue, const Ip4Header& ip,
                         std::span<const std::uint8_t> payload) {
  std::size_t header_len = 0;
  auto hdr = TcpHeader::Parse(payload, ip.src, ip.dst, &header_len);
  if (!hdr.has_value()) {
    return;
  }
  ++stats_.tcp_rx;
  std::span<const std::uint8_t> data = payload.subspan(header_len);

  // Established-connection demux first.
  const auto* conns = tcp_conns_.Read();  // lock-free demux
  auto conn = conns->find(ConnKey{hdr->dst_port, ip.src, hdr->src_port});
  if (conn != conns->end()) {
    // Keep the socket alive through the callback even if it removes itself.
    auto sock = conn->second;
    sock->OnSegment(queue, *hdr, data);
    return;
  }

  // New connection for a listener?
  if ((hdr->flags & kTcpSyn) != 0 && (hdr->flags & kTcpAck) == 0) {
    const auto* listeners = tcp_listeners_.Read();
    auto listener = listeners->find(hdr->dst_port);
    if (listener != listeners->end()) {
      auto sock = std::shared_ptr<TcpSocket>(new TcpSocket(this, netif));
      sock->remote_ip_ = ip.src;
      sock->remote_port_ = hdr->src_port;
      sock->local_port_ = hdr->dst_port;
      // Flow affinity: the accepted connection lives on the queue its SYN
      // arrived on (which the symmetric hash also steers its TX to).
      sock->tx_queue_ = netif->TxQueueFor(ip.src, hdr->dst_port, hdr->src_port);
      sock->last_rx_queue_ = queue;
      sock->rcv_nxt_ = hdr->seq + 1;
      // Buffer caps are inherited from the listener BEFORE the wscale offer
      // below is computed from recv_cap_.
      sock->SetBufferCaps(listener->second->accept_send_cap_,
                          listener->second->accept_recv_cap_);
      sock->UpdateSendWindow(*hdr);  // SYN window: never scaled
      std::uint32_t iss = NewIss();
      sock->snd_una_ = iss;
      sock->snd_nxt_ = iss + 1;
      sock->EnterState(TcpState::kSynRcvd);
      tcp_conns_.Insert(ConnKey{hdr->dst_port, ip.src, hdr->src_port}, sock);
      // SYN|ACK, echoing the extensions the client offered (each one is on
      // only when both SYNs carry it; a plain SYN gets a plain SYN|ACK).
      // Its window field is unscaled by definition — rcv_wscale_ is still 0
      // when AdvertisedWindow() is read here.
      TcpHeader synack;
      synack.src_port = hdr->dst_port;
      synack.dst_port = hdr->src_port;
      synack.seq = iss;
      synack.ack = sock->rcv_nxt_;
      synack.flags = kTcpSyn | kTcpAck;
      synack.window = sock->AdvertisedWindow();
      if (tcp_modern) {
        synack.mss = static_cast<std::uint16_t>(TcpSocket::kMss);
        if (hdr->mss != 0) {
          sock->peer_mss_ = hdr->mss;
        }
        if (hdr->wscale >= 0) {
          synack.wscale = WscaleFor(sock->recv_cap_);
          sock->snd_wscale_ = hdr->wscale;
          sock->rcv_wscale_ = synack.wscale;
        }
        if (hdr->sack_permitted) {
          synack.sack_permitted = true;
          sock->sack_enabled_ = true;
        }
      }
      ++sock->tcp_stats_.segments_sent;
      SendTcpHeaderOnly(netif, ip.src, synack, sock->tx_queue_);
      sock->rtx_epoch_cycles_ = clock_->cycles();
      return;
    }
  }
  // No socket: RST (unless the segment itself is a RST).
  if ((hdr->flags & kTcpRst) == 0) {
    SendRst(netif, ip, *hdr, data.size(), queue);
  }
  ++stats_.no_socket_drops;
}

void NetStack::NotifyAccepted(TcpSocket* sock) {
  const auto* listeners = tcp_listeners_.Read();
  auto listener = listeners->find(sock->local_port_);
  if (listener == listeners->end()) {
    return;
  }
  // Find the shared_ptr for this socket.
  const auto* conns = tcp_conns_.Read();
  auto conn = conns->find(
      ConnKey{sock->local_port_, sock->remote_ip_, sock->remote_port_});
  if (conn != conns->end()) {
    listener->second->accept_queue_.push_back(conn->second);
    listener->second->RaiseEvent(kEvtAcceptable);  // handshake completed
  }
}

void NetStack::RemoveConnection(TcpSocket* sock) {
  tcp_conns_.Erase(
      ConnKey{sock->local_port_, sock->remote_ip_, sock->remote_port_});
}

}  // namespace uknet
