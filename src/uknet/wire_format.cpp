#include "uknet/wire_format.h"

#include <cstring>

namespace uknet {

namespace {

void PutU16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v);
}

void PutU32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

std::uint16_t GetU16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

std::uint32_t GetU32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) | (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}

}  // namespace

Ip4Addr MakeIp(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d) {
  return (static_cast<Ip4Addr>(a) << 24) | (static_cast<Ip4Addr>(b) << 16) |
         (static_cast<Ip4Addr>(c) << 8) | d;
}

std::string IpToString(Ip4Addr ip) {
  return std::to_string(ip >> 24) + "." + std::to_string((ip >> 16) & 0xff) + "." +
         std::to_string((ip >> 8) & 0xff) + "." + std::to_string(ip & 0xff);
}

std::uint16_t InternetChecksum(std::span<const std::uint8_t> data, std::uint32_t initial) {
  std::uint32_t sum = initial;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>((data[i] << 8) | data[i + 1]);
  }
  if (i < data.size()) {
    sum += static_cast<std::uint32_t>(data[i] << 8);
  }
  while ((sum >> 16) != 0) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum);
}

std::uint32_t PseudoHeaderSum(Ip4Addr src, Ip4Addr dst, std::uint8_t proto,
                              std::uint16_t length) {
  std::uint32_t sum = 0;
  sum += (src >> 16) + (src & 0xffff);
  sum += (dst >> 16) + (dst & 0xffff);
  sum += proto;
  sum += length;
  return sum;
}

// ---- Ethernet -------------------------------------------------------------------

void EthHeader::Serialize(std::uint8_t* out) const {
  std::memcpy(out, dst.bytes, 6);
  std::memcpy(out + 6, src.bytes, 6);
  PutU16(out + 12, ethertype);
}

EthHeader EthHeader::Parse(std::span<const std::uint8_t> in) {
  EthHeader h;
  if (in.size() < kEthHdrBytes) {
    return h;
  }
  std::memcpy(h.dst.bytes, in.data(), 6);
  std::memcpy(h.src.bytes, in.data() + 6, 6);
  h.ethertype = GetU16(in.data() + 12);
  return h;
}

// ---- ARP ------------------------------------------------------------------------

void ArpPacket::Serialize(std::uint8_t* out) const {
  PutU16(out, 1);               // htype ethernet
  PutU16(out + 2, kEthTypeIp4); // ptype
  out[4] = 6;                   // hlen
  out[5] = 4;                   // plen
  PutU16(out + 6, oper);
  std::memcpy(out + 8, sender_mac.bytes, 6);
  PutU32(out + 14, sender_ip);
  std::memcpy(out + 18, target_mac.bytes, 6);
  PutU32(out + 24, target_ip);
}

std::optional<ArpPacket> ArpPacket::Parse(std::span<const std::uint8_t> in) {
  if (in.size() < kArpBytes || GetU16(in.data()) != 1 ||
      GetU16(in.data() + 2) != kEthTypeIp4) {
    return std::nullopt;
  }
  ArpPacket p;
  p.oper = GetU16(in.data() + 6);
  std::memcpy(p.sender_mac.bytes, in.data() + 8, 6);
  p.sender_ip = GetU32(in.data() + 14);
  std::memcpy(p.target_mac.bytes, in.data() + 18, 6);
  p.target_ip = GetU32(in.data() + 24);
  return p;
}

// ---- IPv4 -----------------------------------------------------------------------

void Ip4Header::Serialize(std::uint8_t* out) const {
  out[0] = 0x45;  // version 4, ihl 5
  out[1] = 0;
  PutU16(out + 2, total_len);
  PutU16(out + 4, id);
  PutU16(out + 6, 0x4000);  // DF, no fragments
  out[8] = ttl;
  out[9] = proto;
  PutU16(out + 10, 0);  // checksum placeholder
  PutU32(out + 12, src);
  PutU32(out + 16, dst);
  std::uint16_t csum = InternetChecksum(std::span(out, kIp4HdrBytes));
  PutU16(out + 10, csum);
}

std::optional<Ip4Header> Ip4Header::Parse(std::span<const std::uint8_t> in) {
  if (in.size() < kIp4HdrBytes || (in[0] >> 4) != 4) {
    return std::nullopt;
  }
  std::size_t ihl = static_cast<std::size_t>(in[0] & 0x0f) * 4;
  if (ihl < kIp4HdrBytes || in.size() < ihl) {
    return std::nullopt;
  }
  if (InternetChecksum(in.first(ihl)) != 0) {
    return std::nullopt;  // corrupted header
  }
  Ip4Header h;
  h.header_len = static_cast<std::uint8_t>(ihl);
  h.total_len = GetU16(in.data() + 2);
  h.id = GetU16(in.data() + 4);
  h.ttl = in[8];
  h.proto = in[9];
  h.src = GetU32(in.data() + 12);
  h.dst = GetU32(in.data() + 16);
  if (h.total_len < ihl || h.total_len > in.size()) {
    return std::nullopt;
  }
  return h;
}

// ---- UDP ------------------------------------------------------------------------

void UdpHeader::Serialize(std::uint8_t* out, Ip4Addr src_ip, Ip4Addr dst_ip,
                          std::span<const std::uint8_t> payload) const {
  PutU16(out, src_port);
  PutU16(out + 2, dst_port);
  PutU16(out + 4, static_cast<std::uint16_t>(kUdpHdrBytes + payload.size()));
  PutU16(out + 6, 0);
  // Checksum covers pseudo-header + header + payload; header bytes first.
  std::uint32_t init = PseudoHeaderSum(
      src_ip, dst_ip, kIpProtoUdp,
      static_cast<std::uint16_t>(kUdpHdrBytes + payload.size()));
  // Fold the header (with zero checksum field).
  std::uint32_t sum = init;
  sum += static_cast<std::uint32_t>((out[0] << 8) | out[1]);
  sum += static_cast<std::uint32_t>((out[2] << 8) | out[3]);
  sum += static_cast<std::uint32_t>((out[4] << 8) | out[5]);
  std::uint16_t csum = InternetChecksum(payload, sum);
  if (csum == 0) {
    csum = 0xffff;  // RFC 768: zero means "no checksum"
  }
  PutU16(out + 6, csum);
}

std::optional<UdpHeader> UdpHeader::Parse(std::span<const std::uint8_t> datagram,
                                          Ip4Addr src_ip, Ip4Addr dst_ip,
                                          bool verify_checksum) {
  if (datagram.size() < kUdpHdrBytes) {
    return std::nullopt;
  }
  UdpHeader h;
  h.src_port = GetU16(datagram.data());
  h.dst_port = GetU16(datagram.data() + 2);
  h.length = GetU16(datagram.data() + 4);
  if (h.length < kUdpHdrBytes || h.length > datagram.size()) {
    return std::nullopt;
  }
  if (verify_checksum && GetU16(datagram.data() + 6) != 0) {
    std::uint32_t init = PseudoHeaderSum(src_ip, dst_ip, kIpProtoUdp, h.length);
    if (InternetChecksum(datagram.first(h.length), init) != 0) {
      return std::nullopt;
    }
  }
  return h;
}

// ---- TCP ------------------------------------------------------------------------

std::size_t TcpHeader::OptionBytes() const {
  std::size_t raw = 0;
  if (mss != 0) {
    raw += 4;
  }
  if (wscale >= 0) {
    raw += 3;
  }
  if (sack_permitted) {
    raw += 2;
  }
  if (sack_count > 0) {
    raw += 2 + 8 * static_cast<std::size_t>(sack_count);
  }
  return (raw + 3) & ~std::size_t{3};  // NOP-pad to a 4-byte multiple
}

void TcpHeader::Serialize(std::uint8_t* out, Ip4Addr src_ip, Ip4Addr dst_ip,
                          std::span<const std::uint8_t> payload) const {
  const std::size_t hdr_bytes = HeaderBytes();
  PutU16(out, src_port);
  PutU16(out + 2, dst_port);
  PutU32(out + 4, seq);
  PutU32(out + 8, ack);
  out[12] = static_cast<std::uint8_t>((hdr_bytes / 4) << 4);  // data offset
  out[13] = flags;
  PutU16(out + 14, window);
  PutU16(out + 16, 0);  // checksum placeholder
  PutU16(out + 18, 0);  // urgent
  std::uint8_t* opt = out + kTcpHdrBytes;
  if (mss != 0) {
    opt[0] = 2;
    opt[1] = 4;
    PutU16(opt + 2, mss);
    opt += 4;
  }
  if (wscale >= 0) {
    opt[0] = 3;
    opt[1] = 3;
    opt[2] = static_cast<std::uint8_t>(wscale);
    opt += 3;
  }
  if (sack_permitted) {
    opt[0] = 4;
    opt[1] = 2;
    opt += 2;
  }
  if (sack_count > 0) {
    opt[0] = 5;
    opt[1] = static_cast<std::uint8_t>(2 + 8 * sack_count);
    for (std::uint8_t i = 0; i < sack_count; ++i) {
      PutU32(opt + 2 + 8 * i, sacks[i].start);
      PutU32(opt + 6 + 8 * i, sacks[i].end);
    }
    opt += 2 + 8 * sack_count;
  }
  while (opt < out + hdr_bytes) {
    *opt++ = 1;  // NOP padding
  }
  std::uint32_t init = PseudoHeaderSum(
      src_ip, dst_ip, kIpProtoTcp,
      static_cast<std::uint16_t>(hdr_bytes + payload.size()));
  std::uint32_t sum = init;
  for (std::size_t i = 0; i < hdr_bytes; i += 2) {
    sum += static_cast<std::uint32_t>((out[i] << 8) | out[i + 1]);
  }
  std::uint16_t csum = InternetChecksum(payload, sum);
  PutU16(out + 16, csum);
}

std::optional<TcpHeader> TcpHeader::Parse(std::span<const std::uint8_t> segment,
                                          Ip4Addr src_ip, Ip4Addr dst_ip,
                                          std::size_t* header_len,
                                          bool verify_checksum) {
  if (segment.size() < kTcpHdrBytes) {
    return std::nullopt;
  }
  std::size_t off = static_cast<std::size_t>(segment[12] >> 4) * 4;
  if (off < kTcpHdrBytes || off > segment.size()) {
    return std::nullopt;
  }
  if (verify_checksum) {
    std::uint32_t init = PseudoHeaderSum(src_ip, dst_ip, kIpProtoTcp,
                                         static_cast<std::uint16_t>(segment.size()));
    if (InternetChecksum(segment, init) != 0) {
      return std::nullopt;
    }
  }
  TcpHeader h;
  h.src_port = GetU16(segment.data());
  h.dst_port = GetU16(segment.data() + 2);
  h.seq = GetU32(segment.data() + 4);
  h.ack = GetU32(segment.data() + 8);
  h.flags = segment[13];
  h.window = GetU16(segment.data() + 14);
  // Walk the option area: END stops, NOP is 1 byte, everything else is TLV.
  // Unknown kinds are skipped; a zero/truncated length aborts the walk (the
  // header stays usable — options parsed so far are kept).
  std::size_t i = kTcpHdrBytes;
  while (i < off) {
    std::uint8_t kind = segment[i];
    if (kind == 0) {
      break;
    }
    if (kind == 1) {
      ++i;
      continue;
    }
    if (i + 1 >= off) {
      break;
    }
    std::size_t len = segment[i + 1];
    if (len < 2 || i + len > off) {
      break;
    }
    switch (kind) {
      case 2:
        if (len == 4) {
          h.mss = GetU16(segment.data() + i + 2);
        }
        break;
      case 3:
        if (len == 3) {
          // RFC 7323 caps the shift at 14; clamp rather than reject.
          h.wscale = static_cast<std::int8_t>(
              segment[i + 2] > 14 ? 14 : segment[i + 2]);
        }
        break;
      case 4:
        if (len == 2) {
          h.sack_permitted = true;
        }
        break;
      case 5:
        if (len >= 10 && (len - 2) % 8 == 0) {
          std::size_t n = (len - 2) / 8;
          for (std::size_t b = 0; b < n && h.sack_count < h.sacks.size(); ++b) {
            h.sacks[h.sack_count].start = GetU32(segment.data() + i + 2 + 8 * b);
            h.sacks[h.sack_count].end = GetU32(segment.data() + i + 6 + 8 * b);
            ++h.sack_count;
          }
        }
        break;
      default:
        break;
    }
    i += len;
  }
  *header_len = off;
  return h;
}

// ---- ICMP -----------------------------------------------------------------------

std::vector<std::uint8_t> IcmpEcho::Serialize() const {
  std::vector<std::uint8_t> out(8 + payload.size());
  out[0] = is_reply ? 0 : 8;
  out[1] = 0;
  PutU16(out.data() + 4, id);
  PutU16(out.data() + 6, seq);
  std::copy(payload.begin(), payload.end(), out.begin() + 8);
  std::uint16_t csum = InternetChecksum(out);
  PutU16(out.data() + 2, csum);
  return out;
}

std::optional<IcmpEcho> IcmpEcho::Parse(std::span<const std::uint8_t> in) {
  if (in.size() < 8 || (in[0] != 0 && in[0] != 8)) {
    return std::nullopt;
  }
  if (InternetChecksum(in) != 0) {
    return std::nullopt;
  }
  IcmpEcho e;
  e.is_reply = in[0] == 0;
  e.id = GetU16(in.data() + 4);
  e.seq = GetU16(in.data() + 6);
  e.payload.assign(in.begin() + 8, in.end());
  return e;
}

}  // namespace uknet
