#include "uknetdev/netdev.h"

// Interface-only translation unit; anchors the vtable.
