// uknetdev/virtio_net.h - virtio-net driver + embedded device backend.
//
// The guest half implements the uknetdev API over split virtqueue pairs in
// guest memory (single-segment chains carrying virtio_net_hdr + frame, as
// modern drivers do with VIRTIO_F_ANY_LAYOUT). Multi-queue follows
// VIRTIO_NET_F_MQ: the application configures up to |max_queue_pairs| TX/RX
// pairs, each with its own ring, buffer pool and interrupt line; the device
// side classifies incoming frames with the shared RSS hash (rss.h) so a
// flow's frames always complete on one RX queue. The device half moves
// frames between the rings and a ukplat::Wire, with costs per backend:
//
//  * vhost-net  — kicks are VM exits + eventfd wakeups, and every packet pays
//    the host kernel tap path (§6.2's slower configuration);
//  * vhost-user — a DPDK-based userspace poller: no kicks, cheap per-packet
//    ring work, at the cost of a host core spinning (which is exactly the
//    trade-off the paper states for Fig 19).
#ifndef UKNETDEV_VIRTIO_NET_H_
#define UKNETDEV_VIRTIO_NET_H_

#include <atomic>
#include <memory>
#include <vector>

#include "uknetdev/netdev.h"
#include "ukplat/clock.h"
#include "ukplat/memregion.h"
#include "ukplat/virtqueue.h"
#include "ukplat/wire.h"

namespace uknetdev {

enum class VirtioBackend { kVhostNet, kVhostUser };

class VirtioNet final : public NetDev {
 public:
  static constexpr std::uint16_t kMaxQueuePairs = 8;

  struct Config {
    VirtioBackend backend = VirtioBackend::kVhostNet;
    MacAddr mac{};
    std::uint16_t queue_size = 256;
    int wire_side = 0;  // 0 sends dir-0 frames, receives dir-1 (and vice versa)
    // Queue pairs the device offers (VIRTIO_NET_F_MQ's max_virtqueue_pairs).
    std::uint16_t max_queue_pairs = 4;
  };

  VirtioNet(ukplat::MemRegion* mem, ukplat::Clock* clock, ukplat::Wire* wire,
            Config config);
  ~VirtioNet() override;

  const char* name() const override { return "virtio-net"; }
  DevInfo Info() const override;
  MacAddr mac() const override { return config_.mac; }

  ukarch::Status Configure(const DevConf& conf) override;
  ukarch::Status TxQueueSetup(std::uint16_t queue, const TxQueueConf& conf) override;
  ukarch::Status RxQueueSetup(std::uint16_t queue, const RxQueueConf& conf) override;
  ukarch::Status Start() override;

  int TxBurst(std::uint16_t queue, NetBuf** pkt, std::uint16_t* cnt) override;
  int RxBurst(std::uint16_t queue, NetBuf** pkt, std::uint16_t* cnt) override;

  ukarch::Status RxIntrEnable(std::uint16_t queue) override;
  ukarch::Status RxIntrDisable(std::uint16_t queue) override;

  Stats stats() const override;
  Stats QueueStats(std::uint16_t queue) const override;

  // Device-side pump: drains TX rings to the wire and fills RX completions
  // from the wire (RSS-classified per frame). In a real system this runs in
  // the vhost thread; the simulation calls it from the burst functions and
  // from world polls.
  void BackendPoll();

  std::uint64_t kicks() const {
    return kicks_.load(std::memory_order_relaxed);
  }

  static constexpr std::uint32_t kVirtioHdrBytes = 12;

 private:
  struct TxQueue {
    std::unique_ptr<ukplat::Virtqueue> vq;
    Stats stats{};  // tx_* fields only
  };
  struct RxQueue {
    std::unique_ptr<ukplat::Virtqueue> vq;
    NetBufPool* pool = nullptr;
    std::function<void(std::uint16_t)> intr_handler;
    bool intr_enabled = false;
    bool intr_armed = false;
    Stats stats{};  // rx_* fields only
  };

  void FillRxRing(std::uint16_t queue);
  void RaiseRxInterruptIfArmed(std::uint16_t queue);
  // Wire-activity callback (the vhost thread waking on traffic): pumps the
  // device side so frames reach the rings — and armed interrupts fire — even
  // while the guest is blocked and never calls RxBurst. Registered lazily on
  // the first RxIntrEnable so poll-mode-only setups keep the exact pre-existing
  // burst-driven backend schedule.
  void OnWireSignal();

  ukplat::MemRegion* mem_;
  ukplat::Clock* clock_;
  ukplat::Wire* wire_;
  Config config_;
  bool started_ = false;

  std::uint16_t nb_rx_ = 1;
  std::uint16_t nb_tx_ = 1;
  std::vector<TxQueue> txqs_;
  std::vector<RxQueue> rxqs_;

  std::atomic<std::uint64_t> kicks_{0};
  bool signal_registered_ = false;
  // BackendPoll re-entrancy guard: wire signals can arrive while the backend
  // is already pumping (a peer replying from inside its own signal callback,
  // or — under the real-thread scheduler — from another loop's OS thread);
  // the in-progress pass will pick the frames up. Atomic exchange makes the
  // claim a single step, so two concurrent entrants can never both pump.
  std::atomic<bool> in_backend_poll_{false};
};

}  // namespace uknetdev

#endif  // UKNETDEV_VIRTIO_NET_H_
