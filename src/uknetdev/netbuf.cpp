#include "uknetdev/netbuf.h"

namespace uknetdev {

std::unique_ptr<NetBufPool> NetBufPool::Create(ukalloc::Allocator* alloc,
                                               ukplat::MemRegion* mem, std::uint32_t count,
                                               std::uint32_t buf_size,
                                               std::uint32_t default_headroom) {
  auto pool = std::unique_ptr<NetBufPool>(
      new NetBufPool(alloc, count, buf_size, default_headroom));
  pool->backing_ = alloc->Memalign(64, static_cast<std::size_t>(count) * buf_size);
  if (pool->backing_ == nullptr) {
    return nullptr;
  }
  std::uint64_t base_gpa = mem->GpaOf(pool->backing_);
  if (base_gpa == ukplat::MemRegion::kBadGpa) {
    alloc->Free(pool->backing_);
    return nullptr;
  }
  pool->bufs_.resize(count);
  pool->free_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    NetBuf& nb = pool->bufs_[i];
    nb.gpa = base_gpa + static_cast<std::uint64_t>(i) * buf_size;
    nb.capacity = buf_size;
    nb.headroom = default_headroom;
    nb.len = 0;
    nb.pool = pool.get();
    pool->free_.push_back(&nb);
  }
  return pool;
}

NetBufPool::~NetBufPool() {
  if (backing_ != nullptr) {
    alloc_->Free(backing_);
  }
}

NetBuf* NetBufPool::Alloc() {
  if (free_.empty()) {
    // Arm the refill edge: someone wanted a buffer and lost. Release pairs
    // with the acquire side of the exchange in Free().
    starved_.store(true, std::memory_order_release);
    return nullptr;
  }
  NetBuf* nb = free_.back();
  free_.pop_back();
  nb->headroom = default_headroom_;
  nb->len = 0;
  nb->refcnt = 1;
  nb->priv = nullptr;
  total_allocs_.fetch_add(1, std::memory_order_relaxed);
  return nb;
}

NetBuf* NetBufPool::AllocWithHeadroom(std::uint32_t headroom) {
  if (headroom > buf_size_) {
    return nullptr;
  }
  NetBuf* nb = Alloc();
  if (nb != nullptr) {
    nb->headroom = headroom;
  }
  return nb;
}

void NetBufPool::Free(NetBuf* nb) {
  if (nb == nullptr || nb->pool != this) {
    return;
  }
  if (nb->refcnt > 1) {
    --nb->refcnt;  // another holder (retransmit queue, ARP parking) remains
    return;
  }
  nb->refcnt = 1;
  free_.push_back(nb);
  total_frees_.fetch_add(1, std::memory_order_relaxed);
  // Dry-pool refill edge: the first buffer returning after a failed Alloc is
  // the TX "writability interrupt" — deliver it once per dry spell. The
  // relaxed pre-check keeps steady-state Free at one branch (no RMW); the
  // exchange makes the edge single-fire when two Frees race it.
  if (starved_.load(std::memory_order_relaxed) &&
      starved_.exchange(false, std::memory_order_acq_rel)) {
    refill_edges_.fetch_add(1, std::memory_order_relaxed);
    if (refill_cb_) {
      refill_cb_();
    }
  }
}

}  // namespace uknetdev
