#include "uknetdev/loopback.h"

#include <cstring>

namespace uknetdev {

ukarch::Status Loopback::RxQueueSetup(std::uint16_t queue, const RxQueueConf& conf) {
  if (queue != 0 || conf.buffer_pool == nullptr) {
    return ukarch::Status::kInval;
  }
  rx_pool_ = conf.buffer_pool;
  rx_intr_handler_ = conf.intr_handler;
  return ukarch::Status::kOk;
}

ukarch::Status Loopback::Start() {
  if (rx_pool_ == nullptr) {
    return ukarch::Status::kInval;
  }
  started_ = true;
  return ukarch::Status::kOk;
}

int Loopback::TxBurst(std::uint16_t queue, NetBuf** pkt, std::uint16_t* cnt) {
  if (!started_ || queue != 0) {
    *cnt = 0;
    return kStatusUnderrun;
  }
  std::uint16_t sent = 0;
  for (; sent < *cnt; ++sent) {
    NetBuf* src = pkt[sent];
    NetBuf* dst = rx_pool_->Alloc();
    if (dst == nullptr || dst->capacity - dst->headroom < src->len) {
      if (dst != nullptr) {
        rx_pool_->Free(dst);
      }
      ++stats_.tx_drops;
      break;
    }
    const std::byte* from = src->Data(*mem_);
    std::byte* to = mem_->At(dst->data_gpa(), src->len);
    std::memcpy(to, from, src->len);
    dst->len = src->len;
    rx_queue_.push_back(dst);
    stats_.tx_bytes += src->len;
    ++stats_.tx_packets;
    if (src->pool != nullptr) {
      src->pool->Free(src);  // release the TX reference (holders may remain)
    }
  }
  *cnt = sent;
  if (sent > 0 && intr_enabled_ && intr_armed_) {
    intr_armed_ = false;
    ++stats_.rx_interrupts;
    if (rx_intr_handler_) {
      rx_intr_handler_(0);
    }
  }
  return (sent > 0 ? kStatusSuccess : 0) | kStatusMore;
}

int Loopback::RxBurst(std::uint16_t queue, NetBuf** pkt, std::uint16_t* cnt) {
  if (!started_ || queue != 0) {
    *cnt = 0;
    return kStatusUnderrun;
  }
  std::uint16_t got = 0;
  while (got < *cnt && !rx_queue_.empty()) {
    pkt[got++] = rx_queue_.front();
    rx_queue_.pop_front();
    stats_.rx_bytes += pkt[got - 1]->len;
    ++stats_.rx_packets;
  }
  *cnt = got;
  int flags = got > 0 ? kStatusSuccess : 0;
  if (!rx_queue_.empty()) {
    flags |= kStatusMore;
  } else if (intr_enabled_) {
    intr_armed_ = true;
  }
  return flags;
}

}  // namespace uknetdev
