#include "uknetdev/loopback.h"

#include <cstring>

#include "uknetdev/rss.h"

namespace uknetdev {

ukarch::Status Loopback::Configure(const DevConf& conf) {
  if (conf.nb_rx_queues == 0 || conf.nb_tx_queues == 0 ||
      conf.nb_rx_queues > max_queues_ || conf.nb_tx_queues > max_queues_) {
    return ukarch::Status::kInval;
  }
  nb_rx_ = conf.nb_rx_queues;
  nb_tx_ = conf.nb_tx_queues;
  rxqs_.clear();
  rxqs_.resize(nb_rx_);
  txq_stats_.clear();
  txq_stats_.resize(nb_tx_);
  return ukarch::Status::kOk;
}

ukarch::Status Loopback::TxQueueSetup(std::uint16_t queue, const TxQueueConf&) {
  return queue < nb_tx_ ? ukarch::Status::kOk : ukarch::Status::kInval;
}

ukarch::Status Loopback::RxQueueSetup(std::uint16_t queue, const RxQueueConf& conf) {
  if (queue >= nb_rx_ || conf.buffer_pool == nullptr) {
    return ukarch::Status::kInval;
  }
  rxqs_[queue].pool = conf.buffer_pool;
  rxqs_[queue].intr_handler = conf.intr_handler;
  return ukarch::Status::kOk;
}

ukarch::Status Loopback::Start() {
  for (const RxQueue& q : rxqs_) {
    if (q.pool == nullptr) {
      return ukarch::Status::kInval;
    }
  }
  started_ = true;
  return ukarch::Status::kOk;
}

int Loopback::TxBurst(std::uint16_t queue, NetBuf** pkt, std::uint16_t* cnt) {
  if (!started_ || queue >= nb_tx_) {
    *cnt = 0;
    return kStatusUnderrun;
  }
  Stats& txs = txq_stats_[queue];
  bool delivered[kMaxQueues] = {false};  // RX queues that got frames this burst
  std::uint16_t sent = 0;
  for (; sent < *cnt; ++sent) {
    NetBuf* src = pkt[sent];
    const std::byte* from = src->Data(*mem_);
    // RSS demux: the frame's flow hash picks the RX queue, exactly as the
    // virtio device side does. On a dry destination pool, a single-queue
    // device keeps the old backpressure contract — stop the burst and leave
    // the remaining frames with the caller (who sees the short count and
    // retries); with multiple queues the frame drops instead, because one
    // stalled queue must never block traffic headed for its siblings.
    std::uint16_t rxq_idx = RssQueueForFrame(
        reinterpret_cast<const std::uint8_t*>(from), src->len, nb_rx_);
    RxQueue& rxq = rxqs_[rxq_idx];
    NetBuf* dst = rxq.pool->Alloc();
    if (dst == nullptr || dst->capacity - dst->headroom < src->len) {
      if (dst != nullptr) {
        rxq.pool->Free(dst);
      }
      ++txs.tx_drops;
      if (nb_rx_ == 1) {
        break;  // backpressure: caller keeps ownership of pkt[sent..]
      }
      ++rxq.stats.rx_drops;
      if (src->pool != nullptr) {
        src->pool->Free(src);
      }
      continue;
    }
    std::byte* to = mem_->At(dst->data_gpa(), src->len);
    std::memcpy(to, from, src->len);
    dst->len = src->len;
    rxq.ring.push_back(dst);
    txs.tx_bytes += src->len;
    ++txs.tx_packets;
    delivered[rxq_idx] = true;
    if (src->pool != nullptr) {
      src->pool->Free(src);  // release the TX reference (holders may remain)
    }
  }
  *cnt = sent;
  for (std::uint16_t q = 0; q < nb_rx_; ++q) {
    RxQueue& rxq = rxqs_[q];
    if (delivered[q] && rxq.intr_enabled && rxq.intr_armed) {
      rxq.intr_armed = false;
      ++rxq.stats.rx_interrupts;
      if (rxq.intr_handler) {
        rxq.intr_handler(q);
      }
    }
  }
  return (sent > 0 ? kStatusSuccess : 0) | kStatusMore;
}

int Loopback::RxBurst(std::uint16_t queue, NetBuf** pkt, std::uint16_t* cnt) {
  if (!started_ || queue >= nb_rx_) {
    *cnt = 0;
    return kStatusUnderrun;
  }
  RxQueue& rxq = rxqs_[queue];
  std::uint16_t got = 0;
  while (got < *cnt && !rxq.ring.empty()) {
    pkt[got++] = rxq.ring.front();
    rxq.ring.pop_front();
    rxq.stats.rx_bytes += pkt[got - 1]->len;
    ++rxq.stats.rx_packets;
  }
  *cnt = got;
  int flags = got > 0 ? kStatusSuccess : 0;
  if (!rxq.ring.empty()) {
    flags |= kStatusMore;
  } else if (rxq.intr_enabled) {
    rxq.intr_armed = true;
  }
  return flags;
}

ukarch::Status Loopback::RxIntrEnable(std::uint16_t queue) {
  if (queue >= nb_rx_) {
    return ukarch::Status::kInval;
  }
  rxqs_[queue].intr_enabled = true;
  rxqs_[queue].intr_armed = true;
  return ukarch::Status::kOk;
}

ukarch::Status Loopback::RxIntrDisable(std::uint16_t queue) {
  if (queue >= nb_rx_) {
    return ukarch::Status::kInval;
  }
  rxqs_[queue].intr_enabled = false;
  return ukarch::Status::kOk;
}

NetDev::Stats Loopback::stats() const {
  Stats agg{};
  for (const Stats& t : txq_stats_) {
    agg.tx_packets += t.tx_packets;
    agg.tx_bytes += t.tx_bytes;
    agg.tx_drops += t.tx_drops;
  }
  for (const RxQueue& q : rxqs_) {
    agg.rx_packets += q.stats.rx_packets;
    agg.rx_bytes += q.stats.rx_bytes;
    agg.rx_drops += q.stats.rx_drops;
    agg.rx_interrupts += q.stats.rx_interrupts;
  }
  return agg;
}

NetDev::Stats Loopback::QueueStats(std::uint16_t queue) const {
  Stats s{};
  if (queue < txq_stats_.size()) {
    s.tx_packets = txq_stats_[queue].tx_packets;
    s.tx_bytes = txq_stats_[queue].tx_bytes;
    s.tx_drops = txq_stats_[queue].tx_drops;
  }
  if (queue < rxqs_.size()) {
    s.rx_packets = rxqs_[queue].stats.rx_packets;
    s.rx_bytes = rxqs_[queue].stats.rx_bytes;
    s.rx_drops = rxqs_[queue].stats.rx_drops;
    s.rx_interrupts = rxqs_[queue].stats.rx_interrupts;
  }
  return s;
}

}  // namespace uknetdev
