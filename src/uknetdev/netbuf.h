// uknetdev/netbuf.h - uk_netbuf: the packet buffer wrapper of §3.1.
//
// Key design point from the paper: "neither the driver nor the API manage
// allocations" — the application owns packet memory. NetBuf is only metadata
// (address, headroom, length) around a buffer the application allocated;
// NetBufPool is the pre-allocated pool performance-critical workloads use,
// while memory-frugal apps can wrap one-off heap allocations.
#ifndef UKNETDEV_NETBUF_H_
#define UKNETDEV_NETBUF_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "ukalloc/allocator.h"
#include "ukplat/memregion.h"

namespace uknetdev {

class NetBufPool;

struct NetBuf {
  std::uint64_t gpa = 0;        // buffer start (guest-physical)
  std::uint32_t capacity = 0;   // total buffer bytes
  std::uint32_t headroom = 0;   // offset where payload starts
  std::uint32_t len = 0;        // payload bytes
  std::uint32_t refcnt = 1;     // owners; buffer returns to the pool at zero
  NetBufPool* pool = nullptr;   // owner; nullptr for caller-managed buffers
  void* priv = nullptr;         // application scratch (paper: meta information)

  // Takes an additional reference (uk_netbuf_ref). Every holder — protocol
  // retransmission queue, driver ring, ARP parking — releases with
  // NetBufPool::Free(), which only returns the buffer at refcount zero.
  void Ref() { ++refcnt; }

  std::uint64_t data_gpa() const { return gpa + headroom; }
  std::uint32_t tailroom() const { return capacity - headroom - len; }

  std::byte* Data(ukplat::MemRegion& mem) { return mem.At(data_gpa(), len); }
  const std::byte* Data(const ukplat::MemRegion& mem) const {
    return mem.At(data_gpa(), len);
  }
  std::uint8_t* Bytes(ukplat::MemRegion& mem) {
    return reinterpret_cast<std::uint8_t*>(mem.At(data_gpa(), len));
  }
  const std::uint8_t* Bytes(const ukplat::MemRegion& mem) const {
    return reinterpret_cast<const std::uint8_t*>(mem.At(data_gpa(), len));
  }

  // Prepends |n| bytes by consuming headroom (returns false if none left).
  // This is how protocol layers add headers without copying.
  bool Push(std::uint32_t n) {
    if (headroom < n) {
      return false;
    }
    headroom -= n;
    len += n;
    return true;
  }
  // Strips |n| bytes off the front (header consumption on RX).
  bool Pull(std::uint32_t n) {
    if (len < n) {
      return false;
    }
    headroom += n;
    len -= n;
    return true;
  }

  // In-place header construction: consumes |n| bytes of headroom and returns
  // a pointer to the new front of the payload so the protocol layer writes
  // its header directly into the buffer that goes to the device. nullptr when
  // the headroom reservation is exhausted (buffer untouched).
  std::uint8_t* PrependHeader(ukplat::MemRegion& mem, std::uint32_t n) {
    if (!Push(n)) {
      return nullptr;
    }
    return reinterpret_cast<std::uint8_t*>(mem.At(data_gpa(), n));
  }
  // RX mirror of PrependHeader: drops a consumed header off the front and
  // keeps the rest of the payload in place.
  bool TrimHeader(std::uint32_t n) { return Pull(n); }

  // Extends the payload into the tailroom by |n| bytes and returns a pointer
  // to the appended region; nullptr when the tailroom cannot hold it.
  std::uint8_t* Append(ukplat::MemRegion& mem, std::uint32_t n) {
    if (tailroom() < n) {
      return nullptr;
    }
    std::uint8_t* at = reinterpret_cast<std::uint8_t*>(mem.At(gpa + headroom + len, n));
    if (at != nullptr) {
      len += n;
    }
    return at;
  }

  // Headroom reservation for an empty buffer: position the payload start so
  // that |n| bytes of headers can later be prepended without copying.
  bool ReserveHeadroom(std::uint32_t n) {
    if (len != 0 || n > capacity) {
      return false;
    }
    headroom = n;
    return true;
  }
};

// Fixed-size pool of netbufs whose data area is allocated once from the
// application's allocator (which itself lives in guest RAM, so buffers have
// valid guest-physical addresses).
class NetBufPool {
 public:
  // Returns nullptr on allocation failure (pool stays unusable but safe).
  static std::unique_ptr<NetBufPool> Create(ukalloc::Allocator* alloc,
                                            ukplat::MemRegion* mem, std::uint32_t count,
                                            std::uint32_t buf_size,
                                            std::uint32_t default_headroom = 64);
  ~NetBufPool();

  NetBufPool(const NetBufPool&) = delete;
  NetBufPool& operator=(const NetBufPool&) = delete;

  // O(1) alloc/free; Alloc resets headroom/len to defaults and refcnt to 1.
  NetBuf* Alloc();
  // Alloc with a custom headroom reservation (e.g. the full protocol header
  // budget of the TX path). Falls back to nullptr when |headroom| exceeds the
  // buffer size.
  NetBuf* AllocWithHeadroom(std::uint32_t headroom);
  // Releases one reference; the buffer only rejoins the free list when the
  // last holder lets go. (Free of a multiply-owned buffer is how drivers
  // "return" a netbuf that a protocol layer still retains for retransmit.)
  void Free(NetBuf* nb);

  std::uint32_t capacity() const { return count_; }
  std::uint32_t available() const { return static_cast<std::uint32_t>(free_.size()); }
  std::uint32_t buf_size() const { return buf_size_; }
  std::uint32_t default_headroom() const { return default_headroom_; }
  // Lifetime alloc/free counters: let tests and benches assert zero-alloc
  // paths (e.g. retransmission re-bursts retained buffers without pool
  // churn). Atomic because a buffer freed by a FOREIGN loop (cross-queue TX
  // completion under the real-thread scheduler) bumps the free counter
  // concurrently with the owner loop allocating.
  std::uint64_t total_allocs() const {
    return total_allocs_.load(std::memory_order_relaxed);
  }
  std::uint64_t total_frees() const {
    return total_frees_.load(std::memory_order_relaxed);
  }

  // Pool-refill edge: fires from Free() when a pool that previously FAILED an
  // Alloc() (went dry while someone wanted a buffer) regains its first free
  // buffer. Writable-interested loops use this to sleep through TX-pool
  // exhaustion instead of taking busy retry turns — the buffer returning IS
  // the writability interrupt. Edge-triggered and starvation-gated: a pool
  // that never failed an Alloc never fires, so steady-state Free() stays one
  // branch.
  void SetRefillCallback(std::function<void()> cb) { refill_cb_ = std::move(cb); }
  std::uint64_t refill_edges() const {
    return refill_edges_.load(std::memory_order_relaxed);
  }
  bool starved() const { return starved_.load(std::memory_order_acquire); }

 private:
  NetBufPool(ukalloc::Allocator* alloc, std::uint32_t count, std::uint32_t buf_size,
             std::uint32_t headroom)
      : alloc_(alloc), count_(count), buf_size_(buf_size), default_headroom_(headroom) {}

  ukalloc::Allocator* alloc_;
  std::uint32_t count_;
  std::uint32_t buf_size_;
  std::uint32_t default_headroom_;
  void* backing_ = nullptr;  // single slab for all buffers
  std::vector<NetBuf> bufs_;
  std::vector<NetBuf*> free_;
  std::atomic<std::uint64_t> total_allocs_{0};
  std::atomic<std::uint64_t> total_frees_{0};
  // Set when Alloc() came up empty; cleared (exchange — single-fire even when
  // two foreign-loop Frees race the edge) when the refill edge fires.
  std::atomic<bool> starved_{false};
  std::atomic<std::uint64_t> refill_edges_{0};
  std::function<void()> refill_cb_;
};

}  // namespace uknetdev

#endif  // UKNETDEV_NETBUF_H_
